package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestScenariosGolden pins the `liflsim scenarios` listing: the registry
// is user-facing CLI surface, so entries appearing, vanishing, or
// changing class must show up in review as a golden diff.
// Regenerate with `go test ./cmd/liflsim -run Golden -update`.
func TestScenariosGolden(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "scenarios", 1); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "scenarios.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("scenarios listing drifted from %s (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestUnknownExperiment: the run dispatcher must reject unknown verbs
// rather than fall through silently.
func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "nosuchfig", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if b.Len() != 0 {
		t.Fatalf("unknown experiment produced output: %q", b.String())
	}
}
