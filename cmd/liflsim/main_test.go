package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestScenariosGolden pins the `liflsim scenarios` listing: the registry
// is user-facing CLI surface, so entries appearing, vanishing, or
// changing class must show up in review as a golden diff.
// Regenerate with `go test ./cmd/liflsim -run Golden -update`.
func TestScenariosGolden(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "scenarios", 1); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "scenarios.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("scenarios listing drifted from %s (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestSpansGolden pins the `liflsim spans fig8-ablation` Gantt output:
// the span timeline is deterministic (virtual-time spans from a fixed
// seed), so any drift in the recorded spans or the rendering shows up as
// a golden diff. Regenerate with `go test ./cmd/liflsim -run Golden -update`.
func TestSpansGolden(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "spans:fig8-ablation", 0); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "spans.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("spans output drifted from %s (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestWatchLineMode exercises the watch verb's non-TTY degradation (what
// CI and piped invocations get): one parseable line per round plus a
// done summary per run. Wall times vary, so the shape is pinned by regex
// rather than golden bytes.
func TestWatchLineMode(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "watch:fig8-ablation", 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	line := regexp.MustCompile(`(?m)^watch lifl/SL-H/20 r\s*\d+/\d+ acc=\d+\.\d{3} sim=\S+ upd=\d+ wall=\S+$`)
	if !line.MatchString(out) {
		t.Fatalf("no per-round watch line matched:\n%s", out)
	}
	done := regexp.MustCompile(`(?m)^watch lifl/SL-H/20: done after \d+ round\(s\), acc \d+\.\d{3}, sim \S+, wall \S+$`)
	if !done.MatchString(out) {
		t.Fatalf("no done summary matched:\n%s", out)
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatal("non-TTY watch emitted ANSI control sequences")
	}
}

// TestUnknownExperiment: the run dispatcher must reject unknown verbs
// rather than fall through silently.
func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "nosuchfig", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if b.Len() != 0 {
		t.Fatalf("unknown experiment produced output: %q", b.String())
	}
}
