package main

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestParseCellPlan(t *testing.T) {
	plan, err := parseCellPlan("25:join w=0.5 n=1440; 40:drain 1; 60:weight 2 w=1.5 n=300;")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.CellPlanStep{
		{Round: 25, Op: core.CellJoin, Weight: 0.5, Clients: 1440},
		{Round: 40, Op: core.CellDrain, Cell: 1},
		{Round: 60, Op: core.CellWeight, Cell: 2, Weight: 1.5, Clients: 300},
	}
	if !reflect.DeepEqual(plan.Steps, want) {
		t.Fatalf("parsed steps = %+v, want %+v", plan.Steps, want)
	}
	// Minimal forms: a join without residents, a drain with whitespace slack.
	plan, err = parseCellPlan(" 3:join w=1 ;  9:drain 0 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 || plan.Steps[0].Clients != 0 || plan.Steps[1].Cell != 0 {
		t.Fatalf("minimal forms parsed wrong: %+v", plan.Steps)
	}
}

func TestParseCellPlanRejects(t *testing.T) {
	for _, src := range []string{
		"",                  // no steps
		"  ;  ",             // no steps after trimming
		"join w=0.5",        // missing round stamp
		"x:join w=0.5",      // non-numeric round
		"0:join w=0.5",      // round < 1 (plan.Validate)
		"25:bogus",          // unknown op
		"25:join",           // join without a weight (plan.Validate)
		"25:join w=zero",    // bad weight literal
		"25:join w=1 n=ten", // bad client literal
		"25:join w=1 q=3",   // unknown keyword
		"25:join w=1 extra", // positional junk
		"40:drain",          // drain without a cell id
		"40:drain one",      // non-numeric cell id
		"60:weight 2",       // weight without a value (plan.Validate)
	} {
		if _, err := parseCellPlan(src); err == nil {
			t.Errorf("parseCellPlan(%q) accepted", src)
		}
	}
}
