package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// parseCellPlan parses the -cellplan DSL into an elastic-fabric
// reconfiguration plan: semicolon-separated, round-stamped steps,
//
//	25:join w=0.5 n=1440     join a cell (routing weight w, n residents)
//	40:drain 1               drain cell 1 (drain-then-delete)
//	60:weight 2 w=1.5 n=300  set cell 2's weight (n = flash-crowd arrivals)
//
// Step order is irrelevant — the fabric normalizes the schedule (joins →
// weights → drains within each round) — and schedule-level feasibility is
// the fabric's wholesale validation, not the parser's: this only rejects
// strings that don't spell well-formed steps.
func parseCellPlan(src string) (*core.CellPlan, error) {
	var plan core.CellPlan
	for _, raw := range strings.Split(src, ";") {
		stmt := strings.TrimSpace(raw)
		if stmt == "" {
			continue
		}
		round, rest, ok := strings.Cut(stmt, ":")
		if !ok {
			return nil, fmt.Errorf("cellplan %q: want ROUND:OP...", stmt)
		}
		r, err := strconv.Atoi(strings.TrimSpace(round))
		if err != nil {
			return nil, fmt.Errorf("cellplan %q: bad round: %v", stmt, err)
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("cellplan %q: missing op", stmt)
		}
		step := core.CellPlanStep{Round: r, Op: core.CellPlanOp(fields[0])}
		args := fields[1:]
		switch step.Op {
		case core.CellJoin:
			if err := parsePlanArgs(args, &step); err != nil {
				return nil, fmt.Errorf("cellplan %q: %v", stmt, err)
			}
		case core.CellDrain, core.CellWeight:
			if len(args) == 0 {
				return nil, fmt.Errorf("cellplan %q: %s needs a cell id", stmt, step.Op)
			}
			if step.Cell, err = strconv.Atoi(args[0]); err != nil {
				return nil, fmt.Errorf("cellplan %q: bad cell id: %v", stmt, err)
			}
			if err := parsePlanArgs(args[1:], &step); err != nil {
				return nil, fmt.Errorf("cellplan %q: %v", stmt, err)
			}
		default:
			return nil, fmt.Errorf("cellplan %q: unknown op %q (want join/drain/weight)", stmt, fields[0])
		}
		plan.Steps = append(plan.Steps, step)
	}
	if len(plan.Steps) == 0 {
		return nil, fmt.Errorf("cellplan %q: no steps", src)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &plan, nil
}

// parsePlanArgs fills a step's w= / n= keyword arguments.
func parsePlanArgs(args []string, step *core.CellPlanStep) error {
	for _, a := range args {
		key, val, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("bad argument %q (want w=WEIGHT or n=CLIENTS)", a)
		}
		switch key {
		case "w":
			w, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("bad weight %q: %v", val, err)
			}
			step.Weight = w
		case "n":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad client count %q: %v", val, err)
			}
			step.Clients = n
		default:
			return fmt.Errorf("unknown argument %q (want w= or n=)", a)
		}
	}
	return nil
}
