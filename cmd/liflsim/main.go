// Command liflsim regenerates every table and figure of the paper's
// evaluation from the LIFL reproduction library.
//
// Usage:
//
//	liflsim fig4               # NH vs WH timelines + LIFL (Fig. 4, Fig. 7(c))
//	liflsim fig7               # data-plane transfer latency/CPU (Fig. 7(a,b))
//	liflsim fig8               # orchestration ablation (Fig. 8(a-d))
//	liflsim fig9r18            # ResNet-18 time/cost-to-accuracy + Fig. 10(a-c)
//	liflsim fig9r152           # ResNet-152 time/cost-to-accuracy + Fig. 10(d-f)
//	liflsim fig13              # message-queuing overheads (Appendix F)
//	liflsim overhead           # orchestration overhead (§6.1)
//	liflsim scenarios          # list the workload registry
//	liflsim scenario <name>    # sweep one registry scenario
//	liflsim all                # everything above
//
// -parallel N fans each verb's independent runs across N workers (0 = one
// per CPU). Every run owns its own simulation engine, so output is
// byte-identical to the serial run for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/model"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	parallel := flag.Int("parallel", 1, "workers for independent runs (0 = one per CPU)")
	flag.Usage = usage
	flag.Parse()
	// Go's flag parsing stops at the first verb; keep consuming so
	// `liflsim all -parallel 8` works as well as `liflsim -parallel 8 all`.
	var verbs []string
	for args := flag.Args(); len(args) > 0; args = flag.Args() {
		if len(args[0]) > 1 && strings.HasPrefix(args[0], "-") {
			flag.CommandLine.Parse(args) // exits on bad flags (ExitOnError)
			continue
		}
		verbs = append(verbs, args[0])
		flag.CommandLine.Parse(args[1:])
	}
	if len(verbs) < 1 {
		usage()
		os.Exit(2)
	}
	experiments.Parallelism = harness.DefaultWorkers(*parallel)
	// Registry scenarios carry their own seeds; only an explicit -seed
	// overrides them (0 = keep the scenario's default).
	scenarioSeed := int64(0)
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			scenarioSeed = *seed
		}
	})
	for i := 0; i < len(verbs); i++ {
		what := verbs[i]
		runSeed := *seed
		if what == "scenario" {
			if i+1 >= len(verbs) {
				fmt.Fprintln(os.Stderr, "liflsim: scenario requires a name (see `liflsim scenarios`)")
				os.Exit(2)
			}
			i++
			what = "scenario:" + verbs[i]
			runSeed = scenarioSeed
		}
		if err := run(what, runSeed); err != nil {
			fmt.Fprintf(os.Stderr, "liflsim: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: liflsim [-seed n] [-parallel n] {fig4|fig7|fig8|fig9r18|fig9r152|fig13|overhead|appendixe|ablation|verify|verifyfull|scenarios|scenario <name>|all}...")
}

func run(what string, seed int64) error {
	if name, ok := strings.CutPrefix(what, "scenario:"); ok {
		out, err := experiments.RunScenario(name, seed)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	switch what {
	case "fig4":
		fmt.Print(experiments.FormatFig4(experiments.Fig4(), experiments.Fig7c()))
	case "fig7":
		fmt.Print(experiments.FormatFig7(experiments.Fig7ab()))
	case "fig8":
		fmt.Print(experiments.FormatFig8(experiments.Fig8(nil)))
	case "fig9r18":
		rows := experiments.Fig9(model.ResNet18, seed)
		fmt.Print(experiments.FormatFig9(rows))
		fmt.Print(experiments.FormatFig10(experiments.Fig10(rows)))
	case "fig9r152":
		rows := experiments.Fig9(model.ResNet152, seed)
		fmt.Print(experiments.FormatFig9(rows))
		fmt.Print(experiments.FormatFig10(experiments.Fig10(rows)))
	case "fig13":
		fmt.Print(experiments.FormatFig13(experiments.Fig13()))
	case "overhead":
		fmt.Print(experiments.FormatOverhead(experiments.Overhead(10_000)))
	case "appendixe":
		fmt.Print(experiments.FormatAppendixE(experiments.AppendixE()))
	case "verify":
		fmt.Print(experiments.FormatVerify(experiments.Verify(false)))
	case "verifyfull":
		fmt.Print(experiments.FormatVerify(experiments.Verify(true)))
	case "scenarios":
		fmt.Print(experiments.FormatScenarioList())
	case "ablation":
		fmt.Print(experiments.FormatAblations(
			experiments.AblateFanIn(nil), experiments.AblateEWMA(nil), experiments.AblatePlacement()))
	case "all":
		for _, w := range []string{"fig7", "fig4", "fig13", "fig8", "overhead", "appendixe", "ablation", "fig9r18", "fig9r152"} {
			if err := run(w, seed); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
