// Command liflsim regenerates every table and figure of the paper's
// evaluation from the LIFL reproduction library.
//
// Usage:
//
//	liflsim fig4               # NH vs WH timelines + LIFL (Fig. 4, Fig. 7(c))
//	liflsim fig7               # data-plane transfer latency/CPU (Fig. 7(a,b))
//	liflsim fig8               # orchestration ablation (Fig. 8(a-d))
//	liflsim fig9r18            # ResNet-18 time/cost-to-accuracy + Fig. 10(a-c)
//	liflsim fig9r152           # ResNet-152 time/cost-to-accuracy + Fig. 10(d-f)
//	liflsim fig11              # buffered-async vs synchronous (Fig. 11 / Appendix A)
//	liflsim fig13              # message-queuing overheads (Appendix F)
//	liflsim geo                # multi-cell federation fabric + cell failover
//	liflsim overhead           # orchestration overhead (§6.1)
//	liflsim scenarios          # list the workload registry
//	liflsim scenario <name>    # sweep one registry scenario
//	liflsim watch <name>       # run one scenario with a live dashboard
//	liflsim spans <name>       # run one scenario and print task-span Gantts
//	liflsim plan <name>        # dry-run a scenario's reconfiguration plan
//	liflsim replay <run.traj>  # summarize a stored trajectory file
//	liflsim all                # everything above (except replay)
//
// -parallel N fans each verb's independent runs across N workers (N >= 1;
// pass the CPU count explicitly for a full fan-out). Every run owns its
// own simulation engine, so output is byte-identical to the serial run for
// any worker count.
//
// -workers N parallelizes *inside* each run: the staged round loop's
// population synthesis, update materialization, per-cell rounds and
// aggregation folds share an N-goroutine pool (N >= 1). Output is
// byte-identical for any value. When not passed, registry scenarios keep
// their own pinned worker counts (e.g. 10m-clients pins 8).
//
// -cellplan PLAN overrides the reconfiguration plan of every scenario the
// command sweeps (elastic fabric: round-stamped join/drain/weight pushes,
// applied only by fabric scenarios). The DSL is semicolon-separated steps:
//
//	liflsim -cellplan "25:join w=0.5 n=1440; 40:drain 1" scenario geo-4cell
//	liflsim -cellplan "60:weight 2 w=1.5 n=300" plan geo-4cell
//
// The `plan` verb dry-runs the schedule: the fabric validates the plan
// wholesale against the scenario's shape and prints the versioned pushes it
// would apply, without running the workload.
//
// -traj DIR makes every scenario sweep also stream per-round observations
// into DIR, one bounded-memory .traj file per run (internal/trajstore).
// Replay them afterwards:
//
//	liflsim replay DIR/traj-100k--sf.traj              # run summary
//	liflsim replay -milestones DIR/traj-100k--sf.traj  # + milestone crossings
//	liflsim replay -at 250 DIR/traj-100k--sf.traj      # + round 250's record
//
// -telemetry DIR makes every scenario sweep also write one versioned
// telemetry snapshot per run into DIR (<run>.telemetry.json — the
// internal/obs counters/gauges/histograms plane; off by default, and
// byte-identical for a fixed seed at any -parallel/-workers/retention).
// -telemetry-wall opts the snapshots into the volatile wall-clock
// section; -perfetto additionally writes <run>.trace.json, a Chrome
// trace_event export of the run's virtual-time spans, loadable in
// Perfetto:
//
//	liflsim -telemetry /tmp/obs -perfetto scenario fig8-ablation
//
// `liflsim watch <name>` runs one scenario sequentially with a live
// dashboard: a repainting panel on a TTY (accuracy progress, stage wall
// breakdown, per-cell shares), one line per round otherwise.
// `liflsim spans <name>` runs one scenario and prints each run's task
// spans as the Fig. 4-style ASCII Gantt.
//
// Exit status: 0 on success, 1 on runtime failure, 2 on usage errors
// (missing verb, -parallel < 1, -workers < 1, unknown scenario name,
// and replay given an unreadable/corrupt file or -at outside the stored
// round range).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/scenario"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	parallel := flag.Int("parallel", 1, "workers for independent runs (>= 1)")
	workers := flag.Int("workers", 1, "goroutines per run's staged round loop (>= 1)")
	cellplan := flag.String("cellplan", "", `reconfiguration plan overriding scenario plans, e.g. "25:join w=0.5 n=1440; 40:drain 1"`)
	traj := flag.String("traj", "", "directory to stream per-run trajectory files into (scenario verbs)")
	telemetry := flag.String("telemetry", "", "directory to write per-run telemetry snapshots into (scenario verbs)")
	telemetryWall := flag.Bool("telemetry-wall", false, `opt telemetry snapshots into wall-clock capture (the volatile "wall" section)`)
	perfetto := flag.Bool("perfetto", false, "with -telemetry: also write per-run Chrome/Perfetto trace files")
	at := flag.Int("at", 0, "with replay: print the stored record for this round")
	milestones := flag.Bool("milestones", false, "with replay: list reconstructed milestone crossings")
	flag.Usage = usage
	flag.Parse()
	// Go's flag parsing stops at the first verb; keep consuming so
	// `liflsim all -parallel 8` works as well as `liflsim -parallel 8 all`.
	var verbs []string
	for args := flag.Args(); len(args) > 0; args = flag.Args() {
		if len(args[0]) > 1 && strings.HasPrefix(args[0], "-") {
			flag.CommandLine.Parse(args) // exits on bad flags (ExitOnError)
			continue
		}
		verbs = append(verbs, args[0])
		flag.CommandLine.Parse(args[1:])
	}
	if len(verbs) < 1 {
		usage()
		os.Exit(2)
	}
	// A worker pool needs at least one worker; silently mapping 0 or a
	// negative to "one per CPU" hid flag typos (-parallel -4), so reject.
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "liflsim: -parallel must be >= 1 (got %d)\n", *parallel)
		usage()
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "liflsim: -workers must be >= 1 (got %d)\n", *workers)
		usage()
		os.Exit(2)
	}
	experiments.Parallelism = *parallel
	// Registry scenarios carry their own seeds and worker pins; only an
	// explicitly passed -seed / -workers overrides them (the zero value of
	// each experiments global = keep the scenario's default).
	scenarioSeed := int64(0)
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			scenarioSeed = *seed
		case "workers":
			experiments.Workers = *workers
		case "at":
			replayAt, replayAtSet = *at, true
		}
	})
	// The plan DSL is validated here like scenario names below: a string
	// that doesn't spell a well-formed plan is a usage error up front. (The
	// fabric's schedule-level validation still applies per run.)
	if *cellplan != "" {
		plan, err := parseCellPlan(*cellplan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "liflsim: %v\n", err)
			usage()
			os.Exit(2)
		}
		experiments.CellPlan = plan
	}
	experiments.TrajDir = *traj
	// Wall capture and the Perfetto export are modes of the telemetry
	// plane, so both flags require a destination directory.
	if (*telemetryWall || *perfetto) && *telemetry == "" {
		fmt.Fprintln(os.Stderr, "liflsim: -telemetry-wall and -perfetto require -telemetry DIR")
		usage()
		os.Exit(2)
	}
	experiments.TelemetryDir = *telemetry
	experiments.TelemetryWall = *telemetryWall
	experiments.PerfettoOut = *perfetto
	replayMilestones = *milestones
	// Resolve the whole verb sequence before executing any of it: an
	// unknown verb or scenario name is a usage error (exit 2) caught up
	// front, not a mid-sequence failure after earlier verbs already ran.
	type step struct {
		what string
		seed int64
	}
	var steps []step
	for i := 0; i < len(verbs); i++ {
		what := verbs[i]
		runSeed := *seed
		if _, ok := handlers[what]; !ok && what != "scenario" && what != "plan" && what != "replay" &&
			what != "watch" && what != "spans" {
			fmt.Fprintf(os.Stderr, "liflsim: unknown experiment %q\n", what)
			usage()
			os.Exit(2)
		}
		if what == "scenario" || what == "plan" || what == "watch" || what == "spans" {
			verb := what
			if i+1 >= len(verbs) {
				fmt.Fprintf(os.Stderr, "liflsim: %s requires a scenario name (see `liflsim scenarios`)\n", verb)
				usage()
				os.Exit(2)
			}
			i++
			if _, ok := scenario.Get(verbs[i]); !ok {
				fmt.Fprintf(os.Stderr, "liflsim: unknown scenario %q (have: %s)\n",
					verbs[i], strings.Join(scenario.Names(), ", "))
				usage()
				os.Exit(2)
			}
			what = verb + ":" + verbs[i]
			runSeed = scenarioSeed
		}
		if what == "replay" {
			if i+1 >= len(verbs) {
				fmt.Fprintln(os.Stderr, "liflsim: replay requires a trajectory file (write one with -traj)")
				usage()
				os.Exit(2)
			}
			i++
			// Validate the file (and -at range) up front like scenario
			// names: a corrupt or missing trajectory is a usage error, not
			// a mid-sequence runtime failure.
			if err := validateReplay(verbs[i]); err != nil {
				fmt.Fprintf(os.Stderr, "liflsim: %v\n", err)
				usage()
				os.Exit(2)
			}
			what = "replay:" + verbs[i]
		}
		steps = append(steps, step{what, runSeed})
	}
	for _, s := range steps {
		if err := run(os.Stdout, s.what, s.seed); err != nil {
			fmt.Fprintf(os.Stderr, "liflsim: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: liflsim [-seed n] [-parallel n] [-workers n] [-traj dir] [-telemetry dir [-telemetry-wall] [-perfetto]] [-cellplan plan] {fig4|fig7|fig8|fig9r18|fig9r152|fig11|fig13|geo|overhead|appendixe|ablation|verify|verifyfull|scenarios|scenario <name>|watch <name>|spans <name>|plan <name>|all}...")
	fmt.Fprintln(os.Stderr, "       liflsim replay [-at n] [-milestones] <run.traj>")
	fmt.Fprintln(os.Stderr, `       liflsim -cellplan "25:join w=0.5 n=1440; 40:drain 1; 60:weight 2 w=1.5 n=300" plan geo-4cell`)
	fmt.Fprintln(os.Stderr, "       liflsim -telemetry /tmp/obs -perfetto scenario fig8-ablation")
}

// stdoutIsTTY reports whether stdout is an interactive terminal — the
// switch between the watch verb's repainting panel and its line-per-round
// degradation (what CI and piped invocations get).
func stdoutIsTTY() bool {
	fi, err := os.Stdout.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// handlers is the single verb table: run dispatches through it and main
// validates the whole verb sequence against it before any verb executes,
// so the two can never drift. The scenario:<name> and replay:<path>
// forms are handled separately in run.
var handlers = map[string]func(w io.Writer, seed int64) error{
	"fig4": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatFig4(experiments.Fig4(), experiments.Fig7c()))
		return nil
	},
	"fig7": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatFig7(experiments.Fig7ab()))
		return nil
	},
	"fig8": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatFig8(experiments.Fig8(nil)))
		return nil
	},
	"fig9r18": func(w io.Writer, seed int64) error {
		rows := experiments.Fig9(model.ResNet18, seed)
		fmt.Fprint(w, experiments.FormatFig9(rows))
		fmt.Fprint(w, experiments.FormatFig10(experiments.Fig10(rows)))
		return nil
	},
	"fig9r152": func(w io.Writer, seed int64) error {
		rows := experiments.Fig9(model.ResNet152, seed)
		fmt.Fprint(w, experiments.FormatFig9(rows))
		fmt.Fprint(w, experiments.FormatFig10(experiments.Fig10(rows)))
		return nil
	},
	"fig11": func(w io.Writer, seed int64) error {
		fmt.Fprint(w, experiments.FormatFig11(experiments.Fig11(seed)))
		return nil
	},
	"fig13": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatFig13(experiments.Fig13()))
		return nil
	},
	"geo": func(w io.Writer, seed int64) error {
		out, err := experiments.RunGeo(seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		return nil
	},
	"overhead": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatOverhead(experiments.Overhead(10_000)))
		return nil
	},
	"appendixe": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatAppendixE(experiments.AppendixE()))
		return nil
	},
	"verify": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatVerify(experiments.Verify(false)))
		return nil
	},
	"verifyfull": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatVerify(experiments.Verify(true)))
		return nil
	},
	"scenarios": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatScenarioList())
		return nil
	},
	"ablation": func(w io.Writer, _ int64) error {
		fmt.Fprint(w, experiments.FormatAblations(
			experiments.AblateFanIn(nil), experiments.AblateEWMA(nil), experiments.AblatePlacement()))
		return nil
	},
}

// "all" recurses through run, so it registers in init to break the
// handlers → run → handlers initialization cycle.
func init() {
	handlers["all"] = func(w io.Writer, seed int64) error {
		for _, sub := range []string{"fig7", "fig4", "fig13", "fig8", "overhead", "appendixe", "ablation", "fig9r18", "fig9r152", "fig11", "geo"} {
			if err := run(w, sub, seed); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
}

func run(w io.Writer, what string, seed int64) error {
	if name, ok := strings.CutPrefix(what, "scenario:"); ok {
		out, err := experiments.RunScenario(name, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		return nil
	}
	if name, ok := strings.CutPrefix(what, "watch:"); ok {
		return experiments.WatchScenario(w, stdoutIsTTY(), name, seed)
	}
	if name, ok := strings.CutPrefix(what, "spans:"); ok {
		out, err := experiments.SpansScenario(name, seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		return nil
	}
	if name, ok := strings.CutPrefix(what, "plan:"); ok {
		out, err := experiments.PlanDiff(name)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		return nil
	}
	if path, ok := strings.CutPrefix(what, "replay:"); ok {
		return replayCmd(w, path)
	}
	h, ok := handlers[what]
	if !ok {
		return fmt.Errorf("unknown experiment %q", what)
	}
	return h(w, seed)
}
