// Command liflsim regenerates every table and figure of the paper's
// evaluation from the LIFL reproduction library.
//
// Usage:
//
//	liflsim fig4      # NH vs WH timelines + LIFL (Fig. 4, Fig. 7(c))
//	liflsim fig7      # data-plane transfer latency/CPU (Fig. 7(a,b))
//	liflsim fig8      # orchestration ablation (Fig. 8(a-d))
//	liflsim fig9r18   # ResNet-18 time/cost-to-accuracy + Fig. 10(a-c)
//	liflsim fig9r152  # ResNet-152 time/cost-to-accuracy + Fig. 10(d-f)
//	liflsim fig13     # message-queuing overheads (Appendix F)
//	liflsim overhead  # orchestration overhead (§6.1)
//	liflsim all       # everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/model"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	for _, what := range flag.Args() {
		if err := run(what, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "liflsim: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: liflsim [-seed n] {fig4|fig7|fig8|fig9r18|fig9r152|fig13|overhead|appendixe|ablation|verify|verifyfull|all}...")
}

func run(what string, seed int64) error {
	switch what {
	case "fig4":
		fmt.Print(experiments.FormatFig4(experiments.Fig4(), experiments.Fig7c()))
	case "fig7":
		fmt.Print(experiments.FormatFig7(experiments.Fig7ab()))
	case "fig8":
		fmt.Print(experiments.FormatFig8(experiments.Fig8(nil)))
	case "fig9r18":
		rows := experiments.Fig9(model.ResNet18, seed)
		fmt.Print(experiments.FormatFig9(rows))
		fmt.Print(experiments.FormatFig10(experiments.Fig10(rows)))
	case "fig9r152":
		rows := experiments.Fig9(model.ResNet152, seed)
		fmt.Print(experiments.FormatFig9(rows))
		fmt.Print(experiments.FormatFig10(experiments.Fig10(rows)))
	case "fig13":
		fmt.Print(experiments.FormatFig13(experiments.Fig13()))
	case "overhead":
		fmt.Print(experiments.FormatOverhead(experiments.Overhead(10_000)))
	case "appendixe":
		fmt.Print(experiments.FormatAppendixE(experiments.AppendixE()))
	case "verify":
		fmt.Print(experiments.FormatVerify(experiments.Verify(false)))
	case "verifyfull":
		fmt.Print(experiments.FormatVerify(experiments.Verify(true)))
	case "ablation":
		fmt.Print(experiments.FormatAblations(
			experiments.AblateFanIn(nil), experiments.AblateEWMA(nil), experiments.AblatePlacement()))
	case "all":
		for _, w := range []string{"fig7", "fig4", "fig13", "fig8", "overhead", "appendixe", "ablation", "fig9r18", "fig9r152"} {
			if err := run(w, seed); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
