package main

import (
	"fmt"
	"io"

	"repro/internal/trajstore"
)

// Replay flag state, filled in by main from -at / -milestones. replayAt
// only applies when the flag was passed explicitly (round 0 is a valid
// round number for injected runs, so the zero value cannot mean unset).
var (
	replayAt         int
	replayAtSet      bool
	replayMilestones bool
)

// validateReplay scans path end to end before any verb executes: a
// missing, truncated, or bit-flipped file — and an -at round outside the
// stored range — is a usage error (exit 2), mirroring how unknown
// scenario names are rejected up front.
func validateReplay(path string) error {
	s, err := trajstore.Replay(path, nil)
	if err != nil {
		return fmt.Errorf("replay %s: %v", path, err)
	}
	if replayAtSet && (replayAt < s.First.Round || replayAt > s.Last.Round) {
		return fmt.Errorf("replay %s: -at %d outside stored rounds [%d, %d]",
			path, replayAt, s.First.Round, s.Last.Round)
	}
	return nil
}

// replayCmd renders a stored trajectory: the header identity, the scalar
// outcomes the live run reported (re-derived purely from blocks), and —
// on request — the milestone crossings and a single round's record.
func replayCmd(w io.Writer, path string) error {
	var hit trajstore.Record
	var s *trajstore.Summary
	var err error
	if replayAtSet {
		hit, s, err = trajstore.ReplayAt(path, replayAt)
	} else {
		s, err = trajstore.Replay(path, nil)
	}
	if err != nil {
		return err
	}
	m := s.Meta
	fmt.Fprintf(w, "Trajectory %s\n", path)
	fmt.Fprintf(w, "  run: system=%s model=%s seed=%d target=%.2f\n", m.System, m.Model, m.Seed, m.Target)
	fmt.Fprintf(w, "  rounds: %d stored (%d..%d)\n", s.Rounds, s.First.Round, s.Last.Round)
	fmt.Fprintf(w, "  final: acc=%.4f sim(h)=%.2f cpu(h)=%.2f\n",
		s.Last.Acc, s.Last.Sim.Hours(), s.Last.CPU.Hours())
	if s.Reached {
		fmt.Fprintf(w, "  reached: true tta(h)=%.2f cpu-to-target(h)=%.2f\n",
			s.TimeToTarget.Hours(), s.CPUToTarget.Hours())
	} else {
		fmt.Fprintf(w, "  reached: false\n")
	}
	if replayMilestones {
		fmt.Fprintf(w, "  milestones:\n")
		crossed := make(map[float64]trajstore.Crossing, len(s.Crossings))
		for _, c := range s.Crossings {
			crossed[c.Target] = c
		}
		for _, level := range m.Milestones {
			if c, ok := crossed[level]; ok {
				fmt.Fprintf(w, "    %.2f at round %d (acc=%.4f sim(h)=%.2f cpu(h)=%.2f)\n",
					level, c.Round, c.Acc, c.Sim.Hours(), c.CPU.Hours())
			} else {
				fmt.Fprintf(w, "    %.2f not crossed\n", level)
			}
		}
	}
	if replayAtSet {
		fmt.Fprintf(w, "  round %d: acc=%.6f sim(h)=%.4f cpu(h)=%.4f updates=%d discarded=%d shares=%d\n",
			hit.Round, hit.Acc, hit.Sim.Hours(), hit.CPU.Hours(), hit.Updates, hit.Discarded, hit.Shares)
	}
	return nil
}
