package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// profiler writes one CPU profile (<scenario>.cpu.pprof, covering the
// measurement window) and one heap profile (<scenario>.heap.pprof, taken
// after a forced GC at window close) per scenario under dir. Profiling is
// observation-only: the simulated outcomes liflbench records are
// byte-identical with it on or off; only wall-clock metrics carry its
// (small) sampling overhead — so profile runs should not be committed as
// baselines.
type profiler struct{ dir string }

// newProfiler returns a nil profiler for an empty dir; every method is
// nil-safe, so call sites never branch on whether -pprof was passed.
func newProfiler(dir string) (*profiler, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &profiler{dir: dir}, nil
}

// start begins the scenario's CPU profile and returns the stop func that
// ends it and snapshots the heap. Only one CPU profile can run at a time
// (a runtime/pprof constraint), which the per-scenario loop satisfies.
func (p *profiler) start(name string) (stop func() error, err error) {
	if p == nil {
		return func() error { return nil }, nil
	}
	f, err := os.Create(filepath.Join(p.dir, name+".cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("pprof %s: %w", name, err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return err
		}
		hf, err := os.Create(filepath.Join(p.dir, name+".heap.pprof"))
		if err != nil {
			return err
		}
		defer hf.Close()
		// Collect garbage first so the profile shows live retention, not
		// whatever the last measurement round left unswept.
		runtime.GC()
		return pprof.WriteHeapProfile(hf)
	}, nil
}
