// Command liflbench is the perf-trajectory runner: it sweeps the scenario
// registry through the instrumented harness (best-of-N real-clock
// measurement, allocation deltas, peak heap, deterministic sim outcomes,
// time-to-accuracy milestones, the §6.1 placement microbenchmark) and
// emits a versioned BENCH_*.json suite at the repo root. Given a baseline
// it compares with tolerance-based verdicts and exits non-zero on
// regression — which is what CI gates on.
//
// Usage:
//
//	liflbench                                  # measure everything -> BENCH_PR10.json
//	liflbench -short                           # only short-class scenarios (the PR-CI gate)
//	liflbench -scenario fig9-r18,million-clients
//	liflbench -baseline BENCH_baseline.json -tolerance 0.15
//	liflbench -pprof profiles/                 # also write per-scenario CPU+heap profiles
//	liflbench -list                            # show registry entries + bench classes
//
// Exit status: 0 on success, 1 when the baseline comparison finds
// regressions, 2 on usage errors.
//
// Deterministic metrics (mallocs, alloc bytes, simulated time) gate at
// -tolerance even across machines; real-clock metrics (wall, peak heap,
// placement µs) gate at -wall-tolerance (default 4×) because a committed
// baseline usually comes from different hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/perfrec"
	"repro/internal/scenario"
)

// placementScenario names the synthetic registry entry for the §6.1
// placement-decision microbenchmark (10K clients, 100 nodes).
const placementScenario = "placement-10k"

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output suite path")
	baseline := flag.String("baseline", "", "baseline suite to compare against (empty = measure only)")
	tolerance := flag.Float64("tolerance", perfrec.DefaultTolerance, "allowed fractional growth for deterministic metrics (0 = exact equality)")
	wallTol := flag.Float64("wall-tolerance", 0, "allowed fractional growth for wall-clock metrics (0 = 4x tolerance)")
	repeat := flag.Int("repeat", 0, "best-of-N repeat override (0 = per-scenario bench metadata)")
	short := flag.Bool("short", false, "only short-class scenarios (the PR-CI bench gate)")
	names := flag.String("scenario", "", "comma-separated scenario subset (default: every registry entry)")
	handicap := flag.Float64("handicap", 1, "multiply measured wall-clock metrics — self-test hook for the regression gate")
	note := flag.String("note", "", "free-form provenance recorded in the suite")
	list := flag.Bool("list", false, "list registry entries with bench metadata and exit")
	pprofDir := flag.String("pprof", "", "directory for per-scenario CPU and heap profiles (empty = no profiling)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "liflbench: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *repeat < 0 || *tolerance < 0 || *wallTol < 0 || *handicap <= 0 {
		fmt.Fprintln(os.Stderr, "liflbench: -repeat/-tolerance/-wall-tolerance must be >= 0 and -handicap > 0")
		flag.Usage()
		os.Exit(2)
	}

	if *list {
		for _, n := range scenario.Names() {
			sc := scenario.MustGet(n)
			fmt.Printf("%-20s %-6s repeats=%d runs=%d  %s\n", n, sc.Bench.ClassOrDefault(), sc.Bench.Repeats, len(sc.Expand()), sc.Description)
		}
		return
	}

	selected, err := selectScenarios(*names, *short)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liflbench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	suite := &perfrec.Suite{
		Tool:      "liflbench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Note:      *note,
	}
	prof, err := newProfiler(*pprofDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liflbench: %v\n", err)
		os.Exit(1)
	}
	suite.Runs = append(suite.Runs, measurePlacement())
	for _, name := range selected {
		sc := scenario.MustGet(name)
		fmt.Fprintf(os.Stderr, "liflbench: measuring %s (%d runs)\n", name, len(sc.Expand()))
		stop, err := prof.start(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "liflbench: %v\n", err)
			os.Exit(1)
		}
		recs, err := harness.MeasureScenario(sc, harness.MeasureOptions{Repeats: *repeat})
		if perr := stop(); perr != nil {
			fmt.Fprintf(os.Stderr, "liflbench: %v\n", perr)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "liflbench: %v\n", err)
			os.Exit(1)
		}
		suite.Runs = append(suite.Runs, recs...)
	}
	if *handicap != 1 {
		for i := range suite.Runs {
			suite.Runs[i].WallNS = int64(float64(suite.Runs[i].WallNS) * *handicap)
			suite.Runs[i].RoundWallMaxNS = int64(float64(suite.Runs[i].RoundWallMaxNS) * *handicap)
			suite.Runs[i].PlacementUS *= *handicap
		}
		fmt.Fprintf(os.Stderr, "liflbench: wall-clock metrics scaled by %g (self-test handicap)\n", *handicap)
	}
	if err := suite.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "liflbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "liflbench: wrote %d records to %s\n", len(suite.Runs), *out)

	if *baseline == "" {
		return
	}
	base, err := perfrec.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liflbench: loading baseline: %v\n", err)
		os.Exit(1)
	}
	// Narrow the baseline to what this invocation was asked to measure —
	// but never to the current registry's names alone, or a deleted
	// registry entry would vanish from the comparison instead of failing
	// it as "missing". An explicit -scenario list is user intent; -short
	// filters by the baseline's own class tags; a full run compares
	// against the whole baseline.
	switch {
	case *names != "":
		base = perfrec.FilterScenarios(base, append(selected, placementScenario))
	case *short:
		base = perfrec.FilterClass(base, scenario.ClassShort)
	}
	opt := perfrec.Options{Tolerance: *tolerance, WallTolerance: *wallTol}
	if *tolerance == 0 {
		opt.Tolerance = -1 // flag 0 means exact equality, not "use default"
	}
	verdicts := perfrec.Compare(base, suite, opt)
	regs := perfrec.Regressions(verdicts)
	for _, v := range verdicts {
		fmt.Println(v)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "liflbench: %d regression(s) vs %s:\n", len(regs), *baseline)
		for _, v := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "liflbench: no regressions vs %s (%d comparisons)\n", *baseline, len(verdicts))
}

// selectScenarios resolves the -scenario/-short selection against the
// registry, preserving registry (sorted) order.
func selectScenarios(csv string, short bool) ([]string, error) {
	all := scenario.Names()
	want := map[string]bool{}
	if csv != "" {
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if _, ok := scenario.Get(n); !ok {
				return nil, fmt.Errorf("unknown scenario %q (have: %s)", n, strings.Join(all, ", "))
			}
			want[n] = true
		}
		if len(want) == 0 {
			return nil, fmt.Errorf("-scenario selected nothing")
		}
	}
	var out []string
	for _, n := range all {
		if csv != "" && !want[n] {
			continue
		}
		if short && !scenario.MustGet(n).Bench.ShortClass() {
			if want[n] {
				// The operator named it and -short silently eating it would
				// make CI configs believe it was measured and gated.
				fmt.Fprintf(os.Stderr, "liflbench: warning: -short drops explicitly named %s-class scenario %q\n",
					scenario.MustGet(n).Bench.ClassOrDefault(), n)
			}
			continue
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection matched no scenarios")
	}
	return out, nil
}

// measurePlacement records the §6.1 orchestration-overhead microbenchmark
// (best-of-3 inside experiments.Overhead) as a synthetic suite entry, so
// the placement engine's decision time is part of the trajectory.
func measurePlacement() perfrec.Run {
	r := experiments.Overhead(10_000)
	return perfrec.Run{
		Scenario:    placementScenario,
		Class:       scenario.ClassShort,
		Repeats:     3,
		WallNS:      int64(r.PlacementWall),
		PlacementUS: float64(r.PlacementWall.Nanoseconds()) / 1e3,
	}
}
