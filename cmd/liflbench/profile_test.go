package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The -pprof smoke: a profiled window yields non-empty CPU and heap
// profile files, and the nil profiler (no -pprof) is a true no-op.
func TestProfilerWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	p, err := newProfiler(dir)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := p.start("smoke")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile window has samples to record
	// (an empty window still writes a valid file).
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"smoke.cpu.pprof", "smoke.heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestProfilerNilNoOp(t *testing.T) {
	p, err := newProfiler("")
	if err != nil || p != nil {
		t.Fatalf("empty dir: p=%v err=%v", p, err)
	}
	stop, err := p.start("anything")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
