package lifl

// One benchmark per table/figure of the paper's evaluation. Each benchmark
// regenerates its figure's measurement from scratch on every iteration, so
// `go test -bench=. -benchmem` doubles as the full reproduction harness.
// The ReportMetric calls surface the figure's headline quantity (seconds of
// simulated ACT, CPU-hours, ratios) alongside the usual ns/op.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flwork"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// BenchmarkFig4Hierarchy regenerates Fig. 4: NH vs WH round time on the
// serverful data plane (one node, eight ResNet-152 trainers).
func BenchmarkFig4Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4()
		if i == 0 {
			b.ReportMetric(res.NHRound.Seconds(), "NH-round-s")
			b.ReportMetric(res.WHRound.Seconds(), "WH-round-s")
		}
	}
}

// BenchmarkFig7Transfer regenerates Fig. 7(a,b): single intra-node transfer
// latency and CPU for LIFL/SF/SL across the model zoo.
func BenchmarkFig7Transfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7ab()
		if i == 0 {
			last := rows[len(rows)-1] // ResNet-152
			b.ReportMetric(last.LIFLLat.Seconds(), "LIFL-s")
			b.ReportMetric(last.SFLat.Seconds()/last.LIFLLat.Seconds(), "SF/LIFL")
			b.ReportMetric(last.SLLat.Seconds()/last.LIFLLat.Seconds(), "SL/LIFL")
		}
	}
}

// BenchmarkFig7cLIFLTimeline regenerates Fig. 7(c): the LIFL hierarchical
// round timeline.
func BenchmarkFig7cLIFLTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7c()
		if i == 0 {
			b.ReportMetric(res.Round.Seconds(), "round-s")
		}
	}
}

// BenchmarkFig8ACT regenerates Fig. 8(a-d): the orchestration ablation over
// 20/60/100 concurrent updates.
func BenchmarkFig8ACT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig8([]int{20, 60, 100})
		if i == 0 {
			var slh, full float64
			for _, c := range cells {
				if c.Updates != 20 {
					continue
				}
				switch c.Variant {
				case "SL-H":
					slh = c.ACT.Seconds()
				case "+1+2+3+4":
					full = c.ACT.Seconds()
				}
			}
			b.ReportMetric(slh, "SLH-act-s")
			b.ReportMetric(full, "LIFL-act-s")
			b.ReportMetric(slh/full, "reduction")
		}
	}
}

// benchFig9 runs the full §6.2/§6.3 workload for one system+model.
func benchFig9(b *testing.B, sys core.SystemKind, m model.Spec, active int, class flwork.ClientClass, mc float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := core.Run(core.RunConfig{
			System: sys, Model: m, Clients: 2800, ActivePerRound: active,
			Class: class, TargetAccuracy: 0.70, Nodes: 5, MC: mc, Seed: 1, MaxRounds: 400,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.TimeToTarget.Hours(), "wall-h")
			b.ReportMetric(rep.CPUToTarget.Hours(), "cpu-h")
		}
	}
}

// BenchmarkFig9R18LIFL..SL regenerate Fig. 9(a,b) and the Fig. 10(a-c)
// series: ResNet-18, 120 active mobile clients.
func BenchmarkFig9R18LIFL(b *testing.B) {
	benchFig9(b, core.SystemLIFL, model.ResNet18, 120, flwork.Mobile, 60)
}
func BenchmarkFig9R18SF(b *testing.B) {
	benchFig9(b, core.SystemSF, model.ResNet18, 120, flwork.Mobile, 60)
}
func BenchmarkFig9R18SL(b *testing.B) {
	benchFig9(b, core.SystemSL, model.ResNet18, 120, flwork.Mobile, 60)
}

// BenchmarkFig9R152LIFL..SL regenerate Fig. 9(c,d) and Fig. 10(d-f):
// ResNet-152, 15 always-on server clients.
func BenchmarkFig9R152LIFL(b *testing.B) {
	benchFig9(b, core.SystemLIFL, model.ResNet152, 15, flwork.Server, 20)
}
func BenchmarkFig9R152SF(b *testing.B) {
	benchFig9(b, core.SystemSF, model.ResNet152, 15, flwork.Server, 20)
}
func BenchmarkFig9R152SL(b *testing.B) {
	benchFig9(b, core.SystemSL, model.ResNet152, 15, flwork.Server, 20)
}

// BenchmarkScenario measures every scenario-registry entry through the
// same instrumented path cmd/liflbench uses (harness.MeasureScenario →
// perfrec records), so `go test -bench BenchmarkScenario` and a liflbench
// sweep report identical quantities — wall seconds, simulated hours, and
// allocation counts per entry. -short skips the long-class entries, like
// the PR-CI bench gate does.
func BenchmarkScenario(b *testing.B) {
	for _, name := range scenario.Names() {
		sc := scenario.MustGet(name)
		b.Run(name, func(b *testing.B) {
			if testing.Short() && !sc.Bench.ShortClass() {
				b.Skipf("%s is %s-class; run without -short", name, scenario.ClassLong)
			}
			for i := 0; i < b.N; i++ {
				recs, err := harness.MeasureScenario(sc, harness.MeasureOptions{Repeats: 1})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var wallNS, simNS, mallocs float64
					for _, r := range recs {
						wallNS += float64(r.WallNS)
						simNS += float64(r.SimNS)
						mallocs += float64(r.Mallocs)
					}
					b.ReportMetric(wallNS/1e9, "wall-s")
					b.ReportMetric(simNS/3600e9, "sim-h")
					b.ReportMetric(mallocs, "mallocs")
				}
			}
		})
	}
}

// BenchmarkFig11Async regenerates the Fig. 11 buffered-async workload (the
// fig11-async registry entry): time-to-accuracy of the event-driven
// buffered-async system, plus its versions and mean staleness.
func BenchmarkFig11Async(b *testing.B) {
	cfg := scenario.MustGet("fig11-async").Expand()[0].Cfg
	for i := 0; i < b.N; i++ {
		rep, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.TimeToTarget.Hours(), "wall-h")
			b.ReportMetric(float64(rep.RoundsRun), "versions")
			b.ReportMetric(rep.MeanStaleness, "staleness")
		}
	}
}

// BenchmarkFig13Queuing regenerates Fig. 13 / Appendix F: message-queuing
// overheads of the four pipelines.
func BenchmarkFig13Queuing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13()
		if i == 0 {
			var liflD, slbD float64
			for _, r := range rows {
				if r.Model.Name != model.ResNet152.Name {
					continue
				}
				switch r.Setup {
				case "LIFL":
					liflD = r.Delay.Seconds()
				case "SL-B":
					slbD = r.Delay.Seconds()
				}
			}
			b.ReportMetric(slbD/liflD, "SLB/LIFL-delay")
		}
	}
}

// BenchmarkPlacement10K regenerates the §6.1 orchestration-overhead bound:
// locality-aware placement of 10,000 clients (paper: < 17 ms).
func BenchmarkPlacement10K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Overhead(10_000)
	}
}

// benchPlacement times one indexed BestFit decision at the given scale over
// the standard 100-node §6.1 cluster, excluding node-state setup.
func benchPlacement(b *testing.B, clients int) {
	b.Helper()
	mkNodes := func() []*placement.NodeState {
		nodes := make([]*placement.NodeState, 100)
		for i := range nodes {
			nodes[i] = &placement.NodeState{
				Name:     fmt.Sprintf("node-%03d", i),
				MC:       float64(clients)/50 + 20,
				ExecTime: 500 * sim.Millisecond,
			}
		}
		return nodes
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nodes := mkNodes()
		b.StartTimer()
		if _, err := (placement.BestFit{}).PlaceIndexed(clients, nodes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacement100K and BenchmarkPlacement1M probe the roadmap scale:
// the indexed engine is O(nodes log nodes + batches), so decisions must stay
// flat far beyond the paper's 10K clients (1M well under 500 ms/op).
func BenchmarkPlacement100K(b *testing.B) { benchPlacement(b, 100_000) }
func BenchmarkPlacement1M(b *testing.B)   { benchPlacement(b, 1_000_000) }

// BenchmarkEWMA measures the per-estimate cost of the hierarchy planner's
// smoother (paper: ~0.2 ms per estimate).
func BenchmarkEWMA(b *testing.B) {
	r := experiments.Overhead(1_000)
	_ = r
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Overhead(1_000)
	}
}

// BenchmarkAblationFanIn sweeps the §5.2 leaf fan-in design choice.
func BenchmarkAblationFanIn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblateFanIn([]int{1, 2, 20})
		if i == 0 {
			b.ReportMetric(res[1].ACT.Seconds(), "I2-act-s")
			b.ReportMetric(res[2].ACT.Seconds(), "I20-act-s")
		}
	}
}

// BenchmarkAblationPlacement compares BestFit vs WorstFit end-to-end.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblatePlacement()
		if i == 0 {
			b.ReportMetric(res[0].ACT.Seconds(), "bestfit-act-s")
			b.ReportMetric(res[1].ACT.Seconds(), "worstfit-act-s")
		}
	}
}

// BenchmarkAblationEWMA re-derives the α=0.7 choice.
func BenchmarkAblationEWMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblateEWMA(nil)
		if i == 0 {
			for _, r := range res {
				if r.Alpha == 0.7 {
					b.ReportMetric(r.MeanAbsError, "err@0.7")
				}
			}
		}
	}
}
