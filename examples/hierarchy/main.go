// Hierarchy: reproduce the paper's motivating timelines — a ResNet-152
// round with eight remote trainers on the serverful data plane without
// hierarchy (Fig. 4 upper), with hierarchy (Fig. 4 lower), and on LIFL's
// shared-memory data plane (Fig. 7(c)) — rendered as ASCII Gantt charts.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	f4 := experiments.Fig4()
	f7c := experiments.Fig7c()
	fmt.Print(experiments.FormatFig4(f4, f7c))
	fmt.Printf("\nhierarchy alone buys %.1fs; LIFL's data plane buys %.1fs more\n",
		(f4.NHRound - f4.WHRound).Seconds(), (f4.WHRound - f7c.Round).Seconds())
}
