// MobileFL: the paper's ResNet-18 mobile-device workload (§6.2) at reduced
// scale — hibernating clients with heterogeneous compute, compared across
// all four systems. Prints a time/cost-to-accuracy table like Fig. 9(a,b).
//
//	go run ./examples/mobilefl
package main

import (
	"fmt"
	"log"

	lifl "repro"
)

func main() {
	fmt.Println("system  wall(h)  cpu(h)  rounds  reached")
	for _, sys := range []lifl.SystemKind{lifl.SystemLIFL, lifl.SystemSLH, lifl.SystemSF, lifl.SystemSL} {
		rep, err := lifl.Run(lifl.RunConfig{
			System:         sys,
			Model:          lifl.ResNet18,
			Clients:        800,
			ActivePerRound: 48,
			Class:          lifl.MobileClients,
			TargetAccuracy: 0.65,
			MaxRounds:      80,
			MC:             30,
			Seed:           21,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  %7.2f  %6.2f  %6d  %v\n",
			sys, rep.TimeToTarget.Hours(), rep.CPUToTarget.Hours(), len(rep.Rounds), rep.Reached)
	}
}
