// AsyncFL: buffered-asynchronous federated learning (Fig. 11 / Appendix A)
// on the first-class async system — a fixed concurrency of clients trains
// at all times, the service folds updates into a FedBuff-style buffer of
// size K, and every K folds the global model advances one version through
// a staleness-weighted merge. The same workload then runs synchronously on
// LIFL for the Fig. 11 comparison: async reaches the target with no round
// barriers, trading a little staleness for wall-clock time.
//
//	go run ./examples/asyncfl
package main

import (
	"fmt"
	"log"

	lifl "repro"
)

func main() {
	base := lifl.RunConfig{
		Model:          lifl.ResNet18,
		Clients:        400, // client population
		ActivePerRound: 32,  // async: training concurrency; sync: active per round
		Class:          lifl.MobileClients,
		TargetAccuracy: 0.60,
		MaxRounds:      80,
		Nodes:          2,
		Seed:           7,
	}

	async := base
	async.System = lifl.SystemAsync
	async.Async = &lifl.AsyncSpec{
		BufferK:           8, // updates folded per version bump
		StalenessHalfLife: 4, // a 4-version-old update weighs half
	}
	// Stream the first few version bumps as they happen — there is no
	// round barrier to wait for.
	shown := 0
	async.OnRound = func(o lifl.RoundObservation) {
		if shown < 5 {
			fmt.Printf("version %2d: t=%6.1fs folded=%d acc=%.2f\n",
				o.Result.Round, o.Acc.Time.Seconds(), o.Result.Updates, o.Acc.Accuracy)
			shown++
		}
	}
	arep, err := lifl.Run(async)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("... %d versions total, mean staleness %.2f, %d discarded\n",
		arep.RoundsRun, arep.MeanStaleness, arep.UpdatesDiscarded)

	srep, err := lifl.Run(base) // defaults to synchronous LIFL
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("%-6s %10s %9s %9s %11s\n", "mode", "rounds/ver", "tta(h)", "cpu(h)", "staleness")
	fmt.Printf("%-6s %10d %9.2f %9.2f %11.2f\n",
		"async", arep.RoundsRun, arep.TimeToTarget.Hours(), arep.CPUToTarget.Hours(), arep.MeanStaleness)
	fmt.Printf("%-6s %10d %9.2f %9.2f %11.2f\n",
		"sync", srep.RoundsRun, srep.TimeToTarget.Hours(), srep.CPUToTarget.Hours(), srep.MeanStaleness)
}
