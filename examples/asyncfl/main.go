// AsyncFL: the paper's future-work direction (Fig. 11) — asynchronous FL
// with a fixed training concurrency, comparing eager and lazy aggregation
// timing plus staleness damping.
//
//	go run ./examples/asyncfl
package main

import (
	"fmt"
	"log"

	"repro/internal/asyncfl"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func main() {
	for _, eager := range []bool{true, false} {
		eng := sim.NewEngine()
		svc, err := asyncfl.New(eng, asyncfl.Config{
			Goal:              2, // Fig. 11: aggregation goal = 2
			Concurrency:       4, // Fig. 11: concurrency = 4
			Eager:             eager,
			StalenessHalfLife: 2,
		}, tensor.FromSlice(make([]float32, 64)))
		if err != nil {
			log.Fatal(err)
		}
		// Four clients with very different speeds train continuously; each
		// re-enters as soon as its slot frees (async: no round barrier).
		speeds := []sim.Duration{8 * sim.Second, 11 * sim.Second, 23 * sim.Second, 47 * sim.Second}
		rng := sim.NewRNG(11)
		var loop func(client int)
		submitted := 0
		loop = func(client int) {
			base := svc.Version()
			eng.After(rng.Jitter(speeds[client], 0.1), func() {
				if submitted >= 40 {
					return
				}
				submitted++
				u := tensor.FromSlice(make([]float32, 64))
				u.Fill(float32(base + 1))
				if err := svc.Submit(asyncfl.Update{Tensor: u, Weight: 1, BaseVersion: base}); err != nil {
					log.Fatal(err)
				}
				loop(client)
			})
		}
		for c := range speeds {
			loop(c)
		}
		if err := eng.RunUntilIdle(); err != nil {
			log.Fatal(err)
		}
		mode := "eager"
		if !eager {
			mode = "lazy"
		}
		fmt.Printf("%-5s: %2d versions from %d updates in %v; mean staleness %.2f versions\n",
			mode, svc.Version(), svc.Received, eng.Now().Round(sim.Second), svc.MeanStaleness())
	}
}
