// Placement: the locality-aware load balancing of §5.1 in isolation —
// BestFit (LIFL) vs WorstFit ("Least Connection") vs FirstFit bin-packing
// of model updates onto nodes, plus the hierarchy plans §5.2 derives.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/autoscaler"
	"repro/internal/placement"
	"repro/internal/sim"
)

func main() {
	mkNodes := func() []*placement.NodeState {
		var ns []*placement.NodeState
		for i := 0; i < 5; i++ {
			ns = append(ns, &placement.NodeState{
				Name:     fmt.Sprintf("node-%d", i),
				MC:       20,
				ExecTime: 250 * sim.Millisecond,
			})
		}
		return ns
	}
	for _, load := range []int{20, 60, 100} {
		fmt.Printf("== %d concurrent model updates ==\n", load)
		for _, pol := range []placement.Policy{placement.BestFit{}, placement.WorstFit{}, placement.FirstFit{}} {
			assign, err := pol.Place(load, mkNodes())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s nodes=%d  %v\n", pol.Name(), placement.NodesUsed(assign),
				placement.SortedAssignments(assign))
		}
		// The hierarchy LIFL plans for the BestFit assignment (fan-in I=2).
		assign, _ := placement.BestFit{}.Place(load, mkNodes())
		queues := make(map[string]float64)
		for n, c := range assign {
			queues[n] = float64(c)
		}
		plans, total := autoscaler.PlanCluster(queues, 2)
		names := make([]string, 0, len(plans))
		for n := range plans {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p := plans[n]
			if p.Updates == 0 {
				continue
			}
			fmt.Printf("  plan %s: %d leaves, middle=%v (updates=%d)\n", n, p.Leaves, p.Middle, p.Updates)
		}
		fmt.Printf("  total aggregators: %d (+1 top)\n\n", total)
	}
}
