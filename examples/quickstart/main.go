// Quickstart: run a small federated-learning workload on LIFL and print
// per-round results plus the final time-to-accuracy summary.
//
//	go run ./examples/quickstart
//
// RunConfig.System selects among the five systems — synchronous rounds on
// LIFL/SL-H/SF/SL, or buffered-async training (lifl.SystemAsync; see
// examples/asyncfl). Named, sweepable workloads live in the scenario
// registry (`liflsim scenarios`); docs/GUIDE.md walks the whole workflow.
package main

import (
	"fmt"
	"log"

	lifl "repro"
)

func main() {
	rep, err := lifl.Run(lifl.RunConfig{
		System:         lifl.SystemLIFL,
		Model:          lifl.ResNet18,
		Clients:        400, // client population
		ActivePerRound: 32,  // simultaneously active per round
		Class:          lifl.MobileClients,
		TargetAccuracy: 0.60,
		MaxRounds:      60,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system=LIFL model=%s\n", rep.Model)
	for _, r := range rep.Rounds[:min(5, len(rep.Rounds))] {
		fmt.Printf("round %2d: duration=%6.1fs act=%5.1fs cpu=%5.1fs instances=%d nodes=%d\n",
			r.Round, (r.End - r.Start).Seconds(), r.ACT.Seconds(),
			r.CPUTime.Seconds(), r.AggsActive, r.NodesUsed)
	}
	fmt.Printf("... %d rounds total\n", len(rep.Rounds))
	if rep.Reached {
		fmt.Printf("reached %.0f%% accuracy in %.2f h wall clock, %.2f CPU-hours\n",
			60.0, rep.TimeToTarget.Hours(), rep.CPUToTarget.Hours())
	} else {
		fmt.Println("accuracy target not reached within MaxRounds")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
