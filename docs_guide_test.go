package lifl

// The docs gate: every fenced code block in README.md, docs/GUIDE.md and
// docs/MEMORY.md must carry a language tag, and every `go`-tagged block
// must be a complete, parseable, gofmt-clean Go file (snippets are written
// as full programs so readers can paste-and-run them). Blocks that are
// illustrative output are tagged `text`. CI runs this alongside the
// gofmt/vet gate, so the docs' code can never rot silently.

import (
	"bytes"
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// guideBlocks extracts (tag, body, startLine) triples for every fenced
// block in the given markdown.
func guideBlocks(t *testing.T, md string) [][3]string {
	t.Helper()
	var blocks [][3]string
	lines := strings.Split(md, "\n")
	for i := 0; i < len(lines); i++ {
		l := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(l, "```") {
			continue
		}
		tag := strings.TrimPrefix(l, "```")
		start := i + 1
		var body []string
		i++
		for ; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		if i == len(lines) {
			t.Fatalf("line %d: unterminated fence", start)
		}
		blocks = append(blocks, [3]string{tag, strings.Join(body, "\n"), fmt.Sprint(start)})
	}
	return blocks
}

func TestGuideSnippets(t *testing.T) {
	for _, doc := range []string{"README.md", "docs/GUIDE.md", "docs/MEMORY.md"} {
		doc := doc
		t.Run(doc, func(t *testing.T) {
			md, err := os.ReadFile(doc)
			if err != nil {
				t.Fatal(err)
			}
			blocks := guideBlocks(t, string(md))
			if len(blocks) == 0 {
				t.Fatalf("%s has no fenced blocks — the doc lost its examples", doc)
			}
			goBlocks := 0
			for _, b := range blocks {
				tag, body, line := b[0], b[1], b[2]
				switch tag {
				case "":
					t.Errorf("%s line %s: fenced block without a language tag (use go/sh/text)", doc, line)
				case "go":
					goBlocks++
					src := []byte(body + "\n")
					fset := token.NewFileSet()
					if _, err := parser.ParseFile(fset, "snippet.go", src, parser.AllErrors); err != nil {
						t.Errorf("%s line %s: go block does not parse: %v", doc, line, err)
						continue
					}
					formatted, err := format.Source(src)
					if err != nil {
						t.Errorf("%s line %s: gofmt: %v", doc, line, err)
						continue
					}
					if !bytes.Equal(formatted, src) {
						t.Errorf("%s line %s: go block is not gofmt-clean", doc, line)
					}
				case "sh", "text", "yaml", "json":
					// Non-Go blocks only need their honest tag.
				default:
					t.Errorf("%s line %s: unexpected fence tag %q", doc, line, tag)
				}
			}
			if goBlocks == 0 {
				t.Fatalf("%s has no go-tagged snippets to lint", doc)
			}
		})
	}
}
