package lifl

import "testing"

// TestPublicAPISmoke exercises the facade end-to-end the way a downstream
// user would.
func TestPublicAPISmoke(t *testing.T) {
	rep, err := Run(RunConfig{
		System:         SystemLIFL,
		Model:          ResNet18,
		Clients:        200,
		ActivePerRound: 12,
		Class:          MobileClients,
		TargetAccuracy: 0.40,
		MaxRounds:      40,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reached {
		t.Fatal("target not reached")
	}
	if len(rep.Rounds) == 0 || rep.FinalGlobal == nil {
		t.Fatal("report incomplete")
	}
}

func TestPlatformRoundByRound(t *testing.T) {
	p, err := NewPlatform(RunConfig{
		System:         SystemSF,
		Model:          ResNet34,
		Clients:        100,
		ActivePerRound: 8,
		Class:          ServerClients,
		MaxRounds:      2,
		TargetAccuracy: 0.99,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
}

// TestScenarioSweepAPI drives the declarative surface the way a
// downstream user would: look up a registry scenario, shrink it, sweep it
// across workers, and read ordered results.
func TestScenarioSweepAPI(t *testing.T) {
	sc, ok := GetScenario("fig9-r18")
	if !ok {
		t.Fatal("fig9-r18 not registered")
	}
	sc.Clients = 150
	sc.ActivePerRound = 10
	sc.MaxRounds = 2
	sc.TargetAccuracy = 0.99
	runs := sc.Expand()
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	results := Sweep(runs, 3)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
		if r.Run.Cfg.System != runs[i].Cfg.System {
			t.Fatal("results out of input order")
		}
		if r.Report.RoundsRun != 2 {
			t.Fatalf("run %d: %d rounds", i, r.Report.RoundsRun)
		}
	}
	if err := RegisterScenario(Scenario{Name: "user-custom", Clients: 99}); err != nil {
		t.Fatal(err)
	}
	names := Scenarios()
	found := false
	for _, n := range names {
		if n == "user-custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("custom scenario missing from %v", names)
	}
}

// The large-scale knobs re-exported on RunConfig: streaming selector plus
// per-round observation, with the default path untouched.
func TestStreamingRunAPI(t *testing.T) {
	var rounds int
	rep, err := Run(RunConfig{
		Model:          ResNet18,
		Clients:        5000,
		ActivePerRound: 16,
		Class:          MobileClients,
		TargetAccuracy: 0.99,
		MaxRounds:      3,
		Selector:       SelectStream,
		StreamOnly:     true,
		OnRound:        func(RoundObservation) { rounds++ },
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 || rep.RoundsRun != 3 || len(rep.Rounds) != 0 {
		t.Fatalf("rounds=%d reported=%d slices=%d", rounds, rep.RoundsRun, len(rep.Rounds))
	}
}

func TestModelZooExported(t *testing.T) {
	for _, m := range []ModelSpec{ResNet18, ResNet34, ResNet152} {
		if m.Params == 0 || m.Bytes() == 0 {
			t.Fatalf("bad spec %v", m)
		}
	}
	f := AllFlags()
	if !f.LocalityPlacement || !f.HierarchyPlan || !f.Reuse || !f.Eager {
		t.Fatal("AllFlags incomplete")
	}
}
