package lifl

import "testing"

// TestPublicAPISmoke exercises the facade end-to-end the way a downstream
// user would.
func TestPublicAPISmoke(t *testing.T) {
	rep, err := Run(RunConfig{
		System:         SystemLIFL,
		Model:          ResNet18,
		Clients:        200,
		ActivePerRound: 12,
		Class:          MobileClients,
		TargetAccuracy: 0.40,
		MaxRounds:      40,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reached {
		t.Fatal("target not reached")
	}
	if len(rep.Rounds) == 0 || rep.FinalGlobal == nil {
		t.Fatal("report incomplete")
	}
}

func TestPlatformRoundByRound(t *testing.T) {
	p, err := NewPlatform(RunConfig{
		System:         SystemSF,
		Model:          ResNet34,
		Clients:        100,
		ActivePerRound: 8,
		Class:          ServerClients,
		MaxRounds:      2,
		TargetAccuracy: 0.99,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
}

func TestModelZooExported(t *testing.T) {
	for _, m := range []ModelSpec{ResNet18, ResNet34, ResNet152} {
		if m.Params == 0 || m.Bytes() == 0 {
			t.Fatalf("bad spec %v", m)
		}
	}
	f := AllFlags()
	if !f.LocalityPlacement || !f.HierarchyPlan || !f.Reuse || !f.Eager {
		t.Fatal("AllFlags incomplete")
	}
}
