// Package lifl is the public API of the LIFL reproduction library — a
// faithful, simulation-backed implementation of "LIFL: A Lightweight,
// Event-driven Serverless Platform for Federated Learning" (MLSys 2024).
//
// The package re-exports the library's stable surface:
//
//   - Run / RunConfig / Report: execute a full FedAvg workload on one of
//     the five systems — synchronous rounds on LIFL, SL-H, SF or SL, or
//     buffered-asynchronous training (SystemAsync, Fig. 11 / Appendix A,
//     tuned by RunConfig.Async) — and collect the paper's evaluation
//     metrics (time-to-accuracy, cost-to-accuracy, per-round ACT/CPU,
//     arrival and instance time series; versions and staleness for async).
//   - NewPlatform: assemble a platform for round-by-round control.
//   - Scenario / GetScenario / RegisterScenario / Scenarios: the
//     declarative workload layer. A Scenario names a complete setting
//     (system × model × population × failure model × scale knobs) plus
//     sweep axes, and expands into independent RunConfigs; the paper's
//     §6.2 workloads ship as registry entries.
//   - Sweep: fan a scenario's expanded runs across a worker pool. Each
//     run owns a private simulation engine, so results are byte-identical
//     at any worker count and are returned in input order.
//   - Multi-cell federation (RunConfig.Cells / CellSpec): the sixth
//     deployment shape — K locality-routed cells, each an independent
//     aggregation stack, stitched by a per-round cross-cell tier with
//     heartbeat-monitored cell failover (internal/cell). Sweeps route
//     fabric configs automatically; SweepResult.Cells carries the
//     per-cell detail. The fabric is elastic (RunConfig.CellPlan):
//     round-stamped join/drain/weight pushes reconfigure it live —
//     validated wholesale up front (PlanDiff dry-runs the schedule),
//     applied atomically at round starts, deterministic for a fixed seed.
//   - Large-scale knobs on RunConfig: the SelectStream client selector
//     (O(ActivePerRound) per round, flat in population size — million-
//     client populations), OnRound streaming observation, StreamOnly
//     lean reports, and Trajectory sinks (internal/trajstore) that
//     stream every round into a bounded-memory columnar store for
//     post-hoc replay — flat RSS at a million rounds.
//   - Telemetry (RunConfig.Telemetry / NewTelemetry): the deterministic
//     run-observability plane (internal/obs) — counters, gauges,
//     histograms and span logs with byte-identical snapshots for a fixed
//     seed, a Chrome/Perfetto trace export, and opt-in wall-clock
//     capture. Off by default; cmd/liflsim's -telemetry/-perfetto flags
//     and watch/spans verbs are the CLI face.
//   - Models: the ResNet-18/34/152 specs of the paper's workloads.
//
// Deeper layers (the discrete-event engine, shared-memory store, eBPF
// substrate, gateways, aggregators, placement/autoscaling policies) live in
// internal/ packages; see DESIGN.md for the map. For the operator-facing
// workflow — running scenarios with cmd/liflsim, reading Reports, and the
// cmd/liflbench baseline-gating loop — see docs/GUIDE.md.
package lifl

import (
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/flwork"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/systems"
	"repro/internal/trajstore"
)

// System kinds selectable in RunConfig.
const (
	SystemLIFL  = core.SystemLIFL  // full LIFL: shm data plane + orchestration
	SystemSLH   = core.SystemSLH   // LIFL data plane, conventional control plane
	SystemSF    = core.SystemSF    // serverful baseline (always-on hierarchy)
	SystemSL    = core.SystemSL    // serverless baseline (sidecars + broker)
	SystemAsync = core.SystemAsync // buffered-async FL (Fig. 11), RunConfig.Async knobs
)

// Client classes for the workload generator.
const (
	MobileClients = flwork.Mobile // hibernating, host-shared (ResNet-18 setup)
	ServerClients = flwork.Server // always-on, dedicated (ResNet-152 setup)
)

// Client selectors for RunConfig.Selector.
const (
	SelectPerm   = core.SelectPerm   // default: full per-round permutation
	SelectStream = core.SelectStream // O(ActivePerRound) streaming selector
)

// Reconfiguration verbs for elastic-fabric plan steps (CellPlanStep.Op).
const (
	CellJoin   = core.CellJoin   // add a fresh cell (weight + residents)
	CellDrain  = core.CellDrain  // drain-then-delete a cell
	CellWeight = core.CellWeight // set a cell's routing weight (± flash crowd)
)

// Re-exported types; see the internal packages for full documentation.
type (
	// RunConfig parameterizes a full FL training run.
	RunConfig = core.RunConfig
	// AsyncSpec tunes the buffered-async system (RunConfig.Async).
	AsyncSpec = core.AsyncSpec
	// CellSpec federates a run across locality-routed cells
	// (RunConfig.Cells).
	CellSpec = core.CellSpec
	// CellDetail is a fabric run's per-cell outcome (SweepResult.Cells).
	CellDetail = cell.Detail
	// CellReport is one cell's summary inside a CellDetail.
	CellReport = cell.CellReport
	// CellPlan schedules live fabric reconfiguration (RunConfig.CellPlan):
	// round-stamped join/drain/weight steps grouped into versioned config
	// pushes, validated wholesale before the run starts.
	CellPlan = core.CellPlan
	// CellPlanStep is one round-stamped reconfiguration step.
	CellPlanStep = core.CellPlanStep
	// CellPlanOp is a reconfiguration verb (CellJoin/CellDrain/CellWeight).
	CellPlanOp = core.CellPlanOp
	// CellPlanOutcome records how a run's plan fared — version reached,
	// cells joined/drained, applied pushes, or the wholesale rejection
	// reason (CellDetail.Plan).
	CellPlanOutcome = cell.PlanOutcome
	// CellPlanPush is one applied (or dry-run) versioned config push.
	CellPlanPush = cell.PlanPush
	// Report is the outcome of a training run.
	Report = core.Report
	// Platform couples an engine, a system and a population.
	Platform = core.Platform
	// SystemKind selects the system under test.
	SystemKind = core.SystemKind
	// ModelSpec describes one trainable model.
	ModelSpec = model.Spec
	// Flags are LIFL's orchestration ablation switches (Fig. 8).
	Flags = systems.Flags
	// Scenario is a declarative workload spec with sweep axes.
	Scenario = scenario.Scenario
	// ScenarioRun is one expanded point of a scenario.
	ScenarioRun = scenario.Run
	// FlagVariant labels one point of an orchestration-flag axis.
	FlagVariant = scenario.FlagVariant
	// SweepResult pairs an expanded run with its Report.
	SweepResult = harness.Result
	// RoundObservation streams per-round results via RunConfig.OnRound.
	RoundObservation = core.RoundObservation
	// TrajectorySink durably stores every round's observation
	// (RunConfig.Trajectory); internal/trajstore is the canonical
	// implementation and cmd/liflsim's replay verb reads its files.
	TrajectorySink = core.TrajectorySink
	// TrajectoryRecord is one stored round of a trajectory file.
	TrajectoryRecord = trajstore.Record
	// TrajectorySummary is the post-hoc fold of a whole trajectory file.
	TrajectorySummary = trajstore.Summary
	// TrajectoryCrossing is a milestone first-crossing reconstructed from
	// a trajectory file (TrajectorySummary.Crossings).
	TrajectoryCrossing = trajstore.Crossing
	// TelemetryRegistry collects a run's counters, gauges, histograms and
	// span logs (RunConfig.Telemetry); see internal/obs for the plane's
	// determinism contract and exports (Snapshot, Perfetto).
	TelemetryRegistry = obs.Registry
	// TelemetryOptions configures a TelemetryRegistry: CaptureWall opts
	// into wall-clock metrics and stage spans, MaxSpans bounds span logs.
	TelemetryOptions = obs.Options
)

// The paper's model zoo.
var (
	ResNet18  = model.ResNet18
	ResNet34  = model.ResNet34
	ResNet152 = model.ResNet152
	// TinyFL is the synthetic miniature behind the round-count stress
	// entries (traj-100k, million-rounds) — per-round cost is pure round
	// machinery. Not part of the paper's zoo.
	TinyFL = model.TinyFL
)

// Run executes a full FL workload run; see core.Run. Configs with a Cells
// spec are dispatched to the multi-cell fabric (the per-cell detail is
// available via RunCells or a Sweep).
func Run(cfg RunConfig) (*Report, error) {
	if cfg.Cells != nil {
		rep, _, err := cell.Run(cfg)
		return rep, err
	}
	return core.Run(cfg)
}

// RunCells executes a multi-cell federated run and returns the per-cell
// detail beside the global Report; see internal/cell.
func RunCells(cfg RunConfig) (*Report, *CellDetail, error) { return cell.Run(cfg) }

// PlanDiff dry-runs cfg's reconfiguration plan: the elastic fabric
// validates the plan wholesale against cfg's fabric shape and returns the
// versioned push schedule it would apply, without running the workload.
// A plan the fabric would reject wholesale is returned as an error — the
// same last-known-good gate a live run applies; see cell.PlanDiff.
func PlanDiff(cfg RunConfig) ([]CellPlanPush, error) { return cell.PlanDiff(cfg) }

// NewPlatform assembles a platform without running it; see core.NewPlatform.
func NewPlatform(cfg RunConfig) (*Platform, error) { return core.NewPlatform(cfg) }

// AllFlags enables the full LIFL orchestration (①②③④).
func AllFlags() Flags { return systems.AllFlags() }

// Scenarios lists the registered workload scenarios.
func Scenarios() []string { return scenario.Names() }

// GetScenario returns a registry scenario by name.
func GetScenario(name string) (Scenario, bool) { return scenario.Get(name) }

// RegisterScenario adds a named scenario to the registry; registering an
// already-taken name fails loudly instead of silently shadowing it.
func RegisterScenario(s Scenario) error { return scenario.Register(s) }

// ReplaceScenario registers s, deliberately overwriting any existing entry
// of the same name.
func ReplaceScenario(s Scenario) error { return scenario.Replace(s) }

// Sweep executes the expanded runs on a pool of `workers` goroutines
// (<= 0 means one per CPU), returning results in input order; see
// harness.Sweep.
func Sweep(runs []ScenarioRun, workers int) []SweepResult { return harness.Sweep(runs, workers) }

// NewTrajectory creates a bounded-memory trajectory sink streaming every
// round of the run configured by cfg into path (internal/trajstore's
// columnar block format). Assign it to RunConfig.Trajectory before Run
// and Close it afterwards — the final partial block is written at Close.
// Resident memory is a function of the store's block size, not of run
// length, and for a fixed seed the file is byte-identical across worker
// counts and sweep parallelism.
func NewTrajectory(path string, cfg RunConfig) (*trajstore.Sink, error) {
	return trajstore.NewSink(path, cfg, trajstore.Options{})
}

// NewTelemetry builds an empty telemetry registry. Assign it to
// RunConfig.Telemetry before Run, then export with Snapshot (versioned
// JSON, byte-identical for a fixed seed at any worker count, sweep
// parallelism or retention window) or Perfetto (Chrome trace_event JSON
// of the run's virtual-time spans; load at https://ui.perfetto.dev).
// Telemetry is off by default — a nil registry keeps every instrumented
// site a no-op.
func NewTelemetry(opts TelemetryOptions) *TelemetryRegistry { return obs.New(opts) }

// ReplayTrajectory scans a stored trajectory end to end — verifying every
// block checksum — and folds it into the summary the live run reported.
// When each is non-nil it is invoked per stored round in write order; see
// trajstore.Replay. cmd/liflsim's replay verb is the CLI face of this.
func ReplayTrajectory(path string, each func(TrajectoryRecord) error) (*TrajectorySummary, error) {
	return trajstore.Replay(path, each)
}
