package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3*Second, func() { order = append(order, 3) })
	e.At(1*Second, func() { order = append(order, 1) })
	e.At(2*Second, func() { order = append(order, 2) })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3*Second {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestEngineTieBreaksBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { order = append(order, i) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5*Second, func() {})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(Second, func() {})
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Duration
	e.At(10*Second, func() {
		e.After(5*Second, func() { at = e.Now() })
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if at != 15*Second {
		t.Fatalf("After fired at %v, want 15s", at)
	}
}

func TestEngineRunUntilBound(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1*Second, func() { fired++ })
	e.At(10*Second, func() { fired++ })
	if err := e.Run(5 * Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5*Second {
		t.Fatalf("clock should land on the bound, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d after completion", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1*Second, func() { fired++; e.Stop() })
	e.At(2*Second, func() { fired++ })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop (fired=%d)", fired)
	}
}

func TestEngineMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.After(Second, loop) }
	e.After(Second, loop)
	if err := e.RunUntilIdle(); err == nil {
		t.Fatal("runaway loop not caught")
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1*Second, func() { n++ })
	e.At(2*Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue should return false")
	}
}

// Determinism: the same schedule built twice executes identically.
func TestEngineDeterminism(t *testing.T) {
	build := func() []Duration {
		e := NewEngine()
		rng := NewRNG(99)
		var fires []Duration
		var add func(depth int)
		add = func(depth int) {
			if depth > 3 {
				return
			}
			e.After(rng.Uniform(Second), func() {
				fires = append(fires, e.Now())
				add(depth + 1)
				add(depth + 1)
			})
		}
		add(0)
		if err := e.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return fires
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, the engine visits them in
// sorted order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Duration
		for _, d := range delays {
			d := Duration(d) * Millisecond
			e.At(d, func() { seen = append(seen, e.Now()) })
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
