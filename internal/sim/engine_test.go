package sim

import (
	"container/heap"
	"fmt"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3*Second, func() { order = append(order, 3) })
	e.At(1*Second, func() { order = append(order, 1) })
	e.At(2*Second, func() { order = append(order, 2) })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3*Second {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestEngineTieBreaksBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { order = append(order, i) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5*Second, func() {})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(Second, func() {})
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Duration
	e.At(10*Second, func() {
		e.After(5*Second, func() { at = e.Now() })
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if at != 15*Second {
		t.Fatalf("After fired at %v, want 15s", at)
	}
}

func TestEngineRunUntilBound(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1*Second, func() { fired++ })
	e.At(10*Second, func() { fired++ })
	if err := e.Run(5 * Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5*Second {
		t.Fatalf("clock should land on the bound, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d after completion", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1*Second, func() { fired++; e.Stop() })
	e.At(2*Second, func() { fired++ })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop (fired=%d)", fired)
	}
}

func TestEngineMaxEventsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.After(Second, loop) }
	e.After(Second, loop)
	if err := e.RunUntilIdle(); err == nil {
		t.Fatal("runaway loop not caught")
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1*Second, func() { n++ })
	e.At(2*Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue should return false")
	}
}

// Determinism: the same schedule built twice executes identically.
func TestEngineDeterminism(t *testing.T) {
	build := func() []Duration {
		e := NewEngine()
		rng := NewRNG(99)
		var fires []Duration
		var add func(depth int)
		add = func(depth int) {
			if depth > 3 {
				return
			}
			e.After(rng.Uniform(Second), func() {
				fires = append(fires, e.Now())
				add(depth + 1)
				add(depth + 1)
			})
		}
		add(0)
		if err := e.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return fires
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, the engine visits them in
// sorted order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Duration
		for _, d := range delays {
			d := Duration(d) * Millisecond
			e.At(d, func() { seen = append(seen, e.Now()) })
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ---- Engine equivalence vs. the seed's boxed container/heap scheduler ----
//
// refEngine re-implements the original event loop (pointer events in a
// binary container/heap) so the value-based 4-ary engine can be proven to
// execute an arbitrary schedule in the exact same (time, seq) order.

type refEvent struct {
	at  Duration
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type refEngine struct {
	now    Duration
	seq    uint64
	events refHeap
}

func (e *refEngine) at(t Duration, fn func()) {
	e.seq++
	heap.Push(&e.events, &refEvent{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*refEvent)
		e.now = ev.at
		ev.fn()
	}
}

// TestEngineEquivalentToBoxedHeap drives both engines through an identical
// randomized, self-rescheduling workload (including AtSpan events on the new
// engine) and requires byte-identical execution traces.
func TestEngineEquivalentToBoxedHeap(t *testing.T) {
	const seeds = 20
	for s := int64(0); s < seeds; s++ {
		trace := func(useRef bool) []string {
			rng := NewRNG(s)
			var out []string
			if useRef {
				e := &refEngine{}
				var spawn func(id, depth int)
				spawn = func(id, depth int) {
					d := rng.Uniform(Second)
					e.at(e.now+d, func() {
						out = append(out, fmt.Sprintf("%d@%v", id, e.now))
						if depth < 3 {
							spawn(id*10+1, depth+1)
							spawn(id*10+2, depth+1)
						}
					})
				}
				for i := 0; i < 8; i++ {
					spawn(i, 0)
				}
				e.run()
				return out
			}
			e := NewEngine()
			var spawn func(id, depth int)
			spawn = func(id, depth int) {
				d := rng.Uniform(Second)
				// Alternate At and AtSpan so both event shapes interleave
				// through the same heap with the same ordering.
				if id%2 == 0 {
					e.After(d, func() {
						out = append(out, fmt.Sprintf("%d@%v", id, e.Now()))
						if depth < 3 {
							spawn(id*10+1, depth+1)
							spawn(id*10+2, depth+1)
						}
					})
				} else {
					e.AtSpan(e.Now()+d, e.Now(), e.Now()+d, func(_, end Duration) {
						out = append(out, fmt.Sprintf("%d@%v", id, end))
						if depth < 3 {
							spawn(id*10+1, depth+1)
							spawn(id*10+2, depth+1)
						}
					})
				}
			}
			for i := 0; i < 8; i++ {
				spawn(i, 0)
			}
			if err := e.RunUntilIdle(); err != nil {
				t.Fatal(err)
			}
			return out
		}
		ref, got := trace(true), trace(false)
		if len(ref) != len(got) {
			t.Fatalf("seed %d: %d events vs %d", s, len(ref), len(got))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("seed %d: divergence at event %d: %q vs %q", s, i, ref[i], got[i])
			}
		}
	}
}

// TestEngineAtSpanDeliversSpan checks the inline (start, end) payload.
func TestEngineAtSpanDeliversSpan(t *testing.T) {
	e := NewEngine()
	var gs, ge Duration
	e.AtSpan(4*Second, 2*Second, 4*Second, func(start, end Duration) { gs, ge = start, end })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if gs != 2*Second || ge != 4*Second {
		t.Fatalf("span = (%v, %v)", gs, ge)
	}
	if e.Now() != 4*Second {
		t.Fatalf("clock = %v", e.Now())
	}
}

// TestEngineAtSpanPastPanics mirrors the At causality guard.
func TestEngineAtSpanPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5*Second, func() {})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling AtSpan in the past")
		}
	}()
	e.AtSpan(Second, 0, Second, func(_, _ Duration) {})
}

// TestEngineAfterAllocs is the allocation-regression guard of the event
// engine: steady-state scheduling (push + pop with warm capacity) must cost
// at most one amortized allocation per event — in practice zero, since the
// free-list capacity is reused; the budget of 1 absorbs the rare growth.
func TestEngineAfterAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the heap capacity.
	for i := 0; i < 64; i++ {
		e.After(Duration(i)*Millisecond, fn)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.After(Millisecond, fn)
		e.Step()
	})
	if avg > 1 {
		t.Fatalf("Engine.After allocates %.2f/op, want <= 1 amortized", avg)
	}
}

// TestStationSubmitAllocs: with AtSpan carrying the completion span, a
// station job schedules its completion without any closure allocation.
func TestStationSubmitAllocs(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "cpu", 2)
	done := func(_, _ Duration) {}
	for i := 0; i < 64; i++ {
		s.Submit(Millisecond, done)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(1000, func() {
		s.Submit(Millisecond, done)
		e.Step()
	})
	if avg > 1 {
		t.Fatalf("Station.Submit allocates %.2f/op, want <= 1 amortized", avg)
	}
}
