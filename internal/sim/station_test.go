package sim

import (
	"testing"
	"testing/quick"
)

func TestStationSingleServerSerializes(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "s", 1)
	var ends []Duration
	for i := 0; i < 3; i++ {
		s.Submit(10*Second, func(_, end Duration) { ends = append(ends, end) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []Duration{10 * Second, 20 * Second, 30 * Second}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if s.BusyTime() != 30*Second {
		t.Fatalf("busy = %v", s.BusyTime())
	}
}

func TestStationMultiServerParallel(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "s", 3)
	done := 0
	for i := 0; i < 3; i++ {
		s.Submit(10*Second, func(start, end Duration) {
			if start != 0 || end != 10*Second {
				t.Errorf("job not parallel: start=%v end=%v", start, end)
			}
			done++
		})
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
}

func TestStationFIFOAdmission(t *testing.T) {
	// A short job submitted after a long one must not start before it even
	// when a server frees up earlier.
	e := NewEngine()
	s := NewStation(e, "s", 2)
	s.Submit(10*Second, nil) // server A busy to 10
	s.Submit(2*Second, nil)  // server B busy to 2
	s.Submit(20*Second, nil) // takes B at 2
	var start3 Duration
	s.Submit(1*Second, func(start, _ Duration) { start3 = start })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Earliest free server is A at 10; FIFO also requires start ≥ previous
	// start (2). Expected start: 10.
	if start3 != 10*Second {
		t.Fatalf("start = %v, want 10s", start3)
	}
}

func TestStationResizeGrows(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "s", 1)
	s.Submit(10*Second, nil)
	s.Resize(2)
	var start Duration
	s.Submit(1*Second, func(st, _ Duration) { start = st })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("job should start immediately on the new server, started %v", start)
	}
	if s.Servers() != 2 {
		t.Fatalf("servers = %d", s.Servers())
	}
}

func TestStationResizeShrinkKeepsRunningJobs(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "s", 4)
	completed := 0
	for i := 0; i < 4; i++ {
		s.Submit(10*Second, func(_, _ Duration) { completed++ })
	}
	s.Resize(1)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if completed != 4 {
		t.Fatalf("shrink cancelled jobs: completed=%d", completed)
	}
}

func TestStationNextFreeIn(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "s", 1)
	if s.NextFreeIn() != 0 {
		t.Fatalf("idle station backlog = %v", s.NextFreeIn())
	}
	s.Submit(10*Second, nil)
	if s.NextFreeIn() != 10*Second {
		t.Fatalf("backlog = %v, want 10s", s.NextFreeIn())
	}
	s.Submit(5*Second, nil)
	if s.NextFreeIn() != 15*Second {
		t.Fatalf("backlog = %v, want 15s", s.NextFreeIn())
	}
}

func TestStationZeroServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStation(NewEngine(), "s", 0)
}

func TestStationNegativeDemandPanics(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, "s", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(-Second, nil)
}

// Property: total busy time equals the sum of demands, and the makespan is
// at least busy/servers (work conservation lower bound).
func TestStationWorkConservation(t *testing.T) {
	f := func(raw []uint8, serversRaw uint8) bool {
		servers := int(serversRaw%8) + 1
		e := NewEngine()
		s := NewStation(e, "s", servers)
		var total Duration
		var last Duration
		for _, r := range raw {
			d := Duration(r) * Millisecond
			total += d
			s.Submit(d, func(_, end Duration) {
				if end > last {
					last = end
				}
			})
		}
		if err := e.RunUntilIdle(); err != nil {
			return false
		}
		if s.BusyTime() != total {
			return false
		}
		return last >= total/Duration(servers)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueSerializesTransfers(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, "q", 100, 0) // 100 B/s
	var ends []Duration
	q.Transfer(100, func(_, end Duration) { ends = append(ends, end) })
	q.Transfer(100, func(_, end Duration) { ends = append(ends, end) })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != Second || ends[1] != 2*Second {
		t.Fatalf("ends = %v", ends)
	}
	if q.Bytes() != 200 || q.Transfers() != 2 {
		t.Fatalf("accounting: %d bytes %d transfers", q.Bytes(), q.Transfers())
	}
}

func TestQueueLatencyAddsPerTransfer(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, "q", 100, 500*Millisecond)
	var end Duration
	q.Transfer(100, func(_, e2 Duration) { end = e2 })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if end != Second+500*Millisecond {
		t.Fatalf("end = %v", end)
	}
}

func TestQueueBacklog(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, "q", 100, 0)
	q.Transfer(300, nil)
	if q.Backlog() != 3*Second {
		t.Fatalf("backlog = %v", q.Backlog())
	}
}

func TestQueueServiceTimeScalesLinearly(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, "q", 1e6, 0)
	if q.ServiceTime(2e6) != 2*Second {
		t.Fatalf("service time = %v", q.ServiceTime(2e6))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		d := g.Jitter(10*Second, 0.2)
		if d < 8*Second || d > 12*Second {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
	if g.Jitter(10*Second, 0) != 10*Second {
		t.Fatal("zero-frac jitter must be identity")
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(2)
	if g.Uniform(0) != 0 {
		t.Fatal("uniform(0) must be 0")
	}
	for i := 0; i < 1000; i++ {
		d := g.Uniform(Minute)
		if d < 0 || d >= Minute {
			t.Fatalf("uniform out of range: %v", d)
		}
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(1, 0.5) <= 0 {
			t.Fatal("log-normal must be positive")
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	g := NewRNG(4)
	p := g.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
