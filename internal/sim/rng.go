package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded PRNG so every experiment's randomness (client
// hibernation intervals, training-time jitter, shm key generation) is
// reproducible. It intentionally does not expose the global rand source.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential sample with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Uniform returns a uniform Duration in [0, max).
func (g *RNG) Uniform(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(g.r.Int63n(int64(max)))
}

// Jitter returns d scaled by a factor drawn uniformly from
// [1-frac, 1+frac]; frac must be in [0,1).
func (g *RNG) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*g.r.Float64()-1)
	return Duration(float64(d) * f)
}

// LogNormal returns a sample with the given median and sigma of the
// underlying normal — used for heavy-tailed trainer compute times.
func (g *RNG) LogNormal(median float64, sigma float64) float64 {
	return median * math.Exp(sigma*g.r.NormFloat64())
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bytes fills b with random bytes.
func (g *RNG) Bytes(b []byte) {
	g.r.Read(b) // never returns an error per math/rand contract
}
