// Package sim provides a deterministic discrete-event simulation kernel.
//
// All LIFL experiments run on virtual time: components schedule callbacks on
// an Engine, contend for multi-core CPU Stations and bandwidth Queues, and
// the engine executes events in strict (time, sequence) order. Determinism
// comes from the total event order plus seeded randomness (see RNG); running
// the same experiment twice yields byte-identical results.
//
// The engine is allocation-lean by design: a Fig. 9 full-workload run
// schedules millions of events, so the pending set is a value-based 4-ary
// min-heap ([]event, no per-event box, no container/heap interface
// conversions). Popped slots are cleared and the backing array is retained
// as a free list, so steady-state scheduling performs zero heap allocations
// beyond the caller's own closure — and AtSpan removes even that for the
// dominant (start, end)-completion shape.
//
// Layer (DESIGN.md): leaf — the deterministic discrete-event kernel
// (engine/station/queue/rng) everything above runs on; see the event-engine
// invariants in DESIGN.md.
package sim
