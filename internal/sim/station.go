package sim

import (
	"container/heap"
	"fmt"
)

// Station models a pool of identical servers (CPU cores) with FIFO admission:
// a submitted job begins on the earliest-free server, no earlier than its
// submission time, and runs non-preemptively for its service demand. This is
// the classic multi-server FIFO approximation used to model per-node CPU
// contention — the effect behind Fig. 4 of the paper, where co-located leaf
// aggregators contend for network processing.
type Station struct {
	eng  *Engine
	name string

	// free[i] is the virtual time at which server i becomes free.
	free serverHeap

	// admitTail enforces FIFO: a job may not start before the previous
	// job's start time even if some server is free earlier.
	admitTail Duration

	// Accounting.
	busy     Duration // total server-busy time (CPU time consumed)
	jobs     uint64
	maxDelay Duration // worst queueing delay observed
}

type serverHeap []Duration

func (h serverHeap) Len() int            { return len(h) }
func (h serverHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x interface{}) { *h = append(*h, x.(Duration)) }
func (h *serverHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// NewStation creates a station with the given number of servers.
func NewStation(eng *Engine, name string, servers int) *Station {
	if servers <= 0 {
		panic(fmt.Sprintf("sim: station %q needs at least one server", name))
	}
	s := &Station{eng: eng, name: name, free: make(serverHeap, servers)}
	heap.Init(&s.free)
	return s
}

// Servers returns the number of servers in the pool.
func (s *Station) Servers() int { return len(s.free) }

// Resize grows or shrinks the server pool (vertical scaling of the gateway,
// §4.2). Shrinking never cancels running jobs: it removes the earliest-free
// servers first, so in-flight work completes on its original schedule.
func (s *Station) Resize(servers int) {
	if servers <= 0 {
		panic(fmt.Sprintf("sim: station %q cannot resize to %d", s.name, servers))
	}
	for len(s.free) < servers {
		heap.Push(&s.free, s.eng.Now())
	}
	for len(s.free) > servers {
		heap.Pop(&s.free)
	}
}

// Submit enqueues a job with the given service demand. done, if non-nil, runs
// at the job's completion time and receives the start and end times. Submit
// returns the scheduled (start, end) pair immediately, which callers may use
// for planning; the simulation still advances through the engine.
func (s *Station) Submit(demand Duration, done func(start, end Duration)) (Duration, Duration) {
	if demand < 0 {
		panic(fmt.Sprintf("sim: station %q negative demand %v", s.name, demand))
	}
	now := s.eng.Now()
	start := s.free[0]
	if start < now {
		start = now
	}
	if start < s.admitTail {
		start = s.admitTail
	}
	s.admitTail = start
	end := start + demand
	s.free[0] = end
	heap.Fix(&s.free, 0)

	s.busy += demand
	s.jobs++
	if delay := start - now; delay > s.maxDelay {
		s.maxDelay = delay
	}
	if done != nil {
		s.eng.At(end, func() { done(start, end) })
	}
	return start, end
}

// NextFreeIn returns how long a job submitted now would wait for a server —
// the live backlog signal used by vertical autoscaling.
func (s *Station) NextFreeIn() Duration {
	earliest := s.free[0]
	if t := s.admitTail; t > earliest {
		earliest = t
	}
	if d := earliest - s.eng.Now(); d > 0 {
		return d
	}
	return 0
}

// BusyTime returns total accumulated server-busy time — the CPU-time cost
// figures in the paper (Fig. 8(b), Fig. 9(b,d), Fig. 10(c,f)) integrate this.
func (s *Station) BusyTime() Duration { return s.busy }

// Jobs returns the number of jobs submitted so far.
func (s *Station) Jobs() uint64 { return s.jobs }

// MaxQueueDelay returns the worst admission delay seen by any job.
func (s *Station) MaxQueueDelay() Duration { return s.maxDelay }

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }
