package sim

import "fmt"

// Station models a pool of identical servers (CPU cores) with FIFO admission:
// a submitted job begins on the earliest-free server, no earlier than its
// submission time, and runs non-preemptively for its service demand. This is
// the classic multi-server FIFO approximation used to model per-node CPU
// contention — the effect behind Fig. 4 of the paper, where co-located leaf
// aggregators contend for network processing.
type Station struct {
	eng  *Engine
	name string

	// free[i] is the virtual time at which server i becomes free.
	free serverHeap

	// admitTail enforces FIFO: a job may not start before the previous
	// job's start time even if some server is free earlier.
	admitTail Duration

	// Accounting.
	busy     Duration // total server-busy time (CPU time consumed)
	jobs     uint64
	maxDelay Duration // worst queueing delay observed
}

// serverHeap is a value-based binary min-heap of free times. Only the
// minimum value is ever observable (Submit starts jobs on the earliest-free
// server), so any valid heap arrangement yields identical schedules.
type serverHeap []Duration

func (h serverHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[i] >= h[parent] {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h serverHeap) siftDown(i int) {
	n := len(h)
	for {
		min := i
		if l := 2*i + 1; l < n && h[l] < h[min] {
			min = l
		}
		if r := 2*i + 2; r < n && h[r] < h[min] {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// NewStation creates a station with the given number of servers.
func NewStation(eng *Engine, name string, servers int) *Station {
	if servers <= 0 {
		panic(fmt.Sprintf("sim: station %q needs at least one server", name))
	}
	return &Station{eng: eng, name: name, free: make(serverHeap, servers)}
}

// Servers returns the number of servers in the pool.
func (s *Station) Servers() int { return len(s.free) }

// Resize grows or shrinks the server pool (vertical scaling of the gateway,
// §4.2). Shrinking never cancels running jobs: it removes the earliest-free
// servers first, so in-flight work completes on its original schedule.
func (s *Station) Resize(servers int) {
	if servers <= 0 {
		panic(fmt.Sprintf("sim: station %q cannot resize to %d", s.name, servers))
	}
	for len(s.free) < servers {
		s.free = append(s.free, s.eng.Now())
		s.free.siftUp(len(s.free) - 1)
	}
	for len(s.free) > servers {
		n := len(s.free) - 1
		s.free[0] = s.free[n]
		s.free = s.free[:n]
		s.free.siftDown(0)
	}
}

// Submit enqueues a job with the given service demand. done, if non-nil, runs
// at the job's completion time and receives the start and end times. Submit
// returns the scheduled (start, end) pair immediately, which callers may use
// for planning; the simulation still advances through the engine.
func (s *Station) Submit(demand Duration, done func(start, end Duration)) (Duration, Duration) {
	if demand < 0 {
		panic(fmt.Sprintf("sim: station %q negative demand %v", s.name, demand))
	}
	now := s.eng.Now()
	start := s.free[0]
	if start < now {
		start = now
	}
	if start < s.admitTail {
		start = s.admitTail
	}
	s.admitTail = start
	end := start + demand
	s.free[0] = end
	s.free.siftDown(0)

	s.busy += demand
	s.jobs++
	if delay := start - now; delay > s.maxDelay {
		s.maxDelay = delay
	}
	if done != nil {
		s.eng.AtSpan(end, start, end, done)
	}
	return start, end
}

// NextFreeIn returns how long a job submitted now would wait for a server —
// the live backlog signal used by vertical autoscaling.
func (s *Station) NextFreeIn() Duration {
	earliest := s.free[0]
	if t := s.admitTail; t > earliest {
		earliest = t
	}
	if d := earliest - s.eng.Now(); d > 0 {
		return d
	}
	return 0
}

// BusyTime returns total accumulated server-busy time — the CPU-time cost
// figures in the paper (Fig. 8(b), Fig. 9(b,d), Fig. 10(c,f)) integrate this.
func (s *Station) BusyTime() Duration { return s.busy }

// Jobs returns the number of jobs submitted so far.
func (s *Station) Jobs() uint64 { return s.jobs }

// MaxQueueDelay returns the worst admission delay seen by any job.
func (s *Station) MaxQueueDelay() Duration { return s.maxDelay }

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }
