package sim

import "fmt"

// Queue models a single FIFO bandwidth server: a network link, NIC direction,
// or broker channel that serves byte payloads at a fixed rate with a fixed
// per-transfer latency. Transfers are serialized, which is exactly the
// contention the paper observes when several co-located aggregators push
// model updates through one kernel network path (§4.1, Fig. 4).
type Queue struct {
	eng  *Engine
	name string

	// bytesPerSec is the service rate. latency is added once per transfer.
	bytesPerSec float64
	latency     Duration

	nextFree Duration

	// Accounting.
	bytes     uint64
	transfers uint64
	busy      Duration
}

// NewQueue creates a bandwidth server. bytesPerSec must be positive.
func NewQueue(eng *Engine, name string, bytesPerSec float64, latency Duration) *Queue {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: queue %q needs positive rate", name))
	}
	return &Queue{eng: eng, name: name, bytesPerSec: bytesPerSec, latency: latency}
}

// ServiceTime returns how long size bytes occupy the server, excluding
// queueing and the per-transfer latency.
func (q *Queue) ServiceTime(size uint64) Duration {
	return Duration(float64(size) / q.bytesPerSec * float64(Second))
}

// Transfer enqueues size bytes. done, if non-nil, fires when the last byte
// has been delivered (after queueing, service, and latency). The scheduled
// (start, end) pair is returned immediately.
func (q *Queue) Transfer(size uint64, done func(start, end Duration)) (Duration, Duration) {
	now := q.eng.Now()
	start := q.nextFree
	if start < now {
		start = now
	}
	svc := q.ServiceTime(size)
	q.nextFree = start + svc
	end := q.nextFree + q.latency

	q.bytes += size
	q.transfers++
	q.busy += svc
	if done != nil {
		q.eng.AtSpan(end, start, end, done)
	}
	return start, end
}

// Backlog returns how long a transfer submitted now would wait before service.
func (q *Queue) Backlog() Duration {
	if b := q.nextFree - q.eng.Now(); b > 0 {
		return b
	}
	return 0
}

// Bytes returns the total bytes accepted so far.
func (q *Queue) Bytes() uint64 { return q.bytes }

// Transfers returns the number of transfers accepted so far.
func (q *Queue) Transfers() uint64 { return q.transfers }

// BusyTime returns the total service time spent (link occupancy).
func (q *Queue) BusyTime() Duration { return q.busy }

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }
