package sim

import (
	"fmt"
	"math"
	"time"
)

// Duration is virtual simulated time measured from the start of a run.
// It aliases time.Duration so callers can use natural literals (3 * sim.Second).
type Duration = time.Duration

// Convenience re-exports so simulation code does not need to import time.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
)

// event is a scheduled callback, stored by value in the heap. seq breaks
// ties so that events scheduled earlier run earlier when their times are
// equal, making runs deterministic. Exactly one of fn/spanFn is set; spanFn
// events carry their (start, end) pair inline so completion callbacks need
// no capturing closure.
type event struct {
	at  Duration
	seq uint64
	fn  func()

	spanFn     func(start, end Duration)
	start, end Duration
}

// before reports whether e runs strictly before o in the total event order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a value-based 4-ary min-heap ordered by (at, seq). A 4-ary
// layout halves the tree depth of a binary heap, trading slightly wider
// sift-down comparisons for fewer cache-missing levels — the right trade for
// the short (tens of entries) but extremely hot pending sets of a Fig. 9 run.
type eventHeap []event

const heapArity = 4

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if !h[min].before(&h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// push inserts e; the append reuses freed capacity, so steady-state
// scheduling does not allocate.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the retained capacity (the free list) does not pin callbacks.
func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	top := old[0]
	old[0] = old[n]
	old[n] = event{}
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0)
	}
	return top
}

// Engine is the discrete-event scheduler. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Duration
	seq     uint64
	events  eventHeap
	stopped bool

	// Executed counts events run so far; useful for runaway detection in tests.
	Executed uint64
	// MaxEvents aborts Run with an error when exceeded (0 = unlimited).
	MaxEvents uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Duration { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modelling bug, and silently clamping would
// corrupt causality.
func (e *Engine) At(t Duration, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// AtSpan schedules fn(start, end) at absolute virtual time t. It is the
// allocation-lean variant of At for completion callbacks that deliver a
// (start, end) pair — the dominant event shape in the simulator (station
// jobs, queue transfers): the span rides in the event value instead of a
// capturing closure, so scheduling allocates nothing.
func (e *Engine) AtSpan(t Duration, start, end Duration, fn func(start, end Duration)) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, spanFn: fn, start: start, end: end})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Pending reports the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	e.Executed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.spanFn(ev.start, ev.end)
	}
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until (inclusive). Pass a negative until to run to completion.
func (e *Engine) Run(until Duration) error {
	if until < 0 {
		until = Duration(math.MaxInt64)
	}
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		if e.events[0].at > until {
			e.now = until
			return nil
		}
		if e.MaxEvents > 0 && e.Executed >= e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		e.Step()
	}
	if e.now < until && until != Duration(math.MaxInt64) {
		e.now = until
	}
	return nil
}

// RunUntilIdle executes all pending events with no time bound.
func (e *Engine) RunUntilIdle() error { return e.Run(-1) }
