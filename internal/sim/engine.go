// Package sim provides a deterministic discrete-event simulation kernel.
//
// All LIFL experiments run on virtual time: components schedule callbacks on
// an Engine, contend for multi-core CPU Stations and bandwidth Queues, and
// the engine executes events in strict (time, sequence) order. Determinism
// comes from the total event order plus seeded randomness (see RNG); running
// the same experiment twice yields byte-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Duration is virtual simulated time measured from the start of a run.
// It aliases time.Duration so callers can use natural literals (3 * sim.Second).
type Duration = time.Duration

// Convenience re-exports so simulation code does not need to import time.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
	Hour        = time.Hour
)

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier when their times are equal, making runs deterministic.
type event struct {
	at  Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Duration
	seq     uint64
	events  eventHeap
	stopped bool

	// Executed counts events run so far; useful for runaway detection in tests.
	Executed uint64
	// MaxEvents aborts Run with an error when exceeded (0 = unlimited).
	MaxEvents uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Duration { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modelling bug, and silently clamping would
// corrupt causality.
func (e *Engine) At(t Duration, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Pending reports the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.Executed++
	ev.fn()
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until (inclusive). Pass a negative until to run to completion.
func (e *Engine) Run(until Duration) error {
	if until < 0 {
		until = Duration(math.MaxInt64)
	}
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		if e.events[0].at > until {
			e.now = until
			return nil
		}
		if e.MaxEvents > 0 && e.Executed >= e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		e.Step()
	}
	if e.now < until && until != Duration(math.MaxInt64) {
		e.now = until
	}
	return nil
}

// RunUntilIdle executes all pending events with no time bound.
func (e *Engine) RunUntilIdle() error { return e.Run(-1) }
