package netstack

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sim"
)

func twoNodes() (*sim.Engine, *cluster.Cluster) {
	eng := sim.NewEngine()
	return eng, cluster.New(eng, sim.NewRNG(1), costmodel.Default(), 2)
}

func TestLoopbackUnloadedLatencyMatchesAnalytic(t *testing.T) {
	eng, c := twoNodes()
	m := model.ResNet152
	tr := Transfer{Size: m.Bytes(), NTensors: 1, Component: "x"}
	var done sim.Duration
	Loopback(c.Nodes[0], tr, func() { done = eng.Now() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := LoopbackLatency(c.P, m.Bytes(), 1)
	if done != want {
		t.Fatalf("loopback = %v, analytic %v", done, want)
	}
	// Fig. 7(a): the serverful loopback for ResNet-152 ≈ 2.3 s.
	if done < 2100*sim.Millisecond || done > 2500*sim.Millisecond {
		t.Fatalf("loopback = %v, want ≈2.3s", done)
	}
}

func TestCrossNodeUnloadedLatency(t *testing.T) {
	eng, c := twoNodes()
	m := model.ResNet152
	tr := Transfer{Size: m.Bytes(), NTensors: 1, Component: "x"}
	var done sim.Duration
	CrossNode(c.Nodes[0], c.Nodes[1], tr, func() { done = eng.Now() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := CrossNodeLatency(c.P, m.Bytes(), 1)
	if done != want {
		t.Fatalf("cross-node = %v, analytic %v", done, want)
	}
	if done <= LoopbackLatency(c.P, m.Bytes(), 1) {
		t.Fatal("cross-node must cost more than loopback (adds wire time)")
	}
}

func TestCrossNodeChargesBothNodes(t *testing.T) {
	eng, c := twoNodes()
	tr := Transfer{Size: 1 << 20, NTensors: 1, Component: "x"}
	CrossNode(c.Nodes[0], c.Nodes[1], tr, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].CPUTime("x") == 0 || c.Nodes[1].CPUTime("x") == 0 {
		t.Fatal("both endpoints must pay CPU")
	}
	if c.Nodes[0].Egress.Bytes() != 1<<20 || c.Nodes[1].Ingress.Bytes() != 1<<20 {
		t.Fatal("wire bytes not accounted")
	}
}

func TestIngressFromExternalOnlyChargesReceiver(t *testing.T) {
	eng, c := twoNodes()
	tr := Transfer{Size: 1 << 20, NTensors: 1, Component: "ing"}
	var fired bool
	IngressFromExternal(c.Nodes[0], tr, func() { fired = true })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("callback missing")
	}
	if c.Nodes[0].Ingress.Bytes() != 1<<20 {
		t.Fatal("ingress wire not charged")
	}
	if c.Nodes[0].Egress.Bytes() != 0 {
		t.Fatal("egress should be untouched")
	}
}

func TestEgressToExternal(t *testing.T) {
	eng, c := twoNodes()
	tr := Transfer{Size: 1 << 20, NTensors: 1, Component: "eg"}
	var fired bool
	EgressToExternal(c.Nodes[0], tr, func() { fired = true })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !fired || c.Nodes[0].Egress.Bytes() != 1<<20 {
		t.Fatal("egress transfer missing")
	}
}

// The Fig. 4 mechanism: enough concurrent loopbacks saturate the node's
// kernel stack, so the batch takes longer than any single transfer even on
// a 64-core node.
func TestLoopbackKernelContention(t *testing.T) {
	eng, c := twoNodes()
	n := c.Nodes[0]
	m := model.ResNet152
	tr := Transfer{Size: m.Bytes(), NTensors: 1, Component: "x"}
	single := LoopbackLatency(c.P, m.Bytes(), 1)
	const batch = 24 // 48 traversals over an 8-wide stack
	var last sim.Duration
	for i := 0; i < batch; i++ {
		Loopback(n, tr, func() {
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if last < 2*single {
		t.Fatalf("no contention visible: batch finished at %v, single = %v", last, single)
	}
}
