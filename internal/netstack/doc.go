// Package netstack models kernel-based networking between FL components:
// the loopback path used by serverful gRPC channels between co-located
// aggregators, and the NIC path for cross-node transfers. All CPU-bound
// stages (serialization, protocol processing, copies) contend on the node's
// core pool, which reproduces the contention the paper measures in Fig. 4
// when co-located leaf aggregators exchange updates with the top aggregator
// over the kernel.
//
// Layer (DESIGN.md): component model under internal/systems — the
// kernel networking path the baselines pay and LIFL bypasses.
package netstack
