package netstack

import (
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/sim"
)

// Transfer describes one payload movement.
type Transfer struct {
	Size     uint64 // payload bytes
	NTensors int    // layer tensors, for per-tensor serialization overhead
	// Component receives the CPU attribution on both ends.
	Component string
}

// Loopback moves a payload between two processes on the same node over the
// kernel TCP/IP stack (the SF data plane): serialize → TX traversal → RX
// traversal → deserialize. done fires when the receiver has the payload.
func Loopback(n *cluster.Node, t Transfer, done func()) {
	p := n.P
	serLat, serCPU := p.Serialize(t.Size, t.NTensors)
	txLat, txCPU := p.KernelTraversal(t.Size)
	rxLat, rxCPU := p.KernelTraversal(t.Size)
	desLat, desCPU := p.Deserialize(t.Size, t.NTensors)

	n.ExecAttributed(t.Component, serLat, serCPU, func(_, _ sim.Duration) {
		n.KernelExec(t.Component, txLat, txCPU, func(_, _ sim.Duration) {
			n.KernelExec(t.Component, rxLat, rxCPU, func(_, _ sim.Duration) {
				n.ExecAttributed(t.Component, desLat, desCPU, func(_, _ sim.Duration) {
					if done != nil {
						done()
					}
				})
			})
		})
	})
}

// CrossNode moves a payload from src to dst over the NIC: serialize + kernel
// TX on src, wire time through src egress then dst ingress, kernel RX +
// deserialize on dst. done fires on delivery at dst.
func CrossNode(src, dst *cluster.Node, t Transfer, done func()) {
	p := src.P
	serLat, serCPU := p.Serialize(t.Size, t.NTensors)
	txLat, txCPU := p.KernelTraversal(t.Size)
	rxLat, rxCPU := p.KernelTraversal(t.Size)
	desLat, desCPU := p.Deserialize(t.Size, t.NTensors)

	src.ExecAttributed(t.Component, serLat, serCPU, func(_, _ sim.Duration) {
		src.KernelExec(t.Component, txLat, txCPU, func(_, _ sim.Duration) {
			src.Egress.Transfer(t.Size, func(_, _ sim.Duration) {
				dst.Ingress.Transfer(t.Size, func(_, _ sim.Duration) {
					dst.KernelExec(t.Component, rxLat, rxCPU, func(_, _ sim.Duration) {
						dst.ExecAttributed(t.Component, desLat, desCPU, func(_, _ sim.Duration) {
							if done != nil {
								done()
							}
						})
					})
				})
			})
		})
	})
}

// IngressFromExternal models a payload arriving from outside the cluster
// (an FL client upload): wire time on the node's ingress NIC followed by
// kernel RX processing. The sender's cost is outside the system under test
// (§Appendix F: "we exclude the overhead on the client-side").
func IngressFromExternal(dst *cluster.Node, t Transfer, done func()) {
	p := dst.P
	rxLat, rxCPU := p.KernelTraversal(t.Size)
	dst.Ingress.Transfer(t.Size, func(_, _ sim.Duration) {
		dst.KernelExec(t.Component, rxLat, rxCPU, func(_, _ sim.Duration) {
			if done != nil {
				done()
			}
		})
	})
}

// EgressToExternal models sending a payload to an external client (global
// model distribution): serialize + kernel TX, then wire time on egress.
func EgressToExternal(src *cluster.Node, t Transfer, done func()) {
	p := src.P
	serLat, serCPU := p.Serialize(t.Size, t.NTensors)
	txLat, txCPU := p.KernelTraversal(t.Size)
	src.ExecAttributed(t.Component, serLat, serCPU, func(_, _ sim.Duration) {
		src.KernelExec(t.Component, txLat, txCPU, func(_, _ sim.Duration) {
			src.Egress.Transfer(t.Size, func(_, _ sim.Duration) {
				if done != nil {
					done()
				}
			})
		})
	})
}

// LoopbackLatency returns the unloaded one-transfer latency of the loopback
// path — useful for calibration tests against Fig. 7(a).
func LoopbackLatency(p costmodel.Params, size uint64, nTensors int) sim.Duration {
	serLat, _ := p.Serialize(size, nTensors)
	txLat, _ := p.KernelTraversal(size)
	rxLat, _ := p.KernelTraversal(size)
	desLat, _ := p.Deserialize(size, nTensors)
	return serLat + txLat + rxLat + desLat
}

// CrossNodeLatency returns the unloaded cross-node latency (§6.1 quotes
// ≈4.2 s for a ResNet-152 update on the 10 GbE testbed).
func CrossNodeLatency(p costmodel.Params, size uint64, nTensors int) sim.Duration {
	serLat, _ := p.Serialize(size, nTensors)
	txLat, _ := p.KernelTraversal(size)
	rxLat, _ := p.KernelTraversal(size)
	desLat, _ := p.Deserialize(size, nTensors)
	// The payload occupies the sender's egress NIC and the receiver's
	// ingress NIC in turn (store-and-forward at the switch).
	wire := 2 * p.WireTime(size)
	return serLat + txLat + wire + 2*p.NICLatency + rxLat + desLat
}
