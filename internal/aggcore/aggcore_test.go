package aggcore

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/fedavg"
	"repro/internal/sim"
	"repro/internal/tensor"
)

type captureTransport struct {
	out   *Update
	at    sim.Duration
	eng   *sim.Engine
	count int
}

func (c *captureTransport) SendResult(_ *Aggregator, out Update, _ string) {
	o := out
	c.out = &o
	c.at = c.eng.Now()
	c.count++
}

func rig() (*sim.Engine, *cluster.Node) {
	eng := sim.NewEngine()
	c := cluster.New(eng, sim.NewRNG(1), costmodel.Default(), 1)
	return eng, c.Nodes[0]
}

func mkUpdate(v float32, w float64) Update {
	u := tensor.FromSlice([]float32{v, v * 2})
	return Update{Tensor: u, Weight: w, Size: 1 << 20, Round: 1}
}

func TestEagerAggregatesToGoalAndSends(t *testing.T) {
	eng, n := rig()
	a := New("leaf", RoleLeaf, n, fedavg.FedAvg{}, 2, 2)
	ct := &captureTransport{eng: eng}
	a.Transport = ct
	a.Mode = Eager
	a.Assign(RoleLeaf, 3, "top", 1)
	a.Receive(mkUpdate(1, 1))
	a.Receive(mkUpdate(2, 1))
	a.Receive(mkUpdate(6, 2))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ct.count != 1 || ct.out == nil {
		t.Fatalf("sends = %d", ct.count)
	}
	// (1 + 2 + 6·2)/4 = 3.75
	if got := ct.out.Tensor.Data[0]; got < 3.74 || got > 3.76 {
		t.Fatalf("aggregate = %v", got)
	}
	if ct.out.Weight != 4 {
		t.Fatalf("total weight = %v", ct.out.Weight)
	}
	if !a.Idle() {
		t.Fatal("aggregator should be idle after send")
	}
	if a.Done() != 3 || a.TotalAggregated != 3 || a.RoundsCompleted != 1 {
		t.Fatalf("counters: %d/%d/%d", a.Done(), a.TotalAggregated, a.RoundsCompleted)
	}
}

// Fig. 1: eager and lazy produce the same result, but lazy starts
// aggregating only when the whole goal has arrived, so it finishes later
// when arrivals are spread out.
func TestEagerFinishesBeforeLazyOnSpreadArrivals(t *testing.T) {
	run := func(mode Mode) (sim.Duration, *tensor.Tensor) {
		eng, n := rig()
		a := New("leaf", RoleLeaf, n, fedavg.FedAvg{}, 2, 2)
		ct := &captureTransport{eng: eng}
		a.Transport = ct
		a.Mode = mode
		a.Assign(RoleLeaf, 4, "top", 1)
		for i := 0; i < 4; i++ {
			i := i
			eng.At(sim.Duration(i)*10*sim.Second, func() {
				a.Receive(Update{Tensor: tensor.FromSlice([]float32{float32(i), 0}), Weight: 1, Size: 500 << 20, Round: 1})
			})
		}
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		if ct.out == nil {
			t.Fatal("no send")
		}
		return ct.at, ct.out.Tensor
	}
	eagerAt, eagerRes := run(Eager)
	lazyAt, lazyRes := run(Lazy)
	if d, _ := eagerRes.MaxAbsDiff(lazyRes); d > 1e-5 {
		t.Fatalf("eager and lazy disagree by %v", d)
	}
	if eagerAt >= lazyAt {
		t.Fatalf("eager (%v) should finish before lazy (%v) on spread arrivals", eagerAt, lazyAt)
	}
	// Eager overlaps Recv with Agg: only the last update's work remains
	// after the final arrival (§5.4).
	lastArrival := 30 * sim.Second
	p := costmodel.Default()
	oneAgg := p.AggregateOne(500 << 20)
	if eagerAt > lastArrival+oneAgg+sim.Second {
		t.Fatalf("eager tail too long: %v", eagerAt-lastArrival)
	}
	if lazyAt < lastArrival+4*oneAgg {
		t.Fatalf("lazy must pay the whole batch after the last arrival, finished %v", lazyAt)
	}
}

func TestLazyDoesNotStartEarly(t *testing.T) {
	eng, n := rig()
	a := New("leaf", RoleLeaf, n, fedavg.FedAvg{}, 2, 2)
	a.Transport = &captureTransport{eng: eng}
	a.Mode = Lazy
	a.Assign(RoleLeaf, 2, "top", 1)
	a.Receive(mkUpdate(1, 1))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if a.Done() != 0 || a.Pending() != 1 {
		t.Fatalf("lazy aggregated early: done=%d pending=%d", a.Done(), a.Pending())
	}
}

func TestShmReferencesReleasedAfterAggregation(t *testing.T) {
	eng, n := rig()
	a := New("leaf", RoleLeaf, n, fedavg.FedAvg{}, 2, 2)
	a.Transport = &captureTransport{eng: eng}
	a.Mode = Eager
	a.Assign(RoleLeaf, 2, "top", 1)
	for i := 0; i < 2; i++ {
		u := tensor.FromSlice([]float32{1, 2})
		key, err := n.Shm.Put(u, 1, "c", 1)
		if err != nil {
			t.Fatal(err)
		}
		a.Receive(Update{Tensor: u, Weight: 1, Size: u.VirtualBytes(), Key: key, Store: n.Shm})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if n.Shm.Len() != 0 {
		t.Fatalf("%d shm objects leaked", n.Shm.Len())
	}
}

func TestRoleConversion(t *testing.T) {
	eng, n := rig()
	a := New("x", RoleLeaf, n, fedavg.FedAvg{}, 2, 2)
	ct := &captureTransport{eng: eng}
	a.Transport = ct
	a.Mode = Eager
	a.Assign(RoleLeaf, 1, "mid", 1)
	a.Receive(mkUpdate(1, 1))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !a.Idle() {
		t.Fatal("not idle after first task")
	}
	// Convert the idle leaf into a middle (§5.3) and run a second task.
	converted := false
	start := eng.Now()
	a.ConvertRole(RoleMiddle, 2, "top", 2, func() { converted = true })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !converted || a.Role != RoleMiddle || a.Goal != 2 || a.Round != 2 {
		t.Fatalf("conversion state: %v role=%v goal=%d", converted, a.Role, a.Goal)
	}
	if eng.Now()-start != n.P.RoleConvertDelay {
		t.Fatalf("conversion took %v", eng.Now()-start)
	}
	a.Receive(mkUpdate(2, 1))
	a.Receive(mkUpdate(4, 1))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ct.count != 2 {
		t.Fatalf("sends = %d", ct.count)
	}
	if got := ct.out.Tensor.Data[0]; got != 3 {
		t.Fatalf("converted-state aggregate = %v (stale state?)", got)
	}
}

func TestOnCompleteBypassesTransport(t *testing.T) {
	eng, n := rig()
	a := New("top", RoleTop, n, fedavg.FedAvg{}, 2, 2)
	var got *Update
	a.OnComplete = func(_ *Aggregator, out Update) { got = &out }
	a.Mode = Eager
	a.Assign(RoleTop, 1, "", 1)
	a.Receive(mkUpdate(5, 2))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Weight != 2 {
		t.Fatalf("OnComplete: %+v", got)
	}
}

func TestAssignNonPositiveGoalPanics(t *testing.T) {
	_, n := rig()
	a := New("x", RoleLeaf, n, fedavg.FedAvg{}, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Assign(RoleLeaf, 0, "", 1)
}

func TestRoleStrings(t *testing.T) {
	if RoleLeaf.String() != "leaf" || RoleMiddle.String() != "middle" || RoleTop.String() != "top" {
		t.Fatal("role strings")
	}
}

// Property: for any weights and arrival order, the aggregator's output is
// the exact weighted mean of what it received.
func TestAggregationCorrectnessProperty(t *testing.T) {
	f := func(vals []int8, wsRaw []uint8) bool {
		n := len(vals)
		if n == 0 || n > 12 || len(wsRaw) < n {
			return true // skip degenerate shapes
		}
		eng, node := rig()
		a := New("leaf", RoleLeaf, node, fedavg.FedAvg{}, 1, 1)
		ct := &captureTransport{eng: eng}
		a.Transport = ct
		a.Mode = Eager
		a.Assign(RoleLeaf, n, "top", 1)
		var num, den float64
		for i := 0; i < n; i++ {
			v := float64(vals[i])
			w := float64(wsRaw[i]%13) + 1
			num += v * w
			den += w
			a.Receive(Update{Tensor: tensor.FromSlice([]float32{float32(v)}), Weight: w, Size: 1000})
		}
		if err := eng.RunUntilIdle(); err != nil {
			return false
		}
		if ct.out == nil {
			return false
		}
		got := float64(ct.out.Tensor.Data[0])
		want := num / den
		return got > want-1e-3 && got < want+1e-3 && ct.out.Weight == den
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Reweigh recomputes weights at the Agg-step dequeue (fold time). The
// buffered-async system hangs staleness decay here: the folded aggregate
// must use the reweighed values while the stored updates keep their
// original weights for failover replay.
func TestReweighAppliesAtFoldTime(t *testing.T) {
	eng, n := rig()
	a := New("buf", RoleTop, n, fedavg.FedAvg{}, 2, 2)
	ct := &captureTransport{eng: eng}
	a.Transport = ct
	a.Mode = Eager
	// Halve every weight: the mean is unchanged, the total weight halves.
	a.Reweigh = func(u Update) float64 { return u.Weight / 2 }
	a.Assign(RoleTop, 2, "up", 1)
	a.Receive(mkUpdate(2, 1))
	a.Receive(mkUpdate(4, 3))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ct.count != 1 {
		t.Fatalf("sends = %d", ct.count)
	}
	// (2·0.5 + 4·1.5)/2 = 3.5, total weight 0.5 + 1.5 = 2.
	if got := ct.out.Tensor.Data[0]; got < 3.49 || got > 3.51 {
		t.Fatalf("aggregate = %v", got)
	}
	if ct.out.Weight != 2 {
		t.Fatalf("total weight = %v, want reweighed 2", ct.out.Weight)
	}
}

// A reweigh verdict of <= 0 discards the update without advancing the goal:
// the buffer only fills with live contributions.
func TestReweighDiscardsWithoutAdvancingGoal(t *testing.T) {
	eng, n := rig()
	a := New("buf", RoleTop, n, fedavg.FedAvg{}, 2, 2)
	ct := &captureTransport{eng: eng}
	a.Transport = ct
	a.Mode = Eager
	a.Reweigh = func(u Update) float64 {
		if u.Round == 0 { // "too stale"
			return 0
		}
		return u.Weight
	}
	a.Assign(RoleTop, 2, "up", 1)
	stale := mkUpdate(100, 5)
	stale.Round = 0
	a.Receive(stale)
	a.Receive(mkUpdate(1, 1))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ct.count != 0 {
		t.Fatal("goal met with a discarded update")
	}
	if a.Discarded != 1 || a.Done() != 1 {
		t.Fatalf("discarded = %d, done = %d", a.Discarded, a.Done())
	}
	a.Receive(mkUpdate(3, 1))
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ct.count != 1 {
		t.Fatal("goal did not complete after live updates")
	}
	// The discarded value-100 update must not have leaked in: (1 + 3)/2 = 2.
	if got := ct.out.Tensor.Data[0]; got != 2 {
		t.Fatalf("aggregate = %v, want 2", got)
	}
}

// A discarded shm-resident update must release its reference; a folded one
// still releases at Send — either way the store drains to empty.
func TestReweighDiscardReleasesShmReference(t *testing.T) {
	eng, n := rig()
	a := New("buf", RoleTop, n, fedavg.FedAvg{}, 2, 2)
	ct := &captureTransport{eng: eng}
	a.Transport = ct
	a.Mode = Eager
	a.Reweigh = func(u Update) float64 {
		if u.Producer == "stale" {
			return 0
		}
		return u.Weight
	}
	a.Assign(RoleTop, 2, "up", 1)
	recv := func(producer string, v float32) {
		u := tensor.FromSlice([]float32{v, v})
		key, err := n.Shm.Put(u, 1, producer, 1)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := n.Shm.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		a.Receive(Update{Tensor: obj.Tensor, Weight: obj.Weight, Size: obj.Size,
			Round: 1, Producer: producer, Key: key, Store: n.Shm})
	}
	recv("stale", 9)
	recv("live", 1)
	recv("live", 3)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if ct.count != 1 {
		t.Fatalf("sends = %d", ct.count)
	}
	if a.Discarded != 1 {
		t.Fatalf("discarded = %d", a.Discarded)
	}
	if n.Shm.Len() != 0 {
		t.Fatalf("shm holds %d objects after send; discarded reference leaked", n.Shm.Len())
	}
}
