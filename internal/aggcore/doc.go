// Package aggcore implements LIFL's aggregator: the step-based processing
// model of Appendix G (Fig. 14). An aggregator is a multiple-producer,
// single-consumer pipeline of three steps — Recv (enqueue incoming updates
// into a FIFO; in LIFL only the shm object key is enqueued), Agg (dequeue
// and fold one update into the cumulative FedAvg state, repeating until the
// aggregation goal is met), and Send (emit the aggregate to the designated
// consumer). Recv and Agg overlap, which is exactly what enables eager
// aggregation (§5.4); lazy aggregation defers Agg until the whole batch has
// arrived (Fig. 1).
//
// Aggregators are stateless across rounds and use homogenized runtimes, so
// a warm leaf can be converted into a middle or top aggregator with nothing
// but a role flip (§5.3). Updates reference shared-memory objects; an
// update consumed by Agg releases its reference, and Update.Release frees
// updates a round retires unconsumed, so shm slabs never leak across
// rounds.
//
// Layer (DESIGN.md): component model under internal/systems — the
// Recv/Agg/Send aggregator pipeline every system assembles its hierarchy
// (or async buffer) from.
package aggcore
