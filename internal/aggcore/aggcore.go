package aggcore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fedavg"
	"repro/internal/runtime"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Role is an aggregator's level in the hierarchy.
type Role int

// Hierarchy levels (§2.2): leaves absorb client updates, middles combine
// leaves, the single top produces the new global model.
const (
	RoleLeaf Role = iota
	RoleMiddle
	RoleTop
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleLeaf:
		return "leaf"
	case RoleMiddle:
		return "middle"
	case RoleTop:
		return "top"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Mode selects the aggregation timing of Fig. 1.
type Mode int

// Eager aggregates every update on arrival; Lazy queues until the goal's
// worth of updates is present, then aggregates the batch.
const (
	Eager Mode = iota
	Lazy
)

// Update is one model update flowing through the hierarchy.
type Update struct {
	Tensor   *tensor.Tensor
	Weight   float64
	Size     uint64 // virtual payload bytes
	Round    int
	Producer string
	// Key/Store are set when the payload is resident in shared memory; the
	// aggregator releases its reference after folding the update in.
	Key   shm.Key
	Store *shm.Store
}

// Release drops the update's shm reference, if any — the round-closure
// path for updates still parked on a retired logical name. The reference
// is cleared, so calling it again is a no-op.
func (u *Update) Release() { u.release() }

// release drops the shm reference, if any.
func (u *Update) release() {
	if u.Store != nil {
		if err := u.Store.Release(u.Key); err != nil {
			panic(fmt.Sprintf("aggcore: releasing %s: %v", u.Key, err))
		}
		u.Store = nil
	}
}

// Transport ships an aggregator's output to its consumer. LIFL's transport
// writes to shm and passes keys (or relays via gateways across nodes); the
// baselines serialize through brokers and sidecars.
type Transport interface {
	SendResult(src *Aggregator, out Update, dstID string)
}

// Aggregator is one instance. All methods must be called from simulation
// callbacks (single-threaded virtual time).
type Aggregator struct {
	ID   string
	Role Role
	Node *cluster.Node
	// Sandbox is the runtime instance hosting this aggregator; nil for
	// always-on serverful deployments.
	Sandbox *runtime.Sandbox

	// Goal is the aggregation goal n of Eq. (1): updates to fold before Send.
	Goal int
	Mode Mode
	// DstID names the consumer aggregator; unused when OnComplete is set.
	DstID string
	Round int

	Transport Transport
	// OnComplete, when set (top aggregator), receives the final aggregate
	// instead of Transport.
	OnComplete func(*Aggregator, Update)

	// Reweigh, when set, recomputes an update's effective FedAvg weight at
	// the moment it is folded (the Agg-step dequeue) instead of when it
	// arrived. The buffered-async system uses it for staleness decay
	// measured against the model version current at fold time (there,
	// Update.Round carries the producer's base version). Returning a weight
	// <= 0 discards the update: its shm reference is released, Discarded
	// increments, and the aggregation goal does not advance. The update's
	// stored Weight is never mutated, so a §3 failover replay re-weighs
	// from the original value.
	Reweigh func(Update) float64

	Tracer *trace.Recorder
	// TraceName is the actor label in timelines ("LF1", "Top", ...).
	TraceName string

	// Proc is the aggregator's single-threaded process: every Recv/Agg/Send
	// step serializes through it (§5.2 "the steps within a LIFL aggregator
	// are executed sequentially"). This is what makes a single aggregator's
	// receive path a bottleneck in Fig. 4's NH baseline.
	Proc *sim.Station

	algo  fedavg.Algorithm
	state fedavg.State
	// queue is the Recv FIFO, managed as a ring: qhead indexes the next
	// entry, and the backing array is recycled once drained, so steady-state
	// enqueueing does not allocate.
	queue []Update
	qhead int
	// consumed keeps every folded update (with its shm reference) until
	// Send: aggregators are stateless, so recovery from a failure replays
	// the in-place updates into a fresh instance (§3). References release
	// in bulk at Send, and the backing array is reused across rounds.
	consumed []Update
	// inflight is the update currently in the Agg step, held by value (a
	// boxed pointer here cost one heap allocation per aggregated update).
	inflight    Update
	hasInflight bool
	busy        bool
	dead        bool // failed instance: ignore in-flight completions
	done        int  // updates folded into the state this round
	sent        bool // Send already fired this round

	// Stats.
	TotalAggregated uint64
	RoundsCompleted uint64
	// Discarded counts updates dropped by Reweigh before folding.
	Discarded uint64
}

// New creates an aggregator with the given algorithm. phys/virtual size the
// accumulator to the model being trained.
func New(id string, role Role, node *cluster.Node, algo fedavg.Algorithm, phys, virtual int) *Aggregator {
	a := &Aggregator{
		ID:        id,
		Role:      role,
		Node:      node,
		Proc:      sim.NewStation(node.Eng, id+"/proc", 1),
		algo:      algo,
		state:     algo.NewState(phys, virtual),
		TraceName: id,
	}
	return a
}

// ExecAs runs work on the aggregator's single-threaded process, attributing
// cpu CPU time to component on the node. Transports and ingest pipelines use
// this so destination-side payload processing serializes per aggregator,
// like the reference implementation's per-process receive loop.
func (a *Aggregator) ExecAs(component string, demand, cpu sim.Duration, done func(start, end sim.Duration)) {
	a.Node.ExecFree(component, cpu)
	a.Proc.Submit(demand, done)
}

// Pending returns FIFO occupancy (queued, not yet aggregated).
func (a *Aggregator) Pending() int { return len(a.queue) - a.qhead }

// Done returns updates aggregated this round.
func (a *Aggregator) Done() int { return a.done }

// Idle reports whether the aggregator has finished its task for the round —
// the condition under which §5.3 converts it to a higher role.
func (a *Aggregator) Idle() bool { return a.sent && !a.busy && a.Pending() == 0 }

// Assign (re)targets the aggregator for a round: its role, goal, consumer,
// and round number. State is reset; the homogenized runtime needs nothing
// else (§5.3 "No further change is required as LIFL's aggregator runtime is
// stateless").
func (a *Aggregator) Assign(role Role, goal int, dstID string, round int) {
	if goal <= 0 {
		panic(fmt.Sprintf("aggcore: %s assigned non-positive goal %d", a.ID, goal))
	}
	a.Role = role
	a.Goal = goal
	a.DstID = dstID
	a.Round = round
	a.state.Reset()
	a.done = 0
	a.sent = false
	if a.Sandbox != nil {
		// The instance owes this round an output; exempt it from
		// keep-alive reclamation until Send fires.
		a.Sandbox.Pinned = true
	}
	// Any queued updates for the new assignment stay; stale ones were
	// consumed by the previous round's goal.
}

// ConvertRole is Assign plus the small in-place conversion delay of §5.3,
// after which ready fires. It models the coordinator's role flip of a warm,
// idle instance (leaf→middle, middle→top).
func (a *Aggregator) ConvertRole(role Role, goal int, dstID string, round int, ready func()) {
	a.Node.Eng.After(a.Node.P.RoleConvertDelay, func() {
		a.Assign(role, goal, dstID, round)
		if ready != nil {
			ready()
		}
	})
}

// Receive is the Recv step: enqueue one update (in LIFL, the caller has
// already placed the payload in shm and only the key reaches the FIFO).
func (a *Aggregator) Receive(u Update) {
	a.queue = append(a.queue, u)
	switch a.Mode {
	case Eager:
		a.pump()
	case Lazy:
		// Lazy: begin only when the whole goal's worth has arrived.
		if a.Pending()+a.done >= a.Goal {
			a.pump()
		}
	}
}

// pump drives the Agg step: one FIFO entry at a time, sequential (the steps
// within an aggregator execute sequentially, §5.2).
func (a *Aggregator) pump() {
	if a.busy || a.sent || a.Pending() == 0 {
		return
	}
	if a.Sandbox != nil && a.Sandbox.State() == runtime.StateStarting {
		return // not ready yet; kicked again via NotifyReady
	}
	u := a.queue[a.qhead]
	a.queue[a.qhead] = Update{} // drop the ring slot's references
	a.qhead++
	if a.qhead == len(a.queue) {
		a.queue = a.queue[:0] // drained: recycle the backing array
		a.qhead = 0
	}
	w := u.Weight
	if a.Reweigh != nil {
		if w = a.Reweigh(u); w <= 0 {
			// Discarded at the queue head before any Agg-step work: release
			// the payload and keep draining. The comparison is a version-tag
			// check, so no CPU demand is charged.
			u.release()
			a.Discarded++
			a.pump()
			return
		}
	}
	a.busy = true
	a.inflight = u
	a.hasInflight = true
	if a.Sandbox != nil {
		_ = a.Sandbox.SetBusy()
	}
	demand := a.Node.P.AggregateOne(u.Size)
	a.ExecAs("aggregator", demand, demand, func(start, end sim.Duration) {
		if a.dead {
			return // the instance failed mid-step; the update was replayed
		}
		a.Tracer.Add(a.TraceName, trace.KindAgg, start, end, a.Round)
		if err := a.state.Accumulate(u.Tensor, w); err != nil {
			panic(fmt.Sprintf("aggcore %s: %v", a.ID, err))
		}
		a.consumed = append(a.consumed, u)
		a.inflight = Update{}
		a.hasInflight = false
		a.done++
		a.TotalAggregated++
		a.busy = false
		if a.done >= a.Goal {
			a.send()
			return
		}
		if a.Sandbox != nil && a.Pending() == 0 {
			_ = a.Sandbox.SetIdle()
		}
		a.pump()
	})
}

// NotifyReady kicks processing once the hosting sandbox becomes ready (used
// when updates queued in shm during a cold start).
func (a *Aggregator) NotifyReady() { a.pump() }

// FailoverUpdates extracts every update the (failed) aggregator was
// responsible for — queued and already-folded alike, shm references intact —
// so the control plane can replay them into a stateless replacement. The
// aggregator is left inert.
func (a *Aggregator) FailoverUpdates() []Update {
	out := a.consumed
	if a.hasInflight {
		out = append(out, a.inflight)
		a.inflight = Update{}
		a.hasInflight = false
	}
	out = append(out, a.queue[a.qhead:]...)
	// Ownership of the consumed backing array moves to the caller; the
	// (dead) aggregator starts from scratch if ever revived.
	a.consumed = nil
	a.queue = nil
	a.qhead = 0
	a.state.Reset()
	a.done = 0
	a.busy = false
	a.dead = true
	a.sent = true
	return out
}

// send is the Send step: emit the aggregate to the consumer.
func (a *Aggregator) send() {
	res, total, err := a.state.Result()
	if err != nil {
		panic(fmt.Sprintf("aggcore %s: %v", a.ID, err))
	}
	a.sent = true
	a.RoundsCompleted++
	// The aggregate is out; the source updates may now be recycled, and the
	// consumed backing array reused next round (slots zeroed so the round's
	// tensors do not linger).
	for i := range a.consumed {
		a.consumed[i].release()
		a.consumed[i] = Update{}
	}
	a.consumed = a.consumed[:0]
	if a.Sandbox != nil {
		a.Sandbox.Pinned = false
		_ = a.Sandbox.SetIdle()
	}
	out := Update{
		Tensor:   res,
		Weight:   total,
		Size:     res.VirtualBytes(),
		Round:    a.Round,
		Producer: a.ID,
	}
	if a.OnComplete != nil {
		a.OnComplete(a, out)
		return
	}
	if a.Transport == nil {
		panic(fmt.Sprintf("aggcore %s: no transport and no OnComplete", a.ID))
	}
	a.Transport.SendResult(a, out, a.DstID)
}
