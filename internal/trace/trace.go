package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind labels match the paper's figure legend.
const (
	KindNetwork = "Network" // receiving/transferring model updates
	KindAgg     = "Agg"     // aggregation compute
	KindEval    = "Eval"    // post-round global model evaluation
	KindStartup = "Startup" // sandbox cold/warm start
	KindQueue   = "Queue"   // time spent queued before service
)

// Span is one task execution by one actor. It is the telemetry plane's
// span type: a Recorder is one producer feeding an obs.SpanLog, so the
// same spans a Gantt renders also drive the Perfetto export.
type Span = obs.Span

// Recorder accumulates spans. The zero value is ready to use: it
// lazily allocates a private bounded log on first Add. Point Log at a
// registry's Spans() log instead to share storage with the telemetry
// plane (core does this when RunConfig.Telemetry is set).
type Recorder struct {
	// Log is the backing span store; nil until first Add.
	Log *obs.SpanLog
	// Disabled gates recording; a nil Recorder is also safely disabled.
	Disabled bool
}

// Add records a span. Safe on a nil recorder.
func (r *Recorder) Add(actor, kind string, start, end sim.Duration, round int) {
	if r == nil || r.Disabled {
		return
	}
	if r.Log == nil {
		r.Log = &obs.SpanLog{}
	}
	r.Log.Add(Span{Actor: actor, Kind: kind, Start: start, End: end, Round: round})
}

// Spans returns the recorded spans (shared backing; callers must not
// mutate).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.Log.Spans()
}

// ByActor groups spans per actor, each sorted by start time.
func (r *Recorder) ByActor() map[string][]Span {
	out := make(map[string][]Span)
	for _, s := range r.Spans() {
		out[s.Actor] = append(out[s.Actor], s)
	}
	for _, ss := range out {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	}
	return out
}

// RoundBounds returns the first start and last end among spans of the round.
func (r *Recorder) RoundBounds(round int) (start, end sim.Duration, ok bool) {
	for _, s := range r.Spans() {
		if s.Round != round {
			continue
		}
		if !ok || s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
		ok = true
	}
	return start, end, ok
}

// TotalByKind sums span durations per kind for one actor ("" = all actors).
func (r *Recorder) TotalByKind(actor string) map[string]sim.Duration {
	out := make(map[string]sim.Duration)
	for _, s := range r.Spans() {
		if actor != "" && s.Actor != actor {
			continue
		}
		out[s.Kind] += s.End - s.Start
	}
	return out
}

// glyphs for rendering, one per kind.
var glyphs = map[string]rune{
	KindNetwork: '▒',
	KindAgg:     '█',
	KindEval:    '▓',
	KindStartup: '*',
	KindQueue:   '.',
}

// RenderGantt draws an ASCII timeline like Fig. 4 / Fig. 7(c): one row per
// actor, width columns spanning [0, horizon]. Actors render in the given
// order; actors with no spans still get a row.
func (r *Recorder) RenderGantt(actors []string, horizon sim.Duration, width int) string {
	if width <= 0 {
		width = 100
	}
	if horizon <= 0 {
		for _, s := range r.Spans() {
			if s.End > horizon {
				horizon = s.End
			}
		}
	}
	if horizon == 0 {
		horizon = sim.Second
	}
	byActor := r.ByActor()
	var b strings.Builder
	scale := float64(width) / float64(horizon)
	for _, a := range actors {
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range byActor[a] {
			g, ok := glyphs[s.Kind]
			if !ok {
				g = '?'
			}
			i0 := int(float64(s.Start) * scale)
			i1 := int(float64(s.End) * scale)
			if i1 <= i0 {
				i1 = i0 + 1
			}
			for i := i0; i < i1 && i < width; i++ {
				row[i] = g
			}
		}
		fmt.Fprintf(&b, "%-10s|%s|\n", a, string(row))
	}
	fmt.Fprintf(&b, "%-10s 0%sto %v   (%s=Network %s=Agg %s=Eval)\n",
		"", strings.Repeat(" ", width-20), horizon.Round(sim.Second),
		string(glyphs[KindNetwork]), string(glyphs[KindAgg]), string(glyphs[KindEval]))
	return b.String()
}
