package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecorderAndGrouping(t *testing.T) {
	var r Recorder
	r.Add("LF1", KindNetwork, 0, 2*sim.Second, 1)
	r.Add("LF1", KindAgg, 2*sim.Second, 3*sim.Second, 1)
	r.Add("Top", KindEval, 5*sim.Second, 8*sim.Second, 1)
	by := r.ByActor()
	if len(by["LF1"]) != 2 || len(by["Top"]) != 1 {
		t.Fatalf("grouping: %v", by)
	}
	if by["LF1"][0].Kind != KindNetwork {
		t.Fatal("spans not sorted by start")
	}
}

func TestRoundBounds(t *testing.T) {
	var r Recorder
	r.Add("a", KindAgg, 3*sim.Second, 5*sim.Second, 2)
	r.Add("b", KindAgg, 1*sim.Second, 4*sim.Second, 2)
	r.Add("c", KindAgg, 0, 9*sim.Second, 3)
	start, end, ok := r.RoundBounds(2)
	if !ok || start != sim.Second || end != 5*sim.Second {
		t.Fatalf("bounds = %v..%v ok=%v", start, end, ok)
	}
	if _, _, ok := r.RoundBounds(7); ok {
		t.Fatal("bounds for missing round")
	}
}

func TestTotalByKind(t *testing.T) {
	var r Recorder
	r.Add("a", KindAgg, 0, 2*sim.Second, 1)
	r.Add("a", KindAgg, 3*sim.Second, 4*sim.Second, 1)
	r.Add("b", KindNetwork, 0, 5*sim.Second, 1)
	all := r.TotalByKind("")
	if all[KindAgg] != 3*sim.Second || all[KindNetwork] != 5*sim.Second {
		t.Fatalf("totals: %v", all)
	}
	onlyA := r.TotalByKind("a")
	if onlyA[KindNetwork] != 0 {
		t.Fatalf("actor filter broken: %v", onlyA)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add("a", KindAgg, 0, sim.Second, 1) // must not panic
}

func TestDisabledRecorder(t *testing.T) {
	r := &Recorder{Disabled: true}
	r.Add("a", KindAgg, 0, sim.Second, 1)
	if len(r.Spans()) != 0 {
		t.Fatal("disabled recorder stored spans")
	}
}

func TestRenderGantt(t *testing.T) {
	var r Recorder
	r.Add("LF1", KindNetwork, 0, 5*sim.Second, 0)
	r.Add("LF1", KindAgg, 5*sim.Second, 10*sim.Second, 0)
	r.Add("Top", KindEval, 8*sim.Second, 10*sim.Second, 0)
	out := r.RenderGantt([]string{"LF1", "Top"}, 10*sim.Second, 40)
	if !strings.Contains(out, "LF1") || !strings.Contains(out, "Top") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "▒") || !strings.Contains(out, "█") || !strings.Contains(out, "▓") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines))
	}
}

func TestRenderGanttDefaults(t *testing.T) {
	var r Recorder
	r.Add("a", KindAgg, 0, sim.Second, 0)
	// Zero horizon and width fall back to sane defaults without panicking.
	out := r.RenderGantt([]string{"a", "missing"}, 0, 0)
	if out == "" {
		t.Fatal("empty render")
	}
}
