// Package trace records per-actor task spans on the virtual timeline so
// experiments can regenerate the paper's Gantt-style figures (Fig. 4 and
// Fig. 7(c): Network / Agg / Eval bars per aggregator) and round logs.
//
// A Recorder is one producer feeding an obs.SpanLog (trace.Span is an
// alias of obs.Span): with a private log it backs the standalone Gantt
// renderers; pointed at a registry's span log (which core does when
// RunConfig.Telemetry is set) the same spans also drive the telemetry
// plane's snapshot summary and Perfetto export.
//
// Layer (DESIGN.md): component support under internal/core — task spans
// for Fig. 7(c)-style timelines, storage shared with internal/obs.
package trace
