// Package trace records per-actor task spans on the virtual timeline so
// experiments can regenerate the paper's Gantt-style figures (Fig. 4 and
// Fig. 7(c): Network / Agg / Eval bars per aggregator) and round logs.
//
// Layer (DESIGN.md): component support under internal/core — task spans
// for Fig. 7(c)-style timelines.
package trace
