// Package par is the repo's one worker-pool primitive: deterministic
// fan-out of index-addressed work across a bounded goroutine pool. It is a
// leaf package (stdlib only) so every layer — tensor's sharded folds,
// core's staged round loop, cell's parallel per-cell stepping, harness
// sweeps — can share the same pool shape without import cycles.
//
// Determinism contract: Map and Do assign work by index and write results
// by index, so the *values* produced are independent of the worker count
// and of goroutine scheduling; only side effects that escape the per-index
// closure can observe the interleaving. Callers that need byte-identical
// output for any worker count must keep such side effects out of fn (or
// run with workers <= 1, which executes inline in index order and spawns
// no goroutines at all — the serial reference path).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker count: n > 0 is taken as-is, anything
// else means "one worker per available CPU".
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do evaluates fn(0..n-1) on up to `workers` goroutines. workers <= 1 runs
// inline in index order (no goroutines) — the serial reference path.
// Indices are handed out through a shared atomic counter, so the pool
// load-balances uneven work without any fixed striping.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map evaluates fn(0..n-1) on up to `workers` goroutines and returns the
// results in input order. workers <= 1 runs inline (no goroutines), in
// index order — useful both as the serial reference and for call sites
// that must preserve early side effects.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	Do(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
