package par

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(4); got != 4 {
		t.Fatalf("DefaultWorkers(4) = %d", got)
	}
	if got := DefaultWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := DefaultWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers(-3) = %d", got)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	want := Map(1, 100, func(i int) int { return i * i })
	for _, w := range []int{2, 3, 8, 200} {
		got := Map(w, 100, func(i int) int { return i * i })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Map results differ from serial", w)
		}
	}
}

func TestDoCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		counts := make([]int32, 1000)
		Do(w, len(counts), func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoSerialRunsInline(t *testing.T) {
	// workers <= 1 must execute in strict index order on the caller's
	// goroutine — call sites rely on this for early side effects.
	var seen []int
	Do(1, 5, func(i int) { seen = append(seen, i) })
	if !reflect.DeepEqual(seen, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("serial Do order = %v", seen)
	}
}

func TestEmptyAndZero(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("Map over 0 items = %v, want nil", out)
	}
	Do(4, 0, func(i int) { t.Fatalf("fn called for n=0") })
	Do(0, 3, func(i int) {}) // workers <= 1 path must not hang
}
