// Package harness runs independent simulation runs in parallel. Every run
// owns its own sim.Engine and seed-derived randomness (nothing is shared
// between runs), so fanning a scenario's expansion across a worker pool
// cannot perturb any run's result: a sweep's outputs are byte-identical
// whether it runs on 1 worker or N. Results are collected in input order,
// which keeps downstream formatting deterministic too — this is the
// cell-per-run isolation the related cell-routing design argues for,
// applied to figure regeneration.
//
// Layer (DESIGN.md): the layer above internal/scenario — fans expanded
// runs across workers (harness.go, pooled via internal/par), measures
// them under instrumentation for the perf trajectory (instrument.go,
// recording each run's resolved Workers so perfrec only gates real-clock
// metrics across matching worker counts), and dispatches configs with a
// Cells spec to the multi-cell fabric (Execute → internal/cell). It also
// attaches per-run observation sinks to expanded runs: trajectory sinks
// (trajectory.go → internal/trajstore) and telemetry registries
// (telemetry.go → internal/obs, one snapshot/trace file per run).
package harness
