package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenario"
	"repro/internal/trajstore"
)

// TrajPath names the trajectory file for one expanded run inside dir:
// <scenario>.traj for an axis-free scenario, <scenario>--<label>.traj
// otherwise, with the label's axis separators made filename-safe.
func TrajPath(dir string, run scenario.Run) string {
	name := run.Scenario
	if run.Label != run.Scenario {
		name += "--" + sanitizeLabel(run.Label)
	}
	return filepath.Join(dir, name+".traj")
}

func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '_'
		}
		return r
	}, label)
}

// AttachTrajectories equips every run with a trajstore sink writing under
// dir (created if missing) and returns a closer that seals all of them.
// Close the sinks before reading the files — the remainder block is
// written at Close. Callers own the lifecycle: call the closer even when
// the sweep errors, or the files lose their tail.
func AttachTrajectories(runs []scenario.Run, dir string) (func() error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sinks := make([]*trajstore.Sink, 0, len(runs))
	closeAll := func() error {
		var first error
		for _, s := range sinks {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for i := range runs {
		sink, err := trajstore.NewSink(TrajPath(dir, runs[i]), runs[i].Cfg, trajstore.Options{})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("harness: trajectory for %s/%s: %w", runs[i].Scenario, runs[i].Label, err)
		}
		sinks = append(sinks, sink)
		runs[i].Cfg.Trajectory = sink
	}
	return closeAll, nil
}
