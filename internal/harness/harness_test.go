package harness

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/scenario"
)

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("empty input: %v", out)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var live, peak atomic.Int64
	Map(3, 50, func(i int) int {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		live.Add(-1)
		return i
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent jobs with 3 workers", p)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers(5) != 5 {
		t.Fatal("explicit count ignored")
	}
	if DefaultWorkers(0) < 1 || DefaultWorkers(-1) < 1 {
		t.Fatal("auto count not positive")
	}
}

// sweepRuns is a small but real workload: two systems on a tiny
// population, enough rounds for genuine aggregation.
func sweepRuns() []scenario.Run {
	s := scenario.Scenario{
		Name:           "harness-test",
		Model:          model.ResNet18,
		Clients:        120,
		ActivePerRound: 8,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.99,
		MaxRounds:      3,
		Seed:           11,
		Systems:        []core.SystemKind{core.SystemLIFL, core.SystemSF, core.SystemSL},
	}
	return s.Expand()
}

// The core harness guarantee: per-run results are byte-identical whether
// the sweep runs serially or across workers, and arrive in input order.
func TestSweepParallelMatchesSerial(t *testing.T) {
	runs := sweepRuns()
	serial := Sweep(runs, 1)
	parallel := Sweep(runs, len(runs))
	if len(serial) != len(runs) || len(parallel) != len(runs) {
		t.Fatalf("lengths: %d %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("run %d errs: %v %v", i, a.Err, b.Err)
		}
		if a.Run.Label != runs[i].Label || b.Run.Label != runs[i].Label {
			t.Fatalf("run %d out of order", i)
		}
		if a.Report.Elapsed != b.Report.Elapsed || a.Report.CPUTotal != b.Report.CPUTotal ||
			a.Report.RoundsRun != b.Report.RoundsRun {
			t.Fatalf("run %d diverged: %+v vs %+v", i, a.Report, b.Report)
		}
		d, err := a.Report.FinalGlobal.MaxAbsDiff(b.Report.FinalGlobal)
		if err != nil || d != 0 {
			t.Fatalf("run %d models differ: %v %v", i, d, err)
		}
	}
}

func TestSweepSurfacesPerRunErrors(t *testing.T) {
	runs := sweepRuns()
	runs[1].Cfg.System = "bogus"
	res := Sweep(runs, 2)
	if res[1].Err == nil {
		t.Fatal("bad run did not error")
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("good runs failed: %v %v", res[0].Err, res[2].Err)
	}
}

// The buffered-async system through the harness: a trimmed fig11-async
// sweep must be byte-identical whether it runs serially or fanned across
// workers — the same guarantee the synchronous systems carry, now on the
// event-driven path (this is what lets liflsim scenario fig11-async take
// -parallel and liflbench trust its records).
func TestAsyncSweepParallelMatchesSerial(t *testing.T) {
	sc := scenario.MustGet("fig11-async")
	// Trim the workload so the test stays fast; three seeds give the pool
	// genuinely concurrent cells.
	sc.TargetAccuracy = 0.50
	sc.MaxRounds = 60
	sc.Clients = 400
	sc.ActivePerRound = 24
	sc.Seeds = []int64{1, 2, 3}
	runs := sc.Expand()
	serial := Sweep(runs, 1)
	parallel := Sweep(runs, len(runs))
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("run %d errs: %v %v", i, a.Err, b.Err)
		}
		if a.Report.Elapsed != b.Report.Elapsed || a.Report.CPUTotal != b.Report.CPUTotal ||
			a.Report.RoundsRun != b.Report.RoundsRun ||
			a.Report.TimeToTarget != b.Report.TimeToTarget ||
			a.Report.MeanStaleness != b.Report.MeanStaleness {
			t.Fatalf("async run %d diverged serial vs parallel", i)
		}
		d, err := a.Report.FinalGlobal.MaxAbsDiff(b.Report.FinalGlobal)
		if err != nil || d != 0 {
			t.Fatalf("async run %d models differ: %v %v", i, d, err)
		}
		if !a.Report.Reached {
			t.Fatalf("async run %d never reached its trimmed target", i)
		}
	}
}

// The geo (multi-cell fabric) scenarios through the harness: byte-identical
// whether the sweep runs serially or fanned across workers — every fabric
// builds its private engines — and a K=1 fabric through the same path is
// byte-identical to the plain single-cluster SystemLIFL run for the same
// seed (the degenerate-fabric invariant, here guarded end to end through
// scenario expansion and the sweep dispatch).
func TestGeoSweepParallelMatchesSerial(t *testing.T) {
	sc := scenario.MustGet("geo-4cell")
	// Trim the workload so the test stays fast; the cells axis gives the
	// pool a degenerate fabric, a small one, and the scenario's own shape.
	sc.Clients = 360
	sc.ActivePerRound = 24
	sc.MaxRounds = 95
	sc.CellRegions = nil
	sc.CellCounts = []int{1, 2, 4}
	runs := sc.Expand()
	serial := Sweep(runs, 1)
	parallel := Sweep(runs, len(runs))
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("run %d errs: %v %v", i, a.Err, b.Err)
		}
		a.Report.RoundWallTotal, a.Report.RoundWallMax = 0, 0
		b.Report.RoundWallTotal, b.Report.RoundWallMax = 0, 0
		if !reflect.DeepEqual(a.Report, b.Report) {
			t.Fatalf("geo run %d (%s) diverged serial vs parallel", i, a.Run.Label)
		}
		if !reflect.DeepEqual(a.Cells, b.Cells) {
			t.Fatalf("geo run %d (%s) cell detail diverged serial vs parallel", i, a.Run.Label)
		}
		if a.Cells == nil || !a.Report.Reached {
			t.Fatalf("geo run %d (%s) missing detail or target: %+v", i, a.Run.Label, a.Report.Reached)
		}
	}
	// The cells=1 run must match plain SystemLIFL bit for bit.
	plainCfg := runs[0].Cfg
	plainCfg.Cells = nil
	plain, err := core.Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	plain.RoundWallTotal, plain.RoundWallMax = 0, 0
	if !reflect.DeepEqual(plain, serial[0].Report) {
		t.Fatal("K=1 fabric diverged from the plain SystemLIFL run")
	}
}
