package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// TelemetryOptions configures AttachTelemetry.
type TelemetryOptions struct {
	// Dir receives one <label>.telemetry.json per expanded run (created
	// if missing).
	Dir string
	// Wall opts the registries into wall-clock capture (Volatile metrics
	// and wall stage spans appear in the snapshot). Off by default: the
	// default snapshot is byte-identical for a fixed seed regardless of
	// workers, parallelism, or host load.
	Wall bool
	// Perfetto additionally writes <label>.trace.json — a Chrome
	// trace_event file built from the run's virtual-time spans (plus
	// wall stage spans when Wall is set).
	Perfetto bool
}

// TelemetryPath names the snapshot file for one expanded run inside dir;
// it mirrors TrajPath's <scenario>[--<label>] naming.
func TelemetryPath(dir string, run scenario.Run) string {
	return filepath.Join(dir, runFileName(run)+".telemetry.json")
}

// TracePath names the Perfetto trace file for one expanded run inside dir.
func TracePath(dir string, run scenario.Run) string {
	return filepath.Join(dir, runFileName(run)+".trace.json")
}

func runFileName(run scenario.Run) string {
	name := run.Scenario
	if run.Label != run.Scenario {
		name += "--" + sanitizeLabel(run.Label)
	}
	return name
}

// AttachTelemetry equips every run with a fresh obs.Registry and returns
// a flush func that writes each registry's snapshot (and, under
// opts.Perfetto, its trace) under opts.Dir. Unlike trajectory sinks the
// registries buffer in memory, so flushing after a failed sweep still
// writes whatever the completed runs recorded. Callers own the lifecycle:
// run the sweep, then call the flusher.
func AttachTelemetry(runs []scenario.Run, opts TelemetryOptions) (func() error, error) {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	regs := make([]*obs.Registry, len(runs))
	for i := range runs {
		regs[i] = obs.New(obs.Options{CaptureWall: opts.Wall})
		runs[i].Cfg.Telemetry = regs[i]
	}
	flush := func() error {
		var first error
		for i := range runs {
			if err := os.WriteFile(TelemetryPath(opts.Dir, runs[i]), regs[i].Snapshot(), 0o644); err != nil && first == nil {
				first = fmt.Errorf("harness: telemetry for %s/%s: %w", runs[i].Scenario, runs[i].Label, err)
			}
			if !opts.Perfetto {
				continue
			}
			if err := os.WriteFile(TracePath(opts.Dir, runs[i]), regs[i].Perfetto(), 0o644); err != nil && first == nil {
				first = fmt.Errorf("harness: trace for %s/%s: %w", runs[i].Scenario, runs[i].Label, err)
			}
		}
		return first
	}
	return flush, nil
}
