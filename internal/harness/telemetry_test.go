package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/scenario"
)

// telemetryRuns is the determinism matrix's workload: all five systems on
// a tiny population, plus a two-cell fabric run through the same sweep.
func telemetryRuns() []scenario.Run {
	s := scenario.Scenario{
		Name:           "telemetry-test",
		Model:          model.ResNet18,
		Clients:        160,
		ActivePerRound: 8,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.99,
		MaxRounds:      3,
		Seed:           7,
		Systems: []core.SystemKind{
			core.SystemLIFL, core.SystemSLH, core.SystemSF,
			core.SystemSL, core.SystemAsync,
		},
	}
	runs := s.Expand()
	geo := scenario.Scenario{
		Name:           "telemetry-test-geo",
		Model:          model.ResNet18,
		Clients:        160,
		ActivePerRound: 8,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.99,
		MaxRounds:      3,
		Seed:           7,
		Cells:          2,
	}
	return append(runs, geo.Expand()...)
}

// snapshots runs the sweep with telemetry attached and returns the
// snapshot bytes per run, keyed by the snapshot file's base name.
func snapshots(t *testing.T, runs []scenario.Run, sweepWorkers int) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	flush, err := AttachTelemetry(runs, TelemetryOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Sweep(runs, sweepWorkers) {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Run.Scenario, r.Run.Label, r.Err)
		}
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(runs))
	for _, r := range runs {
		path := TelemetryPath(dir, r)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(path)] = data
	}
	return out
}

// The telemetry determinism contract: the default snapshot is
// byte-identical for a fixed seed across intra-run worker counts, sweep
// parallelism, and retention windows — for every system and for the cell
// fabric.
func TestTelemetrySnapshotDeterminism(t *testing.T) {
	base := snapshots(t, telemetryRuns(), 1)
	if len(base) != 6 {
		t.Fatalf("expected 6 runs, got %d", len(base))
	}
	for name, data := range base {
		if !bytes.Contains(data, []byte(`"schema":"lifl-telemetry/1"`)) {
			t.Fatalf("%s: missing schema header: %s", name, data)
		}
		if bytes.Contains(data, []byte(`"wall"`)) {
			t.Fatalf("%s: wall section present without opt-in", name)
		}
	}
	variants := []struct {
		name   string
		mutate func([]scenario.Run)
		sweep  int
	}{
		{"parallel-sweep", func([]scenario.Run) {}, 6},
		{"workers-8", func(rs []scenario.Run) {
			for i := range rs {
				rs[i].Cfg.Workers = 8
			}
		}, 1},
		{"retain-2", func(rs []scenario.Run) {
			for i := range rs {
				rs[i].Cfg.RetainRounds = 2
			}
		}, 1},
		{"retain-off", func(rs []scenario.Run) {
			for i := range rs {
				rs[i].Cfg.RetainRounds = -1
			}
		}, 1},
	}
	for _, v := range variants {
		runs := telemetryRuns()
		v.mutate(runs)
		got := snapshots(t, runs, v.sweep)
		for name, want := range base {
			if !bytes.Equal(got[name], want) {
				t.Fatalf("%s: %s snapshot diverged from baseline:\n%s\nvs\n%s",
					v.name, name, got[name], want)
			}
		}
	}
}

// Wall-clock capture is strictly opt-in: without it no Volatile metric or
// wall span reaches the snapshot; with it the "wall" section appears and
// carries the stage profile.
func TestTelemetryWallOptIn(t *testing.T) {
	runs := telemetryRuns()[:1] // one LIFL run is enough
	dir := t.TempDir()
	flush, err := AttachTelemetry(runs, TelemetryOptions{Dir: dir, Wall: true, Perfetto: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Sweep(runs, 1) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(TelemetryPath(dir, runs[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"wall":{`, `stage/playout/wall_ns`, `stage/select/wall_ns`, `"stage_spans":`} {
		if !strings.Contains(string(snap), want) {
			t.Fatalf("wall snapshot missing %q:\n%s", want, snap)
		}
	}
	trace, err := os.ReadFile(TracePath(dir, runs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(trace, []byte(`"traceEvents"`)) {
		t.Fatalf("trace file is not a trace_event export: %s", trace[:min(len(trace), 200)])
	}
	// Wall capture puts the stage spans on the wall-clock process.
	if !bytes.Contains(trace, []byte(`"pid":2`)) {
		t.Fatal("wall stage spans missing from the Perfetto export")
	}
}

// Without the Perfetto option flush writes snapshots only.
func TestTelemetryPerfettoOffByDefault(t *testing.T) {
	runs := telemetryRuns()[:1]
	dir := t.TempDir()
	flush, err := AttachTelemetry(runs, TelemetryOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Sweep(runs, 1) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(TracePath(dir, runs[0])); !os.IsNotExist(err) {
		t.Fatalf("trace written without the Perfetto option: %v", err)
	}
}
