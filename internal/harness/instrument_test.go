package harness

import (
	"testing"

	"repro/internal/scenario"
)

// TestMeasureScenarioFig8 instruments the short fig8-ablation entry and
// checks the record invariants: every expanded run gets a record, sim-side
// quantities match an uninstrumented sweep exactly, and the measured
// channels are populated.
func TestMeasureScenarioFig8(t *testing.T) {
	sc := scenario.MustGet("fig8-ablation")
	recs, err := MeasureScenario(sc, MeasureOptions{Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	runs := sc.Expand()
	if len(recs) != len(runs) {
		t.Fatalf("got %d records for %d expanded runs", len(recs), len(runs))
	}
	plain := Sweep(runs, 1)
	for i, rec := range recs {
		if rec.Scenario != "fig8-ablation" || rec.Label != runs[i].Label {
			t.Fatalf("record %d mislabelled: %q/%q", i, rec.Scenario, rec.Label)
		}
		if rec.Class != scenario.ClassShort || rec.Repeats != 2 {
			t.Fatalf("record %d meta: class=%q repeats=%d", i, rec.Class, rec.Repeats)
		}
		if plain[i].Err != nil {
			t.Fatal(plain[i].Err)
		}
		if rec.SimNS != int64(plain[i].Report.Elapsed) || rec.Rounds != plain[i].Report.RoundsRun {
			t.Fatalf("record %d sim-side drift vs plain sweep: sim %d vs %d, rounds %d vs %d",
				i, rec.SimNS, int64(plain[i].Report.Elapsed), rec.Rounds, plain[i].Report.RoundsRun)
		}
		if rec.WallNS <= 0 || rec.Mallocs == 0 || rec.AllocBytes == 0 {
			t.Fatalf("record %d missing real-clock channels: %+v", i, rec)
		}
		if len(rec.Milestones) != 0 {
			t.Fatalf("injected run %d should have no accuracy milestones: %+v", i, rec.Milestones)
		}
	}
}

// TestMeasureMilestones runs the momentum workload and checks the
// time-to-accuracy export: the 0.70 crossing must match the report's
// TimeToTarget channel.
func TestMeasureMilestones(t *testing.T) {
	if testing.Short() {
		t.Skip("full ResNet-18 workload")
	}
	sc := scenario.MustGet("fig9-r18-momentum")
	recs, err := MeasureScenario(sc, MeasureOptions{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Reached {
		t.Fatal("workload did not reach target")
	}
	if len(rec.Milestones) != 1 || rec.Milestones[0].Accuracy != 0.70 {
		t.Fatalf("milestones = %+v, want single 0.70 crossing", rec.Milestones)
	}
	plain := Sweep(sc.Expand(), 1)
	if plain[0].Err != nil {
		t.Fatal(plain[0].Err)
	}
	if rec.Milestones[0].SimNS != int64(plain[0].Report.TimeToTarget) {
		t.Fatalf("0.70 milestone sim time %d != TimeToTarget %d",
			rec.Milestones[0].SimNS, int64(plain[0].Report.TimeToTarget))
	}
}
