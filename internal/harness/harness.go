package harness

import (
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/scenario"
)

// DefaultWorkers resolves a worker count: n > 0 is taken as-is, anything
// else means "one worker per available CPU". It delegates to internal/par,
// the shared pool primitive under both this package's run-level fan-out
// and core's intra-run staged parallelism.
func DefaultWorkers(n int) int { return par.DefaultWorkers(n) }

// Map evaluates fn(0..n-1) on up to `workers` goroutines and returns the
// results in input order (par.Map). workers <= 1 runs inline (no
// goroutines), in index order — useful both as the serial reference and
// for call sites that must preserve early side effects.
func Map[T any](workers, n int, fn func(i int) T) []T {
	return par.Map(workers, n, fn)
}

// Result pairs one expanded scenario run with its outcome.
type Result struct {
	Run    scenario.Run
	Report *core.Report
	// Cells carries the per-cell detail of a multi-cell (fabric) run;
	// nil for single-cluster runs.
	Cells *cell.Detail
	Err   error
}

// Execute runs one RunConfig through the right entry point: configs with
// a Cells spec go to the multi-cell fabric (internal/cell), everything
// else to core.Run. Every sweep and every instrumented measurement funnels
// through here, so a cell config can never silently run single-cluster.
func Execute(cfg core.RunConfig) (*core.Report, *cell.Detail, error) {
	if cfg.Cells != nil {
		return cell.Run(cfg)
	}
	rep, err := core.Run(cfg)
	return rep, nil, err
}

// Sweep executes every run on a pool of `workers` goroutines (<= 0 means
// one per CPU) and returns results in input order. Per-run determinism is
// unaffected by the worker count: each run builds a private platform (or
// fabric of platforms) from its RunConfig.
func Sweep(runs []scenario.Run, workers int) []Result {
	return Map(DefaultWorkers(workers), len(runs), func(i int) Result {
		rep, det, err := Execute(runs[i].Cfg)
		return Result{Run: runs[i], Report: rep, Cells: det, Err: err}
	})
}
