package harness

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	runtimemetrics "runtime/metrics"
	"time"

	"repro/internal/core"
	"repro/internal/perfrec"
	"repro/internal/scenario"
	"repro/internal/trajstore"
)

// This file is the measurement half of the perf-trajectory subsystem: it
// executes scenario runs under full instrumentation (wall clock, heap-
// allocation deltas via runtime.ReadMemStats, peak live heap via a
// runtime/metrics sampler, the deterministic sim-side outcomes) and emits
// perfrec records. cmd/liflbench and the root BenchmarkScenario both build
// on it, so every measurement channel reports identical quantities.
//
// Instrumented runs are executed serially on purpose: the process-global
// allocation counters cannot attribute concurrent runs, and wall timings
// of co-scheduled simulations measure the scheduler, not the code.

// DefaultRepeats is the best-of-N repeat count when neither the caller nor
// the scenario's BenchMeta specifies one.
const DefaultRepeats = 3

// MeasureOptions tunes instrumented measurement.
type MeasureOptions struct {
	// Repeats overrides every scenario's best-of-N count when > 0.
	Repeats int
}

// heapSampler polls the live-heap gauge while a run executes and keeps
// the maximum, the final value, and a least-squares fit of the whole
// trajectory — the RSS-over-time channels. The fit accumulates running
// sums (no sample slice), so the sampler's own memory is O(1) no matter
// how long the run lasts.
type heapSampler struct {
	stop    chan struct{}
	done    chan heapStats
	samples []runtimemetrics.Sample
	tick    *time.Ticker
	start0  time.Time
}

// heapStats is what one instrumented run's heap trajectory folds down to.
type heapStats struct {
	peak  uint64
	final uint64
	// slopeBPS is the least-squares linear slope of live-heap-vs-time in
	// bytes/second; zero when fewer than two samples landed.
	slopeBPS float64
}

const heapSampleEvery = 2 * time.Millisecond

// newHeapSampler allocates the sampler's resources and warms the
// runtime/metrics internals WITHOUT starting to sample — setup allocations
// must land before the caller's ReadMemStats baseline, while sampling must
// begin only after the caller's runtime.GC() (or the first sample records
// the previous run's uncollected garbage as this run's peak).
func newHeapSampler() *heapSampler {
	s := &heapSampler{
		stop:    make(chan struct{}),
		done:    make(chan heapStats),
		samples: []runtimemetrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}},
		tick:    time.NewTicker(heapSampleEvery),
	}
	runtimemetrics.Read(s.samples) // warm-up: first Read may allocate internally
	return s
}

func (s *heapSampler) start() {
	s.start0 = time.Now()
	go func() {
		defer s.tick.Stop()
		var st heapStats
		// Running sums of the least-squares fit over (t seconds, v bytes).
		var n, sumT, sumV, sumTT, sumTV float64
		for {
			runtimemetrics.Read(s.samples)
			v := s.samples[0].Value.Uint64()
			if v > st.peak {
				st.peak = v
			}
			st.final = v
			t := time.Since(s.start0).Seconds()
			fv := float64(v)
			n++
			sumT += t
			sumV += fv
			sumTT += t * t
			sumTV += t * fv
			select {
			case <-s.stop:
				if d := n*sumTT - sumT*sumT; n >= 2 && d > 0 {
					st.slopeBPS = (n*sumTV - sumT*sumV) / d
				}
				s.done <- st
				return
			case <-s.tick.C:
			}
		}
	}()
}

// Stats stops the sampler and returns the folded heap trajectory.
func (s *heapSampler) Stats() heapStats {
	close(s.stop)
	return <-s.done
}

// measureOnce runs one RunConfig under instrumentation. The returned
// record carries only the measured channels; identity fields are the
// caller's.
func measureOnce(cfg core.RunConfig) (perfrec.Run, error) {
	// Ordering matters twice over: sampler resources are allocated before
	// the MemStats baseline (so setup cost doesn't pollute the run's alloc
	// delta), sampling starts after runtime.GC() (so the first sample
	// doesn't record an earlier run's uncollected garbage as this run's
	// peak). The goroutine spawn itself still costs a handful of allocs,
	// which is why Mallocs is near- rather than bit-deterministic.
	sampler := newHeapSampler()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sampler.start()
	t0 := time.Now()
	rep, _, err := Execute(cfg)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	heap := sampler.Stats()
	if err != nil {
		return perfrec.Run{}, err
	}
	rec := perfrec.Run{
		// The resolved pool bound, so a trajectory diff can never mistake
		// "we turned on 8 workers" for "the serial path got 8x faster"
		// (perfrec.Compare gates real-clock metrics only across matching
		// worker counts).
		Workers:          cfg.Defaulted().Workers,
		WallNS:           int64(wall),
		SimNS:            int64(rep.Elapsed),
		Rounds:           rep.RoundsRun,
		Reached:          rep.Reached,
		Mallocs:          after.Mallocs - before.Mallocs,
		AllocBytes:       after.TotalAlloc - before.TotalAlloc,
		PeakHeapBytes:    heap.peak,
		FinalHeapBytes:   heap.final,
		HeapSlopeBPS:     heap.slopeBPS,
		RoundWallTotalNS: int64(rep.RoundWallTotal),
		RoundWallMaxNS:   int64(rep.RoundWallMax),
	}
	for _, m := range rep.Milestones {
		rec.Milestones = append(rec.Milestones, perfrec.Milestone{
			Accuracy: m.Target,
			Round:    m.At.Round,
			SimNS:    int64(m.At.Time),
			CPUNS:    int64(m.At.CPUTime),
		})
	}
	return rec, nil
}

// MeasureRun executes one expanded scenario run `repeats` times and
// returns the best-of-N record: real-clock channels take the minimum
// across repeats (the least-perturbed observation), simulated channels are
// deterministic and checked to be identical across repeats. Runs marked
// for trajectory capture stream each repeat into a temp-file trajstore
// sink, and the files must come back byte-identical — the determinism
// contract, enforced on every instrumented measurement.
func MeasureRun(run scenario.Run, repeats int) (perfrec.Run, error) {
	if repeats < 1 {
		repeats = 1
	}
	var best perfrec.Run
	var firstTraj []byte
	for i := 0; i < repeats; i++ {
		cfg := run.Cfg
		var sink *trajstore.Sink
		if run.Trajectory {
			f, err := os.CreateTemp("", "lifl-traj-*.traj")
			if err != nil {
				return perfrec.Run{}, fmt.Errorf("harness: trajectory temp file: %w", err)
			}
			f.Close()
			defer os.Remove(f.Name())
			sink, err = trajstore.NewSink(f.Name(), cfg, trajstore.Options{})
			if err != nil {
				return perfrec.Run{}, fmt.Errorf("harness: trajectory sink: %w", err)
			}
			cfg.Trajectory = sink
		}
		rec, err := measureOnce(cfg)
		if sink != nil {
			if cerr := sink.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			return perfrec.Run{}, fmt.Errorf("harness: measuring %s/%s: %w", run.Scenario, run.Label, err)
		}
		if sink != nil {
			data, err := os.ReadFile(sink.Path())
			if err != nil {
				return perfrec.Run{}, fmt.Errorf("harness: reading trajectory: %w", err)
			}
			if i == 0 {
				firstTraj = data
			} else if !bytes.Equal(data, firstTraj) {
				return perfrec.Run{}, fmt.Errorf("harness: %s/%s trajectory not byte-identical across repeats (%d vs %d bytes)",
					run.Scenario, run.Label, len(data), len(firstTraj))
			}
		}
		if i == 0 {
			best = rec
			continue
		}
		if rec.SimNS != best.SimNS || rec.Rounds != best.Rounds || rec.Reached != best.Reached {
			return perfrec.Run{}, fmt.Errorf("harness: %s/%s not deterministic across repeats (sim %d vs %d, rounds %d vs %d)",
				run.Scenario, run.Label, rec.SimNS, best.SimNS, rec.Rounds, best.Rounds)
		}
		if rec.WallNS < best.WallNS {
			best.WallNS = rec.WallNS
			best.RoundWallTotalNS = rec.RoundWallTotalNS
			best.RoundWallMaxNS = rec.RoundWallMaxNS
		}
		if rec.Mallocs < best.Mallocs {
			best.Mallocs = rec.Mallocs
		}
		if rec.AllocBytes < best.AllocBytes {
			best.AllocBytes = rec.AllocBytes
		}
		if rec.PeakHeapBytes < best.PeakHeapBytes {
			best.PeakHeapBytes = rec.PeakHeapBytes
		}
		if rec.FinalHeapBytes < best.FinalHeapBytes {
			best.FinalHeapBytes = rec.FinalHeapBytes
		}
		if rec.HeapSlopeBPS < best.HeapSlopeBPS {
			best.HeapSlopeBPS = rec.HeapSlopeBPS
		}
	}
	best.Scenario = run.Scenario
	// An axis-free scenario labels its single run with the scenario name;
	// drop the redundant label so record keys stay clean.
	if run.Label != run.Scenario {
		best.Label = run.Label
	}
	best.Repeats = repeats
	return best, nil
}

// MeasureScenario expands the scenario and measures every run serially,
// best-of-N per run. N comes from opt.Repeats, else the scenario's
// BenchMeta, else DefaultRepeats. Each record is tagged with the
// scenario's bench scale class.
func MeasureScenario(sc scenario.Scenario, opt MeasureOptions) ([]perfrec.Run, error) {
	repeats := opt.Repeats
	if repeats <= 0 {
		repeats = sc.Bench.Repeats
	}
	if repeats <= 0 {
		repeats = DefaultRepeats
	}
	runs := sc.Expand()
	out := make([]perfrec.Run, 0, len(runs))
	for _, run := range runs {
		rec, err := MeasureRun(run, repeats)
		if err != nil {
			return nil, err
		}
		rec.Class = sc.Bench.ClassOrDefault()
		out = append(out, rec)
	}
	return out, nil
}
