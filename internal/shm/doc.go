// Package shm implements LIFL's per-node shared-memory object store (§4.1).
//
// The store holds immutable model-update objects addressed by 16-byte random
// keys. Immutability guarantees safe lock-free sharing between co-located
// aggregators (the paper's design: "LIFL only allows immutable (read-only)
// objects ... eliminating the need for locks"); zero-copy hand-off between
// aggregators is achieved by passing only the object key over the eBPF
// SKMSG channel while the payload stays in place. The LIFL agent owns
// allocation, recycling and destruction of buffers.
//
// Layer (DESIGN.md): component model under internal/systems — the
// per-node shared-memory object store (§4.1) behind in-place queuing.
package shm
