package shm

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/tensor"
)

func newStore(cap uint64) *Store {
	eng := sim.NewEngine()
	return NewStore(eng, sim.NewRNG(1), "n0", cap)
}

func TestPutGetRelease(t *testing.T) {
	s := newStore(0)
	u := tensor.NewVirtual(4, 1000)
	k, err := s.Put(u, 3, "client-1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 32 { // 16 random bytes hex-encoded
		t.Fatalf("key %q not 16 bytes hex", k)
	}
	o, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if o.Weight != 3 || o.Producer != "client-1" || o.Round != 7 {
		t.Fatalf("object metadata: %+v", o)
	}
	if o.Size != u.VirtualBytes() {
		t.Fatalf("size = %d", o.Size)
	}
	if s.Used() != o.Size || s.Len() != 1 {
		t.Fatalf("usage: %d bytes, %d objects", s.Used(), s.Len())
	}
	if err := s.Release(k); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 || s.Len() != 0 {
		t.Fatal("release did not recycle")
	}
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after release: %v", err)
	}
}

func TestRefCounting(t *testing.T) {
	s := newStore(0)
	k, _ := s.Put(tensor.New(2), 1, "p", 0)
	if err := s.AddRef(k); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Refs(k); n != 2 {
		t.Fatalf("refs = %d", n)
	}
	if err := s.Release(k); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); err != nil {
		t.Fatal("object must survive while a ref remains")
	}
	if err := s.Release(k); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("release of recycled object: %v", err)
	}
}

func TestAddRefMissing(t *testing.T) {
	s := newStore(0)
	if err := s.AddRef("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Refs("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	u := tensor.NewVirtual(1, 100) // 400 B
	s := newStore(500)
	if _, err := s.Put(u.Clone(), 1, "p", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(u.Clone(), 1, "p", 0); !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("expected out-of-space, got %v", err)
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	s := newStore(0)
	u := tensor.NewVirtual(1, 100)
	k1, _ := s.Put(u.Clone(), 1, "p", 0)
	k2, _ := s.Put(u.Clone(), 1, "p", 0)
	_ = s.Release(k1)
	_ = s.Release(k2)
	if s.Peak() != 800 {
		t.Fatalf("peak = %d, want 800", s.Peak())
	}
	st := s.Stats()
	if st.Allocs != 2 || st.Recycles != 2 || st.Destroyed != 2 || st.Live != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestKeysAreUnique(t *testing.T) {
	s := newStore(0)
	seen := make(map[Key]bool)
	for i := 0; i < 2000; i++ {
		k, err := s.Put(tensor.New(1), 1, "p", 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("duplicate key %s", k)
		}
		seen[k] = true
	}
}

// Property: any interleaving of puts and releases keeps Used equal to the
// sum of live object sizes.
func TestUsageInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		s := newStore(0)
		var live []Key
		var liveBytes uint64
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				k := live[0]
				live = live[1:]
				o, err := s.Get(k)
				if err != nil {
					return false
				}
				liveBytes -= o.Size
				if err := s.Release(k); err != nil {
					return false
				}
				continue
			}
			n := int(op%7) + 1
			u := tensor.NewVirtual(1, n*10)
			k, err := s.Put(u, 1, "p", 0)
			if err != nil {
				return false
			}
			live = append(live, k)
			liveBytes += u.VirtualBytes()
		}
		return s.Used() == liveBytes && s.Len() == len(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
