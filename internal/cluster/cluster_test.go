package cluster

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/sim"
)

func newTestNode() (*sim.Engine, *Node) {
	eng := sim.NewEngine()
	n := NewNode(eng, sim.NewRNG(1), "n0", costmodel.Default())
	return eng, n
}

func TestExecAttributesCPUByComponent(t *testing.T) {
	eng, n := newTestNode()
	n.Exec("gateway", 2*sim.Second, nil)
	n.Exec("aggregator", 3*sim.Second, nil)
	n.Exec("aggregator", 1*sim.Second, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if n.CPUTime("gateway") != 2*sim.Second {
		t.Fatalf("gateway = %v", n.CPUTime("gateway"))
	}
	if n.CPUTime("aggregator") != 4*sim.Second {
		t.Fatalf("aggregator = %v", n.CPUTime("aggregator"))
	}
	if n.TotalCPUTime() != 6*sim.Second {
		t.Fatalf("total = %v", n.TotalCPUTime())
	}
	bd := n.CPUBreakdown()
	if len(bd) != 2 || bd[0].Component != "aggregator" || bd[1].Component != "gateway" {
		t.Fatalf("breakdown = %v", bd)
	}
}

func TestExecAttributedSeparatesDemandFromCharge(t *testing.T) {
	eng, n := newTestNode()
	var end sim.Duration
	n.ExecAttributed("x", 2*sim.Second, 5*sim.Second, func(_, e sim.Duration) { end = e })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if end != 2*sim.Second {
		t.Fatalf("occupancy = %v, want demand 2s", end)
	}
	if n.CPUTime("x") != 5*sim.Second {
		t.Fatalf("charge = %v, want 5s", n.CPUTime("x"))
	}
}

func TestKernelStackContention(t *testing.T) {
	eng, n := newTestNode()
	// Saturate the kernel stack (parallelism 8) with 16 equal traversals:
	// completion must take two batches.
	var last sim.Duration
	for i := 0; i < 16; i++ {
		n.KernelExec("net", sim.Second, sim.Second, func(_, end sim.Duration) {
			if end > last {
				last = end
			}
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if last != 2*sim.Second {
		t.Fatalf("16 traversals over 8-wide stack finished at %v, want 2s", last)
	}
}

func TestReservationAccounting(t *testing.T) {
	eng, n := newTestNode()
	n.Reserve("sf", 2.5)
	eng.At(10*sim.Second, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := n.ReservedCPUTime(); got != 25*sim.Second {
		t.Fatalf("reserved = %v, want 25s (2.5 cores × 10s)", got)
	}
	n.Unreserve("sf")
	eng.At(20*sim.Second, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := n.ReservedCPUTime(); got != 25*sim.Second {
		t.Fatalf("reservation accrued after release: %v", got)
	}
}

func TestDuplicateReservationPanics(t *testing.T) {
	_, n := newTestNode()
	n.Reserve("sf", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Reserve("sf", 1)
}

func TestMemoryAccounting(t *testing.T) {
	_, n := newTestNode()
	n.AllocMem(1 << 30)
	n.AllocMem(2 << 30)
	if n.MemUsed() != 3<<30 {
		t.Fatalf("used = %d", n.MemUsed())
	}
	n.FreeMem(1 << 30)
	if n.MemUsed() != 2<<30 || n.MemPeak() != 3<<30 {
		t.Fatalf("used=%d peak=%d", n.MemUsed(), n.MemPeak())
	}
}

func TestMemoryOverflowPanics(t *testing.T) {
	_, n := newTestNode()
	defer func() {
		if recover() == nil {
			t.Fatal("expected OOM panic")
		}
	}()
	n.AllocMem(200 << 30) // beyond 192 GB
}

func TestFreeTooMuchPanics(t *testing.T) {
	_, n := newTestNode()
	n.AllocMem(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.FreeMem(11)
}

func TestClusterConstruction(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, sim.NewRNG(1), costmodel.Default(), 5)
	if len(c.Nodes) != 5 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if c.Node("node-3") == nil || c.Node("node-9") != nil {
		t.Fatal("lookup by name broken")
	}
	c.Nodes[0].Exec("a", sim.Second, nil)
	c.Nodes[1].Exec("b", 2*sim.Second, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if c.TotalCPUTime() != 3*sim.Second {
		t.Fatalf("cluster total = %v", c.TotalCPUTime())
	}
	c.Nodes[2].Reserve("r", 1)
	eng.At(eng.Now()+4*sim.Second, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if c.TotalReservedCPUTime() != 4*sim.Second {
		t.Fatalf("cluster reserved = %v", c.TotalReservedCPUTime())
	}
}

func TestExecFreeDoesNotOccupyCores(t *testing.T) {
	eng, n := newTestNode()
	n.ExecFree("ebpf", 100*sim.Hour) // attribution only
	var start sim.Duration
	n.CPU.Submit(sim.Second, func(s, _ sim.Duration) { start = s })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatal("ExecFree blocked the core pool")
	}
	if n.CPUTime("ebpf") != 100*sim.Hour {
		t.Fatal("ExecFree lost attribution")
	}
}
