package cluster

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/ebpf"
	"repro/internal/shm"
	"repro/internal/sim"
)

// Node is one worker machine.
type Node struct {
	Name string
	Eng  *sim.Engine
	P    costmodel.Params

	// CPU is the shared core pool; all userspace work contends here.
	CPU *sim.Station
	// KernelStack serializes kernel TCP/IP traversals with limited
	// parallelism — the network-processing contention of Fig. 4. LIFL's
	// shared-memory path bypasses it entirely.
	KernelStack *sim.Station
	// Egress and Ingress are the NIC directions (10 Gb/s each).
	Egress  *sim.Queue
	Ingress *sim.Queue
	// Shm is the node's shared-memory object store.
	Shm *shm.Store
	// SockMap and Metrics are the node's in-kernel eBPF state.
	SockMap *ebpf.SockMap
	Metrics *ebpf.Map[uint64, ebpf.MetricSample]
	// SKMSG is the per-node SKMSG program (the eBPF sidecar core).
	SKMSG *ebpf.SKMSGProgram

	// Memory accounting (resident bytes excluding shm, which tracks itself).
	memUsed uint64
	memPeak uint64

	// cpuByComponent attributes consumed CPU time to named components.
	cpuByComponent map[string]sim.Duration

	// Always-on reservations (serverful accounting): component → cores and
	// reservation start. Released reservations accumulate into reservedTotal.
	reservations  map[string]reservation
	reservedTotal sim.Duration
}

type reservation struct {
	cores float64
	since sim.Duration
}

// NewNode builds a node with the hardware from p.
func NewNode(eng *sim.Engine, rng *sim.RNG, name string, p costmodel.Params) *Node {
	n := &Node{
		Name:           name,
		Eng:            eng,
		P:              p,
		CPU:            sim.NewStation(eng, name+"/cpu", p.CoresPerNode),
		KernelStack:    sim.NewStation(eng, name+"/kstack", max(1, p.KernelStackParallelism)),
		Egress:         sim.NewQueue(eng, name+"/tx", p.NICBandwidth, p.NICLatency),
		Ingress:        sim.NewQueue(eng, name+"/rx", p.NICBandwidth, p.NICLatency),
		Shm:            shm.NewStore(eng, rng, name, p.MemPerNode),
		SockMap:        ebpf.NewSockMap(name + "/sockmap"),
		Metrics:        ebpf.NewMap[uint64, ebpf.MetricSample](name + "/metrics"),
		cpuByComponent: make(map[string]sim.Duration),
		reservations:   make(map[string]reservation),
	}
	n.SKMSG = ebpf.NewSKMSGProgram(eng, n.SockMap, n.Metrics)
	return n
}

// Exec submits CPU-bound work attributed to component. done (optional) fires
// at completion with (start, end).
func (n *Node) Exec(component string, demand sim.Duration, done func(start, end sim.Duration)) {
	n.cpuByComponent[component] += demand
	n.CPU.Submit(demand, done)
}

// ExecAttributed submits work occupying a core for demand while attributing
// cpu CPU time to component. The data plane uses this where a path's latency
// and its charged CPU cycles are calibrated separately (Fig. 7(a) vs 7(b)).
func (n *Node) ExecAttributed(component string, demand, cpu sim.Duration, done func(start, end sim.Duration)) {
	n.cpuByComponent[component] += cpu
	n.CPU.Submit(demand, done)
}

// KernelExec submits a kernel TCP/IP traversal: it occupies the node's
// kernel-stack station for demand and attributes cpu to component.
func (n *Node) KernelExec(component string, demand, cpu sim.Duration, done func(start, end sim.Duration)) {
	n.cpuByComponent[component] += cpu
	n.KernelStack.Submit(demand, done)
}

// ExecFree accounts CPU time to component without occupying the core pool —
// used for strictly in-kernel work (eBPF program runs) whose microsecond
// scale would otherwise distort FIFO admission of big jobs.
func (n *Node) ExecFree(component string, demand sim.Duration) {
	n.cpuByComponent[component] += demand
}

// CPUTime returns total CPU time consumed by component so far.
func (n *Node) CPUTime(component string) sim.Duration { return n.cpuByComponent[component] }

// TotalCPUTime returns CPU time consumed across all components.
func (n *Node) TotalCPUTime() sim.Duration {
	var t sim.Duration
	for _, d := range n.cpuByComponent {
		t += d
	}
	return t
}

// CPUBreakdown returns per-component CPU time, sorted by component name.
func (n *Node) CPUBreakdown() []ComponentCPU {
	out := make([]ComponentCPU, 0, len(n.cpuByComponent))
	for c, d := range n.cpuByComponent {
		out = append(out, ComponentCPU{Component: c, Time: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// ComponentCPU is one row of a CPU breakdown.
type ComponentCPU struct {
	Component string
	Time      sim.Duration
}

// Reserve starts an always-on reservation of cores (possibly fractional,
// e.g. CPU shares) for component — serverful accounting: the resources are
// charged whether used or not.
func (n *Node) Reserve(component string, cores float64) {
	if _, dup := n.reservations[component]; dup {
		panic(fmt.Sprintf("cluster: duplicate reservation %q on %s", component, n.Name))
	}
	n.reservations[component] = reservation{cores: cores, since: n.Eng.Now()}
}

// Unreserve ends a reservation, folding its core-time into the total.
func (n *Node) Unreserve(component string) {
	r, ok := n.reservations[component]
	if !ok {
		return
	}
	n.reservedTotal += sim.Duration(float64(n.Eng.Now()-r.since) * r.cores)
	delete(n.reservations, component)
}

// ReservedCPUTime returns accumulated always-on core-time, including open
// reservations up to the current instant.
func (n *Node) ReservedCPUTime() sim.Duration {
	t := n.reservedTotal
	for _, r := range n.reservations {
		t += sim.Duration(float64(n.Eng.Now()-r.since) * r.cores)
	}
	return t
}

// AllocMem charges resident memory (sidecars, aggregator runtimes, broker
// buffers). Panics on overflow beyond the node's physical memory: the
// simulation treats that as a modelling bug, like the scheduler would OOM.
func (n *Node) AllocMem(bytes uint64) {
	n.memUsed += bytes
	if n.memUsed+n.Shm.Used() > n.P.MemPerNode {
		panic(fmt.Sprintf("cluster: node %s out of memory (%d resident + %d shm)", n.Name, n.memUsed, n.Shm.Used()))
	}
	if n.memUsed > n.memPeak {
		n.memPeak = n.memUsed
	}
}

// FreeMem releases resident memory.
func (n *Node) FreeMem(bytes uint64) {
	if bytes > n.memUsed {
		panic(fmt.Sprintf("cluster: node %s freeing %d > used %d", n.Name, bytes, n.memUsed))
	}
	n.memUsed -= bytes
}

// MemUsed returns resident bytes excluding shm.
func (n *Node) MemUsed() uint64 { return n.memUsed }

// MemPeak returns the high-water mark of resident bytes.
func (n *Node) MemPeak() uint64 { return n.memPeak }

// Cluster is the set of worker nodes plus the simulation context they share.
type Cluster struct {
	Eng   *sim.Engine
	RNG   *sim.RNG
	P     costmodel.Params
	Nodes []*Node

	byName map[string]*Node
}

// New builds a cluster of n worker nodes named node-0..node-(n-1).
func New(eng *sim.Engine, rng *sim.RNG, p costmodel.Params, n int) *Cluster {
	c := &Cluster{Eng: eng, RNG: rng, P: p, byName: make(map[string]*Node, n)}
	for i := 0; i < n; i++ {
		node := NewNode(eng, rng, fmt.Sprintf("node-%d", i), p)
		c.Nodes = append(c.Nodes, node)
		c.byName[node.Name] = node
	}
	return c
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node { return c.byName[name] }

// TotalCPUTime sums usage-based CPU time over all nodes.
func (c *Cluster) TotalCPUTime() sim.Duration {
	var t sim.Duration
	for _, n := range c.Nodes {
		t += n.TotalCPUTime()
	}
	return t
}

// TotalReservedCPUTime sums always-on reservations over all nodes.
func (c *Cluster) TotalReservedCPUTime() sim.Duration {
	var t sim.Duration
	for _, n := range c.Nodes {
		t += n.ReservedCPUTime()
	}
	return t
}
