// Package cluster models the worker nodes of the testbed (§6: 64-core Intel
// Cascade Lake @ 2.8 GHz, 192 GB memory, 10 Gb NIC). Each node owns a
// multi-core CPU station (contention!), full-duplex NIC queues, a
// shared-memory object store, a per-node sockmap + metrics map, and memory
// accounting. CPU time is attributed per component so experiments can report
// the paper's cost breakdowns (gateway vs aggregator vs sidecar vs broker).
//
// Layer (DESIGN.md): component model under internal/systems — worker
// nodes (cores, memory, NICs, CPU accounting) every other component runs on.
package cluster
