// Package placement implements LIFL's locality-aware load balancing (§5.1):
// assigning incoming model updates (equivalently, selected clients) to
// worker nodes. LIFL treats the task as bin-packing — concentrate updates
// onto as few nodes as possible without exceeding each node's residual
// service capacity, so that shared-memory processing covers the maximum
// share of traffic and inter-node transfers are minimized. BestFit is
// LIFL's policy; WorstFit reproduces Knative's "Least Connection" spreading
// and FirstFit is the locality-agnostic low-complexity strawman.
package placement

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// NodeState is the balancer's view of one worker node at decision time.
type NodeState struct {
	Name string
	// MC is the maximum service capacity MC_i: model updates the node can
	// aggregate simultaneously (computed offline, Appendix E).
	MC float64
	// Arrival is k_{i,t}, the current arrival rate of updates routed to the
	// node (updates/sec).
	Arrival float64
	// ExecTime is E_{i,t}, the average time to aggregate one update.
	ExecTime sim.Duration
	// Assigned counts updates placed on the node by the current decision
	// (occupancy added on top of the measured load).
	Assigned int
}

// Residual returns RC_{i,t} = MC_i − k_{i,t}·E_{i,t} − Assigned: how many
// more updates the node can absorb.
func (n *NodeState) Residual() float64 {
	return n.MC - n.Arrival*n.ExecTime.Seconds() - float64(n.Assigned)
}

// QueueEstimate returns Q_{i,t} = k_{i,t}·E_{i,t}, the coarse-grained queue
// length estimate of §5.1.
func (n *NodeState) QueueEstimate() float64 {
	return n.Arrival * n.ExecTime.Seconds()
}

// ErrCapacity is returned when the cluster cannot absorb the demand.
var ErrCapacity = errors.New("placement: demand exceeds cluster residual capacity")

// Policy assigns count identical updates to nodes, returning per-node counts
// keyed by node name. Implementations must not mutate the input slice order.
type Policy interface {
	Name() string
	// Place distributes count updates; it may exceed residual capacity only
	// when the whole cluster is saturated (overflow spreads round-robin,
	// matching the paper's "service capacity of all nodes fully consumed"
	// regime for 100 updates in Fig. 8).
	Place(count int, nodes []*NodeState) (map[string]int, error)
}

// BestFit is LIFL's locality-aware policy: each update goes to the feasible
// node with the *smallest* positive residual capacity, concentrating load
// onto the fewest nodes (§5.1).
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "bestfit" }

// Place implements Policy.
func (BestFit) Place(count int, nodes []*NodeState) (map[string]int, error) {
	return packGeneric(count, nodes, func(cands []*NodeState) *NodeState {
		var best *NodeState
		for _, n := range cands {
			if n.Residual() < 1 {
				continue
			}
			if best == nil || n.Residual() < best.Residual() ||
				(n.Residual() == best.Residual() && n.Name < best.Name) {
				best = n
			}
		}
		return best
	})
}

// WorstFit spreads each update to the node with the *largest* residual
// capacity — the behaviour of Knative's "Least Connection" load balancing
// used by the SL-H baseline (§6.1).
type WorstFit struct{}

// Name implements Policy.
func (WorstFit) Name() string { return "worstfit" }

// Place implements Policy.
func (WorstFit) Place(count int, nodes []*NodeState) (map[string]int, error) {
	return packGeneric(count, nodes, func(cands []*NodeState) *NodeState {
		var best *NodeState
		for _, n := range cands {
			if n.Residual() < 1 {
				continue
			}
			if best == nil || n.Residual() > best.Residual() ||
				(n.Residual() == best.Residual() && n.Name < best.Name) {
				best = n
			}
		}
		return best
	})
}

// FirstFit takes the first node (by input order) with room — minimal search
// complexity, no locality awareness.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "firstfit" }

// Place implements Policy.
func (FirstFit) Place(count int, nodes []*NodeState) (map[string]int, error) {
	return packGeneric(count, nodes, func(cands []*NodeState) *NodeState {
		for _, n := range cands {
			if n.Residual() >= 1 {
				return n
			}
		}
		return nil
	})
}

// packGeneric runs the per-update selection loop shared by the policies,
// falling back to round-robin overflow when every node is saturated.
func packGeneric(count int, nodes []*NodeState, pick func([]*NodeState) *NodeState) (map[string]int, error) {
	if count < 0 {
		return nil, fmt.Errorf("placement: negative count %d", count)
	}
	if len(nodes) == 0 {
		return nil, errors.New("placement: no nodes")
	}
	out := make(map[string]int)
	overflow := 0
	for i := 0; i < count; i++ {
		n := pick(nodes)
		if n == nil {
			// Saturated: spread the overflow evenly so no node melts down.
			n = nodes[overflow%len(nodes)]
			overflow++
		}
		n.Assigned++
		out[n.Name]++
	}
	return out, nil
}

// NodesUsed counts nodes that received at least one update.
func NodesUsed(assign map[string]int) int {
	n := 0
	for _, c := range assign {
		if c > 0 {
			n++
		}
	}
	return n
}

// SortedAssignments renders the assignment deterministically for logs.
func SortedAssignments(assign map[string]int) []string {
	names := make([]string, 0, len(assign))
	for n := range assign {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, fmt.Sprintf("%s:%d", n, assign[n]))
	}
	return out
}

// MaxCapacityOffline reproduces Appendix E: increase the offered arrival
// rate k until the measured execution time inflates significantly (the node
// saturates), then MC = k′·E′. probe(k) must return the average execution
// time observed at arrival rate k.
func MaxCapacityOffline(probe func(k float64) sim.Duration, kStart, kStep, inflate float64) float64 {
	if kStart <= 0 || kStep <= 0 {
		panic("placement: non-positive probe parameters")
	}
	base := probe(kStart)
	k := kStart
	for i := 0; i < 10_000; i++ {
		next := k + kStep
		e := probe(next)
		if float64(e) > inflate*float64(base) {
			return next * e.Seconds()
		}
		k = next
	}
	return k * probe(k).Seconds()
}
