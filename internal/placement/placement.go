package placement

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// NodeState is the balancer's view of one worker node at decision time.
type NodeState struct {
	Name string
	// MC is the maximum service capacity MC_i: model updates the node can
	// aggregate simultaneously (computed offline, Appendix E).
	MC float64
	// Arrival is k_{i,t}, the current arrival rate of updates routed to the
	// node (updates/sec).
	Arrival float64
	// ExecTime is E_{i,t}, the average time to aggregate one update.
	ExecTime sim.Duration
	// Assigned counts updates placed on the node by the current decision
	// (occupancy added on top of the measured load).
	Assigned int
}

// Residual returns RC_{i,t} = MC_i − k_{i,t}·E_{i,t} − Assigned: how many
// more updates the node can absorb.
func (n *NodeState) Residual() float64 {
	return n.MC - n.Arrival*n.ExecTime.Seconds() - float64(n.Assigned)
}

// QueueEstimate returns Q_{i,t} = k_{i,t}·E_{i,t}, the coarse-grained queue
// length estimate of §5.1.
func (n *NodeState) QueueEstimate() float64 {
	return n.Arrival * n.ExecTime.Seconds()
}

// ErrCapacity is returned when the cluster cannot absorb the demand.
var ErrCapacity = errors.New("placement: demand exceeds cluster residual capacity")

// Assignment is the allocation-lean placement result: Assignment[i] is the
// number of updates placed on the i-th node of the input slice. It avoids
// the map construction and string hashing of the name-keyed API on hot
// control-plane paths (systems expand it directly into per-job node
// indices).
type Assignment []int

// Total returns the number of updates placed.
func (a Assignment) Total() int {
	t := 0
	for _, c := range a {
		t += c
	}
	return t
}

// NodesUsed counts nodes that received at least one update.
func (a Assignment) NodesUsed() int {
	n := 0
	for _, c := range a {
		if c > 0 {
			n++
		}
	}
	return n
}

// ToMap renders the assignment in the name-keyed form of Policy.Place.
// Nodes with zero updates are omitted, matching the scan-based original.
func (a Assignment) ToMap(nodes []*NodeState) map[string]int {
	out := make(map[string]int, len(a))
	for i, c := range a {
		if c > 0 {
			out[nodes[i].Name] += c
		}
	}
	return out
}

// Policy assigns count identical updates to nodes, returning per-node counts
// keyed by node name. Implementations must not mutate the input slice order.
type Policy interface {
	Name() string
	// Place distributes count updates; it may exceed residual capacity only
	// when the whole cluster is saturated (overflow spreads round-robin,
	// matching the paper's "service capacity of all nodes fully consumed"
	// regime for 100 updates in Fig. 8).
	Place(count int, nodes []*NodeState) (map[string]int, error)
	// PlaceIndexed is Place returning the slice-based Assignment (node
	// index → count) without building a map. Both forms bump each node's
	// Assigned by the counts they return.
	PlaceIndexed(count int, nodes []*NodeState) (Assignment, error)
}

// BestFit is LIFL's locality-aware policy: each update goes to the feasible
// node with the *smallest* positive residual capacity, concentrating load
// onto the fewest nodes (§5.1).
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "bestfit" }

// Place implements Policy.
func (p BestFit) Place(count int, nodes []*NodeState) (map[string]int, error) {
	return placeMap(p, count, nodes)
}

// PlaceIndexed implements Policy. A node chosen by BestFit keeps the
// smallest residual until it drops below 1 (its residual only shrinks while
// every other candidate's stands still), so the per-update greedy scan
// reduces to a single ascending sweep over the candidates, each absorbing
// floor(residual) updates.
func (BestFit) PlaceIndexed(count int, nodes []*NodeState) (Assignment, error) {
	out, remaining, err := prep(count, nodes)
	if err != nil || remaining == 0 {
		return out, err
	}
	cands := feasible(nodes)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].res() != cands[j].res() {
			return cands[i].res() < cands[j].res()
		}
		return cands[i].name < cands[j].name
	})
	for i := range cands {
		if remaining == 0 {
			break
		}
		c := &cands[i]
		k := takeWhileFeasible(c.base, c.assigned, remaining)
		commit(out, nodes, c.idx, k)
		remaining -= k
	}
	spreadOverflow(out, nodes, remaining)
	return out, nil
}

// WorstFit spreads each update to the node with the *largest* residual
// capacity — the behaviour of Knative's "Least Connection" load balancing
// used by the SL-H baseline (§6.1).
type WorstFit struct{}

// Name implements Policy.
func (WorstFit) Name() string { return "worstfit" }

// Place implements Policy.
func (p WorstFit) Place(count int, nodes []*NodeState) (map[string]int, error) {
	return placeMap(p, count, nodes)
}

// PlaceIndexed implements Policy. Candidates live in a max-heap keyed by
// (residual, name); the top absorbs updates until its residual crosses the
// runner-up's (the point at which the per-update scan would switch nodes),
// then re-enters the heap if still feasible.
func (WorstFit) PlaceIndexed(count int, nodes []*NodeState) (Assignment, error) {
	out, remaining, err := prep(count, nodes)
	if err != nil || remaining == 0 {
		return out, err
	}
	h := maxHeap(feasible(nodes))
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for remaining > 0 && len(h) > 0 {
		c := h.pop()
		var k int
		if len(h) == 0 {
			k = takeWhileFeasible(c.base, c.assigned, remaining)
		} else {
			k = takeWhileWinning(c, h[0].res(), h[0].name, remaining)
		}
		commit(out, nodes, c.idx, k)
		remaining -= k
		c.assigned += k
		if c.res() >= 1 {
			h.push(c)
		}
	}
	spreadOverflow(out, nodes, remaining)
	return out, nil
}

// FirstFit takes the first node (by input order) with room — minimal search
// complexity, no locality awareness.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "firstfit" }

// Place implements Policy.
func (p FirstFit) Place(count int, nodes []*NodeState) (map[string]int, error) {
	return placeMap(p, count, nodes)
}

// PlaceIndexed implements Policy: one sweep in input order, each node
// absorbing updates until its residual drops below 1.
func (FirstFit) PlaceIndexed(count int, nodes []*NodeState) (Assignment, error) {
	out, remaining, err := prep(count, nodes)
	if err != nil || remaining == 0 {
		return out, err
	}
	for i, n := range nodes {
		if remaining == 0 {
			break
		}
		base := n.MC - n.QueueEstimate()
		k := takeWhileFeasible(base, n.Assigned, remaining)
		commit(out, nodes, i, k)
		remaining -= k
	}
	spreadOverflow(out, nodes, remaining)
	return out, nil
}

// placeMap adapts PlaceIndexed to the name-keyed result of Policy.Place.
func placeMap(p Policy, count int, nodes []*NodeState) (map[string]int, error) {
	a, err := p.PlaceIndexed(count, nodes)
	if err != nil {
		return nil, err
	}
	return a.ToMap(nodes), nil
}

// prep validates the inputs and allocates the result.
func prep(count int, nodes []*NodeState) (Assignment, int, error) {
	if count < 0 {
		return nil, 0, fmt.Errorf("placement: negative count %d", count)
	}
	if len(nodes) == 0 {
		return nil, 0, errors.New("placement: no nodes")
	}
	return make(Assignment, len(nodes)), count, nil
}

// cand is one feasible node in the candidate set. base is the load-derived
// part of the residual (MC − QueueEstimate, the same sub-expression
// NodeState.Residual evaluates first), computed exactly once per decision;
// the live residual base − float64(assigned) is then bit-identical to
// NodeState.Residual, so batch boundaries land exactly where the per-update
// scan's comparisons do.
type cand struct {
	idx      int
	base     float64
	assigned int
	name     string
}

func (c *cand) res() float64 { return c.base - float64(c.assigned) }

// feasible collects the candidates with residual ≥ 1. Infeasible nodes can
// never re-enter: residuals only decrease during a decision.
func feasible(nodes []*NodeState) []cand {
	cands := make([]cand, 0, len(nodes))
	for i, n := range nodes {
		c := cand{idx: i, base: n.MC - n.QueueEstimate(), assigned: n.Assigned, name: n.Name}
		if c.res() >= 1 {
			cands = append(cands, c)
		}
	}
	return cands
}

// commit records k updates onto node idx.
func commit(out Assignment, nodes []*NodeState, idx, k int) {
	out[idx] += k
	nodes[idx].Assigned += k
}

// takeWhileFeasible returns how many consecutive updates (≤ remaining) a
// node with the given base residual and running assignment absorbs before
// its residual drops below 1 — floor(residual) in exact arithmetic. The
// estimate is corrected against the exact floating-point predicate of the
// per-update scan (residual = base − float64(assigned) compared to 1) so
// batching never shifts an assignment across a rounding boundary.
func takeWhileFeasible(base float64, assigned, remaining int) int {
	if remaining == 0 || base-float64(assigned) < 1 {
		return 0
	}
	k := int(base - float64(assigned))
	if k < 1 {
		k = 1
	}
	if k > remaining {
		k = remaining
	}
	for k > 1 && base-float64(assigned+k-1) < 1 {
		k--
	}
	for k < remaining && base-float64(assigned+k) >= 1 {
		k++
	}
	return k
}

// takeWhileWinning returns how many consecutive updates (≤ remaining) the
// heap top c absorbs while it still beats the runner-up (residual r2, name
// name2) under WorstFit's (largest residual, smallest name) order and stays
// feasible. As with takeWhileFeasible, the closed-form estimate is snapped
// to the exact per-update comparison semantics.
func takeWhileWinning(c cand, r2 float64, name2 string, remaining int) int {
	wins := func(j int) bool {
		rj := c.base - float64(c.assigned+j-1)
		if rj < 1 {
			return false
		}
		return rj > r2 || (rj == r2 && c.name < name2)
	}
	if remaining == 0 || !wins(1) {
		return 0
	}
	k := int(c.res()-r2) + 1
	if k < 1 {
		k = 1
	}
	if k > remaining {
		k = remaining
	}
	for k > 1 && !wins(k) {
		k--
	}
	for k < remaining && wins(k+1) {
		k++
	}
	return k
}

// maxHeap is a binary max-heap of candidates ordered by (residual desc,
// name asc) — exactly the preference order of WorstFit's per-update pick.
type maxHeap []cand

func (h maxHeap) higher(i, j int) bool {
	ri, rj := h[i].res(), h[j].res()
	if ri != rj {
		return ri > rj
	}
	return h[i].name < h[j].name
}

func (h maxHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.higher(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h maxHeap) siftDown(i int) {
	n := len(h)
	for {
		max := i
		if l := 2*i + 1; l < n && h.higher(l, max) {
			max = l
		}
		if r := 2*i + 2; r < n && h.higher(r, max) {
			max = r
		}
		if max == i {
			return
		}
		h[i], h[max] = h[max], h[i]
		i = max
	}
}

func (h *maxHeap) push(c cand) {
	*h = append(*h, c)
	h.siftUp(len(*h) - 1)
}

func (h *maxHeap) pop() cand {
	old := *h
	n := len(old) - 1
	top := old[0]
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0)
	}
	return top
}

// spreadOverflow distributes updates that no feasible node could absorb:
// round-robin over all nodes in input order, starting at index 0, matching
// the saturated regime of the per-update scan (Fig. 8's 100-update cells).
func spreadOverflow(out Assignment, nodes []*NodeState, remaining int) {
	if remaining <= 0 {
		return
	}
	q, r := remaining/len(nodes), remaining%len(nodes)
	for i := range nodes {
		k := q
		if i < r {
			k++
		}
		if k > 0 {
			commit(out, nodes, i, k)
		}
	}
}

// NodesUsed counts nodes that received at least one update.
func NodesUsed(assign map[string]int) int {
	n := 0
	for _, c := range assign {
		if c > 0 {
			n++
		}
	}
	return n
}

// SortedAssignments renders the assignment deterministically for logs.
func SortedAssignments(assign map[string]int) []string {
	names := make([]string, 0, len(assign))
	for n := range assign {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, fmt.Sprintf("%s:%d", n, assign[n]))
	}
	return out
}

// MaxCapacityOffline reproduces Appendix E: increase the offered arrival
// rate k until the measured execution time inflates significantly (the node
// saturates), then MC = k′·E′. probe(k) must return the average execution
// time observed at arrival rate k.
func MaxCapacityOffline(probe func(k float64) sim.Duration, kStart, kStep, inflate float64) float64 {
	if kStart <= 0 || kStep <= 0 {
		panic("placement: non-positive probe parameters")
	}
	base := probe(kStart)
	k := kStart
	for i := 0; i < 10_000; i++ {
		next := k + kStep
		e := probe(next)
		if float64(e) > inflate*float64(base) {
			return next * e.Seconds()
		}
		k = next
	}
	return k * probe(k).Seconds()
}

// ---- Level one of the geo fabric's two-level placement ----
//
// The engine above places *updates onto nodes* inside one cluster (§5.1).
// The cell fabric adds a level above it: *clients onto cells*, decided by
// locality. CellRouter is that first level — a deterministic, seed-stable
// map client → home cell, weighted by region share. The draw for client i
// hashes (seed, i), so it is independent of enumeration order and stable
// as the population grows: adding clients never re-homes existing ones.

// CellRouter routes clients to their home cell by region weight.
type CellRouter struct {
	cum  []float64 // cumulative normalized weights, cum[len-1] == 1
	seed uint64
}

// NewCellRouter builds a router over cells weighted by `weights` (nil or
// empty with cells > 0 means uniform). Weights must be non-negative with a
// positive sum.
func NewCellRouter(cells int, weights []float64, seed int64) (*CellRouter, error) {
	if cells < 1 {
		return nil, fmt.Errorf("placement: router needs >= 1 cell (got %d)", cells)
	}
	if len(weights) == 0 {
		weights = make([]float64, cells)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != cells {
		return nil, fmt.Errorf("placement: %d region weights for %d cells", len(weights), cells)
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("placement: negative region weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("placement: region weights sum to %v (need > 0)", total)
	}
	r := &CellRouter{cum: make([]float64, cells), seed: uint64(seed)}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		r.cum[i] = acc
	}
	r.cum[cells-1] = 1 // absorb rounding so the last region owns [cum[n-2], 1)
	return r, nil
}

// Cells returns the number of cells the router spreads over.
func (r *CellRouter) Cells() int { return len(r.cum) }

// Home returns client i's home cell: a uniform hash of (seed, i) mapped
// through the cumulative region weights. O(log cells) per call.
func (r *CellRouter) Home(client int) int {
	u := hash01(r.seed ^ (uint64(client)+1)*0x9E3779B97F4A7C15)
	return sort.SearchFloat64s(r.cum, u)
}

// Counts partitions clients 0..n-1 across the cells and returns the
// per-cell population sizes.
func (r *CellRouter) Counts(n int) []int {
	out := make([]int, len(r.cum))
	for i := 0; i < n; i++ {
		out[r.Home(i)]++
	}
	return out
}

// hash01 maps a 64-bit key to a uniform float64 in [0, 1) via SplitMix64
// finalization — deterministic across platforms, no RNG state to carry.
func hash01(x uint64) float64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
