package placement

import (
	"fmt"
	"sort"
)

// ---- Elastic level one: client → cell routing under live join/drain ----
//
// CellRouter's hash is stable as the population grows, but its cell set is
// frozen. ElasticRouter extends the same draw to a mutable cell set with a
// removal-stable contract, the two halves of which the reconfiguration
// property harness (internal/planprop) pins across randomized plans:
//
//   - Adds never re-home existing clients. Joining a cell (or reweighing
//     one) seals the current routing epoch: clients that already arrived
//     keep resolving through the weight snapshot of their arrival epoch,
//     so only future arrivals see the new topology.
//   - Drains re-home exactly the drained cell's clients. A drain records
//     the survivors' weight snapshot; a client whose draw lands on a
//     drained cell re-draws — salted by the drained cell's id, so the
//     re-draw is deterministic and independent per client — over that
//     snapshot, chaining if the new home later drained too. Clients homed
//     elsewhere never consult the record and never move.
//
// With no topology changes ElasticRouter is bit-identical to CellRouter:
// one epoch, the same cumulative weights, the same SplitMix64 draw.

// ElasticRouter routes clients to their home cell by region weight across
// a cell set that grows and shrinks mid-run. Cell ids are never reused:
// joins always allocate the next free index.
type ElasticRouter struct {
	seed    uint64
	weight  []float64 // current routing weight per cell id (live cells)
	live    []bool
	drains  []drainRecord // per cell id; zero record = never drained
	epochs  []epoch
	arrived int // clients 0..arrived-1 have arrived (Extend grows this)
}

// epoch is a sealed routing snapshot: clients arriving while it was
// current (first <= client < next epoch's first) draw through it forever.
type epoch struct {
	first int
	cum   []float64
	ids   []int
}

// drainRecord is the survivor snapshot taken when a cell drained; clients
// homed on the drained cell re-draw over it.
type drainRecord struct {
	cum []float64
	ids []int
}

// NewElasticRouter builds a router over the initial cells, matching
// NewCellRouter's validation and — until the first reconfiguration — its
// routing bit for bit.
func NewElasticRouter(cells int, weights []float64, seed int64) (*ElasticRouter, error) {
	base, err := NewCellRouter(cells, weights, seed)
	if err != nil {
		return nil, err
	}
	r := &ElasticRouter{seed: uint64(seed)}
	if len(weights) == 0 {
		weights = make([]float64, cells)
		for i := range weights {
			weights[i] = 1
		}
	}
	r.weight = append([]float64(nil), weights...)
	r.live = make([]bool, cells)
	r.drains = make([]drainRecord, cells)
	ids := make([]int, cells)
	for i := range r.live {
		r.live[i] = true
		ids[i] = i
	}
	// Adopt the CellRouter's exact cumulative table (including its rounding
	// absorption) as epoch zero, so the static case cannot drift.
	r.epochs = []epoch{{first: 0, cum: base.cum, ids: ids}}
	return r, nil
}

// Cells returns the number of cell ids ever allocated (live and drained).
func (r *ElasticRouter) Cells() int { return len(r.weight) }

// LiveCells returns the live cell count.
func (r *ElasticRouter) LiveCells() int {
	n := 0
	for _, l := range r.live {
		if l {
			n++
		}
	}
	return n
}

// Arrived returns the arrived population (clients 0..Arrived()-1).
func (r *ElasticRouter) Arrived() int { return r.arrived }

// Extend marks n new clients as arrived: they (and only they) route
// through the current topology. Existing clients are untouched.
func (r *ElasticRouter) Extend(n int) {
	if n > 0 {
		r.arrived += n
	}
}

// snapshot builds the cumulative weight table over the live cells.
func (r *ElasticRouter) snapshot() ([]float64, []int) {
	var ids []int
	total := 0.0
	for id, l := range r.live {
		if l {
			ids = append(ids, id)
			total += r.weight[id]
		}
	}
	cum := make([]float64, len(ids))
	acc := 0.0
	for i, id := range ids {
		acc += r.weight[id] / total
		cum[i] = acc
	}
	if len(cum) > 0 {
		cum[len(cum)-1] = 1
	}
	return cum, ids
}

// seal starts a new routing epoch at the current arrived population. If no
// client arrived during the current epoch it is rebuilt in place.
func (r *ElasticRouter) seal() {
	cum, ids := r.snapshot()
	last := &r.epochs[len(r.epochs)-1]
	if last.first == r.arrived {
		last.cum, last.ids = cum, ids
		return
	}
	r.epochs = append(r.epochs, epoch{first: r.arrived, cum: cum, ids: ids})
}

// Join adds a fresh cell with the given routing weight and returns its id.
// Only future arrivals route onto it; no existing client re-homes.
func (r *ElasticRouter) Join(weight float64) (int, error) {
	if weight <= 0 {
		return 0, fmt.Errorf("placement: join weight %v must be > 0", weight)
	}
	id := len(r.weight)
	r.weight = append(r.weight, weight)
	r.live = append(r.live, true)
	r.drains = append(r.drains, drainRecord{})
	r.seal()
	return id, nil
}

// SetWeight changes a live cell's routing weight. Only future arrivals see
// the new balance; no existing client re-homes.
func (r *ElasticRouter) SetWeight(cell int, weight float64) error {
	if cell < 0 || cell >= len(r.weight) || !r.live[cell] {
		return fmt.Errorf("placement: weight change on unknown or drained cell %d", cell)
	}
	if weight <= 0 {
		return fmt.Errorf("placement: weight %v must be > 0", weight)
	}
	r.weight[cell] = weight
	r.seal()
	return nil
}

// Drain retires a live cell. Exactly the clients homed on it re-home —
// each by an independent deterministic re-draw over the survivors' weight
// snapshot taken now — and every other client keeps its cell.
func (r *ElasticRouter) Drain(cell int) error {
	if cell < 0 || cell >= len(r.weight) || !r.live[cell] {
		return fmt.Errorf("placement: drain of unknown or drained cell %d", cell)
	}
	if r.LiveCells() == 1 {
		return fmt.Errorf("placement: draining cell %d would leave no live cells", cell)
	}
	r.live[cell] = false
	cum, ids := r.snapshot()
	r.drains[cell] = drainRecord{cum: cum, ids: ids}
	r.seal()
	return nil
}

// Home returns the client's current home cell. The initial draw is the
// client's arrival-epoch snapshot; drained homes chain through their
// survivor snapshots with per-(client, drained-cell) salted re-draws.
// Clients >= Arrived() are treated as future arrivals: they route through
// the current topology.
func (r *ElasticRouter) Home(client int) int {
	e := len(r.epochs) - 1
	if client < r.arrived {
		e = sort.Search(len(r.epochs), func(i int) bool { return r.epochs[i].first > client }) - 1
	}
	ep := r.epochs[e]
	u := hash01(r.seed ^ (uint64(client)+1)*0x9E3779B97F4A7C15)
	cell := ep.ids[sort.SearchFloat64s(ep.cum, u)]
	for !r.live[cell] {
		d := r.drains[cell]
		// Salt the re-draw by the drained cell so each hop of a drain chain
		// is an independent uniform draw, still a pure function of
		// (seed, client, drained cell).
		u = hash01(r.seed ^ (uint64(client)+1)*0x9E3779B97F4A7C15 ^ (uint64(cell)+1)*0xD1B54A32D192ED03)
		cell = d.ids[sort.SearchFloat64s(d.cum, u)]
	}
	return cell
}

// Counts partitions the arrived clients across the cells and returns the
// per-cell population sizes, indexed by cell id (drained cells count 0).
func (r *ElasticRouter) Counts() []int {
	out := make([]int, len(r.weight))
	for i := 0; i < r.arrived; i++ {
		out[r.Home(i)]++
	}
	return out
}
