package placement

import (
	"testing"
)

// With no topology changes the elastic router must be the CellRouter, bit
// for bit: same cumulative table, same draw, same homes.
func TestElasticStaticMatchesCellRouter(t *testing.T) {
	for _, tc := range []struct {
		cells   int
		weights []float64
		seed    int64
	}{
		{1, nil, 7},
		{4, []float64{0.4, 0.3, 0.2, 0.1}, 7},
		{8, []float64{0.30, 0.20, 0.15, 0.10, 0.10, 0.05, 0.05, 0.05}, 1},
		{3, nil, 42},
	} {
		base, err := NewCellRouter(tc.cells, tc.weights, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		er, err := NewElasticRouter(tc.cells, tc.weights, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		er.Extend(5000)
		for i := 0; i < 5000; i++ {
			if base.Home(i) != er.Home(i) {
				t.Fatalf("cells=%d seed=%d: client %d homes diverge: cell %d vs elastic %d",
					tc.cells, tc.seed, i, base.Home(i), er.Home(i))
			}
		}
	}
}

// Joins and weight changes seal the epoch: no arrived client may re-home.
func TestElasticJoinAndWeightNeverRehome(t *testing.T) {
	r, err := NewElasticRouter(3, []float64{0.5, 0.3, 0.2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	r.Extend(n)
	before := make([]int, n)
	for i := range before {
		before[i] = r.Home(i)
	}
	if _, err := r.Join(0.4); err != nil {
		t.Fatal(err)
	}
	if err := r.SetWeight(0, 2.0); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if got := r.Home(i); got != before[i] {
			t.Fatalf("client %d re-homed %d -> %d after join/weight", i, before[i], got)
		}
	}
	// Future arrivals do land on the joined cell.
	r.Extend(n)
	joined := 0
	for i := n; i < 2*n; i++ {
		if r.Home(i) == 3 {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("no new arrival routed to the joined cell")
	}
}

// A drain re-homes exactly the drained cell's clients, onto live cells.
func TestElasticDrainMovesExactlyDrainedClients(t *testing.T) {
	r, err := NewElasticRouter(4, []float64{0.4, 0.3, 0.2, 0.1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	r.Extend(n)
	before := make([]int, n)
	for i := range before {
		before[i] = r.Home(i)
	}
	if err := r.Drain(1); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after := r.Home(i)
		if before[i] != 1 {
			if after != before[i] {
				t.Fatalf("client %d homed on cell %d moved to %d on an unrelated drain", i, before[i], after)
			}
			continue
		}
		moved++
		if after == 1 {
			t.Fatalf("client %d still homed on drained cell", i)
		}
	}
	if moved == 0 {
		t.Fatal("drained cell had no clients; test proves nothing")
	}
	counts := r.Counts()
	if counts[1] != 0 {
		t.Fatalf("drained cell still counts %d clients", counts[1])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("drain lost clients: %d != %d", total, n)
	}
}

// Drain chains resolve: drain a cell, then drain a survivor that absorbed
// some of its clients; every client must still land on a live cell.
func TestElasticDrainChain(t *testing.T) {
	r, err := NewElasticRouter(4, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	r.Extend(n)
	if err := r.Drain(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h := r.Home(i)
		if h != 1 && h != 3 {
			t.Fatalf("client %d homed on drained cell %d", i, h)
		}
	}
	if err := r.Drain(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(3); err == nil {
		t.Fatal("drain of the last live cell accepted")
	}
}

// Validation: joins/weights/drains reject what they cannot route.
func TestElasticValidation(t *testing.T) {
	r, err := NewElasticRouter(2, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Join(0); err == nil {
		t.Fatal("zero-weight join accepted")
	}
	if err := r.SetWeight(5, 1); err == nil {
		t.Fatal("weight change on unknown cell accepted")
	}
	if err := r.SetWeight(0, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := r.Drain(7); err == nil {
		t.Fatal("drain of unknown cell accepted")
	}
	if err := r.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(0); err == nil {
		t.Fatal("double drain accepted")
	}
	if err := r.SetWeight(0, 1); err == nil {
		t.Fatal("weight change on drained cell accepted")
	}
}
