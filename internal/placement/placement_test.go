package placement

import (
	"errors"
	"fmt"
	"maps"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func nodes5(mc float64) []*NodeState {
	out := make([]*NodeState, 5)
	for i := range out {
		out[i] = &NodeState{
			Name:     string(rune('a' + i)),
			MC:       mc,
			ExecTime: 250 * sim.Millisecond,
		}
	}
	return out
}

func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func TestBestFitPacksMinimumNodes(t *testing.T) {
	// The Fig. 8(d) result: 20/60/100 updates onto MC=20 nodes use 1/3/5.
	for _, c := range []struct{ load, want int }{{20, 1}, {60, 3}, {100, 5}} {
		assign, err := BestFit{}.Place(c.load, nodes5(20))
		if err != nil {
			t.Fatal(err)
		}
		if got := NodesUsed(assign); got != c.want {
			t.Fatalf("load %d: used %d nodes, want %d (%v)", c.load, got, c.want, assign)
		}
		if sum(assign) != c.load {
			t.Fatalf("load %d: placed %d", c.load, sum(assign))
		}
	}
}

func TestWorstFitSpreadsLikeLeastConnection(t *testing.T) {
	assign, err := WorstFit{}.Place(20, nodes5(20))
	if err != nil {
		t.Fatal(err)
	}
	if NodesUsed(assign) != 5 {
		t.Fatalf("WorstFit used %d nodes, want all 5", NodesUsed(assign))
	}
	for n, c := range assign {
		if c != 4 {
			t.Fatalf("uneven spread: %s=%d", n, c)
		}
	}
}

func TestFirstFitFillsInOrder(t *testing.T) {
	ns := nodes5(20)
	assign, err := FirstFit{}.Place(25, ns)
	if err != nil {
		t.Fatal(err)
	}
	if assign["a"] != 20 || assign["b"] != 5 {
		t.Fatalf("FirstFit order broken: %v", assign)
	}
}

func TestResidualAccountsForLoadAndAssignments(t *testing.T) {
	n := &NodeState{Name: "x", MC: 20, Arrival: 8, ExecTime: sim.Second}
	if got := n.Residual(); got != 12 {
		t.Fatalf("residual = %v", got)
	}
	n.Assigned = 5
	if got := n.Residual(); got != 7 {
		t.Fatalf("residual with assignments = %v", got)
	}
	if got := n.QueueEstimate(); got != 8 {
		t.Fatalf("queue estimate = %v", got)
	}
}

func TestLoadedNodesAreAvoided(t *testing.T) {
	ns := nodes5(20)
	ns[0].Arrival = 20 // saturated: residual 15... 20·0.25s = 5 used, 15 left
	ns[0].ExecTime = sim.Second
	// Node a has residual 0; BestFit must skip it.
	assign, err := BestFit{}.Place(10, ns)
	if err != nil {
		t.Fatal(err)
	}
	if assign["a"] != 0 {
		t.Fatalf("placed on saturated node: %v", assign)
	}
}

func TestOverflowSpreadsRoundRobin(t *testing.T) {
	assign, err := BestFit{}.Place(120, nodes5(20)) // 20 over capacity
	if err != nil {
		t.Fatal(err)
	}
	if sum(assign) != 120 {
		t.Fatalf("lost updates: %d", sum(assign))
	}
	for n, c := range assign {
		if c < 20 || c > 28 {
			t.Fatalf("overflow unbalanced: %s=%d", n, c)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := (BestFit{}).Place(-1, nodes5(20)); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := (BestFit{}).Place(1, nil); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	a, _ := BestFit{}.Place(7, nodes5(20))
	b, _ := BestFit{}.Place(7, nodes5(20))
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestSortedAssignments(t *testing.T) {
	got := SortedAssignments(map[string]int{"b": 2, "a": 1})
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("sorted = %v", got)
	}
}

// Property: every policy conserves the demand and respects capacity unless
// the whole cluster is saturated.
func TestPoliciesConserveDemand(t *testing.T) {
	f := func(loadRaw uint8, mcRaw uint8) bool {
		load := int(loadRaw % 120)
		mc := float64(mcRaw%30) + 1
		for _, pol := range []Policy{BestFit{}, WorstFit{}, FirstFit{}} {
			assign, err := pol.Place(load, nodes5(mc))
			if err != nil {
				return false
			}
			if sum(assign) != load {
				return false
			}
			// Under capacity, no node may exceed MC.
			if float64(load) <= 5*mc {
				for _, c := range assign {
					if float64(c) > mc {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BestFit never uses more nodes than WorstFit.
func TestBestFitUsesNoMoreNodesThanWorstFit(t *testing.T) {
	f := func(loadRaw uint8) bool {
		load := int(loadRaw%100) + 1
		bf, err1 := BestFit{}.Place(load, nodes5(20))
		wf, err2 := WorstFit{}.Place(load, nodes5(20))
		if err1 != nil || err2 != nil {
			return false
		}
		return NodesUsed(bf) <= NodesUsed(wf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCapacityOffline(t *testing.T) {
	// Appendix E: execution time inflates sharply once k exceeds the knee.
	knee := 40.0
	probe := func(k float64) sim.Duration {
		if k <= knee {
			return 500 * sim.Millisecond
		}
		return 5 * sim.Second
	}
	mc := MaxCapacityOffline(probe, 5, 5, 2.0)
	// MC = k′·E′ at the saturation point: 45 × 5 s would be the naive
	// reading; the estimate must at least detect the knee region.
	if mc < 20 {
		t.Fatalf("MC estimate %v missed the knee", mc)
	}
}

// ---- Golden equivalence vs. the seed's per-update greedy scan ----
//
// seedPack re-implements the original packGeneric loop: one pick per update,
// each pick re-scanning all nodes. The indexed batch engine must reproduce
// its assignments exactly, including float-tie and overflow behaviour.

func seedPack(count int, nodes []*NodeState, pick func([]*NodeState) *NodeState) (map[string]int, error) {
	if count < 0 {
		return nil, fmt.Errorf("placement: negative count %d", count)
	}
	if len(nodes) == 0 {
		return nil, errors.New("placement: no nodes")
	}
	out := make(map[string]int)
	overflow := 0
	for i := 0; i < count; i++ {
		n := pick(nodes)
		if n == nil {
			n = nodes[overflow%len(nodes)]
			overflow++
		}
		n.Assigned++
		out[n.Name]++
	}
	return out, nil
}

func seedBestFit(count int, nodes []*NodeState) (map[string]int, error) {
	return seedPack(count, nodes, func(cands []*NodeState) *NodeState {
		var best *NodeState
		for _, n := range cands {
			if n.Residual() < 1 {
				continue
			}
			if best == nil || n.Residual() < best.Residual() ||
				(n.Residual() == best.Residual() && n.Name < best.Name) {
				best = n
			}
		}
		return best
	})
}

func seedWorstFit(count int, nodes []*NodeState) (map[string]int, error) {
	return seedPack(count, nodes, func(cands []*NodeState) *NodeState {
		var best *NodeState
		for _, n := range cands {
			if n.Residual() < 1 {
				continue
			}
			if best == nil || n.Residual() > best.Residual() ||
				(n.Residual() == best.Residual() && n.Name < best.Name) {
				best = n
			}
		}
		return best
	})
}

func seedFirstFit(count int, nodes []*NodeState) (map[string]int, error) {
	return seedPack(count, nodes, func(cands []*NodeState) *NodeState {
		for _, n := range cands {
			if n.Residual() >= 1 {
				return n
			}
		}
		return nil
	})
}

// randomNodes builds clusters that exercise ties (integer and repeated MCs),
// fractional residuals, pre-assigned occupancy, and saturation.
func randomNodes(rng *sim.RNG, n int) []*NodeState {
	out := make([]*NodeState, n)
	for i := range out {
		mc := float64(rng.Intn(30))
		switch rng.Intn(3) {
		case 0: // exact integer capacities → heavy tie territory
		case 1:
			mc += 0.5
		default:
			mc += rng.Float64() * 4
		}
		out[i] = &NodeState{
			Name:     fmt.Sprintf("n%02d", i),
			MC:       mc,
			Arrival:  float64(rng.Intn(4)),
			ExecTime: sim.Duration(rng.Intn(900)) * sim.Millisecond,
			Assigned: rng.Intn(3),
		}
	}
	return out
}

func cloneNodes(nodes []*NodeState) []*NodeState {
	out := make([]*NodeState, len(nodes))
	for i, n := range nodes {
		c := *n
		out[i] = &c
	}
	return out
}

func TestPlaceMatchesSeedScanGolden(t *testing.T) {
	policies := []struct {
		pol  Policy
		seed func(int, []*NodeState) (map[string]int, error)
	}{
		{BestFit{}, seedBestFit},
		{WorstFit{}, seedWorstFit},
		{FirstFit{}, seedFirstFit},
	}
	rng := sim.NewRNG(7)
	for trial := 0; trial < 400; trial++ {
		nodes := randomNodes(rng, 1+rng.Intn(12))
		count := rng.Intn(200)
		for _, p := range policies {
			a, b := cloneNodes(nodes), cloneNodes(nodes)
			want, err1 := p.seed(count, a)
			got, err2 := p.pol.Place(count, b)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s trial %d: error mismatch %v vs %v", p.pol.Name(), trial, err1, err2)
			}
			if !maps.Equal(want, got) {
				t.Fatalf("%s trial %d (count=%d):\nseed %v\n got %v\nnodes %+v",
					p.pol.Name(), trial, count, want, got, nodes)
			}
			// The mutation of NodeState.Assigned must match too.
			for i := range a {
				if a[i].Assigned != b[i].Assigned {
					t.Fatalf("%s trial %d: node %d Assigned %d vs %d",
						p.pol.Name(), trial, i, a[i].Assigned, b[i].Assigned)
				}
			}
		}
	}
}

// TestPlaceIndexedAgreesWithMapForm pins the two result forms together and
// checks Assignment's helpers.
func TestPlaceIndexedAgreesWithMapForm(t *testing.T) {
	rng := sim.NewRNG(11)
	for trial := 0; trial < 100; trial++ {
		nodes := randomNodes(rng, 1+rng.Intn(8))
		count := rng.Intn(120)
		for _, pol := range []Policy{BestFit{}, WorstFit{}, FirstFit{}} {
			a, b := cloneNodes(nodes), cloneNodes(nodes)
			idx, err := pol.PlaceIndexed(count, a)
			if err != nil {
				t.Fatal(err)
			}
			m, err := pol.Place(count, b)
			if err != nil {
				t.Fatal(err)
			}
			if !maps.Equal(idx.ToMap(a), m) {
				t.Fatalf("%s: indexed %v vs map %v", pol.Name(), idx, m)
			}
			if idx.Total() != count {
				t.Fatalf("%s: placed %d of %d", pol.Name(), idx.Total(), count)
			}
			if idx.NodesUsed() != NodesUsed(m) {
				t.Fatalf("%s: NodesUsed %d vs %d", pol.Name(), idx.NodesUsed(), NodesUsed(m))
			}
		}
	}
}

// TestPlaceLargeScaleExact spot-checks the batched BestFit at the §6.1 and
// roadmap scales against arithmetic (not the O(count·n) scan, which would
// dominate test time at 1M): uniform nodes fill to ⌊residual⌋ each.
func TestPlaceLargeScaleExact(t *testing.T) {
	for _, clients := range []int{10_000, 1_000_000} {
		nodes := make([]*NodeState, 100)
		for i := range nodes {
			nodes[i] = &NodeState{
				Name:     fmt.Sprintf("node-%03d", i),
				MC:       float64(clients)/50 + 20,
				ExecTime: 500 * sim.Millisecond,
			}
		}
		a, err := BestFit{}.PlaceIndexed(clients, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if a.Total() != clients {
			t.Fatalf("placed %d of %d", a.Total(), clients)
		}
		per := clients/50 + 20 // integer MC ⇒ each node absorbs exactly MC
		full := clients / per
		for i := 0; i < full; i++ {
			if a[i] != per {
				t.Fatalf("node %d got %d, want %d", i, a[i], per)
			}
		}
		if rem := clients - full*per; rem > 0 && a[full] != rem {
			t.Fatalf("tail node got %d, want %d", a[full], clients-full*per)
		}
	}
}

func TestPlaceIndexedErrors(t *testing.T) {
	for _, pol := range []Policy{BestFit{}, WorstFit{}, FirstFit{}} {
		if _, err := pol.Place(-1, nodes5(20)); err == nil {
			t.Errorf("%s: negative count accepted", pol.Name())
		}
		if _, err := pol.Place(3, nil); err == nil {
			t.Errorf("%s: empty cluster accepted", pol.Name())
		}
		if _, err := pol.PlaceIndexed(-1, nodes5(20)); err == nil {
			t.Errorf("%s: indexed negative count accepted", pol.Name())
		}
	}
}
