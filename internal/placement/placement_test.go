package placement

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func nodes5(mc float64) []*NodeState {
	out := make([]*NodeState, 5)
	for i := range out {
		out[i] = &NodeState{
			Name:     string(rune('a' + i)),
			MC:       mc,
			ExecTime: 250 * sim.Millisecond,
		}
	}
	return out
}

func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func TestBestFitPacksMinimumNodes(t *testing.T) {
	// The Fig. 8(d) result: 20/60/100 updates onto MC=20 nodes use 1/3/5.
	for _, c := range []struct{ load, want int }{{20, 1}, {60, 3}, {100, 5}} {
		assign, err := BestFit{}.Place(c.load, nodes5(20))
		if err != nil {
			t.Fatal(err)
		}
		if got := NodesUsed(assign); got != c.want {
			t.Fatalf("load %d: used %d nodes, want %d (%v)", c.load, got, c.want, assign)
		}
		if sum(assign) != c.load {
			t.Fatalf("load %d: placed %d", c.load, sum(assign))
		}
	}
}

func TestWorstFitSpreadsLikeLeastConnection(t *testing.T) {
	assign, err := WorstFit{}.Place(20, nodes5(20))
	if err != nil {
		t.Fatal(err)
	}
	if NodesUsed(assign) != 5 {
		t.Fatalf("WorstFit used %d nodes, want all 5", NodesUsed(assign))
	}
	for n, c := range assign {
		if c != 4 {
			t.Fatalf("uneven spread: %s=%d", n, c)
		}
	}
}

func TestFirstFitFillsInOrder(t *testing.T) {
	ns := nodes5(20)
	assign, err := FirstFit{}.Place(25, ns)
	if err != nil {
		t.Fatal(err)
	}
	if assign["a"] != 20 || assign["b"] != 5 {
		t.Fatalf("FirstFit order broken: %v", assign)
	}
}

func TestResidualAccountsForLoadAndAssignments(t *testing.T) {
	n := &NodeState{Name: "x", MC: 20, Arrival: 8, ExecTime: sim.Second}
	if got := n.Residual(); got != 12 {
		t.Fatalf("residual = %v", got)
	}
	n.Assigned = 5
	if got := n.Residual(); got != 7 {
		t.Fatalf("residual with assignments = %v", got)
	}
	if got := n.QueueEstimate(); got != 8 {
		t.Fatalf("queue estimate = %v", got)
	}
}

func TestLoadedNodesAreAvoided(t *testing.T) {
	ns := nodes5(20)
	ns[0].Arrival = 20 // saturated: residual 15... 20·0.25s = 5 used, 15 left
	ns[0].ExecTime = sim.Second
	// Node a has residual 0; BestFit must skip it.
	assign, err := BestFit{}.Place(10, ns)
	if err != nil {
		t.Fatal(err)
	}
	if assign["a"] != 0 {
		t.Fatalf("placed on saturated node: %v", assign)
	}
}

func TestOverflowSpreadsRoundRobin(t *testing.T) {
	assign, err := BestFit{}.Place(120, nodes5(20)) // 20 over capacity
	if err != nil {
		t.Fatal(err)
	}
	if sum(assign) != 120 {
		t.Fatalf("lost updates: %d", sum(assign))
	}
	for n, c := range assign {
		if c < 20 || c > 28 {
			t.Fatalf("overflow unbalanced: %s=%d", n, c)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := (BestFit{}).Place(-1, nodes5(20)); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := (BestFit{}).Place(1, nil); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	a, _ := BestFit{}.Place(7, nodes5(20))
	b, _ := BestFit{}.Place(7, nodes5(20))
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestSortedAssignments(t *testing.T) {
	got := SortedAssignments(map[string]int{"b": 2, "a": 1})
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("sorted = %v", got)
	}
}

// Property: every policy conserves the demand and respects capacity unless
// the whole cluster is saturated.
func TestPoliciesConserveDemand(t *testing.T) {
	f := func(loadRaw uint8, mcRaw uint8) bool {
		load := int(loadRaw % 120)
		mc := float64(mcRaw%30) + 1
		for _, pol := range []Policy{BestFit{}, WorstFit{}, FirstFit{}} {
			assign, err := pol.Place(load, nodes5(mc))
			if err != nil {
				return false
			}
			if sum(assign) != load {
				return false
			}
			// Under capacity, no node may exceed MC.
			if float64(load) <= 5*mc {
				for _, c := range assign {
					if float64(c) > mc {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BestFit never uses more nodes than WorstFit.
func TestBestFitUsesNoMoreNodesThanWorstFit(t *testing.T) {
	f := func(loadRaw uint8) bool {
		load := int(loadRaw%100) + 1
		bf, err1 := BestFit{}.Place(load, nodes5(20))
		wf, err2 := WorstFit{}.Place(load, nodes5(20))
		if err1 != nil || err2 != nil {
			return false
		}
		return NodesUsed(bf) <= NodesUsed(wf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCapacityOffline(t *testing.T) {
	// Appendix E: execution time inflates sharply once k exceeds the knee.
	knee := 40.0
	probe := func(k float64) sim.Duration {
		if k <= knee {
			return 500 * sim.Millisecond
		}
		return 5 * sim.Second
	}
	mc := MaxCapacityOffline(probe, 5, 5, 2.0)
	// MC = k′·E′ at the saturation point: 45 × 5 s would be the naive
	// reading; the estimate must at least detect the knee region.
	if mc < 20 {
		t.Fatalf("MC estimate %v missed the knee", mc)
	}
}
