// Package placement implements LIFL's locality-aware load balancing (§5.1):
// assigning incoming model updates (equivalently, selected clients) to
// worker nodes. LIFL treats the task as bin-packing — concentrate updates
// onto as few nodes as possible without exceeding each node's residual
// service capacity, so that shared-memory processing covers the maximum
// share of traffic and inter-node transfers are minimized. BestFit is
// LIFL's policy; WorstFit reproduces Knative's "Least Connection" spreading
// and FirstFit is the locality-agnostic low-complexity strawman.
//
// The placement engine is indexed, not scanned: each decision computes every
// node's residual exactly once, orders the feasible candidates by residual
// (a sorted sweep for BestFit/FirstFit, a max-heap for WorstFit), and places
// *batches* of identical updates per candidate — a node absorbs updates
// until its residual crosses 1 (BestFit/FirstFit) or crosses the runner-up
// candidate's residual (WorstFit). Complexity is O(n log n + B log n) for n
// nodes and B batches instead of the naive O(count·n), while producing
// assignments identical to the per-update greedy scan (golden-tested); the
// §6.1 bound of placing 10,000 clients in under 17 ms holds with three
// orders of magnitude of headroom, and 1M clients place in well under 5 ms.
//
// Above the node level, CellRouter is level one of the geo fabric's
// two-level placement: a deterministic, seed-stable, region-weighted map
// client → home cell (internal/cell), under which the per-cell engines
// place updates onto nodes as before. ElasticRouter extends it for the
// elastic fabric (RunConfig.CellPlan): epoch-sealed routing where joins
// and weight changes redirect only future arrivals — an arrived client's
// home is immutable until its cell drains, at which point exactly the
// drained cell's clients re-home across the survivors (the contract
// internal/planprop property-tests across generated plans).
//
// Layer (DESIGN.md): component model under internal/systems — the
// indexed locality-aware load balancer (§5.1); see the hot-path invariants
// in DESIGN.md.
package placement
