// Package sidecar implements the two sidecar designs the paper contrasts
// (§2.3, §4.3): the conventional container-based sidecar — an always-on
// process that intercepts every message in and out of its function, burning
// CPU even when idle and holding resident memory — and LIFL's eBPF-based
// sidecar, which runs as kernel code triggered by send() events and consumes
// exactly zero resources when idle.
//
// Layer (DESIGN.md): component model under internal/systems — the
// sidecar designs contrasted in Fig. 7.
package sidecar
