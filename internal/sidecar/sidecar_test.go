package sidecar

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/ebpf"
	"repro/internal/sim"
)

func rig() (*sim.Engine, *cluster.Node) {
	eng := sim.NewEngine()
	c := cluster.New(eng, sim.NewRNG(1), costmodel.Default(), 1)
	return eng, c.Nodes[0]
}

func TestContainerInterceptCostsLatencyAndCPU(t *testing.T) {
	eng, n := rig()
	sc := NewContainer(n, "agg-1")
	var done sim.Duration
	sc.Intercept(100<<20, func() { done = eng.Now() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	wantLat, _ := n.P.SidecarHop(100 << 20)
	if done != wantLat {
		t.Fatalf("intercept latency = %v, want %v", done, wantLat)
	}
	if n.CPUTime("sidecar") == 0 {
		t.Fatal("no sidecar CPU charged")
	}
	if sc.Intercepts != 1 {
		t.Fatalf("intercepts = %d", sc.Intercepts)
	}
}

func TestContainerIdleDrainAccrues(t *testing.T) {
	eng, n := rig()
	sc := NewContainer(n, "agg-1")
	eng.After(100*sim.Second, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	sc.Finalize()
	want := sim.Duration(float64(100*sim.Second) * n.P.SidecarIdleCPUFrac)
	if got := n.CPUTime("sidecar-idle"); got != want {
		t.Fatalf("idle drain = %v, want %v", got, want)
	}
	// Finalize is idempotent at the same instant.
	sc.Finalize()
	if got := n.CPUTime("sidecar-idle"); got != want {
		t.Fatalf("double settle: %v", got)
	}
}

func TestContainerMemoryLifecycle(t *testing.T) {
	eng, n := rig()
	before := n.MemUsed()
	sc := NewContainer(n, "agg-1")
	if n.MemUsed() != before+n.P.SidecarMemBytes {
		t.Fatal("sidecar memory not charged")
	}
	sc.Stop()
	if n.MemUsed() != before {
		t.Fatal("sidecar memory not freed on stop")
	}
	sc.Stop() // idempotent
	if n.MemUsed() != before {
		t.Fatal("double stop freed twice")
	}
	_ = eng
}

func TestEBPFSidecarZeroIdleCost(t *testing.T) {
	eng, n := rig()
	e := NewEBPF(n)
	eng.After(sim.Hour, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if n.TotalCPUTime() != 0 {
		t.Fatalf("eBPF sidecar consumed %v while idle", n.TotalCPUTime())
	}
	_ = e
}

func TestEBPFSidecarPerEventCost(t *testing.T) {
	eng, n := rig()
	e := NewEBPF(n)
	n.SockMap.Register("top", func(ebpf.Message) {})
	sock, err := e.OnSend(ebpf.Message{SrcID: "leaf", DstID: "top", Size: 16}, sim.Second)
	if err != nil || sock == nil {
		t.Fatalf("OnSend: %v %v", sock, err)
	}
	want := costmodel.Cycles(n.P.EBPFMetricsCycles)
	if got := n.CPUTime("ebpf-sidecar"); got != want {
		t.Fatalf("per-event cost = %v, want %v", got, want)
	}
	// Metrics are collected and drainable.
	if got := e.Drain(); len(got) != 1 || got[0].ExecTime != sim.Second {
		t.Fatalf("drain = %v", got)
	}
	_ = eng
}

func TestEBPFSidecarUnknownDst(t *testing.T) {
	_, n := rig()
	e := NewEBPF(n)
	if _, err := e.OnSend(ebpf.Message{DstID: "ghost"}, 0); err == nil {
		t.Fatal("expected error for unknown destination")
	}
}

// The paper's comparison: for one message, the container sidecar costs
// orders of magnitude more CPU than the eBPF sidecar.
func TestContainerVsEBPFPerMessageCost(t *testing.T) {
	eng, n := rig()
	sc := NewContainer(n, "a")
	sc.Intercept(232<<20, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	container := n.CPUTime("sidecar")
	ebpfCost := costmodel.Cycles(n.P.EBPFMetricsCycles)
	if container < 1000*ebpfCost {
		t.Fatalf("container %v vs eBPF %v: expected ≫1000x gap", container, ebpfCost)
	}
}
