package sidecar

import (
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/ebpf"
	"repro/internal/sim"
)

// Container is a container-based sidecar attached to one function instance.
type Container struct {
	Node  *cluster.Node
	Owner string

	startedAt  sim.Duration
	settledAt  sim.Duration // idle CPU charged up to here
	terminated bool

	// Intercepts counts messages mediated.
	Intercepts uint64
}

// NewContainer starts a container sidecar on node for the named owner,
// charging its resident memory immediately.
func NewContainer(n *cluster.Node, owner string) *Container {
	sc := &Container{Node: n, Owner: owner, startedAt: n.Eng.Now(), settledAt: n.Eng.Now()}
	n.AllocMem(n.P.SidecarMemBytes)
	return sc
}

// Intercept mediates one payload through the sidecar: the interception and
// forwarding occupy node CPU and delay delivery. done fires when forwarded.
func (sc *Container) Intercept(size uint64, done func()) {
	sc.Intercepts++
	lat, cpu := sc.Node.P.SidecarHop(size)
	sc.Node.ExecAttributed("sidecar", lat, cpu, func(_, _ sim.Duration) {
		if done != nil {
			done()
		}
	})
}

// settleIdle charges the always-on idle CPU drain accrued since the last
// settlement: SidecarIdleCPUFrac of one core, continuously.
func (sc *Container) settleIdle() {
	now := sc.Node.Eng.Now()
	if now <= sc.settledAt {
		return
	}
	idle := sim.Duration(float64(now-sc.settledAt) * sc.Node.P.SidecarIdleCPUFrac)
	sc.Node.ExecFree("sidecar-idle", idle)
	sc.settledAt = now
}

// Stop terminates the sidecar, settling idle CPU and freeing memory.
func (sc *Container) Stop() {
	if sc.terminated {
		return
	}
	sc.settleIdle()
	sc.Node.FreeMem(sc.Node.P.SidecarMemBytes)
	sc.terminated = true
}

// Finalize settles idle CPU without terminating; experiments call this
// before reading cost counters.
func (sc *Container) Finalize() { sc.settleIdle() }

// EBPF is LIFL's event-driven sidecar: a thin wrapper over the node's SKMSG
// program. It collects metrics and redirects messages; the only CPU it ever
// consumes is per-event (EBPFMetricsCycles), charged here.
type EBPF struct {
	Node *cluster.Node
}

// NewEBPF attaches the eBPF sidecar abstraction to a node.
func NewEBPF(n *cluster.Node) *EBPF { return &EBPF{Node: n} }

// OnSend runs the SKMSG program for one send() event: records a metric
// sample and resolves the destination socket. The caller schedules delivery.
func (e *EBPF) OnSend(msg ebpf.Message, execTime sim.Duration) (*ebpf.Socket, error) {
	e.Node.ExecFree("ebpf-sidecar", costmodel.Cycles(e.Node.P.EBPFMetricsCycles))
	_, sock, err := e.Node.SKMSG.Run(msg, execTime)
	if err != nil {
		return nil, err
	}
	return sock, nil
}

// Drain returns buffered metric samples (the LIFL agent's periodic scrape).
func (e *EBPF) Drain() []ebpf.MetricSample { return e.Node.SKMSG.DrainMetrics() }
