package asyncfl

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDecayWeight(t *testing.T) {
	cases := []struct {
		name string
		d    Decay
		lag  int
		want float64
	}{
		{"zero value damps nothing", Decay{}, 37, 1},
		{"fresh update weighs 1", Decay{HalfLife: 2}, 0, 1},
		{"negative lag clamps to fresh", Decay{HalfLife: 2}, -3, 1},
		{"one half-life halves", Decay{HalfLife: 2}, 2, 0.5},
		{"two half-lives quarter", Decay{HalfLife: 2}, 4, 0.25},
		{"at the cutoff still weighted", Decay{HalfLife: 2, MaxStaleness: 4}, 4, 0.25},
		{"beyond the cutoff weighs 0", Decay{HalfLife: 2, MaxStaleness: 4}, 5, 0},
		{"cutoff without half-life", Decay{MaxStaleness: 1}, 2, 0},
	}
	for _, c := range cases {
		if got := c.d.Weight(c.lag); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Weight(%d) = %v, want %v", c.name, c.lag, got, c.want)
		}
	}
}

// Zero-weight decay: an extreme lag/half-life ratio underflows 2^(−lag/h)
// to exactly 0. Callers treat 0 as "discard", so the policy must produce a
// true zero rather than a denormal sliver that would divide into garbage.
func TestDecayUnderflowsToZero(t *testing.T) {
	d := Decay{HalfLife: 1e-3}
	if got := d.Weight(10); got != 0 {
		t.Fatalf("Weight(10) with half-life 1e-3 = %v, want exact 0", got)
	}
	// And monotone: weight never increases with lag.
	prev := 1.0
	dd := Decay{HalfLife: 3}
	for lag := 0; lag < 100; lag++ {
		w := dd.Weight(lag)
		if w > prev {
			t.Fatalf("weight increased at lag %d: %v > %v", lag, w, prev)
		}
		prev = w
	}
}

func TestMergerAdoptAndBlend(t *testing.T) {
	g := tensor.FromSlice([]float32{1, 2, 3, 4})
	a := tensor.FromSlice([]float32{5, 6, 7, 8})

	// Mix 0 defaults to 1: adopt the aggregate.
	out, err := Merger{}.Merge(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := out.MaxAbsDiff(a); d != 0 {
		t.Fatalf("adopt merge diverged from aggregate by %v", d)
	}
	// Inputs must be untouched.
	if g.Data[0] != 1 || a.Data[0] != 5 {
		t.Fatal("merge mutated an input")
	}

	// Mix 0.5 is the midpoint, computed by the fused ScaleAdd.
	out, err = Merger{Mix: 0.5}.Merge(g, a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3, 4, 5, 6}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("blend[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestMergerRejectsBadInput(t *testing.T) {
	g := tensor.FromSlice([]float32{1, 2})
	if _, err := (Merger{Mix: 1.5}).Merge(g, g); err == nil {
		t.Fatal("mix > 1 accepted")
	}
	if _, err := (Merger{Mix: -0.1}).Merge(g, g); err == nil {
		t.Fatal("negative mix accepted")
	}
	if _, err := (Merger{}).Merge(g, tensor.FromSlice([]float32{1})); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	t1 := tr.Dispatch(0)
	t2 := tr.Dispatch(0)
	t3 := tr.Dispatch(2)
	if tr.InFlight() != 3 {
		t.Fatalf("in-flight = %d", tr.InFlight())
	}
	if base, ok := tr.Base(t3); !ok || base != 2 {
		t.Fatalf("Base(t3) = %d, %v", base, ok)
	}
	lag, err := tr.Complete(t1, 3) // base 0 at version 3
	if err != nil || lag != 3 {
		t.Fatalf("lag = %d, err = %v", lag, err)
	}
	lag, err = tr.Complete(t3, 1) // trained ahead of a rolled-back reading: clamp
	if err != nil || lag != 0 {
		t.Fatalf("clamped lag = %d, err = %v", lag, err)
	}
	lag, err = tr.Complete(t2, 3)
	if err != nil || lag != 3 {
		t.Fatalf("lag = %d, err = %v", lag, err)
	}
	if tr.InFlight() != 0 || tr.Completed() != 3 {
		t.Fatalf("in-flight = %d, completed = %d", tr.InFlight(), tr.Completed())
	}
	if got := tr.MeanStaleness(); got != 2 {
		t.Fatalf("mean staleness = %v, want 2", got)
	}
	if _, err := tr.Complete(t1, 5); err == nil {
		t.Fatal("double-complete accepted")
	}
	if _, err := tr.Complete(999, 5); err == nil {
		t.Fatal("unknown ticket accepted")
	}
}

func TestTrackerEmptyMeanIsZero(t *testing.T) {
	if NewTracker().MeanStaleness() != 0 {
		t.Fatal("empty tracker reported staleness")
	}
}
