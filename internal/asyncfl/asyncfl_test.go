package asyncfl

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/tensor"
)

func newSvc(t *testing.T, eager bool, goal, conc int) (*sim.Engine, *Service) {
	t.Helper()
	eng := sim.NewEngine()
	s, err := New(eng, Config{Goal: goal, Concurrency: conc, Eager: eager}, tensor.FromSlice([]float32{0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func upd(v float32, base int) Update {
	return Update{Tensor: tensor.FromSlice([]float32{v, v}), Weight: 1, BaseVersion: base, Producer: "c"}
}

func TestVersionAdvancesAtGoal(t *testing.T) {
	_, s := newSvc(t, true, 2, 4)
	var versions []int
	s.OnVersion = func(v int, _ *tensor.Tensor) { versions = append(versions, v) }
	// Fig. 11: goal 2 — every second update bumps the version.
	for i := 0; i < 6; i++ {
		if err := s.Submit(upd(float32(i), s.Version())); err != nil {
			t.Fatal(err)
		}
	}
	if s.Version() != 3 || len(versions) != 3 {
		t.Fatalf("version = %d, bumps = %v", s.Version(), versions)
	}
	if s.Folded != 6 {
		t.Fatalf("folded = %d", s.Folded)
	}
}

func TestEagerFoldsImmediatelyLazyQueues(t *testing.T) {
	_, eager := newSvc(t, true, 3, 4)
	_ = eager.Submit(upd(1, 0))
	if eager.Pending() != 0 {
		t.Fatal("eager queued")
	}
	_, lazy := newSvc(t, false, 3, 4)
	_ = lazy.Submit(upd(1, 0))
	_ = lazy.Submit(upd(2, 0))
	if lazy.Pending() != 2 {
		t.Fatalf("lazy pending = %d", lazy.Pending())
	}
	_ = lazy.Submit(upd(3, 0))
	if lazy.Pending() != 0 || lazy.Version() != 1 {
		t.Fatalf("lazy did not flush at goal: pending=%d v=%d", lazy.Pending(), lazy.Version())
	}
}

func TestEagerAndLazyAgreeOnModel(t *testing.T) {
	_, a := newSvc(t, true, 2, 4)
	_, b := newSvc(t, false, 2, 4)
	for i := 0; i < 8; i++ {
		_ = a.Submit(upd(float32(i), a.Version()))
		_ = b.Submit(upd(float32(i), b.Version()))
	}
	d, err := a.Global().MaxAbsDiff(b.Global())
	if err != nil || d > 1e-5 {
		t.Fatalf("eager/lazy diverged: %v %v", d, err)
	}
	if a.Version() != b.Version() {
		t.Fatalf("versions differ: %d vs %d", a.Version(), b.Version())
	}
}

func TestStaleUpdatesAreDamped(t *testing.T) {
	eng := sim.NewEngine()
	s, err := New(eng, Config{Goal: 2, Concurrency: 4, Eager: true, StalenessHalfLife: 1},
		tensor.FromSlice([]float32{0}))
	if err != nil {
		t.Fatal(err)
	}
	// Advance two versions with value-10 updates.
	for i := 0; i < 4; i++ {
		_ = s.Submit(Update{Tensor: tensor.FromSlice([]float32{10}), Weight: 1, BaseVersion: s.Version()})
	}
	if s.Version() != 2 {
		t.Fatalf("version = %d", s.Version())
	}
	// One fresh value-0 update and one very stale (base 0 → lag 2,
	// weight 2^-2 = 0.25): the aggregate must lean toward the fresh one.
	_ = s.Submit(Update{Tensor: tensor.FromSlice([]float32{0}), Weight: 1, BaseVersion: 2})
	_ = s.Submit(Update{Tensor: tensor.FromSlice([]float32{8}), Weight: 1, BaseVersion: 0})
	got := float64(s.Global().Data[0])
	// (0·1 + 8·0.25)/1.25 = 1.6
	if got < 1.5 || got > 1.7 {
		t.Fatalf("staleness-weighted aggregate = %v, want ≈1.6", got)
	}
	if s.MeanStaleness() == 0 {
		t.Fatal("staleness not recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Goal: 0, Concurrency: 4}, tensor.New(1)); err == nil {
		t.Fatal("zero goal accepted")
	}
	if _, err := New(eng, Config{Goal: 4, Concurrency: 2}, tensor.New(1)); err == nil {
		t.Fatal("concurrency < goal accepted")
	}
	_, s := newSvc(t, true, 2, 4)
	if err := s.Submit(Update{Tensor: tensor.FromSlice([]float32{1, 1}), Weight: 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// Simulated async pipeline: 4 concurrent clients with heterogeneous train
// times; the model keeps advancing while slow clients lag (Fig. 11's whole
// point) — faster clients contribute to more versions.
func TestConcurrencyPipelineSimulation(t *testing.T) {
	eng, s := newSvc(t, true, 2, 4)
	trainTimes := []sim.Duration{10 * sim.Second, 13 * sim.Second, 29 * sim.Second, 61 * sim.Second}
	contrib := make([]int, 4)
	var launch func(client int)
	launch = func(client int) {
		base := s.Version()
		eng.After(trainTimes[client], func() {
			if s.Received >= 14 {
				return // end of experiment
			}
			if err := s.Submit(upd(1, base)); err != nil {
				t.Errorf("submit: %v", err)
			}
			contrib[client]++
			launch(client) // slot refilled immediately (concurrency held)
		})
	}
	for c := 0; c < 4; c++ {
		launch(c)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() < 5 {
		t.Fatalf("async made only %d versions", s.Version())
	}
	if contrib[0] <= contrib[3] {
		t.Fatalf("fast client contributed %d ≤ slow client %d", contrib[0], contrib[3])
	}
	if s.MeanStaleness() == 0 {
		t.Fatal("pipelining should produce staleness")
	}
}

// Property: total folded count is conserved and version = folded / goal.
func TestVersionArithmetic(t *testing.T) {
	f := func(nRaw, goalRaw uint8) bool {
		n := int(nRaw % 60)
		goal := int(goalRaw%5) + 1
		eng := sim.NewEngine()
		s, err := New(eng, Config{Goal: goal, Concurrency: goal}, tensor.FromSlice([]float32{0}))
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := s.Submit(Update{Tensor: tensor.FromSlice([]float32{1}), Weight: 1, BaseVersion: s.Version()}); err != nil {
				return false
			}
		}
		return s.Version() == n/goal && int(s.Folded) == n-s.Pending()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
