// Package asyncfl holds the buffered-asynchronous aggregation policies of
// Fig. 11 (Appendix A), following PAPAYA/FedBuff-style buffered async FL
// (Huba et al., 2022; Nguyen et al., 2022): instead of synchronous rounds,
// a fixed concurrency of clients trains at all times, the service folds
// arriving updates into a buffer of size K, and every K folded updates the
// global model advances one version — clients that trained against older
// versions contribute staleness-damped weight instead of being discarded.
//
// This package is a pure policy leaf over tensors — the staleness Decay,
// the fused-ScaleAdd model Merger, and the per-client version Tracker. The
// event-driven system assembly that drives these policies with gateways,
// shared memory, and a sandboxed aggregator pipeline is the "async" system
// in internal/systems; the concurrency-limited client dispatch loop is
// internal/core's async progress loop.
//
// Layer (DESIGN.md): component model under internal/systems, beside
// placement and autoscaler — it knows nothing about whole systems.
package asyncfl
