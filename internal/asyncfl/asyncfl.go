// Package asyncfl implements the asynchronous-FL semantics of Fig. 11
// (Appendix A) — the paper's stated future-work direction, following
// PAPAYA's buffered asynchronous aggregation (Huba et al., 2022; Nguyen et
// al., 2022). Unlike synchronous FL, the service keeps a fixed concurrency
// of clients training at all times; whenever the aggregation goal k (< the
// concurrency) is met, the global model advances one version and the slots
// are refilled — clients that trained against older versions contribute
// staleness-weighted updates instead of being discarded.
//
// Both aggregation timings of Fig. 11 are supported: eager folds each
// update into the pending version on arrival; lazy parks updates until the
// goal's worth has queued.
package asyncfl

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fedavg"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Update is one asynchronous client contribution.
type Update struct {
	Tensor *tensor.Tensor
	Weight float64
	// BaseVersion is the global model version the client trained against.
	BaseVersion int
	Producer    string
}

// Config parameterizes the asynchronous aggregator.
type Config struct {
	// Goal k: updates folded per version bump (Fig. 11 uses 2).
	Goal int
	// Concurrency: simultaneously training clients (Fig. 11 uses 4).
	Concurrency int
	// Eager selects the Fig. 11(a) timing; false = lazy, Fig. 11(b).
	Eager bool
	// StalenessHalfLife damps contributions trained s versions ago by
	// 2^(−s/half-life); 0 disables damping.
	StalenessHalfLife float64
	// Phys/Virtual size the accumulator.
	Phys, Virtual int
}

// Service is the asynchronous aggregation service.
type Service struct {
	cfg   Config
	eng   *sim.Engine
	algo  fedavg.Algorithm
	state fedavg.State

	version int
	global  *tensor.Tensor
	queue   []Update

	// OnVersion fires after every version bump with the new global model.
	OnVersion func(version int, global *tensor.Tensor)

	// Stats.
	Received  uint64
	Folded    uint64
	Discarded uint64
	// StalenessSum accumulates version lag for mean-staleness reporting.
	StalenessSum uint64
}

// New builds the service around an initial global model.
func New(eng *sim.Engine, cfg Config, initial *tensor.Tensor) (*Service, error) {
	if cfg.Goal <= 0 {
		return nil, errors.New("asyncfl: goal must be positive")
	}
	if cfg.Concurrency < cfg.Goal {
		return nil, fmt.Errorf("asyncfl: concurrency %d below goal %d", cfg.Concurrency, cfg.Goal)
	}
	if cfg.Phys == 0 {
		cfg.Phys = initial.Len()
		cfg.Virtual = initial.VirtualLen
	}
	alg := fedavg.FedAvg{}
	return &Service{
		cfg:    cfg,
		eng:    eng,
		algo:   alg,
		state:  alg.NewState(cfg.Phys, cfg.Virtual),
		global: initial.Clone(),
	}, nil
}

// Version returns the current global model version.
func (s *Service) Version() int { return s.version }

// Global returns the current global model (read-only by convention).
func (s *Service) Global() *tensor.Tensor { return s.global }

// Pending returns queued-but-unfolded updates (non-zero only under lazy).
func (s *Service) Pending() int { return len(s.queue) }

// stalenessWeight damps a contribution trained against an old version.
func (s *Service) stalenessWeight(base int) float64 {
	lag := s.version - base
	if lag < 0 {
		lag = 0
	}
	s.StalenessSum += uint64(lag)
	if s.cfg.StalenessHalfLife <= 0 || lag == 0 {
		return 1
	}
	return math.Exp2(-float64(lag) / s.cfg.StalenessHalfLife)
}

// Submit delivers one client update to the service.
func (s *Service) Submit(u Update) error {
	if u.Weight <= 0 {
		return fmt.Errorf("asyncfl: non-positive weight %v", u.Weight)
	}
	s.Received++
	if s.cfg.Eager {
		return s.fold(u)
	}
	s.queue = append(s.queue, u)
	if len(s.queue) >= s.cfg.Goal {
		batch := s.queue
		s.queue = nil
		for _, q := range batch {
			if err := s.fold(q); err != nil {
				return err
			}
		}
	}
	return nil
}

// fold accumulates one update and bumps the version at the goal.
func (s *Service) fold(u Update) error {
	w := u.Weight * s.stalenessWeight(u.BaseVersion)
	if w <= 0 {
		s.Discarded++
		return nil
	}
	if err := s.state.Accumulate(u.Tensor, w); err != nil {
		return err
	}
	s.Folded++
	if s.state.Count() >= s.cfg.Goal {
		agg, _, err := s.state.Result()
		if err != nil {
			return err
		}
		s.state.Reset()
		s.version++
		s.global = agg
		if s.OnVersion != nil {
			s.OnVersion(s.version, s.global)
		}
	}
	return nil
}

// MeanStaleness reports the average version lag of received updates.
func (s *Service) MeanStaleness() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.StalenessSum) / float64(s.Received)
}
