package asyncfl

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Decay is the staleness-damping policy: an update trained lag versions ago
// contributes with weight factor 2^(−lag/HalfLife), and updates staler than
// MaxStaleness (when set) are discarded outright. The zero value performs
// no damping at all.
type Decay struct {
	// HalfLife is the version lag at which a contribution's weight halves;
	// <= 0 disables damping (every lag weighs 1).
	HalfLife float64
	// MaxStaleness, when > 0, is the hard cutoff: updates with lag greater
	// than this weigh exactly 0 (the dispatcher discards them).
	MaxStaleness int
}

// Weight returns the damping factor for an update trained lag versions
// behind the current global model. Negative lags (an update trained against
// the current or a never-published version) clamp to 0 and weigh 1. The
// returned factor is in [0, 1]; it reaches 0 at the MaxStaleness cutoff or
// when 2^(−lag/HalfLife) underflows to zero for extreme lag/HalfLife
// ratios — callers must treat a zero weight as "discard", never divide by it.
func (d Decay) Weight(lag int) float64 {
	if lag < 0 {
		lag = 0
	}
	if d.MaxStaleness > 0 && lag > d.MaxStaleness {
		return 0
	}
	if d.HalfLife <= 0 || lag == 0 {
		return 1
	}
	return math.Exp2(-float64(lag) / d.HalfLife)
}

// Merger installs a buffer aggregate into the global model with one fused
// tensor.ScaleAdd sweep: next = (1−Mix)·global + Mix·aggregate. Mix = 1
// adopts the (staleness-weighted) buffer mean outright — the buffered-async
// analogue of fedavg.Adopt — while smaller rates blend it in, damping the
// version-to-version jitter of a small buffer.
type Merger struct {
	// Mix is the server mixing rate η in (0, 1]; 0 defaults to 1 (adopt).
	Mix float64
}

// Merge returns the next global model. Neither input is mutated.
func (m Merger) Merge(global, aggregate *tensor.Tensor) (*tensor.Tensor, error) {
	mix := m.Mix
	if mix == 0 {
		mix = 1
	}
	if mix < 0 || mix > 1 {
		return nil, fmt.Errorf("asyncfl: mix rate %v outside (0, 1]", m.Mix)
	}
	next := global.Clone()
	if err := next.ScaleAdd(float32(1-mix), float32(mix), aggregate); err != nil {
		return nil, err
	}
	return next, nil
}

// Tracker is the per-client version-tracking table: every dispatched client
// registers the global version it trained against and receives a ticket;
// completing the ticket against the then-current version records the
// arrival staleness. The table is how the service knows, at any moment,
// which versions its in-flight training slots are based on.
type Tracker struct {
	inflight map[int]int // ticket → base version
	next     int
	done     uint64
	lagSum   uint64
}

// NewTracker returns an empty table.
func NewTracker() *Tracker {
	return &Tracker{inflight: make(map[int]int)}
}

// Dispatch registers one in-flight client training against baseVersion and
// returns its ticket.
func (t *Tracker) Dispatch(baseVersion int) int {
	t.next++
	t.inflight[t.next] = baseVersion
	return t.next
}

// Base returns the base version a ticket was dispatched against.
func (t *Tracker) Base(ticket int) (int, bool) {
	v, ok := t.inflight[ticket]
	return v, ok
}

// Complete retires a ticket at the given current version and returns the
// arrival lag (current − base, clamped at 0). Completing an unknown or
// already-retired ticket is a dispatcher bug.
func (t *Tracker) Complete(ticket, currentVersion int) (int, error) {
	base, ok := t.inflight[ticket]
	if !ok {
		return 0, fmt.Errorf("asyncfl: completing unknown ticket %d", ticket)
	}
	delete(t.inflight, ticket)
	lag := currentVersion - base
	if lag < 0 {
		lag = 0
	}
	t.done++
	t.lagSum += uint64(lag)
	return lag, nil
}

// InFlight returns the number of registered, uncompleted dispatches.
func (t *Tracker) InFlight() int { return len(t.inflight) }

// Completed returns how many tickets have been retired.
func (t *Tracker) Completed() uint64 { return t.done }

// MeanStaleness reports the mean arrival lag across completed tickets.
func (t *Tracker) MeanStaleness() float64 {
	if t.done == 0 {
		return 0
	}
	return float64(t.lagSum) / float64(t.done)
}
