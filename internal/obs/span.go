package obs

import "repro/internal/sim"

// KindRound labels the per-round (or per-version) envelope spans the
// round loops append; every other span of round R nests inside R's
// envelope — the invariant the Perfetto export (and its CI schema check)
// relies on.
const KindRound = "Round"

// Span is one task execution by one actor on one timeline. Start and End
// are virtual (sim.Duration) on the Spans log and wall-clock nanoseconds
// since run start on the WallSpans log — both are int64 nanoseconds, and
// the log they sit in says which clock they mean.
type Span struct {
	Actor string // e.g. "Top", "LF1", "round", "stage"
	Kind  string // e.g. "Network", "Agg", "Eval", KindRound, "Select"
	Start sim.Duration
	End   sim.Duration
	Round int
}

// DefaultMaxSpans bounds a span log that did not choose its own cap:
// enough for every span of a figure-scale run, flat-heap for a
// million-round one (overflow is counted, not stored).
const DefaultMaxSpans = 16384

// SpanLog is a bounded append-only span store. It is single-writer by
// contract — spans are appended from serial contexts only (the engine's
// event play-out, the fabric's global loop) — which is exactly what
// makes the log, and therefore the Perfetto export, deterministic.
// A nil log is safely inert.
type SpanLog struct {
	spans   []Span
	max     int
	dropped uint64
}

// Add appends one span, or counts it as dropped past the cap.
func (l *SpanLog) Add(s Span) {
	if l == nil {
		return
	}
	max := l.max
	if max == 0 {
		max = DefaultMaxSpans
	}
	if len(l.spans) >= max {
		l.dropped++
		return
	}
	l.spans = append(l.spans, s)
}

// Spans returns the stored spans (shared backing; callers must not
// mutate).
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	return l.spans
}

// Len returns the number of stored spans.
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// Dropped counts spans the cap rejected.
func (l *SpanLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}
