package obs

import (
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Chrome trace_event process IDs: virtual-time spans render as pid 1,
// opt-in wall-clock stage spans as pid 2, so the two clocks never share
// a timeline row in the Perfetto UI.
const (
	perfettoVirtualPID = 1
	perfettoWallPID    = 2
)

// Perfetto renders the registry's span logs as Chrome/Perfetto
// trace_event JSON (load it at ui.perfetto.dev or chrome://tracing).
// Virtual-time spans — the round envelopes plus any Network/Agg/Eval
// spans a trace.Recorder fed into the shared log — appear as pid 1 with
// one thread per actor in first-appearance order; timestamps are exact
// microseconds with nanosecond decimals, so the bytes are as
// deterministic as the spans. Under CaptureWall the wall stage spans
// render as pid 2. Safe on a nil registry (renders an empty trace).
func (r *Registry) Perfetto() []byte {
	var virtual, wall []Span
	if r != nil {
		r.st.mu.Lock()
		virtual = append(virtual, r.st.spans.Spans()...)
		if r.st.opts.CaptureWall {
			wall = append(wall, r.st.wall.Spans()...)
		}
		r.st.mu.Unlock()
	}
	return PerfettoTrace(virtual, wall)
}

// PerfettoTrace renders explicit span slices as trace_event JSON —
// virtual on pid 1, wall (may be nil) on pid 2. The standalone form lets
// a bare trace.Recorder export without a registry.
func PerfettoTrace(virtual, wall []Span) []byte {
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ms","otherData":{"schema":"lifl-perfetto/1"},"traceEvents":[`)
	n := writeProcess(&b, perfettoVirtualPID, "virtual-time", virtual, 0)
	writeProcess(&b, perfettoWallPID, "wall-clock", wall, n)
	b.WriteString("]}")
	return []byte(b.String())
}

// writeProcess emits one process's metadata and span events; written
// counts events already emitted (for comma placement) and the return
// value carries the running total.
func writeProcess(b *strings.Builder, pid int, procName string, spans []Span, written int) int {
	if len(spans) == 0 {
		return written
	}
	comma := func() {
		if written > 0 {
			b.WriteByte(',')
		}
		written++
	}
	comma()
	b.WriteString(`{"ph":"M","name":"process_name","pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"args":{"name":`)
	b.WriteString(strconv.Quote(procName))
	b.WriteString(`}}`)
	// Thread IDs assign per actor in first-appearance order — the spans
	// arrive in deterministic log order, so the assignment is too.
	tids := map[string]int{}
	for _, s := range spans {
		if _, ok := tids[s.Actor]; ok {
			continue
		}
		tid := len(tids) + 1
		tids[s.Actor] = tid
		comma()
		b.WriteString(`{"ph":"M","name":"thread_name","pid":`)
		b.WriteString(strconv.Itoa(pid))
		b.WriteString(`,"tid":`)
		b.WriteString(strconv.Itoa(tid))
		b.WriteString(`,"args":{"name":`)
		b.WriteString(strconv.Quote(s.Actor))
		b.WriteString(`}}`)
	}
	for _, s := range spans {
		comma()
		b.WriteString(`{"ph":"X","pid":`)
		b.WriteString(strconv.Itoa(pid))
		b.WriteString(`,"tid":`)
		b.WriteString(strconv.Itoa(tids[s.Actor]))
		b.WriteString(`,"ts":`)
		b.WriteString(microseconds(s.Start))
		b.WriteString(`,"dur":`)
		b.WriteString(microseconds(s.End - s.Start))
		b.WriteString(`,"name":`)
		if s.Kind == KindRound {
			b.WriteString(strconv.Quote("round " + strconv.Itoa(s.Round)))
		} else {
			b.WriteString(strconv.Quote(s.Kind))
		}
		b.WriteString(`,"cat":`)
		b.WriteString(strconv.Quote(strings.ToLower(s.Kind)))
		b.WriteString(`,"args":{"round":`)
		b.WriteString(strconv.Itoa(s.Round))
		b.WriteString(`}}`)
	}
	return written
}

// microseconds renders a nanosecond duration as the exact trace_event
// microsecond number (three decimals), never via float formatting — the
// export's byte-determinism lives here.
func microseconds(d sim.Duration) string {
	neg := ""
	if d < 0 {
		// Negative durations never happen on well-formed spans; render
		// them honestly rather than mod-mangling the sign.
		neg, d = "-", -d
	}
	return neg + strconv.FormatInt(int64(d)/1000, 10) + "." + pad3(int64(d)%1000)
}

func pad3(n int64) string {
	s := strconv.FormatInt(n, 10)
	return "000"[:3-len(s)] + s
}
