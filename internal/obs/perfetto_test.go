package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// traceEvent mirrors the Chrome trace_event fields the schema check
// cares about.
type traceEvent struct {
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Name string         `json:"name"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// ParseTrace decodes trace_event JSON — shared by the CI schema check.
func parseTrace(t *testing.T, data []byte) traceFile {
	t.Helper()
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace does not parse as trace_event JSON: %v\n%s", err, data)
	}
	return f
}

func spanFixture() []Span {
	return []Span{
		{Actor: "round", Kind: KindRound, Start: 0, End: 10 * sim.Second, Round: 1},
		{Actor: "GW@n0", Kind: "Network", Start: sim.Second, End: 2 * sim.Second, Round: 1},
		{Actor: "Top", Kind: "Agg", Start: 2 * sim.Second, End: 3*sim.Second + 500*sim.Microsecond + 250*sim.Nanosecond, Round: 1},
		{Actor: "round", Kind: KindRound, Start: 10 * sim.Second, End: 19 * sim.Second, Round: 2},
		{Actor: "Top", Kind: "Eval", Start: 12 * sim.Second, End: 13 * sim.Second, Round: 2},
	}
}

// TestPerfettoSchemaAndNesting is the export contract CI validates: the
// output parses as trace_event JSON, every non-round span nests inside
// its round's envelope span, and timestamps carry exact microseconds.
func TestPerfettoSchemaAndNesting(t *testing.T) {
	data := PerfettoTrace(spanFixture(), nil)
	f := parseTrace(t, data)
	rounds := map[int][2]float64{}
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && e.Args != nil {
			if r, ok := e.Args["round"].(float64); ok && e.Name == "round "+itoa(int(r)) {
				rounds[int(r)] = [2]float64{e.TS, e.TS + e.Dur}
			}
		}
	}
	if len(rounds) != 2 {
		t.Fatalf("want 2 round envelopes, got %v", rounds)
	}
	checked := 0
	for _, e := range f.TraceEvents {
		if e.Ph != "X" || e.Name == "round 1" || e.Name == "round 2" {
			continue
		}
		r := int(e.Args["round"].(float64))
		env, ok := rounds[r]
		if !ok {
			t.Fatalf("span %q has no round envelope %d", e.Name, r)
		}
		if e.TS < env[0] || e.TS+e.Dur > env[1] {
			t.Fatalf("span %q [%v,%v] escapes round %d envelope %v", e.Name, e.TS, e.TS+e.Dur, r, env)
		}
		checked++
	}
	if checked != 3 {
		t.Fatalf("nesting-checked %d spans, want 3", checked)
	}
	// Exact microsecond rendering: the 1 s + 500.25 µs Agg span.
	if !bytes.Contains(data, []byte(`"ts":2000000.000,"dur":1000500.250`)) {
		t.Fatalf("Agg span not rendered with ns-exact microseconds:\n%s", data)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

// TestPerfettoDeterminismAndWallGate: same spans, same bytes; wall spans
// appear only under CaptureWall, as a second process.
func TestPerfettoDeterminismAndWallGate(t *testing.T) {
	a := PerfettoTrace(spanFixture(), nil)
	b := PerfettoTrace(spanFixture(), nil)
	if !bytes.Equal(a, b) {
		t.Fatal("perfetto export is not byte-deterministic")
	}
	if bytes.Contains(a, []byte(`"pid":2`)) {
		t.Fatal("wall process rendered without wall spans")
	}
	wall := []Span{{Actor: "stage", Kind: "Select", Start: 0, End: sim.Millisecond, Round: 1}}
	withWall := PerfettoTrace(spanFixture(), wall)
	if !bytes.Contains(withWall, []byte(`"pid":2`)) || !bytes.Contains(withWall, []byte(`"name":"wall-clock"`)) {
		t.Fatalf("wall spans missing from export:\n%s", withWall)
	}

	reg := New(Options{}) // no CaptureWall: registry export must gate wall out
	reg.Spans().Add(spanFixture()[0])
	reg.WallSpans().Add(wall[0]) // nil log; dropped
	if bytes.Contains(reg.Perfetto(), []byte(`"pid":2`)) {
		t.Fatal("registry without CaptureWall exported wall spans")
	}
}
