package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestNilSafety: a nil registry — telemetry off — must make every handle
// and method a no-op, because instrumented hot paths never branch.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", Det).Inc()
	r.Gauge("b", Det).Set(1)
	r.Histogram("c", Det, ExpBuckets(1, 4)).Observe(2)
	r.Sub("x/").Counter("d", Det).Add(3)
	r.Spans().Add(Span{})
	r.WallSpans().Add(Span{})
	if r.Spans().Len() != 0 || r.Spans().Dropped() != 0 {
		t.Fatal("nil span log stored something")
	}
	if got := r.GaugeValues(""); got != nil {
		t.Fatalf("nil registry returned gauges %v", got)
	}
	if !json.Valid(r.Snapshot()) {
		t.Fatalf("nil snapshot not valid JSON: %s", r.Snapshot())
	}
	if !json.Valid(r.Perfetto()) {
		t.Fatalf("nil perfetto not valid JSON: %s", r.Perfetto())
	}
}

// TestRegistryBasics: handles are get-or-create, Sub prefixes names, and
// bulk reads come back name-sorted.
func TestRegistryBasics(t *testing.T) {
	r := New(Options{})
	c := r.Counter("core/rounds", Det)
	c.Inc()
	r.Counter("core/rounds", Det).Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3 (second handle must alias the first)", got)
	}
	sub := r.Sub("cell/1/")
	sub.Gauge("share", Det).Set(30)
	r.Gauge("cell/0/share", Det).Set(28)
	got := r.GaugeValues("cell/")
	if len(got) != 2 || got[0].Name != "cell/0/share" || got[1].Name != "cell/1/share" || got[1].Value != 30 {
		t.Fatalf("GaugeValues = %+v", got)
	}
	if sub.Spans() != nil || sub.WallSpans() != nil {
		t.Fatal("sub view exposed a span log (root-only by contract)")
	}
}

// TestHistogramBuckets pins the bucket arithmetic: v <= bounds[i] lands
// in bucket i, past-the-end lands in the overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := New(Options{}).Histogram("h", Det, []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // {0.5,1}, {1.5}, {4}, {100}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

// TestSpanLogCap: the log bounds its heap — overflow is counted, never
// stored — so telemetry stays flat-RSS on million-round runs.
func TestSpanLogCap(t *testing.T) {
	l := &SpanLog{max: 3}
	for i := 0; i < 5; i++ {
		l.Add(Span{Round: i})
	}
	if l.Len() != 3 || l.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", l.Len(), l.Dropped())
	}
}

// fill populates a registry the same way twice; adds must land in the
// same snapshot bytes regardless of which goroutine performed them.
func fill(r *Registry, parallel bool) {
	c := r.Counter("core/updates", Det)
	g := r.Gauge("core/accuracy", Det)
	h := r.Histogram("core/act_ms", Det, ExpBuckets(1, 8))
	w := r.Counter("stage/playout/wall_ns", Volatile)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		add := func(n int) {
			for j := 0; j < n; j++ {
				c.Inc()
				h.Observe(float64(j % 50))
			}
			w.Add(12345)
		}
		if parallel {
			wg.Add(1)
			go func() { defer wg.Done(); add(100) }()
		} else {
			add(100)
		}
	}
	wg.Wait()
	g.Set(0.625)
	r.Spans().Add(Span{Actor: "round", Kind: KindRound, Start: 0, End: 10 * sim.Second, Round: 1})
	r.Spans().Add(Span{Actor: "Top", Kind: "Agg", Start: sim.Second, End: 2 * sim.Second, Round: 1})
}

// TestSnapshotDeterminism: byte-identical snapshots whether the updates
// ran serially or across eight goroutines — the Workers contract at the
// registry level.
func TestSnapshotDeterminism(t *testing.T) {
	a, b := New(Options{}), New(Options{})
	fill(a, false)
	fill(b, true)
	sa, sb := a.Snapshot(), b.Snapshot()
	if !bytes.Equal(sa, sb) {
		t.Fatalf("serial vs parallel snapshots differ:\n%s\n%s", sa, sb)
	}
	if !json.Valid(sa) {
		t.Fatalf("snapshot not valid JSON: %s", sa)
	}
	if strings.Contains(string(sa), "wall") {
		t.Fatalf("default snapshot leaked wall fields: %s", sa)
	}
	if !strings.Contains(string(sa), `"core/updates":800`) {
		t.Fatalf("missing counter: %s", sa)
	}
}

// TestSnapshotWallOptIn: Volatile metrics and the stage-span count
// appear only under CaptureWall — the trajstore-style opt-in the
// acceptance criteria test by name.
func TestSnapshotWallOptIn(t *testing.T) {
	r := New(Options{CaptureWall: true})
	fill(r, false)
	r.WallSpans().Add(Span{Actor: "stage", Kind: "Select", Start: 0, End: 1000, Round: 1})
	s := string(r.Snapshot())
	if !strings.Contains(s, `"wall":{`) || !strings.Contains(s, `"stage/playout/wall_ns":98760`) {
		t.Fatalf("CaptureWall snapshot missing wall section: %s", s)
	}
	if !strings.Contains(s, `"stage_spans":1`) {
		t.Fatalf("CaptureWall snapshot missing stage spans: %s", s)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(s), &parsed); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	// The deterministic sections must be byte-identical to the
	// no-CaptureWall registry's: wall capture appends, never perturbs.
	plain := New(Options{})
	fill(plain, false)
	if !strings.HasPrefix(s, strings.TrimSuffix(string(plain.Snapshot()), "}")) {
		t.Fatalf("wall opt-in changed the deterministic prefix:\n%s\n%s", s, plain.Snapshot())
	}
	if r.WallSpans() == nil {
		t.Fatal("CaptureWall root must expose the wall log")
	}
	if New(Options{}).WallSpans() != nil {
		t.Fatal("wall log must be nil without CaptureWall")
	}
}
