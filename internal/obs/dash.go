package obs

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/sim"
)

// DashUpdate is one completed round (or async version) as the watch
// dashboard consumes it — a plain-data projection of the round loop's
// observation stream, so obs stays below core in the layer map.
type DashUpdate struct {
	Round     int
	MaxRounds int
	Accuracy  float64
	Target    float64
	SimNow    sim.Duration
	Wall      time.Duration
	Updates   int
	Shares    int // fabric quota shares folded (0 outside fabric runs)
	Discarded int // async staleness discards this version
}

// Dash renders the live `liflsim watch` view from an OnRound stream. On
// a TTY it redraws a full-screen panel (throttled to ~10 Hz); otherwise
// it degrades to one line per round, which is what CI exercises. The
// per-cell share table and the stage wall breakdown are read live from
// the run's registry ("fabric/cell/" gauges, "stage/" counters).
type Dash struct {
	w     io.Writer
	tty   bool
	reg   *Registry
	label string

	rounds   int
	last     DashUpdate
	wallSum  time.Duration
	started  time.Time
	lastDraw time.Time
}

// NewDash builds a dashboard writing to w. tty selects the redraw panel;
// reg may be nil (the cell and stage sections are simply omitted).
func NewDash(w io.Writer, tty bool, reg *Registry, label string) *Dash {
	return &Dash{w: w, tty: tty, reg: reg, label: label, started: time.Now()}
}

// Observe renders one completed round.
func (d *Dash) Observe(u DashUpdate) {
	d.rounds++
	d.last = u
	d.wallSum += u.Wall
	if !d.tty {
		d.line(u)
		return
	}
	// Redraw at most ~10 Hz: a 100K-round run must not spend its wall
	// clock painting frames.
	if now := time.Now(); now.Sub(d.lastDraw) >= 100*time.Millisecond {
		d.lastDraw = now
		d.frame(false)
	}
}

// Done paints the final state (always, even under throttling).
func (d *Dash) Done() {
	if d.tty {
		d.frame(true)
		return
	}
	fmt.Fprintf(d.w, "watch %s: done after %d round(s), acc %.3f, sim %s, wall %s\n",
		d.label, d.rounds, d.last.Accuracy, fmtSim(d.last.SimNow), d.wallSum.Round(time.Millisecond))
}

// line is the non-TTY degradation: one parseable line per round.
func (d *Dash) line(u DashUpdate) {
	fmt.Fprintf(d.w, "watch %s r%4d/%d acc=%.3f sim=%s upd=%d", d.label, u.Round, u.MaxRounds, u.Accuracy, fmtSim(u.SimNow), u.Updates)
	if u.Shares > 0 {
		fmt.Fprintf(d.w, " shares=%d", u.Shares)
		if cells := d.reg.GaugeValues("fabric/cell/"); len(cells) > 0 {
			fmt.Fprintf(d.w, " cells=%s", cellSummary(cells))
		}
	}
	if u.Discarded > 0 {
		fmt.Fprintf(d.w, " discarded=%d", u.Discarded)
	}
	fmt.Fprintf(d.w, " wall=%s\n", u.Wall.Round(time.Microsecond))
}

// frame repaints the TTY panel.
func (d *Dash) frame(final bool) {
	u := d.last
	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // home + clear
	fmt.Fprintf(&b, "watch %s\n", d.label)
	fmt.Fprintf(&b, "round %d/%d   acc %.3f -> target %.2f\n", u.Round, u.MaxRounds, u.Accuracy, u.Target)
	fmt.Fprintf(&b, "sim %s   wall %s   rss %s\n", fmtSim(u.SimNow), d.wallSum.Round(time.Millisecond), rss())
	b.WriteString(progressBar(u.Accuracy, u.Target, 40))
	b.WriteByte('\n')
	if cells := d.reg.GaugeValues("fabric/cell/"); len(cells) > 0 {
		fmt.Fprintf(&b, "cells: %s\n", cellSummary(cells))
	}
	if stages := d.reg.CounterValues("stage/"); len(stages) > 0 {
		fmt.Fprintf(&b, "stages: %s\n", stageSummary(stages))
	}
	if final {
		fmt.Fprintf(&b, "done: %d round(s) in %s\n", d.rounds, time.Since(d.started).Round(time.Millisecond))
	}
	io.WriteString(d.w, b.String())
}

// cellSummary compacts the per-cell share gauges ("fabric/cell/<id>/share")
// into "0:30 1:28 ...". Gauges arrive name-sorted, so the rendering is
// stable for a stable fabric shape.
func cellSummary(values []Value) string {
	var b strings.Builder
	for _, v := range values {
		rest, ok := strings.CutPrefix(v.Name, "fabric/cell/")
		if !ok {
			continue
		}
		id, found := strings.CutSuffix(rest, "/share")
		if !found {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", id, int(v.Value))
	}
	return b.String()
}

// stageSummary renders the cumulative stage wall counters
// ("stage/<name>/wall_ns") as percentages of their sum.
func stageSummary(values []Value) string {
	total := 0.0
	for _, v := range values {
		total += v.Value
	}
	if total <= 0 {
		return "(no stage samples)"
	}
	var b strings.Builder
	for _, v := range values {
		name, ok := strings.CutPrefix(v.Name, "stage/")
		if !ok {
			continue
		}
		name, _ = strings.CutSuffix(name, "/wall_ns")
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s %.0f%%", name, 100*v.Value/total)
	}
	return b.String()
}

// progressBar renders accuracy progress toward the target.
func progressBar(acc, target float64, width int) string {
	if target <= 0 {
		target = 1
	}
	frac := acc / target
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	fill := int(frac * float64(width))
	return "[" + strings.Repeat("#", fill) + strings.Repeat("-", width-fill) + fmt.Sprintf("] %3.0f%%", frac*100)
}

// fmtSim renders simulated time compactly (hours for training runs,
// seconds below one hour).
func fmtSim(d sim.Duration) string {
	if d >= sim.Hour {
		return fmt.Sprintf("%.2fh", d.Hours())
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// rss reads the live heap for the dashboard header. ReadMemStats is a
// stop-the-world call, so it runs only on (throttled) repaints.
func rss() string {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return fmt.Sprintf("%.0f MB", float64(m.HeapAlloc)/(1<<20))
}
