package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Class partitions metrics by determinism (see the package comment).
type Class uint8

const (
	// Det metrics are pure functions of (config, seed): identical for any
	// worker count, sweep parallelism or retention window. Only Det
	// metrics appear in the default Snapshot.
	Det Class = iota
	// Volatile metrics derive from the wall clock or from bookkeeping
	// policy (retention-dependent churn). They appear in the snapshot's
	// "wall" section only when the registry opted in via CaptureWall.
	Volatile
)

// Options tunes a registry at construction.
type Options struct {
	// CaptureWall opts the snapshot into Volatile metrics and enables the
	// wall-time stage-span log — the trajstore CaptureWall contract:
	// byte-identity is the default, wall-clock visibility is explicit.
	CaptureWall bool
	// MaxSpans bounds each span log (0 = DefaultMaxSpans). Appends past
	// the cap are counted, not stored, so a million-round run keeps a
	// flat telemetry heap.
	MaxSpans int
}

// Counter is a monotonically increasing uint64. Updates are a single
// atomic add — zero allocations, safe from parallel stages (adds are
// commutative, so parallel increment order never shows in the value).
// All methods are safe on a nil counter (the telemetry-off no-op).
type Counter struct {
	n     atomic.Uint64
	class Class
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-write-wins float64. Writers of a shared registry must
// own distinct gauge names (the fabric's per-cell Sub prefixes); a gauge
// written from one serial context is deterministic. Nil-safe.
type Gauge struct {
	bits  atomic.Uint64
	class Class
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets chosen at
// registration: counts[i] holds observations v <= bounds[i], the last
// bucket is the +Inf overflow. Bucket increments are atomic adds, so a
// Det histogram stays deterministic even under parallel observers (it
// stores no order-dependent float sum, only commutative integer counts).
// Nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = overflow
	total  atomic.Uint64
	class  Class
}

// Observe counts one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
}

// Total returns the number of observations (0 on nil).
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Counts returns the per-bucket counts (nil on nil).
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// ExpBuckets builds n exponentially growing upper bounds starting at
// base and doubling — the default shape for duration histograms
// (milliseconds: ExpBuckets(1, 12) spans 1 ms .. 2 s with +Inf above).
func ExpBuckets(base float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base
		base *= 2
	}
	return out
}

// state is the shared store behind a registry and all its Sub views.
type state struct {
	opts     Options
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    SpanLog // virtual-time spans (Det)
	wall     SpanLog // wall-clock stage spans (CaptureWall only)
}

// Registry is one run's telemetry plane — or, when built by Sub, a
// name-prefixed view of one. All methods are safe on a nil registry and
// return nil handles, so call sites never branch on "telemetry on".
type Registry struct {
	st     *state
	prefix string
}

// New builds an empty registry.
func New(opts Options) *Registry {
	st := &state{
		opts:     opts,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	st.spans.max = opts.MaxSpans
	st.wall.max = opts.MaxSpans
	return &Registry{st: st}
}

// Sub returns a view that prefixes every registered name — the fabric's
// per-cell scoping. Sub views share the metric store but expose no span
// logs (Spans and WallSpans return nil): the logs are single-writer and
// belong to the root's serial loop.
func (r *Registry) Sub(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{st: r.st, prefix: r.prefix + prefix}
}

// Wall reports whether the registry opted into wall-clock capture.
func (r *Registry) Wall() bool { return r != nil && r.st.opts.CaptureWall }

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string, class Class) *Counter {
	if r == nil {
		return nil
	}
	full := r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	c, ok := r.st.counters[full]
	if !ok {
		c = &Counter{class: class}
		r.st.counters[full] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string, class Class) *Gauge {
	if r == nil {
		return nil
	}
	full := r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	g, ok := r.st.gauges[full]
	if !ok {
		g = &Gauge{class: class}
		r.st.gauges[full] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given upper bounds (ascending; ignored after first registration).
func (r *Registry) Histogram(name string, class Class, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	full := r.prefix + name
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	h, ok := r.st.hists[full]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds)+1), class: class}
		r.st.hists[full] = h
	}
	return h
}

// Spans returns the virtual-time span log — root registries only (nil on
// a Sub view): the log is single-writer by contract, and only the root's
// serial round/version loop may append.
func (r *Registry) Spans() *SpanLog {
	if r == nil || r.prefix != "" {
		return nil
	}
	return &r.st.spans
}

// WallSpans returns the wall-clock stage-span log, or nil unless this is
// a root registry built with CaptureWall.
func (r *Registry) WallSpans() *SpanLog {
	if r == nil || r.prefix != "" || !r.st.opts.CaptureWall {
		return nil
	}
	return &r.st.wall
}

// Value is one named reading — the dashboard's bulk-read unit.
type Value struct {
	Name  string
	Value float64
}

// GaugeValues returns every gauge whose full name starts with prefix,
// sorted by name. Live-view helper (the watch dashboard's per-cell share
// table); classes are not filtered.
func (r *Registry) GaugeValues(prefix string) []Value {
	if r == nil {
		return nil
	}
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	var out []Value
	for name, g := range r.st.gauges {
		if strings.HasPrefix(name, prefix) {
			out = append(out, Value{Name: name, Value: g.Value()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValues returns every counter whose full name starts with
// prefix, sorted by name (values as float64 for uniform consumption).
func (r *Registry) CounterValues(prefix string) []Value {
	if r == nil {
		return nil
	}
	r.st.mu.Lock()
	defer r.st.mu.Unlock()
	var out []Value
	for name, c := range r.st.counters {
		if strings.HasPrefix(name, prefix) {
			out = append(out, Value{Name: name, Value: float64(c.Value())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
