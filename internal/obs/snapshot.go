package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// SnapshotSchema versions the snapshot layout; bump on any field change
// so stored snapshots stay self-describing.
const SnapshotSchema = "lifl-telemetry/1"

// Snapshot serializes the registry as versioned JSON. The bytes are the
// determinism contract's unit of account: metric names sort, floats
// format shortest-round-trip, and only Det metrics appear — so a fixed
// seed yields byte-identical snapshots for any worker count, sweep
// parallelism or retention window. Under CaptureWall a trailing "wall"
// object carries the Volatile metrics and the wall stage-span count;
// those bytes are expected to differ run over run, which is why they
// exist only behind the opt-in.
func (r *Registry) Snapshot() []byte {
	var b strings.Builder
	b.WriteString(`{"schema":`)
	b.WriteString(strconv.Quote(SnapshotSchema))
	if r != nil {
		r.st.mu.Lock()
		defer r.st.mu.Unlock()
		b.WriteString(`,"counters":`)
		writeCounters(&b, r.st.counters, Det)
		b.WriteString(`,"gauges":`)
		writeGauges(&b, r.st.gauges, Det)
		b.WriteString(`,"histograms":`)
		writeHists(&b, r.st.hists, Det)
		b.WriteString(`,"spans":`)
		writeSpanSummary(&b, &r.st.spans)
		if r.st.opts.CaptureWall {
			b.WriteString(`,"wall":{"counters":`)
			writeCounters(&b, r.st.counters, Volatile)
			b.WriteString(`,"gauges":`)
			writeGauges(&b, r.st.gauges, Volatile)
			b.WriteString(`,"histograms":`)
			writeHists(&b, r.st.hists, Volatile)
			b.WriteString(`,"stage_spans":`)
			b.WriteString(strconv.Itoa(r.st.wall.Len()))
			b.WriteByte('}')
		}
	}
	b.WriteByte('}')
	return []byte(b.String())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeCounters(b *strings.Builder, m map[string]*Counter, class Class) {
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(m) {
		if m[k].class != class {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(m[k].Value(), 10))
	}
	b.WriteByte('}')
}

func writeGauges(b *strings.Builder, m map[string]*Gauge, class Class) {
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(m) {
		if m[k].class != class {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		b.WriteString(formatFloat(m[k].Value()))
	}
	b.WriteByte('}')
}

func writeHists(b *strings.Builder, m map[string]*Histogram, class Class) {
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(m) {
		h := m[k]
		if h.class != class {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Quote(k))
		b.WriteString(`:{"bounds":[`)
		for i, bound := range h.bounds {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(formatFloat(bound))
		}
		b.WriteString(`],"counts":[`)
		for i, c := range h.Counts() {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(c, 10))
		}
		b.WriteString(`],"total":`)
		b.WriteString(strconv.FormatUint(h.Total(), 10))
		b.WriteByte('}')
	}
	b.WriteByte('}')
}

// writeSpanSummary serializes the span log as aggregate counts, not raw
// spans — the snapshot stays round-count-independent in size; the full
// timeline export is Perfetto's job.
func writeSpanSummary(b *strings.Builder, l *SpanLog) {
	byKind := map[string]int{}
	for _, s := range l.Spans() {
		byKind[s.Kind]++
	}
	b.WriteString(`{"by_kind":{`)
	for i, k := range sortedKeys(byKind) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(byKind[k]))
	}
	b.WriteString(`},"dropped":`)
	b.WriteString(strconv.FormatUint(l.Dropped(), 10))
	b.WriteString(`,"recorded":`)
	b.WriteString(strconv.Itoa(l.Len()))
	b.WriteByte('}')
}

// formatFloat renders v as a JSON number: shortest round-trip form, with
// the non-finite values JSON lacks mapped to null.
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
