// Package obs is the deterministic run-telemetry plane: a registry of
// named counters, gauges and histograms with zero-alloc hot-path updates,
// a bounded virtual-time span log, and three export surfaces — a
// versioned byte-deterministic JSON snapshot, a Chrome/Perfetto
// trace_event rendering, and the live `liflsim watch` dashboard model.
//
// Every instrumented layer (core's staged round loop, the async version
// loop, the cell fabric, the systems' control planes, the eBPF data
// plane) publishes through one *Registry handed down via
// core.RunConfig.Telemetry. Telemetry is off by default: a nil registry
// makes every handle and method a no-op, so instrumentation costs one
// nil check on paths that never opted in.
//
// # Determinism contract
//
// Metrics carry a Class. Det metrics are pure functions of (config,
// seed): for a fixed seed their values are identical for any worker
// count, any sweep parallelism and any control-plane retention window,
// so Snapshot — which serializes Det metrics only, with sorted keys and
// exact formatting — is byte-identical across all those knobs. Volatile
// metrics (wall-clock durations, RSS, retention-dependent churn such as
// "registrations retired") are excluded from the snapshot unless the
// registry was built with Options.CaptureWall — the same explicit opt-in
// contract trajstore uses for its wall-clock column. The virtual-time
// span log is Det (spans are appended from serial event play-out), so
// the Perfetto rendering of virtual spans is byte-identical too;
// wall-time stage spans ride the separate WallLog, which exists only
// under CaptureWall.
//
// # Scoping
//
// Names are flat, slash-separated paths ("ctrl/registrations_created",
// "fabric/cell/3/share"). Sub returns a view that prefixes every name it
// registers — the cell fabric hands each cell Sub("cell/<id>/") so two
// cells folding in parallel never write the same gauge. Sub views share
// the parent's metric store but expose no span logs: spans are
// root-only, because the log is single-writer by contract.
package obs
