package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestDashLineMode pins the non-TTY degradation: one line per round with
// the round/accuracy fields, plus per-cell shares for fabric rounds —
// the mode CI smokes.
func TestDashLineMode(t *testing.T) {
	reg := New(Options{})
	reg.Gauge("fabric/cell/0/share", Det).Set(30)
	reg.Gauge("fabric/cell/1/share", Det).Set(28)
	var b strings.Builder
	d := NewDash(&b, false, reg, "geo-4cell")
	d.Observe(DashUpdate{Round: 3, MaxRounds: 80, Accuracy: 0.41, Target: 0.7,
		SimNow: 90 * sim.Minute, Wall: 2 * time.Millisecond, Updates: 58, Shares: 58})
	d.Observe(DashUpdate{Round: 4, MaxRounds: 80, Accuracy: 0.44, Target: 0.7,
		SimNow: 2 * sim.Hour, Wall: time.Millisecond, Updates: 58, Shares: 58})
	d.Done()
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 round lines + done, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "watch geo-4cell r   3/80 acc=0.410 sim=1.50h upd=58 shares=58 cells=0:30 1:28") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "watch geo-4cell: done after 2 round(s)") {
		t.Fatalf("done line = %q", lines[2])
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatal("non-TTY output contains ANSI escapes")
	}
}

// TestDashTTYFrame: the panel repaints with clear-screen escapes and the
// stage breakdown when stage counters exist.
func TestDashTTYFrame(t *testing.T) {
	reg := New(Options{CaptureWall: true})
	reg.Counter("stage/select/wall_ns", Volatile).Add(250)
	reg.Counter("stage/playout/wall_ns", Volatile).Add(750)
	var b strings.Builder
	d := NewDash(&b, true, reg, "fig9-r18")
	d.Observe(DashUpdate{Round: 10, MaxRounds: 500, Accuracy: 0.35, Target: 0.7, SimNow: sim.Hour})
	d.Done()
	out := b.String()
	if !strings.Contains(out, "\x1b[H\x1b[2J") {
		t.Fatal("TTY frame missing clear escape")
	}
	if !strings.Contains(out, "round 10/500") || !strings.Contains(out, "stages: playout 75% select 25%") {
		t.Fatalf("frame = %q", out)
	}
	if !strings.Contains(out, "] ") || !strings.Contains(out, "50%") {
		t.Fatalf("progress bar missing: %q", out)
	}
}

func TestProgressBarBounds(t *testing.T) {
	if got := progressBar(2, 0.7, 10); !strings.Contains(got, "100%") {
		t.Fatalf("overshoot not clamped: %q", got)
	}
	if got := progressBar(-1, 0.7, 10); !strings.Contains(got, "0%") {
		t.Fatalf("undershoot not clamped: %q", got)
	}
}
