package autoscaler

import (
	"fmt"
	"math"
)

// EWMA smooths queue-length estimates: Q̄_t = α·Q̄_{t−1} + (1−α)·Q_t, with
// α = 0.7 per §5.2. The zero value is unusable; use NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	primed  bool
	Updates uint64
}

// NewEWMA builds a smoother with coefficient alpha ∈ [0,1).
func NewEWMA(alpha float64) *EWMA {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("autoscaler: EWMA alpha %v out of [0,1)", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds in an observation and returns the smoothed value. The first
// observation primes the filter directly.
func (e *EWMA) Update(x float64) float64 {
	e.Updates++
	if !e.primed {
		e.value = x
		e.primed = true
		return x
	}
	e.value = e.alpha*e.value + (1-e.alpha)*x
	return e.value
}

// Value returns the current smoothed estimate.
func (e *EWMA) Value() float64 { return e.value }

// Plan describes the aggregation tree for one node in one re-plan cycle
// (§5.2: a two-level k-ary tree per node — leaves feeding one "central"
// middle aggregator — with each node's intermediate update dispatched to the
// cluster-wide top aggregator).
type Plan struct {
	Node string
	// Updates is the demand the plan was sized for.
	Updates int
	// Leaves is the number of leaf aggregators (= ceil(updates / I)).
	Leaves int
	// Middle reports whether a middle aggregator is needed (more than one
	// leaf on the node).
	Middle bool
	// LeafGoals[i] is the aggregation goal of leaf i; goals differ by at
	// most one when I does not divide the demand.
	LeafGoals []int
}

// Aggregators returns the number of instances the plan requires on the node.
func (p Plan) Aggregators() int {
	n := p.Leaves
	if p.Middle {
		n++
	}
	return n
}

// PlanNode sizes the per-node hierarchy for `updates` pending model updates
// with leaf fan-in I (kept small, e.g. 2, so a leaf waits minimally after
// its first update, §5.2).
func PlanNode(node string, updates, fanIn int) Plan {
	if fanIn <= 0 {
		panic(fmt.Sprintf("autoscaler: fan-in %d must be positive", fanIn))
	}
	if updates <= 0 {
		return Plan{Node: node}
	}
	leaves := (updates + fanIn - 1) / fanIn
	goals := make([]int, leaves)
	rem := updates
	for i := range goals {
		g := fanIn
		if rem < g {
			g = rem
		}
		goals[i] = g
		rem -= g
	}
	return Plan{
		Node:      node,
		Updates:   updates,
		Leaves:    leaves,
		Middle:    leaves > 1,
		LeafGoals: goals,
	}
}

// PlanCluster plans every node given smoothed queue estimates and returns
// plans keyed by node name plus the total aggregator count.
func PlanCluster(queues map[string]float64, fanIn int) (map[string]Plan, int) {
	out := make(map[string]Plan, len(queues))
	total := 0
	for node, q := range queues {
		p := PlanNode(node, int(math.Ceil(q)), fanIn)
		out[node] = p
		total += p.Aggregators()
	}
	return out, total
}

// Threshold is the baseline reactive autoscaler: desired replicas =
// ceil(in-flight / target concurrency), clamped to [min, max]. It knows
// nothing about hierarchy levels, so scaling a chain of aggregators incurs
// cascading cold starts (§2.3).
type Threshold struct {
	// Target is the per-replica concurrency target (Knative's
	// containerConcurrency).
	Target int
	// Min and Max clamp the replica count.
	Min, Max int
}

// Desired returns the replica count for the observed in-flight load.
func (t Threshold) Desired(inflight int) int {
	if t.Target <= 0 {
		panic("autoscaler: threshold target must be positive")
	}
	d := (inflight + t.Target - 1) / t.Target
	if d < t.Min {
		d = t.Min
	}
	if t.Max > 0 && d > t.Max {
		d = t.Max
	}
	return d
}
