// Package autoscaler implements the two scaling designs the paper compares:
// LIFL's hierarchy-aware planner (§5.2) — which sizes a per-node, two-level
// k-ary aggregation tree from EWMA-smoothed queue estimates so every level
// reaches maximal parallelism — and the threshold-based reactive autoscaler
// of existing serverless platforms (Knative/OpenFaaS style), which scales a
// single pool of identical functions from a concurrency target and is blind
// to the hierarchy (§2.3 "Application-agnostic, simple, autoscaling").
//
// Layer (DESIGN.md): component model under internal/systems — EWMA +
// hierarchy planning vs threshold scaling (§5.2).
package autoscaler
