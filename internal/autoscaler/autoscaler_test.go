package autoscaler

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFormulaExact(t *testing.T) {
	e := NewEWMA(0.7)
	if got := e.Update(10); got != 10 {
		t.Fatalf("first observation must prime: %v", got)
	}
	// Q̄ = 0.7·10 + 0.3·20 = 13.
	if got := e.Update(20); math.Abs(got-13) > 1e-9 {
		t.Fatalf("second = %v, want 13", got)
	}
	// Q̄ = 0.7·13 + 0.3·3 = 10.
	if got := e.Update(3); math.Abs(got-10) > 1e-9 {
		t.Fatalf("third = %v, want 10", got)
	}
	if e.Updates != 3 || e.Value() != 10 {
		t.Fatalf("state: %d %v", e.Updates, e.Value())
	}
}

func TestEWMASmoothsSpikes(t *testing.T) {
	// §5.2: EWMA prevents excess allocation from short-term spikes.
	e := NewEWMA(0.7)
	e.Update(10)
	spike := e.Update(100)
	if spike > 40 {
		t.Fatalf("spike insufficiently damped: %v", spike)
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %v accepted", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// Property: the EWMA stays within the min/max of its observations.
func TestEWMABounded(t *testing.T) {
	f := func(obs []uint16) bool {
		if len(obs) == 0 {
			return true
		}
		e := NewEWMA(0.7)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, o := range obs {
			v := float64(o)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			got := e.Update(v)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanNodeShapes(t *testing.T) {
	// §5.2: two-level k-ary tree, I=2, goals sum to the demand.
	p := PlanNode("n", 20, 2)
	if p.Leaves != 10 || !p.Middle {
		t.Fatalf("plan: %+v", p)
	}
	if p.Aggregators() != 11 {
		t.Fatalf("aggregators = %d", p.Aggregators())
	}
	// Odd demand: last leaf gets the remainder.
	p = PlanNode("n", 5, 2)
	if p.Leaves != 3 || p.LeafGoals[2] != 1 {
		t.Fatalf("odd plan: %+v", p)
	}
	// Single leaf: no middle needed.
	p = PlanNode("n", 2, 2)
	if p.Leaves != 1 || p.Middle {
		t.Fatalf("small plan: %+v", p)
	}
	// Zero demand: empty plan.
	p = PlanNode("n", 0, 2)
	if p.Aggregators() != 0 {
		t.Fatalf("empty plan: %+v", p)
	}
}

func TestPlanNodeBadFanInPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PlanNode("n", 5, 0)
}

// Property: goals are positive, at most I, and sum to the demand.
func TestPlanGoalsInvariant(t *testing.T) {
	f := func(updatesRaw uint8, fanRaw uint8) bool {
		updates := int(updatesRaw % 200)
		fanIn := int(fanRaw%6) + 1
		p := PlanNode("n", updates, fanIn)
		sum := 0
		for _, g := range p.LeafGoals {
			if g <= 0 || g > fanIn {
				return false
			}
			sum += g
		}
		if sum != updates {
			return false
		}
		if updates > 0 && p.Leaves != (updates+fanIn-1)/fanIn {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCluster(t *testing.T) {
	plans, total := PlanCluster(map[string]float64{"a": 4.2, "b": 0, "c": 1}, 2)
	if plans["a"].Leaves != 3 { // ceil(4.2)=5 → 3 leaves
		t.Fatalf("a: %+v", plans["a"])
	}
	if plans["b"].Aggregators() != 0 {
		t.Fatalf("b: %+v", plans["b"])
	}
	if plans["c"].Leaves != 1 || plans["c"].Middle {
		t.Fatalf("c: %+v", plans["c"])
	}
	if total != 4+0+1 {
		t.Fatalf("total = %d", total)
	}
}

func TestThresholdDesired(t *testing.T) {
	th := Threshold{Target: 2, Min: 1, Max: 10}
	cases := []struct{ in, want int }{{0, 1}, {1, 1}, {2, 1}, {3, 2}, {19, 10}, {100, 10}}
	for _, c := range cases {
		if got := th.Desired(c.in); got != c.want {
			t.Errorf("desired(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestThresholdZeroTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Threshold{}.Desired(1)
}
