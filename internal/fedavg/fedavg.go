package fedavg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ErrEmpty is returned when a result is requested before any accumulation.
var ErrEmpty = errors.New("fedavg: no updates accumulated")

// Algorithm constructs fresh accumulator states.
type Algorithm interface {
	Name() string
	// NewState returns an empty accumulator for vectors with the given
	// physical and virtual lengths.
	NewState(phys, virtual int) State
}

// State is a cumulative aggregation accumulator.
type State interface {
	// Accumulate folds one (update, weight) pair in. Weight must be
	// positive; for client updates it is the sample count c_k, for
	// intermediate updates the child's total weight.
	Accumulate(t *tensor.Tensor, weight float64) error
	// Result returns the aggregate so far and its total weight. The
	// returned tensor is owned by the caller (safe to publish immutably).
	Result() (*tensor.Tensor, float64, error)
	// Count returns how many updates have been folded in.
	Count() int
	// Reset clears the accumulator for reuse in the next round.
	Reset()
}

// FedAvg is the weighted-averaging algorithm of the paper's evaluation.
type FedAvg struct {
	// Workers bounds the goroutine pool each state's fold may use (<= 1,
	// the zero value, keeps folds serial). Results are bit-identical for
	// any value — the accumulator shards on fixed element boundaries
	// (tensor/parallel.go), never re-associating the float64 sums.
	Workers int
}

// Name implements Algorithm.
func (FedAvg) Name() string { return "fedavg" }

// NewState implements Algorithm.
func (f FedAvg) NewState(phys, virtual int) State {
	acc := tensor.NewAccumulator(phys)
	acc.SetWorkers(f.Workers)
	return &fedAvgState{
		acc:     acc,
		phys:    phys,
		virtual: virtual,
	}
}

// fedAvgState delegates the arithmetic to tensor.Accumulator — the shared
// Clone-avoiding eager accumulate path (float64 running sums, divide once
// at Result) — and adds the tensor geometry plus the fedavg error contract.
type fedAvgState struct {
	acc     *tensor.Accumulator
	phys    int
	virtual int
}

func (s *fedAvgState) Accumulate(t *tensor.Tensor, weight float64) error {
	if t.Len() != s.phys {
		return fmt.Errorf("%w: update len %d, accumulator len %d", tensor.ErrShape, t.Len(), s.phys)
	}
	if weight <= 0 {
		return fmt.Errorf("fedavg: non-positive weight %v", weight)
	}
	return s.acc.Add(t, weight)
}

func (s *fedAvgState) Result() (*tensor.Tensor, float64, error) {
	if s.acc.Count() == 0 {
		return nil, 0, ErrEmpty
	}
	out := tensor.NewVirtual(s.phys, s.virtual)
	if err := s.acc.MeanInto(out); err != nil {
		return nil, 0, err
	}
	return out, s.acc.Total(), nil
}

func (s *fedAvgState) Count() int { return s.acc.Count() }

func (s *fedAvgState) Reset() { s.acc.Reset() }

// ServerOpt post-processes the aggregated update into the next global model.
// FedAvg simply adopts the aggregate; adaptive server optimizers (Reddi et
// al., 2020) treat (global − aggregate) as a pseudo-gradient. These are the
// "FL algorithm" extension point the paper calls orthogonal to LIFL (§7).
type ServerOpt interface {
	Name() string
	// Apply returns the next global model given the previous one and the
	// round's aggregate. Implementations must not mutate their inputs.
	Apply(global, aggregate *tensor.Tensor) (*tensor.Tensor, error)
}

// Adopt is plain FedAvg: the aggregate becomes the global model.
type Adopt struct{}

// Name implements ServerOpt.
func (Adopt) Name() string { return "adopt" }

// Apply implements ServerOpt.
func (Adopt) Apply(_, aggregate *tensor.Tensor) (*tensor.Tensor, error) {
	return aggregate.Clone(), nil
}

// FedAvgM is server momentum (Hsu et al., 2019; Reddi et al., 2020): the
// round's pseudo-gradient Δ = aggregate − global folds into a velocity
// v ← β·v + Δ, and the server steps w ← w + η·v. Both updates run on the
// fused tensor.ScaleAdd sweep, so the install path costs two passes over
// the parameter vector and one allocation (the returned model) per round.
//
// The velocity is per-training-run state: a FedAvgM instance belongs to
// exactly one run. Reusing one across runs warm-starts the second run's
// momentum (breaking fixed-seed repeatability), and sharing one between
// concurrent runs races on v — allocate a fresh instance per run, as
// scenario expansion does for its ServerMomentum knob.
type FedAvgM struct {
	Beta float64 // momentum coefficient β (default 0.9)
	LR   float64 // server learning rate η (default 1.0)
	v    *tensor.Tensor
}

// Name implements ServerOpt.
func (o *FedAvgM) Name() string { return "fedavgm" }

// Apply implements ServerOpt.
func (o *FedAvgM) Apply(global, aggregate *tensor.Tensor) (*tensor.Tensor, error) {
	if global.Len() != aggregate.Len() {
		return nil, fmt.Errorf("%w: global %d vs aggregate %d", tensor.ErrShape, global.Len(), aggregate.Len())
	}
	if o.Beta == 0 {
		o.Beta = 0.9
	}
	if o.LR == 0 {
		o.LR = 1.0
	}
	if o.v == nil {
		o.v = tensor.NewVirtual(global.Len(), global.VirtualLen)
	}
	// v = β·v + Δ, computed as v = β·v + (aggregate − global) in two fused
	// sweeps: fold the aggregate in, then cancel the global.
	if err := o.v.ScaleAdd(float32(o.Beta), 1, aggregate); err != nil {
		return nil, err
	}
	if err := o.v.AddScaled(-1, global); err != nil {
		return nil, err
	}
	// w = w + η·v without mutating the caller's global.
	out := global.Clone()
	if err := out.ScaleAdd(1, float32(o.LR), o.v); err != nil {
		return nil, err
	}
	return out, nil
}

// FedAdagrad is an adaptive server optimizer: accumulates squared
// pseudo-gradients and scales the server step (Reddi et al., 2020).
type FedAdagrad struct {
	LR  float64 // server learning rate η
	Tau float64 // adaptivity floor τ
	v   []float64
}

// Name implements ServerOpt.
func (o *FedAdagrad) Name() string { return "fedadagrad" }

// Apply implements ServerOpt.
func (o *FedAdagrad) Apply(global, aggregate *tensor.Tensor) (*tensor.Tensor, error) {
	if global.Len() != aggregate.Len() {
		return nil, fmt.Errorf("%w: global %d vs aggregate %d", tensor.ErrShape, global.Len(), aggregate.Len())
	}
	if o.LR == 0 {
		o.LR = 0.1
	}
	if o.Tau == 0 {
		o.Tau = 1e-3
	}
	if o.v == nil {
		o.v = make([]float64, global.Len())
	}
	out := global.Clone()
	for i := range out.Data {
		// Pseudo-gradient Δ = aggregate − global.
		d := float64(aggregate.Data[i]) - float64(global.Data[i])
		o.v[i] += d * d
		out.Data[i] += float32(o.LR * d / (math.Sqrt(o.v[i]) + o.Tau))
	}
	return out, nil
}
