package fedavg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestFedAvgMatchesReferenceWeightedMean(t *testing.T) {
	alg := FedAvg{}
	st := alg.NewState(3, 3)
	xs := []*tensor.Tensor{
		tensor.FromSlice([]float32{1, 2, 3}),
		tensor.FromSlice([]float32{4, 5, 6}),
		tensor.FromSlice([]float32{7, 8, 9}),
	}
	ws := []float64{1, 2, 3}
	for i, x := range xs {
		if err := st.Accumulate(x, ws[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, total, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("total weight = %v", total)
	}
	want, _ := tensor.WeightedMean(xs, ws)
	d, _ := got.MaxAbsDiff(want)
	if d > 1e-5 {
		t.Fatalf("cumulative != batch: diff %v", d)
	}
	if st.Count() != 3 {
		t.Fatalf("count = %d", st.Count())
	}
}

func TestFedAvgEmptyAndReset(t *testing.T) {
	st := FedAvg{}.NewState(2, 2)
	if _, _, err := st.Result(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty result: %v", err)
	}
	_ = st.Accumulate(tensor.FromSlice([]float32{2, 2}), 1)
	st.Reset()
	if st.Count() != 0 {
		t.Fatal("reset did not clear count")
	}
	if _, _, err := st.Result(); !errors.Is(err, ErrEmpty) {
		t.Fatal("reset state must be empty")
	}
	// Reuse after reset must be exact.
	_ = st.Accumulate(tensor.FromSlice([]float32{5, 7}), 2)
	got, total, err := st.Result()
	if err != nil || total != 2 {
		t.Fatalf("after reset: %v %v", total, err)
	}
	if got.Data[0] != 5 || got.Data[1] != 7 {
		t.Fatalf("stale state leaked: %v", got.Data)
	}
}

func TestFedAvgRejectsBadInput(t *testing.T) {
	st := FedAvg{}.NewState(2, 2)
	if err := st.Accumulate(tensor.New(3), 1); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := st.Accumulate(tensor.New(2), 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := st.Accumulate(tensor.New(2), -1); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// The paper's hierarchical-correctness property: aggregating intermediates
// weighted by their total weights reproduces the flat weighted mean exactly
// (this is what makes leaf→middle→top FedAvg correct, §2.2 + Eq. (1)).
func TestHierarchicalEquivalence(t *testing.T) {
	f := func(vals [6][4]int8, wsRaw [6]uint8, split uint8) bool {
		alg := FedAvg{}
		xs := make([]*tensor.Tensor, 6)
		ws := make([]float64, 6)
		for k := range xs {
			d := make([]float32, 4)
			for i := range d {
				d[i] = float32(vals[k][i]) / 4
			}
			xs[k] = tensor.FromSlice(d)
			ws[k] = float64(wsRaw[k]%9) + 1
		}
		// Flat aggregation.
		flat := alg.NewState(4, 4)
		for k := range xs {
			if err := flat.Accumulate(xs[k], ws[k]); err != nil {
				return false
			}
		}
		flatRes, flatTotal, err := flat.Result()
		if err != nil {
			return false
		}
		// Two leaves split at s, then a parent aggregates the intermediates
		// weighted by their totals.
		s := int(split%5) + 1 // 1..5
		leafA, leafB := alg.NewState(4, 4), alg.NewState(4, 4)
		for k := range xs {
			st := leafA
			if k >= s {
				st = leafB
			}
			if err := st.Accumulate(xs[k], ws[k]); err != nil {
				return false
			}
		}
		parent := alg.NewState(4, 4)
		for _, leaf := range []State{leafA, leafB} {
			if leaf.Count() == 0 {
				continue
			}
			res, total, err := leaf.Result()
			if err != nil {
				return false
			}
			if err := parent.Accumulate(res, total); err != nil {
				return false
			}
		}
		hierRes, hierTotal, err := parent.Result()
		if err != nil {
			return false
		}
		if math.Abs(hierTotal-flatTotal) > 1e-9 {
			return false
		}
		d, err := hierRes.MaxAbsDiff(flatRes)
		return err == nil && d < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulation order does not change the result (commutativity).
func TestAccumulationOrderInvariance(t *testing.T) {
	f := func(vals [5][3]int8, wsRaw [5]uint8, perm uint8) bool {
		alg := FedAvg{}
		n := 5
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		// Simple deterministic shuffle from perm.
		for i := n - 1; i > 0; i-- {
			j := int(perm) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		build := func(idx []int) *tensor.Tensor {
			st := alg.NewState(3, 3)
			for _, k := range idx {
				d := make([]float32, 3)
				for i := range d {
					d[i] = float32(vals[k][i])
				}
				if err := st.Accumulate(tensor.FromSlice(d), float64(wsRaw[k]%7)+1); err != nil {
					return nil
				}
			}
			res, _, err := st.Result()
			if err != nil {
				return nil
			}
			return res
		}
		a := build([]int{0, 1, 2, 3, 4})
		b := build(order)
		if a == nil || b == nil {
			return false
		}
		d, err := a.MaxAbsDiff(b)
		return err == nil && d < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptServerOpt(t *testing.T) {
	g := tensor.FromSlice([]float32{1, 1})
	agg := tensor.FromSlice([]float32{5, 6})
	next, err := Adopt{}.Apply(g, agg)
	if err != nil {
		t.Fatal(err)
	}
	if next.Data[0] != 5 || next.Data[1] != 6 {
		t.Fatalf("adopt = %v", next.Data)
	}
	next.Data[0] = 99
	if agg.Data[0] != 5 {
		t.Fatal("Adopt must not alias the aggregate")
	}
}

func TestFedAdagradMovesTowardAggregate(t *testing.T) {
	o := &FedAdagrad{LR: 0.5, Tau: 1e-3}
	g := tensor.FromSlice([]float32{0, 0})
	agg := tensor.FromSlice([]float32{1, -1})
	prevDist := math.Inf(1)
	for i := 0; i < 20; i++ {
		next, err := o.Apply(g, agg)
		if err != nil {
			t.Fatal(err)
		}
		diff := next.Clone()
		if err := diff.Sub(agg); err != nil {
			t.Fatal(err)
		}
		dist := diff.Norm2()
		if dist >= prevDist {
			t.Fatalf("step %d: distance %v did not shrink from %v", i, dist, prevDist)
		}
		prevDist = dist
		g = next
	}
	if prevDist > 1.0 {
		t.Fatalf("did not approach the aggregate: %v", prevDist)
	}
}

func TestFedAdagradShapeError(t *testing.T) {
	o := &FedAdagrad{}
	if _, err := o.Apply(tensor.New(2), tensor.New(3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// With no momentum memory (β→0 via a first step) and η=1, FedAvgM's first
// step is w + (agg − w) = agg: plain adoption.
func TestFedAvgMFirstStepAdopts(t *testing.T) {
	o := &FedAvgM{Beta: 0.5, LR: 1}
	g := tensor.FromSlice([]float32{1, 2})
	agg := tensor.FromSlice([]float32{5, -6})
	next, err := o.Apply(g, agg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := next.MaxAbsDiff(agg)
	if err != nil || d > 1e-6 {
		t.Fatalf("first FedAvgM step = %v, want the aggregate (d=%v err=%v)", next.Data, d, err)
	}
	if g.Data[0] != 1 || agg.Data[0] != 5 {
		t.Fatal("Apply mutated its inputs")
	}
}

// A repeated pseudo-gradient must compound: with β=0.5 the second step's
// velocity is 1.5×Δ, so FedAvgM overshoots where Adopt would land.
func TestFedAvgMAccumulatesMomentum(t *testing.T) {
	o := &FedAvgM{Beta: 0.5, LR: 1}
	g := tensor.FromSlice([]float32{0})
	step1, err := o.Apply(g, tensor.FromSlice([]float32{1}))
	if err != nil {
		t.Fatal(err)
	}
	if step1.Data[0] != 1 {
		t.Fatalf("step1 = %v, want 1", step1.Data[0])
	}
	// Aggregate again one unit ahead of the new global: Δ = 1 once more,
	// v = 0.5·1 + 1 = 1.5, so w = 1 + 1.5 = 2.5.
	step2, err := o.Apply(step1, tensor.FromSlice([]float32{2}))
	if err != nil {
		t.Fatal(err)
	}
	if step2.Data[0] != 2.5 {
		t.Fatalf("step2 = %v, want 2.5 (momentum not accumulated)", step2.Data[0])
	}
}

func TestFedAvgMShapeError(t *testing.T) {
	o := &FedAvgM{}
	if _, err := o.Apply(tensor.New(2), tensor.New(3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// BenchmarkFedAvgMApply times the ScaleAdd-fused model-install path at the
// ResNet-18 physical vector size — the per-round cost a momentum-enabled
// workload adds over plain adoption.
func BenchmarkFedAvgMApply(b *testing.B) {
	const n = 1 << 16
	o := &FedAvgM{Beta: 0.9, LR: 1}
	g := tensor.New(n)
	agg := tensor.New(n)
	for i := range agg.Data {
		agg.Data[i] = float32(i%13) * 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := o.Apply(g, agg)
		if err != nil {
			b.Fatal(err)
		}
		g = next
	}
}
