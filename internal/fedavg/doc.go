// Package fedavg implements the aggregation algorithms of Eq. (1):
// w_i = f({(w_i^k, A_i^k)}). FedAvg (McMahan et al., 2017) uses
// f = Σ w_i^k c_i^k / T_i with T_i = Σ c_i^k, where the auxiliary
// information A_i^k is the per-client sample count c_i^k.
//
// The State abstraction supports *cumulative* (eager) accumulation — the
// property the paper exploits for eager aggregation (§2.1: "the eager method
// is feasible for FedAvg with cumulative averaging") — and is hierarchical:
// an intermediate aggregate carries its total weight T, so a parent
// aggregating children's outputs weighted by their T values reproduces the
// flat weighted mean exactly (property-tested in fedavg_test.go).
//
// Layer (DESIGN.md): algorithm layer under internal/core — Eq. (1)
// aggregation state plus the ServerOpt model-install extension point.
package fedavg
