package model

import (
	"fmt"

	"repro/internal/tensor"
)

// Spec describes one trainable model.
type Spec struct {
	Name string
	// Params is the true number of float32 parameters.
	Params int
	// PhysScale divides Params to obtain the physical vector length used
	// for in-process arithmetic. 1 means full physical fidelity.
	PhysScale int
	// Layers lists per-layer parameter counts (sums to Params); used by the
	// gateway's serialization pipeline to charge per-tensor overheads.
	Layers []int
}

// Bytes returns the model-update payload size in bytes (4 B per parameter),
// the quantity the paper quotes (ResNet-152 ≈ 232 MB).
func (s Spec) Bytes() uint64 { return uint64(s.Params) * 4 }

// PhysLen returns the physical vector length carrying the arithmetic.
func (s Spec) PhysLen() int {
	if s.PhysScale <= 1 {
		return s.Params
	}
	n := s.Params / s.PhysScale
	if n < 1 {
		n = 1
	}
	return n
}

// NewTensor allocates a zero update vector for this model.
func (s Spec) NewTensor() *tensor.Tensor {
	return tensor.NewVirtual(s.PhysLen(), s.Params)
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s(%.1fMB)", s.Name, float64(s.Bytes())/(1<<20))
}

// resnetLayers builds a plausible per-layer parameter breakdown for a ResNet
// with the given stage widths and block counts. The exact split does not
// matter for any experiment (only the total does); it exists so the
// serialization pipeline can charge realistic per-tensor costs.
func resnetLayers(total int, nLayers int) []int {
	// Geometric-ish growth: later layers hold most parameters, like real
	// ResNets where the 512-channel stage dominates.
	weights := make([]float64, nLayers)
	var sum float64
	for i := range weights {
		w := 1.0
		for j := 0; j < i/(nLayers/4+1); j++ {
			w *= 2.2
		}
		weights[i] = w
		sum += w
	}
	layers := make([]int, nLayers)
	acc := 0
	for i, w := range weights {
		layers[i] = int(float64(total) * w / sum)
		acc += layers[i]
	}
	layers[nLayers-1] += total - acc // absorb rounding
	return layers
}

// The paper's three models. Parameter counts are chosen so the payload sizes
// match the quoted ~44 MB / ~83 MB / ~232 MB (float32).
var (
	// ResNet18 is the mobile-client workload model (Fig. 9(a,b)).
	ResNet18 = Spec{
		Name:      "ResNet-18",
		Params:    11_534_336, // 44 MiB
		PhysScale: 4096,
		Layers:    resnetLayers(11_534_336, 62),
	}
	// ResNet34 appears in the data-plane microbenchmarks (Fig. 7, Fig. 13).
	ResNet34 = Spec{
		Name:      "ResNet-34",
		Params:    21_757_952, // 83 MiB
		PhysScale: 4096,
		Layers:    resnetLayers(21_757_952, 110),
	}
	// ResNet152 is the heavyweight workload model (Fig. 4, 7, 8, 9(c,d)).
	ResNet152 = Spec{
		Name:      "ResNet-152",
		Params:    60_817_408, // 232 MiB
		PhysScale: 4096,
		Layers:    resnetLayers(60_817_408, 514),
	}
	// TinyFL is a synthetic miniature for round-COUNT stress scenarios
	// (traj-100k, million-rounds): a 64-float physical vector and a short
	// layer list make the per-round cost pure round machinery, so a
	// million rounds fit a nightly budget and any per-round memory growth
	// is the signal, not tensor noise. Not part of the paper's zoo (All).
	TinyFL = Spec{
		Name:      "TinyFL",
		Params:    65_536, // 256 KiB payload
		PhysScale: 1024,   // PhysLen 64
		Layers:    resnetLayers(65_536, 4),
	}
)

// All lists the zoo in ascending size order (M1, M2, M3 in Appendix F).
var All = []Spec{ResNet18, ResNet34, ResNet152}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("model: unknown model %q", name)
}
