// Package model defines the model zoo used throughout the paper's
// evaluation: ResNet-18 (~44 MB), ResNet-34 (~83 MB) and ResNet-152
// (~232 MB). A Spec records the true parameter count — which drives every
// data-plane cost in the simulator — and the physical down-scale factor used
// for the real aggregation arithmetic (see internal/tensor).
//
// Layer (DESIGN.md): side quest — the ResNet model zoo with down-scaled
// physical vectors and full-size virtual lengths (see internal/tensor).
package model
