package model

import "testing"

func TestZooSizesMatchPaper(t *testing.T) {
	// The paper quotes ~44 MB, ~83 MB, ~232 MB.
	cases := []struct {
		spec Spec
		mb   float64
	}{
		{ResNet18, 44},
		{ResNet34, 83},
		{ResNet152, 232},
	}
	for _, c := range cases {
		got := float64(c.spec.Bytes()) / (1 << 20)
		if got < c.mb-1 || got > c.mb+1 {
			t.Errorf("%s: %.1f MB, want ~%v MB", c.spec.Name, got, c.mb)
		}
	}
}

func TestLayersSumToParams(t *testing.T) {
	for _, s := range All {
		sum := 0
		for _, l := range s.Layers {
			sum += l
		}
		if sum != s.Params {
			t.Errorf("%s: layers sum %d != params %d", s.Name, sum, s.Params)
		}
		for i, l := range s.Layers {
			if l < 0 {
				t.Errorf("%s: layer %d negative (%d)", s.Name, i, l)
			}
		}
	}
}

func TestPhysLenScaling(t *testing.T) {
	for _, s := range All {
		pl := s.PhysLen()
		if pl < 1 {
			t.Errorf("%s: physical length %d", s.Name, pl)
		}
		if s.PhysScale > 1 && pl >= s.Params {
			t.Errorf("%s: physical length not scaled down (%d)", s.Name, pl)
		}
	}
	full := Spec{Name: "x", Params: 100, PhysScale: 1}
	if full.PhysLen() != 100 {
		t.Errorf("unscaled spec should have full physical length")
	}
	tiny := Spec{Name: "y", Params: 10, PhysScale: 100}
	if tiny.PhysLen() != 1 {
		t.Errorf("physical length must floor at 1, got %d", tiny.PhysLen())
	}
}

func TestNewTensorGeometry(t *testing.T) {
	u := ResNet152.NewTensor()
	if u.Len() != ResNet152.PhysLen() {
		t.Fatalf("physical %d", u.Len())
	}
	if u.VirtualBytes() != ResNet152.Bytes() {
		t.Fatalf("virtual bytes %d != %d", u.VirtualBytes(), ResNet152.Bytes())
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ResNet-34")
	if err != nil || s.Name != "ResNet-34" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("VGG-16"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestStringIncludesSize(t *testing.T) {
	if got := ResNet18.String(); got != "ResNet-18(44.0MB)" {
		t.Fatalf("String = %q", got)
	}
}
