// Package perfrec is the repo's perf-trajectory record format: a versioned
// JSON schema for per-run performance measurements (real wall clock,
// simulated time, rounds, heap allocations, peak heap, time-to-accuracy
// milestones, placement decision time) plus baseline load/compare with
// tolerance-based regression verdicts. cmd/liflbench emits these files
// (BENCH_*.json at the repo root), CI gates on Compare against the
// committed BENCH_baseline.json, and bench_test.go reports the same
// quantities via testing.B — one schema for every way the repo measures
// itself.
//
// The package is a leaf: stdlib only, no simulation imports, so any layer
// (harness, cmd, tests, future tooling) can depend on it.
//
// Layer (DESIGN.md): stdlib-only leaf of the perf-trajectory subsystem
// (cmd/liflbench → internal/harness → this schema). Records carry the
// run's worker count; Compare flags a baseline/current worker mismatch
// instead of gating wall clock across incomparable pool sizes.
package perfrec
