package perfrec

import (
	"math"
	"strings"
	"testing"
)

func sampleSuite() *Suite {
	return &Suite{
		Tool:      "liflbench",
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Runs: []Run{
			{
				Scenario: "fig9-r18", Label: "lifl", Class: "long", Repeats: 3,
				WallNS: 420_000_000, SimNS: int64(9.6 * 3600e9), Rounds: 273,
				Reached: true, Mallocs: 305_000, AllocBytes: 2_100_000_000,
				PeakHeapBytes: 96_000_000, RoundWallMaxNS: 4_000_000,
				Milestones: []Milestone{
					{Accuracy: 0.5, Round: 80, SimNS: int64(2.7 * 3600e9), CPUNS: int64(1.1 * 3600e9)},
					{Accuracy: 0.7, Round: 273, SimNS: int64(9.6 * 3600e9), CPUNS: int64(4.0 * 3600e9)},
				},
			},
			{
				Scenario: "fig8-ablation", Label: "+1+2/60", Class: "short", Repeats: 5,
				WallNS: 6_000_000, SimNS: 14_000_000_000, Rounds: 1,
				Mallocs: 21_000, AllocBytes: 180_000_000,
			},
			{
				Scenario: "placement-10k", Class: "short", Repeats: 3,
				WallNS: 120_000, SimNS: 0, Mallocs: 40, AllocBytes: 1_600_000,
				PlacementUS: 120,
			},
		},
	}
}

// TestRoundTrip is the trajectory-format contract: encode → decode →
// compare against itself must reproduce every field and yield zero
// regressions at any tolerance.
func TestRoundTrip(t *testing.T) {
	s := sampleSuite()
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if len(got.Runs) != len(s.Runs) {
		t.Fatalf("runs = %d, want %d", len(got.Runs), len(s.Runs))
	}
	for i, want := range s.Runs {
		r, ok := got.Find(want.Key())
		if !ok {
			t.Fatalf("run %d (%s) lost in round trip", i, want.Key())
		}
		if r.WallNS != want.WallNS || r.SimNS != want.SimNS || r.Rounds != want.Rounds ||
			r.Reached != want.Reached || r.Mallocs != want.Mallocs ||
			r.AllocBytes != want.AllocBytes || r.PeakHeapBytes != want.PeakHeapBytes ||
			r.PlacementUS != want.PlacementUS || len(r.Milestones) != len(want.Milestones) {
			t.Fatalf("run %s mutated in round trip:\n got %+v\nwant %+v", want.Key(), r, want)
		}
		for j, m := range want.Milestones {
			if r.Milestones[j] != m {
				t.Fatalf("run %s milestone %d mutated: got %+v want %+v", want.Key(), j, r.Milestones[j], m)
			}
		}
	}
	for _, tol := range []float64{0.01, 0.15, 1.0} {
		if regs := Regressions(Compare(s, got, Options{Tolerance: tol})); len(regs) != 0 {
			t.Fatalf("self-compare at tolerance %g reported regressions: %v", tol, regs)
		}
	}
}

// TestCompareFlagsSlowdown doctors a 2× wall slowdown and a 2× alloc
// growth; both must be flagged, and the untouched runs must stay clean.
func TestCompareFlagsSlowdown(t *testing.T) {
	base := sampleSuite()
	cur := sampleSuite()
	for i := range cur.Runs {
		if cur.Runs[i].Scenario == "fig9-r18" {
			cur.Runs[i].WallNS *= 2
			cur.Runs[i].Mallocs *= 2
		}
	}
	regs := Regressions(Compare(base, cur, Options{Tolerance: 0.15}))
	metrics := map[string]bool{}
	for _, v := range regs {
		if !strings.HasPrefix(v.Key, "fig9-r18") {
			t.Fatalf("unexpected regression on %s: %+v", v.Key, v)
		}
		metrics[v.Metric] = true
	}
	if !metrics["wall_ns"] || !metrics["mallocs"] {
		t.Fatalf("2x slowdown not flagged on wall_ns+mallocs; got %v", regs)
	}
}

// TestCompareWorkerMismatch: changing the intra-run worker pool must not
// let a parallel run gate wall-clock metrics against a serial baseline (or
// vice versa) — the comparison emits an explicit "workers" mismatch
// verdict, keeps the deterministic gates, and skips the real-clock family.
func TestCompareWorkerMismatch(t *testing.T) {
	base := sampleSuite()
	cur := sampleSuite()
	for i := range cur.Runs {
		if cur.Runs[i].Scenario == "fig9-r18" {
			cur.Runs[i].Workers = 8          // baseline's zero means serial
			cur.Runs[i].WallNS /= 4          // the "speedup" that must not gate
			cur.Runs[i].Mallocs *= 2         // deterministic gates still fire
			cur.Runs[i].PeakHeapBytes *= 100 // real-clock family is skipped
		}
	}
	regs := Regressions(Compare(base, cur, Options{Tolerance: 0.15}))
	metrics := map[string]bool{}
	for _, v := range regs {
		if !strings.HasPrefix(v.Key, "fig9-r18") {
			t.Fatalf("unexpected regression on %s: %+v", v.Key, v)
		}
		metrics[v.Metric] = true
	}
	if !metrics["workers"] {
		t.Fatalf("worker-count mismatch not flagged: %v", regs)
	}
	if !metrics["mallocs"] {
		t.Fatalf("deterministic gates must survive a worker mismatch: %v", regs)
	}
	if metrics["wall_ns"] || metrics["peak_heap_bytes"] {
		t.Fatalf("real-clock metrics gated across a worker mismatch: %v", regs)
	}
	// Matching pools (after the legacy-zero normalization) compare as before.
	base2 := sampleSuite()
	cur2 := sampleSuite()
	for i := range base2.Runs {
		base2.Runs[i].Workers = 8
		cur2.Runs[i].Workers = 8
	}
	if regs := Regressions(Compare(base2, cur2, Options{Tolerance: 0.15})); len(regs) != 0 {
		t.Fatalf("identical suites at matching worker counts regressed: %v", regs)
	}
}

// TestCompareNoiseFloor: wall jitter on a sub-floor run must not gate,
// while its deterministic metrics still do.
func TestCompareNoiseFloor(t *testing.T) {
	base := sampleSuite()
	cur := sampleSuite()
	for i := range cur.Runs {
		if cur.Runs[i].Scenario == "fig8-ablation" {
			cur.Runs[i].WallNS *= 10 // 6 ms -> 60 ms: below the 50 ms baseline floor
			cur.Runs[i].AllocBytes *= 3
		}
	}
	regs := Regressions(Compare(base, cur, Options{Tolerance: 0.15}))
	if len(regs) != 1 || regs[0].Metric != "alloc_bytes" {
		t.Fatalf("want exactly one alloc_bytes regression (wall under noise floor), got %v", regs)
	}
	// With the floor disabled the wall jump gates too.
	regs = Regressions(Compare(base, cur, Options{Tolerance: 0.15, MinWallNS: -1}))
	found := false
	for _, v := range regs {
		if v.Metric == "wall_ns" {
			found = true
		}
	}
	if !found {
		t.Fatalf("floor disabled but wall_ns regression not flagged: %v", regs)
	}
}

// TestCompareMissingRun: a baseline run absent from the current suite is a
// regression (the trajectory must not silently shrink).
func TestCompareMissingRun(t *testing.T) {
	base := sampleSuite()
	cur := sampleSuite()
	cur.Runs = cur.Runs[:1]
	regs := Regressions(Compare(base, cur, Options{}))
	missing := 0
	for _, v := range regs {
		if v.Metric == "missing" {
			missing++
		}
	}
	if missing != 2 {
		t.Fatalf("want 2 missing-run regressions, got %d (%v)", missing, regs)
	}
	// FilterScenarios is the sanctioned way to run a subset.
	filtered := FilterScenarios(base, []string{base.Runs[0].Scenario})
	if regs := Regressions(Compare(filtered, cur, Options{})); len(regs) != 0 {
		t.Fatalf("filtered baseline still regresses: %v", regs)
	}
}

// TestTolerance checks the gate edges: growth inside tolerance passes,
// beyond it fails, and improvements never gate.
func TestTolerance(t *testing.T) {
	base := &Suite{Runs: []Run{{Scenario: "s", WallNS: 1_000_000_000, SimNS: 1000, Mallocs: 1000, AllocBytes: 1000}}}
	mk := func(scale float64) *Suite {
		return &Suite{Runs: []Run{{
			Scenario: "s",
			WallNS:   int64(1_000_000_000 * scale),
			SimNS:    int64(1000 * scale),
			Mallocs:  uint64(1000 * scale),

			AllocBytes: uint64(1000 * scale),
		}}}
	}
	opt := Options{Tolerance: 0.15} // wall limit defaults to 1.60
	if regs := Regressions(Compare(base, mk(1.10), opt)); len(regs) != 0 {
		t.Fatalf("+10%% inside tolerance flagged: %v", regs)
	}
	if regs := Regressions(Compare(base, mk(0.5), opt)); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	regs := Regressions(Compare(base, mk(2.0), opt))
	if len(regs) < 4 {
		t.Fatalf("2x growth should flag all four gated metrics, got %v", regs)
	}
}

func TestDecodeRejectsBadSchema(t *testing.T) {
	for _, bad := range []string{
		`{"schema": 0, "runs": []}`,
		`{"schema": 99, "runs": []}`,
		`{"runs": []}`,
		`not json`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Fatalf("Decode(%q) accepted", bad)
		}
	}
}

func TestVerdictRatio(t *testing.T) {
	if r := (Verdict{Baseline: 0, Current: 0}).Ratio(); r != 1 {
		t.Fatalf("0/0 ratio = %g, want 1", r)
	}
	if r := (Verdict{Baseline: 0, Current: 5}).Ratio(); r < 1e9 || math.IsNaN(r) {
		t.Fatalf("5/0 ratio = %g, want huge finite", r)
	}
	if r := (Verdict{Baseline: 2, Current: 3}).Ratio(); r != 1.5 {
		t.Fatalf("ratio = %g, want 1.5", r)
	}
}

// TestCompareGatesConvergence: a run that stops reaching its target is a
// regression even when every cost metric shrinks; rounds drift beyond
// tolerance gates too.
func TestCompareGatesConvergence(t *testing.T) {
	base := &Suite{Runs: []Run{{Scenario: "s", Rounds: 100, Reached: true, WallNS: 1, SimNS: 1000, Mallocs: 10, AllocBytes: 10}}}
	cur := &Suite{Runs: []Run{{Scenario: "s", Rounds: 100, Reached: false, WallNS: 1, SimNS: 900, Mallocs: 9, AllocBytes: 9}}}
	regs := Regressions(Compare(base, cur, Options{Tolerance: 0.15}))
	if len(regs) != 1 || regs[0].Metric != "reached" {
		t.Fatalf("convergence loss not flagged: %v", regs)
	}
	cur = &Suite{Runs: []Run{{Scenario: "s", Rounds: 130, Reached: true, WallNS: 1, SimNS: 1000, Mallocs: 10, AllocBytes: 10}}}
	regs = Regressions(Compare(base, cur, Options{Tolerance: 0.15}))
	if len(regs) != 1 || regs[0].Metric != "rounds" {
		t.Fatalf("+30%% rounds not flagged: %v", regs)
	}
	// A never-reaching baseline (injected microbenchmarks) does not gate
	// on Reached at all.
	base.Runs[0].Reached = false
	cur = &Suite{Runs: []Run{{Scenario: "s", Rounds: 100, Reached: false, WallNS: 1, SimNS: 1000, Mallocs: 10, AllocBytes: 10}}}
	if regs := Regressions(Compare(base, cur, Options{Tolerance: 0.15})); len(regs) != 0 {
		t.Fatalf("unreached baseline gated: %v", regs)
	}
}

// TestExactToleranceKeepsWallHeadroom: -tolerance 0 (exact deterministic
// gate) must not cascade into exact wall-clock equality.
func TestExactToleranceKeepsWallHeadroom(t *testing.T) {
	base := &Suite{Runs: []Run{{Scenario: "s", WallNS: 1_000_000_000, SimNS: 1000, Mallocs: 1000, AllocBytes: 1000}}}
	cur := &Suite{Runs: []Run{{Scenario: "s", WallNS: 1_100_000_000, SimNS: 1000, Mallocs: 1000, AllocBytes: 1000}}}
	if regs := Regressions(Compare(base, cur, Options{Tolerance: -1})); len(regs) != 0 {
		t.Fatalf("10%% wall jitter gated under exact deterministic tolerance: %v", regs)
	}
	cur.Runs[0].Mallocs = 1001
	regs := Regressions(Compare(base, cur, Options{Tolerance: -1}))
	if len(regs) != 1 || regs[0].Metric != "mallocs" {
		t.Fatalf("exact tolerance missed +1 malloc: %v", regs)
	}
}

// TestPlacementNoiseFloor: sub-millisecond placement measurements must not
// gate on ratio alone, but a real cliff above the floor must.
func TestPlacementNoiseFloor(t *testing.T) {
	base := &Suite{Runs: []Run{{Scenario: "placement-10k", PlacementUS: 8}}}
	cur := &Suite{Runs: []Run{{Scenario: "placement-10k", PlacementUS: 80}}}
	if regs := Regressions(Compare(base, cur, Options{})); len(regs) != 0 {
		t.Fatalf("10x on an 8 us measurement gated below the noise floor: %v", regs)
	}
	cur.Runs[0].PlacementUS = 5000
	regs := Regressions(Compare(base, cur, Options{}))
	if len(regs) != 1 || regs[0].Metric != "placement_us" {
		t.Fatalf("5 ms placement cliff not flagged: %v", regs)
	}
}

// TestFilterClass: narrowing a baseline by its own class tags keeps
// deleted-scenario detection alive in subset comparisons.
func TestFilterClass(t *testing.T) {
	base := sampleSuite() // one long entry, two short
	short := FilterClass(base, "short")
	if len(short.Runs) != 2 {
		t.Fatalf("short filter kept %d runs, want 2", len(short.Runs))
	}
	// A short-class baseline entry whose scenario was deleted from the
	// registry is absent from the current suite -> missing regression.
	cur := &Suite{Runs: []Run{}}
	for _, r := range short.Runs {
		if r.Scenario != "fig8-ablation" {
			cur.Runs = append(cur.Runs, r)
		}
	}
	regs := Regressions(Compare(short, cur, Options{}))
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("deleted short scenario not flagged missing: %v", regs)
	}
}

// TestCompareRSSBaselinePredatesFields: the RSS-trajectory metrics were
// schema additions, not a schema bump — a baseline recorded before them
// (FinalHeapBytes == 0) must never fail the gate. The comparison emits an
// ungated "new metric" verdict so the coverage gap is visible in the
// output, and the gate turns on once the baseline is refreshed.
func TestCompareRSSBaselinePredatesFields(t *testing.T) {
	base := sampleSuite()
	cur := sampleSuite()
	for i := range cur.Runs {
		if cur.Runs[i].Scenario == "fig9-r18" {
			cur.Runs[i].FinalHeapBytes = 4 << 20
			cur.Runs[i].HeapSlopeBPS = 1e9 // wildly climbing — still not gated
		}
	}
	verdicts := Compare(base, cur, Options{})
	if regs := Regressions(verdicts); len(regs) != 0 {
		t.Fatalf("baseline without RSS fields produced regressions: %v", regs)
	}
	found := false
	for _, v := range verdicts {
		if v.Metric == "final_heap_bytes" {
			found = true
			if v.Limit != 0 || v.Regressed {
				t.Fatalf("new-metric verdict should be ungated: %+v", v)
			}
			if !strings.Contains(v.String(), "logged, not gated") {
				t.Fatalf("new-metric verdict not marked as ungated: %s", v)
			}
		}
		if v.Metric == "heap_slope_bps" {
			t.Fatalf("slope gated without a baseline slope: %+v", v)
		}
	}
	if !found {
		t.Fatal("new final_heap_bytes metric not surfaced in verdicts")
	}
}

// TestCompareRSSGates: with both sides carrying the fields, final heap
// ratio-gates like the other real-clock metrics and the slope gates
// absolutely (grew by more than the slack AND climbs faster than the
// slack outright) — but only when the baseline run is long enough for a
// slope to mean anything.
func TestCompareRSSGates(t *testing.T) {
	base := sampleSuite()
	cur := sampleSuite()
	for _, s := range []*Suite{base, cur} {
		for i := range s.Runs {
			if s.Runs[i].Scenario == "fig9-r18" {
				s.Runs[i].WallNS = 3 * DefaultMinSlopeWallNS
				s.Runs[i].FinalHeapBytes = 4 << 20
				s.Runs[i].HeapSlopeBPS = 10_000 // ~flat
			}
		}
	}
	if regs := Regressions(Compare(base, cur, Options{})); len(regs) != 0 {
		t.Fatalf("identical RSS trajectories regressed: %v", regs)
	}
	for i := range cur.Runs {
		if cur.Runs[i].Scenario == "fig9-r18" {
			cur.Runs[i].FinalHeapBytes = 400 << 20 // 100x the baseline
			cur.Runs[i].HeapSlopeBPS = 3 * DefaultHeapSlopeSlackBPS
		}
	}
	metrics := map[string]bool{}
	for _, v := range Regressions(Compare(base, cur, Options{})) {
		metrics[v.Metric] = true
	}
	if !metrics["final_heap_bytes"] || !metrics["heap_slope_bps"] {
		t.Fatalf("RSS growth not flagged; regressed metrics: %v", metrics)
	}
	// A short baseline run (wall below the slope floor) keeps the heap
	// gate but skips the slope verdict: slope noise on a 100 ms run is not
	// a memory leak signal.
	for _, s := range []*Suite{base, cur} {
		for i := range s.Runs {
			if s.Runs[i].Scenario == "fig9-r18" {
				s.Runs[i].WallNS = DefaultMinSlopeWallNS / 4
			}
		}
	}
	for _, v := range Compare(base, cur, Options{}) {
		if v.Metric == "heap_slope_bps" {
			t.Fatalf("slope verdict emitted for a sub-floor run: %+v", v)
		}
	}
}
