package perfrec

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion is bumped on any incompatible record-shape change. Decoders
// accept files with Schema in [1, SchemaVersion].
const SchemaVersion = 1

// Milestone records the first crossing of one accuracy level: the
// time-to-accuracy trajectory the paper's Fig. 9 reports, in machine form.
// Sim/CPU times are simulated (deterministic for a fixed seed), so these
// fields compare exactly across machines.
type Milestone struct {
	Accuracy float64 `json:"accuracy"`
	Round    int     `json:"round"`
	SimNS    int64   `json:"sim_ns"`
	CPUNS    int64   `json:"cpu_ns"`
}

// Run is one measured run: a single expanded scenario point (or a
// control-plane microbenchmark like placement), best-of-Repeats.
//
// Two families of fields with different comparison semantics:
//   - real-clock fields (WallNS, Mallocs, AllocBytes, PeakHeapBytes,
//     PlacementUS) measure the implementation and vary with hardware —
//     Mallocs/AllocBytes are near-deterministic for deterministic code
//     (within a few counts of measurement-goroutine jitter) and gate
//     tightly even across machines; wall times need headroom.
//   - simulated fields (SimNS, Rounds, Reached, Milestones) measure the
//     modelled behaviour and are bit-deterministic for a fixed seed: any
//     drift means the model changed, not the hardware.
type Run struct {
	Scenario string `json:"scenario"`
	Label    string `json:"label,omitempty"`
	// Class is the scenario's bench scale class ("short" runs gate PR CI,
	// "long" runs gate the nightly).
	Class   string `json:"class,omitempty"`
	Repeats int    `json:"repeats,omitempty"`
	// Workers is the intra-run worker pool the run executed with
	// (core.RunConfig.Workers; 0 is legacy shorthand for 1 — records
	// predate the knob). Deterministic metrics are worker-invariant, but
	// wall-clock ones are not: Compare refuses to gate real-clock metrics
	// across a worker-count mismatch instead of silently passing a
	// parallel run off as a serial speedup.
	Workers int `json:"workers,omitempty"`

	WallNS        int64  `json:"wall_ns"`
	SimNS         int64  `json:"sim_ns"`
	Rounds        int    `json:"rounds"`
	Reached       bool   `json:"reached"`
	Mallocs       uint64 `json:"mallocs"`
	AllocBytes    uint64 `json:"alloc_bytes"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
	// The RSS-over-time channels (records since schema additions in PR 7;
	// absent in older baselines, which Compare logs but never gates):
	// FinalHeapBytes is the live heap at run end — for a bounded-memory
	// run it should match the peak, while a leak shows final ≈ peak ≫
	// start; HeapSlopeBPS is the least-squares slope of the sampled heap
	// trajectory in bytes/second — the flat-RSS contract in one number.
	// FinalHeapBytes > 0 marks the presence of both.
	FinalHeapBytes uint64  `json:"final_heap_bytes,omitempty"`
	HeapSlopeBPS   float64 `json:"heap_slope_bps,omitempty"`
	// Round wall stats break the run's real time down by simulation round:
	// total is the loop time excluding setup/teardown, max is the slowest
	// round (a latency-shaped signal the run-level wall can't show).
	RoundWallTotalNS int64 `json:"round_wall_total_ns,omitempty"`
	RoundWallMaxNS   int64 `json:"round_wall_max_ns,omitempty"`
	// PlacementUS is the §6.1 placement-decision microbenchmark (µs per
	// full decision), set only on the placement record.
	PlacementUS float64 `json:"placement_us,omitempty"`

	Milestones []Milestone `json:"milestones,omitempty"`
}

// Key identifies a run across suites: scenario name plus expansion label.
func (r Run) Key() string {
	if r.Label == "" {
		return r.Scenario
	}
	return r.Scenario + "/" + r.Label
}

// Suite is one emitted BENCH_*.json file.
type Suite struct {
	Schema    int    `json:"schema"`
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	// Note is free-form provenance ("PR 3 trajectory", "nightly 2026-07-30").
	Note string `json:"note,omitempty"`
	Runs []Run  `json:"runs"`
}

// Sort orders runs by key so emitted files diff cleanly.
func (s *Suite) Sort() {
	sort.Slice(s.Runs, func(i, j int) bool { return s.Runs[i].Key() < s.Runs[j].Key() })
}

// Find returns the run with the given key, if present.
func (s *Suite) Find(key string) (Run, bool) {
	for _, r := range s.Runs {
		if r.Key() == key {
			return r, true
		}
	}
	return Run{}, false
}

// Encode renders the suite as stable, human-diffable JSON.
func Encode(s *Suite) ([]byte, error) {
	if s.Schema == 0 {
		s.Schema = SchemaVersion
	}
	s.Sort()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a suite and validates its schema version.
func Decode(data []byte) (*Suite, error) {
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perfrec: %w", err)
	}
	if s.Schema < 1 || s.Schema > SchemaVersion {
		return nil, fmt.Errorf("perfrec: unsupported schema version %d (this build reads 1..%d)", s.Schema, SchemaVersion)
	}
	return &s, nil
}

// Load reads and decodes a suite file.
func Load(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Save encodes and writes the suite.
func (s *Suite) Save(path string) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Options tunes Compare.
type Options struct {
	// Tolerance is the allowed fractional growth for deterministic metrics
	// (mallocs, alloc bytes, simulated time, rounds): current >
	// baseline×(1+Tolerance) is a regression. Zero means DefaultTolerance;
	// negative means exact equality (no headroom).
	Tolerance float64
	// WallTolerance is the allowed fractional growth for real-clock metrics
	// (wall time, peak heap, placement µs), which carry scheduler and
	// hardware noise — especially against a baseline recorded on a different
	// machine. Zero means 4×Tolerance; negative means exact equality.
	WallTolerance float64
	// MinWallNS is the wall-time noise floor: runs whose baseline wall is
	// below it skip wall-clock verdicts (a 6 ms cell's jitter says nothing).
	// Zero means DefaultMinWallNS; negative disables the floor.
	MinWallNS int64
}

// Comparison defaults.
const (
	DefaultTolerance = 0.15
	DefaultMinWallNS = int64(50_000_000) // 50 ms
	// DefaultMinPlacementUS is the absolute noise floor for the placement
	// microbenchmark: sub-millisecond decisions carry scheduler jitter
	// bigger than any ratio headroom.
	DefaultMinPlacementUS = 1000.0 // 1 ms
	// DefaultHeapSlopeSlackBPS is the absolute slack on the heap-slope
	// gate: GC sawtooth phase alone can tilt a short window by a few
	// MiB/s, so the slope regresses only when it exceeds the baseline by
	// more than this AND exceeds it outright. A real per-round leak at a
	// million rounds dwarfs it.
	DefaultHeapSlopeSlackBPS = 4.0 * (1 << 20) // 4 MiB/s
	// DefaultMinSlopeWallNS is the wall floor for slope verdicts: a slope
	// fitted over fewer than ~2 s of samples measures GC phase, not the
	// trajectory.
	DefaultMinSlopeWallNS = int64(2_000_000_000)
)

func (o Options) withDefaults() Options {
	switch {
	case o.Tolerance < 0:
		o.Tolerance = 0 // exact-equality gate
	case o.Tolerance == 0:
		o.Tolerance = DefaultTolerance
	}
	switch {
	case o.WallTolerance < 0:
		o.WallTolerance = 0
	case o.WallTolerance == 0:
		o.WallTolerance = 4 * o.Tolerance
		if o.WallTolerance == 0 {
			// Exact deterministic gating must not cascade into exact
			// wall-clock gating — real time is never bit-identical.
			o.WallTolerance = 4 * DefaultTolerance
		}
	}
	if o.MinWallNS == 0 {
		o.MinWallNS = DefaultMinWallNS
	}
	return o
}

// Verdict is one metric comparison on one run key. Regressed is set when
// Current exceeds Baseline by more than the metric's tolerance (all gated
// metrics are lower-is-better), or when a baseline run is missing from the
// current suite entirely (Metric "missing").
type Verdict struct {
	Key      string
	Metric   string
	Baseline float64
	Current  float64
	// Limit is the allowed Current/Baseline ratio (1 + tolerance).
	Limit     float64
	Regressed bool
}

// Ratio returns Current/Baseline (Inf when baseline is zero and current
// is not).
func (v Verdict) Ratio() float64 {
	if v.Baseline == 0 {
		if v.Current == 0 {
			return 1
		}
		return float64(int64(1) << 62) // effectively Inf, JSON-safe
	}
	return v.Current / v.Baseline
}

func (v Verdict) String() string {
	if v.Metric == "missing" {
		return fmt.Sprintf("%-40s missing from current suite", v.Key)
	}
	if v.Limit == 0 && !v.Regressed {
		return fmt.Sprintf("%-40s %-12s %14s -> %14.0f  (baseline predates metric; logged, not gated)",
			v.Key, v.Metric, "-", v.Current)
	}
	mark := "ok"
	if v.Regressed {
		mark = "REGRESSED"
	}
	return fmt.Sprintf("%-40s %-12s %14.0f -> %14.0f  (%.3fx, limit %.2fx)  %s",
		v.Key, v.Metric, v.Baseline, v.Current, v.Ratio(), v.Limit, mark)
}

// Compare evaluates every baseline run against the current suite and
// returns one verdict per gated metric. Runs present only in the current
// suite are new coverage, not verdicts; runs present only in the baseline
// yield a "missing" regression (the trajectory must never silently shrink —
// pre-filter the baseline when intentionally running a subset).
func Compare(baseline, current *Suite, opt Options) []Verdict {
	opt = opt.withDefaults()
	var out []Verdict
	for _, base := range baseline.Runs {
		cur, ok := current.Find(base.Key())
		if !ok {
			out = append(out, Verdict{Key: base.Key(), Metric: "missing", Regressed: true})
			continue
		}
		out = append(out, compareRun(base, cur, opt)...)
	}
	return out
}

func compareRun(base, cur Run, opt Options) []Verdict {
	var out []Verdict
	tight := 1 + opt.Tolerance
	loose := 1 + opt.WallTolerance
	add := func(metric string, b, c float64, limit float64) {
		out = append(out, Verdict{
			Key: base.Key(), Metric: metric,
			Baseline: b, Current: c, Limit: limit,
			Regressed: c > b*limit,
		})
	}
	// Deterministic metrics: tight gate, meaningful across machines.
	add("mallocs", float64(base.Mallocs), float64(cur.Mallocs), tight)
	add("alloc_bytes", float64(base.AllocBytes), float64(cur.AllocBytes), tight)
	add("sim_ns", float64(base.SimNS), float64(cur.SimNS), tight)
	add("rounds", float64(base.Rounds), float64(cur.Rounds), tight)
	// Convergence is binary: a run that used to reach its accuracy target
	// and no longer does is a model regression even if every cost metric
	// shrank (e.g. capped by MaxRounds under the sim_ns tolerance).
	if base.Reached {
		out = append(out, Verdict{
			Key: base.Key(), Metric: "reached",
			Baseline: 1, Current: b2f(cur.Reached), Limit: 1,
			Regressed: !cur.Reached,
		})
	}
	// Worker-count mismatch: wall-clock comparisons are meaningless across
	// different intra-run pools (8 workers "beating" the serial baseline is
	// not a perf win). Emit an explicit mismatch verdict — the trajectory
	// needs a fresh baseline, not a silent pass — and gate only the
	// deterministic, worker-invariant metrics above.
	if workersOf(base) != workersOf(cur) {
		out = append(out, Verdict{
			Key: base.Key(), Metric: "workers",
			Baseline: float64(workersOf(base)), Current: float64(workersOf(cur)),
			Limit: 1, Regressed: true,
		})
		return out
	}
	// Real-clock metrics: loose gate, and a noise floor on wall time.
	if opt.MinWallNS < 0 || base.WallNS >= opt.MinWallNS {
		add("wall_ns", float64(base.WallNS), float64(cur.WallNS), loose)
	}
	if base.PeakHeapBytes > 0 && cur.PeakHeapBytes > 0 {
		add("peak_heap_bytes", float64(base.PeakHeapBytes), float64(cur.PeakHeapBytes), loose)
	}
	// RSS-trajectory metrics. A baseline predating the fields (schema
	// additions, not a bump: FinalHeapBytes == 0 marks their absence) must
	// not fail the gate — emit an ungated "new metric" verdict so the
	// operator sees the coverage gap, and refresh the baseline to close it.
	if cur.FinalHeapBytes > 0 && base.FinalHeapBytes == 0 {
		out = append(out, Verdict{
			Key: base.Key(), Metric: "final_heap_bytes",
			Baseline: 0, Current: float64(cur.FinalHeapBytes), Limit: 0,
		})
	}
	if base.FinalHeapBytes > 0 && cur.FinalHeapBytes > 0 {
		add("final_heap_bytes", float64(base.FinalHeapBytes), float64(cur.FinalHeapBytes), loose)
		if opt.MinWallNS < 0 || base.WallNS >= DefaultMinSlopeWallNS {
			// The slope gates absolutely, not by ratio: a flat baseline is
			// ~0 B/s (any ratio of it is meaningless) and GC phase wobbles
			// both signs, so regression means "grew by more than the slack
			// AND climbs faster than the slack outright".
			v := Verdict{
				Key: base.Key(), Metric: "heap_slope_bps",
				Baseline: base.HeapSlopeBPS, Current: cur.HeapSlopeBPS, Limit: loose,
			}
			v.Regressed = cur.HeapSlopeBPS > base.HeapSlopeBPS+DefaultHeapSlopeSlackBPS &&
				cur.HeapSlopeBPS > DefaultHeapSlopeSlackBPS
			out = append(out, v)
		}
	}
	if base.PlacementUS > 0 {
		// Ratio-gated like the other real-clock metrics, but with an
		// absolute noise floor: the decision currently takes single-digit
		// µs, where one GC pause across all best-of-N trials can exceed any
		// ratio headroom. Below DefaultMinPlacementUS the ratio cannot
		// regress the gate; the §6.1 paper bound (17 ms) stays enforced by
		// the CI placement smoke benchmark regardless.
		v := Verdict{
			Key: base.Key(), Metric: "placement_us",
			Baseline: base.PlacementUS, Current: cur.PlacementUS, Limit: loose,
		}
		v.Regressed = cur.PlacementUS > base.PlacementUS*loose && cur.PlacementUS > DefaultMinPlacementUS
		out = append(out, v)
	}
	return out
}

// workersOf normalizes the legacy zero (records written before the Workers
// field existed, which all ran serially) to 1.
func workersOf(r Run) int {
	if r.Workers < 1 {
		return 1
	}
	return r.Workers
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Regressions filters a verdict list down to the failures.
func Regressions(vs []Verdict) []Verdict {
	var out []Verdict
	for _, v := range vs {
		if v.Regressed {
			out = append(out, v)
		}
	}
	return out
}

// FilterClass returns a copy of the suite keeping only runs tagged with
// the given scale class. Filtering the baseline by its OWN class tags (not
// by the current registry's names) is what lets a deleted registry entry
// still surface as a "missing" regression in a -short comparison.
func FilterClass(s *Suite, class string) *Suite {
	out := *s
	out.Runs = nil
	for _, r := range s.Runs {
		if r.Class == class {
			out.Runs = append(out.Runs, r)
		}
	}
	return &out
}

// FilterScenarios returns a copy of the suite keeping only runs whose
// Scenario is in names — how liflbench narrows a full baseline to an
// explicitly requested subset before comparing.
func FilterScenarios(s *Suite, names []string) *Suite {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	out := *s
	out.Runs = nil
	for _, r := range s.Runs {
		if keep[r.Scenario] {
			out.Runs = append(out.Runs, r)
		}
	}
	return &out
}
