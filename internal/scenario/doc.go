// Package scenario is the declarative workload layer of the reproduction:
// a Scenario names a complete experimental setting — system under test,
// model, population size and class mix, failure model, and scale knobs —
// plus the sweep axes the paper's figures iterate over (systems, ablation
// flag variants, injected load levels, MC values, seeds). A Scenario
// expands into concrete core.RunConfigs, one per point of the cross
// product, each fully independent (its own seed-derived randomness, its
// own engine once run), so a harness can fan them across workers without
// any cross-run coupling.
//
// The package also keeps a named registry: the paper's §6.2 workloads
// (Fig. 9 ResNet-18/152, the Fig. 8 orchestration-ablation grid, the
// Appendix E MC sweep) and the roadmap's scale scenarios (million-client
// populations on the streaming selector, the geo multi-cell family with
// its cells/quorum axes) are registry entries, not bespoke loops in
// internal/experiments. Registering a duplicate name fails loudly;
// Replace overwrites deliberately.
//
// Layer (DESIGN.md): the declarative workload layer between
// internal/harness and internal/core — named registry entries expand into
// independent RunConfigs. Workers pins a run's intra-run pool (safe: the
// Report is worker-count-invariant); WorkerCounts sweeps it as an axis
// (labelled w=N) for speedup curves.
package scenario
