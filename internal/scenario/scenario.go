package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/fedavg"
	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/systems"
)

// Bench scale classes: how a registry entry participates in the
// perf-trajectory gates (cmd/liflbench, CI).
const (
	// ClassShort entries are fast enough to repeat on every PR: the CI
	// bench job gates on them against the committed baseline.
	ClassShort = "short"
	// ClassLong entries (full Fig. 9 workloads, million-client synthesis)
	// run only in the nightly drift check.
	ClassLong = "long"
)

// BenchMeta tags a scenario for the perf-trajectory subsystem: how
// liflbench should measure it and which accuracy crossings to export.
type BenchMeta struct {
	// Class is the expected scale class (ClassShort/ClassLong; empty is
	// treated as ClassLong — unclassified work never slows PR CI).
	Class string
	// Repeats is the best-of-N repeat count for real-clock metrics
	// (0 = harness.DefaultRepeats).
	Repeats int
	// Milestones are accuracy levels whose first-crossing times are
	// recorded (Report.Milestones); empty for injected microbenchmarks,
	// which have no accuracy trajectory.
	Milestones []float64
}

// ClassOrDefault resolves the scale class, defaulting the empty string to
// ClassLong (unclassified work never slows PR CI).
func (m BenchMeta) ClassOrDefault() string {
	if m.Class == "" {
		return ClassLong
	}
	return m.Class
}

// ShortClass reports whether the entry belongs to the PR-CI bench gate.
func (m BenchMeta) ShortClass() bool { return m.ClassOrDefault() == ClassShort }

// FlagVariant is one labelled point of an orchestration-flag axis (the
// Fig. 8 feature-prefix ablation).
type FlagVariant struct {
	Label string
	Flags systems.Flags
}

// Scenario declares a workload. Scalar fields parameterize every expanded
// run; zero values defer to core's defaulting rules (2,800 clients, 120
// active, target 0.70, 5 nodes, ...). Slice fields are sweep axes: a nil
// axis contributes a single default point, a populated one multiplies the
// expansion. Axis order in the cross product is Systems × Variants ×
// Loads × MCs × CellCounts × CellQuorums × WorkerCounts × Seeds,
// outermost first.
type Scenario struct {
	Name        string
	Description string

	// Workload scalars (see core.RunConfig for semantics).
	// System pins the system under test when the Systems axis is empty
	// (zero = core's default, LIFL). Unlike the axis it adds no label
	// coordinate, so single-system entries keep clean record keys.
	System         core.SystemKind
	Model          model.Spec
	Clients        int
	ActivePerRound int
	Class          flwork.ClientClass
	TargetAccuracy float64
	MaxRounds      int
	Nodes          int
	MC             float64
	Seed           int64

	// FailureRate is the per-selection probability a client dies mid-round
	// (covered by heartbeats + standbys, §3).
	FailureRate float64

	// ServerMomentum, when > 0, runs server-side momentum (FedAvgM) with
	// this β instead of plain adoption of the aggregate. Each expanded run
	// gets its own optimizer state.
	ServerMomentum float64

	// Async knobs, applied to every expanded run whose system-axis point is
	// core.SystemAsync (the buffered-async system); synchronous points
	// ignore them. Concurrency comes from ActivePerRound, so async and
	// sync cells of one sweep stay throughput-comparable.
	AsyncBufferK      int     // FedBuff buffer size K (0 = core default 10)
	AsyncHalfLife     float64 // staleness half-life in versions (0 = no damping)
	AsyncMaxStaleness int     // hard staleness cutoff (0 = keep everything)
	AsyncMixRate      float64 // ScaleAdd merge rate η (0 = adopt the mean)

	// Cells, when > 0, federates every expanded run across that many
	// locality-routed cells (internal/cell): region-weighted client
	// routing, per-cell aggregation stacks, a per-round cross-cell fold.
	// Cells = 1 is a valid degenerate fabric (byte-identical to 0).
	Cells int
	// CellRegions skews the locality router (one weight per cell). Under a
	// swept CellCounts axis it applies only to the counts its length
	// matches (the rest route uniformly); with a scalar Cells a length
	// mismatch is an authoring error and fails the run's validation.
	CellRegions []float64
	// CellQuorum is the straggler-cell policy: 0 blocks an outage round
	// until the dead cell is checkpoint-restored (wait-all); Q > 0 masks
	// the outage by closing over the live cells (>= Q) and re-routing the
	// dead cell's clients.
	CellQuorum int
	// CellOutageRound / CellOutageCell inject a cell outage (see
	// core.CellSpec); 0 = healthy run.
	CellOutageRound int
	CellOutageCell  int
	// CellPlan schedules live fabric reconfiguration — round-stamped
	// join/drain/weight pushes (core.CellPlan) — for every expanded run
	// that federates (Cells / CellCounts > 0); non-fabric points ignore
	// it. The fabric validates the plan wholesale before the run starts: a
	// rejected plan leaves the run byte-identical to the unplanned one,
	// with the rejection reason in the cell Detail.
	CellPlan *core.CellPlan

	// Workers bounds the goroutine pool each run's staged round loop may
	// use (core.RunConfig.Workers); 0 or 1 = serial. Reports are
	// byte-identical for any value — the knob trades wall clock only —
	// so it is safe to pin in registry entries and override at run time
	// (liflsim -workers).
	Workers int

	// Streaming switches the run to the large-scale path: the
	// O(ActivePerRound) streaming client selector plus a lean report that
	// does not accumulate per-round slices (pair with core.RunConfig.OnRound
	// for observation). Required for million-client populations.
	Streaming bool

	// Trajectory marks every expanded run for durable trajectory capture:
	// the harness attaches an internal/trajstore sink per run (liflsim
	// -traj chooses the directory; instrumented measurement uses temp
	// files and verifies byte-identical repeats). Composes with Streaming
	// — that pairing is how a million-round run keeps flat memory AND a
	// complete replayable history.
	Trajectory bool

	// Bench is the entry's perf-trajectory metadata. Its Milestones are
	// wired into every expanded RunConfig (milestone capture is simulated-
	// time only, so this costs nothing and keeps liflsim sweeps, liflbench
	// and go test -bench reporting identical quantities).
	Bench BenchMeta

	// Sweep axes.
	Systems      []core.SystemKind
	Variants     []FlagVariant // LIFL orchestration-flag ablation
	Loads        []int         // injected single-round batch sizes (Fig. 8 mode)
	MCs          []float64     // per-node service-capacity sweep (Appendix E)
	CellCounts   []int         // cell-count sweep (overrides Cells when non-empty)
	CellQuorums  []int         // straggler-policy sweep (overrides CellQuorum)
	WorkerCounts []int         // worker-pool sweep (overrides Workers when non-empty)
	Seeds        []int64       // overrides Seed when non-empty
}

// Run is one expanded point of a scenario: a concrete RunConfig plus the
// axis coordinates that produced it, for labelling results.
type Run struct {
	Scenario string
	// Label joins the axis coordinates ("lifl", "+1+2/60", "mc=40/seed=2").
	Label   string
	Variant string // flag-variant label, if the scenario has a Variants axis
	Load    int    // injected load, if the scenario has a Loads axis
	// Trajectory marks the run for durable trajectory capture (the
	// scenario's Trajectory knob; the harness attaches the actual sink).
	Trajectory bool
	Cfg        core.RunConfig
}

// Expand materializes the cross product of the scenario's axes into
// concrete, independent RunConfigs. Expansion is deterministic: same
// scenario, same runs, same order.
func (s Scenario) Expand() []Run {
	syss := s.Systems
	if len(syss) == 0 {
		syss = []core.SystemKind{s.System} // zero: core defaults to LIFL
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []FlagVariant{{}}
	}
	loads := s.Loads
	if len(loads) == 0 {
		loads = []int{0}
	}
	mcs := s.MCs
	if len(mcs) == 0 {
		mcs = []float64{s.MC}
	}
	cells := s.CellCounts
	if len(cells) == 0 {
		cells = []int{s.Cells}
	}
	quorums := s.CellQuorums
	if len(quorums) == 0 {
		quorums = []int{s.CellQuorum}
	}
	workerCounts := s.WorkerCounts
	if len(workerCounts) == 0 {
		workerCounts = []int{s.Workers}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{s.Seed}
	}
	var runs []Run
	for _, sys := range syss {
		for _, v := range variants {
			for _, load := range loads {
				for _, mc := range mcs {
					for _, nc := range cells {
						for _, q := range quorums {
							for _, w := range workerCounts {
								for _, seed := range seeds {
									cfg := core.RunConfig{
										System:         sys,
										Model:          s.Model,
										Clients:        s.Clients,
										ActivePerRound: s.ActivePerRound,
										Class:          s.Class,
										TargetAccuracy: s.TargetAccuracy,
										MaxRounds:      s.MaxRounds,
										Nodes:          s.Nodes,
										MC:             mc,
										Seed:           seed,
										Workers:        w,
										FailureRate:    s.FailureRate,
										Milestones:     s.Bench.Milestones,
									}
									if sys == core.SystemAsync {
										cfg.Async = &core.AsyncSpec{
											BufferK:           s.AsyncBufferK,
											StalenessHalfLife: s.AsyncHalfLife,
											MaxStaleness:      s.AsyncMaxStaleness,
											MixRate:           s.AsyncMixRate,
										}
									}
									if nc > 0 {
										spec := core.CellSpec{
											Count:       nc,
											Quorum:      q,
											OutageRound: s.CellOutageRound,
											OutageCell:  s.CellOutageCell,
										}
										// A swept CellCounts axis uses the region
										// weights only where they fit (other counts
										// route uniformly); with a scalar Cells a
										// mismatch is an authoring error, passed
										// through so CellSpec.Validate fails loudly.
										if len(s.CellRegions) == nc || (len(s.CellCounts) == 0 && len(s.CellRegions) > 0) {
											spec.Regions = append([]float64(nil), s.CellRegions...)
										}
										cfg.Cells = &spec
										// Sharing the pointer is safe: the fabric
										// never mutates a plan (Normalized copies).
										cfg.CellPlan = s.CellPlan
									}
									if len(s.Variants) > 0 {
										flags := v.Flags
										cfg.Flags = &flags
									}
									if load > 0 {
										cfg.Inject = &core.InjectSpec{Updates: load}
									}
									if s.ServerMomentum > 0 {
										cfg.ServerOpt = &fedavg.FedAvgM{Beta: s.ServerMomentum}
									}
									if s.Streaming {
										cfg.Selector = core.SelectStream
										cfg.StreamOnly = true
									}
									runs = append(runs, Run{
										Scenario:   s.Name,
										Label:      s.label(sys, v.Label, load, mc, nc, q, w, seed),
										Variant:    v.Label,
										Load:       load,
										Trajectory: s.Trajectory,
										Cfg:        cfg,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return runs
}

// label renders the axis coordinates of one run, including only the axes
// the scenario actually sweeps.
func (s Scenario) label(sys core.SystemKind, variant string, load int, mc float64, cells, quorum, workers int, seed int64) string {
	var parts []string
	if len(s.Systems) > 0 {
		parts = append(parts, string(sys))
	}
	if len(s.Variants) > 0 {
		parts = append(parts, variant)
	}
	if len(s.Loads) > 0 {
		parts = append(parts, fmt.Sprintf("%d", load))
	}
	if len(s.MCs) > 0 {
		parts = append(parts, fmt.Sprintf("mc=%g", mc))
	}
	if len(s.CellCounts) > 0 {
		parts = append(parts, fmt.Sprintf("cells=%d", cells))
	}
	if len(s.CellQuorums) > 0 {
		parts = append(parts, fmt.Sprintf("q=%d", quorum))
	}
	if len(s.WorkerCounts) > 0 {
		parts = append(parts, fmt.Sprintf("w=%d", workers))
	}
	if len(s.Seeds) > 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", seed))
	}
	if len(parts) == 0 {
		return s.Name
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "/" + p
	}
	return out
}

// clone deep-copies the sweep-axis slices so a registry entry and a
// caller's working copy never share backing arrays — tweaking
// sc.Loads[0] on a Get result must not rewrite the registry.
func (s Scenario) clone() Scenario {
	s.Systems = append([]core.SystemKind(nil), s.Systems...)
	s.Variants = append([]FlagVariant(nil), s.Variants...)
	s.Loads = append([]int(nil), s.Loads...)
	s.MCs = append([]float64(nil), s.MCs...)
	s.CellCounts = append([]int(nil), s.CellCounts...)
	s.CellQuorums = append([]int(nil), s.CellQuorums...)
	s.WorkerCounts = append([]int(nil), s.WorkerCounts...)
	s.CellRegions = append([]float64(nil), s.CellRegions...)
	if s.CellPlan != nil {
		s.CellPlan = &core.CellPlan{Steps: append([]core.CellPlanStep(nil), s.CellPlan.Steps...)}
	}
	s.Seeds = append([]int64(nil), s.Seeds...)
	s.Bench.Milestones = append([]float64(nil), s.Bench.Milestones...)
	return s
}

// registry is the process-wide named-scenario table.
var (
	mu       sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a named scenario. The name must be non-empty and not yet
// taken: silently shadowing an existing entry would let one package's
// registration quietly rewrite another's workload (and every benchmark
// record keyed by its name), so a duplicate fails loudly instead — use
// Replace to overwrite deliberately. The scenario is copied in; later
// mutation of the caller's axis slices does not affect the registry.
func Register(s Scenario) error { return put(s, false) }

// Replace registers s, overwriting any existing entry of the same name —
// the deliberate form of what Register refuses to do by accident.
func Replace(s Scenario) error { return put(s, true) }

func put(s Scenario, overwrite bool) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: registering unnamed scenario")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := registry[s.Name]; exists && !overwrite {
		return fmt.Errorf("scenario: %q is already registered (use Replace to overwrite)", s.Name)
	}
	registry[s.Name] = s.clone()
	return nil
}

// Get returns an independent copy of the named scenario: callers may
// rewrite scalar fields or axis elements freely before Expand.
func Get(name string) (Scenario, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	return s.clone(), ok
}

// MustGet returns the named scenario or panics — for the built-in entries
// the experiments layer depends on.
func MustGet(name string) Scenario {
	s, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("scenario: unknown scenario %q", name))
	}
	return s
}

// Names lists registered scenarios, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
