package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flwork"
	"repro/internal/model"
)

// The fig9 registry entries must expand to exactly the bespoke configs the
// experiments layer used to build by hand — that equivalence is what keeps
// the paper figures bit-identical across the refactor.
func TestFig9EntryMatchesLegacyConfig(t *testing.T) {
	sc := MustGet("fig9-r18")
	sc.Seed = 7
	runs := sc.Expand()
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3 systems", len(runs))
	}
	want := core.RunConfig{
		System:         core.SystemLIFL,
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      400,
		Nodes:          5,
		MC:             60,
		Seed:           7,
	}
	got := runs[0].Cfg
	if got.System != want.System || got.Model.Name != want.Model.Name ||
		got.Clients != want.Clients || got.ActivePerRound != want.ActivePerRound ||
		got.Class != want.Class || got.TargetAccuracy != want.TargetAccuracy ||
		got.MaxRounds != want.MaxRounds || got.Nodes != want.Nodes ||
		got.MC != want.MC || got.Seed != want.Seed || got.Flags != nil || got.Inject != nil {
		t.Fatalf("expanded cfg %+v\nwant %+v", got, want)
	}
	order := []core.SystemKind{core.SystemLIFL, core.SystemSF, core.SystemSL}
	for i, r := range runs {
		if r.Cfg.System != order[i] {
			t.Fatalf("system order: got %s at %d", r.Cfg.System, i)
		}
		if r.Label != string(order[i]) {
			t.Fatalf("label %q, want %q", r.Label, order[i])
		}
	}
}

func TestFig8EntryExpandsGridInPaperOrder(t *testing.T) {
	runs := MustGet("fig8-ablation").Expand()
	variants := AblationVariants()
	loads := []int{20, 60, 100}
	if len(runs) != len(variants)*len(loads) {
		t.Fatalf("runs = %d, want %d", len(runs), len(variants)*len(loads))
	}
	for i, r := range runs {
		v, l := variants[i/len(loads)], loads[i%len(loads)]
		if r.Variant != v.Label || r.Load != l {
			t.Fatalf("run %d = %s/%d, want %s/%d", i, r.Variant, r.Load, v.Label, l)
		}
		if r.Cfg.Flags == nil || *r.Cfg.Flags != v.Flags {
			t.Fatalf("run %d flags = %+v, want %+v", i, r.Cfg.Flags, v.Flags)
		}
		if r.Cfg.Inject == nil || r.Cfg.Inject.Updates != l {
			t.Fatalf("run %d inject = %+v", i, r.Cfg.Inject)
		}
		if r.Cfg.System != core.SystemLIFL || r.Cfg.Seed != 88 || r.Cfg.MC != 20 {
			t.Fatalf("run %d cfg = %+v", i, r.Cfg)
		}
	}
	// Each run must carry its own Flags copy: mutating one cannot leak.
	runs[0].Cfg.Flags.Eager = true
	if runs[3].Cfg.Flags.Eager {
		t.Fatal("flag variants share storage across runs")
	}
}

func TestAxesCrossProductAndDefaults(t *testing.T) {
	s := Scenario{
		Name:    "x",
		Systems: []core.SystemKind{core.SystemLIFL, core.SystemSL},
		MCs:     []float64{10, 20},
		Seeds:   []int64{1, 2, 3},
	}
	runs := s.Expand()
	if len(runs) != 2*2*3 {
		t.Fatalf("cross product = %d, want 12", len(runs))
	}
	// Outermost axis first: systems, then MCs, then seeds.
	if runs[0].Label != "lifl/mc=10/seed=1" || runs[11].Label != "sl/mc=20/seed=3" {
		t.Fatalf("labels = %q .. %q", runs[0].Label, runs[11].Label)
	}
	// No axes at all: one run, default label.
	one := Scenario{Name: "solo"}.Expand()
	if len(one) != 1 || one[0].Label != "solo" {
		t.Fatalf("solo expansion = %+v", one)
	}
	if one[0].Cfg.System != "" {
		t.Fatal("axis-less scenario must defer system defaulting to core")
	}
}

func TestScaleAndFailureKnobs(t *testing.T) {
	runs := MustGet("million-clients").Expand()
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	cfg := runs[0].Cfg
	if cfg.Clients < 1_000_000 {
		t.Fatalf("clients = %d, want >= 1M", cfg.Clients)
	}
	if cfg.Selector != core.SelectStream || !cfg.StreamOnly {
		t.Fatalf("scale knobs not applied: selector=%q streamOnly=%v", cfg.Selector, cfg.StreamOnly)
	}
	if f := MustGet("flaky-mobile").Expand()[0].Cfg.FailureRate; f != 0.10 {
		t.Fatalf("failure rate = %v", f)
	}
	if m := MustGet("fig9-r18-momentum").Expand()[0].Cfg; m.ServerOpt == nil {
		t.Fatal("momentum scenario carries no server optimizer")
	}
}

// Distinct momentum runs must not share optimizer state.
func TestMomentumOptimizerPerRun(t *testing.T) {
	s := Scenario{Name: "m", ServerMomentum: 0.9, Seeds: []int64{1, 2}}
	runs := s.Expand()
	if runs[0].Cfg.ServerOpt == runs[1].Cfg.ServerOpt {
		t.Fatal("runs share a stateful ServerOpt")
	}
}

// The registry's million-client scenario must actually run: a 1M-client
// population on the streaming selector, observed round by round, with the
// lean report accumulating nothing. Two rounds are enough to prove the
// path; the per-round cost is covered by BenchmarkSelectStream.
func TestMillionClientScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-client population synthesis")
	}
	sc := MustGet("million-clients")
	sc.MaxRounds = 2
	runs := sc.Expand()
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	cfg := runs[0].Cfg
	var rounds, updates int
	cfg.OnRound = func(o core.RoundObservation) {
		rounds++
		updates += o.Result.Updates
	}
	rep, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 || rep.RoundsRun != 2 {
		t.Fatalf("rounds = %d/%d", rounds, rep.RoundsRun)
	}
	if updates != 2*cfg.ActivePerRound {
		t.Fatalf("updates = %d", updates)
	}
	if len(rep.Rounds) != 0 || len(rep.Acc) != 0 {
		t.Fatal("lean report accumulated per-round slices")
	}
	if rep.FinalGlobal == nil || rep.Elapsed <= 0 {
		t.Fatal("report incomplete")
	}
}

// Get hands out independent copies: editing a fetched scenario's axis
// elements in place must not rewrite the registry entry.
func TestGetIsolatesRegistryFromAxisMutation(t *testing.T) {
	sc := MustGet("fig8-ablation")
	sc.Loads[0] = 5
	sc.Variants[0].Flags.Eager = true
	fresh := MustGet("fig8-ablation")
	if fresh.Loads[0] != 20 || fresh.Variants[0].Flags.Eager {
		t.Fatalf("registry mutated through a Get copy: %+v", fresh)
	}
	// Register copies in, too.
	loads := []int{1, 2}
	if err := Register(Scenario{Name: "tmp-isolation", Loads: loads}); err != nil {
		t.Fatal(err)
	}
	loads[0] = 99
	if got := MustGet("tmp-isolation"); got.Loads[0] != 1 {
		t.Fatalf("registry shares the caller's slice: %+v", got.Loads)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	if err := Register(Scenario{}); err == nil {
		t.Fatal("unnamed scenario accepted")
	}
	if err := Register(Scenario{Name: "tmp-test", Clients: 7}); err != nil {
		t.Fatal(err)
	}
	got, ok := Get("tmp-test")
	if !ok || got.Clients != 7 {
		t.Fatalf("round trip: %+v %v", got, ok)
	}
	found := false
	for _, n := range Names() {
		if n == "tmp-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names misses registered scenario")
	}
}

// Async knobs must reach exactly the async cells of a sweep: the
// fig11-ablation entry expands async and sync systems side by side, and
// only the async cell carries an AsyncSpec.
func TestAsyncKnobsReachOnlyAsyncCells(t *testing.T) {
	runs := MustGet("fig11-ablation").Expand()
	if len(runs) != 4 {
		t.Fatalf("runs = %d, want 4 systems", len(runs))
	}
	if runs[0].Cfg.System != core.SystemAsync {
		t.Fatalf("first cell is %s, want async", runs[0].Cfg.System)
	}
	a := runs[0].Cfg.Async
	if a == nil || a.BufferK != 10 || a.StalenessHalfLife != 4 {
		t.Fatalf("async cell spec = %+v", a)
	}
	for _, r := range runs[1:] {
		if r.Cfg.Async != nil {
			t.Fatalf("sync cell %s carries async knobs", r.Cfg.System)
		}
	}
	// Each async cell owns its spec: tweaking one cannot leak.
	runs2 := MustGet("fig11-ablation").Expand()
	runs[0].Cfg.Async.BufferK = 99
	if runs2[0].Cfg.Async.BufferK != 10 {
		t.Fatal("async specs share storage across expansions")
	}
}

// The async registry entries expand to runnable configs: streaming entries
// keep the lean-report path, and the fig11-async entry's milestones ride
// into every expanded run.
func TestAsyncRegistryEntries(t *testing.T) {
	sc := MustGet("fig11-async")
	runs := sc.Expand()
	if len(runs) != 1 || runs[0].Label != "async" {
		t.Fatalf("fig11-async runs = %+v", runs)
	}
	if got := runs[0].Cfg.Milestones; len(got) != 2 || got[0] != 0.50 {
		t.Fatalf("milestones = %v", got)
	}
	am := MustGet("async-million-clients").Expand()[0].Cfg
	if am.Selector != core.SelectStream || !am.StreamOnly {
		t.Fatalf("async-million-clients not on the streaming path: %+v", am)
	}
	if am.Async == nil || am.Async.BufferK != 60 {
		t.Fatalf("async-million-clients spec = %+v", am.Async)
	}
}

// Registering a name twice must fail loudly — silently shadowing an entry
// would rewrite another package's workload (and every benchmark record
// keyed by the name) with a straight face. Replace stays available as the
// deliberate overwrite.
func TestRegisterDuplicateFailsLoudly(t *testing.T) {
	if err := Register(Scenario{Name: "tmp-dup", Clients: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Register(Scenario{Name: "tmp-dup", Clients: 2}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := MustGet("tmp-dup"); got.Clients != 1 {
		t.Fatalf("duplicate registration shadowed the original: %+v", got)
	}
	if err := Replace(Scenario{Name: "tmp-dup", Clients: 3}); err != nil {
		t.Fatal(err)
	}
	if got := MustGet("tmp-dup"); got.Clients != 3 {
		t.Fatalf("Replace did not overwrite: %+v", got)
	}
}

// Cell knobs and the cells/quorum axes must reach the expanded configs:
// scalar Cells yields one fabric config per point, CellCounts sweeps it,
// and CellRegions only applies where its length matches the cell count.
func TestCellKnobsExpand(t *testing.T) {
	runs := MustGet("geo-4cell").Expand()
	if len(runs) != 1 {
		t.Fatalf("geo-4cell runs = %d", len(runs))
	}
	spec := runs[0].Cfg.Cells
	if spec == nil || spec.Count != 4 || len(spec.Regions) != 4 {
		t.Fatalf("geo-4cell spec = %+v", spec)
	}
	outage := MustGet("cell-outage").Expand()
	if len(outage) != 2 || outage[0].Label != "q=0" || outage[1].Label != "q=3" {
		t.Fatalf("cell-outage runs = %+v", outage)
	}
	if outage[0].Cfg.Cells.Quorum != 0 || outage[1].Cfg.Cells.Quorum != 3 {
		t.Fatalf("quorum axis not applied: %+v %+v", outage[0].Cfg.Cells, outage[1].Cfg.Cells)
	}
	if outage[1].Cfg.Cells.OutageRound != 30 || outage[1].Cfg.Cells.OutageCell != 1 {
		t.Fatalf("outage knobs missing: %+v", outage[1].Cfg.Cells)
	}
	// Each expansion owns its spec.
	outage2 := MustGet("cell-outage").Expand()
	outage[0].Cfg.Cells.Count = 99
	if outage2[0].Cfg.Cells.Count != 4 {
		t.Fatal("cell specs share storage across expansions")
	}
	// A scalar cell count with mismatched region weights must pass the bad
	// weights through, so CellSpec.Validate fails the run loudly instead
	// of silently routing uniformly.
	bad := Scenario{Name: "bad", Cells: 4, CellRegions: []float64{0.5, 0.3, 0.2}}
	bcfg := bad.Expand()[0].Cfg
	if len(bcfg.Cells.Regions) != 3 {
		t.Fatalf("mismatched scalar regions dropped: %+v", bcfg.Cells)
	}
	if err := bcfg.Cells.Validate(); err == nil {
		t.Fatal("mismatched scalar regions passed validation")
	}
	// A swept cell count only inherits region weights where they fit.
	sw := Scenario{Name: "sw", CellCounts: []int{1, 2, 4}, CellRegions: []float64{0.5, 0.5}}
	srs := sw.Expand()
	if len(srs) != 3 {
		t.Fatalf("cells axis runs = %d", len(srs))
	}
	if srs[0].Label != "cells=1" || srs[2].Label != "cells=4" {
		t.Fatalf("cells axis labels = %v / %v", srs[0].Label, srs[2].Label)
	}
	if srs[0].Cfg.Cells.Regions != nil || len(srs[1].Cfg.Cells.Regions) != 2 || srs[2].Cfg.Cells.Regions != nil {
		t.Fatalf("region weights misapplied: %+v %+v %+v",
			srs[0].Cfg.Cells, srs[1].Cfg.Cells, srs[2].Cfg.Cells)
	}
}

func TestCellPlanKnobExpands(t *testing.T) {
	runs := MustGet("scale-out-under-load").Expand()
	if len(runs) != 1 {
		t.Fatalf("scale-out-under-load runs = %d", len(runs))
	}
	plan := runs[0].Cfg.CellPlan
	if plan == nil || len(plan.Steps) != 2 || plan.Steps[0].Op != core.CellJoin {
		t.Fatalf("plan knob not wired into the expanded config: %+v", plan)
	}
	// A plan on a non-fabric scenario stays out of the config: core rejects
	// CellPlan without Cells, and non-fabric points ignoring the knob is
	// what lets one entry sweep a CellCounts axis through zero.
	flat := Scenario{Name: "flat", CellPlan: &core.CellPlan{Steps: plan.Steps}}
	if cfg := flat.Expand()[0].Cfg; cfg.CellPlan != nil || cfg.Cells != nil {
		t.Fatalf("non-fabric expansion picked up a cell plan: %+v", cfg)
	}
	// Registry isolation extends to the plan's step slice.
	sc := MustGet("scale-out-under-load")
	sc.CellPlan.Steps[0].Round = 99
	if fresh := MustGet("scale-out-under-load"); fresh.CellPlan.Steps[0].Round != 25 {
		t.Fatalf("registry plan mutated through a Get copy: %+v", fresh.CellPlan.Steps)
	}
}
