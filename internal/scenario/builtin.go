package scenario

import (
	"repro/internal/core"
	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/systems"
)

// AblationVariants lists the Fig. 8 feature-prefix ablation in paper order:
// LIFL's orchestration features applied cumulatively on top of SL-H.
func AblationVariants() []FlagVariant {
	return []FlagVariant{
		{Label: "SL-H", Flags: systems.Flags{}},
		{Label: "+1", Flags: systems.Flags{LocalityPlacement: true}},
		{Label: "+1+2", Flags: systems.Flags{LocalityPlacement: true, HierarchyPlan: true}},
		{Label: "+1+2+3", Flags: systems.Flags{LocalityPlacement: true, HierarchyPlan: true, Reuse: true}},
		{Label: "+1+2+3+4", Flags: systems.AllFlags()},
	}
}

// The built-in registry: the paper's §6.2 workloads and the roadmap's
// scale scenarios. Experiments and cmd/liflsim resolve these by name.
func init() {
	// Fig. 9(a,b) + Fig. 10(a-c): ResNet-18, 120 simultaneously active
	// mobile clients out of 2,800, time/cost to 70% for the three systems.
	mustRegister(Scenario{
		Name:           "fig9-r18",
		Description:    "§6.2 ResNet-18 workload: time/cost-to-accuracy, LIFL vs SF vs SL",
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      400,
		Nodes:          5,
		MC:             60, // smaller updates → higher per-node capacity (App. E)
		Seed:           1,
		Systems:        []core.SystemKind{core.SystemLIFL, core.SystemSF, core.SystemSL},
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.60, 0.70}},
	})
	// Fig. 9(c,d) + Fig. 10(d-f): ResNet-152, 15 always-on server clients.
	mustRegister(Scenario{
		Name:           "fig9-r152",
		Description:    "§6.2 ResNet-152 workload: time/cost-to-accuracy, LIFL vs SF vs SL",
		Model:          model.ResNet152,
		Clients:        2800,
		ActivePerRound: 15,
		Class:          flwork.Server,
		TargetAccuracy: 0.70,
		MaxRounds:      400,
		Nodes:          5,
		MC:             20,
		Seed:           1,
		Systems:        []core.SystemKind{core.SystemLIFL, core.SystemSF, core.SystemSL},
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.60, 0.70}},
	})
	// Fig. 8(a-d): the orchestration ablation grid — five feature prefixes
	// × three injected batch sizes, each cell a cold single-round cluster.
	mustRegister(Scenario{
		Name:        "fig8-ablation",
		Description: "Fig. 8 orchestration ablation: 5 flag prefixes × 20/60/100 injected updates",
		Model:       model.ResNet152,
		Nodes:       5,
		MC:          20,
		MaxRounds:   1,
		Seed:        88,
		Systems:     []core.SystemKind{core.SystemLIFL},
		Variants:    AblationVariants(),
		Loads:       []int{20, 60, 100},
		// Injected single-round cells: no accuracy trajectory to milestone.
		Bench: BenchMeta{Class: ClassShort, Repeats: 5},
	})
	// Appendix E, workload-level: sweep the configured MC around the
	// calibrated knee to show the §6.2 outcome's sensitivity to the
	// offline capacity measurement.
	mustRegister(Scenario{
		Name:           "appendixe-mc",
		Description:    "Appendix E sensitivity: ResNet-152 workload across MC = 10/20/40",
		Model:          model.ResNet152,
		Clients:        2800,
		ActivePerRound: 15,
		Class:          flwork.Server,
		TargetAccuracy: 0.70,
		MaxRounds:      200,
		Nodes:          5,
		Seed:           1,
		MCs:            []float64{10, 20, 40},
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.70}},
	})
	// Roadmap scale: a million-client population on the streaming
	// O(ActivePerRound) selector with a lean (non-accumulating) report.
	mustRegister(Scenario{
		Name:           "million-clients",
		Description:    "scale: 1M-client population, streaming selector, lean report",
		Model:          model.ResNet18,
		Clients:        1_000_000,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      100,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Streaming:      true,
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Ten-million scale: the staged round loop's headline entry. Chunked
	// value-backed population storage plus the parallel synthesis and
	// materialization stages keep a 10M-client run in whole-seconds
	// territory; Workers pins the pool the stages may use (the Report is
	// byte-identical for any value, so the pin is wall-clock only).
	mustRegister(Scenario{
		Name:           "10m-clients",
		Description:    "scale: 10M-client population, staged round loop, 8 workers",
		Model:          model.ResNet18,
		Clients:        10_000_000,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      100,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Workers:        8,
		Streaming:      true,
		Bench:          BenchMeta{Class: ClassShort, Repeats: 2, Milestones: []float64{0.50, 0.70}},
	})
	// Failure model: the §3 resilience path under a lossy mobile fleet —
	// heartbeat-detected failures covered by over-provisioned standbys.
	mustRegister(Scenario{
		Name:           "flaky-mobile",
		Description:    "§3 resilience: ResNet-18 fleet with 10% per-selection client failures",
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      400,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		FailureRate:    0.10,
		Bench:          BenchMeta{Class: ClassShort, Repeats: 3, Milestones: []float64{0.70}},
	})
	// Fig. 11 (Appendix A): the buffered-async workload — 120 clients
	// training at all times, FedBuff buffer K=10, staleness half-life 4
	// versions. The async analogue of fig9-r18, version-for-round.
	mustRegister(Scenario{
		Name:           "fig11-async",
		Description:    "Fig. 11 buffered-async FL: ResNet-18, buffer K=10, staleness half-life 4",
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      400,
		Nodes:          2,
		MC:             60,
		Seed:           1,
		Systems:        []core.SystemKind{core.SystemAsync},
		AsyncBufferK:   10,
		AsyncHalfLife:  4,
		Bench:          BenchMeta{Class: ClassShort, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Async×sync ablation: the buffered-async system against the three
	// synchronous systems on the same workload, population and seed — the
	// Fig. 11 argument (event-driven designs pay off most without round
	// barriers) as a single sweep axis.
	mustRegister(Scenario{
		Name:           "fig11-ablation",
		Description:    "Fig. 11 async×sync ablation: buffered-async vs LIFL/SF/SL time-to-accuracy",
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      400,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Systems:        []core.SystemKind{core.SystemAsync, core.SystemLIFL, core.SystemSF, core.SystemSL},
		AsyncBufferK:   10,
		AsyncHalfLife:  4,
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Roadmap scale, async edition: a million-client population feeding the
	// buffered-async service through the streaming selector, lean report.
	mustRegister(Scenario{
		Name:           "async-million-clients",
		Description:    "scale: 1M-client buffered-async run, streaming selector, lean report",
		Model:          model.ResNet18,
		Clients:        1_000_000,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      100,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Systems:        []core.SystemKind{core.SystemAsync},
		AsyncBufferK:   60,
		AsyncHalfLife:  4,
		Streaming:      true,
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Geo family: the multi-cell federation fabric (internal/cell). Four
	// locality-routed cells over a skewed region mix, each an independent
	// LIFL stack, stitched by the per-round cross-cell tier. Short-class:
	// the PR bench gate watches the fabric's hot path.
	mustRegister(Scenario{
		Name:           "geo-4cell",
		Description:    "geo fabric: 4 locality-routed LIFL cells, skewed regions, cross-cell fold",
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      120,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Cells:          4,
		CellRegions:    []float64{0.4, 0.3, 0.2, 0.1},
		Bench:          BenchMeta{Class: ClassShort, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Roadmap scale, geo edition: a million clients routed across 8 skewed
	// regions, each region an independent cell on the streaming selector.
	mustRegister(Scenario{
		Name:           "geo-million-clients",
		Description:    "scale: 1M clients routed across 8 skewed-region cells, streaming selector",
		Model:          model.ResNet18,
		Clients:        1_000_000,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      100,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Cells:          8,
		CellRegions:    []float64{0.30, 0.20, 0.15, 0.10, 0.10, 0.05, 0.05, 0.05},
		Streaming:      true,
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Ten-million-client fabric: the same skewed-region mix at 10M clients,
	// with the K per-cell rounds stepped concurrently (the cross-cell tier
	// is the round's only barrier) and cell construction fanned across the
	// worker pool. Nightly-only: population synthesis dominates startup.
	mustRegister(Scenario{
		Name:           "geo-10m",
		Description:    "scale: 10M clients routed across 8 skewed-region cells, parallel per-cell rounds",
		Model:          model.ResNet18,
		Clients:        10_000_000,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      100,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Workers:        8,
		Cells:          8,
		CellRegions:    []float64{0.30, 0.20, 0.15, 0.10, 0.10, 0.05, 0.05, 0.05},
		Streaming:      true,
		Bench:          BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Cell failover: kill one of four cells mid-training and compare the
	// straggler-cell policies — wait-all (block, restore from the cell's
	// last durable checkpoint, replay the round) vs quorum-3 (mask the
	// outage, discard the partial round, re-route the dead cell's clients)
	// — by their time-to-accuracy penalty.
	mustRegister(Scenario{
		Name:            "cell-outage",
		Description:     "cell failover: kill 1 of 4 cells at round 30, wait-all restore vs quorum-3 masking",
		Model:           model.ResNet18,
		Clients:         2800,
		ActivePerRound:  120,
		Class:           flwork.Mobile,
		TargetAccuracy:  0.70,
		MaxRounds:       160,
		Nodes:           5,
		MC:              60,
		Seed:            1,
		Cells:           4,
		CellRegions:     []float64{0.4, 0.3, 0.2, 0.1},
		CellOutageRound: 30,
		CellOutageCell:  1,
		CellQuorums:     []int{0, 3},
		Bench:           BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Elastic family: live fabric reconfiguration (core.CellPlan →
	// internal/cell's versioned config pushes). Scale-out is the headline:
	// a flash crowd 8x the fleet's population lands at round 25 and two
	// joined cells absorb it — the ISSUE acceptance pins its milestone
	// crossings to within one round of a fleet pre-sized for the crowd.
	// Short-class: the PR bench gate watches the reconfiguration path.
	mustRegister(Scenario{
		Name:           "scale-out-under-load",
		Description:    "elastic fabric: 8x flash crowd at round 25 absorbed by two joining cells",
		Model:          model.ResNet18,
		Clients:        360,
		ActivePerRound: 192,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      160,
		Nodes:          3,
		MC:             60,
		Seed:           7,
		Cells:          4,
		CellRegions:    []float64{0.4, 0.3, 0.2, 0.1},
		CellPlan: &core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 25, Op: core.CellJoin, Weight: 0.5, Clients: 1440},
			{Round: 25, Op: core.CellJoin, Weight: 0.5, Clients: 1440},
		}},
		Bench: BenchMeta{Class: ClassShort, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// The elastic counterfactual: the same 8x crowd dumped onto one region
	// with no capacity added. The crowded cell's quota share caps at its
	// resident population, the capped shares are lost accuracy credit every
	// round, and the milestones slip — the cliff scale-out-under-load
	// avoids. Nightly: the pair is a drift check on the overload model.
	mustRegister(Scenario{
		Name:           "flash-crowd",
		Description:    "elastic fabric: 8x flash crowd on one region, no scale-out — the TTA cliff",
		Model:          model.ResNet18,
		Clients:        360,
		ActivePerRound: 192,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      160,
		Nodes:          3,
		MC:             60,
		Seed:           7,
		Cells:          4,
		CellRegions:    []float64{0.4, 0.3, 0.2, 0.1},
		CellPlan: &core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 25, Op: core.CellWeight, Cell: 0, Weight: 0.4, Clients: 2880},
		}},
		Bench: BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Rolling upgrade: replace the whole fleet cell by cell — every 20
	// rounds a replacement joins with the retiring cell's routing weight,
	// then the old cell drains (its clients re-home onto the survivors, its
	// accounting banks). By round 80 no original cell remains; the run must
	// still converge. Nightly: four reconfiguration pushes end to end.
	mustRegister(Scenario{
		Name:           "rolling-upgrade",
		Description:    "elastic fabric: rotate out all 4 cells via join+drain pushes every 20 rounds",
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      200,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		Cells:          4,
		CellRegions:    []float64{0.4, 0.3, 0.2, 0.1},
		CellPlan: &core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 20, Op: core.CellJoin, Weight: 0.4, Clients: 700},
			{Round: 20, Op: core.CellDrain, Cell: 0},
			{Round: 40, Op: core.CellJoin, Weight: 0.3, Clients: 700},
			{Round: 40, Op: core.CellDrain, Cell: 1},
			{Round: 60, Op: core.CellJoin, Weight: 0.2, Clients: 700},
			{Round: 60, Op: core.CellDrain, Cell: 2},
			{Round: 80, Op: core.CellJoin, Weight: 0.1, Clients: 700},
			{Round: 80, Op: core.CellDrain, Cell: 3},
		}},
		Bench: BenchMeta{Class: ClassLong, Repeats: 3, Milestones: []float64{0.50, 0.70}},
	})
	// Round-count stress, short edition: 100K rounds streamed into the
	// bounded-memory trajectory store (internal/trajstore). TinyFL keeps
	// the per-round cost pure round machinery; the unreachable target
	// (the curve tops out at 0.80) runs the full MaxRounds. Sweeps every
	// synchronous shape: round-closure retirement (Service.RetireRound,
	// driven by RunConfig.RetainRounds) evicts per-round control-plane
	// records — round-named aggregators, socket routes, eBPF map entries,
	// broker topics — so the serverless systems now hold the same flat-RSS
	// contract the always-on SF hierarchy gets for free. PR-gated: the
	// bench gate watches the store's write path and each run's memory
	// trajectory (final heap, slope) alongside its time trajectory.
	mustRegister(Scenario{
		Name:           "traj-100k",
		Description:    "trajstore stress: 100K rounds streamed to the bounded-memory trajectory store",
		Systems:        []core.SystemKind{core.SystemSF, core.SystemLIFL, core.SystemSLH, core.SystemSL},
		Model:          model.TinyFL,
		Clients:        512,
		ActivePerRound: 8,
		Class:          flwork.Server,
		TargetAccuracy: 0.99, // unreachable by design: run every round
		MaxRounds:      100_000,
		Nodes:          1,
		MC:             60,
		Seed:           1,
		Streaming:      true,
		Trajectory:     true,
		Bench:          BenchMeta{Class: ClassShort, Repeats: 2, Milestones: []float64{0.50, 0.70}},
	})
	// Round-count stress, nightly edition: one million rounds under
	// StreamOnly + Trajectory — the flat-RSS headline entry, swept across
	// all four synchronous shapes now that round retirement keeps the
	// serverless control planes bounded. The in-test assertion lives in
	// traj_test.go (heap sampled over the run, bounded by a constant
	// independent of round count); the nightly bench gate additionally
	// fails on RSS-trajectory regression via the perfrec final-heap/slope
	// metrics.
	mustRegister(Scenario{
		Name:           "million-rounds",
		Description:    "trajstore stress: 1M rounds, flat RSS, StreamOnly + trajectory sink",
		Systems:        []core.SystemKind{core.SystemSF, core.SystemLIFL, core.SystemSLH, core.SystemSL},
		Model:          model.TinyFL,
		Clients:        512,
		ActivePerRound: 8,
		Class:          flwork.Server,
		TargetAccuracy: 0.99, // unreachable by design: run every round
		MaxRounds:      1_000_000,
		Nodes:          1,
		MC:             60,
		Seed:           1,
		Streaming:      true,
		Trajectory:     true,
		Bench:          BenchMeta{Class: ClassLong, Repeats: 2, Milestones: []float64{0.50, 0.70}},
	})
	// Server-momentum variant of the ResNet-18 workload: exercises the
	// FedAvgM (ScaleAdd-fused) model-install path end to end.
	mustRegister(Scenario{
		Name:           "fig9-r18-momentum",
		Description:    "ResNet-18 workload with server momentum (FedAvgM, β=0.9)",
		Model:          model.ResNet18,
		Clients:        2800,
		ActivePerRound: 120,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      400,
		Nodes:          5,
		MC:             60,
		Seed:           1,
		ServerMomentum: 0.9,
		Bench:          BenchMeta{Class: ClassShort, Repeats: 3, Milestones: []float64{0.70}},
	})
}

func mustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}
