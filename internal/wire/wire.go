package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Frame layout constants.
const (
	// Magic identifies a LIFL update frame ("LFLU").
	Magic uint32 = 0x4C464C55
	// Version is the current frame version.
	Version uint16 = 1
	// MaxProducerLen bounds the producer-ID field.
	MaxProducerLen = 255
)

// Frame errors.
var (
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrTruncated = errors.New("wire: truncated frame")
	ErrCorrupt   = errors.New("wire: corrupt frame")
)

// Update is the decoded form.
type Update struct {
	Round    int
	Weight   float64
	Producer string
	Tensor   *tensor.Tensor
}

// Encode serializes an update. The layout is:
//
//	magic u32 | version u16 | producerLen u8 | producer bytes |
//	round i64 | weight f64 | virtualLen i64 | physLen i64 | payload f32...
func Encode(u Update) ([]byte, error) {
	if u.Tensor == nil {
		return nil, errors.New("wire: nil tensor")
	}
	if len(u.Producer) > MaxProducerLen {
		return nil, fmt.Errorf("wire: producer %q too long", u.Producer)
	}
	if math.IsNaN(u.Weight) || u.Weight < 0 {
		return nil, fmt.Errorf("wire: invalid weight %v", u.Weight)
	}
	var b bytes.Buffer
	b.Grow(32 + len(u.Producer) + 4*u.Tensor.Len())
	w := func(v interface{}) {
		if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
			panic(err) // bytes.Buffer cannot fail
		}
	}
	w(Magic)
	w(Version)
	w(uint8(len(u.Producer)))
	b.WriteString(u.Producer)
	w(int64(u.Round))
	w(u.Weight)
	w(int64(u.Tensor.VirtualLen))
	w(int64(u.Tensor.Len()))
	w(u.Tensor.Data)
	return b.Bytes(), nil
}

// Decode parses a frame, validating header and payload length.
func Decode(raw []byte) (Update, error) {
	r := bytes.NewReader(raw)
	var (
		magic   uint32
		version uint16
		plen    uint8
	)
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd(&magic); err != nil {
		return Update{}, fmt.Errorf("%w: header", ErrTruncated)
	}
	if magic != Magic {
		return Update{}, ErrMagic
	}
	if err := rd(&version); err != nil {
		return Update{}, fmt.Errorf("%w: version", ErrTruncated)
	}
	if version != Version {
		return Update{}, fmt.Errorf("%w: %d", ErrVersion, version)
	}
	if err := rd(&plen); err != nil {
		return Update{}, fmt.Errorf("%w: producer len", ErrTruncated)
	}
	producer := make([]byte, plen)
	if _, err := r.Read(producer); err != nil && plen > 0 {
		return Update{}, fmt.Errorf("%w: producer", ErrTruncated)
	}
	var (
		round, virtualLen, physLen int64
		weight                     float64
	)
	for _, v := range []interface{}{&round, &weight, &virtualLen, &physLen} {
		if err := rd(v); err != nil {
			return Update{}, fmt.Errorf("%w: metadata", ErrTruncated)
		}
	}
	if physLen < 0 || virtualLen < physLen {
		return Update{}, fmt.Errorf("%w: lengths %d/%d", ErrCorrupt, physLen, virtualLen)
	}
	if int64(r.Len()) != 4*physLen {
		return Update{}, fmt.Errorf("%w: payload %dB, want %dB", ErrCorrupt, r.Len(), 4*physLen)
	}
	data := make([]float32, physLen)
	if err := rd(data); err != nil {
		return Update{}, fmt.Errorf("%w: payload", ErrTruncated)
	}
	t := tensor.FromSlice(data)
	t.VirtualLen = int(virtualLen)
	return Update{
		Round:    int(round),
		Weight:   weight,
		Producer: string(producer),
		Tensor:   t,
	}, nil
}

// EncodedSize predicts the frame size without encoding.
func EncodedSize(producer string, physLen int) int {
	return 4 + 2 + 1 + len(producer) + 8 + 8 + 8 + 8 + 4*physLen
}
