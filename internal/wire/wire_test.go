package wire

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestRoundTrip(t *testing.T) {
	in := Update{
		Round:    42,
		Weight:   168.5,
		Producer: "client-0042",
		Tensor:   tensor.FromSlice([]float32{1.5, -2.25, 0, 3e10}),
	}
	in.Tensor.VirtualLen = 1_000_000
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != EncodedSize(in.Producer, in.Tensor.Len()) {
		t.Fatalf("size = %d, predicted %d", len(raw), EncodedSize(in.Producer, in.Tensor.Len()))
	}
	out, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != 42 || out.Weight != 168.5 || out.Producer != "client-0042" {
		t.Fatalf("metadata: %+v", out)
	}
	if out.Tensor.VirtualLen != 1_000_000 {
		t.Fatalf("virtual len = %d", out.Tensor.VirtualLen)
	}
	d, err := out.Tensor.MaxAbsDiff(in.Tensor)
	if err != nil || d != 0 {
		t.Fatalf("payload: %v %v", d, err)
	}
}

func TestDecodeRejectsBadFrames(t *testing.T) {
	good, err := Encode(Update{Weight: 1, Tensor: tensor.FromSlice([]float32{1, 2})})
	if err != nil {
		t.Fatal(err)
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrMagic) {
		t.Fatalf("magic: %v", err)
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}
	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := Decode(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Payload length mismatch.
	if _, err := Decode(append(good, 0, 0, 0, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized payload: %v", err)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := Encode(Update{Weight: 1}); err == nil {
		t.Fatal("nil tensor accepted")
	}
	if _, err := Encode(Update{Weight: -1, Tensor: tensor.New(1)}); err == nil {
		t.Fatal("negative weight accepted")
	}
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := Encode(Update{Weight: 1, Producer: string(long), Tensor: tensor.New(1)}); err == nil {
		t.Fatal("overlong producer accepted")
	}
}

// Property: Decode(Encode(u)) is the identity over valid updates.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []float32, round uint16, weightRaw uint16, producer string) bool {
		if len(producer) > MaxProducerLen {
			producer = producer[:MaxProducerLen]
		}
		in := Update{
			Round:    int(round),
			Weight:   float64(weightRaw) + 0.5,
			Producer: producer,
			Tensor:   tensor.FromSlice(vals),
		}
		raw, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(raw)
		if err != nil {
			return false
		}
		if out.Round != in.Round || out.Weight != in.Weight || out.Producer != in.Producer {
			return false
		}
		if out.Tensor.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			got := out.Tensor.Data[i]
			// NaN round-trips bit-unequal via ==; compare bit-agnostically.
			if got != v && !(v != v && got != got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
