// Package wire is the binary serialization format for model updates — the
// concrete counterpart of the gRPC marshalling the cost model charges for.
// It frames a tensor together with its FL metadata (round, FedAvg weight,
// producer, virtual geometry) in a little-endian layout with a magic/version
// header and a length-checked payload, so corrupt or truncated frames are
// rejected instead of silently mis-aggregated. The checkpoint store encodes
// persisted models with it, and external client implementations can use it
// as the upload format.
//
// Layer (DESIGN.md): component model under internal/systems — update
// serialization, the baselines' ser/des tax.
package wire
