package metrics

import (
	"sort"

	"repro/internal/sim"
)

// Point is one sample.
type Point struct {
	T sim.Duration
	V float64
}

// Series is an append-only ordered sample list.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample; time must be non-decreasing (virtual time is).
func (s *Series) Add(t sim.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Last returns the latest sample, or zero.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// TrimTo drops the oldest points beyond max, keeping the newest max
// samples, and releases the larger backing array. Long-horizon runs bound
// their diagnostic series this way; a reader that needs full history must
// consume points before the owner's trim cadence passes them by.
func (s *Series) TrimTo(max int) {
	if max < 0 || len(s.Points) <= max {
		return
	}
	s.Points = append(make([]Point, 0, max), s.Points[len(s.Points)-max:]...)
}

// Bucketize sums samples into fixed-width buckets over [0, horizon] — used
// to produce the "arrival rate per minute" series of Fig. 10(a,d).
func (s *Series) Bucketize(width, horizon sim.Duration) []float64 {
	if width <= 0 {
		panic("metrics: bucket width must be positive")
	}
	n := int(horizon/width) + 1
	out := make([]float64, n)
	for _, p := range s.Points {
		i := int(p.T / width)
		if i >= 0 && i < n {
			out[i] += p.V
		}
	}
	return out
}

// Server stores named series and rolling statistics.
type Server struct {
	eng    *sim.Engine
	series map[string]*Series
	meters map[string]*Meter
	avgs   map[string]*RollingAvg
}

// NewServer creates an empty metrics server.
func NewServer(eng *sim.Engine) *Server {
	return &Server{
		eng:    eng,
		series: make(map[string]*Series),
		meters: make(map[string]*Meter),
		avgs:   make(map[string]*RollingAvg),
	}
}

// Series returns (creating) the named series.
func (s *Server) Series(name string) *Series {
	ser, ok := s.series[name]
	if !ok {
		ser = &Series{Name: name}
		s.series[name] = ser
	}
	return ser
}

// Record appends to the named series at the current virtual time.
func (s *Server) Record(name string, v float64) { s.Series(name).Add(s.eng.Now(), v) }

// TrimAll bounds every stored series to its newest max points — the
// metrics server's part of the per-round record lifecycle (meters and
// rolling averages are already self-bounding).
func (s *Server) TrimAll(max int) {
	for _, ser := range s.series {
		ser.TrimTo(max)
	}
}

// Names lists stored series, sorted.
func (s *Server) Names() []string {
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Meter returns (creating) a sliding-window event-rate meter.
func (s *Server) Meter(name string, window sim.Duration) *Meter {
	m, ok := s.meters[name]
	if !ok {
		m = NewMeter(s.eng, window)
		s.meters[name] = m
	}
	return m
}

// Avg returns (creating) a rolling average with the given sample capacity.
func (s *Server) Avg(name string, capacity int) *RollingAvg {
	a, ok := s.avgs[name]
	if !ok {
		a = NewRollingAvg(capacity)
		s.avgs[name] = a
	}
	return a
}

// Meter measures event arrival rate over a sliding window — k_{i,t} in the
// residual-capacity formula of §5.1.
type Meter struct {
	eng    *sim.Engine
	window sim.Duration
	events []sim.Duration
	Total  uint64
}

// NewMeter builds a meter with the given window.
func NewMeter(eng *sim.Engine, window sim.Duration) *Meter {
	if window <= 0 {
		panic("metrics: meter window must be positive")
	}
	return &Meter{eng: eng, window: window}
}

// Mark records one event now.
func (m *Meter) Mark() {
	m.Total++
	m.events = append(m.events, m.eng.Now())
	m.trim()
}

func (m *Meter) trim() {
	cut := m.eng.Now() - m.window
	i := 0
	for i < len(m.events) && m.events[i] < cut {
		i++
	}
	if i > 0 {
		m.events = append(m.events[:0], m.events[i:]...)
	}
}

// Rate returns events/sec over the trailing window.
func (m *Meter) Rate() float64 {
	m.trim()
	return float64(len(m.events)) / m.window.Seconds()
}

// Count returns events inside the window.
func (m *Meter) Count() int {
	m.trim()
	return len(m.events)
}

// RollingAvg keeps the mean of the last N durations — E_{i,t} in §5.1.
type RollingAvg struct {
	buf  []sim.Duration
	next int
	full bool
}

// NewRollingAvg builds an average over up to capacity samples.
func NewRollingAvg(capacity int) *RollingAvg {
	if capacity <= 0 {
		panic("metrics: rolling average capacity must be positive")
	}
	return &RollingAvg{buf: make([]sim.Duration, capacity)}
}

// Add inserts a sample.
func (r *RollingAvg) Add(d sim.Duration) {
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Mean returns the current average (0 when empty).
func (r *RollingAvg) Mean() sim.Duration {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if n == 0 {
		return 0
	}
	var sum sim.Duration
	for i := 0; i < n; i++ {
		sum += r.buf[i]
	}
	return sum / sim.Duration(n)
}

// Samples returns how many samples are held.
func (r *RollingAvg) Samples() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}
