package metrics

import (
	"testing"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	eng := sim.NewEngine()
	s := NewServer(eng)
	s.Record("acc", 0.5)
	eng.After(sim.Minute, func() { s.Record("acc", 0.7) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	ser := s.Series("acc")
	if len(ser.Points) != 2 {
		t.Fatalf("points = %d", len(ser.Points))
	}
	if ser.Last().V != 0.7 || ser.Last().T != sim.Minute {
		t.Fatalf("last = %+v", ser.Last())
	}
	if got := s.Names(); len(got) != 1 || got[0] != "acc" {
		t.Fatalf("names = %v", got)
	}
}

func TestSeriesBucketize(t *testing.T) {
	eng := sim.NewEngine()
	s := &Series{}
	s.Add(10*sim.Second, 1)
	s.Add(50*sim.Second, 1)
	s.Add(70*sim.Second, 1)
	s.Add(3*sim.Minute, 5)
	got := s.Bucketize(sim.Minute, 3*sim.Minute)
	want := []float64{2, 1, 0, 5}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	_ = eng
}

// TestBucketizePastHorizon: samples beyond the horizon are dropped, not
// folded into the last bucket — the series length is a pure function of
// (width, horizon), never of the data.
func TestBucketizePastHorizon(t *testing.T) {
	s := &Series{}
	s.Add(30*sim.Second, 1)
	s.Add(5*sim.Minute, 7)  // past the horizon: dropped
	s.Add(90*sim.Minute, 9) // far past: dropped, no index overflow
	got := s.Bucketize(sim.Minute, 2*sim.Minute)
	want := []float64{1, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

// TestTrimToEdgeCases pins the retention contract: zero empties the
// series, negative means "no bound", and an under-full series is left
// alone (no reallocation churn on the hot trim cadence).
func TestTrimToEdgeCases(t *testing.T) {
	mk := func(n int) *Series {
		s := &Series{}
		for i := 0; i < n; i++ {
			s.Add(sim.Duration(i)*sim.Second, float64(i))
		}
		return s
	}
	s := mk(4)
	s.TrimTo(0)
	if len(s.Points) != 0 {
		t.Fatalf("TrimTo(0) kept %d points", len(s.Points))
	}
	s = mk(4)
	s.TrimTo(-1)
	if len(s.Points) != 4 {
		t.Fatalf("TrimTo(-1) trimmed to %d points (negative = unbounded)", len(s.Points))
	}
	s = mk(4)
	s.TrimTo(10)
	if len(s.Points) != 4 {
		t.Fatalf("under-full trim changed the series: %d points", len(s.Points))
	}
	s = mk(4)
	s.TrimTo(2)
	if len(s.Points) != 2 || s.Points[0].V != 2 || s.Points[1].V != 3 {
		t.Fatalf("TrimTo(2) kept %+v, want newest two", s.Points)
	}
}

func TestMeterSlidingWindow(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng, sim.Minute)
	for i := 0; i < 30; i++ {
		i := i
		eng.At(sim.Duration(i)*2*sim.Second, func() { m.Mark() })
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// At t=58s all 30 events are inside the 60s window: rate = 0.5/s.
	if got := m.Rate(); got < 0.49 || got > 0.51 {
		t.Fatalf("rate = %v", got)
	}
	// An hour later the window is empty.
	eng.After(sim.Hour, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if m.Rate() != 0 || m.Count() != 0 {
		t.Fatalf("stale window: rate=%v count=%d", m.Rate(), m.Count())
	}
	if m.Total != 30 {
		t.Fatalf("total = %d", m.Total)
	}
}

func TestRollingAvg(t *testing.T) {
	r := NewRollingAvg(3)
	if r.Mean() != 0 || r.Samples() != 0 {
		t.Fatal("empty average")
	}
	r.Add(2 * sim.Second)
	r.Add(4 * sim.Second)
	if r.Mean() != 3*sim.Second || r.Samples() != 2 {
		t.Fatalf("mean = %v over %d", r.Mean(), r.Samples())
	}
	r.Add(6 * sim.Second)
	r.Add(8 * sim.Second) // evicts the 2s sample
	if r.Mean() != 6*sim.Second || r.Samples() != 3 {
		t.Fatalf("rolled mean = %v over %d", r.Mean(), r.Samples())
	}
}

func TestServerMeterAndAvgCaching(t *testing.T) {
	eng := sim.NewEngine()
	s := NewServer(eng)
	if s.Meter("x", sim.Minute) != s.Meter("x", sim.Hour) {
		t.Fatal("meter not cached by name")
	}
	if s.Avg("y", 5) != s.Avg("y", 10) {
		t.Fatal("avg not cached by name")
	}
}

func TestGuards(t *testing.T) {
	eng := sim.NewEngine()
	for _, f := range []func(){
		func() { NewMeter(eng, 0) },
		func() { NewRollingAvg(0) },
		func() { (&Series{}).Bucketize(0, sim.Minute) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
