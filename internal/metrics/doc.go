// Package metrics implements the metrics server of LIFL's control plane
// (Fig. 3): time-series storage fed by the per-node agents (which drain the
// eBPF metrics maps, §4.3), sliding-window arrival-rate meters used by the
// load balancer's k_{i,t}, and execution-time averages used for E_{i,t}.
//
// Series are append-only during a run; Server.TrimAll bounds them to a
// constant tail when rounds retire, so diagnostic storage never grows
// with run length (docs/MEMORY.md).
//
// Layer (DESIGN.md): component support under internal/core — arrival
// meters feeding the placement/planner inputs.
package metrics
