package experiments

import (
	"repro/internal/fedavg"
	"repro/internal/sim"
	"repro/internal/systems"
	"repro/internal/tensor"
)

// fedAvg returns the aggregation algorithm used by every experiment.
func fedAvg() fedavg.Algorithm { return fedavg.FedAvg{} }

// tensorT shortens closure signatures in experiment job builders.
type tensorT = tensor.Tensor

// injectedJobs builds n client jobs that arrive directly at the aggregation
// service (no broadcast), spread over the given window — the Fig. 8 setting
// where "model updates arrive at the aggregation service concurrently".
func injectedJobs(n int, window sim.Duration, weight float64) []systems.ClientJob {
	jobs := make([]systems.ClientJob, n)
	for k := 0; k < n; k++ {
		var d sim.Duration
		if n > 1 {
			d = window * sim.Duration(k) / sim.Duration(n)
		}
		jobs[k] = systems.ClientJob{
			ID:     "inj",
			Delay:  d,
			Weight: weight,
			MakeUpdate: func(g *tensor.Tensor) *tensor.Tensor {
				u := g.Clone()
				for i := range u.Data {
					u.Data[i] += 0.125
				}
				return u
			},
			SkipBroadcast: true,
			PreQueued:     true,
		}
	}
	return jobs
}
