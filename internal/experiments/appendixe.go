package experiments

import (
	"fmt"
	"strings"

	"repro/internal/aggcore"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/gateway"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/shm"
	"repro/internal/sim"
)

// AppendixEPoint is one probe of the offline MC calibration: offered
// arrival rate k against the measured per-update service time E.
type AppendixEPoint struct {
	ArrivalRate float64 // updates/sec offered
	ExecTime    sim.Duration
	Saturated   bool
}

// AppendixEResult is the derived maximum service capacity.
type AppendixEResult struct {
	Points []AppendixEPoint
	// MC = k′·E′ at the saturation knee (Appendix E).
	MC float64
}

// AppendixE reproduces the offline MC measurement: drive one worker node
// with an open-loop stream of ResNet-152 updates at increasing arrival
// rates and record the average commit→aggregated service time. When E
// inflates sharply the node is overloaded; MC = k′·E′ at that point. The
// Fig. 8 experiments hard-code MC=20 from the paper — this probe shows the
// calibrated simulator lands in the same regime.
//
// Each rate probe is an independent single-node simulation, so with
// Parallelism > 1 the sweep probes every rate concurrently and truncates
// at the first saturation knee; serially it walks rates in order and
// stops at the knee. Both paths report identical points.
func AppendixE() AppendixEResult {
	m := model.ResNet152
	var res AppendixEResult
	base := probeServiceTime(m, 0.5)
	knee := func(e sim.Duration) bool {
		// "A significant increase in E" — the paper's knee criterion. MC is
		// k′·E′ at the point the node becomes overloaded.
		return float64(e) > 2.0*float64(base)
	}
	var rates []float64
	for k := 1.0; k <= 12; k += 0.5 {
		rates = append(rates, k)
	}
	// One accumulation loop for both modes: `probe` either reads the
	// pre-computed concurrent sweep (speculating past the knee) or probes
	// lazily so the serial walk still stops at the knee.
	probe := func(i int) sim.Duration { return probeServiceTime(m, rates[i]) }
	if Parallelism > 1 {
		times := harness.Map(Parallelism, len(rates), probe)
		probe = func(i int) sim.Duration { return times[i] }
	}
	for i, k := range rates {
		e := probe(i)
		pt := AppendixEPoint{ArrivalRate: k, ExecTime: e}
		if knee(e) {
			pt.Saturated = true
			res.Points = append(res.Points, pt)
			res.MC = k * e.Seconds()
			break
		}
		res.Points = append(res.Points, pt)
	}
	if res.MC == 0 {
		last := res.Points[len(res.Points)-1]
		res.MC = last.ArrivalRate * last.ExecTime.Seconds()
	}
	return res
}

// probeParallelism is the aggregator pool the probe keeps busy: the
// two-level plan a fully loaded node runs (10 leaves, fan-in 2).
const probeParallelism = 10

// probeServiceTime offers `rate` updates/sec to one node for a fixed window
// and returns the mean commit→aggregated latency. Far past saturation the
// open-loop backlog is unbounded and can overrun the node's shm store
// mid-window; that is the overload signal, not a probe failure, so it is
// reported as fully wedged (the parallel sweep probes such rates before
// knowing where the knee is).
func probeServiceTime(m model.Spec, rate float64) (e sim.Duration) {
	defer func() {
		if r := recover(); r != nil {
			e = sim.Hour
		}
	}()
	eng := sim.NewEngine()
	p := costmodel.Default()
	cl := cluster.New(eng, sim.NewRNG(77), p, 1)
	n := cl.Nodes[0]
	gw := gateway.New(n)
	gateway.Connect(gw)
	alg := fedAvg()

	// A saturated node's hierarchy: 10 leaves that keep re-arming, so the
	// probe measures steady-state service, not a single round.
	leaves := make([]*aggcore.Aggregator, probeParallelism)
	var total sim.Duration
	var count int
	for i := range leaves {
		a := aggcore.New(fmt.Sprintf("probe-leaf%d", i), aggcore.RoleLeaf, n, alg, m.PhysLen(), m.Params)
		a.Mode = aggcore.Eager
		a.OnComplete = nil
		a.Transport = rearmTransport{}
		a.Assign(aggcore.RoleLeaf, 1<<30, "", 0) // never Send: open-loop folding
		leaves[i] = a
	}
	// Open-loop Poisson-ish arrivals for a 2-minute window.
	window := 2 * sim.Minute
	rng := sim.NewRNG(78)
	delivered := make([]int, len(leaves))
	next := sim.Duration(0)
	i := 0
	for next < window {
		gap := sim.Duration(rng.ExpFloat64() / rate * float64(sim.Second))
		next += gap
		li := i % len(leaves)
		i++
		arrive := next
		eng.At(arrive, func() {
			leaf := leaves[li]
			submitted := eng.Now()
			// The full ingest path: NIC wire, kernel RX, gateway commit into
			// shm — the realistic bottleneck for 232 MB updates on 10 GbE.
			gw.ReceiveExternal(gateway.Update{
				Tensor: m.NewTensor(), Weight: 1, Size: m.Bytes(),
				NTensors: 1, Producer: "probe",
			}, func(key shm.Key) {
				obj, err := n.Shm.Get(key)
				if err != nil {
					panic(err)
				}
				delivered[li]++
				target := delivered[li] // FIFO: done hits this when ours folds
				leaf.Receive(aggcore.Update{
					Tensor: obj.Tensor, Weight: 1, Size: obj.Size, Key: key, Store: n.Shm,
				})
				var poll func()
				poll = func() {
					if leaf.Done() >= target {
						total += eng.Now() - submitted
						count++
						return
					}
					eng.After(50*sim.Millisecond, poll)
				}
				eng.After(50*sim.Millisecond, poll)
			})
		})
	}
	if err := eng.Run(window + 5*sim.Minute); err != nil {
		panic(err)
	}
	if count == 0 {
		return sim.Hour // fully wedged: report as saturated
	}
	return total / sim.Duration(count)
}

// rearmTransport is unreachable (goal never met) but satisfies the interface.
type rearmTransport struct{}

func (rearmTransport) SendResult(*aggcore.Aggregator, aggcore.Update, string) {}

// FormatAppendixE renders the probe like the appendix describes it.
func FormatAppendixE(r AppendixEResult) string {
	var b strings.Builder
	b.WriteString("Appendix E — offline maximum service capacity probe (ResNet-152, 1 node)\n")
	for _, pt := range r.Points {
		mark := ""
		if pt.Saturated {
			mark = "  <- saturation knee"
		}
		fmt.Fprintf(&b, "  k=%4.1f/s  E=%7.2fs%s\n", pt.ArrivalRate, pt.ExecTime.Seconds(), mark)
	}
	fmt.Fprintf(&b, "derived MC = %.0f concurrent updates (paper configures 20)\n", r.MC)
	return b.String()
}
