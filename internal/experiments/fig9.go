package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Fig9Row is one system's end-to-end workload outcome for one model:
// time-to-accuracy (Fig. 9(a,c)) and cost-to-accuracy (Fig. 9(b,d)).
type Fig9Row struct {
	System   core.SystemKind
	Model    model.Spec
	Reached  bool
	TimeTo70 sim.Duration
	CPUTo70  sim.Duration
	Rounds   int
	Report   *core.Report
}

// Fig9 runs the full §6.2 workload for the three systems on one model,
// fanning the independent runs across the sweep harness. The workload
// itself is the "fig9-r18"/"fig9-r152" registry scenario: ResNet-18 with
// 120 simultaneously active mobile clients, or ResNet-152 with 15
// always-on server clients; both select from 2,800 FedScale-like clients.
func Fig9(m model.Spec, seed int64) []Fig9Row {
	name := "fig9-r152"
	if m.Name == model.ResNet18.Name {
		name = "fig9-r18"
	}
	sc := scenario.MustGet(name)
	sc.Model = m // ResNet-34 etc. run on the r152 shape, as before
	sc.Seed = seed
	runs := sc.Expand()
	rows := make([]Fig9Row, 0, len(runs))
	for i, res := range harness.Sweep(runs, Parallelism) {
		if res.Err != nil {
			panic(fmt.Sprintf("fig9 %s: %v", runs[i].Cfg.System, res.Err))
		}
		rows = append(rows, Fig9Row{
			System:   runs[i].Cfg.System,
			Model:    m,
			Reached:  res.Report.Reached,
			TimeTo70: res.Report.TimeToTarget,
			CPUTo70:  res.Report.CPUToTarget,
			Rounds:   len(res.Report.Rounds),
			Report:   res.Report,
		})
	}
	return rows
}

// FormatFig9 renders time/cost-to-accuracy with the paper's reference
// numbers alongside.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	paper := map[string]map[core.SystemKind][2]float64{
		model.ResNet18.Name:  {core.SystemLIFL: {0.9, 4.5}, core.SystemSF: {1.4, 8.0}, core.SystemSL: {2.4, 26.0}},
		model.ResNet152.Name: {core.SystemLIFL: {1.9, 4.76}, core.SystemSF: {2.2, 6.81}, core.SystemSL: {3.2, 20.4}},
	}
	fmt.Fprintf(&b, "Fig.9 — time/cost to 70%% accuracy, %s\n", rows[0].Model.Name)
	fmt.Fprintf(&b, "%-6s %9s %12s %9s %12s %7s\n", "system", "wall(h)", "paper-wall", "cpu(h)", "paper-cpu", "rounds")
	for _, r := range rows {
		ref := paper[r.Model.Name][r.System]
		status := ""
		if !r.Reached {
			status = "  (target not reached)"
		}
		fmt.Fprintf(&b, "%-6s %9.2f %12.1f %9.2f %12.1f %7d%s\n",
			string(r.System), r.TimeTo70.Hours(), ref[0], r.CPUTo70.Hours(), ref[1], r.Rounds, status)
	}
	return b.String()
}

// Fig10Series extracts the Fig. 10 time series from a workload report.
type Fig10Series struct {
	System            core.SystemKind
	ArrivalsPerMinute []float64
	ActiveAggs        []int
	CPUPerRound       []float64
}

// Fig10 derives the three per-system series from Fig. 9 runs.
func Fig10(rows []Fig9Row) []Fig10Series {
	out := make([]Fig10Series, 0, len(rows))
	for _, r := range rows {
		out = append(out, Fig10Series{
			System:            r.System,
			ArrivalsPerMinute: r.Report.ArrivalsPerMinute,
			ActiveAggs:        r.Report.ActiveAggs,
			CPUPerRound:       r.Report.CPUPerRound,
		})
	}
	return out
}

// FormatFig10 prints compact series summaries (first 10 rounds + steady
// state) matching the shape of Fig. 10's panels.
func FormatFig10(series []Fig10Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s:\n", s.System)
		fmt.Fprintf(&b, "  arrivals/min (first 10m): %s\n", fmtFloats(s.ArrivalsPerMinute, 10))
		fmt.Fprintf(&b, "  active aggs  (per round): %s\n", fmtInts(s.ActiveAggs, 10))
		fmt.Fprintf(&b, "  cpu s/round  (per round): %s\n", fmtFloats(s.CPUPerRound, 10))
	}
	return b.String()
}

func fmtFloats(v []float64, n int) string {
	if len(v) > n {
		v = v[:n]
	}
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.0f", x)
	}
	return strings.Join(parts, " ")
}

func fmtInts(v []int, n int) string {
	if len(v) > n {
		v = v[:n]
	}
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, " ")
}
