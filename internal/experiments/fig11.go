package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Fig11Row is one system's outcome on the async×sync ablation workload.
type Fig11Row struct {
	Label string
	// Rounds counts synchronous rounds, or model versions for the async
	// system (a version folds BufferK updates, a round ActivePerRound).
	Rounds  int
	Reached bool
	// TTA/CTA are simulated time and CPU cost at the 0.70 crossing.
	TTA sim.Duration
	CTA sim.Duration
	// MeanStaleness is the mean version lag of folded updates — zero for
	// the synchronous systems by construction.
	MeanStaleness float64
}

// Fig11 reproduces the Appendix A comparison at workload scale: the
// buffered-async system against LIFL/SF/SL on the same ResNet-18
// population (the fig11-ablation registry entry). seed overrides the
// scenario default when non-zero. Runs fan across the package worker pool.
func Fig11(seed int64) []Fig11Row {
	sc := scenario.MustGet("fig11-ablation")
	if seed != 0 {
		sc.Seed = seed
	}
	runs := sc.Expand()
	results := harness.Sweep(runs, Parallelism)
	rows := make([]Fig11Row, 0, len(results))
	for i, res := range results {
		if res.Err != nil {
			panic(fmt.Sprintf("fig11 %s: %v", runs[i].Label, res.Err))
		}
		rep := res.Report
		rows = append(rows, Fig11Row{
			Label:         runs[i].Label,
			Rounds:        rep.RoundsRun,
			Reached:       rep.Reached,
			TTA:           rep.TimeToTarget,
			CTA:           rep.CPUToTarget,
			MeanStaleness: rep.MeanStaleness,
		})
	}
	return rows
}

// FormatFig11 renders the async×sync comparison table.
func FormatFig11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Fig. 11 (Appendix A) — buffered-async vs synchronous, ResNet-18 to 70%\n")
	fmt.Fprintf(&b, "%-8s %16s %9s %9s %11s\n", "system", "rounds/versions", "tta(h)", "cpu(h)", "staleness")
	for _, r := range rows {
		if !r.Reached {
			fmt.Fprintf(&b, "%-8s %16d %9s %9s %11.2f  (target not reached)\n",
				r.Label, r.Rounds, "-", "-", r.MeanStaleness)
			continue
		}
		fmt.Fprintf(&b, "%-8s %16d %9.2f %9.2f %11.2f\n",
			r.Label, r.Rounds, r.TTA.Hours(), r.CTA.Hours(), r.MeanStaleness)
	}
	return b.String()
}
