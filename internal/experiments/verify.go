package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
)

// Check is one paper-vs-measured gate of the reproduction.
type Check struct {
	Name     string
	Paper    string
	Measured string
	Pass     bool
}

// Verify runs the fast calibration gates (everything except the full
// Fig. 9 workloads unless full is true) and reports pass/fail against the
// paper's numbers. This is the one-command answer to "does the
// reproduction still hold?".
func Verify(full bool) []Check {
	var out []Check
	add := func(name, paper, measured string, pass bool) {
		out = append(out, Check{Name: name, Paper: paper, Measured: measured, Pass: pass})
	}

	// Fig. 7 — data-plane calibration.
	rows := Fig7ab()
	r := rows[2]
	lifl := r.LIFLLat.Seconds()
	sfR := r.SFLat.Seconds() / lifl
	slR := r.SLLat.Seconds() / lifl
	add("Fig7a LIFL R152 transfer", "0.76 s", fmt.Sprintf("%.2f s", lifl), lifl > 0.68 && lifl < 0.84)
	add("Fig7a SF/LIFL ratio", "3x", fmt.Sprintf("%.1fx", sfR), sfR > 2.5 && sfR < 3.5)
	add("Fig7a SL/LIFL ratio", "5.8x", fmt.Sprintf("%.1fx", slR), slR > 5.0 && slR < 6.6)
	g := r.LIFLCycles / 1e9
	add("Fig7b LIFL CPU", "2.45 Gcycles", fmt.Sprintf("%.2f G", g), g > 2.2 && g < 2.7)

	// Fig. 4 — hierarchy alone ≈ no gain; LIFL data plane wins.
	f4 := Fig4()
	f7c := Fig7c()
	nhwh := f4.NHRound.Seconds() / f4.WHRound.Seconds()
	add("Fig4 NH≈WH", "59.8 vs 57 s (~1.05x)", fmt.Sprintf("%.2fx", nhwh), nhwh > 0.85 && nhwh < 1.25)
	add("Fig7c LIFL fastest round", "44.9 s < 57 s", fmt.Sprintf("%.1f s < %.1f s", f7c.Round.Seconds(), f4.WHRound.Seconds()),
		f7c.Round < f4.WHRound)

	// Fig. 8 — orchestration ablation shape.
	cells := Fig8([]int{20, 100})
	var slh20, full20, full100 Fig8Cell
	for _, c := range cells {
		switch {
		case c.Variant == "SL-H" && c.Updates == 20:
			slh20 = c
		case c.Variant == "+1+2+3+4" && c.Updates == 20:
			full20 = c
		case c.Variant == "+1+2+3+4" && c.Updates == 100:
			full100 = c
		}
	}
	gain := slh20.ACT.Seconds() / full20.ACT.Seconds()
	add("Fig8a orchestration gain @20", ">2x (compound)", fmt.Sprintf("%.1fx", gain), gain > 1.4)
	add("Fig8d nodes used 20/100", "1 / 5", fmt.Sprintf("%d / %d", full20.Nodes, full100.Nodes),
		full20.Nodes == 1 && full100.Nodes == 5)

	// Fig. 13 — queuing pipeline shape.
	f13 := Fig13()
	var liflQ, monoQ, microQ, slbQ Fig13Row
	for _, row := range f13 {
		if row.Model.Name != model.ResNet152.Name {
			continue
		}
		switch row.Setup {
		case "LIFL":
			liflQ = row
		case "SF-mono":
			monoQ = row
		case "SF-micro":
			microQ = row
		case "SL-B":
			slbQ = row
		}
	}
	add("Fig13 LIFL ≈ SF-mono", "equivalent", fmt.Sprintf("Δ %.0f ms", (liflQ.Delay-monoQ.Delay).Seconds()*1000),
		(liflQ.Delay-monoQ.Delay).Seconds() < 0.001)
	add("Fig13 SL-B memory", "3x", fmt.Sprintf("%.1fx", float64(slbQ.MemBytes)/float64(liflQ.MemBytes)),
		slbQ.MemBytes == 3*liflQ.MemBytes)
	add("Fig13 delay order", "LIFL < SL-B < SF-micro",
		fmt.Sprintf("%.2f < %.2f < %.2f s", liflQ.Delay.Seconds(), slbQ.Delay.Seconds(), microQ.Delay.Seconds()),
		liflQ.Delay < slbQ.Delay && slbQ.Delay < microQ.Delay)

	// §6.1 overhead bounds.
	ovh := Overhead(10_000)
	add("Placement 10K clients", "<17 ms", fmt.Sprintf("%d ms", ovh.PlacementWall.Milliseconds()),
		ovh.PlacementWall.Milliseconds() <= 17)

	if full {
		for _, m := range []model.Spec{model.ResNet18, model.ResNet152} {
			f9 := Fig9(m, 1)
			var liflW, sfW, slW float64
			var liflC, slC float64
			for _, row := range f9 {
				switch row.System {
				case core.SystemLIFL:
					liflW, liflC = row.TimeTo70.Hours(), row.CPUTo70.Hours()
				case core.SystemSF:
					sfW = row.TimeTo70.Hours()
				case core.SystemSL:
					slW, slC = row.TimeTo70.Hours(), row.CPUTo70.Hours()
				}
			}
			add(fmt.Sprintf("Fig9 %s wall order", m.Name), "LIFL < SF < SL",
				fmt.Sprintf("%.2f < %.2f < %.2f h", liflW, sfW, slW), liflW < sfW && sfW < slW)
			add(fmt.Sprintf("Fig9 %s SL/LIFL CPU", m.Name), ">4x",
				fmt.Sprintf("%.1fx", slC/liflC), slC/liflC > 3.5)
		}
	}
	return out
}

// FormatVerify renders the gate table.
func FormatVerify(checks []Check) string {
	var b strings.Builder
	pass := 0
	for _, c := range checks {
		mark := "FAIL"
		if c.Pass {
			mark = "ok"
			pass++
		}
		fmt.Fprintf(&b, "%-32s paper: %-24s measured: %-24s %s\n", c.Name, c.Paper, c.Measured, mark)
	}
	fmt.Fprintf(&b, "%d/%d reproduction gates hold\n", pass, len(checks))
	return b.String()
}
