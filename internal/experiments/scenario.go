package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scenario"
)

// Parallelism is the worker count every sweep in this package fans its
// independent runs across (1 = serial). Each run owns a private engine and
// seed-derived randomness, so results — and therefore every formatted
// figure — are byte-identical at any setting; see internal/harness.
// cmd/liflsim sets it from -parallel.
var Parallelism = 1

// Workers, when > 0, overrides the per-scenario intra-run worker pool
// (scenario.Scenario.Workers → core.RunConfig.Workers: the staged round
// loop's parallel stages) for every run RunScenario expands. 0 keeps each
// scenario's pinned value. Orthogonal to Parallelism — that fans whole
// runs, this parallelizes stages inside one run; both are wall-clock-only
// knobs (byte-identical output at any setting). cmd/liflsim sets it from
// an explicit -workers.
var Workers = 0

// CellPlan, when non-nil, overrides the per-scenario reconfiguration plan
// (scenario.Scenario.CellPlan → core.RunConfig.CellPlan: the elastic
// fabric's round-stamped join/drain/weight pushes) for every run
// RunScenario expands. Only fabric runs (Cells > 0) pick it up; the fabric
// validates it wholesale at run start, and a rejected plan leaves the run
// byte-identical to the unplanned one. cmd/liflsim sets it from -cellplan.
var CellPlan *core.CellPlan

// TrajDir, when non-empty, equips every run RunScenario expands with a
// trajectory sink writing under that directory (one .traj file per run,
// named by harness.TrajPath). The files are sealed before RunScenario
// returns, so `liflsim replay` can read them immediately. cmd/liflsim
// sets it from -traj.
var TrajDir = ""

// TelemetryDir, when non-empty, equips every run RunScenario expands with
// an obs.Registry and writes one .telemetry.json snapshot per run under
// that directory (harness.AttachTelemetry). Telemetry stays off when
// empty — instrumented sites are no-ops on a nil registry. cmd/liflsim
// sets it from -telemetry.
var TelemetryDir = ""

// TelemetryWall opts attached registries into wall-clock capture: the
// snapshot grows a "wall" section (Volatile metrics + stage spans) whose
// bytes legitimately vary run over run. cmd/liflsim sets it from
// -telemetry-wall.
var TelemetryWall = false

// PerfettoOut additionally writes each run's Chrome/Perfetto trace_event
// export (<run>.trace.json) next to the snapshots under TelemetryDir.
// cmd/liflsim sets it from -perfetto.
var PerfettoOut = false

// ScenarioNames lists the registered scenarios.
func ScenarioNames() []string { return scenario.Names() }

// FormatScenarioList renders the registry with descriptions and bench
// scale classes (cmd/liflsim `scenarios`; pinned by a golden test).
func FormatScenarioList() string {
	var b strings.Builder
	b.WriteString("Registered scenarios:\n")
	for _, n := range scenario.Names() {
		s := scenario.MustGet(n)
		fmt.Fprintf(&b, "  %-18s [%s] %s (%d runs)\n", n, s.Bench.ClassOrDefault(), s.Description, len(s.Expand()))
	}
	return b.String()
}

// RunScenario expands the named registry scenario, sweeps it across the
// worker pool, and renders a generic outcome table. seed overrides the
// scenario's default when non-zero (ignored by scenarios with an explicit
// Seeds axis).
func RunScenario(name string, seed int64) (string, error) {
	sc, ok := scenario.Get(name)
	if !ok {
		return "", fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(scenario.Names(), ", "))
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if Workers > 0 {
		// Scalar override only: a scenario sweeping a WorkerCounts axis
		// keeps its axis (the sweep is the point of such an entry).
		sc.Workers = Workers
	}
	if CellPlan != nil {
		sc.CellPlan = CellPlan
	}
	runs := sc.Expand()
	var closeTraj func() error
	if TrajDir != "" {
		var err error
		closeTraj, err = harness.AttachTrajectories(runs, TrajDir)
		if err != nil {
			return "", err
		}
	}
	var flushTelemetry func() error
	if TelemetryDir != "" {
		var err error
		flushTelemetry, err = harness.AttachTelemetry(runs, harness.TelemetryOptions{
			Dir: TelemetryDir, Wall: TelemetryWall, Perfetto: PerfettoOut,
		})
		if err != nil {
			return "", err
		}
	}
	results := harness.Sweep(runs, Parallelism)
	if closeTraj != nil {
		// Seal before formatting: the remainder block is written at Close,
		// and the caller may replay the files as soon as we return.
		if err := closeTraj(); err != nil {
			return "", err
		}
	}
	if flushTelemetry != nil {
		if err := flushTelemetry(); err != nil {
			return "", err
		}
	}
	return FormatScenario(sc, results), nil
}

// FormatScenario renders one sweep's outcomes: per-run scalar metrics that
// survive both workload runs and injected microbenchmarks (and StreamOnly
// lean reports). Multi-cell (fabric) runs are followed by their per-cell
// detail lines.
func FormatScenario(sc scenario.Scenario, results []harness.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %s — %s\n", sc.Name, sc.Description)
	fmt.Fprintf(&b, "%-22s %7s %8s %9s %9s %9s %9s\n",
		"run", "rounds", "reached", "wall(h)", "cpu(h)", "tta(h)", "failures")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-22s ERROR: %v\n", r.Run.Label, r.Err)
			continue
		}
		rep := r.Report
		fmt.Fprintf(&b, "%-22s %7d %8v %9.2f %9.2f %9.2f %9d\n",
			r.Run.Label, rep.RoundsRun, rep.Reached,
			rep.Elapsed.Hours(), rep.CPUTotal.Hours(), rep.TimeToTarget.Hours(),
			rep.FailuresDetected)
		if r.Cells != nil {
			b.WriteString(formatCellDetail(r.Cells))
		}
	}
	return b.String()
}

// formatCellDetail renders a fabric run's per-cell lines (indented under
// the run's row) plus the outage summary when one was injected.
func formatCellDetail(d *cell.Detail) string {
	var b strings.Builder
	for _, c := range d.Cells {
		state := "ok"
		switch {
		case c.Dead:
			state = fmt.Sprintf("dead@r%d", c.DiedRound)
		case c.Drained:
			state = fmt.Sprintf("drained@r%d", c.DrainedRound)
		case c.RestoredRound > 0:
			state = fmt.Sprintf("restored@r%d", c.RestoredRound)
		case c.JoinedRound > 0:
			state = fmt.Sprintf("joined@r%d", c.JoinedRound)
		}
		fmt.Fprintf(&b, "    cell %d: clients=%d active=%d rounds=%d ckpts=%d cpu(h)=%.2f %s\n",
			c.Cell, c.Clients, c.ActivePerRound, c.RoundsRun, c.Checkpoints, c.CPUTime.Hours(), state)
	}
	if d.OutageDetectedAt > 0 {
		fmt.Fprintf(&b, "    outage: detected at %.1f min, %d clients re-routed, %d partial round(s) discarded\n",
			d.OutageDetectedAt.Minutes(), d.ReRoutedClients, d.CellRoundsDiscarded)
	}
	if p := d.Plan; p != nil {
		if p.Rejected != "" {
			fmt.Fprintf(&b, "    plan: REJECTED wholesale (%s); ran as unplanned\n", p.Rejected)
		} else {
			fmt.Fprintf(&b, "    plan: v%d applied, %d push(es), %d joined, %d drained\n",
				p.Version, len(p.Pushes), p.CellsJoined, p.CellsDrained)
		}
	}
	return b.String()
}

// PlanDiff dry-runs the named scenario's reconfiguration plan without
// executing the workload: the elastic fabric validates the plan wholesale
// against the scenario's fabric shape and returns the versioned push
// schedule it would apply (the `liflsim plan` verb). The CellPlan override
// applies here exactly as in RunScenario, so `-cellplan ... plan <name>` is
// the dry run of `-cellplan ... scenario <name>`.
func PlanDiff(name string) (string, error) {
	sc, ok := scenario.Get(name)
	if !ok {
		return "", fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(scenario.Names(), ", "))
	}
	if CellPlan != nil {
		sc.CellPlan = CellPlan
	}
	runs := sc.Expand()
	var b strings.Builder
	shown := false
	for _, r := range runs {
		if r.Cfg.Cells == nil {
			continue
		}
		shown = true
		pushes, err := cell.PlanDiff(r.Cfg)
		if err != nil {
			return "", fmt.Errorf("scenario %s run %s: plan rejected: %w", name, r.Label, err)
		}
		fmt.Fprintf(&b, "Plan for %s (run %s):\n", name, r.Label)
		if len(pushes) == 0 {
			b.WriteString("  no reconfiguration plan: the fabric runs with its initial shape\n")
			continue
		}
		for _, p := range pushes {
			fmt.Fprintf(&b, "  push v%d @ round %d:\n", p.Version, p.Round)
			for _, d := range p.Diff {
				fmt.Fprintf(&b, "    %s\n", d)
			}
		}
	}
	if !shown {
		return "", fmt.Errorf("scenario %q has no fabric runs (Cells = 0): nothing to plan", name)
	}
	return b.String(), nil
}

// RunGeo sweeps the geo scenario family — the locality-routed multi-cell
// fabric and its failover policies — rendering each scenario with per-cell
// detail (the `liflsim geo` verb).
func RunGeo(seed int64) (string, error) {
	var b strings.Builder
	for _, name := range []string{"geo-4cell", "cell-outage"} {
		out, err := RunScenario(name, seed)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
	}
	return b.String(), nil
}
