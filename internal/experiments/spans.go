package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SpansScenario runs the named scenario and renders each run's task spans
// as an ASCII Gantt (the `liflsim spans` verb) — the standing visual of
// Fig. 4 / Fig. 7(c), now available for any registered scenario. Runs
// execute sequentially with a private trace.Recorder each; the busiest
// eight actors (by total span time, ties broken by name) get rows.
// Fabric runs are skipped with a note: cells step in parallel and carry
// no shared recorder (see internal/cell).
func SpansScenario(name string, seed int64) (string, error) {
	sc, ok := scenario.Get(name)
	if !ok {
		return "", fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(scenario.Names(), ", "))
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if Workers > 0 {
		sc.Workers = Workers
	}
	runs := sc.Expand()
	var b strings.Builder
	fmt.Fprintf(&b, "Spans for %s — %s\n", sc.Name, sc.Description)
	for i := range runs {
		if runs[i].Cfg.Cells != nil {
			fmt.Fprintf(&b, "\nrun %s: fabric run (cells step in parallel; no shared span log) — skipped\n", runs[i].Label)
			continue
		}
		rec := &trace.Recorder{}
		runs[i].Cfg.Tracer = rec
		if _, _, err := harness.Execute(runs[i].Cfg); err != nil {
			return "", fmt.Errorf("spans %s/%s: %w", name, runs[i].Label, err)
		}
		fmt.Fprintf(&b, "\nrun %s (%d spans):\n", runs[i].Label, len(rec.Spans()))
		b.WriteString(rec.RenderGantt(busiestActors(rec, 8), 0, 100))
	}
	return b.String(), nil
}

// busiestActors picks the top n actors by total span time, descending,
// ties broken by name — a deterministic row order for the Gantt.
func busiestActors(rec *trace.Recorder, n int) []string {
	totals := make(map[string]sim.Duration)
	for _, s := range rec.Spans() {
		totals[s.Actor] += s.End - s.Start
	}
	actors := make([]string, 0, len(totals))
	for a := range totals {
		actors = append(actors, a)
	}
	sort.Slice(actors, func(i, j int) bool {
		if totals[actors[i]] != totals[actors[j]] {
			return totals[actors[i]] > totals[actors[j]]
		}
		return actors[i] < actors[j]
	})
	if len(actors) > n {
		actors = actors[:n]
	}
	return actors
}
