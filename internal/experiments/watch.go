package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// WatchScenario runs the named scenario's expanded runs sequentially,
// rendering each through a live obs.Dash on w (the `liflsim watch` verb).
// On a TTY the dash repaints a panel; otherwise it degrades to one line
// per round — the form CI smokes. Runs are sequential regardless of
// Parallelism: the dashboard is a single shared terminal, and watch is a
// observation mode, not a sweep mode. Each run gets a wall-capturing
// registry so the stage breakdown and per-cell share table render live;
// watch never writes telemetry files (use -telemetry for that).
func WatchScenario(w io.Writer, tty bool, name string, seed int64) error {
	sc, ok := scenario.Get(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(scenario.Names(), ", "))
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if Workers > 0 {
		sc.Workers = Workers
	}
	if CellPlan != nil {
		sc.CellPlan = CellPlan
	}
	runs := sc.Expand()
	for i := range runs {
		reg := obs.New(obs.Options{CaptureWall: true})
		runs[i].Cfg.Telemetry = reg
		dash := obs.NewDash(w, tty, reg, runs[i].Label)
		cfg := runs[i].Cfg
		runs[i].Cfg.OnRound = func(ob core.RoundObservation) {
			dash.Observe(obs.DashUpdate{
				Round:     ob.Result.Round,
				MaxRounds: cfg.MaxRounds,
				Accuracy:  ob.Acc.Accuracy,
				Target:    cfg.TargetAccuracy,
				SimNow:    ob.Result.End,
				Wall:      ob.Wall,
				Updates:   ob.Result.Updates,
				Shares:    ob.Shares,
				Discarded: ob.Discarded,
			})
		}
		if _, _, err := harness.Execute(runs[i].Cfg); err != nil {
			return fmt.Errorf("watch %s/%s: %w", name, runs[i].Label, err)
		}
		dash.Done()
	}
	return nil
}
