package experiments

import (
	"fmt"
	"strings"

	"repro/internal/aggcore"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sidecar"
	"repro/internal/sim"
)

// Fig7Row is one bar group of Fig. 7(a)/(b): a single model-update transfer
// between a leaf and the top aggregator on the same node.
type Fig7Row struct {
	Model      model.Spec
	LIFLLat    sim.Duration
	SFLat      sim.Duration
	SLLat      sim.Duration
	SLSidecar  sim.Duration // +SC share of the SL bar
	SLBroker   sim.Duration // +MB share of the SL bar
	LIFLCycles float64      // CPU cycles (Fig. 7(b))
	SFCycles   float64
	SLCycles   float64
}

// Fig7ab measures the intra-node single-transfer latency and CPU for the
// three data planes across the three models. Every path runs on a fresh
// one-node cluster so the measurement is unloaded, like the paper's
// microbenchmark.
func Fig7ab() []Fig7Row {
	var rows []Fig7Row
	for _, m := range model.All {
		row := Fig7Row{Model: m}
		row.LIFLLat, row.LIFLCycles = measureLIFLTransfer(m)
		row.SFLat, row.SFCycles = measureSFTransfer(m)
		row.SLLat, row.SLCycles, row.SLSidecar, row.SLBroker = measureSLTransfer(m)
		rows = append(rows, row)
	}
	return rows
}

// pair builds a one-node cluster with a source and destination aggregator.
func pair(m model.Spec) (*sim.Engine, *cluster.Node, *aggcore.Aggregator, *aggcore.Aggregator) {
	eng := sim.NewEngine()
	p := costmodel.Default()
	cl := cluster.New(eng, sim.NewRNG(1), p, 1)
	n := cl.Nodes[0]
	alg := fedAvg()
	src := aggcore.New("leaf", aggcore.RoleLeaf, n, alg, m.PhysLen(), m.Params)
	dst := aggcore.New("top", aggcore.RoleTop, n, alg, m.PhysLen(), m.Params)
	return eng, n, src, dst
}

// measureLIFLTransfer: the producer writes its aggregate into shared memory
// (one copy) and the 16-byte key passes over SKMSG; the consumer reads in
// place. Latency is write + key pass; CPU is the shm write + eBPF event.
func measureLIFLTransfer(m model.Spec) (sim.Duration, float64) {
	eng, n, src, _ := pair(m)
	size := m.Bytes()
	var doneAt sim.Duration
	shmLat, shmCPU := n.P.ShmWrite(size)
	src.ExecAs("aggregator", shmLat, shmCPU, func(_, _ sim.Duration) {
		if _, err := n.Shm.Put(m.NewTensor(), 1, "leaf", 0); err != nil {
			panic(err)
		}
		n.ExecFree("ebpf-sidecar", costmodel.Cycles(n.P.EBPFMetricsCycles))
		eng.After(n.P.ShmKeyPassLatency, func() { doneAt = eng.Now() })
	})
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	return doneAt, costmodel.CyclesOf(n.TotalCPUTime())
}

// measureSFTransfer: direct gRPC over the kernel loopback — serialize,
// kernel TX, kernel RX, deserialize, each half on its aggregator's process.
func measureSFTransfer(m model.Spec) (sim.Duration, float64) {
	eng, n, src, dst := pair(m)
	size := m.Bytes()
	nT := len(m.Layers)
	p := n.P
	var doneAt sim.Duration
	serLat, serCPU := p.Serialize(size, nT)
	txLat, txCPU := p.KernelTraversal(size)
	rxLat, rxCPU := p.KernelTraversal(size)
	desLat, desCPU := p.Deserialize(size, nT)
	src.ExecAs("sf-transport", serLat, serCPU, func(_, _ sim.Duration) {
		n.KernelExec("sf-transport", txLat+rxLat, txCPU+rxCPU, func(_, _ sim.Duration) {
			dst.ExecAs("sf-transport", desLat, desCPU, func(_, _ sim.Duration) {
				doneAt = eng.Now()
			})
		})
	})
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	return doneAt, costmodel.CyclesOf(n.TotalCPUTime())
}

// measureSLTransfer: the SF kernel path plus a sidecar interception on each
// side plus the store-and-forward broker hop, with the +SC and +MB shares
// reported separately as in the figure.
func measureSLTransfer(m model.Spec) (lat sim.Duration, cycles float64, sc, mb sim.Duration) {
	eng, n, src, dst := pair(m)
	size := m.Bytes()
	nT := len(m.Layers)
	p := n.P
	br := broker.New(n)
	scSrc := sidecar.NewContainer(n, "leaf")
	scDst := sidecar.NewContainer(n, "top")
	var doneAt sim.Duration
	serLat, serCPU := p.Serialize(size, nT)
	txLat, txCPU := p.KernelTraversal(size)
	rxLat, rxCPU := p.KernelTraversal(size)
	desLat, desCPU := p.Deserialize(size, nT)

	br.Subscribe("top", func(msg broker.Message) {
		scDst.Intercept(msg.Size, func() {
			n.KernelExec("sl-transport", rxLat, rxCPU, func(_, _ sim.Duration) {
				dst.ExecAs("sl-transport", desLat, desCPU, func(_, _ sim.Duration) {
					doneAt = eng.Now()
				})
			})
		})
	})
	scSrc.Intercept(size, func() {
		src.ExecAs("sl-transport", serLat, serCPU, func(_, _ sim.Duration) {
			n.KernelExec("sl-transport", txLat, txCPU, func(_, _ sim.Duration) {
				br.Publish("top", size, nil)
			})
		})
	})
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	scSrc.Finalize()
	scDst.Finalize()
	scLat, _ := p.SidecarHop(size)
	brLat, _ := p.BrokerHop(size)
	return doneAt, costmodel.CyclesOf(n.TotalCPUTime()), 2 * scLat, brLat
}

// FormatFig7 renders the rows like the paper's bar chart annotations.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.7(a) intra-node transfer latency / Fig.7(b) CPU cycles\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %8s %8s | %10s %10s %10s\n",
		"model", "LIFL", "SF", "SL", "+SC", "+MB", "LIFL(Gc)", "SF(Gc)", "SL(Gc)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2fs %9.2fs %9.2fs %7.2fs %7.2fs | %10.2f %10.2f %10.2f\n",
			r.Model.Name,
			r.LIFLLat.Seconds(), r.SFLat.Seconds(), r.SLLat.Seconds(),
			r.SLSidecar.Seconds(), r.SLBroker.Seconds(),
			r.LIFLCycles/1e9, r.SFCycles/1e9, r.SLCycles/1e9)
	}
	last := rows[len(rows)-1]
	fmt.Fprintf(&b, "ratios (ResNet-152): SF/LIFL=%.1fx SL/LIFL=%.1fx (paper: 3x, 5.8x)\n",
		last.SFLat.Seconds()/last.LIFLLat.Seconds(), last.SLLat.Seconds()/last.LIFLLat.Seconds())
	return b.String()
}
