package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/autoscaler"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/systems"
)

// This file holds the ablation sweeps DESIGN.md calls out — the design
// choices the paper fixes by experiment (leaf fan-in I=2, EWMA α=0.7,
// BestFit packing, gateway vertical scaling) re-derived from our
// implementation so the choices are justified, not inherited.

// FanInResult is one point of the §5.2 leaf fan-in sweep.
type FanInResult struct {
	FanIn int
	ACT   sim.Duration
	Aggs  int
}

// AblateFanIn sweeps the leaf fan-in I for a 20-update ResNet-152 burst on
// one node. Small I maximizes parallelism (the paper picks 2); I=20 is a
// single serial leaf.
func AblateFanIn(fanIns []int) []FanInResult {
	if len(fanIns) == 0 {
		fanIns = []int{1, 2, 4, 10, 20}
	}
	var out []FanInResult
	for _, I := range fanIns {
		p := costmodel.Default()
		p.LeafFanIn = I
		eng := sim.NewEngine()
		s := systems.NewLIFL(eng, systems.Config{
			Nodes: 5, Model: model.ResNet152, MC: 20, Seed: 5, Params: p,
			Flags: systems.AllFlags(),
		})
		jobs := injectedJobs(20, 4*sim.Second, 1)
		var res systems.RoundResult
		s.RunRound(0, jobs, func(r systems.RoundResult) { res = r })
		if err := eng.RunUntilIdle(); err != nil {
			panic(err)
		}
		out = append(out, FanInResult{FanIn: I, ACT: res.ACT, Aggs: res.AggsActive})
	}
	return out
}

// EWMAResult is one point of the §5.2 smoothing-coefficient sweep.
type EWMAResult struct {
	Alpha float64
	// MeanAbsError of the smoothed estimate against the true underlying
	// queue level under bursty noise.
	MeanAbsError float64
}

// AblateEWMA evaluates smoothing coefficients on a synthetic bursty queue
// trace: a slow sinusoidal base load with heavy multiplicative spikes —
// exactly the "short-term spikes in Q" §5.2 guards against.
func AblateEWMA(alphas []float64) []EWMAResult {
	if len(alphas) == 0 {
		alphas = []float64{0, 0.3, 0.5, 0.7, 0.9}
	}
	rng := sim.NewRNG(42)
	const steps = 2_000
	truth := make([]float64, steps)
	observed := make([]float64, steps)
	for i := range truth {
		// Fast-moving base (clients joining/leaving between re-plan cycles)
		// plus occasional heavy spikes: too little smoothing chases spikes,
		// too much lags the base.
		base := 40 + 25*math.Sin(float64(i)/25)
		truth[i] = base
		obs := base
		if rng.Float64() < 0.08 { // spike
			obs *= 1 + 3*rng.Float64()
		}
		observed[i] = obs + 4*rng.NormFloat64()
	}
	var out []EWMAResult
	for _, a := range alphas {
		e := autoscaler.NewEWMA(a)
		var sum float64
		for i := range observed {
			est := e.Update(observed[i])
			sum += math.Abs(est - truth[i])
		}
		out = append(out, EWMAResult{Alpha: a, MeanAbsError: sum / steps})
	}
	return out
}

// PolicyResult is one point of the placement-policy sweep.
type PolicyResult struct {
	Policy string
	ACT    sim.Duration
	Nodes  int
	CPU    sim.Duration
}

// AblatePlacement compares the three §5.1 policies end-to-end on the Fig. 8
// setting (20 updates, 5 nodes, MC 20). BestFit and FirstFit both pack here
// (identical residuals), while WorstFit spreads; the difference shows up in
// nodes used and cross-node CPU.
func AblatePlacement() []PolicyResult {
	var out []PolicyResult
	for _, pol := range []struct {
		name  string
		flags systems.Flags
	}{
		{"bestfit", systems.AllFlags()},
		{"worstfit", systems.Flags{HierarchyPlan: true, Reuse: true, Eager: true}},
	} {
		eng := sim.NewEngine()
		s := systems.NewLIFL(eng, systems.Config{
			Nodes: 5, Model: model.ResNet152, MC: 20, Seed: 5, Flags: pol.flags,
		})
		jobs := injectedJobs(20, 4*sim.Second, 1)
		var res systems.RoundResult
		s.RunRound(0, jobs, func(r systems.RoundResult) { res = r })
		if err := eng.RunUntilIdle(); err != nil {
			panic(err)
		}
		out = append(out, PolicyResult{Policy: pol.name, ACT: res.ACT, Nodes: res.NodesUsed, CPU: res.CPUTime})
	}
	return out
}

// FormatAblations renders all sweeps.
func FormatAblations(fan []FanInResult, ewma []EWMAResult, pol []PolicyResult) string {
	var b strings.Builder
	b.WriteString("Ablation — leaf fan-in I (§5.2; paper picks I=2):\n")
	for _, r := range fan {
		fmt.Fprintf(&b, "  I=%-3d ACT=%6.1fs aggregators=%d\n", r.FanIn, r.ACT.Seconds(), r.Aggs)
	}
	b.WriteString("Ablation — EWMA coefficient (§5.2; paper picks α=0.7):\n")
	for _, r := range ewma {
		fmt.Fprintf(&b, "  α=%.1f meanAbsErr=%6.2f\n", r.Alpha, r.MeanAbsError)
	}
	b.WriteString("Ablation — placement policy (§5.1):\n")
	for _, r := range pol {
		fmt.Fprintf(&b, "  %-9s ACT=%6.1fs nodes=%d cpu=%6.1fs\n", r.Policy, r.ACT.Seconds(), r.Nodes, r.CPU.Seconds())
	}
	return b.String()
}
