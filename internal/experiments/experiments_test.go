package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// These are reproduction regression tests: each pins the qualitative claim
// of one paper figure so calibration drift is caught immediately.

func TestFig7ReproducesPaperRatios(t *testing.T) {
	rows := Fig7ab()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	r152 := rows[2]
	// LIFL 0.76 s ± 10% (paper Fig. 7(a)).
	if s := r152.LIFLLat.Seconds(); s < 0.68 || s > 0.84 {
		t.Errorf("LIFL transfer = %.3fs, want ≈0.76", s)
	}
	if r := r152.SFLat.Seconds() / r152.LIFLLat.Seconds(); r < 2.5 || r > 3.5 {
		t.Errorf("SF/LIFL = %.2f, want ≈3", r)
	}
	if r := r152.SLLat.Seconds() / r152.LIFLLat.Seconds(); r < 5.0 || r > 6.6 {
		t.Errorf("SL/LIFL = %.2f, want ≈5.8", r)
	}
	// Fig. 7(b): LIFL ≈ 2.45 Gcycles; SL ≈ 20 G.
	if g := r152.LIFLCycles / 1e9; g < 2.2 || g > 2.7 {
		t.Errorf("LIFL CPU = %.2f G, want ≈2.45", g)
	}
	if g := r152.SLCycles / 1e9; g < 17 || g > 24 {
		t.Errorf("SL CPU = %.2f G, want ≈20", g)
	}
	// Latency grows with model size for every system.
	for i := 1; i < 3; i++ {
		if rows[i].LIFLLat <= rows[i-1].LIFLLat || rows[i].SLLat <= rows[i-1].SLLat {
			t.Error("latency not monotone in model size")
		}
	}
	if !strings.Contains(FormatFig7(rows), "ResNet-152") {
		t.Error("format misses model rows")
	}
}

func TestFig4HierarchyAloneBarelyHelps(t *testing.T) {
	res := Fig4()
	// The §4.1 finding: WH ≈ NH (within 15%), because the serverful data
	// plane throttles the hierarchy.
	ratio := res.NHRound.Seconds() / res.WHRound.Seconds()
	if ratio < 0.87 || ratio > 1.20 {
		t.Errorf("NH/WH = %.2f — hierarchy alone should change little", ratio)
	}
	l := Fig7c()
	// Fig. 7(c): LIFL's data plane makes the same hierarchy faster than
	// both NH and WH.
	if l.Round >= res.WHRound || l.Round >= res.NHRound {
		t.Errorf("LIFL round %v not fastest (NH %v, WH %v)", l.Round, res.NHRound, res.WHRound)
	}
	out := FormatFig4(res, l)
	for _, actor := range []string{"LF1", "LF4", "Top"} {
		if !strings.Contains(out, actor) {
			t.Errorf("timeline missing %s", actor)
		}
	}
}

func TestFig8ReproducesOrchestrationShape(t *testing.T) {
	cells := Fig8([]int{20, 100})
	get := func(v string, l int) Fig8Cell {
		for _, c := range cells {
			if c.Variant == v && c.Updates == l {
				return c
			}
		}
		t.Fatalf("missing %s/%d", v, l)
		return Fig8Cell{}
	}
	slh20, full20 := get("SL-H", 20), get("+1+2+3+4", 20)
	// Orchestration wins clearly at packable load...
	if r := slh20.ACT.Seconds() / full20.ACT.Seconds(); r < 1.4 {
		t.Errorf("orchestration gain %.2fx at 20 updates, want >1.4x", r)
	}
	// ... and the benefit shrinks at saturation (Fig. 8's 100-update
	// regime: "the service capacity of all five nodes would be maxed out").
	slh100, full100 := get("SL-H", 100), get("+1+2+3+4", 100)
	r20 := slh20.ACT.Seconds() / full20.ACT.Seconds()
	r100 := slh100.ACT.Seconds() / full100.ACT.Seconds()
	if r100 >= r20 {
		t.Errorf("benefit did not shrink: %.2fx at 20 vs %.2fx at 100", r20, r100)
	}
	// Nodes used: 1 at 20 updates, 5 at 100 (Fig. 8(d)).
	if full20.Nodes != 1 || full100.Nodes != 5 {
		t.Errorf("nodes used = %d/%d, want 1/5", full20.Nodes, full100.Nodes)
	}
	if slh20.Nodes != 5 {
		t.Errorf("SL-H nodes = %d, want 5", slh20.Nodes)
	}
	// CPU and creations decline with the full stack.
	if full20.CPUTime >= slh20.CPUTime {
		t.Error("no CPU saving")
	}
	if full20.AggsMade >= slh20.AggsMade {
		t.Error("no creation saving")
	}
	if !strings.Contains(FormatFig8(cells), "Fig.8(a)") {
		t.Error("format broken")
	}
}

func TestFig13ReproducesQueuingShape(t *testing.T) {
	rows := Fig13()
	byKey := map[string]Fig13Row{}
	for _, r := range rows {
		byKey[r.Setup+"/"+r.Model.Name] = r
	}
	m := model.ResNet152.Name
	lifl, mono := byKey["LIFL/"+m], byKey["SF-mono/"+m]
	micro, slb := byKey["SF-micro/"+m], byKey["SL-B/"+m]
	// Appendix F: LIFL is equivalent to SF-mono (the only extra cost is the
	// sub-millisecond key pass + eBPF event).
	if d := (lifl.Delay - mono.Delay).Seconds(); d < 0 || d > 0.001 {
		t.Errorf("LIFL vs SF-mono delay gap = %vs", d)
	}
	if d := (lifl.CPU - mono.CPU).Seconds(); d < 0 || d > 0.001 {
		t.Errorf("LIFL vs SF-mono CPU gap = %vs", d)
	}
	if lifl.MemBytes != mono.MemBytes {
		t.Errorf("memory: %d vs %d", lifl.MemBytes, mono.MemBytes)
	}
	// Memory: SL-B = 3×, SF-micro = 2×.
	if slb.MemBytes != 3*lifl.MemBytes || micro.MemBytes != 2*lifl.MemBytes {
		t.Errorf("memory multipliers: %d/%d/%d", lifl.MemBytes, micro.MemBytes, slb.MemBytes)
	}
	// Delay/CPU ordering: LIFL < SL-B < SF-micro.
	if !(lifl.Delay < slb.Delay && slb.Delay < micro.Delay) {
		t.Errorf("delay ordering: %v %v %v", lifl.Delay, slb.Delay, micro.Delay)
	}
	if !(lifl.CPU < slb.CPU && slb.CPU < micro.CPU) {
		t.Errorf("cpu ordering: %v %v %v", lifl.CPU, slb.CPU, micro.CPU)
	}
}

func TestOverheadWithinPaperBounds(t *testing.T) {
	r := Overhead(10_000)
	if ms := r.PlacementWall.Milliseconds(); ms > 17 {
		t.Errorf("placement of 10K clients took %dms, paper bound is 17ms", ms)
	}
	if r.EWMAPerEstim.Milliseconds() > 0 { // sub-millisecond required
		t.Errorf("EWMA estimate took %v", r.EWMAPerEstim)
	}
	if !strings.Contains(FormatOverhead(r), "10000 clients") {
		t.Error("format broken")
	}
}

// The ablation sweeps must justify the paper's design choices from our own
// implementation.
func TestAblationsJustifyPaperChoices(t *testing.T) {
	// §5.2: small fan-in beats a single serial leaf; I=2 is near-optimal.
	fan := AblateFanIn([]int{1, 2, 20})
	if fan[1].ACT >= fan[2].ACT {
		t.Errorf("I=2 (%v) not better than I=20 serial leaf (%v)", fan[1].ACT, fan[2].ACT)
	}
	// §5.2: α=0.7 beats both no smoothing and over-smoothing.
	ewma := AblateEWMA([]float64{0, 0.7, 0.9})
	if !(ewma[1].MeanAbsError < ewma[0].MeanAbsError && ewma[1].MeanAbsError < ewma[2].MeanAbsError) {
		t.Errorf("α=0.7 not optimal: %+v", ewma)
	}
	// §5.1: BestFit beats WorstFit on ACT, nodes, and CPU.
	pol := AblatePlacement()
	best, worst := pol[0], pol[1]
	if best.ACT >= worst.ACT || best.Nodes >= worst.Nodes || best.CPU >= worst.CPU {
		t.Errorf("BestFit does not dominate: %+v vs %+v", best, worst)
	}
	if out := FormatAblations(fan, ewma, pol); !strings.Contains(out, "α=0.7") {
		t.Error("format broken")
	}
}

// Appendix E: the service-time curve must show a clean saturation knee and
// the derived MC must land in the regime the paper configures (20).
func TestAppendixEDerivesMC(t *testing.T) {
	res := AppendixE()
	if len(res.Points) < 4 {
		t.Fatalf("only %d probe points", len(res.Points))
	}
	// E non-decreasing-ish up to the knee; the last point saturated.
	last := res.Points[len(res.Points)-1]
	if !last.Saturated {
		t.Fatal("no saturation knee found by k=12/s")
	}
	if last.ExecTime <= 2*res.Points[0].ExecTime {
		t.Fatal("knee criterion not met at the marked point")
	}
	if res.MC < 12 || res.MC > 40 {
		t.Fatalf("derived MC = %.0f, want in the paper's ~20 regime", res.MC)
	}
	if !strings.Contains(FormatAppendixE(res), "saturation knee") {
		t.Error("format broken")
	}
}

// The sweep-harness guarantee at the figure level: every run owns its own
// engine, so a parallel regeneration formats byte-identically to the
// serial one.
func TestParallelFiguresMatchSerial(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	fig8Serial := FormatFig8(Fig8([]int{20, 60}))
	ablSerial := FormatAblations(AblateFanIn([]int{1, 2}), AblateEWMA(nil), AblatePlacement())

	Parallelism = 8
	if got := FormatFig8(Fig8([]int{20, 60})); got != fig8Serial {
		t.Errorf("fig8 diverged under parallel sweep:\nserial:\n%s\nparallel:\n%s", fig8Serial, got)
	}
	if got := FormatAblations(AblateFanIn([]int{1, 2}), AblateEWMA(nil), AblatePlacement()); got != ablSerial {
		t.Errorf("ablation diverged under parallel sweep")
	}
}

// The scenario verb path: registry lookup, sweep, generic formatting.
func TestRunScenarioVerb(t *testing.T) {
	out, err := RunScenario("fig8-ablation", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scenario fig8-ablation", "lifl/SL-H/20", "lifl/+1+2+3+4/100"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario output missing %q:\n%s", want, out)
		}
	}
	if _, err := RunScenario("no-such-scenario", 0); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if list := FormatScenarioList(); !strings.Contains(list, "million-clients") {
		t.Error("scenario list missing registry entry")
	}
}

// The fast reproduction gates must all hold.
func TestVerifyGatesHold(t *testing.T) {
	checks := Verify(false)
	if len(checks) < 10 {
		t.Fatalf("only %d gates", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("gate %q: paper %s, measured %s", c.Name, c.Paper, c.Measured)
		}
	}
	if out := FormatVerify(checks); !strings.Contains(out, "reproduction gates hold") {
		t.Error("format broken")
	}
}

func TestFig9ReproducesWorkloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	rows := Fig9(model.ResNet18, 1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	bySys := map[string]Fig9Row{}
	for _, r := range rows {
		if !r.Reached {
			t.Fatalf("%s did not reach 70%%", r.System)
		}
		bySys[string(r.System)] = r
	}
	lifl, sf, sl := bySys["lifl"], bySys["sf"], bySys["sl"]
	// Fig. 9(a): LIFL < SF < SL in wall-clock.
	if !(lifl.TimeTo70 < sf.TimeTo70 && sf.TimeTo70 < sl.TimeTo70) {
		t.Errorf("wall ordering: %v %v %v", lifl.TimeTo70, sf.TimeTo70, sl.TimeTo70)
	}
	// Fig. 9(b): SL costs several times LIFL's CPU.
	if r := sl.CPUTo70.Hours() / lifl.CPUTo70.Hours(); r < 3.5 {
		t.Errorf("SL/LIFL CPU = %.1fx, want >3.5x (paper 5.8x)", r)
	}
	// LIFL lands near the paper's 0.9 h / 4.5 CPUh.
	if h := lifl.TimeTo70.Hours(); h < 0.7 || h > 1.2 {
		t.Errorf("LIFL wall = %.2fh, paper 0.9h", h)
	}
	if h := lifl.CPUTo70.Hours(); h < 3.4 || h > 5.6 {
		t.Errorf("LIFL CPU = %.2fh, paper 4.5h", h)
	}
	// Fig. 10 series present and coherent.
	series := Fig10(rows)
	if len(series) != 3 || len(series[0].CPUPerRound) != lifl.Rounds {
		t.Fatalf("fig10 series malformed")
	}
	if !strings.Contains(FormatFig9(rows), "ResNet-18") || !strings.Contains(FormatFig10(series), "lifl") {
		t.Error("formatting broken")
	}
}

// The elastic verb path: a planned scenario sweeps byte-identically serial
// vs parallel (the plan applies mid-run inside each private engine), the
// formatted detail carries the plan outcome, and PlanDiff dry-runs the
// same schedule the sweep applies — including the -cellplan override.
func TestRunScenarioWithPlanParallelMatchesSerial(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	serial, err := RunScenario("scale-out-under-load", 0)
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 8
	parallel, err := RunScenario("scale-out-under-load", 0)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("planned scenario diverged under parallel sweep:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	for _, want := range []string{"plan: v1 applied", "joined@r25"} {
		if !strings.Contains(serial, want) {
			t.Errorf("scenario output missing %q:\n%s", want, serial)
		}
	}

	diff, err := PlanDiff("scale-out-under-load")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "push v1 @ round 25") || !strings.Contains(diff, "joins") {
		t.Errorf("plan diff missing the push schedule:\n%s", diff)
	}
	if _, err := PlanDiff("fig9-r18"); err == nil {
		t.Error("PlanDiff accepted a non-fabric scenario")
	}

	// The -cellplan override supersedes the registry plan in both paths.
	defer func() { CellPlan = nil }()
	CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: 30, Op: core.CellDrain, Cell: 3},
	}}
	diff, err = PlanDiff("scale-out-under-load")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "push v1 @ round 30") || strings.Contains(diff, "joins") {
		t.Errorf("-cellplan override not applied to the dry run:\n%s", diff)
	}
}
