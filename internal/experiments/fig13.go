package experiments

import (
	"fmt"
	"strings"

	"repro/internal/aggcore"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sidecar"
	"repro/internal/sim"
)

// Fig13Row is one (setup, model) cell of the Appendix-F message-queuing
// comparison: a single client→aggregator model-update transfer through each
// queuing pipeline of Fig. 5.
type Fig13Row struct {
	Setup    string
	Model    model.Spec
	CPU      sim.Duration // CPU consumed along the pipeline
	MemBytes uint64       // payload buffers held along the pipeline
	Delay    sim.Duration // end-to-end client→aggregator networking delay
}

// Fig13 runs all four setups across M1/M2/M3.
func Fig13() []Fig13Row {
	var rows []Fig13Row
	for _, m := range model.All {
		rows = append(rows,
			fig13Run("SF-mono", m),
			fig13Run("LIFL", m),
			fig13Run("SF-micro", m),
			fig13Run("SL-B", m),
		)
	}
	return rows
}

func fig13Run(setup string, m model.Spec) Fig13Row {
	eng := sim.NewEngine()
	p := costmodel.Default()
	cl := cluster.New(eng, sim.NewRNG(13), p, 1)
	n := cl.Nodes[0]
	agg := aggcore.New("agg", aggcore.RoleLeaf, n, fedAvg(), m.PhysLen(), m.Params)
	size := m.Bytes()
	nT := len(m.Layers)
	var doneAt sim.Duration
	finish := func(_, _ sim.Duration) { doneAt = eng.Now() }

	rxLat, rxCPU := p.KernelTraversal(size)
	desLat, desCPU := p.Deserialize(size, nT)
	memcpyLat, memcpyCPU := p.ShmWrite(size)
	stages := 0

	switch setup {
	case "SF-mono":
		// Fig. 5 left: the monolith's in-memory queue — kernel RX, then the
		// aggregator process deserializes and enqueues in place.
		stages = p.QueueStagesSFMono
		n.Ingress.Transfer(size, func(_, _ sim.Duration) {
			n.KernelExec("ingest", rxLat, rxCPU, func(_, _ sim.Duration) {
				agg.ExecAs("ingest", desLat+memcpyLat, desCPU+memcpyCPU, finish)
			})
		})
	case "LIFL":
		// Fig. 5 right: the gateway's consolidated one-time processing into
		// shared memory, then a 16-byte key pass.
		stages = p.QueueStagesLIFL
		n.Ingress.Transfer(size, func(_, _ sim.Duration) {
			shmLat, shmCPU := p.ShmWrite(size)
			n.KernelExec("gateway", rxLat, rxCPU, func(_, _ sim.Duration) {
				n.ExecAttributed("gateway", desLat+shmLat, desCPU+shmCPU, func(_, _ sim.Duration) {
					n.ExecFree("ebpf-sidecar", costmodel.Cycles(p.EBPFMetricsCycles))
					eng.After(p.ShmKeyPassLatency, func() { doneAt = eng.Now() })
				})
			})
		})
	case "SF-micro":
		// Fig. 5 middle-left: a persistent broker service between client
		// and aggregator; both legs cross the kernel, the broker stores and
		// forwards, the aggregator deserializes.
		stages = p.QueueStagesSFMicro
		br := broker.New(n)
		serLat, serCPU := p.Serialize(size, nT)
		txLat, txCPU := p.KernelTraversal(size)
		br.Subscribe("agg", func(msg broker.Message) {
			n.ExecAttributed("broker-leg", serLat, serCPU, func(_, _ sim.Duration) {
				n.KernelExec("broker-leg", txLat+rxLat, txCPU+rxCPU, func(_, _ sim.Duration) {
					agg.ExecAs("ingest", desLat, desCPU, finish)
				})
			})
		})
		n.Ingress.Transfer(size, func(_, _ sim.Duration) {
			n.KernelExec("ingest", rxLat, rxCPU, func(_, _ sim.Duration) {
				br.Publish("agg", size, nil)
			})
		})
	case "SL-B":
		// Fig. 5 middle-right: broker plus the function's sidecar in the
		// delivery path.
		stages = p.QueueStagesSLB
		br := broker.New(n)
		sc := sidecar.NewContainer(n, "agg")
		br.Subscribe("agg", func(msg broker.Message) {
			sc.Intercept(size, func() {
				agg.ExecAs("ingest", desLat, desCPU, finish)
			})
		})
		n.Ingress.Transfer(size, func(_, _ sim.Duration) {
			n.KernelExec("ingest", rxLat, rxCPU, func(_, _ sim.Duration) {
				br.Publish("agg", size, nil)
			})
		})
	default:
		panic("fig13: unknown setup " + setup)
	}
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	if doneAt == 0 {
		panic("fig13: transfer did not complete for " + setup)
	}
	return Fig13Row{
		Setup:    setup,
		Model:    m,
		CPU:      n.TotalCPUTime(),
		MemBytes: uint64(stages) * size,
		Delay:    doneAt,
	}
}

// FormatFig13 renders the three panels of Fig. 13.
func FormatFig13(rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.13 / Appendix F — message queuing overheads (single transfer)\n")
	fmt.Fprintf(&b, "%-10s %-12s %10s %12s %10s\n", "setup", "model", "cpu(s)", "mem(MB)", "delay(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-12s %10.3f %12.1f %10.3f\n",
			r.Setup, r.Model.Name, r.CPU.Seconds(), float64(r.MemBytes)/(1<<20), r.Delay.Seconds())
	}
	return b.String()
}
