package experiments

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/systems"
)

// Fig8Variant is one line of Fig. 8: a feature prefix of LIFL's
// orchestration applied on top of the SL-H baseline.
type Fig8Variant struct {
	Label string
	Flags systems.Flags
}

// Fig8Variants lists the paper's five configurations in order.
func Fig8Variants() []Fig8Variant {
	return []Fig8Variant{
		{Label: "SL-H", Flags: systems.Flags{}},
		{Label: "+1", Flags: systems.Flags{LocalityPlacement: true}},
		{Label: "+1+2", Flags: systems.Flags{LocalityPlacement: true, HierarchyPlan: true}},
		{Label: "+1+2+3", Flags: systems.Flags{LocalityPlacement: true, HierarchyPlan: true, Reuse: true}},
		{Label: "+1+2+3+4", Flags: systems.AllFlags()},
	}
}

// Fig8Cell is one (variant, load) measurement.
type Fig8Cell struct {
	Variant  string
	Updates  int
	ACT      sim.Duration // Fig. 8(a)
	CPUTime  sim.Duration // Fig. 8(b)
	AggsMade int          // Fig. 8(c)
	Nodes    int          // Fig. 8(d)
}

// Fig8 reproduces the orchestration ablation: 5 nodes, MC=20, ResNet-152,
// batches of 20/60/100 model updates arriving at the service together.
// Every cell runs on a fresh cluster (cold platform), as the microbenchmark
// focuses on "the importance of having warm aggregators based on the
// pre-planned hierarchy".
func Fig8(loads []int) []Fig8Cell {
	if len(loads) == 0 {
		loads = []int{20, 60, 100}
	}
	var out []Fig8Cell
	for _, v := range Fig8Variants() {
		for _, load := range loads {
			out = append(out, fig8Cell(v, load))
		}
	}
	return out
}

func fig8Cell(v Fig8Variant, load int) Fig8Cell {
	eng := sim.NewEngine()
	s := systems.NewLIFL(eng, systems.Config{
		Nodes: 5,
		Model: model.ResNet152,
		MC:    20,
		Seed:  88,
		Flags: v.Flags,
	})
	// Updates land in the in-place queues directly (§6.1: "we assume the
	// estimated Q is equal to the actual queue length"), but their arrivals
	// are spread over time like real trainer uploads (§5.4: "the arrival of
	// local model updates from trainers can be spread over a relatively
	// long duration") — this is what gives eager aggregation its edge.
	jobs := injectedJobs(load, sim.Duration(load)*200*sim.Millisecond, 1)
	var res systems.RoundResult
	s.RunRound(0, jobs, func(r systems.RoundResult) { res = r })
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	if res.Updates != load {
		panic(fmt.Sprintf("fig8 %s/%d: aggregated %d", v.Label, load, res.Updates))
	}
	return Fig8Cell{
		Variant:  v.Label,
		Updates:  load,
		ACT:      res.ACT,
		CPUTime:  res.CPUTime,
		AggsMade: res.AggsCreated,
		Nodes:    res.NodesUsed,
	}
}

// FormatFig8 renders the four panels as tables.
func FormatFig8(cells []Fig8Cell) string {
	loads := []int{}
	seen := map[int]bool{}
	for _, c := range cells {
		if !seen[c.Updates] {
			seen[c.Updates] = true
			loads = append(loads, c.Updates)
		}
	}
	get := func(v string, l int) Fig8Cell {
		for _, c := range cells {
			if c.Variant == v && c.Updates == l {
				return c
			}
		}
		panic("missing cell")
	}
	var b strings.Builder
	for _, panel := range []struct {
		title string
		val   func(Fig8Cell) string
	}{
		{"Fig.8(a) Aggregation Completion Time (s)", func(c Fig8Cell) string { return fmt.Sprintf("%8.1f", c.ACT.Seconds()) }},
		{"Fig.8(b) Cumulative CPU time (s)", func(c Fig8Cell) string { return fmt.Sprintf("%8.1f", c.CPUTime.Seconds()) }},
		{"Fig.8(c) # aggregators created", func(c Fig8Cell) string { return fmt.Sprintf("%8d", c.AggsMade) }},
		{"Fig.8(d) # nodes used", func(c Fig8Cell) string { return fmt.Sprintf("%8d", c.Nodes) }},
	} {
		fmt.Fprintf(&b, "%s\n%-10s", panel.title, "updates")
		for _, v := range Fig8Variants() {
			fmt.Fprintf(&b, "%10s", v.Label)
		}
		b.WriteString("\n")
		for _, l := range loads {
			fmt.Fprintf(&b, "%-10d", l)
			for _, v := range Fig8Variants() {
				fmt.Fprintf(&b, "%10s", strings.TrimSpace(panel.val(get(v.Label, l))))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
