package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Fig8Variant is one line of Fig. 8: a feature prefix of LIFL's
// orchestration applied on top of the SL-H baseline.
type Fig8Variant = scenario.FlagVariant

// Fig8Variants lists the paper's five configurations in order.
func Fig8Variants() []Fig8Variant { return scenario.AblationVariants() }

// Fig8Cell is one (variant, load) measurement.
type Fig8Cell struct {
	Variant  string
	Updates  int
	ACT      sim.Duration // Fig. 8(a)
	CPUTime  sim.Duration // Fig. 8(b)
	AggsMade int          // Fig. 8(c)
	Nodes    int          // Fig. 8(d)
}

// Fig8 reproduces the orchestration ablation: 5 nodes, MC=20, ResNet-152,
// batches of 20/60/100 model updates arriving at the service together.
// Every cell of the "fig8-ablation" registry scenario runs on a fresh
// cluster (cold platform, its own engine), as the microbenchmark focuses
// on "the importance of having warm aggregators based on the pre-planned
// hierarchy" — which also makes the grid embarrassingly parallel.
func Fig8(loads []int) []Fig8Cell {
	sc := scenario.MustGet("fig8-ablation")
	if len(loads) > 0 {
		sc.Loads = loads
	}
	runs := sc.Expand()
	out := make([]Fig8Cell, 0, len(runs))
	for i, res := range harness.Sweep(runs, Parallelism) {
		run := runs[i]
		if res.Err != nil {
			panic(fmt.Sprintf("fig8 %s/%d: %v", run.Variant, run.Load, res.Err))
		}
		rr := res.Report.Rounds[0]
		if rr.Updates != run.Load {
			panic(fmt.Sprintf("fig8 %s/%d: aggregated %d", run.Variant, run.Load, rr.Updates))
		}
		out = append(out, Fig8Cell{
			Variant:  run.Variant,
			Updates:  run.Load,
			ACT:      rr.ACT,
			CPUTime:  rr.CPUTime,
			AggsMade: rr.AggsCreated,
			Nodes:    rr.NodesUsed,
		})
	}
	return out
}

// FormatFig8 renders the four panels as tables.
func FormatFig8(cells []Fig8Cell) string {
	loads := []int{}
	seen := map[int]bool{}
	for _, c := range cells {
		if !seen[c.Updates] {
			seen[c.Updates] = true
			loads = append(loads, c.Updates)
		}
	}
	get := func(v string, l int) Fig8Cell {
		for _, c := range cells {
			if c.Variant == v && c.Updates == l {
				return c
			}
		}
		panic("missing cell")
	}
	var b strings.Builder
	for _, panel := range []struct {
		title string
		val   func(Fig8Cell) string
	}{
		{"Fig.8(a) Aggregation Completion Time (s)", func(c Fig8Cell) string { return fmt.Sprintf("%8.1f", c.ACT.Seconds()) }},
		{"Fig.8(b) Cumulative CPU time (s)", func(c Fig8Cell) string { return fmt.Sprintf("%8.1f", c.CPUTime.Seconds()) }},
		{"Fig.8(c) # aggregators created", func(c Fig8Cell) string { return fmt.Sprintf("%8d", c.AggsMade) }},
		{"Fig.8(d) # nodes used", func(c Fig8Cell) string { return fmt.Sprintf("%8d", c.Nodes) }},
	} {
		fmt.Fprintf(&b, "%s\n%-10s", panel.title, "updates")
		for _, v := range Fig8Variants() {
			fmt.Fprintf(&b, "%10s", v.Label)
		}
		b.WriteString("\n")
		for _, l := range loads {
			fmt.Fprintf(&b, "%-10d", l)
			for _, v := range Fig8Variants() {
				fmt.Fprintf(&b, "%10s", strings.TrimSpace(panel.val(get(v.Label, l))))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
