package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/autoscaler"
	"repro/internal/placement"
	"repro/internal/sim"
)

// OverheadResult reports §6.1's orchestration-overhead measurements. Unlike
// the other experiments these are *real wall-clock* timings of the control-
// plane code itself, matching how the paper measures them (placement with
// 10K clients ≤ 17 ms, EWMA estimate ≈ 0.2 ms).
type OverheadResult struct {
	Clients        int
	PlacementWall  time.Duration
	EWMAPerEstim   time.Duration
	HierarchyPlans int
}

// Overhead measures BestFit placement of `clients` updates over 100 nodes
// and the per-estimate cost of the EWMA smoother. The placement wall time is
// the best of three trials: these are real wall-clock measurements of
// control-plane code, and a single trial on shared CI hardware can absorb a
// scheduler preemption or a GC pause that says nothing about the algorithm
// being compared against the paper's 17 ms bound. Each trial places onto
// fresh node state (Place mutates Assigned).
func Overhead(clients int) OverheadResult {
	if clients == 0 {
		clients = 10_000
	}
	mkNodes := func() []*placement.NodeState {
		nodes := make([]*placement.NodeState, 100)
		for i := range nodes {
			nodes[i] = &placement.NodeState{
				Name:     fmt.Sprintf("node-%03d", i),
				MC:       float64(clients)/50 + 20,
				ExecTime: 500 * sim.Millisecond,
			}
		}
		return nodes
	}
	var placeWall time.Duration
	for trial := 0; trial < 3; trial++ {
		nodes := mkNodes()
		t0 := time.Now()
		if _, err := (placement.BestFit{}).PlaceIndexed(clients, nodes); err != nil {
			panic(err)
		}
		if wall := time.Since(t0); trial == 0 || wall < placeWall {
			placeWall = wall
		}
	}

	const estimates = 100_000
	e := autoscaler.NewEWMA(0.7)
	t1 := time.Now()
	for i := 0; i < estimates; i++ {
		e.Update(float64(i % 97))
	}
	ewmaPer := time.Since(t1) / estimates

	plans, _ := autoscaler.PlanCluster(map[string]float64{"a": 40, "b": 22, "c": 7}, 2)
	return OverheadResult{
		Clients:        clients,
		PlacementWall:  placeWall,
		EWMAPerEstim:   ewmaPer,
		HierarchyPlans: len(plans),
	}
}

// FormatOverhead renders the comparison with the paper's bounds.
func FormatOverhead(r OverheadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Orchestration overhead (§6.1)\n")
	fmt.Fprintf(&b, "locality-aware placement, %d clients: %v (paper: <17ms)\n", r.Clients, r.PlacementWall)
	fmt.Fprintf(&b, "EWMA estimator per estimate:          %v (paper: ~0.2ms)\n", r.EWMAPerEstim)
	return b.String()
}
