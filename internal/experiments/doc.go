// Package experiments contains one runner per table/figure of the paper's
// evaluation (§6 and the appendices). Each runner builds the exact setup the
// figure describes, executes it on the simulation, and returns the same
// rows/series the paper plots, so `liflsim <figure>` regenerates the result.
// EXPERIMENTS.md records paper-vs-measured for each.
//
// Layer (DESIGN.md): side quest above scenario + harness — one file per
// figure/table, reduced to sweeping registry scenarios and formatting.
// Beyond the figures it carries the observation verbs of cmd/liflsim:
// RunScenario's telemetry attachment (-telemetry/-perfetto), the live
// watch dashboard (watch.go) and the per-run span Gantts (spans.go).
package experiments
