package experiments

import (
	"fmt"
	"strings"

	"repro/internal/aggcore"
	"repro/internal/autoscaler"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/sim"
	"repro/internal/systems"
	"repro/internal/trace"
)

// Fig4Result is the outcome of the §4.1 motivation experiment: hierarchical
// aggregation on the serverful data plane barely beats no-hierarchy because
// the kernel networking path throttles the leaf↔top transfers.
type Fig4Result struct {
	NHRound sim.Duration // single aggregator, no hierarchy
	WHRound sim.Duration // 1 top + 4 leaves, same node
	NHTrace *trace.Recorder
	WHTrace *trace.Recorder
}

// fig4Trainers returns the 8 trainers' (train-time) delays: remote server
// clients training ResNet-152, slightly heterogeneous.
func fig4Trainers(rng *sim.RNG) []sim.Duration {
	out := make([]sim.Duration, 8)
	for i := range out {
		out[i] = rng.Jitter(22*sim.Second, 0.18)
	}
	return out
}

// Fig4 runs both settings with the serverful (kernel loopback) data plane
// on one node, eight remote ResNet-152 trainers, lazy aggregation.
func Fig4() Fig4Result {
	res := Fig4Result{NHTrace: &trace.Recorder{}, WHTrace: &trace.Recorder{}}
	res.NHRound = fig4Round(1, res.NHTrace)
	res.WHRound = fig4Round(4, res.WHTrace)
	return res
}

// fig4Round builds `leaves` leaf aggregators (0 leaves means NH: the top
// aggregates client updates directly) and returns the round completion time.
func fig4Round(leaves int, tr *trace.Recorder) sim.Duration {
	m := model.ResNet152
	eng := sim.NewEngine()
	rng := sim.NewRNG(404)
	p := costmodel.Default()
	cl := cluster.New(eng, rng, p, 1)
	n := cl.Nodes[0]
	alg := fedAvg()
	nT := len(m.Layers)
	size := m.Bytes()

	var roundEnd sim.Duration
	top := aggcore.New("Top", aggcore.RoleTop, n, alg, m.PhysLen(), m.Params)
	top.Mode = aggcore.Lazy
	top.Tracer = tr
	top.TraceName = "Top"
	top.OnComplete = func(a *aggcore.Aggregator, _ aggcore.Update) {
		eval := p.EvalTime(size)
		a.ExecAs("aggregator", eval, eval, func(start, end sim.Duration) {
			tr.Add("Top", trace.KindEval, start, end, 0)
			roundEnd = end
		})
	}

	var lfs []*aggcore.Aggregator
	if leaves <= 1 {
		top.Assign(aggcore.RoleTop, 8, "", 0)
	} else {
		top.Assign(aggcore.RoleTop, leaves, "", 0)
		for i := 0; i < leaves; i++ {
			lf := aggcore.New(fmt.Sprintf("LF%d", i+1), aggcore.RoleLeaf, n, alg, m.PhysLen(), m.Params)
			lf.Mode = aggcore.Lazy
			lf.Tracer = tr
			lf.Assign(aggcore.RoleLeaf, 8/leaves, "Top", 0)
			lf.Transport = sfLoopback{top: top, nT: nT, tr: tr}
			lfs = append(lfs, lf)
		}
	}

	// Eight remote trainers upload after training; the receive pipeline
	// (kernel RX + deserialize + queue copy) serializes per aggregator.
	for i, d := range fig4Trainers(rng) {
		dst := top
		if len(lfs) > 0 {
			dst = lfs[i%len(lfs)]
		}
		eng.After(d, func() {
			netstack.IngressFromExternal(n, netstack.Transfer{Size: size, NTensors: nT, Component: "sf-ingest"}, func() {
				desLat, desCPU := p.Deserialize(size, nT)
				qLat, qCPU := p.ShmWrite(size)
				dst.ExecAs("sf-ingest", desLat+qLat, desCPU+qCPU, func(start, end sim.Duration) {
					tr.Add(dst.TraceName, trace.KindNetwork, start, end, 0)
					u := m.NewTensor()
					u.Fill(1)
					dst.Receive(aggcore.Update{Tensor: u, Weight: 1, Size: size, Round: 0})
				})
			})
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	if roundEnd == 0 {
		panic("fig4: round did not complete")
	}
	return roundEnd
}

// sfLoopback is the serverful intra-node transport used by the Fig. 4
// harness: serialize + kernel TX on the source process, kernel RX +
// deserialize on the destination process.
type sfLoopback struct {
	top *aggcore.Aggregator
	nT  int
	tr  *trace.Recorder
}

// SendResult implements aggcore.Transport.
func (t sfLoopback) SendResult(src *aggcore.Aggregator, out aggcore.Update, _ string) {
	p := src.Node.P
	serLat, serCPU := p.Serialize(out.Size, t.nT)
	txLat, txCPU := p.KernelTraversal(out.Size)
	rxLat, rxCPU := p.KernelTraversal(out.Size)
	desLat, desCPU := p.Deserialize(out.Size, t.nT)
	start := src.Node.Eng.Now()
	src.ExecAs("sf-transport", serLat, serCPU, func(_, _ sim.Duration) {
		src.Node.KernelExec("sf-transport", txLat+rxLat, txCPU+rxCPU, func(_, _ sim.Duration) {
			t.top.ExecAs("sf-transport", desLat, desCPU, func(_, end sim.Duration) {
				t.tr.Add(t.top.TraceName, trace.KindNetwork, start, end, out.Round)
				t.top.Receive(out)
			})
		})
	})
}

// Fig7cResult is the LIFL counterpart timeline (Fig. 7(c)).
type Fig7cResult struct {
	Round sim.Duration
	Trace *trace.Recorder
}

// Fig7c runs the same 8-trainer ResNet-152 round on LIFL's data plane with
// the paper's topology (four leaves feeding the top directly, one node).
func Fig7c() Fig7cResult {
	eng := sim.NewEngine()
	tr := &trace.Recorder{}
	s := systems.NewLIFL(eng, systems.Config{
		Nodes:  1,
		Model:  model.ResNet152,
		MC:     100,
		Seed:   404,
		Flags:  systems.Flags{LocalityPlacement: true, HierarchyPlan: true, Eager: true},
		Tracer: tr,
	})
	s.ForcePlan = func(node string, updates int) autoscaler.Plan {
		return autoscaler.Plan{Node: node, Updates: updates, Leaves: 4, Middle: false, LeafGoals: []int{2, 2, 2, 2}}
	}
	rng := sim.NewRNG(404)
	var jobs []systems.ClientJob
	for _, d := range fig4Trainers(rng) {
		jobs = append(jobs, systems.ClientJob{
			ID: "trainer", Delay: d, Weight: 1,
			MakeUpdate:    func(g *tensorT) *tensorT { u := g.Clone(); u.Fill(1); return u },
			SkipBroadcast: true,
		})
	}
	var round sim.Duration
	s.RunRound(0, jobs, func(r systems.RoundResult) { round = r.End - r.Start })
	if err := eng.RunUntilIdle(); err != nil {
		panic(err)
	}
	return Fig7cResult{Round: round, Trace: tr}
}

// FormatFig4 renders both timelines plus LIFL's, like Fig. 4 and Fig. 7(c).
func FormatFig4(f Fig4Result, l Fig7cResult) string {
	var b strings.Builder
	horizon := f.NHRound
	if f.WHRound > horizon {
		horizon = f.WHRound
	}
	fmt.Fprintf(&b, "Fig.4 upper — no hierarchy (NH), round = %.1fs (paper 59.8s)\n", f.NHRound.Seconds())
	b.WriteString(f.NHTrace.RenderGantt([]string{"Top"}, horizon, 90))
	fmt.Fprintf(&b, "\nFig.4 lower — with hierarchy (WH), round = %.1fs (paper 57s)\n", f.WHRound.Seconds())
	b.WriteString(f.WHTrace.RenderGantt([]string{"LF1", "LF2", "LF3", "LF4", "Top"}, horizon, 90))
	fmt.Fprintf(&b, "\nFig.7(c) — LIFL data plane, round = %.1fs (paper 44.9s)\n", l.Round.Seconds())
	actors := []string{"r0-n0-leaf0", "r0-n0-leaf1", "r0-n0-leaf2", "r0-n0-leaf3", "Top"}
	b.WriteString(l.Trace.RenderGantt(actors, horizon, 90))
	return b.String()
}
