// Package topology implements the Topology Abstraction Graph (TAG) of
// Appendix D — the control plane's generic description of connectivity
// between FL components. Each graph node carries a "role" (aggregator or
// client) and each channel a communication medium plus a groupBy label; the
// coordinator expresses locality-aware placement by giving co-located roles
// the same groupBy label, and the routing manager turns the TAG's edges
// into sockmap entries and inter-node routing-table rows (Appendix A,
// "online hierarchy update").
//
// Layer (DESIGN.md): component model under internal/systems — the
// Topology Abstraction Graph (Appendix D).
package topology
