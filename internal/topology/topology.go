package topology

import (
	"errors"
	"fmt"
	"sort"
)

// RoleKind tags a TAG vertex.
type RoleKind string

// Vertex roles.
const (
	RoleAggregator RoleKind = "aggregator"
	RoleClient     RoleKind = "client"
)

// Medium is the channel's underlying communication mechanism.
type Medium string

// Channel media (Appendix D: "intra-node shared memory, inter-node kernel
// networking").
const (
	MediumShm    Medium = "shm"
	MediumKernel Medium = "kernel"
)

// Vertex is one role instance in the TAG.
type Vertex struct {
	Name string
	Role RoleKind
	// Level is free-form ("leaf", "middle", "top") for aggregators.
	Level string
	// GroupBy clusters vertices into a placement-affinity group; vertices
	// sharing a label are packed onto the same node (§5.1 via Appendix D).
	GroupBy string
}

// Channel is a directed data dependency between two vertices.
type Channel struct {
	From, To string
	Medium   Medium
	GroupBy  string
}

// TAG is the whole graph.
type TAG struct {
	verts    map[string]Vertex
	channels []Channel
}

// New returns an empty TAG.
func New() *TAG { return &TAG{verts: make(map[string]Vertex)} }

// AddVertex inserts or replaces a vertex.
func (t *TAG) AddVertex(v Vertex) error {
	if v.Name == "" {
		return errors.New("topology: vertex needs a name")
	}
	t.verts[v.Name] = v
	return nil
}

// AddChannel inserts an edge; both endpoints must exist.
func (t *TAG) AddChannel(c Channel) error {
	if _, ok := t.verts[c.From]; !ok {
		return fmt.Errorf("topology: channel from unknown vertex %q", c.From)
	}
	if _, ok := t.verts[c.To]; !ok {
		return fmt.Errorf("topology: channel to unknown vertex %q", c.To)
	}
	t.channels = append(t.channels, c)
	return nil
}

// Vertex fetches a vertex by name.
func (t *TAG) Vertex(name string) (Vertex, bool) {
	v, ok := t.verts[name]
	return v, ok
}

// Vertices returns all vertices sorted by name (deterministic iteration).
func (t *TAG) Vertices() []Vertex {
	out := make([]Vertex, 0, len(t.verts))
	for _, v := range t.verts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Channels returns all edges in insertion order.
func (t *TAG) Channels() []Channel { return append([]Channel(nil), t.channels...) }

// Consumers returns the destinations of v's outgoing channels.
func (t *TAG) Consumers(v string) []string {
	var out []string
	for _, c := range t.channels {
		if c.From == v {
			out = append(out, c.To)
		}
	}
	return out
}

// Producers returns the sources of v's incoming channels.
func (t *TAG) Producers(v string) []string {
	var out []string
	for _, c := range t.channels {
		if c.To == v {
			out = append(out, c.From)
		}
	}
	return out
}

// Groups returns vertex names per groupBy label, each sorted.
func (t *TAG) Groups() map[string][]string {
	out := make(map[string][]string)
	for name, v := range t.verts {
		if v.GroupBy != "" {
			out[v.GroupBy] = append(out[v.GroupBy], name)
		}
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// Validate checks the aggregation sub-graph is a single-rooted in-tree:
// every aggregator has at most one consumer, exactly one aggregator (the
// top) has none, and every aggregator reaches the top (no cycles, §2.2
// "hierarchical aggregation is structured as a single-rooted tree").
func (t *TAG) Validate() error {
	var root string
	next := make(map[string]string)
	for _, c := range t.channels {
		from := t.verts[c.From]
		if from.Role != RoleAggregator {
			continue
		}
		if prev, dup := next[c.From]; dup && prev != c.To {
			return fmt.Errorf("topology: aggregator %q has two consumers (%q, %q)", c.From, prev, c.To)
		}
		next[c.From] = c.To
	}
	aggs := 0
	for name, v := range t.verts {
		if v.Role != RoleAggregator {
			continue
		}
		aggs++
		if _, ok := next[name]; !ok {
			if root != "" {
				return fmt.Errorf("topology: two roots %q and %q", root, name)
			}
			root = name
		}
	}
	if aggs == 0 {
		return errors.New("topology: no aggregators")
	}
	if root == "" {
		return errors.New("topology: no root (cycle among aggregators)")
	}
	// Every aggregator must reach the root within |aggs| hops.
	for name, v := range t.verts {
		if v.Role != RoleAggregator {
			continue
		}
		cur, hops := name, 0
		for cur != root {
			n, ok := next[cur]
			if !ok || hops > aggs {
				return fmt.Errorf("topology: aggregator %q does not reach root %q", name, root)
			}
			cur = n
			hops++
		}
	}
	return nil
}

// Root returns the top aggregator's name (after Validate).
func (t *TAG) Root() (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	next := make(map[string]bool)
	for _, c := range t.channels {
		if t.verts[c.From].Role == RoleAggregator {
			next[c.From] = true
		}
	}
	for name, v := range t.verts {
		if v.Role == RoleAggregator && !next[name] {
			return name, nil
		}
	}
	return "", errors.New("topology: unreachable")
}

// Route is one row the routing manager installs (Appendix A): messages from
// Src go to Dst, which lives on Node via the given medium.
type Route struct {
	Src, Dst string
	Node     string
	Medium   Medium
}

// RoutesFor materializes routing rows from the TAG given the placement
// (vertex → node). Channels between vertices on the same node become shm
// routes (sockmap entries); cross-node channels become kernel routes
// (inter-node routing-table rows for the gateways).
func (t *TAG) RoutesFor(place map[string]string) ([]Route, error) {
	var out []Route
	for _, c := range t.channels {
		fromNode, ok := place[c.From]
		if !ok {
			// Clients are external; only aggregator sources need routes.
			if t.verts[c.From].Role == RoleClient {
				continue
			}
			return nil, fmt.Errorf("topology: vertex %q not placed", c.From)
		}
		toNode, ok := place[c.To]
		if !ok {
			return nil, fmt.Errorf("topology: vertex %q not placed", c.To)
		}
		m := MediumKernel
		if fromNode == toNode {
			m = MediumShm
		}
		out = append(out, Route{Src: c.From, Dst: c.To, Node: toNode, Medium: m})
	}
	return out, nil
}
