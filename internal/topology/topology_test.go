package topology

import (
	"testing"
)

// buildHierarchy makes the paper's two-level tree: 4 leaves → 2 middles →
// top, plus clients feeding the leaves.
func buildHierarchy(t *testing.T) *TAG {
	t.Helper()
	g := New()
	add := func(v Vertex) {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	add(Vertex{Name: "top", Role: RoleAggregator, Level: "top", GroupBy: "gA"})
	add(Vertex{Name: "m0", Role: RoleAggregator, Level: "middle", GroupBy: "gA"})
	add(Vertex{Name: "m1", Role: RoleAggregator, Level: "middle", GroupBy: "gB"})
	for i := 0; i < 4; i++ {
		add(Vertex{Name: string(rune('a' + i)), Role: RoleAggregator, Level: "leaf", GroupBy: map[bool]string{true: "gA", false: "gB"}[i < 2]})
	}
	add(Vertex{Name: "c0", Role: RoleClient})
	ch := func(from, to string) {
		if err := g.AddChannel(Channel{From: from, To: to}); err != nil {
			t.Fatal(err)
		}
	}
	ch("c0", "a")
	ch("a", "m0")
	ch("b", "m0")
	ch("c", "m1")
	ch("d", "m1")
	ch("m0", "top")
	ch("m1", "top")
	return g
}

func TestValidateAcceptsTree(t *testing.T) {
	g := buildHierarchy(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	root, err := g.Root()
	if err != nil || root != "top" {
		t.Fatalf("root = %q, %v", root, err)
	}
}

func TestValidateRejectsTwoConsumers(t *testing.T) {
	g := buildHierarchy(t)
	_ = g.AddChannel(Channel{From: "a", To: "m1"}) // a already feeds m0
	if err := g.Validate(); err == nil {
		t.Fatal("two consumers accepted")
	}
}

func TestValidateRejectsTwoRoots(t *testing.T) {
	g := buildHierarchy(t)
	_ = g.AddVertex(Vertex{Name: "top2", Role: RoleAggregator})
	if err := g.Validate(); err == nil {
		t.Fatal("two roots accepted")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New()
	_ = g.AddVertex(Vertex{Name: "x", Role: RoleAggregator})
	_ = g.AddVertex(Vertex{Name: "y", Role: RoleAggregator})
	_ = g.AddChannel(Channel{From: "x", To: "y"})
	_ = g.AddChannel(Channel{From: "y", To: "x"})
	if err := g.Validate(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Fatal("empty TAG accepted")
	}
}

func TestChannelEndpointChecks(t *testing.T) {
	g := New()
	_ = g.AddVertex(Vertex{Name: "a", Role: RoleAggregator})
	if err := g.AddChannel(Channel{From: "a", To: "ghost"}); err == nil {
		t.Fatal("dangling channel accepted")
	}
	if err := g.AddChannel(Channel{From: "ghost", To: "a"}); err == nil {
		t.Fatal("dangling channel accepted")
	}
	if err := g.AddVertex(Vertex{}); err == nil {
		t.Fatal("unnamed vertex accepted")
	}
}

func TestProducersConsumers(t *testing.T) {
	g := buildHierarchy(t)
	if got := g.Consumers("a"); len(got) != 1 || got[0] != "m0" {
		t.Fatalf("consumers(a) = %v", got)
	}
	prods := g.Producers("top")
	if len(prods) != 2 {
		t.Fatalf("producers(top) = %v", prods)
	}
}

func TestGroupsClusterByLabel(t *testing.T) {
	g := buildHierarchy(t)
	groups := g.Groups()
	if len(groups["gA"]) != 4 { // top, m0, a, b
		t.Fatalf("gA = %v", groups["gA"])
	}
	if len(groups["gB"]) != 3 { // m1, c, d
		t.Fatalf("gB = %v", groups["gB"])
	}
}

func TestRoutesForAssignsMediumByColocation(t *testing.T) {
	g := buildHierarchy(t)
	place := map[string]string{
		"a": "node-0", "b": "node-0", "m0": "node-0",
		"c": "node-1", "d": "node-1", "m1": "node-1",
		"top": "node-0",
	}
	routes, err := g.RoutesFor(place)
	if err != nil {
		t.Fatal(err)
	}
	byPair := make(map[string]Route)
	for _, r := range routes {
		byPair[r.Src+">"+r.Dst] = r
	}
	// Co-located: shm; cross-node: kernel.
	if byPair["a>m0"].Medium != MediumShm {
		t.Fatalf("a>m0 = %v", byPair["a>m0"])
	}
	if byPair["m1>top"].Medium != MediumKernel || byPair["m1>top"].Node != "node-0" {
		t.Fatalf("m1>top = %+v", byPair["m1>top"])
	}
	if byPair["m0>top"].Medium != MediumShm {
		t.Fatalf("m0>top = %v", byPair["m0>top"])
	}
	// Client channels without placement are skipped, not errors.
	for p := range byPair {
		if p == "c0>a" {
			t.Fatal("client channel should be skipped")
		}
	}
}

func TestRoutesForUnplacedAggregatorErrors(t *testing.T) {
	g := buildHierarchy(t)
	if _, err := g.RoutesFor(map[string]string{"a": "node-0"}); err == nil {
		t.Fatal("unplaced destination accepted")
	}
}

func TestVerticesSorted(t *testing.T) {
	g := buildHierarchy(t)
	vs := g.Vertices()
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Name > vs[i].Name {
			t.Fatal("vertices not sorted")
		}
	}
	if _, ok := g.Vertex("m0"); !ok {
		t.Fatal("vertex lookup failed")
	}
}
