package broker

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/sim"
)

func rig() (*sim.Engine, *cluster.Node, *Broker) {
	eng := sim.NewEngine()
	c := cluster.New(eng, sim.NewRNG(1), costmodel.Default(), 1)
	return eng, c.Nodes[0], New(c.Nodes[0])
}

func TestPublishThenSubscribeDrains(t *testing.T) {
	eng, _, b := rig()
	b.Publish("t", 1000, "m1")
	b.Publish("t", 1000, "m2")
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.QueueLen("t") != 2 {
		t.Fatalf("queued = %d", b.QueueLen("t"))
	}
	if b.Buffered() != 2000 {
		t.Fatalf("buffered = %d", b.Buffered())
	}
	var got []string
	b.Subscribe("t", func(m Message) { got = append(got, m.Payload.(string)) })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("drained = %v (FIFO order required)", got)
	}
	if b.Buffered() != 0 || b.QueueLen("t") != 0 {
		t.Fatal("buffer not drained")
	}
	if b.Published != 2 || b.Delivered != 2 {
		t.Fatalf("counters: %d/%d", b.Published, b.Delivered)
	}
}

func TestSubscribeFirstDeliversOnPublish(t *testing.T) {
	eng, _, b := rig()
	var got string
	b.Subscribe("t", func(m Message) { got = m.Payload.(string) })
	b.Publish("t", 10, "hello")
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestUnsubscribeQueuesAgain(t *testing.T) {
	eng, _, b := rig()
	b.Subscribe("t", func(Message) {})
	b.Unsubscribe("t")
	b.Publish("t", 10, "x")
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.QueueLen("t") != 1 {
		t.Fatal("message should park after unsubscribe")
	}
}

func TestQueueDelayMeasured(t *testing.T) {
	eng, _, b := rig()
	b.Publish("t", 10, "x")
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Subscribe one minute later: the parked message accrues queue delay.
	eng.After(sim.Minute, func() {
		b.Subscribe("t", func(Message) {})
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.QueueDelay < sim.Minute {
		t.Fatalf("queue delay = %v", b.QueueDelay)
	}
}

func TestBrokerSerializesLikeOneProcess(t *testing.T) {
	eng, n, b := rig()
	// Many large publishes: total time must be ≈ serialized through the
	// broker's single-server station, not parallel on the 64-core node.
	const k = 8
	size := uint64(200 << 20)
	hop, _ := n.P.BrokerHop(size)
	b.Subscribe("t", func(Message) {})
	for i := 0; i < k; i++ {
		b.Publish("t", size, i)
	}
	start := eng.Now()
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	elapsed := eng.Now() - start
	if elapsed < sim.Duration(k-1)*hop {
		t.Fatalf("broker parallelized: %v for %d hops of %v", elapsed, k, hop)
	}
}

func TestMediateChargesOneHop(t *testing.T) {
	eng, n, b := rig()
	var done sim.Duration
	b.Mediate(100<<20, func() { done = eng.Now() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want, _ := n.P.BrokerHop(100 << 20)
	if done != want {
		t.Fatalf("mediate = %v, want %v", done, want)
	}
	if n.CPUTime("broker") == 0 {
		t.Fatal("no CPU attribution")
	}
}

func TestPeakBuffered(t *testing.T) {
	eng, _, b := rig()
	b.Publish("t", 500, nil)
	b.Publish("t", 700, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	b.Subscribe("t", func(Message) {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.PeakBuffered() != 1200 {
		t.Fatalf("peak = %d", b.PeakBuffered())
	}
}
