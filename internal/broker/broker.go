package broker

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Message is one buffered payload.
type Message struct {
	Topic    string
	Size     uint64
	Payload  interface{} // opaque to the broker (a *tensor.Tensor in practice)
	Enqueued sim.Duration
}

// Broker is a persistent broker process pinned to one node. It reserves an
// always-on memory footprint and charges CPU per relayed byte. All relaying
// serializes through the broker's single process — under load, the broker
// is a store-and-forward bottleneck, which is exactly the §2.3 complaint.
type Broker struct {
	Node *cluster.Node
	proc *sim.Station

	queues   map[string][]Message
	subs     map[string]func(Message)
	buffered uint64 // bytes currently resident in broker queues
	peak     uint64

	// Stats.
	Published uint64
	Delivered uint64
	// QueueDelay accumulates time messages spent parked in broker queues.
	QueueDelay sim.Duration
}

// New creates a broker on the given node.
func New(n *cluster.Node) *Broker {
	return &Broker{
		Node:   n,
		proc:   sim.NewStation(n.Eng, n.Name+"/broker", 1),
		queues: make(map[string][]Message),
		subs:   make(map[string]func(Message)),
	}
}

// exec runs broker work on the broker's single-threaded process.
func (b *Broker) exec(demand, cpu sim.Duration, done func()) {
	b.Node.ExecFree("broker", cpu)
	b.proc.Submit(demand, func(_, _ sim.Duration) { done() })
}

// Mediate charges one broker pass for an out-of-band payload (e.g. global
// model distribution in serverless FL, where every client download flows
// through the broker). done fires when the broker has relayed it.
func (b *Broker) Mediate(size uint64, done func()) {
	lat, cpu := b.Node.P.BrokerHop(size)
	b.exec(lat, cpu, done)
}

// Publish stores a message then forwards it to the topic's subscriber if one
// is attached; otherwise it stays queued until Subscribe. The store-and-
// forward CPU/latency cost is charged on ingestion; delivery to a subscriber
// charges the dispatch half.
func (b *Broker) Publish(topic string, size uint64, payload interface{}) {
	b.Published++
	lat, cpu := b.Node.P.BrokerHop(size)
	// Ingestion half: copy into the broker's buffer.
	b.exec(lat/2, cpu/2, func() {
		m := Message{Topic: topic, Size: size, Payload: payload, Enqueued: b.Node.Eng.Now()}
		b.buffered += size
		if b.buffered > b.peak {
			b.peak = b.buffered
		}
		b.queues[topic] = append(b.queues[topic], m)
		b.pump(topic)
	})
}

// Subscribe attaches the topic's consumer and drains anything queued.
// A topic has at most one subscriber (point-to-point queue semantics, as
// used for function chaining).
func (b *Broker) Subscribe(topic string, fn func(Message)) {
	b.subs[topic] = fn
	b.pump(topic)
}

// Unsubscribe detaches the consumer (aggregator terminated); messages queue
// up again until the next Subscribe.
func (b *Broker) Unsubscribe(topic string) { delete(b.subs, topic) }

// RetireTopic drops every record the broker holds for a closed topic —
// subscriber and queue slot alike. Unsubscribe keeps the queue (messages
// wait for the next Subscribe); retirement is terminal: the control plane
// guarantees nothing will publish or subscribe on the topic again. Any
// messages still parked (there are none on a cleanly closed round) leave
// the buffered accounting with them.
func (b *Broker) RetireTopic(topic string) {
	for _, m := range b.queues[topic] {
		b.buffered -= m.Size
	}
	delete(b.queues, topic)
	delete(b.subs, topic)
}

// pump delivers queued messages to the subscriber, one dispatch cost each.
func (b *Broker) pump(topic string) {
	fn := b.subs[topic]
	if fn == nil {
		return
	}
	for len(b.queues[topic]) > 0 {
		m := b.queues[topic][0]
		b.queues[topic] = b.queues[topic][1:]
		lat, cpu := b.Node.P.BrokerHop(m.Size)
		// Dispatch half: copy out of the broker toward the consumer.
		b.exec(lat/2, cpu/2, func() {
			b.buffered -= m.Size
			b.Delivered++
			b.QueueDelay += b.Node.Eng.Now() - m.Enqueued
			fn(m)
		})
	}
}

// QueueLen returns messages parked on the topic.
func (b *Broker) QueueLen(topic string) int { return len(b.queues[topic]) }

// Topics returns the number of topic records the broker currently holds —
// queue slots and subscribers combined, the control-plane footprint that
// RetireTopic bounds.
func (b *Broker) Topics() int {
	n := len(b.queues)
	for t := range b.subs {
		if _, ok := b.queues[t]; !ok {
			n++
		}
	}
	return n
}

// Buffered returns bytes currently resident in broker queues.
func (b *Broker) Buffered() uint64 { return b.buffered }

// PeakBuffered returns the high-water mark of broker-resident bytes — the
// broker's contribution to the Fig. 13(b) memory cost.
func (b *Broker) PeakBuffered() uint64 { return b.peak }

// String implements fmt.Stringer.
func (b *Broker) String() string {
	return fmt.Sprintf("broker@%s{topics=%d buffered=%dB}", b.Node.Name, len(b.queues), b.buffered)
}
