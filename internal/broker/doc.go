// Package broker implements the stateful message broker that serverless FL
// baselines interpose between functions (§2.3, Fig. 2(b), Fig. 5): a
// persistent store-and-forward component that buffers model updates while
// aggregators spawn, and relays messages because ephemeral functions cannot
// hold direct routes. Every pass through the broker costs an extra copy in,
// a copy out, and buffer memory — the "+MB" share of Fig. 7(a).
//
// Topics are round-named, so the broker's maps grow with every round
// unless closed rounds are retired: RetireTopic drops a topic's
// subscriber and queue slot terminally (Unsubscribe keeps the queue for
// a future subscriber; retirement guarantees there will be none).
//
// Layer (DESIGN.md): component model under internal/systems — the
// stateful message broker of the SL baseline.
package broker
