package runtime

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// State is a sandbox lifecycle state.
type State int

// Sandbox lifecycle: Starting → Idle ⇄ Busy → Terminated.
const (
	StateStarting State = iota
	StateIdle
	StateBusy
	StateTerminated
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrTerminated is returned for operations on a dead sandbox.
var ErrTerminated = errors.New("runtime: sandbox terminated")

// Sandbox is one function instance (an aggregator process in a container).
type Sandbox struct {
	ID   string
	Node *cluster.Node
	// Kind is the deployment the sandbox belongs to (e.g. "leaf",
	// "middle"). Warm reuse only happens within a kind: a Knative-style
	// platform cannot hand a leaf's pod to the middle deployment. LIFL's
	// homogenized runtimes sidestep this via explicit role conversion
	// (§5.3), not via the warm pool.
	Kind  string
	state State

	CreatedAt sim.Duration
	ReadyAt   sim.Duration
	LastIdle  sim.Duration
	ColdStart bool

	// OnReclaim, if set, fires when the keep-alive reaper terminates the
	// sandbox; managers use it to de-register routes.
	OnReclaim func(*Sandbox)

	// Pinned exempts the sandbox from keep-alive reclamation while its
	// aggregator still owes output for an in-flight round (a lazy
	// aggregator waiting for its goal is idle but must not be reaped).
	Pinned bool

	mem           uint64
	upkeepSettled sim.Duration
	mgr           *Manager
}

// settleUpkeep charges the sandbox's continuous runtime CPU drain accrued
// since the last settlement.
func (s *Sandbox) settleUpkeep() {
	now := s.Node.Eng.Now()
	if now <= s.upkeepSettled {
		return
	}
	drain := sim.Duration(float64(now-s.upkeepSettled) * s.Node.P.RuntimeUpkeepCPUFrac)
	s.Node.ExecFree("runtime-upkeep", drain)
	s.upkeepSettled = now
}

// State returns the current lifecycle state.
func (s *Sandbox) State() State { return s.state }

// SetBusy transitions Idle→Busy.
func (s *Sandbox) SetBusy() error {
	if s.state == StateTerminated {
		return fmt.Errorf("%w: %s", ErrTerminated, s.ID)
	}
	s.state = StateBusy
	return nil
}

// SetIdle transitions to Idle and timestamps it for keep-alive reclamation.
// A one-shot expiry check is scheduled so idle instances are reclaimed on
// time even when the control plane is otherwise quiet.
func (s *Sandbox) SetIdle() error {
	if s.state == StateTerminated {
		return fmt.Errorf("%w: %s", ErrTerminated, s.ID)
	}
	s.state = StateIdle
	s.LastIdle = s.Node.Eng.Now()
	if s.mgr != nil && !s.mgr.DisableKeepAlive {
		idleMark := s.LastIdle
		s.Node.Eng.After(s.Node.P.KeepAliveIdle+sim.Millisecond, func() {
			// Reap only if the sandbox has stayed idle since this mark.
			if s.state == StateIdle && s.LastIdle == idleMark {
				s.mgr.ReapIdle()
			}
		})
	}
	return nil
}

// Manager is the per-node lifecycle manager (the LIFL agent's runtime duty,
// or the Knative-like controller for the baselines).
type Manager struct {
	Node *cluster.Node

	sandboxes map[string]*Sandbox
	nextID    int

	// Stats.
	ColdStarts uint64
	WarmStarts uint64
	Created    uint64
	Reclaimed  uint64

	// DisableKeepAlive turns off idle reclamation (serverful always-on).
	DisableKeepAlive bool
}

// NewManager creates a manager for the node.
func NewManager(n *cluster.Node) *Manager {
	return &Manager{Node: n, sandboxes: make(map[string]*Sandbox)}
}

// Start launches a new sandbox. If a warm idle sandbox exists it is reused
// (warm start); otherwise a cold start is charged (delay + CPU + memory).
// ready fires when the sandbox can serve, receiving the instance.
func (m *Manager) Start(prefix string, ready func(*Sandbox)) *Sandbox {
	// Expired idle instances must not be handed out as warm: reap first, so
	// keep-alive semantics hold even between the agent's periodic sweeps.
	m.ReapIdle()
	if sb := m.takeIdle(prefix); sb != nil {
		m.WarmStarts++
		sb.state = StateStarting
		m.Node.Eng.After(m.Node.P.WarmStartDelay, func() {
			if sb.state == StateTerminated {
				return
			}
			sb.state = StateIdle
			sb.ReadyAt = m.Node.Eng.Now()
			if ready != nil {
				ready(sb)
			}
		})
		return sb
	}
	m.nextID++
	m.Created++
	m.ColdStarts++
	sb := &Sandbox{
		ID:            fmt.Sprintf("%s-%s-%d", prefix, m.Node.Name, m.nextID),
		Node:          m.Node,
		Kind:          prefix,
		state:         StateStarting,
		CreatedAt:     m.Node.Eng.Now(),
		ColdStart:     true,
		mem:           m.Node.P.AggregatorMemBytes,
		upkeepSettled: m.Node.Eng.Now(),
		mgr:           m,
	}
	m.sandboxes[sb.ID] = sb
	m.Node.AllocMem(sb.mem)
	// Cold start: the container/runtime initialization occupies CPU and
	// delays readiness (the cascading cold-start effect of §2.3 arises when
	// chains of these are started reactively).
	m.Node.Exec("runtime", costColdCPU(m.Node), nil)
	m.Node.Eng.After(m.Node.P.ColdStartDelay, func() {
		if sb.state == StateTerminated {
			return
		}
		sb.state = StateIdle
		sb.ReadyAt = m.Node.Eng.Now()
		if ready != nil {
			ready(sb)
		}
	})
	return sb
}

func costColdCPU(n *cluster.Node) sim.Duration {
	return sim.Duration(n.P.ColdStartCycles / 2.8e9 * float64(sim.Second))
}

// takeIdle pops a warm idle sandbox of the given kind, preferring the most
// recently idle (better cache behaviour, standard warm-pool policy).
func (m *Manager) takeIdle(kind string) *Sandbox {
	var best *Sandbox
	for _, sb := range m.sandboxes {
		if sb.state != StateIdle || sb.Kind != kind || sb.Pinned {
			continue
		}
		if best == nil || sb.LastIdle > best.LastIdle {
			best = sb
		}
	}
	return best
}

// IdleCount returns the number of warm idle sandboxes.
func (m *Manager) IdleCount() int {
	n := 0
	for _, sb := range m.sandboxes {
		if sb.state == StateIdle {
			n++
		}
	}
	return n
}

// LiveCount returns sandboxes not yet terminated.
func (m *Manager) LiveCount() int { return len(m.sandboxes) }

// Terminate destroys a sandbox, freeing its memory.
func (m *Manager) Terminate(sb *Sandbox) {
	if sb.state == StateTerminated {
		return
	}
	sb.settleUpkeep()
	sb.state = StateTerminated
	m.Node.FreeMem(sb.mem)
	delete(m.sandboxes, sb.ID)
}

// SettleUpkeep charges accrued runtime-upkeep CPU for all live sandboxes;
// systems call it before reading cost counters.
func (m *Manager) SettleUpkeep() {
	for _, sb := range m.sandboxes {
		sb.settleUpkeep()
	}
}

// ReapIdle terminates idle sandboxes whose keep-alive expired. Call it
// periodically (the agent does, on its metrics scrape cycle).
func (m *Manager) ReapIdle() int {
	if m.DisableKeepAlive {
		return 0
	}
	now := m.Node.Eng.Now()
	reaped := 0
	for _, sb := range m.sandboxes {
		if sb.state == StateIdle && !sb.Pinned && now-sb.LastIdle >= m.Node.P.KeepAliveIdle {
			if sb.OnReclaim != nil {
				sb.OnReclaim(sb)
			}
			m.Terminate(sb)
			m.Reclaimed++
			reaped++
		}
	}
	return reaped
}

// TerminateAll tears everything down (end of experiment).
func (m *Manager) TerminateAll() {
	for _, sb := range m.sandboxes {
		sb.state = StateTerminated
		m.Node.FreeMem(sb.mem)
	}
	m.sandboxes = make(map[string]*Sandbox)
}
