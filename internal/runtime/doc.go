// Package runtime models the serverless function runtime: sandboxed
// aggregator instances with cold/warm start, a per-node warm pool with
// keep-alive reclamation, and the LIFL agent's lifecycle management
// (creation, termination, §3). LIFL's aggregators use homogenized runtimes
// — same code and libraries regardless of role — which is what makes
// opportunistic role conversion (§5.3) free of state synchronization.
//
// Layer (DESIGN.md): component model under internal/systems — sandboxes:
// cold starts, keep-alive, reaping.
package runtime
