package runtime

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/sim"
)

func rig() (*sim.Engine, *cluster.Node, *Manager) {
	eng := sim.NewEngine()
	c := cluster.New(eng, sim.NewRNG(1), costmodel.Default(), 1)
	return eng, c.Nodes[0], NewManager(c.Nodes[0])
}

func TestColdStartDelayAndCPU(t *testing.T) {
	eng, n, m := rig()
	var readyAt sim.Duration
	m.Start("leaf", func(sb *Sandbox) { readyAt = eng.Now() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if readyAt != n.P.ColdStartDelay {
		t.Fatalf("ready at %v, want %v", readyAt, n.P.ColdStartDelay)
	}
	if m.ColdStarts != 1 || m.WarmStarts != 0 || m.Created != 1 {
		t.Fatalf("counters: %d/%d/%d", m.ColdStarts, m.WarmStarts, m.Created)
	}
	if n.CPUTime("runtime") == 0 {
		t.Fatal("cold start consumed no CPU")
	}
	if n.MemUsed() < n.P.AggregatorMemBytes {
		t.Fatal("sandbox memory not charged")
	}
}

func TestWarmStartReusesIdleSandboxOfSameKind(t *testing.T) {
	eng, n, m := rig()
	var first *Sandbox
	m.Start("leaf", func(sb *Sandbox) { first = sb })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	_ = first.SetIdle()
	var second *Sandbox
	var readyAt sim.Duration
	start := eng.Now()
	m.Start("leaf", func(sb *Sandbox) { second = sb; readyAt = eng.Now() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("warm pool did not hand back the idle instance")
	}
	if readyAt-start != n.P.WarmStartDelay {
		t.Fatalf("warm start took %v", readyAt-start)
	}
	if m.WarmStarts != 1 || m.Created != 1 {
		t.Fatalf("counters: warm=%d created=%d", m.WarmStarts, m.Created)
	}
}

func TestWarmPoolIsKindKeyed(t *testing.T) {
	eng, _, m := rig()
	var leaf *Sandbox
	m.Start("leaf", func(sb *Sandbox) { leaf = sb })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	_ = leaf.SetIdle()
	// A "middle" deployment must NOT get the idle leaf pod.
	var mid *Sandbox
	m.Start("middle", func(sb *Sandbox) { mid = sb })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if mid == leaf {
		t.Fatal("cross-kind warm reuse must not happen (that's LIFL's §5.3 feature, not the platform's)")
	}
	if m.Created != 2 {
		t.Fatalf("created = %d", m.Created)
	}
}

func TestKeepAliveReaping(t *testing.T) {
	eng, n, m := rig()
	var sb *Sandbox
	reclaimed := false
	m.Start("leaf", func(s *Sandbox) { sb = s })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	sb.OnReclaim = func(*Sandbox) { reclaimed = true }
	_ = sb.SetIdle()
	eng.After(n.P.KeepAliveIdle+sim.Second, func() { m.ReapIdle() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if sb.State() != StateTerminated || !reclaimed || m.Reclaimed != 1 {
		t.Fatalf("reap failed: state=%v reclaimed=%v", sb.State(), reclaimed)
	}
	if m.LiveCount() != 0 {
		t.Fatalf("live = %d", m.LiveCount())
	}
}

func TestPinnedSandboxSurvivesReaping(t *testing.T) {
	eng, n, m := rig()
	var sb *Sandbox
	m.Start("leaf", func(s *Sandbox) { sb = s })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	_ = sb.SetIdle()
	sb.Pinned = true
	eng.After(n.P.KeepAliveIdle*3, func() { m.ReapIdle() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if sb.State() == StateTerminated {
		t.Fatal("pinned sandbox reaped while owing round output")
	}
	// Unpinned, it goes on the next sweep.
	sb.Pinned = false
	m.ReapIdle()
	if sb.State() != StateTerminated {
		t.Fatal("unpinned expired sandbox should be reaped")
	}
}

func TestDisableKeepAlive(t *testing.T) {
	eng, n, m := rig()
	m.DisableKeepAlive = true
	var sb *Sandbox
	m.Start("leaf", func(s *Sandbox) { sb = s })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	_ = sb.SetIdle()
	eng.After(n.P.KeepAliveIdle*10, func() { m.ReapIdle() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if sb.State() == StateTerminated {
		t.Fatal("always-on manager reaped an instance")
	}
}

func TestBusyIdleTransitions(t *testing.T) {
	eng, _, m := rig()
	var sb *Sandbox
	m.Start("leaf", func(s *Sandbox) { sb = s })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if err := sb.SetBusy(); err != nil || sb.State() != StateBusy {
		t.Fatalf("busy: %v %v", sb.State(), err)
	}
	if err := sb.SetIdle(); err != nil || sb.State() != StateIdle {
		t.Fatalf("idle: %v %v", sb.State(), err)
	}
	m.Terminate(sb)
	if err := sb.SetBusy(); err == nil {
		t.Fatal("busy on terminated sandbox must error")
	}
}

func TestUpkeepSettlement(t *testing.T) {
	eng, n, m := rig()
	m.Start("leaf", nil)
	// nil-ready Start: readiness callback optional? Guard: use a no-op.
	_ = eng
	eng.After(100*sim.Second, func() { m.SettleUpkeep() })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	got := n.CPUTime("runtime-upkeep")
	want := sim.Duration(float64(100*sim.Second-0) * n.P.RuntimeUpkeepCPUFrac)
	if got < want-sim.Second || got > want {
		t.Fatalf("upkeep = %v, want ≈%v", got, want)
	}
}

func TestTerminateAll(t *testing.T) {
	eng, n, m := rig()
	for i := 0; i < 3; i++ {
		m.Start("leaf", func(*Sandbox) {})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	m.TerminateAll()
	if m.LiveCount() != 0 {
		t.Fatalf("live = %d", m.LiveCount())
	}
	if n.MemUsed() != 0 {
		t.Fatalf("memory leaked: %d", n.MemUsed())
	}
}

func TestIdleCount(t *testing.T) {
	eng, _, m := rig()
	var sbs []*Sandbox
	for i := 0; i < 3; i++ {
		m.Start("leaf", func(sb *Sandbox) { sbs = append(sbs, sb) })
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if m.IdleCount() != 3 {
		t.Fatalf("idle = %d", m.IdleCount())
	}
	_ = sbs[0].SetBusy()
	if m.IdleCount() != 2 {
		t.Fatalf("idle = %d", m.IdleCount())
	}
}
