package core

// The staged round loop. A synchronous round decomposes into four stages
// with very different parallelism profiles:
//
//	stage 1 — select & price   serial   every RNG draw (selection order,
//	                                    failure coin flips, train-time
//	                                    jitter) happens here, in the exact
//	                                    legacy sequence
//	stage 2 — materialize      parallel pure per-client update synthesis
//	                                    (flwork.LocalUpdateInto) into the
//	                                    platform's tensor arena
//	stage 3 — play events      serial   the discrete-event engine is a
//	                                    single totally-ordered timeline
//	stage 4 — fold & install   sharded  the float64 aggregation fold and
//	                                    the model install sweep the
//	                                    parameter vector on fixed shard
//	                                    boundaries (tensor/parallel.go)
//
// RunConfig.Workers bounds the pool stages 2 and 4 may use. The contract
// that makes the knob safe is the same everywhere: parallel stages do pure
// per-element work whose decomposition depends only on problem shape
// (client index, vector length) — never on the worker count — so a fixed
// seed produces a byte-identical Report for ANY Workers value, serial
// included. Stage 2 additionally recycles one arena of update tensors
// round over round, so materialization costs zero steady-state heap.

import (
	"repro/internal/par"
	"repro/internal/systems"
	"repro/internal/tensor"
)

// maxArenaBytes caps the update arena. At the default model.PhysScale the
// arena is trivially small (120 slots × 2,816 floats ≈ 1.3 MiB), but a
// full-fidelity model would pin goal × params × 4 bytes live for the whole
// run; past the cap, stage 2 degrades to the legacy lazy form — per-arrival
// materialization with a Clone — which keeps peak heap at the event
// pipeline's natural watermark instead.
const maxArenaBytes = 64 << 20

// workers returns the resolved stage pool bound (>= 1).
func (p *Platform) workers() int {
	if p.Cfg.Workers > 1 {
		return p.Cfg.Workers
	}
	return 1
}

// attachUpdates is stage 2: materialize every job's update tensor for this
// round and attach it via MakeUpdate. Sync systems call MakeUpdate with the
// round-start global — exactly the tensor p.Sys.Global() returns here, and
// it does not change until the round's install — and fold the result within
// the round, so pre-materializing into the reusable arena is
// behaviour-invisible: bit-identical updates, minus a Clone per client per
// round. Materialization runs on the worker pool; each slot is touched by
// exactly one goroutine, and LocalUpdateInto is a pure function of
// (client, global, round).
func (p *Platform) attachUpdates(jobs []systems.ClientJob, idx []int, round int) {
	global := p.Sys.Global()
	if uint64(len(jobs))*global.PhysicalBytes() > maxArenaBytes {
		for k := range jobs {
			c := p.Pop.Client(idx[k])
			jobs[k].MakeUpdate = func(g *tensor.Tensor) *tensor.Tensor {
				return p.Pop.LocalUpdate(c, g, round)
			}
		}
		return
	}
	p.ensureArena(len(jobs), global.Len())
	par.Do(p.workers(), len(jobs), func(k int) {
		buf := p.arena[k]
		p.Pop.LocalUpdateInto(buf, p.Pop.Client(idx[k]), global, round)
		jobs[k].MakeUpdate = func(*tensor.Tensor) *tensor.Tensor { return buf }
	})
}

// ensureArena grows the update arena to n tensors of physical length phys.
// Slots persist across rounds; a slot's contents are fully overwritten by
// LocalUpdateInto before every use.
func (p *Platform) ensureArena(n, phys int) {
	for len(p.arena) < n {
		p.arena = append(p.arena, tensor.New(phys))
	}
}
