// Package core is the top of the LIFL library: it assembles a complete FL
// platform (system under test + client population + learning curve) and
// runs synchronous FedAvg training to a target accuracy, collecting every
// metric the paper's evaluation reports — time-to-accuracy, cost-to-
// accuracy, per-round ACT and CPU, arrival-rate and active-aggregator time
// series. The examples and the experiment harness are thin layers over
// this package; the root package lifl re-exports it for downstream users.
package core

import (
	"errors"
	"fmt"

	"repro/internal/coordinator"
	"repro/internal/costmodel"
	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/systems"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// SystemKind selects the system under test.
type SystemKind string

// The four systems of §6.
const (
	SystemLIFL SystemKind = "lifl" // full LIFL (all flags)
	SystemSLH  SystemKind = "slh"  // LIFL data plane, conventional control plane
	SystemSF   SystemKind = "sf"   // serverful baseline
	SystemSL   SystemKind = "sl"   // serverless baseline
)

// RunConfig parameterizes a full FL training run (the Fig. 9/10 workloads).
type RunConfig struct {
	System SystemKind
	Model  model.Spec
	// Clients is the total population (the paper: 2,800 from FedScale).
	Clients int
	// ActivePerRound is the number of simultaneously active clients
	// (120 for ResNet-18, 15 for ResNet-152).
	ActivePerRound int
	// Class selects mobile (hibernating) or server (always-on) clients.
	Class flwork.ClientClass
	// TargetAccuracy stops the run when reached (the paper uses 0.70).
	TargetAccuracy float64
	// MaxRounds bounds the run regardless of accuracy.
	MaxRounds int
	// Nodes is the aggregation-service node count (paper: 5).
	Nodes int
	// MC is per-node max service capacity (Appendix E).
	MC   float64
	Seed int64
	// FailureRate is the probability a selected client dies mid-round
	// (battery, lost connectivity). Failures are detected by keep-alive
	// heartbeats (§3) and covered by over-provisioned standbys, so rounds
	// still aggregate ActivePerRound updates.
	FailureRate float64
	// Params overrides the platform cost model (zero = Default()).
	Params costmodel.Params
	// Flags overrides LIFL's ablation switches (LIFL default: all on).
	Flags *systems.Flags
	// Tracer, when set, records task spans.
	Tracer *trace.Recorder
}

func (c RunConfig) withDefaults() RunConfig {
	if c.System == "" {
		c.System = SystemLIFL
	}
	if c.Model.Params == 0 {
		c.Model = model.ResNet18
	}
	if c.Clients == 0 {
		c.Clients = 2800
	}
	if c.ActivePerRound == 0 {
		c.ActivePerRound = 120
	}
	if c.TargetAccuracy == 0 {
		c.TargetAccuracy = 0.70
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 500
	}
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.MC == 0 {
		c.MC = 20
	}
	if c.Params.CoresPerNode == 0 {
		c.Params = costmodel.Default()
	}
	return c
}

// AccPoint is one point of the accuracy trajectory.
type AccPoint struct {
	Round    int
	Time     sim.Duration
	CPUTime  sim.Duration
	Accuracy float64
}

// Report is the outcome of a training run.
type Report struct {
	System SystemKind
	Model  model.Spec
	Rounds []systems.RoundResult
	Acc    []AccPoint
	// TimeToTarget and CPUToTarget are wall-clock and cumulative CPU cost
	// at the round where accuracy first crossed the target (zero if never).
	TimeToTarget sim.Duration
	CPUToTarget  sim.Duration
	Reached      bool
	// ArrivalsPerMinute is the Fig. 10(a,d) series.
	ArrivalsPerMinute []float64
	// ActiveAggs samples instances per round (Fig. 10(b,e)).
	ActiveAggs []int
	// CPUPerRound is CPU seconds per round (Fig. 10(c,f)).
	CPUPerRound []float64
	// FinalGlobal is the trained model.
	FinalGlobal *tensor.Tensor
}

// Platform couples an engine, a system and a population.
type Platform struct {
	Cfg   RunConfig
	Eng   *sim.Engine
	Sys   systems.Service
	Pop   *flwork.Population
	Curve flwork.Curve

	// Beats tracks client keep-alives; FailuresDetected counts clients the
	// monitor declared dead across the run.
	Beats            *coordinator.Heartbeats
	FailuresDetected int

	arrivalMinutes map[int]int
}

// NewPlatform assembles everything for a run.
func NewPlatform(cfg RunConfig) (*Platform, error) {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	scfg := systems.Config{
		Nodes:  cfg.Nodes,
		Model:  cfg.Model,
		Params: cfg.Params,
		Seed:   cfg.Seed,
		MC:     cfg.MC,
		Tracer: cfg.Tracer,
	}
	var sys systems.Service
	switch cfg.System {
	case SystemLIFL:
		scfg.Flags = systems.AllFlags()
		if cfg.Flags != nil {
			scfg.Flags = *cfg.Flags
		}
		sys = systems.NewLIFL(eng, scfg)
	case SystemSLH:
		sys = systems.NewLIFL(eng, scfg) // zero Flags = SL-H
	case SystemSF:
		// Static fleet sized for peak concurrency with leaf fan-in 2.
		scfg.SFLeaves = (cfg.ActivePerRound + 1) / 2
		sys = systems.NewSF(eng, scfg)
	case SystemSL:
		sys = systems.NewSL(eng, scfg)
	default:
		return nil, fmt.Errorf("core: unknown system %q", cfg.System)
	}
	pop := flwork.NewPopulation(eng, flwork.Config{
		NumClients: cfg.Clients,
		Model:      cfg.Model,
		Class:      cfg.Class,
		Seed:       cfg.Seed + 1,
	})
	return &Platform{
		Cfg:            cfg,
		Eng:            eng,
		Sys:            sys,
		Pop:            pop,
		Curve:          flwork.CurveFor(cfg.Model),
		Beats:          coordinator.NewHeartbeats(eng, cfg.Params.HeartbeatTimeout),
		arrivalMinutes: make(map[int]int),
	}, nil
}

// Run executes rounds until the accuracy target or MaxRounds.
func (p *Platform) Run() (*Report, error) {
	cfg := p.Cfg
	rng := sim.NewRNG(cfg.Seed + 2)
	rep := &Report{System: cfg.System, Model: cfg.Model}
	for r := 1; r <= cfg.MaxRounds; r++ {
		jobs := p.roundJobs(rng, r)
		var result *systems.RoundResult
		p.Sys.RunRound(r, jobs, func(res systems.RoundResult) { result = &res })
		// Advance only until the round completes: pending keep-alive expiry
		// checks must not stall the next round's start (they fire naturally
		// as later rounds run).
		for result == nil && p.Eng.Step() {
		}
		if result == nil {
			return nil, errors.New("core: round did not complete")
		}
		rep.Rounds = append(rep.Rounds, *result)
		rep.ActiveAggs = append(rep.ActiveAggs, p.Sys.ActiveAggregators())
		rep.CPUPerRound = append(rep.CPUPerRound, result.CPUTime.Seconds())
		acc := p.Curve.At(r)
		rep.Acc = append(rep.Acc, AccPoint{
			Round:    r,
			Time:     p.Eng.Now(),
			CPUTime:  p.Sys.CPUTime(),
			Accuracy: acc,
		})
		if !rep.Reached && acc >= cfg.TargetAccuracy {
			rep.Reached = true
			rep.TimeToTarget = p.Eng.Now()
			rep.CPUToTarget = p.Sys.CPUTime()
			break
		}
	}
	p.Sys.Finalize()
	rep.FinalGlobal = p.Sys.Global()
	rep.ArrivalsPerMinute = p.arrivalSeries()
	return rep, nil
}

// roundJobs selects the round's active clients and builds their jobs,
// recording scheduled arrival minutes for the Fig. 10 arrival series. The
// selector over-provisions; clients that fail (per FailureRate) are caught
// by the heartbeat monitor and replaced by standbys, so the aggregation
// goal is still met (§3 resilience).
func (p *Platform) roundJobs(rng *sim.RNG, round int) []systems.ClientJob {
	cfg := p.Cfg
	n := cfg.ActivePerRound
	// Walk the shuffled population until the goal's worth of live clients
	// is found; everyone contacted beats once, the dead ones expire.
	perm := rng.Perm(len(p.Pop.Clients))
	var idx []int
	for _, i := range perm {
		c := p.Pop.Clients[i]
		p.Beats.Beat(coordinator.ClientID(c.ID))
		if cfg.FailureRate > 0 && rng.Float64() < cfg.FailureRate {
			// The client dies before uploading; its heartbeat will expire
			// and the monitor reports it, while a standby takes its slot.
			p.FailuresDetected++
			continue
		}
		p.Beats.Forget(coordinator.ClientID(c.ID))
		idx = append(idx, i)
		if len(idx) == n {
			break
		}
	}
	jobs := make([]systems.ClientJob, 0, len(idx))
	base := p.Eng.Now()
	for _, i := range idx {
		c := p.Pop.Clients[i]
		// Hibernation gates availability *between* rounds (the selector only
		// picks active clients); within a round the delay is training time.
		delay := p.Pop.TrainTime(c)
		minute := int((base + delay) / sim.Minute)
		p.arrivalMinutes[minute]++
		jobs = append(jobs, systems.ClientJob{
			ID:     c.ID,
			Delay:  delay,
			Weight: float64(c.Samples),
			MakeUpdate: func(g *tensor.Tensor) *tensor.Tensor {
				return p.Pop.LocalUpdate(c, g, round)
			},
		})
	}
	return jobs
}

func (p *Platform) arrivalSeries() []float64 {
	maxMin := 0
	for m := range p.arrivalMinutes {
		if m > maxMin {
			maxMin = m
		}
	}
	out := make([]float64, maxMin+1)
	for m, c := range p.arrivalMinutes {
		out[m] = float64(c)
	}
	return out
}

// Run is the one-call entry point: assemble a platform and train.
func Run(cfg RunConfig) (*Report, error) {
	p, err := NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	return p.Run()
}
