package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/coordinator"
	"repro/internal/costmodel"
	"repro/internal/fedavg"
	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/systems"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// SystemKind selects the system under test.
type SystemKind string

// The four synchronous systems of §6, plus the buffered-async system of
// Fig. 11 (Appendix A).
const (
	SystemLIFL SystemKind = "lifl" // full LIFL (all flags)
	SystemSLH  SystemKind = "slh"  // LIFL data plane, conventional control plane
	SystemSF   SystemKind = "sf"   // serverful baseline
	SystemSL   SystemKind = "sl"   // serverless baseline
	// SystemAsync is the fifth system: LIFL's event-driven data plane
	// driving FedBuff-style buffered-async aggregation — no rounds, a
	// fixed training concurrency, staleness-weighted merges per version.
	// Tuned by RunConfig.Async; driven by the event-driven progress loop
	// in async.go instead of the synchronous round loop.
	SystemAsync SystemKind = "async"
)

// DefaultRetainRounds is the default control-plane record retention
// window (RunConfig.RetainRounds): the newest two rounds' records stay
// live, which covers mid-round failover replay (current round) and the
// cell fabric's wait-all replay of an interrupted round (previous round's
// global is still installed when the replay starts).
const DefaultRetainRounds = 2

// SelectorKind picks the per-round client sampling algorithm.
type SelectorKind string

// The two selectors. Both draw uniform ActivePerRound-subsets; they differ
// in cost and in the RNG draw sequence (so their schedules differ for the
// same seed — see DESIGN.md's selector determinism contract).
const (
	// SelectPerm is the default: a full rng.Perm over the population each
	// round — O(population) per round, bit-identical to the seed behaviour
	// the paper figures were calibrated against.
	SelectPerm SelectorKind = "perm"
	// SelectStream is the large-scale selector: an incremental partial
	// Fisher–Yates over a persistent index pool — O(ActivePerRound) work
	// per round after a one-time O(population) setup, flat in population
	// size (BenchmarkSelectStream1M).
	SelectStream SelectorKind = "stream"
)

// InjectSpec replaces population-driven rounds with Fig. 8-style injected
// batches: Updates synthetic model updates arrive directly at the
// aggregation service (no broadcast, pre-queued), spread over Window.
type InjectSpec struct {
	Updates int
	// Window defaults to Updates × 200 ms, the §5.4-motivated spread the
	// Fig. 8 microbenchmark uses.
	Window sim.Duration
	// Weight is the FedAvg weight per injected update (default 1).
	Weight float64
}

// AsyncSpec tunes the buffered-async system (SystemAsync). The zero value
// defers every knob: buffer 10, concurrency ActivePerRound, no staleness
// damping, adopt-the-mean merges.
type AsyncSpec struct {
	// BufferK is the FedBuff buffer size K: updates folded per version
	// bump (default 10).
	BufferK int
	// Concurrency is the number of clients kept training at all times —
	// the async analogue of ActivePerRound, which it defaults to.
	Concurrency int
	// StalenessHalfLife damps an update trained s versions ago by
	// 2^(−s/HalfLife); 0 disables damping.
	StalenessHalfLife float64
	// MaxStaleness, when > 0, discards updates staler than this many
	// versions outright.
	MaxStaleness int
	// MixRate is the server mixing rate η of the per-version ScaleAdd
	// merge next = (1−η)·global + η·bufferMean; 0 defaults to 1 (adopt).
	MixRate float64
}

// validate rejects knobs that would otherwise surface as mid-run panics
// (an aggcore goal of -1, a Merger mix outside (0, 1]) — construction-time
// errors, like the Flags/Inject misuse checks beside it in NewPlatform.
func (a AsyncSpec) validate() error {
	if a.BufferK < 0 {
		return fmt.Errorf("core: async BufferK %d must be >= 0", a.BufferK)
	}
	if a.Concurrency < 0 {
		return fmt.Errorf("core: async Concurrency %d must be >= 0", a.Concurrency)
	}
	if a.MaxStaleness < 0 {
		return fmt.Errorf("core: async MaxStaleness %d must be >= 0", a.MaxStaleness)
	}
	if a.MixRate < 0 || a.MixRate > 1 {
		return fmt.Errorf("core: async MixRate %v outside [0, 1] (0 = adopt)", a.MixRate)
	}
	return nil
}

// CellSpec federates a run across K locality-routed cells (internal/cell):
// independent clusters, each running its own aggregation hierarchy over the
// clients the locality router homes on it, stitched together by a per-round
// cross-cell aggregation tier. Core only validates the knobs; the fabric
// itself lives above core in internal/cell (harness sweeps dispatch there
// automatically, and core.Run rejects a cell config loudly).
type CellSpec struct {
	// Count is the number of cells K (>= 1). K = 1 degenerates to the
	// plain single-cluster run and is byte-identical to it for a fixed
	// seed — the invariant TestFabricK1MatchesPlainRun pins down.
	Count int
	// Regions weight the locality router's client → home-cell draw
	// (region i is homed on cell i). nil = uniform across Count cells;
	// otherwise exactly Count non-negative entries with a positive sum.
	Regions []float64
	// RTT is the inter-cell round-trip time; 0 takes the costmodel
	// default (Params.InterCellRTT).
	RTT sim.Duration
	// Bandwidth is the inter-cell link rate in bytes/sec per direction;
	// 0 takes Params.InterCellBandwidth.
	Bandwidth float64
	// Quorum is the straggler-cell policy, and it bites only when a cell
	// goes silent: healthy rounds always wait for every live cell. With
	// Quorum > 0 an outage round closes over the live cells alone
	// (provided at least Quorum of them), the dead cell's partial round is
	// discarded, and its clients re-route to the survivors; with 0
	// (wait-all) the round blocks until a replacement is restored from the
	// dead cell's last durable checkpoint and its replayed round delivers.
	Quorum int
	// OutageRound, when > 0, kills cell OutageCell at that global round's
	// start: its heartbeats stop and the fabric's monitor declares it dead
	// one sweep after the timeout. Under a quorum the dead cell's partial
	// round is discarded and its clients re-route to the surviving cells;
	// under wait-all the cell is restored from its last durable checkpoint
	// and the interrupted round is replayed on the replacement.
	OutageRound int
	// OutageCell indexes the cell OutageRound kills.
	OutageCell int
	// CheckpointRounds overrides Params.CheckpointPeriodRounds for the
	// per-cell model checkpoint cadence (0 = keep the params value).
	CheckpointRounds int
}

// Validate rejects fabric knobs that would otherwise surface as mid-run
// panics or silently absurd topologies — construction-time errors, like
// AsyncSpec.validate beside it.
func (s CellSpec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("core: cell Count %d must be >= 1", s.Count)
	}
	if s.Regions != nil {
		if len(s.Regions) != s.Count {
			return fmt.Errorf("core: %d region weights for %d cells", len(s.Regions), s.Count)
		}
		total := 0.0
		for _, w := range s.Regions {
			if w < 0 {
				return fmt.Errorf("core: negative region weight %v", w)
			}
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("core: region weights sum to %v (need > 0)", total)
		}
	}
	if s.Quorum < 0 || s.Quorum > s.Count {
		return fmt.Errorf("core: cell Quorum %d outside [0, %d]", s.Quorum, s.Count)
	}
	if s.RTT < 0 || s.Bandwidth < 0 || s.CheckpointRounds < 0 {
		return fmt.Errorf("core: negative cell RTT/Bandwidth/CheckpointRounds")
	}
	if s.OutageRound < 0 {
		return fmt.Errorf("core: cell OutageRound %d must be >= 0", s.OutageRound)
	}
	if s.OutageRound > 0 {
		if s.OutageCell < 0 || s.OutageCell >= s.Count {
			return fmt.Errorf("core: OutageCell %d outside [0, %d)", s.OutageCell, s.Count)
		}
		if s.Count < 2 {
			return fmt.Errorf("core: a cell outage needs at least one surviving cell (Count %d)", s.Count)
		}
		if s.Quorum > s.Count-1 {
			return fmt.Errorf("core: Quorum %d unreachable after the cell %d outage", s.Quorum, s.OutageCell)
		}
	}
	return nil
}

// RoundObservation is delivered to RunConfig.OnRound after each round.
type RoundObservation struct {
	Result systems.RoundResult
	Acc    AccPoint
	// Wall is the real (not simulated) time this round's simulation took —
	// the per-round sample the perf-trajectory layer aggregates.
	Wall time.Duration
	// Discarded counts async updates this version dropped at the staleness
	// cutoff (zero for synchronous rounds).
	Discarded int
	// Shares is the cross-cell share quota folded into a fabric round
	// (zero outside multi-cell runs).
	Shares int
}

// TrajectorySink receives every RoundObservation of a run, in order, for
// durable storage (internal/trajstore is the canonical implementation).
// Unlike OnRound — a best-effort callback — a sink error aborts the run:
// a trajectory that silently lost rounds is worse than no trajectory.
// Sinks compose with StreamOnly, which is how a million-round run keeps a
// lean Report and a complete, replayable history at once.
type TrajectorySink interface {
	Observe(RoundObservation) error
}

// RunConfig parameterizes a full FL training run (the Fig. 9/10 workloads).
type RunConfig struct {
	System SystemKind
	Model  model.Spec
	// Clients is the total population (the paper: 2,800 from FedScale).
	Clients int
	// ActivePerRound is the number of simultaneously active clients
	// (120 for ResNet-18, 15 for ResNet-152).
	ActivePerRound int
	// Class selects mobile (hibernating) or server (always-on) clients.
	Class flwork.ClientClass
	// TargetAccuracy stops the run when reached (the paper uses 0.70).
	TargetAccuracy float64
	// MaxRounds bounds the run regardless of accuracy.
	MaxRounds int
	// Nodes is the aggregation-service node count (paper: 5).
	Nodes int
	// MC is per-node max service capacity (Appendix E).
	MC   float64
	Seed int64
	// Workers bounds the goroutine pool the staged round loop may use for
	// its parallel stages (population synthesis, update materialization,
	// the sharded aggregation fold; see stages.go). 0 or 1 runs every
	// stage serially. The Report is byte-identical for ANY value — the
	// parallel stages are pure per-element work on fixed shard boundaries,
	// and every RNG draw stays serial — so Workers is a wall-clock knob,
	// never a semantics knob.
	Workers int
	// RetainRounds is the control-plane record retention window: after
	// round r closes, the round loop retires every record belonging to
	// rounds <= r − RetainRounds (Service.RetireRound; the async loop
	// retires by folded version), keeping the newest RetainRounds rounds'
	// records live for mid-round failover replay and the cell fabric's
	// wait-all checkpoint-restore. 0 means DefaultRetainRounds; negative
	// disables eviction entirely — the pre-eviction behaviour, whose live
	// heap grows linearly with round count on the serverless systems.
	// Eviction is bookkeeping, not schedule: the Report is byte-identical
	// for ANY value, including eviction off.
	RetainRounds int
	// FailureRate is the probability a selected client dies mid-round
	// (battery, lost connectivity). Failures are detected by keep-alive
	// heartbeats (§3) and covered by over-provisioned standbys, so rounds
	// still aggregate ActivePerRound updates.
	FailureRate float64
	// Params overrides the platform cost model (zero = Default()).
	Params costmodel.Params
	// Flags overrides LIFL's ablation switches (LIFL default: all on).
	// Only SystemLIFL honours them; NewPlatform rejects Flags on any other
	// system instead of silently dropping them.
	Flags *systems.Flags
	// Selector picks the client sampling algorithm (default SelectPerm).
	Selector SelectorKind
	// Inject, when set, runs injected single-batch rounds instead of
	// population-driven ones (the Fig. 8 microbenchmark mode); rounds are
	// numbered from 0 and MaxRounds defaults to 1.
	Inject *InjectSpec
	// Cells, when set, federates the run across Count locality-routed
	// cells with a per-round cross-cell aggregation tier (the sixth
	// deployment shape). The fabric lives above core: harness sweeps and
	// the scenario registry dispatch cell configs to internal/cell, and
	// core.Run itself rejects them rather than silently running a single
	// cluster. Only synchronous per-cell systems are federated today.
	Cells *CellSpec
	// CellPlan schedules live fabric reconfiguration — round-stamped
	// join/drain/weight-change config pushes applied atomically at round
	// starts (internal/cell.Reconfigure). Requires Cells; a plan with no
	// steps is equivalent to no plan at all (byte-identical run). An
	// invalid plan is rejected wholesale before the first round and the
	// run proceeds exactly as if no plan were configured (last-known-good
	// semantics), with the rejection recorded in the cell Detail.
	CellPlan *CellPlan
	// Async tunes the buffered-async system; only SystemAsync honours it
	// (NewPlatform rejects it on synchronous systems). For SystemAsync a
	// nil Async takes every default. Async runs reuse the round-oriented
	// knobs: ActivePerRound defaults the training concurrency, MaxRounds
	// bounds the run at MaxRounds×ActivePerRound folded updates, and the
	// Selector defaults to SelectStream (O(1) per dispatch).
	Async *AsyncSpec
	// ServerOpt post-processes each round's aggregate into the next global
	// model (default fedavg.Adopt — plain FedAvg). Stateful optimizers
	// (fedavg.FedAvgM) carry per-run state: give every run its own
	// instance — sharing one across repeated or concurrent runs
	// warm-starts/races the optimizer state.
	ServerOpt fedavg.ServerOpt
	// OnRound, when set, observes every completed round as it happens.
	OnRound func(RoundObservation)
	// Trajectory, when set, durably stores every completed round's
	// observation; a sink error aborts the run. The caller owns the sink's
	// lifecycle (Close after Run returns).
	Trajectory TrajectorySink
	// Milestones lists accuracy levels whose first crossings are exported in
	// Report.Milestones (the machine-readable time-to-accuracy trajectory).
	// Levels are visited in ascending order; unsorted input is sorted.
	// Milestone capture is simulated-time only, so it is deterministic and
	// survives StreamOnly runs.
	Milestones []float64
	// StreamOnly keeps the Report lean for very long or very large runs:
	// per-round slices (Rounds, Acc, ActiveAggs, CPUPerRound) and the
	// arrival series are not accumulated — pair with OnRound to stream
	// observations instead. Scalar outcomes are still reported.
	StreamOnly bool
	// Tracer, when set, records task spans.
	Tracer *trace.Recorder
	// Telemetry, when set, receives the run's counters, gauges, histograms
	// and span logs (see internal/obs). Off by default — a nil registry
	// keeps every instrumented site a no-op. When Telemetry is set and
	// Tracer is nil, NewPlatform wires a trace.Recorder over the registry's
	// span log so system task spans land in the same telemetry plane.
	Telemetry *obs.Registry
}

func (c RunConfig) withDefaults() RunConfig {
	if c.System == "" {
		c.System = SystemLIFL
	}
	if c.Model.Params == 0 {
		c.Model = model.ResNet18
	}
	if c.Clients == 0 && c.Inject == nil {
		// Injected runs never touch the population; leave it empty so
		// Fig. 8-style grids don't pay 2,800 client synthesses per cell.
		c.Clients = 2800
	}
	if c.ActivePerRound == 0 {
		c.ActivePerRound = 120
	}
	if c.TargetAccuracy == 0 {
		c.TargetAccuracy = 0.70
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 500
		if c.Inject != nil {
			c.MaxRounds = 1
		}
	}
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.MC == 0 {
		c.MC = 20
	}
	if c.Params.CoresPerNode == 0 {
		c.Params = costmodel.Default()
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.RetainRounds == 0 {
		c.RetainRounds = DefaultRetainRounds
	}
	if c.System == SystemAsync {
		a := AsyncSpec{}
		if c.Async != nil {
			a = *c.Async
		}
		if a.BufferK == 0 {
			a.BufferK = 10
		}
		if a.Concurrency == 0 {
			a.Concurrency = c.ActivePerRound
		}
		c.Async = &a
		// Async dispatches clients one at a time as slots free; only the
		// streaming selector is O(1) per draw, so it is the async default.
		if c.Selector == "" {
			c.Selector = SelectStream
		}
	}
	if c.Selector == "" {
		c.Selector = SelectPerm
	}
	if c.ServerOpt == nil {
		c.ServerOpt = fedavg.Adopt{}
	}
	if c.Inject != nil {
		i := *c.Inject
		if i.Window == 0 {
			i.Window = sim.Duration(i.Updates) * 200 * sim.Millisecond
		}
		if i.Weight == 0 {
			i.Weight = 1
		}
		c.Inject = &i
	}
	return c
}

// Defaulted returns the config with core's defaulting rules applied — the
// exact values NewPlatform would run with. The cell fabric (internal/cell)
// uses it to resolve population and round knobs *before* sharding them into
// per-cell configs, so fabric math and platform behaviour can never drift.
func (c RunConfig) Defaulted() RunConfig { return c.withDefaults() }

// AccPoint is one point of the accuracy trajectory.
type AccPoint struct {
	Round    int
	Time     sim.Duration
	CPUTime  sim.Duration
	Accuracy float64
}

// MilestoneHit records the first round at which the accuracy trajectory
// crossed one requested milestone level.
type MilestoneHit struct {
	// Target is the requested level (At.Accuracy is the accuracy actually
	// observed at the crossing round, >= Target).
	Target float64
	At     AccPoint
}

// Report is the outcome of a training run.
type Report struct {
	System SystemKind
	Model  model.Spec
	Rounds []systems.RoundResult
	Acc    []AccPoint
	// TimeToTarget and CPUToTarget are wall-clock and cumulative CPU cost
	// at the round where accuracy first crossed the target (zero if never).
	TimeToTarget sim.Duration
	CPUToTarget  sim.Duration
	Reached      bool
	// ArrivalsPerMinute is the Fig. 10(a,d) series.
	ArrivalsPerMinute []float64
	// ActiveAggs samples instances per round (Fig. 10(b,e)).
	ActiveAggs []int
	// CPUPerRound is CPU seconds per round (Fig. 10(c,f)).
	CPUPerRound []float64
	// FinalGlobal is the trained model.
	FinalGlobal *tensor.Tensor
	// Milestones holds the first crossing of each RunConfig.Milestones
	// level that was reached, in ascending target order (simulated time —
	// deterministic; survives StreamOnly).
	Milestones []MilestoneHit
	// RoundWallTotal and RoundWallMax are real wall-clock measurements of
	// the simulation loop itself (how long this process took to simulate
	// the rounds, not simulated time) — the quantities liflbench tracks.
	RoundWallTotal time.Duration
	RoundWallMax   time.Duration
	// The scalar outcomes below survive StreamOnly runs, where the
	// per-round slices above are left empty.
	// RoundsRun counts completed rounds.
	RoundsRun int
	// Elapsed is the simulated wall clock at the end of the run.
	Elapsed sim.Duration
	// CPUTotal is the system's cumulative CPU cost at the end of the run.
	CPUTotal sim.Duration
	// FailuresDetected counts clients the heartbeat monitor declared dead.
	FailuresDetected int
	// MeanStaleness is the buffered-async mean version lag of folded
	// updates (always zero for synchronous runs, where every update is
	// trained against the round's own global model). For async runs,
	// RoundsRun counts versions and each Acc point's Round is a version.
	MeanStaleness float64
	// UpdatesDiscarded counts async updates dropped by the staleness
	// cutoff (zero for synchronous runs).
	UpdatesDiscarded int
}

// Platform couples an engine, a system and a population.
type Platform struct {
	Cfg RunConfig
	Eng *sim.Engine
	// Sys is the synchronous system under test; nil for SystemAsync runs,
	// which drive Asys through the event-driven loop in async.go instead.
	Sys   systems.Service
	Asys  systems.AsyncService
	Pop   *flwork.Population
	Curve flwork.Curve

	// Beats tracks client keep-alives; FailuresDetected counts clients the
	// monitor declared dead across the run.
	Beats            *coordinator.Heartbeats
	FailuresDetected int

	sel      roundSelector
	arrivals arrivalMeter
	// wallBase anchors opt-in wall-clock stage spans: span offsets are
	// nanoseconds since platform construction.
	wallBase time.Time
	// arena backs the staged round loop's parallel update
	// materialization — one reusable tensor per aggregation slot, recycled
	// every round (see stages.go).
	arena []*tensor.Tensor
}

// NewPlatform assembles everything for a run.
func NewPlatform(cfg RunConfig) (*Platform, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: Workers must be >= 1 (got %d)", cfg.Workers)
	}
	eng := sim.NewEngine()
	// With a telemetry registry but no explicit tracer, record system task
	// spans straight into the registry's span log (root registries only;
	// Sub views return a nil log and stay tracer-less).
	if cfg.Telemetry != nil && cfg.Tracer == nil {
		if log := cfg.Telemetry.Spans(); log != nil {
			cfg.Tracer = &trace.Recorder{Log: log}
		}
	}
	scfg := systems.Config{
		Nodes:     cfg.Nodes,
		Model:     cfg.Model,
		Params:    cfg.Params,
		Seed:      cfg.Seed,
		MC:        cfg.MC,
		Workers:   cfg.Workers,
		ServerOpt: cfg.ServerOpt,
		Tracer:    cfg.Tracer,
		Obs:       cfg.Telemetry,
	}
	if cfg.Cells != nil {
		// A cell config reaching the single-cluster assembly would run one
		// cluster with a straight face; the fabric (internal/cell) strips
		// Cells from the per-cell configs it builds, so anything arriving
		// here took a wrong turn.
		return nil, fmt.Errorf("core: Cells is a multi-cell fabric knob; run it through internal/cell (harness sweeps dispatch there automatically)")
	}
	if cfg.CellPlan != nil {
		// Without a Cells spec there is no fabric to reconfigure; dropping
		// the plan silently would run a static cluster under an operator
		// who believes cells are joining and draining.
		return nil, fmt.Errorf("core: CellPlan requires a Cells spec (the plan reconfigures the multi-cell fabric)")
	}
	if cfg.Async != nil && cfg.System != SystemAsync {
		// Silently dropping async knobs would turn an async sweep cell
		// into a synchronous run with a straight face.
		return nil, fmt.Errorf("core: %s does not take Async knobs (only %s does)", cfg.System, SystemAsync)
	}
	var sys systems.Service
	var asys systems.AsyncService
	switch cfg.System {
	case SystemAsync:
		if cfg.Flags != nil {
			return nil, fmt.Errorf("core: %s does not take orchestration Flags (only %s does)", cfg.System, SystemLIFL)
		}
		if cfg.Inject != nil {
			return nil, fmt.Errorf("core: %s has no rounds to inject into (use Loads with a synchronous system)", cfg.System)
		}
		if err := cfg.Async.validate(); err != nil {
			return nil, err
		}
		scfg.Async = systems.AsyncParams{
			BufferK:           cfg.Async.BufferK,
			StalenessHalfLife: cfg.Async.StalenessHalfLife,
			MaxStaleness:      cfg.Async.MaxStaleness,
			MixRate:           cfg.Async.MixRate,
		}
		asys = systems.NewAsync(eng, scfg)
	case SystemLIFL:
		scfg.Flags = systems.AllFlags()
		if cfg.Flags != nil {
			scfg.Flags = *cfg.Flags
		}
		sys = systems.NewLIFL(eng, scfg)
	case SystemSLH, SystemSF, SystemSL:
		if cfg.Flags != nil {
			// The ablation switches only exist on the LIFL assembly;
			// dropping them silently would turn a caller's ablation sweep
			// into identical baseline runs.
			return nil, fmt.Errorf("core: %s does not take orchestration Flags (only %s does)", cfg.System, SystemLIFL)
		}
		switch cfg.System {
		case SystemSLH:
			sys = systems.NewLIFL(eng, scfg) // zero Flags = SL-H
		case SystemSF:
			// Static fleet sized for peak concurrency with leaf fan-in 2.
			scfg.SFLeaves = (cfg.ActivePerRound + 1) / 2
			sys = systems.NewSF(eng, scfg)
		case SystemSL:
			sys = systems.NewSL(eng, scfg)
		}
	default:
		return nil, fmt.Errorf("core: unknown system %q", cfg.System)
	}
	sel, err := newSelector(cfg.Selector)
	if err != nil {
		return nil, err
	}
	pop := flwork.NewPopulation(eng, flwork.Config{
		NumClients: cfg.Clients,
		Model:      cfg.Model,
		Class:      cfg.Class,
		Seed:       cfg.Seed + 1,
		Workers:    cfg.Workers,
	})
	return &Platform{
		Cfg:      cfg,
		Eng:      eng,
		Sys:      sys,
		Asys:     asys,
		Pop:      pop,
		Curve:    flwork.CurveFor(cfg.Model),
		Beats:    coordinator.NewHeartbeats(eng, cfg.Params.HeartbeatTimeout),
		sel:      sel,
		wallBase: time.Now(),
	}, nil
}

// Run executes rounds until the accuracy target or MaxRounds. Async runs
// have no rounds; they divert to the event-driven loop in async.go.
func (p *Platform) Run() (*Report, error) {
	if p.Cfg.System == SystemAsync {
		return p.runAsync()
	}
	cfg := p.Cfg
	rng := sim.NewRNG(cfg.Seed + 2)
	rep := &Report{System: cfg.System, Model: cfg.Model}
	// Injected (Fig. 8-style) runs number rounds from 0, matching the
	// microbenchmark's original single-round harness.
	first, last := 1, cfg.MaxRounds
	if cfg.Inject != nil {
		first, last = 0, cfg.MaxRounds-1
	}
	// Milestone levels are consumed in ascending order as the (monotone)
	// accuracy curve crosses them.
	milestones := append([]float64(nil), cfg.Milestones...)
	sort.Float64s(milestones)
	nextMilestone := 0
	for r := first; r <= last; r++ {
		result, roundWall, err := p.StepRound(rng, r, 0)
		if err != nil {
			return nil, err
		}
		rep.RoundWallTotal += roundWall
		if roundWall > rep.RoundWallMax {
			rep.RoundWallMax = roundWall
		}
		rep.RoundsRun++
		acc := p.Curve.At(r)
		point := AccPoint{
			Round:    r,
			Time:     p.Eng.Now(),
			CPUTime:  p.Sys.CPUTime(),
			Accuracy: acc,
		}
		if !cfg.StreamOnly {
			rep.Rounds = append(rep.Rounds, result)
			rep.ActiveAggs = append(rep.ActiveAggs, p.Sys.ActiveAggregators())
			rep.CPUPerRound = append(rep.CPUPerRound, result.CPUTime.Seconds())
			rep.Acc = append(rep.Acc, point)
		}
		for nextMilestone < len(milestones) && acc >= milestones[nextMilestone] {
			rep.Milestones = append(rep.Milestones, MilestoneHit{Target: milestones[nextMilestone], At: point})
			nextMilestone++
		}
		cfg.Telemetry.Gauge("core/accuracy", obs.Det).Set(acc)
		if cfg.OnRound != nil || cfg.Trajectory != nil {
			ob := RoundObservation{Result: result, Acc: point, Wall: roundWall}
			if cfg.OnRound != nil {
				cfg.OnRound(ob)
			}
			if cfg.Trajectory != nil {
				if err := cfg.Trajectory.Observe(ob); err != nil {
					return nil, fmt.Errorf("core: trajectory sink at round %d: %w", r, err)
				}
			}
		}
		if !rep.Reached && acc >= cfg.TargetAccuracy {
			rep.Reached = true
			rep.TimeToTarget = p.Eng.Now()
			rep.CPUToTarget = p.Sys.CPUTime()
			break
		}
	}
	p.Sys.Finalize()
	rep.FinalGlobal = p.Sys.Global()
	if !cfg.StreamOnly {
		rep.ArrivalsPerMinute = p.arrivals.series()
	}
	rep.Elapsed = p.Eng.Now()
	rep.CPUTotal = p.Sys.CPUTime()
	rep.FailuresDetected = p.FailuresDetected
	return rep, nil
}

// StepRound runs one synchronous round end to end — client selection, the
// system's round, and the event stepping until the result fires — and
// returns the result plus the real wall clock the simulation took. It is
// the per-round primitive Platform.Run loops over and the cross-cell
// fabric (internal/cell) drives directly, interleaving its cross-cell
// aggregation tier between rounds. goal overrides cfg.ActivePerRound when
// > 0 (the fabric's per-cell share, which grows when a dead cell's clients
// re-route); pass 0 for the configured value.
func (p *Platform) StepRound(rng *sim.RNG, round, goal int) (systems.RoundResult, time.Duration, error) {
	roundStart := time.Now()
	simStart := p.Eng.Now()
	jobs := p.roundJobs(rng, round, goal)
	playStart := time.Now()
	var result *systems.RoundResult
	p.Sys.RunRound(round, jobs, func(res systems.RoundResult) { result = &res })
	// Advance only until the round completes: pending keep-alive expiry
	// checks must not stall the next round's start (they fire naturally
	// as later rounds run).
	for result == nil && p.Eng.Step() {
	}
	if result == nil {
		return systems.RoundResult{}, 0, errors.New("core: round did not complete")
	}
	p.stageWall("playout", playStart, round)
	closeStart := time.Now()
	// Round closed, global installed: retire records that fell out of the
	// retention window. Sitting here (not in Run's loop) covers the cell
	// fabric too, which drives StepRound directly.
	if rr := p.Cfg.RetainRounds; rr > 0 {
		p.Sys.RetireRound(round - rr)
	}
	p.stageWall("close", closeStart, round)
	if reg := p.Cfg.Telemetry; reg != nil {
		reg.Counter("core/rounds", obs.Det).Inc()
		reg.Counter("core/updates", obs.Det).Add(uint64(result.Updates))
		reg.Histogram("core/act_seconds", obs.Det, obs.ExpBuckets(0.25, 12)).Observe(result.ACT.Seconds())
		// The round envelope: every system span of round r nests inside it
		// (the Perfetto schema invariant). Appended from this serial loop —
		// the span log is single-writer by contract.
		reg.Spans().Add(obs.Span{Actor: "round", Kind: obs.KindRound, Start: simStart, End: p.Eng.Now(), Round: round})
	}
	return *result, time.Since(roundStart), nil
}

// stageWall accumulates one stage's wall clock into its Volatile counter
// and, under CaptureWall, appends a wall-clock stage span (offsets are
// nanoseconds since platform construction). No-ops without telemetry.
func (p *Platform) stageWall(stage string, start time.Time, round int) {
	reg := p.Cfg.Telemetry
	if reg == nil {
		return
	}
	d := time.Since(start)
	reg.Counter("stage/"+stage+"/wall_ns", obs.Volatile).Add(uint64(d))
	if wl := reg.WallSpans(); wl != nil {
		end := time.Since(p.wallBase)
		wl.Add(obs.Span{Actor: "stage", Kind: stage, Start: sim.Duration(end - d), End: sim.Duration(end), Round: round})
	}
}

// InstallGlobal replaces the system's global model between rounds — the
// cross-cell fabric's model-install hook: after the per-round cross-cell
// fold, every cell adopts the federated global before its next round.
func (p *Platform) InstallGlobal(t *tensor.Tensor) { p.Sys.SetGlobal(t) }

// ArrivalSeries renders the Fig. 10 arrivals-per-minute series collected so
// far (the fabric merges the per-cell series into its global report).
func (p *Platform) ArrivalSeries() []float64 { return p.arrivals.series() }

// roundJobs runs the first two stages of the staged round loop (see
// stages.go): stage one selects the round's active clients and prices
// their jobs serially (every RNG draw lives here), recording scheduled
// arrival minutes for the Fig. 10 arrival series; stage two materializes
// the update tensors across the worker pool. The selector over-provisions;
// clients that fail (per FailureRate) are caught by the heartbeat monitor
// and replaced by standbys, so the aggregation goal is still met (§3
// resilience).
func (p *Platform) roundJobs(rng *sim.RNG, round, goal int) []systems.ClientJob {
	cfg := p.Cfg
	if cfg.Inject != nil {
		return p.injectedJobs()
	}
	if goal <= 0 {
		goal = cfg.ActivePerRound
	}
	// Stage one (serial): selection, failure detection, delay pricing.
	selStart := time.Now()
	idx := p.sel.selectRound(p, rng, goal)
	jobs := make([]systems.ClientJob, 0, len(idx))
	base := p.Eng.Now()
	for _, i := range idx {
		c := p.Pop.Client(i)
		// Hibernation gates availability *between* rounds (the selector only
		// picks active clients); within a round the delay is training time.
		delay := p.Pop.TrainTime(c)
		if !cfg.StreamOnly {
			p.arrivals.note(int((base + delay) / sim.Minute))
		}
		jobs = append(jobs, systems.ClientJob{
			ID:     p.Pop.ClientID(i),
			Delay:  delay,
			Weight: float64(c.Samples),
		})
	}
	p.stageWall("select", selStart, round)
	// Stage two (parallel): update materialization.
	matStart := time.Now()
	p.attachUpdates(jobs, idx, round)
	p.stageWall("materialize", matStart, round)
	return jobs
}

// injectedJobs builds the Fig. 8 batch: updates that land directly in the
// in-place queues (§6.1: "we assume the estimated Q is equal to the actual
// queue length"), with arrivals spread over the window like real trainer
// uploads (§5.4) — the spread is what gives eager aggregation its edge.
func (p *Platform) injectedJobs() []systems.ClientJob {
	spec := *p.Cfg.Inject
	jobs := make([]systems.ClientJob, spec.Updates)
	for k := range jobs {
		var d sim.Duration
		if spec.Updates > 1 {
			d = spec.Window * sim.Duration(k) / sim.Duration(spec.Updates)
		}
		jobs[k] = systems.ClientJob{
			ID:     "inj",
			Delay:  d,
			Weight: spec.Weight,
			MakeUpdate: func(g *tensor.Tensor) *tensor.Tensor {
				u := g.Clone()
				for i := range u.Data {
					u.Data[i] += 0.125
				}
				return u
			},
			SkipBroadcast: true,
			PreQueued:     true,
		}
	}
	return jobs
}

// arrivalMeter counts scheduled upload arrivals per simulated minute as a
// growable slice — the hot round path pays one bounds check and an
// increment, never a map probe.
type arrivalMeter struct {
	counts []int
}

func (m *arrivalMeter) note(minute int) {
	for len(m.counts) <= minute {
		m.counts = append(m.counts, 0)
	}
	m.counts[minute]++
}

// series renders the Fig. 10 arrivals-per-minute vector. An empty meter
// yields a single zero sample, matching the legacy map-based meter.
func (m *arrivalMeter) series() []float64 {
	if len(m.counts) == 0 {
		return []float64{0}
	}
	out := make([]float64, len(m.counts))
	for i, c := range m.counts {
		out[i] = float64(c)
	}
	return out
}

// Run is the one-call entry point: assemble a platform and train.
func Run(cfg RunConfig) (*Report, error) {
	p, err := NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	return p.Run()
}
