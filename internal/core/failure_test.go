package core

import (
	"testing"

	"repro/internal/flwork"
	"repro/internal/model"
)

// The §3 resilience path: failed clients are detected via heartbeats and
// their slots covered by over-provisioned standbys.

func failureCfg(kind SelectorKind) RunConfig {
	return RunConfig{
		Model:          model.ResNet18,
		Clients:        600,
		ActivePerRound: 20,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.99,
		MaxRounds:      8,
		FailureRate:    0.15,
		Selector:       kind,
		Seed:           33,
	}
}

// Standby replacement: every round still aggregates the full
// ActivePerRound updates even though ~15% of contacted clients die, and
// the monitor's failure count is plausible for the rate.
func TestFailuresCoveredByStandbys(t *testing.T) {
	for _, kind := range []SelectorKind{SelectPerm, SelectStream} {
		t.Run(string(kind), func(t *testing.T) {
			p, err := NewPlatform(failureCfg(kind))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.RoundsRun != 8 {
				t.Fatalf("rounds = %d", rep.RoundsRun)
			}
			for _, r := range rep.Rounds {
				if r.Updates != 20 {
					t.Fatalf("round %d aggregated %d updates despite standbys", r.Round, r.Updates)
				}
			}
			// 8 rounds × 20 live selections at 15% death: ~28 expected
			// failures; allow a wide deterministic-seed band.
			if rep.FailuresDetected < 5 || rep.FailuresDetected > 120 {
				t.Fatalf("FailuresDetected = %d, implausible for rate 0.15", rep.FailuresDetected)
			}
			if rep.FailuresDetected != p.FailuresDetected {
				t.Fatal("report and platform disagree on failures")
			}
		})
	}
}

// FailuresDetected accounting: the selector beats every contacted client
// and forgets the live ones, so after a single round the outstanding
// heartbeats are exactly the clients that died — no client can have been
// re-contacted yet.
func TestFailureAccountingMatchesHeartbeats(t *testing.T) {
	for _, kind := range []SelectorKind{SelectPerm, SelectStream} {
		cfg := failureCfg(kind)
		cfg.MaxRounds = 1
		p, err := NewPlatform(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		if pending := p.Beats.Pending(); pending != p.FailuresDetected {
			t.Fatalf("%s: %d heartbeats pending, %d failures detected", kind, pending, p.FailuresDetected)
		}
		if p.FailuresDetected == 0 {
			t.Fatalf("%s: no failures at rate 0.15 over a full round", kind)
		}
	}
}

// Determinism across repeats: the failure path draws from the same seeded
// RNG stream as selection, so two identical runs agree on everything.
func TestFailureRunsDeterministic(t *testing.T) {
	for _, kind := range []SelectorKind{SelectPerm, SelectStream} {
		a, err := Run(failureCfg(kind))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(failureCfg(kind))
		if err != nil {
			t.Fatal(err)
		}
		if a.FailuresDetected != b.FailuresDetected {
			t.Fatalf("%s: failures %d vs %d", kind, a.FailuresDetected, b.FailuresDetected)
		}
		if a.Elapsed != b.Elapsed || a.CPUTotal != b.CPUTotal {
			t.Fatalf("%s: timings diverged", kind)
		}
		d, err := a.FinalGlobal.MaxAbsDiff(b.FinalGlobal)
		if err != nil || d != 0 {
			t.Fatalf("%s: models differ: %v %v", kind, d, err)
		}
	}
}

// With no failures every contacted client delivers and is forgotten: the
// heartbeat table drains to zero and nothing is ever flagged.
func TestNoFailuresLeaveNoPendingBeats(t *testing.T) {
	for _, kind := range []SelectorKind{SelectPerm, SelectStream} {
		cfg := failureCfg(kind)
		cfg.FailureRate = 0
		p, err := NewPlatform(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.FailuresDetected != 0 || p.Beats.Pending() != 0 {
			t.Fatalf("%s: failures=%d pending=%d with rate 0", kind, rep.FailuresDetected, p.Beats.Pending())
		}
	}
}
