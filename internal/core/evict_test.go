package core

import (
	"reflect"
	"testing"
)

// The retirement determinism contract: RetainRounds is a memory knob, not
// a schedule knob. For a fixed seed, every retention window — the default,
// a wide one, and retirement disabled outright — must produce a
// byte-identical Report, because eviction only drops closed rounds'
// bookkeeping and never touches the event queue, the CPU accounting, or
// the model bits.
func TestRetainRoundsByteIdenticalReports(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
	}{
		{"lifl", smallCfg(SystemLIFL)},
		{"slh", smallCfg(SystemSLH)},
		{"sf", smallCfg(SystemSF)},
		{"sl", smallCfg(SystemSL)},
		{"async", smallAsync()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.cfg
			ref.RetainRounds = -1 // retirement disabled: every record retained
			want, err := Run(ref)
			if err != nil {
				t.Fatal(err)
			}
			stripReportWall(want)
			for _, rr := range []int{DefaultRetainRounds, 8} {
				cfg := tc.cfg
				cfg.RetainRounds = rr
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("retain=%d: %v", rr, err)
				}
				stripReportWall(got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("retain=%d diverged from retain=-1:\noff: rounds=%d elapsed=%v cpu=%v\non:  rounds=%d elapsed=%v cpu=%v",
						rr, want.RoundsRun, want.Elapsed, want.CPUTotal,
						got.RoundsRun, got.Elapsed, got.CPUTotal)
				}
			}
		})
	}
}

// RetainRounds zero means the default window — the knob must round-trip
// through withDefaults without disabling retirement.
func TestRetainRoundsDefaulting(t *testing.T) {
	cfg := smallCfg(SystemLIFL)
	d := cfg.Defaulted()
	if d.RetainRounds != DefaultRetainRounds {
		t.Fatalf("zero RetainRounds defaulted to %d, want %d", d.RetainRounds, DefaultRetainRounds)
	}
	cfg.RetainRounds = -3
	if d := cfg.Defaulted(); d.RetainRounds != -3 {
		t.Fatalf("negative RetainRounds rewritten to %d", d.RetainRounds)
	}
}
