package core

import (
	"fmt"
	"sort"
)

// CellPlanOp is one reconfiguration verb of an elastic-fabric plan.
type CellPlanOp string

// The three reconfiguration verbs. A plan's steps are round-stamped; every
// step sharing a round forms one versioned config push that the fabric
// validates, dry-run diffs, snapshots and then applies atomically at that
// global round's start (internal/cell.Reconfigure).
const (
	// CellJoin adds a fresh cell: Weight is its routing weight and Clients
	// its resident population (new arrivals homed on it — existing clients
	// never re-home on a join; placement.ElasticRouter pins that contract).
	CellJoin CellPlanOp = "join"
	// CellDrain retires cell Cell with drain-then-delete semantics: the
	// cell stops accepting new rounds at the step round's start (the round
	// barrier means its in-flight aggregation already folded), its
	// accounting and last checkpoint are banked, and its clients are
	// re-apportioned across the surviving cells' routing weights by the
	// fabric's largest-remainder path.
	CellDrain CellPlanOp = "drain"
	// CellWeight sets cell Cell's routing weight to Weight; Clients, when
	// > 0, additionally models a flash-crowd burst of that many new
	// arrivals homed on the cell (selection quota over its existing
	// synthetic residents, like an outage re-route).
	CellWeight CellPlanOp = "weight"
)

// CellPlanStep is one round-stamped reconfiguration step.
type CellPlanStep struct {
	// Round is the global round at whose start the step applies (>= 1).
	Round int
	Op    CellPlanOp
	// Cell indexes the target cell for drain/weight steps. Joins ignore it:
	// a joined cell is assigned the next free index (cell ids are never
	// reused).
	Cell int
	// Weight is the routing weight for join/weight steps.
	Weight float64
	// Clients is the joined cell's resident population (join) or the
	// flash-crowd arrival count (weight).
	Clients int
}

// CellPlan schedules live reconfiguration of a multi-cell fabric
// (RunConfig.CellPlan). Steps are grouped by round into versioned config
// pushes and applied in canonical order — joins, then weight changes, then
// drains — so any permutation of an equivalent schedule produces a
// byte-identical run. The whole plan is validated statically before the
// run starts; an invalid plan is rejected wholesale (last-known-good
// semantics: the fabric runs exactly as if no plan were configured, and
// the rejection reason is recorded in the cell Detail).
type CellPlan struct {
	Steps []CellPlanStep
}

// opOrder is the canonical within-push application order.
func opOrder(op CellPlanOp) int {
	switch op {
	case CellJoin:
		return 0
	case CellWeight:
		return 1
	case CellDrain:
		return 2
	}
	return 3
}

// Normalized returns the plan's steps in canonical order: by round, then
// joins → weight changes → drains, then by target cell. Two plans with the
// same normalized steps are the same schedule — the fabric runs them
// byte-identically. A nil plan or one with no steps normalizes to nil (a
// no-op plan is no plan at all).
func (p *CellPlan) Normalized() []CellPlanStep {
	if p == nil || len(p.Steps) == 0 {
		return nil
	}
	steps := append([]CellPlanStep(nil), p.Steps...)
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].Round != steps[j].Round {
			return steps[i].Round < steps[j].Round
		}
		if a, b := opOrder(steps[i].Op), opOrder(steps[j].Op); a != b {
			return a < b
		}
		return steps[i].Cell < steps[j].Cell
	})
	return steps
}

// Validate checks each step's well-formedness in isolation — op known,
// round >= 1, weights/populations in range. Schedule-level feasibility
// (cell references, quorum floors, outage interplay) needs the fabric's
// state and lives in internal/cell, which folds this check into its
// wholesale plan validation.
func (p *CellPlan) Validate() error {
	if p == nil {
		return nil
	}
	for i, s := range p.Steps {
		switch s.Op {
		case CellJoin:
			if s.Weight <= 0 {
				return fmt.Errorf("core: plan step %d: join needs Weight > 0 (got %v)", i, s.Weight)
			}
			if s.Clients < 0 {
				return fmt.Errorf("core: plan step %d: join Clients %d must be >= 0", i, s.Clients)
			}
		case CellDrain:
			if s.Cell < 0 {
				return fmt.Errorf("core: plan step %d: drain Cell %d must be >= 0", i, s.Cell)
			}
		case CellWeight:
			if s.Cell < 0 {
				return fmt.Errorf("core: plan step %d: weight Cell %d must be >= 0", i, s.Cell)
			}
			if s.Weight <= 0 {
				return fmt.Errorf("core: plan step %d: weight needs Weight > 0 (got %v)", i, s.Weight)
			}
			if s.Clients < 0 {
				return fmt.Errorf("core: plan step %d: weight Clients %d must be >= 0", i, s.Clients)
			}
		default:
			return fmt.Errorf("core: plan step %d: unknown op %q", i, s.Op)
		}
		if s.Round < 1 {
			return fmt.Errorf("core: plan step %d: Round %d must be >= 1", i, s.Round)
		}
	}
	return nil
}
