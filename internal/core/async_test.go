package core

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/systems"
)

// smallAsync is a fast end-to-end buffered-async workload.
func smallAsync() RunConfig {
	return RunConfig{
		System:         SystemAsync,
		Model:          model.ResNet18,
		Clients:        200,
		ActivePerRound: 16,
		TargetAccuracy: 0.50,
		MaxRounds:      80,
		Nodes:          2,
		MC:             60,
		Seed:           3,
		Async:          &AsyncSpec{BufferK: 4, StalenessHalfLife: 2},
		Milestones:     []float64{0.30, 0.50},
	}
}

func TestAsyncRunReachesTarget(t *testing.T) {
	rep, err := Run(smallAsync())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reached {
		t.Fatalf("async run never reached 0.50 in %d versions", rep.RoundsRun)
	}
	if rep.TimeToTarget <= 0 || rep.CPUToTarget <= 0 {
		t.Fatalf("tta = %v, cta = %v", rep.TimeToTarget, rep.CPUToTarget)
	}
	// Versions advance per BufferK folds: reaching eff-round ~28 of 16
	// updates with K=4 needs >> 28 versions.
	if rep.RoundsRun < 50 {
		t.Fatalf("only %d versions", rep.RoundsRun)
	}
	if len(rep.Acc) != rep.RoundsRun {
		t.Fatalf("Acc points %d vs versions %d", len(rep.Acc), rep.RoundsRun)
	}
	// Continuous pipelining must produce some staleness with K < concurrency.
	if rep.MeanStaleness <= 0 {
		t.Fatal("no staleness observed in a pipelined async run")
	}
	if len(rep.Milestones) != 2 || rep.Milestones[0].Target != 0.30 || rep.Milestones[1].Target != 0.50 {
		t.Fatalf("milestones = %+v", rep.Milestones)
	}
	if rep.Milestones[0].At.Time > rep.Milestones[1].At.Time {
		t.Fatal("milestone times not monotone")
	}
	if rep.FinalGlobal == nil || len(rep.Rounds) != 0 {
		t.Fatalf("async report shape: global=%v rounds=%d", rep.FinalGlobal != nil, len(rep.Rounds))
	}
}

// Async runs must be deterministic per seed: the engine totally orders
// events and every draw is seeded, so two runs agree bitwise.
func TestAsyncRunDeterministic(t *testing.T) {
	a, err := Run(smallAsync())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallAsync())
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.CPUTotal != b.CPUTotal || a.RoundsRun != b.RoundsRun ||
		a.TimeToTarget != b.TimeToTarget || a.MeanStaleness != b.MeanStaleness {
		t.Fatalf("async runs diverged: %+v vs %+v", a, b)
	}
	d, err := a.FinalGlobal.MaxAbsDiff(b.FinalGlobal)
	if err != nil || d != 0 {
		t.Fatalf("final models differ by %v (%v)", d, err)
	}
}

func TestAsyncStreamOnlyKeepsReportLean(t *testing.T) {
	cfg := smallAsync()
	cfg.Selector = SelectStream
	cfg.StreamOnly = true
	versions := 0
	cfg.OnRound = func(o RoundObservation) {
		versions++
		if o.Result.Updates != 4 {
			t.Fatalf("version folded %d updates, want BufferK=4", o.Result.Updates)
		}
		// ACT keeps its contract: a positive span from first fold to the
		// model install, strictly inside [FirstArrival, End].
		if o.Result.ACT <= 0 || o.Result.FirstArrival+o.Result.ACT > o.Result.End {
			t.Fatalf("version %d ACT out of contract: %+v", o.Result.Round, o.Result)
		}
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Acc) != 0 || len(rep.ActiveAggs) != 0 || len(rep.ArrivalsPerMinute) != 0 {
		t.Fatal("StreamOnly report accumulated per-version slices")
	}
	if versions != rep.RoundsRun || !rep.Reached {
		t.Fatalf("streamed %d versions, report has %d (reached=%v)", versions, rep.RoundsRun, rep.Reached)
	}
	if len(rep.Milestones) == 0 {
		t.Fatal("milestones must survive StreamOnly")
	}
}

func TestAsyncFailuresCoveredBySelector(t *testing.T) {
	cfg := smallAsync()
	cfg.FailureRate = 0.2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reached || rep.FailuresDetected == 0 {
		t.Fatalf("reached=%v failures=%d", rep.Reached, rep.FailuresDetected)
	}
}

func TestAsyncKnobValidation(t *testing.T) {
	cfg := smallAsync()
	cfg.System = SystemLIFL
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Async") {
		t.Fatalf("sync system accepted Async knobs: %v", err)
	}
	cfg = smallAsync()
	f := systems.AllFlags()
	cfg.Flags = &f
	if _, err := Run(cfg); err == nil {
		t.Fatal("async system accepted orchestration Flags")
	}
	cfg = smallAsync()
	cfg.Inject = &InjectSpec{Updates: 10}
	if _, err := Run(cfg); err == nil {
		t.Fatal("async system accepted injected rounds")
	}
	cfg = smallAsync()
	cfg.Async = &AsyncSpec{MixRate: 1.5}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "MixRate") {
		t.Fatalf("out-of-range MixRate accepted: %v", err)
	}
	cfg = smallAsync()
	cfg.Async = &AsyncSpec{BufferK: -1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative BufferK accepted")
	}
	cfg = smallAsync()
	cfg.Async = nil // defaults apply
	rep, err := Run(cfg)
	if err != nil || rep.RoundsRun == 0 {
		t.Fatalf("default async spec failed: %v", err)
	}
}

// The bound: with an unreachable target, the run stops at
// MaxRounds×ActivePerRound folded updates.
func TestAsyncStopsAtFoldedBound(t *testing.T) {
	cfg := smallAsync()
	cfg.TargetAccuracy = 0.99
	cfg.MaxRounds = 10 // bound: 160 folds = 40 versions of K=4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reached {
		t.Fatal("unreachable target reported reached")
	}
	if rep.RoundsRun != 40 {
		t.Fatalf("stopped after %d versions, want 40", rep.RoundsRun)
	}
}
