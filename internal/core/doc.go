// Package core is the top of the LIFL library: it assembles a complete FL
// platform (system under test + client population + learning curve) and
// runs synchronous FedAvg training to a target accuracy, collecting every
// metric the paper's evaluation reports — time-to-accuracy, cost-to-
// accuracy, per-round ACT and CPU, arrival-rate and active-aggregator time
// series. The examples and the experiment harness are thin layers over
// this package; the root package lifl re-exports it for downstream users.
//
// Layer (DESIGN.md): the top of the library. scenario expands into this
// package's RunConfigs; below it sit the five systems and the shared
// component/population/curve models. The synchronous round loop lives in
// core.go (its per-round primitive, Platform.StepRound, is also what the
// multi-cell fabric in internal/cell drives), the buffered-async progress
// loop in async.go. RunConfig.Cells (CellSpec) is validated here but
// executed by internal/cell, one layer up.
//
// The synchronous round is decomposed into four explicit stages (see
// stages.go): serial select & price, parallel update materialization into
// a per-platform tensor arena, serial event play-out, and a sharded
// deterministic fold. RunConfig.Workers bounds the pool (internal/par);
// it is a wall-clock knob only — the Report is byte-identical for any
// worker count (TestWorkersByteIdenticalReports).
//
// Every StepRound ends by retiring closed rounds' control-plane records:
// Service.RetireRound(round − RunConfig.RetainRounds) evicts them once
// they leave the retention window (the async loop retires per version
// bump). Like Workers, RetainRounds is not a schedule knob — the Report
// is byte-identical for any window, including retirement disabled
// (TestRetainRoundsByteIdenticalReports) — it is what keeps million-round
// runs' memory flat in every system, not just the static-hierarchy SF
// (TestFlatRSSLongRun; docs/MEMORY.md).
//
// Runs are observable through RunConfig.Telemetry (internal/obs): the
// round loop publishes round/update counters, accuracy gauges, ACT
// histograms and per-round envelope spans; the four stages additionally
// record wall-clock profile counters and spans behind the registry's
// CaptureWall opt-in. Telemetry is off by default (nil registry = no-op
// sites), and the default snapshot is byte-identical for a fixed seed —
// the same contract Workers and RetainRounds carry.
package core
