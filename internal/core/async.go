// The buffered-async progress loop (Fig. 11 / Appendix A): the event-driven
// counterpart of Platform.Run's synchronous round loop. There are no round
// barriers — Concurrency training slots are kept full at all times, each
// freed slot immediately redrawing a client through the streaming selector,
// and progress is observed at version bumps instead of round completions.
//
// Accuracy bookkeeping: the learning curve is calibrated in synchronous
// rounds of ActivePerRound aggregated updates, so an async run's effective
// round is foldedUpdates / ActivePerRound. A version bump (every BufferK
// folds) advances the curve by that conversion; time-to-accuracy then
// measures exactly what Fig. 11 argues about — how fast the wall clock
// accumulates the same update throughput without round barriers. The
// Report still carries Acc points (Round = version), Milestones, and the
// scalar outcomes; Rounds/CPUPerRound stay empty (there are no rounds).

package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/systems"
	"repro/internal/tensor"
)

// runAsync drives a SystemAsync platform to the accuracy target or the
// MaxRounds×ActivePerRound folded-update bound.
func (p *Platform) runAsync() (*Report, error) {
	cfg := p.Cfg
	spec := *cfg.Async
	rng := sim.NewRNG(cfg.Seed + 2)
	rep := &Report{System: cfg.System, Model: cfg.Model}
	milestones := append([]float64(nil), cfg.Milestones...)
	sort.Float64s(milestones)
	nextMilestone := 0

	maxFolded := cfg.MaxRounds * cfg.ActivePerRound
	folded := 0
	done := false
	stopped := false // no further dispatches once the outcome is decided
	nextNode := 0
	lastBumpWall := time.Now()
	var sinkErr error // first Trajectory.Observe failure; aborts the run

	// dispatch fills one training slot: draw a live client (the selector
	// beats heartbeats and skips FailureRate deaths), snapshot the current
	// global model and version, and hand the job to the system. The slot
	// refills itself from the job's Done callback, so concurrency is held
	// constant without any central timer.
	var dispatch func()
	dispatch = func() {
		if stopped {
			return
		}
		idx := p.sel.selectRound(p, rng, 1)
		if len(idx) == 0 {
			// Every contacted client died this pass; leave the slot empty
			// rather than spinning at the same virtual instant. If all
			// slots starve the engine idles and the run errors below.
			return
		}
		c := p.Pop.Client(idx[0])
		base := p.Asys.Version()
		global := p.Asys.Global()
		effRound := folded / cfg.ActivePerRound
		node := nextNode
		nextNode = (nextNode + 1) % cfg.Nodes
		p.Asys.Dispatch(systems.AsyncJob{
			ID:          p.Pop.ClientID(idx[0]),
			Node:        node,
			Delay:       p.Pop.TrainTime(c),
			Weight:      float64(c.Samples),
			BaseVersion: base,
			MakeUpdate: func() *tensor.Tensor {
				return p.Pop.LocalUpdate(c, global, effRound)
			},
			Done: func() {
				if !cfg.StreamOnly {
					p.arrivals.note(int(p.Eng.Now() / sim.Minute))
				}
				dispatch()
			},
		})
	}

	// Version envelopes tile the virtual timeline: each one runs from the
	// previous bump's end to this bump's, so every buffer span lands inside
	// some envelope.
	var lastEnvEnd sim.Duration
	p.Asys.SetOnVersion(func(v systems.AsyncVersion) {
		now := time.Now()
		wall := now.Sub(lastBumpWall)
		lastBumpWall = now
		rep.RoundWallTotal += wall
		if wall > rep.RoundWallMax {
			rep.RoundWallMax = wall
		}
		folded += v.Updates
		rep.RoundsRun = v.Version
		rep.UpdatesDiscarded += v.Discarded
		acc := p.Curve.At(folded / cfg.ActivePerRound)
		if reg := cfg.Telemetry; reg != nil {
			reg.Counter("core/versions", obs.Det).Inc()
			reg.Counter("core/updates", obs.Det).Add(uint64(v.Updates))
			reg.Counter("core/discarded", obs.Det).Add(uint64(v.Discarded))
			reg.Gauge("core/accuracy", obs.Det).Set(acc)
			reg.Spans().Add(obs.Span{Actor: "version", Kind: obs.KindRound, Start: lastEnvEnd, End: v.End, Round: v.Version})
			lastEnvEnd = v.End
		}
		point := AccPoint{Round: v.Version, Time: v.End, CPUTime: v.CPUTime, Accuracy: acc}
		if !cfg.StreamOnly {
			rep.Acc = append(rep.Acc, point)
			rep.ActiveAggs = append(rep.ActiveAggs, p.Asys.ActiveAggregators())
		}
		for nextMilestone < len(milestones) && acc >= milestones[nextMilestone] {
			rep.Milestones = append(rep.Milestones, MilestoneHit{Target: milestones[nextMilestone], At: point})
			nextMilestone++
		}
		if cfg.OnRound != nil || cfg.Trajectory != nil {
			// ACT keeps its documented meaning (aggregation span ending at
			// model install, evaluation excluded): for a version it runs
			// from the first surviving fold to the merge.
			ob := RoundObservation{
				Result: systems.RoundResult{
					Round:        v.Version,
					Start:        v.FirstFold,
					FirstArrival: v.FirstFold,
					End:          v.End,
					ACT:          v.Installed - v.FirstFold,
					Updates:      v.Updates,
					CPUTime:      v.CPUTime,
				},
				Acc:       point,
				Wall:      wall,
				Discarded: v.Discarded,
			}
			if cfg.OnRound != nil {
				cfg.OnRound(ob)
			}
			if cfg.Trajectory != nil && sinkErr == nil {
				if err := cfg.Trajectory.Observe(ob); err != nil {
					sinkErr = fmt.Errorf("core: trajectory sink at version %d: %w", v.Version, err)
					done, stopped = true, true
				}
			}
		}
		// Version folded and installed: retire records outside the
		// retention window (the async analogue of the round loop's
		// post-StepRound retirement).
		if rr := cfg.RetainRounds; rr > 0 {
			p.Asys.RetireRound(v.Version - rr)
		}
		if !rep.Reached && acc >= cfg.TargetAccuracy {
			rep.Reached = true
			rep.TimeToTarget = v.End
			rep.CPUToTarget = v.CPUTime
			done, stopped = true, true
		}
		if folded >= maxFolded {
			done, stopped = true, true
		}
	})

	for i := 0; i < spec.Concurrency; i++ {
		dispatch()
	}
	// Advance only until the outcome is decided; undrained events (uploads
	// in flight, keep-alive expiries) are abandoned exactly like the
	// synchronous loop abandons post-round bookkeeping.
	for !done && p.Eng.Step() {
	}
	if sinkErr != nil {
		return nil, sinkErr
	}
	if !done {
		return nil, errors.New("core: async run starved before deciding an outcome")
	}
	p.Asys.Finalize()
	rep.FinalGlobal = p.Asys.Global()
	if !cfg.StreamOnly {
		rep.ArrivalsPerMinute = p.arrivals.series()
	}
	rep.Elapsed = p.Eng.Now()
	rep.CPUTotal = p.Asys.CPUTime()
	rep.FailuresDetected = p.FailuresDetected
	rep.MeanStaleness = p.Asys.MeanStaleness()
	return rep, nil
}
