package core

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// The PR's determinism contract, tested at the Report level: Workers is a
// wall-clock knob only. For a fixed seed, every worker count must produce
// a byte-identical Report — same rounds, same simulated times, same CPU,
// same final model bits — because shard boundaries and the combine order
// of the reduction tree are pure functions of the data shape, never of
// goroutine scheduling.

// wideModel crosses tensor.MinParallelElems (the default Fig. 9 specs sit
// below it at PhysScale 4096), so the sharded fold genuinely engages
// instead of falling back to the serial loop.
func wideModel() model.Spec {
	m := model.ResNet18
	m.PhysScale = 64 // 180224-float physical vector
	return m
}

func stripReportWall(r *Report) {
	r.RoundWallTotal = 0
	r.RoundWallMax = 0
}

func TestWorkersByteIdenticalReports(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
	}{
		{"lifl-sync", smallCfg(SystemLIFL)},
		{"serverless", smallCfg(SystemSL)},
		{"async", smallAsync()},
	}
	// A wide-vector variant so the fold actually shards; fewer rounds keep
	// it fast despite the 128 KiB physical vectors.
	wide := smallCfg(SystemLIFL)
	wide.Model = wideModel()
	wide.TargetAccuracy = 0.99 // never reached: fixed MaxRounds of work
	wide.MaxRounds = 5
	cases = append(cases, struct {
		name string
		cfg  RunConfig
	}{"lifl-wide-vector", wide})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.cfg
			ref.Workers = 1
			want, err := Run(ref)
			if err != nil {
				t.Fatal(err)
			}
			stripReportWall(want)
			for _, w := range []int{2, 3, 8} {
				cfg := tc.cfg
				cfg.Workers = w
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				stripReportWall(got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("workers=%d diverged from workers=1:\nw=1: rounds=%d elapsed=%v cpu=%v acc[last]=%+v\nw=%d: rounds=%d elapsed=%v cpu=%v acc[last]=%+v",
						w, want.RoundsRun, want.Elapsed, want.CPUTotal, want.Acc[len(want.Acc)-1],
						w, got.RoundsRun, got.Elapsed, got.CPUTotal, got.Acc[len(got.Acc)-1])
				}
			}
		})
	}
}

// Negative worker counts are a config error, not a silent clamp.
func TestNegativeWorkersRejected(t *testing.T) {
	cfg := smallCfg(SystemLIFL)
	cfg.Workers = -2
	if _, err := Run(cfg); err == nil {
		t.Fatal("Workers=-2 accepted")
	}
}
