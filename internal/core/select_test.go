package core

import (
	"fmt"
	"testing"

	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/sim"
)

func selectPlatform(t testing.TB, clients int, kind SelectorKind, failureRate float64) *Platform {
	t.Helper()
	p, err := NewPlatform(RunConfig{
		Clients:        clients,
		ActivePerRound: 120,
		Model:          model.ResNet18,
		Class:          flwork.Mobile,
		Selector:       kind,
		FailureRate:    failureRate,
		StreamOnly:     kind == SelectStream,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlatformRejectsUnknownSelector(t *testing.T) {
	_, err := NewPlatform(RunConfig{Selector: "bogus"})
	if err == nil {
		t.Fatal("unknown selector accepted")
	}
}

// The streaming selector must produce a valid without-replacement sample
// every round: goal-many distinct in-range indices, different across
// rounds, and deterministic for a fixed seed.
func TestStreamSelectorSamplesWithoutReplacement(t *testing.T) {
	const clients, goal = 5000, 120
	p := selectPlatform(t, clients, SelectStream, 0)
	rng := sim.NewRNG(9)
	sel := p.sel.(*streamSelector)
	everSelected := map[int]bool{}
	var firstRound []int
	for round := 0; round < 200; round++ {
		idx := sel.selectRound(p, rng, goal)
		if len(idx) != goal {
			t.Fatalf("round %d: %d selected", round, len(idx))
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= clients {
				t.Fatalf("round %d: index %d out of range", round, i)
			}
			if seen[i] {
				t.Fatalf("round %d: index %d selected twice", round, i)
			}
			seen[i] = true
			everSelected[i] = true
		}
		if round == 0 {
			firstRound = append(firstRound, idx...)
		}
	}
	// 200 rounds × 120 picks from 5,000: uniformity means nearly every
	// client is touched at least once (expected miss fraction < 1%).
	if len(everSelected) < clients*95/100 {
		t.Fatalf("only %d/%d clients ever selected — not uniform", len(everSelected), clients)
	}
	// Deterministic per seed.
	p2 := selectPlatform(t, clients, SelectStream, 0)
	again := p2.sel.selectRound(p2, sim.NewRNG(9), goal)
	for i := range firstRound {
		if firstRound[i] != again[i] {
			t.Fatalf("same seed diverged at pick %d: %d vs %d", i, firstRound[i], again[i])
		}
	}
}

// Both selectors must survive a goal larger than the population: every
// live client is selected, no duplicate picks, no infinite walk.
func TestSelectorsWithGoalBeyondPopulation(t *testing.T) {
	for _, kind := range []SelectorKind{SelectPerm, SelectStream} {
		p := selectPlatform(t, 30, kind, 0)
		rng := sim.NewRNG(1)
		idx := p.sel.selectRound(p, rng, 100)
		if len(idx) != 30 {
			t.Fatalf("%s: selected %d of 30", kind, len(idx))
		}
	}
}

// A full run on the streaming selector must deliver the same per-round
// update counts as the default selector (the schedule differs, the
// contract does not), stay lean, and be deterministic across repeats.
func TestStreamSelectorRunDeliversRounds(t *testing.T) {
	cfg := RunConfig{
		Model:          model.ResNet18,
		Clients:        3000,
		ActivePerRound: 24,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.99,
		MaxRounds:      4,
		Selector:       SelectStream,
		StreamOnly:     true,
		Seed:           21,
	}
	var updates []int
	cfg.OnRound = func(o RoundObservation) { updates = append(updates, o.Result.Updates) }
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsRun != 4 || len(updates) != 4 {
		t.Fatalf("rounds = %d, observed = %d", rep.RoundsRun, len(updates))
	}
	for r, u := range updates {
		if u != 24 {
			t.Fatalf("round %d: %d updates", r, u)
		}
	}
	if len(rep.Rounds) != 0 || len(rep.Acc) != 0 || len(rep.ArrivalsPerMinute) != 0 {
		t.Fatal("StreamOnly report accumulated per-round slices")
	}
	if rep.Elapsed <= 0 || rep.CPUTotal <= 0 || rep.FinalGlobal == nil {
		t.Fatalf("lean report incomplete: %+v", rep)
	}
	cfg.OnRound = nil
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.CPUTotal != b.CPUTotal {
		t.Fatalf("stream selector not deterministic: %v/%v vs %v/%v", a.Elapsed, a.CPUTotal, b.Elapsed, b.CPUTotal)
	}
}

// benchSelect times one round of client selection + job building at the
// given population. The streaming selector must stay flat from 10K to 1M
// (O(ActivePerRound) per round); the default permutation selector is the
// O(population) contrast.
func benchSelect(b *testing.B, clients int, kind SelectorKind) {
	b.Helper()
	p := selectPlatform(b, clients, kind, 0)
	rng := sim.NewRNG(3)
	// Warm one round outside the timer so the streaming selector's one-time
	// O(population) pool setup doesn't smear into the per-round figure.
	p.roundJobs(rng, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if jobs := p.roundJobs(rng, 1, 0); len(jobs) != 120 {
			b.Fatalf("selected %d", len(jobs))
		}
	}
}

func BenchmarkSelectStream(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) { benchSelect(b, n, SelectStream) })
	}
}

func BenchmarkSelectPerm(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("pop=%d", n), func(b *testing.B) { benchSelect(b, n, SelectPerm) })
	}
}
