package core

import (
	"testing"

	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestSmallRunAllSystems(t *testing.T) {
	for _, kind := range []SystemKind{SystemLIFL, SystemSLH, SystemSF, SystemSL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rep, err := Run(RunConfig{
				System:         kind,
				Model:          model.ResNet18,
				Clients:        200,
				ActivePerRound: 24,
				Class:          flwork.Mobile,
				MaxRounds:      3,
				TargetAccuracy: 0.99, // never reached in 3 rounds
				Seed:           42,
			})
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if len(rep.Rounds) != 3 {
				t.Fatalf("%s: got %d rounds", kind, len(rep.Rounds))
			}
			for _, r := range rep.Rounds {
				if r.Updates != 24 {
					t.Errorf("%s round %d: %d updates", kind, r.Round, r.Updates)
				}
				t.Logf("%s round %d: time=%v act=%v cpu=%v aggs=%d nodes=%d created=%d",
					kind, r.Round, (r.End - r.Start).Round(sim.Millisecond*100), r.ACT.Round(sim.Millisecond*100),
					r.CPUTime.Round(sim.Millisecond*100), r.AggsActive, r.NodesUsed, r.AggsCreated)
			}
		})
	}
}
