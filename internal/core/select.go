package core

import (
	"fmt"

	"repro/internal/coordinator"
	"repro/internal/sim"
)

// roundSelector draws one round's active-client indices. Both
// implementations walk candidates in a uniformly random order, beat every
// contacted client's heartbeat, skip the ones that die (FailureRate), and
// stop once the aggregation goal is met — §3's over-provisioned selection
// with keep-alive failure detection.
type roundSelector interface {
	selectRound(p *Platform, rng *sim.RNG, goal int) []int
}

func newSelector(kind SelectorKind) (roundSelector, error) {
	switch kind {
	case SelectPerm:
		return permSelector{}, nil
	case SelectStream:
		return &streamSelector{}, nil
	default:
		return nil, fmt.Errorf("core: unknown selector %q", kind)
	}
}

// permSelector is the seed algorithm, kept draw-for-draw identical so
// fixed-seed paper Reports stay bit-identical (DESIGN.md's golden rule):
// a full rng.Perm over the population each round, walked until the goal's
// worth of live clients is found. O(population) time and allocation per
// round — fine at the paper's 2,800 clients, the reason SelectStream
// exists at a million.
type permSelector struct{}

func (permSelector) selectRound(p *Platform, rng *sim.RNG, goal int) []int {
	cfg := p.Cfg
	perm := rng.Perm(p.Pop.Len())
	var idx []int
	for _, i := range perm {
		id := coordinator.ClientID(p.Pop.ClientID(i))
		p.Beats.Beat(id)
		if cfg.FailureRate > 0 && rng.Float64() < cfg.FailureRate {
			// The client dies before uploading; its heartbeat will expire
			// and the monitor reports it, while a standby takes its slot.
			p.FailuresDetected++
			continue
		}
		p.Beats.Forget(id)
		idx = append(idx, i)
		if len(idx) == goal {
			break
		}
	}
	return idx
}

// streamSelector is the large-scale selector: an incremental partial
// Fisher–Yates shuffle over a persistent index pool. Each draw swaps a
// uniformly chosen remaining element into the next slot, so a round costs
// O(contacted) = O(goal / (1 − FailureRate)) regardless of population
// size; the pool itself is one []int allocated on first use. Because the
// pool always contains every index exactly once, each round's selection
// is a uniform without-replacement sample no matter how previous rounds
// permuted it. Draw sequence differs from permSelector, so schedules (not
// distributions) differ for the same seed — see DESIGN.md.
type streamSelector struct {
	pool []int
}

func (s *streamSelector) selectRound(p *Platform, rng *sim.RNG, goal int) []int {
	if s.pool == nil {
		s.pool = make([]int, p.Pop.Len())
		for i := range s.pool {
			s.pool[i] = i
		}
	}
	cfg := p.Cfg
	total := len(s.pool)
	idx := make([]int, 0, goal)
	for j := 0; j < total && len(idx) < goal; j++ {
		r := j + rng.Intn(total-j)
		s.pool[j], s.pool[r] = s.pool[r], s.pool[j]
		i := s.pool[j]
		id := coordinator.ClientID(p.Pop.ClientID(i))
		p.Beats.Beat(id)
		if cfg.FailureRate > 0 && rng.Float64() < cfg.FailureRate {
			p.FailuresDetected++
			continue
		}
		p.Beats.Forget(id)
		idx = append(idx, i)
	}
	return idx
}
