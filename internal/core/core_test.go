package core

import (
	"testing"

	"repro/internal/flwork"
	"repro/internal/model"
	"repro/internal/systems"
)

func smallCfg(kind SystemKind) RunConfig {
	return RunConfig{
		System:         kind,
		Model:          model.ResNet18,
		Clients:        300,
		ActivePerRound: 16,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.50,
		MaxRounds:      60,
		MC:             30,
		Seed:           9,
	}
}

func TestRunReachesTargetAndReportsConsistently(t *testing.T) {
	rep, err := Run(smallCfg(SystemLIFL))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reached {
		t.Fatal("target not reached")
	}
	if rep.TimeToTarget <= 0 || rep.CPUToTarget <= 0 {
		t.Fatalf("targets: %v %v", rep.TimeToTarget, rep.CPUToTarget)
	}
	// Accuracy and CPU must be monotone over rounds; time strictly so.
	for i := 1; i < len(rep.Acc); i++ {
		if rep.Acc[i].Time <= rep.Acc[i-1].Time {
			t.Fatal("time not increasing")
		}
		if rep.Acc[i].CPUTime < rep.Acc[i-1].CPUTime {
			t.Fatal("CPU not monotone")
		}
	}
	if len(rep.Rounds) != len(rep.Acc) || len(rep.ActiveAggs) != len(rep.Rounds) {
		t.Fatal("series lengths disagree")
	}
	// Arrival series accounts for every scheduled upload.
	var arrivals float64
	for _, v := range rep.ArrivalsPerMinute {
		arrivals += v
	}
	if int(arrivals) != 16*len(rep.Rounds) {
		t.Fatalf("arrival series sums to %v, want %d", arrivals, 16*len(rep.Rounds))
	}
	if rep.FinalGlobal == nil {
		t.Fatal("no final model")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(smallCfg(SystemLIFL))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg(SystemLIFL))
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeToTarget != b.TimeToTarget || a.CPUToTarget != b.CPUToTarget {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v",
			a.TimeToTarget, a.CPUToTarget, b.TimeToTarget, b.CPUToTarget)
	}
	d, err := a.FinalGlobal.MaxAbsDiff(b.FinalGlobal)
	if err != nil || d != 0 {
		t.Fatalf("models differ: %v %v", d, err)
	}
}

func TestFailureRateStillMeetsGoal(t *testing.T) {
	cfg := smallCfg(SystemLIFL)
	cfg.FailureRate = 0.25
	cfg.MaxRounds = 5
	cfg.TargetAccuracy = 0.99
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rounds {
		if r.Updates != cfg.ActivePerRound {
			t.Fatalf("round %d aggregated %d updates despite standbys", r.Round, r.Updates)
		}
	}
	if p.FailuresDetected == 0 {
		t.Fatal("no failures recorded at 25% failure rate")
	}
	if len(p.Beats.Failed()) == 0 {
		t.Fatal("heartbeat monitor saw no expired clients")
	}
}

func TestUnknownSystemErrors(t *testing.T) {
	cfg := smallCfg("nonsense")
	if _, err := NewPlatform(cfg); err == nil {
		t.Fatal("unknown system accepted")
	}
}

// Cost-accounting semantics: SF reports reservation-based cost, so an
// identical workload must cost more CPU on SF than on LIFL.
func TestSFCostsMoreThanLIFL(t *testing.T) {
	lifl, err := Run(smallCfg(SystemLIFL))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Run(smallCfg(SystemSF))
	if err != nil {
		t.Fatal(err)
	}
	if sf.CPUToTarget <= lifl.CPUToTarget {
		t.Fatalf("SF %v not more expensive than LIFL %v", sf.CPUToTarget, lifl.CPUToTarget)
	}
}

// SL is the slowest and most expensive of the three (the paper's headline).
func TestSystemOrdering(t *testing.T) {
	var wall, cpu = map[SystemKind]float64{}, map[SystemKind]float64{}
	for _, kind := range []SystemKind{SystemLIFL, SystemSF, SystemSL} {
		rep, err := Run(smallCfg(kind))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Reached {
			t.Fatalf("%s: target not reached", kind)
		}
		wall[kind] = rep.TimeToTarget.Hours()
		cpu[kind] = rep.CPUToTarget.Hours()
	}
	if !(wall[SystemLIFL] < wall[SystemSF] && wall[SystemSF] < wall[SystemSL]) {
		t.Fatalf("wall ordering violated: %v", wall)
	}
	if !(cpu[SystemLIFL] < cpu[SystemSF] && cpu[SystemSF] < cpu[SystemSL]) {
		t.Fatalf("cpu ordering violated: %v", cpu)
	}
}

// SL-H sits between SL and LIFL: it has LIFL's data plane but the baseline
// control plane.
func TestSLHBetweenLIFLAndSL(t *testing.T) {
	lifl, err := Run(smallCfg(SystemLIFL))
	if err != nil {
		t.Fatal(err)
	}
	slh, err := Run(smallCfg(SystemSLH))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := Run(smallCfg(SystemSL))
	if err != nil {
		t.Fatal(err)
	}
	if slh.TimeToTarget < lifl.TimeToTarget {
		t.Fatalf("SL-H (%v) beat full LIFL (%v)", slh.TimeToTarget, lifl.TimeToTarget)
	}
	if slh.TimeToTarget > sl.TimeToTarget {
		t.Fatalf("SL-H (%v) slower than SL (%v) despite the shm data plane", slh.TimeToTarget, sl.TimeToTarget)
	}
}

// Appendix B: checkpoints happen in the background and are durable.
func TestCheckpointsWrittenDuringRun(t *testing.T) {
	cfg := smallCfg(SystemLIFL)
	cfg.MaxRounds = 25
	cfg.TargetAccuracy = 0.99
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	lifl := p.Sys.(*systems.LIFL)
	if lifl.Ckpt.Requested == 0 {
		t.Fatal("no checkpoints requested over 25 rounds (period 10)")
	}
	if lifl.Ckpt.Count() == 0 {
		t.Fatal("no checkpoint became durable")
	}
	rec, err := lifl.Ckpt.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Round%10 != 0 {
		t.Fatalf("checkpoint at round %d, period is 10", rec.Round)
	}
}

// TestMilestoneExport checks the time-to-accuracy trajectory: crossings
// are recorded in ascending target order, agree with the Acc series, and
// the final milestone matches TimeToTarget. Unsorted milestone input and
// unreachable levels are handled.
func TestMilestoneExport(t *testing.T) {
	cfg := smallCfg(SystemLIFL)
	cfg.Milestones = []float64{0.50, 0.30, 0.10, 0.99} // unsorted + unreachable
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reached {
		t.Fatal("target not reached")
	}
	if len(rep.Milestones) != 3 {
		t.Fatalf("milestones = %+v, want the three reachable levels", rep.Milestones)
	}
	wantTargets := []float64{0.10, 0.30, 0.50}
	for i, m := range rep.Milestones {
		if m.Target != wantTargets[i] {
			t.Fatalf("milestone %d target = %g, want %g", i, m.Target, wantTargets[i])
		}
		if m.At.Accuracy < m.Target {
			t.Fatalf("milestone %d recorded below its level: %+v", i, m)
		}
		if i > 0 && m.At.Time < rep.Milestones[i-1].At.Time {
			t.Fatal("milestone times not monotone")
		}
		// The crossing must be the *first* round at or above the level.
		for _, p := range rep.Acc {
			if p.Accuracy >= m.Target {
				if p.Round != m.At.Round {
					t.Fatalf("milestone %g at round %d, Acc series first crosses at %d", m.Target, m.At.Round, p.Round)
				}
				break
			}
		}
	}
	last := rep.Milestones[len(rep.Milestones)-1]
	if last.At.Time != rep.TimeToTarget {
		t.Fatalf("0.50 milestone time %v != TimeToTarget %v", last.At.Time, rep.TimeToTarget)
	}
	// Round wall timing is real-clock but must at least be populated and
	// consistent.
	if rep.RoundWallTotal <= 0 || rep.RoundWallMax <= 0 || rep.RoundWallMax > rep.RoundWallTotal {
		t.Fatalf("round wall stats inconsistent: total %v max %v", rep.RoundWallTotal, rep.RoundWallMax)
	}
}

// TestMilestonesSurviveStreamOnly: milestone capture is sim-time only, so
// the lean report path keeps it.
func TestMilestonesSurviveStreamOnly(t *testing.T) {
	cfg := smallCfg(SystemLIFL)
	cfg.Milestones = []float64{0.30, 0.50}
	cfg.Selector = SelectStream
	cfg.StreamOnly = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 0 || len(rep.Acc) != 0 {
		t.Fatal("StreamOnly report accumulated per-round slices")
	}
	if len(rep.Milestones) != 2 {
		t.Fatalf("milestones lost on StreamOnly path: %+v", rep.Milestones)
	}
}
