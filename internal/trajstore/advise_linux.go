//go:build linux && (amd64 || arm64)

package trajstore

import "syscall"

// posixFadvDontNeed is POSIX_FADV_DONTNEED from <fcntl.h>; the stdlib
// syscall package exposes the fadvise64 syscall number but not the advice
// constants.
const posixFadvDontNeed = 4

// dontNeed tells the kernel the byte range [off, off+length) of fd will
// not be accessed again, releasing its page cache. Failures are ignored:
// the advice is an optimization, never a correctness requirement.
func dontNeed(fd uintptr, off, length int64) {
	syscall.Syscall6(syscall.SYS_FADVISE64, fd, uintptr(off), uintptr(length), posixFadvDontNeed, 0, 0)
}
