// Package trajstore is the bounded-memory streaming trajectory store: an
// append-only columnar block file for RoundObservation streams, built so
// a million-round run keeps a flat RSS and a complete, replayable
// history at once.
//
// Rounds accumulate into a fixed-size in-memory block laid out
// column-per-field (round, accuracy bits, sim-ns, cpu-ns, folded and
// discarded update counts, per-cell shares, and — opt-in — wall-ns).
// A full block is sealed: integer columns are delta-encoded and zigzag
// varinted, float columns xor-previous encoded (Gorilla-style), the
// payload checksummed with CRC-32C and appended to the run file with one
// sequential write. The sealed block's heap is reused for the next
// block, and every few megabytes the writer syncs and issues an
// fadvise-DONTNEED so the page cache stays as flat as the heap.
//
// Hot-path invariants (asserted by tests):
//
//   - Append performs zero steady-state allocations; only block seals
//     touch the allocator, and only until the scratch buffers reach
//     their stable size.
//   - Resident memory is a function of Options.BlockRounds, never of
//     run length.
//   - A fixed seed yields a byte-identical file across serial, -parallel
//     and any Workers count (the wall column, the one nondeterministic
//     field, is off unless Options.CaptureWall).
//   - Blocks are self-contained (delta baselines reset per block), so a
//     flipped bit is confined to — and detected in — one block.
//
// Reader streams records back in write order, verifying every checksum;
// Replay folds a whole file into the same accuracy series, milestone
// crossings and reached-target verdict the live run reported.
package trajstore
