package trajstore

import (
	"repro/internal/core"
)

// Sink adapts a Writer to core.TrajectorySink: plug it into
// RunConfig.Trajectory and every completed round (or async version, or
// fabric global round) streams into the store. The caller owns the
// lifecycle — Close after the run returns, even on error.
type Sink struct {
	w *Writer
}

// NewSink creates the trajectory file for cfg at path. Meta is derived
// from the defaulted config so replay can re-derive the reached-target
// verdict and milestone crossings without the config in hand.
func NewSink(path string, cfg core.RunConfig, opts Options) (*Sink, error) {
	d := cfg.Defaulted()
	w, err := Create(path, Meta{
		System:     string(d.System),
		Model:      d.Model.Name,
		Seed:       d.Seed,
		Target:     d.TargetAccuracy,
		Milestones: d.Milestones,
	}, opts)
	if err != nil {
		return nil, err
	}
	return &Sink{w: w}, nil
}

// Observe implements core.TrajectorySink.
func (s *Sink) Observe(o core.RoundObservation) error {
	return s.w.Append(Record{
		Round:     o.Acc.Round,
		Acc:       o.Acc.Accuracy,
		Sim:       o.Acc.Time,
		CPU:       o.Acc.CPUTime,
		Wall:      o.Wall,
		Updates:   o.Result.Updates,
		Discarded: o.Discarded,
		Shares:    o.Shares,
	})
}

// Close seals the remainder block and closes the file.
func (s *Sink) Close() error { return s.w.Close() }

// Path returns the trajectory file path.
func (s *Sink) Path() string { return s.w.Path() }

// Rounds returns the number of observations streamed so far.
func (s *Sink) Rounds() int { return s.w.Rounds() }
