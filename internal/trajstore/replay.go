package trajstore

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Crossing is a milestone first-crossing reconstructed from blocks — the
// same quantity the live run exports as Report.Milestones.
type Crossing struct {
	Target float64
	Round  int
	Acc    float64
	Sim    sim.Duration
	CPU    sim.Duration
}

// Summary is the post-hoc fold of a whole trajectory file: the scalar
// outcomes a live Report carries, re-derived from the stored rounds and
// the header's target/milestone levels alone.
type Summary struct {
	Meta   Meta
	Rounds int
	First  Record
	Last   Record
	// Crossings lists the first round at or above each header milestone
	// level, in ascending level order (levels never crossed are absent).
	Crossings []Crossing
	// Reached, TimeToTarget and CPUToTarget mirror the live Report: the
	// first stored round whose accuracy met Meta.Target.
	Reached      bool
	TimeToTarget sim.Duration
	CPUToTarget  sim.Duration
}

// Replay scans path end to end — verifying every block checksum — and
// folds it into the summary the live run reported. When each is non-nil
// it is invoked per record in write order; a non-nil return aborts the
// scan with that error.
func Replay(path string, each func(Record) error) (*Summary, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	s := &Summary{Meta: r.Meta()}
	next := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if s.Rounds == 0 {
			s.First = rec
		}
		s.Last = rec
		s.Rounds++
		for next < len(s.Meta.Milestones) && rec.Acc >= s.Meta.Milestones[next] {
			s.Crossings = append(s.Crossings, Crossing{
				Target: s.Meta.Milestones[next],
				Round:  rec.Round,
				Acc:    rec.Acc,
				Sim:    rec.Sim,
				CPU:    rec.CPU,
			})
			next++
		}
		if !s.Reached && rec.Acc >= s.Meta.Target {
			s.Reached = true
			s.TimeToTarget = rec.Sim
			s.CPUToTarget = rec.CPU
		}
		if each != nil {
			if err := each(rec); err != nil {
				return nil, err
			}
		}
	}
	if s.Rounds == 0 {
		return nil, fmt.Errorf("%w: no rounds stored", ErrFormat)
	}
	return s, nil
}

// ErrRoundOutOfRange reports a ReplayAt round outside the stored range.
var ErrRoundOutOfRange = errors.New("trajstore: round outside stored range")

// ReplayAt returns the stored record for the given round number,
// scanning (and checksumming) from the start. The round numbering is the
// run's own: synchronous runs count from 1, injected ones from 0, async
// ones by version.
func ReplayAt(path string, round int) (Record, *Summary, error) {
	var hit Record
	found := false
	s, err := Replay(path, func(rec Record) error {
		if rec.Round == round {
			hit = rec
			found = true
		}
		return nil
	})
	if err != nil {
		return Record{}, nil, err
	}
	if !found {
		return Record{}, s, fmt.Errorf("%w: round %d not in [%d, %d]",
			ErrRoundOutOfRange, round, s.First.Round, s.Last.Round)
	}
	return hit, s, nil
}
