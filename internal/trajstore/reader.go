package trajstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/sim"
)

// maxSaneLen bounds header/block payload lengths so a corrupt length
// varint fails cleanly instead of attempting a multi-gigabyte read.
const maxSaneLen = 1 << 30

// ErrFormat reports a structurally invalid trajectory file (bad magic,
// unsupported version, truncation, or checksum mismatch). All reader
// errors other than io.EOF and raw I/O failures wrap it.
var ErrFormat = errors.New("trajstore: invalid trajectory file")

// Reader streams records back out of a trajectory file, verifying every
// block checksum as it goes. Next returns records in write order and
// io.EOF after the last one.
type Reader struct {
	f    *os.File
	br   *bufio.Reader
	meta Meta
	wall bool

	block []Record
	pos   int
	buf   []byte
}

// Open reads and validates the header of path.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, br: bufio.NewReaderSize(f, 1<<16)}
	if err := r.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Meta returns the run identity from the file header.
func (r *Reader) Meta() Meta { return r.meta }

// HasWall reports whether the file carries the wall-clock column.
func (r *Reader) HasWall() bool { return r.wall }

func (r *Reader) readHeader() error {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r.br, magic); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrFormat, err)
	}
	if string(magic) != Magic {
		return fmt.Errorf("%w: bad magic %q", ErrFormat, magic)
	}
	payload, err := r.readChecked("header")
	if err != nil {
		return err
	}
	p := payload
	version, p, err := takeUvarint(p)
	if err != nil {
		return fmt.Errorf("%w: header version: %v", ErrFormat, err)
	}
	if version < 1 || version > Version {
		return fmt.Errorf("%w: unsupported version %d (reader supports <= %d)", ErrFormat, version, Version)
	}
	flags, p, err := takeUvarint(p)
	if err != nil {
		return fmt.Errorf("%w: header flags: %v", ErrFormat, err)
	}
	r.wall = flags&flagWall != 0
	if _, p, err = takeUvarint(p); err != nil { // block capacity (informational)
		return fmt.Errorf("%w: header block capacity: %v", ErrFormat, err)
	}
	seed, p, err := takeVarint(p)
	if err != nil {
		return fmt.Errorf("%w: header seed: %v", ErrFormat, err)
	}
	r.meta.Seed = seed
	if r.meta.System, p, err = takeString(p); err != nil {
		return fmt.Errorf("%w: header system: %v", ErrFormat, err)
	}
	if r.meta.Model, p, err = takeString(p); err != nil {
		return fmt.Errorf("%w: header model: %v", ErrFormat, err)
	}
	var bits uint64
	if bits, p, err = takeFixed64(p); err != nil {
		return fmt.Errorf("%w: header target: %v", ErrFormat, err)
	}
	r.meta.Target = math.Float64frombits(bits)
	nm, p, err := takeUvarint(p)
	if err != nil || nm > maxSaneLen/8 {
		return fmt.Errorf("%w: header milestone count", ErrFormat)
	}
	for i := uint64(0); i < nm; i++ {
		if bits, p, err = takeFixed64(p); err != nil {
			return fmt.Errorf("%w: header milestone %d: %v", ErrFormat, i, err)
		}
		r.meta.Milestones = append(r.meta.Milestones, math.Float64frombits(bits))
	}
	return nil
}

// readChecked reads a uvarint-length-prefixed payload followed by its
// CRC-32C and verifies it. what names the unit for error messages.
func (r *Reader) readChecked(what string) ([]byte, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, fmt.Errorf("%w: %s length: %v", ErrFormat, what, err)
	}
	if n > maxSaneLen {
		return nil, fmt.Errorf("%w: %s length %d exceeds sanity bound", ErrFormat, what, n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return nil, fmt.Errorf("%w: %s truncated: %v", ErrFormat, what, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r.br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: %s checksum truncated: %v", ErrFormat, what, err)
	}
	want := binary.LittleEndian.Uint32(sum[:])
	if got := crc32.Checksum(r.buf, castagnoli); got != want {
		return nil, fmt.Errorf("%w: %s checksum mismatch (got %08x want %08x)", ErrFormat, what, got, want)
	}
	return r.buf, nil
}

// Next returns the next record, decoding the next block when the current
// one is exhausted. It returns io.EOF cleanly after the final record.
func (r *Reader) Next() (Record, error) {
	if r.pos >= len(r.block) {
		if err := r.readBlock(); err != nil {
			return Record{}, err
		}
	}
	rec := r.block[r.pos]
	r.pos++
	return rec, nil
}

func (r *Reader) readBlock() error {
	count, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("%w: block count: %v", ErrFormat, err)
	}
	if count == 0 || count > maxSaneLen {
		return fmt.Errorf("%w: block count %d out of range", ErrFormat, count)
	}
	payload, err := r.readChecked("block")
	if err != nil {
		return err
	}
	n := int(count)
	if cap(r.block) < n {
		r.block = make([]Record, n)
	}
	r.block = r.block[:n]
	p := payload
	if p, err = decodeDeltas(p, n, func(i int, v int64) { r.block[i].Round = int(v) }); err != nil {
		return fmt.Errorf("%w: round column: %v", ErrFormat, err)
	}
	if p, err = decodeXors(p, n, func(i int, v uint64) { r.block[i].Acc = math.Float64frombits(v) }); err != nil {
		return fmt.Errorf("%w: acc column: %v", ErrFormat, err)
	}
	if p, err = decodeDeltas(p, n, func(i int, v int64) { r.block[i].Sim = sim.Duration(v) }); err != nil {
		return fmt.Errorf("%w: sim column: %v", ErrFormat, err)
	}
	if p, err = decodeDeltas(p, n, func(i int, v int64) { r.block[i].CPU = sim.Duration(v) }); err != nil {
		return fmt.Errorf("%w: cpu column: %v", ErrFormat, err)
	}
	if p, err = decodeDeltas(p, n, func(i int, v int64) { r.block[i].Updates = int(v) }); err != nil {
		return fmt.Errorf("%w: updates column: %v", ErrFormat, err)
	}
	if p, err = decodeDeltas(p, n, func(i int, v int64) { r.block[i].Discarded = int(v) }); err != nil {
		return fmt.Errorf("%w: discarded column: %v", ErrFormat, err)
	}
	if p, err = decodeDeltas(p, n, func(i int, v int64) { r.block[i].Shares = int(v) }); err != nil {
		return fmt.Errorf("%w: shares column: %v", ErrFormat, err)
	}
	if r.wall {
		if p, err = decodeDeltas(p, n, func(i int, v int64) { r.block[i].Wall = time.Duration(v) }); err != nil {
			return fmt.Errorf("%w: wall column: %v", ErrFormat, err)
		}
	} else {
		for i := 0; i < n; i++ {
			r.block[i].Wall = 0
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after last column", ErrFormat, len(p))
	}
	r.pos = 0
	return nil
}

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// decodeDeltas decodes one length-prefixed zigzag-delta column of n values
// from p, invoking set per value, and returns the remaining bytes.
func decodeDeltas(p []byte, n int, set func(i int, v int64)) ([]byte, error) {
	seg, rest, err := takeSegment(p)
	if err != nil {
		return nil, err
	}
	var prev int64
	for i := 0; i < n; i++ {
		d, k := binary.Varint(seg)
		if k <= 0 {
			return nil, fmt.Errorf("value %d/%d truncated", i, n)
		}
		seg = seg[k:]
		prev += d
		set(i, prev)
	}
	if len(seg) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in column", len(seg))
	}
	return rest, nil
}

// decodeXors decodes one length-prefixed xor-with-previous column.
func decodeXors(p []byte, n int, set func(i int, v uint64)) ([]byte, error) {
	seg, rest, err := takeSegment(p)
	if err != nil {
		return nil, err
	}
	var prev uint64
	for i := 0; i < n; i++ {
		x, k := binary.Uvarint(seg)
		if k <= 0 {
			return nil, fmt.Errorf("value %d/%d truncated", i, n)
		}
		seg = seg[k:]
		prev ^= x
		set(i, prev)
	}
	if len(seg) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in column", len(seg))
	}
	return rest, nil
}

func takeSegment(p []byte) (seg, rest []byte, err error) {
	n, p, err := takeUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) {
		return nil, nil, fmt.Errorf("segment length %d exceeds remaining %d bytes", n, len(p))
	}
	return p[:n], p[n:], nil
}

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errors.New("truncated uvarint")
	}
	return v, p[n:], nil
}

func takeVarint(p []byte) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, nil, errors.New("truncated varint")
	}
	return v, p[n:], nil
}

func takeString(p []byte) (string, []byte, error) {
	n, p, err := takeUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(p)) {
		return "", nil, fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(p))
	}
	return string(p[:n]), p[n:], nil
}

func takeFixed64(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, errors.New("truncated fixed64")
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}
