package trajstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/sim"
)

// Format constants. A trajectory file is
//
//	magic | header | block*
//	header := uvarint(len) payload crc32c(payload)
//	block  := uvarint(count) uvarint(len) payload crc32c(payload)
//
// where every payload is column-segmented (uvarint length + bytes per
// column) and every column is delta- (integers) or xor- (float bits)
// encoded with varints, self-contained per block: a block decodes without
// any other block, and a flipped bit anywhere in it fails its checksum.
const (
	// Magic identifies a trajectory file (the first 8 bytes).
	Magic = "LIFLTRAJ"
	// Version is the current format version; readers accept [1, Version].
	Version = 1
	// DefaultBlockRounds is the in-memory block capacity when Options
	// leaves it zero. RSS of a writer is a function of this (eight int64
	// columns plus the encode scratch), never of run length.
	DefaultBlockRounds = 4096
	// adviseEvery is how many written bytes accumulate before the writer
	// syncs and tells the kernel it will not read them back
	// (fadvise DONTNEED on Linux; a no-op elsewhere).
	adviseEvery = 4 << 20
)

// flagWall marks files that carry the per-round wall-clock column. It is
// off by default: wall time is the one nondeterministic observation, and
// the determinism contract (fixed seed ⇒ byte-identical file) holds only
// without it.
const flagWall = 1 << 0

// castagnoli is the CRC-32C table shared by every checksum in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the run identity stored in the file header — enough for replay
// to reconstruct the live Report's accuracy series, milestone crossings
// and reached-target verdict from blocks alone.
type Meta struct {
	System string
	Model  string
	Seed   int64
	// Target is the run's TargetAccuracy (replay re-derives Reached and
	// time-to-target from it).
	Target float64
	// Milestones are the run's requested crossing levels, ascending.
	Milestones []float64
}

// Record is one round's (or async version's) observation in column order.
type Record struct {
	Round int
	Acc   float64
	// Sim and CPU are the simulated clock and cumulative CPU at the end of
	// the round — the AccPoint fields, so milestone replay is exact.
	Sim sim.Duration
	CPU sim.Duration
	// Wall is the real time the round's simulation took; stored only when
	// Options.CaptureWall was set (zero on replay otherwise).
	Wall time.Duration
	// Updates folded into the round's aggregate; Discarded counts async
	// updates dropped by the staleness cutoff; Shares is the cross-cell
	// quota accepted into a fabric round (zero outside those shapes).
	Updates   int
	Discarded int
	Shares    int
}

// Options tunes a Writer.
type Options struct {
	// BlockRounds is the block capacity in rounds (0 = DefaultBlockRounds).
	BlockRounds int
	// CaptureWall also stores the per-round wall-clock column. It breaks
	// the byte-identical determinism contract by construction, so it is
	// opt-in.
	CaptureWall bool
	// NoAdvise disables the page-cache discipline (sync + fadvise); the
	// write path is otherwise identical.
	NoAdvise bool
}

// Writer streams records into an append-only block file. Append is
// 0-alloc in steady state: records accumulate into fixed-capacity column
// arrays; a full block is sealed — delta/xor encoded into reused scratch
// buffers, checksummed, written sequentially — and its heap is
// immediately reused for the next block, so resident memory is a
// function of BlockRounds, not of run length.
type Writer struct {
	f    *os.File
	path string
	opts Options
	cap  int
	err  error

	n      int
	rounds []int64
	accs   []uint64
	sims   []int64
	cpus   []int64
	walls  []int64
	upds   []int64
	discs  []int64
	shrs   []int64

	col     []byte // per-column encode scratch
	payload []byte // assembled column segments for the sealing block
	out     []byte // full block scratch (count + len + payload + crc)

	written int64 // total bytes written
	advised int64 // high-water mark already advised away
	blocks  int
	total   int // records in sealed blocks
}

// Create opens path for writing (truncating any previous file) and writes
// the header.
func Create(path string, meta Meta, opts Options) (*Writer, error) {
	if opts.BlockRounds < 0 {
		return nil, fmt.Errorf("trajstore: BlockRounds %d must be >= 0", opts.BlockRounds)
	}
	if opts.BlockRounds == 0 {
		opts.BlockRounds = DefaultBlockRounds
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f:    f,
		path: path,
		opts: opts,
		cap:  opts.BlockRounds,
	}
	w.rounds = make([]int64, w.cap)
	w.accs = make([]uint64, w.cap)
	w.sims = make([]int64, w.cap)
	w.cpus = make([]int64, w.cap)
	w.upds = make([]int64, w.cap)
	w.discs = make([]int64, w.cap)
	w.shrs = make([]int64, w.cap)
	if opts.CaptureWall {
		w.walls = make([]int64, w.cap)
	}
	if err := w.writeHeader(meta); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// Path returns the file the writer streams to (valid after Close too).
func (w *Writer) Path() string { return w.path }

func (w *Writer) writeHeader(meta Meta) error {
	var flags uint64
	if w.opts.CaptureWall {
		flags |= flagWall
	}
	p := make([]byte, 0, 64+len(meta.System)+len(meta.Model)+8*len(meta.Milestones))
	p = binary.AppendUvarint(p, Version)
	p = binary.AppendUvarint(p, flags)
	p = binary.AppendUvarint(p, uint64(w.cap))
	p = binary.AppendVarint(p, meta.Seed)
	p = appendString(p, meta.System)
	p = appendString(p, meta.Model)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(meta.Target))
	levels := append([]float64(nil), meta.Milestones...)
	sort.Float64s(levels)
	p = binary.AppendUvarint(p, uint64(len(levels)))
	for _, l := range levels {
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(l))
	}
	out := make([]byte, 0, len(Magic)+len(p)+16)
	out = append(out, Magic...)
	out = binary.AppendUvarint(out, uint64(len(p)))
	out = append(out, p...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(p, castagnoli))
	n, err := w.f.Write(out)
	w.written += int64(n)
	return err
}

// Append buffers one record, sealing the open block when it reaches
// capacity. It allocates nothing in steady state (the seal path reuses
// its scratch buffers once they reach their stable size).
func (w *Writer) Append(rec Record) error {
	if w.err != nil {
		return w.err
	}
	i := w.n
	w.rounds[i] = int64(rec.Round)
	w.accs[i] = math.Float64bits(rec.Acc)
	w.sims[i] = int64(rec.Sim)
	w.cpus[i] = int64(rec.CPU)
	if w.opts.CaptureWall {
		w.walls[i] = int64(rec.Wall)
	}
	w.upds[i] = int64(rec.Updates)
	w.discs[i] = int64(rec.Discarded)
	w.shrs[i] = int64(rec.Shares)
	w.n++
	if w.n == w.cap {
		return w.seal()
	}
	return nil
}

// seal encodes the open block, writes it, and resets the columns. Column
// order is fixed: round, acc, sim, cpu, updates, discarded, shares, then
// wall when captured.
func (w *Writer) seal() error {
	if w.n == 0 || w.err != nil {
		return w.err
	}
	p := w.payload[:0]
	p = w.appendColumnDeltas(p, w.rounds)
	p = w.appendColumnXors(p, w.accs)
	p = w.appendColumnDeltas(p, w.sims)
	p = w.appendColumnDeltas(p, w.cpus)
	p = w.appendColumnDeltas(p, w.upds)
	p = w.appendColumnDeltas(p, w.discs)
	p = w.appendColumnDeltas(p, w.shrs)
	if w.opts.CaptureWall {
		p = w.appendColumnDeltas(p, w.walls)
	}
	w.payload = p
	w.out = w.out[:0]
	w.out = binary.AppendUvarint(w.out, uint64(w.n))
	w.out = binary.AppendUvarint(w.out, uint64(len(p)))
	w.out = append(w.out, p...)
	w.out = binary.LittleEndian.AppendUint32(w.out, crc32.Checksum(p, castagnoli))
	n, err := w.f.Write(w.out)
	w.written += int64(n)
	if err != nil {
		w.err = fmt.Errorf("trajstore: writing block %d: %w", w.blocks, err)
		return w.err
	}
	w.blocks++
	w.total += w.n
	w.n = 0
	if !w.opts.NoAdvise {
		w.maybeAdvise()
	}
	return nil
}

// appendColumnDeltas encodes vals[:w.n] as zigzag-varint deltas (previous
// value starts at zero, so blocks are self-contained) behind a uvarint
// byte-length prefix.
func (w *Writer) appendColumnDeltas(dst []byte, vals []int64) []byte {
	w.col = w.col[:0]
	var prev int64
	for i := 0; i < w.n; i++ {
		w.col = binary.AppendVarint(w.col, vals[i]-prev)
		prev = vals[i]
	}
	dst = binary.AppendUvarint(dst, uint64(len(w.col)))
	return append(dst, w.col...)
}

// appendColumnXors encodes vals[:w.n] as uvarint xor-with-previous
// (Gorilla-style; a flat accuracy plateau costs one byte per round).
func (w *Writer) appendColumnXors(dst []byte, vals []uint64) []byte {
	w.col = w.col[:0]
	var prev uint64
	for i := 0; i < w.n; i++ {
		w.col = binary.AppendUvarint(w.col, vals[i]^prev)
		prev = vals[i]
	}
	dst = binary.AppendUvarint(dst, uint64(len(w.col)))
	return append(dst, w.col...)
}

// maybeAdvise applies the page-cache discipline once enough bytes have
// accumulated: flush the dirty pages, then tell the kernel the written
// range will not be read back. The writer only ever appends, so dropping
// its cache keeps a million-round run's page cache as flat as its heap.
func (w *Writer) maybeAdvise() {
	if w.written-w.advised < adviseEvery {
		return
	}
	if w.f.Sync() == nil {
		dontNeed(w.f.Fd(), 0, w.written)
	}
	w.advised = w.written
}

// Close seals the remainder block and closes the file. The writer is
// unusable afterwards.
func (w *Writer) Close() error {
	if w.f == nil {
		return w.err
	}
	sealErr := w.seal()
	closeErr := w.f.Close()
	w.f = nil
	if w.err == nil && closeErr != nil {
		w.err = closeErr
	}
	if sealErr != nil {
		return sealErr
	}
	return closeErr
}

// Rounds returns the number of records written so far (sealed blocks plus
// the open one).
func (w *Writer) Rounds() int { return w.total + w.n }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
