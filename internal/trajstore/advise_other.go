//go:build !linux || (!amd64 && !arm64)

package trajstore

// dontNeed is a no-op where fadvise is unavailable; the store's heap
// discipline (fixed-size blocks, reused scratch) is platform-independent,
// only the page-cache hint is Linux-specific.
func dontNeed(fd uintptr, off, length int64) {}
