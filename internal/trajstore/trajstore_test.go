package trajstore

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim"
)

func testMeta() Meta {
	return Meta{
		System:     "lifl",
		Model:      "resnet18",
		Seed:       42,
		Target:     0.70,
		Milestones: []float64{0.5, 0.6},
	}
}

// synthRecord makes a deterministic, non-trivial record stream: rising
// rounds, wobbling accuracy, growing clocks.
func synthRecord(i int) Record {
	return Record{
		Round:     i + 1,
		Acc:       0.05 + 0.7*(1-math.Exp(-float64(i)/50)) + 0.004*math.Sin(float64(i)*1.7),
		Sim:       sim.Duration(i+1) * 17 * sim.Duration(time.Millisecond),
		CPU:       sim.Duration(i+1) * 5 * sim.Duration(time.Millisecond),
		Updates:   120,
		Discarded: i % 3,
		Shares:    i % 7,
	}
}

func writeSynth(t *testing.T, path string, n int, opts Options) {
	t.Helper()
	w, err := Create(path, testMeta(), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(synthRecord(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if got := w.Rounds(); got != n {
		t.Fatalf("Rounds() = %d before Close, want %d", got, n)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func readAll(t *testing.T, path string) (Meta, []Record) {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(recs), err)
		}
		recs = append(recs, rec)
	}
	return r.Meta(), recs
}

func TestRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.traj")
	const n = 1000
	writeSynth(t, path, n, Options{BlockRounds: 64, NoAdvise: true})
	meta, recs := readAll(t, path)

	want := testMeta()
	if meta.System != want.System || meta.Model != want.Model || meta.Seed != want.Seed || meta.Target != want.Target {
		t.Errorf("meta roundtrip mismatch: got %+v want %+v", meta, want)
	}
	if len(meta.Milestones) != 2 || meta.Milestones[0] != 0.5 || meta.Milestones[1] != 0.6 {
		t.Errorf("milestones roundtrip mismatch: %v", meta.Milestones)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if want := synthRecord(i); rec != want {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, rec, want)
		}
	}
}

// TestSealBoundaries pins the block-seal arithmetic at the three shapes
// that historically break chunked encoders: capacity one (every record
// seals), an exact multiple (no remainder block), and a remainder.
func TestSealBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		block int
		n     int
	}{
		{"capacity-one", 1, 7},
		{"exact-multiple", 8, 64},
		{"remainder", 8, 61},
		{"single-short-block", 16, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.traj")
			writeSynth(t, path, tc.n, Options{BlockRounds: tc.block, NoAdvise: true})
			_, recs := readAll(t, path)
			if len(recs) != tc.n {
				t.Fatalf("read %d records, want %d", len(recs), tc.n)
			}
			for i, rec := range recs {
				if want := synthRecord(i); rec != want {
					t.Fatalf("record %d mismatch: got %+v want %+v", i, rec, want)
				}
			}
		})
	}
}

func TestWallColumnOptIn(t *testing.T) {
	dir := t.TempDir()
	withWall := filepath.Join(dir, "wall.traj")
	w, err := Create(withWall, testMeta(), Options{BlockRounds: 4, CaptureWall: true, NoAdvise: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 10; i++ {
		rec := synthRecord(i)
		rec.Wall = time.Duration(i+1) * time.Microsecond
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(withWall)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if !r.HasWall() {
		t.Fatal("HasWall() = false for CaptureWall file")
	}
	for i := 0; i < 10; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if want := time.Duration(i+1) * time.Microsecond; rec.Wall != want {
			t.Fatalf("record %d wall = %v, want %v", i, rec.Wall, want)
		}
	}

	// Default files must not carry the column (that is the determinism
	// contract), and must read back zero walls.
	without := filepath.Join(dir, "nowall.traj")
	writeSynth(t, without, 10, Options{BlockRounds: 4, NoAdvise: true})
	r2, err := Open(without)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r2.Close()
	if r2.HasWall() {
		t.Fatal("HasWall() = true for default file")
	}
}

// TestCorruptionDetected flips one bit in every block-payload byte
// position of a small file in turn and asserts the reader reports a
// format error rather than returning silently wrong records.
func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.traj")
	writeSynth(t, path, 32, Options{BlockRounds: 8, NoAdvise: true})
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Re-read the clean file once to find where blocks start: corrupting
	// the header is detected at Open, block bytes at Next.
	for pos := len(Magic); pos < len(clean); pos += 11 {
		corrupt := append([]byte(nil), clean...)
		corrupt[pos] ^= 0x40
		cpath := filepath.Join(t.TempDir(), "corrupt.traj")
		if err := os.WriteFile(cpath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(cpath)
		if err != nil {
			continue // header corruption: detected at Open, good
		}
		sawErr := false
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		r.Close()
		if !sawErr {
			// A flipped bit in a varint length prefix can, rarely, still
			// decode to the same payload split — but the checksum covers
			// every payload byte, so any surviving read must mean the flip
			// landed in dead space. There is none in this format.
			t.Fatalf("bit flip at offset %d went undetected", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.traj")
	writeSynth(t, path, 32, Options{BlockRounds: 8, NoAdvise: true})
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-block (not at a block boundary): reader must error, not EOF.
	tpath := filepath.Join(t.TempDir(), "trunc.traj")
	if err := os.WriteFile(tpath, clean[:len(clean)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(tpath)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("truncated file read to clean EOF")
		}
		if err != nil {
			return // detected
		}
	}
}

func TestOpenRejectsJunk(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.traj")
	if err := os.WriteFile(junk, []byte("this is not a trajectory file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); err == nil {
		t.Fatal("Open accepted junk bytes")
	}
	if _, err := Open(filepath.Join(dir, "missing.traj")); err == nil {
		t.Fatal("Open accepted a missing file")
	}
}

// TestAppendSteadyStateAllocs is the hot-path invariant: once the scratch
// buffers have reached their stable size, Append must not allocate — not
// even on seals.
func TestAppendSteadyStateAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.traj")
	w, err := Create(path, testMeta(), Options{BlockRounds: 32, NoAdvise: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer w.Close()
	// Warm up past several seals so col/payload/out reach capacity.
	i := 0
	for ; i < 256; i++ {
		if err := w.Append(synthRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(320, func() {
		if err := w.Append(synthRecord(i)); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Append allocates %.2f objects/op in steady state, want 0", avg)
	}
}

func TestReplaySummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.traj")
	writeSynth(t, path, 500, Options{BlockRounds: 64, NoAdvise: true})
	s, err := Replay(path, nil)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if s.Rounds != 500 {
		t.Fatalf("Rounds = %d, want 500", s.Rounds)
	}
	if s.First.Round != 1 || s.Last.Round != 500 {
		t.Fatalf("round range [%d, %d], want [1, 500]", s.First.Round, s.Last.Round)
	}
	if !s.Reached {
		t.Fatal("synthetic curve crosses 0.70 but Reached = false")
	}
	if len(s.Crossings) != 2 {
		t.Fatalf("crossings = %d, want 2 (levels 0.5, 0.6)", len(s.Crossings))
	}
	for i, c := range s.Crossings {
		if c.Acc < c.Target {
			t.Errorf("crossing %d: acc %.4f below target %.4f", i, c.Acc, c.Target)
		}
	}
	if s.Crossings[0].Round >= s.Crossings[1].Round {
		t.Errorf("crossings out of order: %d then %d", s.Crossings[0].Round, s.Crossings[1].Round)
	}

	rec, _, err := ReplayAt(path, 250)
	if err != nil {
		t.Fatalf("ReplayAt(250): %v", err)
	}
	if want := synthRecord(249); rec != want {
		t.Fatalf("ReplayAt(250) = %+v, want %+v", rec, want)
	}
	if _, _, err := ReplayAt(path, 501); err == nil {
		t.Fatal("ReplayAt beyond last round succeeded")
	}
}
