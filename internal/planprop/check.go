package planprop

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/placement"
)

// Check walks the plan's normalized schedule through an ElasticRouter over
// an initial population and asserts the routing contract after every push:
//
//   - no client that arrived before the push moves, unless its home cell
//     drained in that push;
//   - every client homed on a drained cell moves, onto a live cell;
//   - the arrived population is conserved across the per-cell counts.
//
// Between pushes a slice of `arrivals` new clients arrives (flash-crowd
// Clients on weight steps arrive too), so epoch sealing is exercised with
// real epoch boundaries. Returns the first violation, or nil.
func Check(plan *core.CellPlan, cells, clients, arrivals int, weights []float64, seed int64) error {
	r, err := placement.NewElasticRouter(cells, weights, seed)
	if err != nil {
		return err
	}
	r.Extend(clients)
	allDrained := map[int]bool{}
	steps := plan.Normalized()
	for i := 0; i < len(steps); {
		j := i
		for j < len(steps) && steps[j].Round == steps[i].Round {
			j++
		}
		push := steps[i:j]
		round := push[0].Round

		before := make([]int, r.Arrived())
		for c := range before {
			before[c] = r.Home(c)
		}
		drained := map[int]bool{}
		burst := 0
		for _, s := range push {
			switch s.Op {
			case core.CellJoin:
				if _, err := r.Join(s.Weight); err != nil {
					return fmt.Errorf("round %d: join: %w", round, err)
				}
				burst += s.Clients
			case core.CellWeight:
				if err := r.SetWeight(s.Cell, s.Weight); err != nil {
					return fmt.Errorf("round %d: weight(%d): %w", round, s.Cell, err)
				}
				burst += s.Clients
			case core.CellDrain:
				if err := r.Drain(s.Cell); err != nil {
					return fmt.Errorf("round %d: drain(%d): %w", round, s.Cell, err)
				}
				drained[s.Cell] = true
				allDrained[s.Cell] = true
			default:
				return fmt.Errorf("round %d: unknown op %q", round, s.Op)
			}
		}

		for c, old := range before {
			now := r.Home(c)
			if drained[old] {
				if allDrained[now] {
					return fmt.Errorf("round %d: client %d re-homed from drained cell %d onto drained cell %d", round, c, old, now)
				}
				continue
			}
			if now != old {
				return fmt.Errorf("round %d: client %d re-homed %d -> %d though cell %d did not drain",
					round, c, old, now, old)
			}
		}
		counts := r.Counts()
		total := 0
		for cell, cnt := range counts {
			total += cnt
			if cnt > 0 && allDrained[cell] {
				return fmt.Errorf("round %d: drained cell %d still counts %d clients", round, cell, cnt)
			}
		}
		if total != r.Arrived() {
			return fmt.Errorf("round %d: population not conserved: %d != %d arrived", round, total, r.Arrived())
		}

		r.Extend(arrivals + burst)
		i = j
	}
	return nil
}
