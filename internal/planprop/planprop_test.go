package planprop

import (
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/flwork"
	"repro/internal/model"
)

// The satellite headline: across 100+ generated plans the router invariant
// holds — adds never re-home existing clients; drains re-home exactly the
// drained cell's clients — with arrivals landing between pushes so epoch
// boundaries are real.
func TestGeneratedPlansRouterInvariants(t *testing.T) {
	shapes := []struct {
		shape   Shape
		weights []float64
	}{
		{Shape{Cells: 2, MaxRound: 30}, nil},
		{Shape{Cells: 4, MaxRound: 40}, []float64{0.4, 0.3, 0.2, 0.1}},
		{Shape{Cells: 4, Quorum: 2, MaxRound: 40}, nil},
		{Shape{Cells: 6, Quorum: 3, MaxRound: 60, MaxSteps: 16}, nil},
	}
	plans := 0
	for _, tc := range shapes {
		for seed := int64(1); seed <= 30; seed++ {
			plan := Generate(tc.shape, seed)
			if err := plan.Validate(); err != nil {
				t.Fatalf("shape %+v seed %d: generator emitted ill-formed plan: %v\nplan: %s",
					tc.shape, seed, err, String(plan))
			}
			if err := Check(plan, tc.shape.Cells, 2000, 37, tc.weights, seed); err != nil {
				t.Errorf("shape %+v seed %d: %v\nplan: %s", tc.shape, seed, err, String(plan))
			}
			plans++
		}
	}
	if plans < 100 {
		t.Fatalf("only %d plans generated; the property needs 100+", plans)
	}
}

// The generator is a pure function of (shape, seed): identical draws twice,
// and the seed stream actually explores the space.
func TestGeneratorDeterministic(t *testing.T) {
	shape := Shape{Cells: 4, Quorum: 2, MaxRound: 40}
	a, b := Generate(shape, 11), Generate(shape, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different plans")
	}
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		distinct[String(Generate(shape, seed))] = true
	}
	if len(distinct) < 15 {
		t.Fatalf("seed stream collapsed: only %d distinct plans in 20 seeds", len(distinct))
	}
}

// Feasible-by-construction is a contract against the fabric, not just the
// router: every generated plan must pass the fabric's wholesale validation
// (cell.PlanDiff dry-runs the same simulation newFabric gates on).
func TestGeneratedPlansPassFabricValidation(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		shape := Shape{Cells: 4, Quorum: 2, MaxRound: 30}
		plan := Generate(shape, seed)
		cfg := core.RunConfig{
			Cells:    &core.CellSpec{Count: shape.Cells, Quorum: shape.Quorum},
			CellPlan: plan,
		}
		pushes, err := cell.PlanDiff(cfg)
		if err != nil {
			t.Errorf("seed %d: fabric rejected a generated plan: %v\nplan: %s", seed, err, String(plan))
			continue
		}
		if len(pushes) == 0 {
			t.Errorf("seed %d: generated plan produced no pushes: %s", seed, String(plan))
		}
	}
}

// One generated plan, run end to end through the fabric, twice: the
// determinism contract must hold for arbitrary generated schedules, not
// just hand-written ones.
func TestGeneratedPlanRunsDeterministically(t *testing.T) {
	plan := Generate(Shape{Cells: 3, MaxRound: 25, MaxSteps: 6}, 7)
	cfg := core.RunConfig{
		Model:          model.ResNet18,
		Clients:        360,
		ActivePerRound: 24,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      60,
		Nodes:          3,
		MC:             60,
		Seed:           7,
		Milestones:     []float64{0.50},
		Cells:          &core.CellSpec{Count: 3},
		CellPlan:       plan,
	}
	rep1, det1, err := cell.Run(cfg)
	if err != nil {
		t.Fatalf("plan %s: %v", String(plan), err)
	}
	rep2, det2, err := cell.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep1.RoundWallTotal, rep1.RoundWallMax = 0, 0
	rep2.RoundWallTotal, rep2.RoundWallMax = 0, 0
	if !reflect.DeepEqual(rep1, rep2) || !reflect.DeepEqual(det1, det2) {
		t.Fatalf("generated plan ran non-deterministically: %s", String(plan))
	}
	if det1.Plan == nil || det1.Plan.Rejected != "" || det1.Plan.Version == 0 {
		t.Fatalf("generated plan not applied: %+v", det1.Plan)
	}
}
