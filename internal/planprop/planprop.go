package planprop

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Shape bounds the generator: the fabric a plan reconfigures and how wild
// the schedule may get.
type Shape struct {
	// Cells is the fabric's initial cell count (>= 1).
	Cells int
	// Quorum is the fabric's straggler quorum; a generated plan never
	// drains the live set below max(1, Quorum) (the fabric's floor).
	Quorum int
	// MaxRound caps the latest step round (>= 1).
	MaxRound int
	// MaxSteps caps the total step count (default 12).
	MaxSteps int
}

func (s Shape) withDefaults() Shape {
	if s.Cells < 1 {
		s.Cells = 4
	}
	if s.MaxRound < 1 {
		s.MaxRound = 40
	}
	if s.MaxSteps < 1 {
		s.MaxSteps = 12
	}
	return s
}

// floor is the live-cell count a plan must preserve.
func (s Shape) floor() int {
	if s.Quorum > 1 {
		return s.Quorum
	}
	return 1
}

// Generate derives a random feasible plan from the seed: joins with random
// weights and populations, weight changes (some carrying flash-crowd
// arrivals), and drains that respect the live floor. The generator tracks
// the live set while emitting steps, so every plan it returns passes the
// fabric's wholesale validation by construction. Steps are emitted in
// round order but deliberately NOT in canonical within-round order — the
// fabric must normalize.
func Generate(shape Shape, seed int64) *core.CellPlan {
	shape = shape.withDefaults()
	rng := sim.NewRNG(seed)
	live := make(map[int]bool, shape.Cells)
	for k := 0; k < shape.Cells; k++ {
		live[k] = true
	}
	next := shape.Cells // next join id
	liveIDs := func() []int {
		var ids []int
		for id := 0; id < next; id++ {
			if live[id] {
				ids = append(ids, id)
			}
		}
		return ids
	}

	var steps []core.CellPlanStep
	n := 1 + rng.Intn(shape.MaxSteps)
	round := 1 + rng.Intn(3)
	for len(steps) < n && round <= shape.MaxRound {
		// A push carries 1-3 steps at this round.
		burst := 1 + rng.Intn(3)
		for b := 0; b < burst && len(steps) < n; b++ {
			switch op := rng.Intn(3); {
			case op == 0: // join
				steps = append(steps, core.CellPlanStep{
					Round:   round,
					Op:      core.CellJoin,
					Weight:  0.1 + rng.Float64(),
					Clients: rng.Intn(400),
				})
				live[next] = true
				next++
			case op == 1: // weight change, sometimes a flash crowd
				ids := liveIDs()
				target := ids[rng.Intn(len(ids))]
				crowd := 0
				if rng.Intn(3) == 0 {
					crowd = 50 + rng.Intn(500)
				}
				steps = append(steps, core.CellPlanStep{
					Round:   round,
					Op:      core.CellWeight,
					Cell:    target,
					Weight:  0.1 + 2*rng.Float64(),
					Clients: crowd,
				})
			default: // drain, only while above the floor
				ids := liveIDs()
				if len(ids) <= shape.floor() {
					continue
				}
				target := ids[rng.Intn(len(ids))]
				steps = append(steps, core.CellPlanStep{
					Round: round,
					Op:    core.CellDrain,
					Cell:  target,
				})
				delete(live, target)
			}
		}
		round += 1 + rng.Intn(6)
	}
	if len(steps) == 0 {
		// Degenerate draw: emit one join so every generated plan reconfigures.
		steps = append(steps, core.CellPlanStep{Round: 1, Op: core.CellJoin, Weight: 0.5, Clients: 10})
	}
	// Shuffle within the plan to exercise normalization; round stamps keep
	// the schedule itself unchanged.
	rng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
	return &core.CellPlan{Steps: steps}
}

// String renders a plan compactly for failure messages.
func String(p *core.CellPlan) string {
	out := ""
	for _, s := range p.Normalized() {
		switch s.Op {
		case core.CellJoin:
			out += fmt.Sprintf("%d:join(w=%.2f,n=%d) ", s.Round, s.Weight, s.Clients)
		case core.CellWeight:
			out += fmt.Sprintf("%d:weight(%d,w=%.2f,n=%d) ", s.Round, s.Cell, s.Weight, s.Clients)
		case core.CellDrain:
			out += fmt.Sprintf("%d:drain(%d) ", s.Round, s.Cell)
		}
	}
	return out
}
