// Package planprop is the reconfiguration property harness: a seeded
// generator of random — but feasible-by-construction — elastic cell plans
// (core.CellPlan) and an invariant checker that walks a generated plan
// through placement.ElasticRouter, asserting the routing contract the
// elastic fabric is built on:
//
//   - adds never re-home: a join or weight change moves no client that has
//     already arrived;
//   - drains re-home exactly the drained cell's clients, every one of them
//     onto a live cell, conserving the population.
//
// The harness is a first-class deliverable, not test scaffolding: CI runs
// it across 100+ generated plans per seed stream, and the same generator
// feeds fabric-level byte-identity checks (a generated plan, validated by
// cell.PlanDiff, must run deterministically).
package planprop
