package gateway

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/ebpf"
	"repro/internal/model"
	"repro/internal/shm"
	"repro/internal/sim"
)

func rig(nodes int) (*sim.Engine, *cluster.Cluster, []*Gateway) {
	eng := sim.NewEngine()
	c := cluster.New(eng, sim.NewRNG(1), costmodel.Default(), nodes)
	gws := make([]*Gateway, nodes)
	for i, n := range c.Nodes {
		gws[i] = New(n)
	}
	Connect(gws...)
	return eng, c, gws
}

func upd(m model.Spec, w float64) Update {
	return Update{
		Tensor:   m.NewTensor(),
		Weight:   w,
		Size:     m.Bytes(),
		NTensors: 1,
		Round:    1,
		Producer: "client-1",
	}
}

func TestReceiveExternalCommitsToShm(t *testing.T) {
	eng, c, gws := rig(1)
	var key shm.Key
	gws[0].ReceiveExternal(upd(model.ResNet18, 42), func(k shm.Key) { key = k })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Fatal("no commit")
	}
	o, err := c.Nodes[0].Shm.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if o.Weight != 42 || o.Producer != "client-1" {
		t.Fatalf("object: %+v", o)
	}
	if gws[0].Received != 1 {
		t.Fatalf("received = %d", gws[0].Received)
	}
	// The gateway pipeline must have consumed CPU attributed to "gateway".
	if c.Nodes[0].CPUTime("gateway") == 0 {
		t.Fatal("no gateway CPU attribution")
	}
}

func TestOnUpdateDispatch(t *testing.T) {
	eng, _, gws := rig(1)
	var got shm.Key
	gws[0].OnUpdate = func(k shm.Key) { got = k }
	gws[0].ReceiveExternal(upd(model.ResNet18, 1), nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got == "" {
		t.Fatal("OnUpdate not invoked for node-level queue commit")
	}
}

func TestSendRemoteDeliversAndReleasesLocal(t *testing.T) {
	eng, c, gws := rig(2)
	u := upd(model.ResNet152, 7)
	var localKey shm.Key
	gws[0].ReceiveExternal(u, func(k shm.Key) { localKey = k })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	gws[0].SetRoute("agg-top", "node-1")
	var remoteKey shm.Key
	sent := eng.Now()
	if err := gws[0].SendRemote("leaf-0", localKey, "agg-top", func(k shm.Key) { remoteKey = k }); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if remoteKey == "" {
		t.Fatal("no remote delivery")
	}
	// Local object released after serialization; remote object committed.
	if _, err := c.Nodes[0].Shm.Get(localKey); !errors.Is(err, shm.ErrNotFound) {
		t.Fatalf("local object leaked: %v", err)
	}
	o, err := c.Nodes[1].Shm.Get(remoteKey)
	if err != nil {
		t.Fatal(err)
	}
	if o.Weight != 7 {
		t.Fatalf("payload mangled: %+v", o)
	}
	// §6.1: a ResNet-152 relay takes ≈4.2 s unloaded.
	elapsed := eng.Now() - sent
	lo, hi := 3800*sim.Millisecond, 4700*sim.Millisecond
	if elapsed < lo || elapsed > hi {
		t.Fatalf("relay took %v, want ≈4.2s", elapsed)
	}
	if want := UnloadedRelayLatency(c.Nodes[0], u.Size); elapsed != want {
		t.Fatalf("relay %v != analytic %v", elapsed, want)
	}
}

func TestSendRemoteNoRoute(t *testing.T) {
	eng, _, gws := rig(2)
	var key shm.Key
	gws[0].ReceiveExternal(upd(model.ResNet18, 1), func(k shm.Key) { key = k })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if err := gws[0].SendRemote("x", key, "ghost", nil); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestSendRemoteDefaultSockmapDelivery(t *testing.T) {
	eng, c, gws := rig(2)
	var key shm.Key
	gws[0].ReceiveExternal(upd(model.ResNet18, 1), func(k shm.Key) { key = k })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Register the destination aggregator in node-1's sockmap (Fig. 12).
	var delivered ebpf.Message
	c.Nodes[1].SockMap.Register("agg-top", func(m ebpf.Message) { delivered = m })
	gws[0].SetRoute("agg-top", "node-1")
	if err := gws[0].SendRemote("leaf-0", key, "agg-top", nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if delivered.ShmKey == "" || delivered.DstID != "agg-top" || delivered.SrcID != "leaf-0" {
		t.Fatalf("sockmap delivery: %+v", delivered)
	}
}

func TestRouteTableOps(t *testing.T) {
	_, _, gws := rig(2)
	gws[0].SetRoute("a", "node-1")
	gws[0].SetRoute("b", "node-1")
	if gws[0].Routes() != 2 {
		t.Fatalf("routes = %d", gws[0].Routes())
	}
	gws[0].DropRoute("a")
	if gws[0].Routes() != 1 {
		t.Fatalf("routes = %d after drop", gws[0].Routes())
	}
}

func TestVerticalScalingUnderLoad(t *testing.T) {
	eng, _, gws := rig(1)
	g := gws[0]
	if g.Cores() != 1 {
		t.Fatalf("initial cores = %d", g.Cores())
	}
	// Flood the gateway with heavyweight commits; backlog must trigger
	// scale-up (§4.2: the gateway must never become the bottleneck).
	for i := 0; i < 40; i++ {
		i := i
		eng.After(sim.Duration(i)*sim.Second, func() {
			g.ReceiveExternal(upd(model.ResNet152, 1), func(k shm.Key) {})
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if g.Cores() <= 1 {
		t.Fatalf("gateway did not scale up under load (cores=%d)", g.Cores())
	}
	if g.Cores() > costmodel.Default().GatewayCoresMax {
		t.Fatalf("gateway exceeded ceiling (cores=%d)", g.Cores())
	}
}

func TestGatewayMemoryFootprint(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.New(eng, sim.NewRNG(1), costmodel.Default(), 1)
	before := c.Nodes[0].MemUsed()
	New(c.Nodes[0])
	if c.Nodes[0].MemUsed() != before+GatewayMemBytes {
		t.Fatal("stateful tax (resident memory) not charged")
	}
}
