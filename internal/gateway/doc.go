// Package gateway implements LIFL's per-node gateway (§4.2, Appendix C):
// the one stateful data-plane component on each worker node. It receives
// model updates from remote clients (or from peer gateways), performs the
// consolidated one-time payload processing — protocol handling,
// deserialization, tensor→array conversion — and writes the result into the
// node's shared-memory object store, where it is instantly accessible to
// local aggregators ("in-place message queuing"). It also performs
// inter-node routing (Appendix A) using a routing table keyed by aggregator
// ID, and scales its assigned CPU cores vertically with load so it never
// becomes the data-plane bottleneck.
//
// Layer (DESIGN.md): component model under internal/systems — the
// per-node gateway (§4.2): routing, vertical scaling, shm commit.
package gateway
