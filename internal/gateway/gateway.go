package gateway

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ebpf"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// ErrNoRoute is returned when an inter-node destination is unknown.
var ErrNoRoute = errors.New("gateway: no route for destination")

// GatewayMemBytes is the resident footprint of the gateway process — the
// stateful "tax" quantified in Appendix F.1 (lowest among the alternatives).
const GatewayMemBytes = 96 << 20

// Update is a model update as the gateway sees it before shm commit.
type Update struct {
	Tensor   *tensor.Tensor
	Weight   float64 // FedAvg auxiliary info (sample count / child total)
	Size     uint64  // payload bytes on the wire
	NTensors int     // layer count, for per-tensor serialization costs
	Round    int
	Producer string
	DstID    string // destination aggregator ("" = node-level queue)
}

// Gateway is one node's gateway instance.
type Gateway struct {
	Node *cluster.Node

	// cores is the gateway's dedicated CPU station (vertical scaling).
	cores *sim.Station

	// routes maps remote aggregator ID → node name (inter-node table).
	routes map[string]string
	// peers resolves node names to gateways for cross-node sends.
	peers map[string]*Gateway

	// OnUpdate receives the shm key of every update committed locally with
	// no specific destination; the orchestrator wires this to dispatching.
	OnUpdate func(shm.Key)

	// Stats.
	Received   uint64
	SentRemote uint64
	RelayedIn  uint64
	scaleUps   int
	lastScale  sim.Duration
}

// New creates the gateway for a node, charging its resident memory.
func New(n *cluster.Node) *Gateway {
	g := &Gateway{
		Node:   n,
		cores:  sim.NewStation(n.Eng, n.Name+"/gw", n.P.GatewayCores),
		routes: make(map[string]string),
		peers:  make(map[string]*Gateway),
	}
	n.AllocMem(GatewayMemBytes)
	return g
}

// Connect registers peer gateways for inter-node routing.
func Connect(gws ...*Gateway) {
	for _, a := range gws {
		for _, b := range gws {
			a.peers[b.Node.Name] = b
		}
	}
}

// SetRoute installs dstID → nodeName in the inter-node routing table (route
// updates pushed by the control plane on every hierarchy change).
func (g *Gateway) SetRoute(dstID, nodeName string) { g.routes[dstID] = nodeName }

// DropRoute removes a route.
func (g *Gateway) DropRoute(dstID string) { delete(g.routes, dstID) }

// Routes returns the number of installed inter-node routes.
func (g *Gateway) Routes() int { return len(g.routes) }

// Cores returns the gateway's current core assignment.
func (g *Gateway) Cores() int { return g.cores.Servers() }

// BusyTime returns cumulative gateway CPU time.
func (g *Gateway) BusyTime() sim.Duration { return g.cores.BusyTime() }

// exec runs gateway work on the gateway's cores, attributing CPU to the
// node's "gateway" component and auto-scaling vertically on backlog.
func (g *Gateway) exec(demand, cpu sim.Duration, done func()) {
	g.autoscale()
	g.Node.ExecFree("gateway", cpu)
	g.cores.Submit(demand, func(_, _ sim.Duration) {
		if done != nil {
			done()
		}
	})
}

// autoscale applies the vertical scaling policy of §4.2: add a core when the
// backlog exceeds half a second of work, shed back toward the floor when the
// station is fully drained.
func (g *Gateway) autoscale() {
	p := g.Node.P
	now := g.Node.Eng.Now()
	// Rate-limited: core reassignment is a control-plane action, not
	// instantaneous — at most one core per second.
	if g.cores.NextFreeIn() > 500*sim.Millisecond && g.cores.Servers() < p.GatewayCoresMax &&
		(g.scaleUps == 0 || now-g.lastScale >= sim.Second) {
		g.cores.Resize(g.cores.Servers() + 1)
		g.scaleUps++
		g.lastScale = now
	}
}

// ReceiveExternal ingests a client upload: wire time on the node ingress
// NIC, kernel RX, then the gateway RX pipeline (deserialize + data-type
// conversion + shm write, Appendix C). committed fires with the shm key once
// the update is queued in place.
func (g *Gateway) ReceiveExternal(u Update, committed func(shm.Key)) {
	p := g.Node.P
	rxLat, rxCPU := p.KernelTraversal(u.Size)
	g.Node.Ingress.Transfer(u.Size, func(_, _ sim.Duration) {
		g.Node.KernelExec("gateway", rxLat, rxCPU, func(_, _ sim.Duration) {
			g.commit(u, committed)
		})
	})
}

// commit runs the one-time payload processing and writes the update into
// shared memory.
func (g *Gateway) commit(u Update, committed func(shm.Key)) {
	p := g.Node.P
	desLat, desCPU := p.Deserialize(u.Size, u.NTensors)
	shmLat, shmCPU := p.ShmWrite(u.Size)
	g.exec(desLat+shmLat, desCPU+shmCPU, func() {
		key, err := g.Node.Shm.Put(u.Tensor, u.Weight, u.Producer, u.Round)
		if err != nil {
			// Out of space is a modelling bug at experiment scale.
			panic(fmt.Sprintf("gateway %s: %v", g.Node.Name, err))
		}
		g.Received++
		if committed != nil {
			committed(key)
		} else if g.OnUpdate != nil {
			g.OnUpdate(key)
		}
	})
}

// SendRemote transfers the object behind key to dstID on another node
// (Appendix A inter-node routing): read from local shm, serialize + kernel
// TX on this gateway, wire, then the remote gateway re-commits the payload
// into its own shm and notifies the destination aggregator through its
// SKMSG/sockmap channel. The local reference is released after the read.
// delivered fires with the *remote* shm key.
func (g *Gateway) SendRemote(srcID string, key shm.Key, dstID string, delivered func(shm.Key)) error {
	nodeName, ok := g.routes[dstID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoute, dstID)
	}
	peer, ok := g.peers[nodeName]
	if !ok {
		return fmt.Errorf("gateway: route for %s names unknown node %s", dstID, nodeName)
	}
	obj, err := g.Node.Shm.Get(key)
	if err != nil {
		return err
	}
	p := g.Node.P
	u := Update{
		Tensor:   obj.Tensor,
		Weight:   obj.Weight,
		Size:     obj.Size,
		NTensors: 1,
		Round:    obj.Round,
		Producer: srcID,
		DstID:    dstID,
	}
	serLat, serCPU := p.Serialize(obj.Size, u.NTensors)
	txLat, txCPU := p.KernelTraversal(obj.Size)
	// Reading the payload out of shared memory for serialization is a real
	// copy in the reference implementation (Python multiprocessing pool).
	readLat, readCPU := p.ShmWrite(obj.Size)
	g.exec(readLat+serLat, readCPU+serCPU, func() {
		g.SentRemote++
		// Payload leaves local shm once serialized out.
		if err := g.Node.Shm.Release(key); err != nil {
			panic(fmt.Sprintf("gateway %s: release: %v", g.Node.Name, err))
		}
		g.Node.KernelExec("gateway", txLat, txCPU, func(_, _ sim.Duration) {
			g.Node.Egress.Transfer(u.Size, func(_, _ sim.Duration) {
				peer.Node.Ingress.Transfer(u.Size, func(_, _ sim.Duration) {
					peer.receiveRelay(u, delivered)
				})
			})
		})
	})
	return nil
}

// receiveRelay is the remote half of SendRemote: kernel RX + re-commit to
// local shm + SKMSG notification of the destination aggregator.
func (g *Gateway) receiveRelay(u Update, delivered func(shm.Key)) {
	p := g.Node.P
	rxLat, rxCPU := p.KernelTraversal(u.Size)
	g.Node.KernelExec("gateway", rxLat, rxCPU, func(_, _ sim.Duration) {
		g.commit(u, func(key shm.Key) {
			g.RelayedIn++
			if delivered != nil {
				delivered(key)
				return
			}
			// Default: notify via the node's sockmap, as in Fig. 12.
			if sock, ok := g.Node.SockMap.Lookup(u.DstID); ok {
				sock.Deliver(ebpf.Message{
					SrcID: u.Producer, DstID: u.DstID,
					ShmKey: key, Size: 16, Round: u.Round, Kind: "update",
				})
			}
		})
	})
}

// UnloadedRelayLatency reports the zero-contention latency of a full
// gateway-to-gateway transfer of size bytes — the §6.1 "≈4.2 s for
// ResNet-152 across nodes" calibration point.
func UnloadedRelayLatency(n *cluster.Node, size uint64) sim.Duration {
	p := n.P
	serLat, _ := p.Serialize(size, 1)
	txLat, _ := p.KernelTraversal(size)
	rxLat, _ := p.KernelTraversal(size)
	desLat, _ := p.Deserialize(size, 1)
	shmLat, _ := p.ShmWrite(size)
	// shm appears twice: the sender reads the payload out for serialization
	// and the receiver re-commits it in place. Wire time appears twice: the
	// payload occupies both the sender egress and receiver ingress NICs.
	return shmLat + serLat + txLat + 2*p.WireTime(size) + 2*p.NICLatency + rxLat + desLat + shmLat
}
