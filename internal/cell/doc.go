// Package cell is the multi-cell federation fabric: the sixth deployment
// shape, layered above whole systems. A Fabric owns K cells — independent
// LIFL (or baseline) instances, each with its own cluster, topology and
// gateway stack — and stitches them together with a deterministic locality
// router (clients are homed on cells by region weight, seed-stable) and a
// per-round cross-cell aggregation tier that folds the K cell-level
// aggregates into the global model through aggcore's eager pipeline with
// one fused tensor.ScaleAdd install per round. With K = 1 the tier
// vanishes and a fixed-seed run is byte-identical to the plain
// single-cluster run (TestFabricK1MatchesPlainRun).
//
// The fabric also carries the cell-outage path: cells heartbeat the
// fabric's control plane; a silent cell is declared dead one sweep past
// the timeout, and then — per the straggler-cell policy — either its
// partial round is discarded and its clients re-route to the surviving
// cells (quorum), or a replacement is restored from the cell's last
// durable checkpoint and the interrupted round replayed (wait-all).
// Because each cell steps through Platform.StepRound, cells retire
// closed rounds' control-plane records like any run (RetainRounds);
// the checkpoint store always pins its newest snapshot, so a wait-all
// restore works even when the outage lands past the retention window
// (TestFabricRestorePastRetentionWindow).
//
// The fabric is elastic (RunConfig.CellPlan): round-stamped
// join/drain/weight steps, grouped by round into versioned config pushes,
// reconfigure it live. The whole schedule is statically simulated before
// round 1 and rejected wholesale if any step is infeasible — the run then
// proceeds byte-identical to an unplanned run (last-known-good), with the
// reason in Detail.Plan. Validator and runtime share one pure
// reconfigure() function so acceptance cannot drift from application;
// PlanDiff exposes the same simulation as a dry run. Joins never re-home
// arrived clients (placement.ElasticRouter's epoch contract), drains bank
// the cell's accounting and re-home its clients across the survivors'
// routing weights, and determinism holds under a live plan: fixed seed ⇒
// byte-identical Reports and .traj files for any worker count, retention
// window, or permutation of an equivalent schedule
// (TestCellPlanByteIdenticalReports, internal/planprop).
//
// Layer (DESIGN.md): above internal/core, beside internal/harness — it
// drives per-cell core.Platforms round by round via Platform.StepRound,
// and harness sweeps dispatch RunConfigs with Cells set here. Cells are
// built and stepped concurrently (RunConfig.Workers, via internal/par):
// each cell owns a private engine, the cross-cell tier is the only
// barrier, and contributions fold in cell-index order, so the merged
// Report is byte-identical for any worker count
// (TestFabricWorkersByteIdentical).
//
// With RunConfig.Telemetry set, the fabric publishes fabric/* metrics
// (rounds, folded shares, per-cell share gauges, outage and plan-push
// counters) and per-round envelope spans from its serial global loop,
// and hands each cell a prefixed Sub("cell/<id>/") registry view —
// shared atomic store, disjoint names, no span log, so parallel cell
// stepping stays race-free (internal/obs documents the contract).
package cell
