// Package cell is the multi-cell federation fabric: the sixth deployment
// shape, layered above whole systems. A Fabric owns K cells — independent
// LIFL (or baseline) instances, each with its own cluster, topology and
// gateway stack — and stitches them together with a deterministic locality
// router (clients are homed on cells by region weight, seed-stable) and a
// per-round cross-cell aggregation tier that folds the K cell-level
// aggregates into the global model through aggcore's eager pipeline with
// one fused tensor.ScaleAdd install per round. With K = 1 the tier
// vanishes and a fixed-seed run is byte-identical to the plain
// single-cluster run (TestFabricK1MatchesPlainRun).
//
// The fabric also carries the cell-outage path: cells heartbeat the
// fabric's control plane; a silent cell is declared dead one sweep past
// the timeout, and then — per the straggler-cell policy — either its
// partial round is discarded and its clients re-route to the surviving
// cells (quorum), or a replacement is restored from the cell's last
// durable checkpoint and the interrupted round replayed (wait-all).
// Because each cell steps through Platform.StepRound, cells retire
// closed rounds' control-plane records like any run (RetainRounds);
// the checkpoint store always pins its newest snapshot, so a wait-all
// restore works even when the outage lands past the retention window
// (TestFabricRestorePastRetentionWindow).
//
// Layer (DESIGN.md): above internal/core, beside internal/harness — it
// drives per-cell core.Platforms round by round via Platform.StepRound,
// and harness sweeps dispatch RunConfigs with Cells set here. Cells are
// built and stepped concurrently (RunConfig.Workers, via internal/par):
// each cell owns a private engine, the cross-cell tier is the only
// barrier, and contributions fold in cell-index order, so the merged
// Report is byte-identical for any worker count
// (TestFabricWorkersByteIdentical).
package cell
