package cell

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/flwork"
	"repro/internal/model"
)

// baseCfg is a trimmed fig9-r18-shaped workload: small enough to run in
// tens of milliseconds, large enough for real hierarchies in every cell.
func baseCfg() core.RunConfig {
	return core.RunConfig{
		Model:          model.ResNet18,
		Clients:        360,
		ActivePerRound: 24,
		Class:          flwork.Mobile,
		TargetAccuracy: 0.70,
		MaxRounds:      95,
		Nodes:          3,
		MC:             60,
		Seed:           7,
		Milestones:     []float64{0.50, 0.70},
	}
}

// stripWall zeroes the real-clock channels, which legitimately differ
// between any two executions.
func stripWall(r *core.Report) {
	r.RoundWallTotal = 0
	r.RoundWallMax = 0
}

// The fabric's golden rule: one cell is no fabric at all. A K=1 run must
// produce a Report byte-identical to core.Run on the identical config —
// same rounds, same simulated times, same CPU, same final model.
func TestFabricK1MatchesPlainRun(t *testing.T) {
	cfg := baseCfg()
	plain, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Cells = &core.CellSpec{Count: 1}
	rep, det, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Reached || !rep.Reached {
		t.Fatalf("runs did not reach target: plain %v fabric %v", plain.Reached, rep.Reached)
	}
	stripWall(plain)
	stripWall(rep)
	if !reflect.DeepEqual(plain, rep) {
		t.Fatalf("K=1 fabric diverged from plain run:\nplain:  rounds=%d elapsed=%v cpu=%v tta=%v acc[last]=%+v\nfabric: rounds=%d elapsed=%v cpu=%v tta=%v acc[last]=%+v",
			plain.RoundsRun, plain.Elapsed, plain.CPUTotal, plain.TimeToTarget, plain.Acc[len(plain.Acc)-1],
			rep.RoundsRun, rep.Elapsed, rep.CPUTotal, rep.TimeToTarget, rep.Acc[len(rep.Acc)-1])
	}
	if len(det.Cells) != 1 || det.Cells[0].Clients != cfg.Clients || det.Cells[0].ActivePerRound != cfg.ActivePerRound {
		t.Fatalf("K=1 detail wrong: %+v", det.Cells)
	}
}

// A 4-cell skewed-region fabric: the router must conserve the population,
// the shares must sum to the active quota, the run must converge, and two
// executions must be byte-identical (fixed seed).
func TestFabricGeoRunDeterministic(t *testing.T) {
	cfg := baseCfg()
	cfg.Cells = &core.CellSpec{Count: 4, Regions: []float64{0.4, 0.3, 0.2, 0.1}}
	rep1, det1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, det2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(rep1)
	stripWall(rep2)
	if !reflect.DeepEqual(rep1, rep2) || !reflect.DeepEqual(det1, det2) {
		t.Fatal("fabric run not deterministic across executions")
	}
	if !rep1.Reached {
		t.Fatalf("geo run did not reach target in %d rounds", rep1.RoundsRun)
	}
	clients, shares := 0, 0
	for _, c := range det1.Cells {
		clients += c.Clients
		shares += c.ActivePerRound
		if c.RoundsRun != rep1.RoundsRun {
			t.Fatalf("cell %d ran %d rounds, fabric %d", c.Cell, c.RoundsRun, rep1.RoundsRun)
		}
	}
	if clients != cfg.Clients {
		t.Fatalf("router lost clients: %d != %d", clients, cfg.Clients)
	}
	if shares != cfg.ActivePerRound {
		t.Fatalf("shares %d != active quota %d", shares, cfg.ActivePerRound)
	}
	// Skewed regions must produce skewed populations, largest first region.
	if !(det1.Cells[0].Clients > det1.Cells[3].Clients) {
		t.Fatalf("region skew not reflected: %+v", det1.Cells)
	}
	if det1.CrossCellBytes == 0 {
		t.Fatal("no cross-cell traffic recorded")
	}
	// The cross-cell tier costs real simulated time: a federated run is
	// slower than the single-cluster run of the same workload.
	plain, err := core.Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.TimeToTarget <= plain.TimeToTarget {
		t.Fatalf("federation was free: fabric tta %v <= plain tta %v", rep1.TimeToTarget, plain.TimeToTarget)
	}
}

// Quorum policy under an outage: the dead cell is detected by heartbeat,
// its partial round is discarded (the lost share visibly slows the
// accuracy credit), its clients re-route to the survivors, and the run
// converges at a measurable time-to-accuracy penalty against the healthy
// fabric — the quantity the cell-outage scenario compares across the two
// policies.
func TestFabricQuorumOutage(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxRounds = 160
	healthy := cfg
	healthy.Cells = &core.CellSpec{Count: 4, Quorum: 3}
	base, _, err := Run(healthy)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.CellSpec{Count: 4, Quorum: 3, OutageRound: 20, OutageCell: 1}
	cfg.Cells = &spec
	rep, det, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Reached || !rep.Reached {
		t.Fatalf("reached: healthy %v outage %v (rounds %d)", base.Reached, rep.Reached, rep.RoundsRun)
	}
	// The discarded partial round costs real credit: the outage round's
	// accuracy must fall behind the healthy run's and the run must take
	// longer to the target.
	or, br := spec.OutageRound-1, spec.OutageRound-1
	if rep.Acc[or].Accuracy >= base.Acc[br].Accuracy {
		t.Fatalf("discarded round cost no credit: outage acc %v >= healthy %v",
			rep.Acc[or].Accuracy, base.Acc[br].Accuracy)
	}
	if rep.TimeToTarget <= base.TimeToTarget {
		t.Fatalf("quorum outage was free: %v <= healthy %v", rep.TimeToTarget, base.TimeToTarget)
	}
	c := det.Cells[1]
	if !c.Dead || c.DiedRound != 20 || c.RestoredRound != 0 {
		t.Fatalf("outage cell state wrong: %+v", c)
	}
	if c.Clients != 0 || c.ActivePerRound != 0 {
		t.Fatalf("dead cell kept load: %+v", c)
	}
	if c.RoundsDiscarded != 1 || det.CellRoundsDiscarded != 1 {
		t.Fatalf("partial round not discarded: %+v", c)
	}
	if det.OutageDetectedAt == 0 {
		t.Fatal("outage never detected")
	}
	if det.ReRoutedClients == 0 {
		t.Fatal("no clients re-routed")
	}
	reclients, shares := 0, 0
	for _, cr := range det.Cells {
		reclients += cr.Clients
		shares += cr.ActivePerRound
	}
	if reclients != cfg.Clients {
		t.Fatalf("re-route lost clients: %d != %d", reclients, cfg.Clients)
	}
	if shares != cfg.ActivePerRound {
		t.Fatalf("re-apportioned shares %d != quota %d", shares, cfg.ActivePerRound)
	}
	// The two policies pay their penalties in different places: wait-all
	// concentrates its whole cost in the blocked round (detection +
	// checkpoint fetch + cold restart + replay), while quorum masking
	// spreads a smaller per-round cost after the reroute. The outage
	// round itself must therefore be far longer under wait-all.
	wcfg := cfg
	wspec := spec
	wspec.Quorum = 0
	wcfg.Cells = &wspec
	wrep, _, err := Run(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !wrep.Reached {
		t.Fatal("wait-all outage run did not converge")
	}
	qr := rep.Rounds[spec.OutageRound-1]
	wr := wrep.Rounds[spec.OutageRound-1]
	if qs, ws := qr.End-qr.Start, wr.End-wr.Start; qs >= ws {
		t.Fatalf("quorum did not mask the blocked round: quorum span %v >= wait-all span %v", qs, ws)
	}
}

// Wait-all policy under an outage: the fabric blocks the round, restores a
// replacement from the cell's last durable checkpoint (written mid-run,
// while rounds kept loading the store — the Appendix B path), replays the
// interrupted round, and the resumed run's tail matches an uninterrupted
// run round for round.
func TestFabricWaitAllRestoreUnderLoad(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxRounds = 110
	cfg.Cells = &core.CellSpec{Count: 3}
	base, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := cfg
	spec := *cfg.Cells
	spec.OutageRound = 25 // after the round-20 checkpoint, mid-period
	spec.OutageCell = 2
	ocfg.Cells = &spec
	rep, det, err := Run(ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Reached || !rep.Reached {
		t.Fatalf("reached: base %v outage %v", base.Reached, rep.Reached)
	}
	c := det.Cells[2]
	if c.Dead {
		t.Fatalf("wait-all cell stayed dead: %+v", c)
	}
	if c.DiedRound != 25 || c.RestoredRound != 25 {
		t.Fatalf("restore rounds wrong: %+v", c)
	}
	if c.Checkpoints == 0 {
		t.Fatal("cell never checkpointed; restore had nothing to round-trip")
	}
	if det.ReRoutedClients != 0 {
		t.Fatal("wait-all must keep clients homed on the restored cell")
	}
	// Full participation resumes after the replay: the accuracy trajectory
	// (a pure function of folded shares) must match the uninterrupted run
	// point for point, so both runs take the same number of rounds...
	if base.RoundsRun != rep.RoundsRun {
		t.Fatalf("rounds diverged: base %d outage %d", base.RoundsRun, rep.RoundsRun)
	}
	for i := range base.Acc {
		if base.Acc[i].Accuracy != rep.Acc[i].Accuracy {
			t.Fatalf("tail accuracy diverged at round %d: %v vs %v", base.Acc[i].Round, base.Acc[i].Accuracy, rep.Acc[i].Accuracy)
		}
		if base.Rounds[i].Updates != rep.Rounds[i].Updates {
			t.Fatalf("tail updates diverged at round %d: %d vs %d", i+1, base.Rounds[i].Updates, rep.Rounds[i].Updates)
		}
	}
	// ...while the detection + checkpoint fetch + cold restart + replay all
	// cost simulated time: the interrupted round is visibly longer.
	or := rep.Rounds[spec.OutageRound-1]
	br := base.Rounds[spec.OutageRound-1]
	if or.End-or.Start <= br.End-br.Start {
		t.Fatalf("restore was free: outage round span %v <= healthy %v", or.End-or.Start, br.End-br.Start)
	}
	if rep.TimeToTarget <= base.TimeToTarget {
		t.Fatalf("outage was free: %v <= %v", rep.TimeToTarget, base.TimeToTarget)
	}
}

// Construction-time validation: the fabric rejects what it cannot
// federate, and core.Run refuses to silently ignore a cell config.
func TestFabricValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.Cells = &core.CellSpec{Count: 2}
	if _, err := core.Run(cfg); err == nil || !strings.Contains(err.Error(), "internal/cell") {
		t.Fatalf("core.Run accepted a cell config: %v", err)
	}
	bad := []core.CellSpec{
		{Count: 0},
		{Count: 2, Regions: []float64{1}},
		{Count: 2, Regions: []float64{0, 0}},
		{Count: 2, Quorum: 3},
		{Count: 1, OutageRound: 5},
		{Count: 2, OutageRound: 5, OutageCell: 2},
		{Count: 2, OutageRound: 5, OutageCell: 0, Quorum: 2},
	}
	for i, spec := range bad {
		s := spec
		c := baseCfg()
		c.Cells = &s
		if _, _, err := Run(c); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
	// Hand-built Params without the inter-cell fields must be refused, not
	// divided by.
	zcfg := baseCfg()
	zcfg.Params = costmodel.Default()
	zcfg.Params.InterCellBandwidth = 0
	zcfg.Cells = &core.CellSpec{Count: 2}
	if _, _, err := Run(zcfg); err == nil || !strings.Contains(err.Error(), "bandwidth") {
		t.Fatalf("zero inter-cell bandwidth accepted: %v", err)
	}
	acfg := baseCfg()
	acfg.System = core.SystemAsync
	acfg.Cells = &core.CellSpec{Count: 2}
	if _, _, err := Run(acfg); err == nil {
		t.Fatal("async cells accepted")
	}
	icfg := baseCfg()
	icfg.Clients = 0
	icfg.Inject = &core.InjectSpec{Updates: 10}
	icfg.Cells = &core.CellSpec{Count: 2}
	if _, _, err := Run(icfg); err == nil {
		t.Fatal("injected cells accepted")
	}
}

// apportion is the fabric's share arithmetic; its sums must be exact.
func TestApportion(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{120, []float64{1, 1, 1, 1}, []int{30, 30, 30, 30}},
		{10, []float64{3, 1}, []int{8, 2}}, // 7.5/2.5 → remainders tie-break by index? no: .5 vs .5 → index order
		{7, []float64{1, 1, 1}, []int{3, 2, 2}},
		{5, []float64{0, 1}, []int{0, 5}},
		{0, []float64{1, 2}, []int{0, 0}},
	}
	for i, c := range cases {
		got := apportion(c.total, c.weights)
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("case %d: apportion(%d, %v) = %v, want %v", i, c.total, c.weights, got, c.want)
		}
		sum := 0
		for _, v := range got {
			sum += v
		}
		if c.total > 0 && sum != c.total {
			t.Fatalf("case %d: shares sum %d != %d", i, sum, c.total)
		}
	}
}

// Wait-all restore at the edge of the retention window: with the default
// RetainRounds the cells have long since retired the control-plane records
// of the round that wrote the last checkpoint (round 20 under the default
// 10-round period) by the time the outage hits at round 29 — yet the
// restore must still replay from that checkpoint, because the store's
// retirement always pins the newest snapshot. And since retirement is pure
// bookkeeping, the interrupted run must be byte-identical whether the
// cells retire aggressively or not at all.
func TestFabricRestorePastRetentionWindow(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxRounds = 110
	spec := core.CellSpec{Count: 3, OutageRound: 29, OutageCell: 1}
	cfg.Cells = &spec

	run := func(retain int) (*core.Report, *Detail) {
		c := cfg
		c.RetainRounds = retain
		rep, det, err := Run(c)
		if err != nil {
			t.Fatalf("retain=%d: %v", retain, err)
		}
		stripWall(rep)
		return rep, det
	}

	rep, det := run(core.DefaultRetainRounds)
	c := det.Cells[1]
	if c.Dead {
		t.Fatalf("wait-all cell stayed dead: %+v", c)
	}
	if c.DiedRound != 29 || c.RestoredRound != 29 {
		t.Fatalf("restore rounds wrong: %+v", c)
	}
	if c.Checkpoints == 0 {
		t.Fatal("cell never checkpointed; restore had nothing to round-trip")
	}
	if !rep.Reached {
		t.Fatalf("restored run did not reach target in %d rounds", rep.RoundsRun)
	}

	repOff, detOff := run(-1)
	if !reflect.DeepEqual(rep, repOff) || !reflect.DeepEqual(det, detOff) {
		t.Fatalf("restore diverged across retention windows: retain=%d rounds=%d tta=%v vs retain=-1 rounds=%d tta=%v",
			core.DefaultRetainRounds, rep.RoundsRun, rep.TimeToTarget, repOff.RoundsRun, repOff.TimeToTarget)
	}
}
