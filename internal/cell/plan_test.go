package cell

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/trajstore"
)

// geoSpec is the 4-cell skewed-region fabric the plan tests reconfigure.
func geoSpec() *core.CellSpec {
	return &core.CellSpec{Count: 4, Regions: []float64{0.4, 0.3, 0.2, 0.1}}
}

func runPlan(t *testing.T, cfg core.RunConfig) (*core.Report, *Detail) {
	t.Helper()
	rep, det, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(rep)
	return rep, det
}

// The elastic acceptance gate: a plan with no steps is no plan at all. The
// Report AND the Detail must be byte-identical between a nil plan, an
// empty plan, and a zero-step plan — nothing in the fabric may even
// observe that a CellPlan pointer existed.
func TestCellPlanNoOpByteIdentical(t *testing.T) {
	cfg := baseCfg()
	cfg.Cells = geoSpec()
	repNone, detNone := runPlan(t, cfg)

	empty := cfg
	empty.CellPlan = &core.CellPlan{}
	repEmpty, detEmpty := runPlan(t, empty)
	if !reflect.DeepEqual(repNone, repEmpty) || !reflect.DeepEqual(detNone, detEmpty) {
		t.Fatal("empty plan diverged from no plan")
	}

	zero := cfg
	zero.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{}}
	repZero, detZero := runPlan(t, zero)
	if !reflect.DeepEqual(repNone, repZero) || !reflect.DeepEqual(detNone, detZero) {
		t.Fatal("zero-step plan diverged from no plan")
	}
}

// Last-known-good semantics: an invalid plan is rejected wholesale before
// the first round, the rejection is recorded, and the run is byte-identical
// to the same config with no plan at all — the fabric never half-applies.
func TestCellPlanRejectedByteIdentical(t *testing.T) {
	outage := *geoSpec()
	outage.Quorum = 2
	outage.OutageRound = 20
	outage.OutageCell = 1
	cases := []struct {
		name string
		spec core.CellSpec
		plan core.CellPlan
	}{
		{"drain-unknown-cell", *geoSpec(), core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 10, Op: core.CellDrain, Cell: 9},
		}}},
		{"double-drain", *geoSpec(), core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 10, Op: core.CellDrain, Cell: 1},
			{Round: 20, Op: core.CellDrain, Cell: 1},
		}}},
		{"weight-on-drained-cell", *geoSpec(), core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 10, Op: core.CellDrain, Cell: 1},
			{Round: 20, Op: core.CellWeight, Cell: 1, Weight: 2},
		}}},
		{"zero-weight-join", *geoSpec(), core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 10, Op: core.CellJoin, Weight: 0, Clients: 50},
		}}},
		{"unknown-op", *geoSpec(), core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 10, Op: "rename", Cell: 0},
		}}},
		{"round-zero", *geoSpec(), core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 0, Op: core.CellDrain, Cell: 1},
		}}},
		// Draining below the quorum floor is statically infeasible.
		{"below-quorum-floor", outage, core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 5, Op: core.CellDrain, Cell: 0},
			{Round: 6, Op: core.CellDrain, Cell: 2},
		}}},
		// The plan retires the cell the outage is scheduled to kill.
		{"drain-of-outage-cell", outage, core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 5, Op: core.CellDrain, Cell: 1},
		}}},
		// Draining a cell the outage already killed (quorum masks at r20).
		{"drain-of-dead-cell", outage, core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 40, Op: core.CellDrain, Cell: 1},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseCfg()
			spec := tc.spec
			cfg.Cells = &spec
			repNone, detNone := runPlan(t, cfg)

			pcfg := cfg
			plan := tc.plan
			pcfg.CellPlan = &plan
			rep, det := runPlan(t, pcfg)
			if det.Plan == nil || det.Plan.Rejected == "" {
				t.Fatalf("invalid plan not rejected: %+v", det.Plan)
			}
			if det.Plan.Version != 0 || len(det.Plan.Pushes) != 0 || det.Plan.CellsJoined != 0 || det.Plan.CellsDrained != 0 {
				t.Fatalf("rejected plan was partially applied: %+v", det.Plan)
			}
			det.Plan = nil
			if !reflect.DeepEqual(repNone, rep) || !reflect.DeepEqual(detNone, det) {
				t.Fatal("rejected plan diverged from no plan (last-known-good broken)")
			}
		})
	}
}

// A live join + drain schedule end to end: the fabric grows, shrinks, keeps
// every client homed somewhere, keeps the quota conserved, and the whole
// run is deterministic across executions.
func TestCellPlanJoinDrainRun(t *testing.T) {
	cfg := baseCfg()
	cfg.Cells = geoSpec()
	cfg.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: 10, Op: core.CellJoin, Weight: 0.25, Clients: 90},
		{Round: 20, Op: core.CellDrain, Cell: 3},
	}}
	rep1, det1 := runPlan(t, cfg)
	rep2, det2 := runPlan(t, cfg)
	if !reflect.DeepEqual(rep1, rep2) || !reflect.DeepEqual(det1, det2) {
		t.Fatal("planned run not deterministic across executions")
	}
	if !rep1.Reached {
		t.Fatalf("planned run did not reach target in %d rounds", rep1.RoundsRun)
	}
	p := det1.Plan
	if p == nil || p.Rejected != "" {
		t.Fatalf("plan not applied: %+v", p)
	}
	if p.Version != 2 || len(p.Pushes) != 2 || p.CellsJoined != 1 || p.CellsDrained != 1 {
		t.Fatalf("plan outcome wrong: %+v", p)
	}
	if p.Pushes[0].Round != 10 || p.Pushes[1].Round != 20 || len(p.Pushes[0].Diff) == 0 {
		t.Fatalf("push records wrong: %+v", p.Pushes)
	}
	if len(det1.Cells) != 5 {
		t.Fatalf("expected 5 cell reports, got %d", len(det1.Cells))
	}
	joined := det1.Cells[4]
	if joined.JoinedRound != 10 || joined.Drained || joined.Dead {
		t.Fatalf("joined cell state wrong: %+v", joined)
	}
	if joined.RoundsRun == 0 || joined.RoundsRun >= rep1.RoundsRun {
		t.Fatalf("joined cell ran %d of %d rounds", joined.RoundsRun, rep1.RoundsRun)
	}
	drained := det1.Cells[3]
	if !drained.Drained || drained.DrainedRound != 20 || drained.Dead {
		t.Fatalf("drained cell state wrong: %+v", drained)
	}
	if drained.Clients != 0 || drained.ActivePerRound != 0 {
		t.Fatalf("drained cell kept load: %+v", drained)
	}
	if drained.RoundsRun != 19 {
		t.Fatalf("drained cell ran %d rounds, want 19 (drain lands at round 20's start)", drained.RoundsRun)
	}
	clients, shares := 0, 0
	for _, c := range det1.Cells {
		clients += c.Clients
		shares += c.ActivePerRound
	}
	if clients != cfg.Clients+90 {
		t.Fatalf("fabric lost clients: %d != %d", clients, cfg.Clients+90)
	}
	if shares != cfg.ActivePerRound {
		t.Fatalf("shares %d != quota %d after reconfiguration", shares, cfg.ActivePerRound)
	}
}

// Canonical ordering: two plans that are permutations of the same schedule
// are the same plan — byte-identical Report and Detail.
func TestCellPlanEquivalentSchedules(t *testing.T) {
	cfg := baseCfg()
	cfg.Cells = geoSpec()
	steps := []core.CellPlanStep{
		{Round: 10, Op: core.CellJoin, Weight: 0.25, Clients: 90},
		{Round: 10, Op: core.CellWeight, Cell: 0, Weight: 0.5},
		{Round: 10, Op: core.CellDrain, Cell: 3},
		{Round: 18, Op: core.CellWeight, Cell: 1, Weight: 1.2, Clients: 40},
	}
	cfg.CellPlan = &core.CellPlan{Steps: steps}
	rep, det := runPlan(t, cfg)

	perm := cfg
	perm.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{steps[3], steps[2], steps[1], steps[0]}}
	repP, detP := runPlan(t, perm)
	if !reflect.DeepEqual(rep, repP) || !reflect.DeepEqual(det, detP) {
		t.Fatal("permuted schedule diverged from canonical order")
	}
	if det.Plan == nil || det.Plan.Rejected != "" || det.Plan.Version != 2 {
		t.Fatalf("plan outcome wrong: %+v", det.Plan)
	}
}

// Fault injection: the outage lands on the same round as a config push —
// the push (a drain of one cell, a join in the second case) applies at the
// round's start, then the outage kills another cell mid-round. The fabric
// must keep both books straight: drained vs dead, re-homed vs re-routed.
func TestCellPlanOutageMidDrain(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxRounds = 160
	spec := *geoSpec()
	spec.Quorum = 2
	spec.OutageRound = 20
	spec.OutageCell = 2
	cfg.Cells = &spec

	t.Run("drain-at-outage-round", func(t *testing.T) {
		c := cfg
		c.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 20, Op: core.CellDrain, Cell: 1},
		}}
		rep1, det1 := runPlan(t, c)
		rep2, det2 := runPlan(t, c)
		if !reflect.DeepEqual(rep1, rep2) || !reflect.DeepEqual(det1, det2) {
			t.Fatal("outage-mid-drain run not deterministic")
		}
		if !rep1.Reached {
			t.Fatalf("run did not reach target in %d rounds", rep1.RoundsRun)
		}
		dr, dd := det1.Cells[1], det1.Cells[2]
		if !dr.Drained || dr.DrainedRound != 20 || dr.Dead {
			t.Fatalf("drained cell state wrong: %+v", dr)
		}
		if !dd.Dead || dd.DiedRound != 20 || dd.Drained {
			t.Fatalf("dead cell state wrong: %+v", dd)
		}
		if dd.RoundsDiscarded != 1 || det1.CellRoundsDiscarded != 1 {
			t.Fatalf("outage partial round not discarded: %+v", dd)
		}
		if det1.ReRoutedClients == 0 {
			t.Fatal("outage re-route never happened")
		}
		clients, shares := 0, 0
		for _, cr := range det1.Cells {
			clients += cr.Clients
			shares += cr.ActivePerRound
		}
		if clients != cfg.Clients {
			t.Fatalf("clients lost across drain+outage: %d != %d", clients, cfg.Clients)
		}
		if shares != cfg.ActivePerRound {
			t.Fatalf("shares %d != quota %d after drain+outage", shares, cfg.ActivePerRound)
		}
	})

	t.Run("join-at-outage-round", func(t *testing.T) {
		c := cfg
		c.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
			{Round: 20, Op: core.CellJoin, Weight: 0.3, Clients: 120},
		}}
		rep, det := runPlan(t, c)
		if !rep.Reached {
			t.Fatalf("run did not reach target in %d rounds", rep.RoundsRun)
		}
		joined := det.Cells[4]
		if joined.JoinedRound != 20 || joined.RoundsRun == 0 {
			t.Fatalf("joined cell state wrong: %+v", joined)
		}
		if !det.Cells[2].Dead {
			t.Fatalf("outage cell not dead: %+v", det.Cells[2])
		}
		clients := 0
		for _, cr := range det.Cells {
			clients += cr.Clients
		}
		if clients != cfg.Clients+120 {
			t.Fatalf("clients lost across join+outage: %d != %d", clients, cfg.Clients+120)
		}
	})
}

// Wait-all restore after reconfiguration, at the edge of the retention
// window: the fabric joins a cell and re-weighs a region, then loses a cell
// at round 29 — past the default window's memory of the checkpoint round —
// and must still restore and stay byte-identical across retention settings.
func TestCellPlanRestorePastRetentionWindow(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxRounds = 110
	spec := core.CellSpec{Count: 3, OutageRound: 29, OutageCell: 1}
	cfg.Cells = &spec
	cfg.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: 8, Op: core.CellJoin, Weight: 0.5, Clients: 80},
		{Round: 12, Op: core.CellWeight, Cell: 0, Weight: 1.5},
	}}

	run := func(retain int) (*core.Report, *Detail) {
		c := cfg
		c.RetainRounds = retain
		return runPlan(t, c)
	}
	rep, det := run(core.DefaultRetainRounds)
	c := det.Cells[1]
	if c.Dead {
		t.Fatalf("wait-all cell stayed dead: %+v", c)
	}
	if c.DiedRound != 29 || c.RestoredRound != 29 {
		t.Fatalf("restore rounds wrong: %+v", c)
	}
	if c.Checkpoints == 0 {
		t.Fatal("cell never checkpointed; restore had nothing to round-trip")
	}
	if det.Plan == nil || det.Plan.Version != 2 || det.Plan.CellsJoined != 1 {
		t.Fatalf("plan not applied before the outage: %+v", det.Plan)
	}
	if !rep.Reached {
		t.Fatalf("restored run did not reach target in %d rounds", rep.RoundsRun)
	}
	repOff, detOff := run(-1)
	if !reflect.DeepEqual(rep, repOff) || !reflect.DeepEqual(det, detOff) {
		t.Fatal("post-reconfiguration restore diverged across retention windows")
	}
}

// The determinism contract under a live plan, mirroring the workers suite:
// a fixed seed must produce byte-identical Reports, Details, and .traj
// trajectory files for any worker count and any retention window.
func TestCellPlanByteIdenticalReports(t *testing.T) {
	base := baseCfg()
	base.MaxRounds = 60
	base.Cells = geoSpec()
	base.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: 8, Op: core.CellJoin, Weight: 0.3, Clients: 90},
		{Round: 12, Op: core.CellWeight, Cell: 0, Weight: 0.8, Clients: 40},
		{Round: 16, Op: core.CellDrain, Cell: 1},
	}}

	run := func(workers, retain int) (*core.Report, *Detail, []byte) {
		cfg := base
		cfg.Workers = workers
		cfg.RetainRounds = retain
		path := filepath.Join(t.TempDir(), "plan.traj")
		sink, err := trajstore.NewSink(path, cfg, trajstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Trajectory = sink
		rep, det, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d retain=%d: %v", workers, retain, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		stripWall(rep)
		return rep, det, data
	}

	refRep, refDet, refTraj := run(1, 0)
	if len(refTraj) == 0 {
		t.Fatal("empty trajectory file")
	}
	if refDet.Plan == nil || refDet.Plan.Version != 3 || refDet.Plan.Rejected != "" {
		t.Fatalf("plan not fully applied: %+v", refDet.Plan)
	}
	for _, tc := range []struct{ workers, retain int }{
		{2, 0}, {8, 0}, {1, -1}, {8, -1}, {8, 5},
	} {
		rep, det, traj := run(tc.workers, tc.retain)
		if !reflect.DeepEqual(refRep, rep) || !reflect.DeepEqual(refDet, det) {
			t.Fatalf("workers=%d retain=%d: planned run diverged from workers=1 retain=0", tc.workers, tc.retain)
		}
		if !bytes.Equal(refTraj, traj) {
			t.Fatalf("workers=%d retain=%d: trajectory file differs (%d vs %d bytes)", tc.workers, tc.retain, len(traj), len(refTraj))
		}
	}
}

// PlanDiff is the dry-run half of the config push: diffs without a fabric.
func TestPlanDiff(t *testing.T) {
	cfg := baseCfg()
	cfg.Cells = geoSpec()
	if pushes, err := PlanDiff(cfg); err != nil || len(pushes) != 0 {
		t.Fatalf("no-plan diff: %v, %+v", err, pushes)
	}
	cfg.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: 10, Op: core.CellJoin, Weight: 0.25, Clients: 90},
		{Round: 20, Op: core.CellDrain, Cell: 3},
	}}
	pushes, err := PlanDiff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pushes) != 2 || pushes[0].Round != 10 || pushes[1].Round != 20 {
		t.Fatalf("wrong pushes: %+v", pushes)
	}
	if len(pushes[0].Diff) == 0 || len(pushes[1].Diff) == 0 {
		t.Fatalf("empty diffs: %+v", pushes)
	}
	cfg.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: 10, Op: core.CellDrain, Cell: 9},
	}}
	if _, err := PlanDiff(cfg); err == nil {
		t.Fatal("invalid plan diffed without error")
	}
	cfg.Cells = nil
	if _, err := PlanDiff(cfg); err == nil {
		t.Fatal("PlanDiff accepted a config without cells")
	}
}
