package cell

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/aggcore"
	"repro/internal/cluster"
	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/fedavg"
	"repro/internal/flwork"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/systems"
	"repro/internal/tensor"
)

// CellReport summarizes one cell's run — the per-cell Report fields the
// operator reads beside the global Report (docs/GUIDE.md, "Multi-cell
// scenarios").
type CellReport struct {
	Cell int
	// Clients homed on this cell by the locality router, including any
	// re-routed onto it after an outage.
	Clients int
	// ActivePerRound is the cell's final per-round selection share of the
	// fabric-wide active quota.
	ActivePerRound int
	// RoundsRun counts cell-local rounds completed, including a wait-all
	// restore's replayed round.
	RoundsRun int
	// RoundsDiscarded counts this cell's partial rounds discarded by the
	// quorum policy (the in-flight round a dying cell never delivered).
	RoundsDiscarded int
	// Elapsed is the cell-local clock at the end of the run (a restored
	// replacement instance restarts its local clock at zero).
	Elapsed sim.Duration
	// CPUTime is the cell cluster's CPU across all its instances.
	CPUTime sim.Duration
	// FailuresDetected counts client failures the cell's own heartbeat
	// monitor caught (§3) — distinct from the fabric-level cell monitor.
	FailuresDetected int
	// Checkpoints counts durable model versions in the cell's Appendix-B
	// checkpoint store.
	Checkpoints int
	// Dead reports the cell was lost to the outage and never restored
	// (quorum policy; its clients re-routed).
	Dead bool
	// DiedRound is the global round at whose start the outage hit.
	DiedRound int
	// RestoredRound is the global round replayed on the checkpoint-restored
	// replacement (wait-all policy; 0 = never restored).
	RestoredRound int
	// Drained reports the cell was retired by an elastic-plan drain
	// (drain-then-delete: accounting banked, clients re-homed, platform
	// discarded). Distinct from Dead, which is outage loss.
	Drained bool
	// DrainedRound is the global round at whose start the drain applied.
	DrainedRound int
	// JoinedRound is the global round at whose start the cell joined the
	// fabric (0 = an original cell).
	JoinedRound int
}

// Detail is the fabric-level outcome returned beside the global Report.
type Detail struct {
	Cells  []CellReport
	Quorum int // 0 = wait-all
	// ReRoutedClients counts clients re-homed onto surviving cells after
	// the outage (quorum policy).
	ReRoutedClients int
	// OutageDetectedAt is the fabric clock instant the cell monitor
	// declared the dead cell failed (0 = no outage).
	OutageDetectedAt sim.Duration
	// CellRoundsDiscarded totals partial cell rounds the quorum policy
	// discarded instead of blocking for (one per masked outage).
	CellRoundsDiscarded int
	// CrossCellBytes is the total payload shipped over inter-cell links
	// (cell aggregates up, global broadcasts down).
	CrossCellBytes uint64
	// Plan records the elastic reconfiguration outcome — pushes applied,
	// cells joined/drained, or the wholesale rejection (nil = no plan
	// configured).
	Plan *PlanOutcome
}

// fcell is one cell's runtime state inside the fabric.
type fcell struct {
	id   int
	name coordinator.ClientID
	cfg  core.RunConfig // per-cell config (Cells stripped), rebuilt on restore
	plat *core.Platform
	// rng is the cell's round-selection stream. It is control-plane state:
	// it survives a wait-all restore, so the replacement continues the
	// schedule where the dead instance left off.
	rng     *sim.RNG
	clients int
	// pop is the platform's actual resident population — the hard ceiling
	// on goal. clients can exceed it after an outage re-route (re-routed
	// clients are modeled as extra selection quota on the survivor's
	// synthetic residents, who are statistically identical).
	pop    int
	goal   int     // per-round selection share (0 = idle cell)
	weight float64 // routing weight (region share; plan steps update it)

	dying bool // outage fired; silence not yet detected
	dead  bool
	// drained marks a cell retired by an elastic-plan drain; its accounting
	// is banked and its platform discarded, like a dead cell's, but the
	// retirement was orderly (no partial round lost).
	drained      bool
	drainedRound int
	joinedRound  int // 0 = an original cell

	rounds          int
	roundsDiscarded int
	diedRound       int
	restoredRound   int
	// *Accum fields bank the totals of replaced (dead) instances, whose
	// platforms are discarded at detection time.
	cpuAccum  sim.Duration
	failAccum int
	ckptAccum int
	arrAccum  []float64
	elapsed   sim.Duration // last instance's local clock high-water mark
}

// alive reports the cell is still part of the fabric: neither lost to the
// outage nor retired by a plan drain.
func (c *fcell) alive() bool { return !c.dead && !c.drained }

// bank settles a doomed instance's accounting into the accumulators before
// the platform is discarded.
func (c *fcell) bank() {
	c.plat.Sys.Finalize()
	c.cpuAccum += c.plat.Sys.CPUTime()
	c.failAccum += c.plat.FailuresDetected
	if l, ok := c.plat.Sys.(*systems.LIFL); ok {
		c.ckptAccum += l.Ckpt.Count()
	}
	if !c.cfg.StreamOnly {
		c.arrAccum = mergeSeries(c.arrAccum, c.plat.ArrivalSeries())
	}
	c.elapsed = c.plat.Eng.Now()
}

// fabric drives K per-cell platforms round by round and owns the
// cross-cell aggregation tier on its own control-plane engine.
type fabric struct {
	cfg   core.RunConfig
	spec  core.CellSpec
	rtt   sim.Duration
	bw    float64
	bytes uint64 // cross-cell payload: the model's virtual size

	cells []*fcell
	quota int // fabric-wide active share total (credit denominator)
	curve flwork.Curve
	// multi: the cross-cell tier exists — more than one cell, or an elastic
	// plan that may grow/shrink the fabric mid-run.
	multi bool
	// plan is the accepted normalized schedule; planNext cursors it.
	plan     []core.CellPlanStep
	planNext int

	feng  *sim.Engine
	node  *cluster.Node
	top   *aggcore.Aggregator
	beats *coordinator.Heartbeats

	global *tensor.Tensor

	// In-flight round state (multi-cell path).
	roundDone     bool
	endAt         sim.Duration
	foldAt        sim.Duration
	pendingDetect bool
	outagePending bool
	restored      *roundContribution
	evErr         error
	stopped       bool

	detail Detail
}

// roundContribution is one cell's accepted per-round result.
type roundContribution struct {
	c   *fcell
	res systems.RoundResult
	at  sim.Duration // fabric-clock arrival at the cross-cell tier
	// share is the quota share the cell ran this round with, captured at
	// StepRound time: an outage-triggered reroute re-apportions the cells'
	// goal fields mid-round, and the credit accounting must reflect what
	// the round actually fielded, not the next round's plan.
	share int
}

// Run executes a federated multi-cell run: cfg.Cells shapes the fabric,
// everything else keeps its single-cluster meaning. It returns the global
// Report — for Count == 1 byte-identical (fixed seed) to core.Run on the
// same config without Cells — plus the per-cell Detail.
func Run(cfg core.RunConfig) (*core.Report, *Detail, error) {
	if cfg.Cells == nil {
		return nil, nil, errors.New("cell: config has no Cells spec; use core.Run")
	}
	f, err := newFabric(cfg)
	if err != nil {
		return nil, nil, err
	}
	return f.run()
}

func newFabric(cfg core.RunConfig) (*fabric, error) {
	spec := *cfg.Cells
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Defaulted()
	if cfg.System == core.SystemAsync {
		return nil, fmt.Errorf("cell: the fabric federates synchronous cells; %s has no round barrier to stitch (run it single-cell)", cfg.System)
	}
	if cfg.Inject != nil {
		return nil, errors.New("cell: injected (Fig. 8) rounds have no population to route across cells")
	}
	f := &fabric{
		cfg:   cfg,
		spec:  spec,
		rtt:   spec.RTT,
		bw:    spec.Bandwidth,
		bytes: cfg.Model.Bytes(),
	}
	if f.rtt == 0 {
		f.rtt = cfg.Params.InterCellRTT
	}
	if f.bw == 0 {
		f.bw = cfg.Params.InterCellBandwidth
	}
	if f.bw <= 0 {
		// Hand-built Params predating the inter-cell fields leave the
		// bandwidth at 0; dividing by it would schedule at +Inf and panic
		// the engine, so refuse at construction time.
		return nil, fmt.Errorf("cell: inter-cell bandwidth must be > 0 (set CellSpec.Bandwidth or Params.InterCellBandwidth)")
	}
	f.detail.Quorum = spec.Quorum

	// Level one of the two-level placement: home every client on a cell,
	// region-weighted and seed-stable (placement.CellRouter), then derive
	// each cell's share of the fabric-wide active quota from its resident
	// population (largest-remainder, capped by availability). planStart
	// runs the same arithmetic the plan validator simulates against, so
	// the two can never drift.
	st, err := planStart(cfg, spec)
	if err != nil {
		return nil, err
	}
	f.quota = st.quota

	// The elastic plan: normalize and wholesale-validate the schedule. A
	// plan that fails anywhere is rejected as a whole — recorded in the
	// Detail, and the run proceeds exactly as if no plan were configured.
	if cfg.CellPlan != nil {
		steps, verr := validatePlan(cfg, spec)
		if verr != nil {
			f.detail.Plan = &PlanOutcome{Rejected: verr.Error()}
		} else if len(steps) > 0 {
			f.plan = steps
			f.detail.Plan = &PlanOutcome{}
		}
	}
	f.multi = spec.Count > 1 || len(f.plan) > 0

	ccfgs := make([]core.RunConfig, spec.Count)
	for k := 0; k < spec.Count; k++ {
		ccfgs[k] = f.cellConfig(k, st.cells[k].clients, st.cells[k].goal)
	}
	// Cell assembly runs on the worker pool: each platform synthesizes its
	// population from a private engine and RNG seeded by the cell's salted
	// seed, so build order is unobservable; cells are folded back in cell
	// index order. At fabric scale (millions of clients across K cells)
	// construction is the dominant startup cost.
	type built struct {
		plat *core.Platform
		err  error
	}
	plats := par.Map(cfg.Workers, spec.Count, func(k int) built {
		plat, err := core.NewPlatform(ccfgs[k])
		return built{plat: plat, err: err}
	})
	for k := 0; k < spec.Count; k++ {
		if plats[k].err != nil {
			return nil, fmt.Errorf("cell %d: %w", k, plats[k].err)
		}
		f.cells = append(f.cells, &fcell{
			id:      k,
			name:    cellName(k),
			cfg:     ccfgs[k],
			plat:    plats[k].plat,
			rng:     newCellRNG(ccfgs[k]),
			clients: st.cells[k].clients,
			pop:     ccfgs[k].Clients,
			goal:    st.cells[k].goal,
			weight:  st.cells[k].weight,
		})
	}
	f.curve = f.cells[0].plat.Curve

	if !f.single() {
		// The cross-cell tier: a one-node control cluster hosting the top
		// aggregator that folds the K cell aggregates through the same
		// eager Recv/Agg/Send pipeline every in-cell hierarchy runs.
		f.feng = sim.NewEngine()
		cl := cluster.New(f.feng, sim.NewRNG(cfg.Seed+3), cfg.Params, 1)
		f.node = cl.Nodes[0]
		tmpl := f.cells[0].plat.Sys.Global()
		f.global = tmpl.Clone()
		f.top = aggcore.New("xcell-top", aggcore.RoleTop, f.node, fedavg.FedAvg{Workers: cfg.Workers}, tmpl.Len(), tmpl.VirtualLen)
		f.top.Mode = aggcore.Eager
		f.top.OnComplete = func(_ *aggcore.Aggregator, out aggcore.Update) { f.onFold(out) }
		f.beats = coordinator.NewHeartbeats(f.feng, cfg.Params.HeartbeatTimeout)
		for _, c := range f.cells {
			f.beats.Beat(c.name)
			f.startBeatChain(c)
		}
	}
	return f, nil
}

func (f *fabric) single() bool { return !f.multi }

// cellConfig derives one cell's single-cluster config from the fabric's:
// Cells and the plan stripped, population and share localized, seed salted.
// Used for the original cells and for cells a plan push joins mid-run.
func (f *fabric) cellConfig(id, clients, goal int) core.RunConfig {
	ccfg := f.cfg
	ccfg.Cells = nil
	ccfg.CellPlan = nil
	ccfg.Clients = clients
	if ccfg.Clients == 0 {
		// An empty cell never runs a round; a 1-client population keeps
		// core's zero-means-default rule from synthesizing 2,800.
		ccfg.Clients = 1
	}
	ccfg.ActivePerRound = goal
	if ccfg.ActivePerRound == 0 {
		ccfg.ActivePerRound = 1 // same zero-means-default guard; unused
	}
	// Seed salt keeps cells' draw streams independent; cell 0 keeps the
	// fabric seed exactly so K = 1 is byte-identical to the plain run.
	ccfg.Seed = f.cfg.Seed + int64(id)*1_000_003
	ccfg.Milestones = nil // milestone capture is fabric-level
	ccfg.OnRound = nil
	ccfg.Trajectory = nil // the fabric's global loop owns the sink
	if f.multi {
		// Cells adopt their local mean; the configured server optimizer
		// acts once, at the global tier, where the paper's Eq. (1)
		// aggregate actually materializes.
		ccfg.ServerOpt = fedavg.Adopt{}
		// Each cell reports under its own telemetry prefix. Sub views share
		// the registry's metric store (atomic, name-disjoint) but expose no
		// span log — cells step in parallel, and the root span log is
		// single-writer from the fabric's serial loop only. The tracer is
		// stripped for the same reason: K recorders appending concurrently
		// into one span slice would race.
		ccfg.Telemetry = f.cfg.Telemetry.Sub(fmt.Sprintf("cell/%d/", id))
		ccfg.Tracer = nil
	}
	if f.spec.CheckpointRounds > 0 {
		ccfg.Params.CheckpointPeriodRounds = f.spec.CheckpointRounds
	}
	return ccfg
}

func cellName(id int) coordinator.ClientID {
	return coordinator.ClientID(fmt.Sprintf("cell-%d", id))
}

func newCellRNG(ccfg core.RunConfig) *sim.RNG { return sim.NewRNG(ccfg.Seed + 2) }

// hop is the one-way inter-cell cost of shipping one model-sized payload.
func (f *fabric) hop() sim.Duration {
	return f.rtt/2 + sim.Duration(float64(f.bytes)/f.bw*float64(sim.Second))
}

// cpuTotal is the fabric-wide cumulative CPU: every cell instance plus the
// cross-cell tier's node.
func (f *fabric) cpuTotal() sim.Duration {
	var total sim.Duration
	for _, c := range f.cells {
		total += c.cpuAccum
		if c.plat != nil {
			total += c.plat.Sys.CPUTime()
		}
	}
	if f.node != nil {
		total += f.node.TotalCPUTime()
	}
	return total
}

// startBeatChain keeps a live cell heartbeating the fabric control plane
// every HeartbeatPeriod. The chain stops itself when the cell dies (the
// outage) or the run ends.
func (f *fabric) startBeatChain(c *fcell) {
	period := f.cfg.Params.HeartbeatPeriod
	var tick func()
	tick = func() {
		if f.stopped || c.dying || c.dead || c.drained {
			return
		}
		f.beats.Beat(c.name)
		f.feng.After(period, tick)
	}
	f.feng.After(period, tick)
}

// run is the fabric's global round loop — Platform.Run's shape, lifted one
// level: each iteration plays one global round across the cells and folds
// the survivors' aggregates into the global model.
func (f *fabric) run() (*core.Report, *Detail, error) {
	cfg := f.cfg
	rep := &core.Report{System: cfg.System, Model: cfg.Model}
	milestones := append([]float64(nil), cfg.Milestones...)
	sort.Float64s(milestones)
	nextMilestone := 0
	// credit is the effective-round account the accuracy curve advances
	// by: each accepted cell aggregate contributes its share of the
	// fabric-wide quota, so full participation advances exactly one round
	// and a discarded straggler (or dead cell) slows convergence — the
	// quantity the cell-outage scenario measures.
	credit := 0.0
	for r := 1; r <= cfg.MaxRounds; r++ {
		res, wall, shares, err := f.playRound(r)
		if err != nil {
			return nil, nil, err
		}
		rep.RoundWallTotal += wall
		if wall > rep.RoundWallMax {
			rep.RoundWallMax = wall
		}
		rep.RoundsRun++
		credit += float64(shares) / float64(f.quota)
		acc := f.curve.At(int(credit + 1e-9))
		point := core.AccPoint{
			Round:    r,
			Time:     res.End,
			CPUTime:  f.cpuTotal(),
			Accuracy: acc,
		}
		if !cfg.StreamOnly {
			rep.Rounds = append(rep.Rounds, res)
			rep.ActiveAggs = append(rep.ActiveAggs, f.activeAggs())
			rep.CPUPerRound = append(rep.CPUPerRound, res.CPUTime.Seconds())
			rep.Acc = append(rep.Acc, point)
		}
		for nextMilestone < len(milestones) && acc >= milestones[nextMilestone] {
			rep.Milestones = append(rep.Milestones, core.MilestoneHit{Target: milestones[nextMilestone], At: point})
			nextMilestone++
		}
		if cfg.OnRound != nil || cfg.Trajectory != nil {
			ob := core.RoundObservation{Result: res, Acc: point, Wall: wall, Shares: shares}
			if cfg.OnRound != nil {
				cfg.OnRound(ob)
			}
			if cfg.Trajectory != nil {
				if err := cfg.Trajectory.Observe(ob); err != nil {
					return nil, nil, fmt.Errorf("cell: trajectory sink at round %d: %w", r, err)
				}
			}
		}
		rep.Elapsed = res.End
		if !rep.Reached && acc >= cfg.TargetAccuracy {
			rep.Reached = true
			rep.TimeToTarget = res.End
			rep.CPUToTarget = point.CPUTime
			break
		}
	}
	f.stopped = true
	for _, c := range f.cells {
		if c.plat != nil {
			c.plat.Sys.Finalize()
		}
	}
	if f.single() {
		rep.FinalGlobal = f.cells[0].plat.Sys.Global()
	} else {
		rep.FinalGlobal = f.global
	}
	if !cfg.StreamOnly {
		rep.ArrivalsPerMinute = f.mergedArrivals()
	}
	rep.CPUTotal = f.cpuTotal()
	for _, c := range f.cells {
		rep.FailuresDetected += c.failAccum
		if c.plat != nil {
			rep.FailuresDetected += c.plat.FailuresDetected
		}
	}
	return rep, f.assembleDetail(), nil
}

// playRound plays one global round and returns the merged (fabric-clock)
// result, the real wall clock it took, and the quota shares that were
// accepted into the fold.
func (f *fabric) playRound(r int) (systems.RoundResult, time.Duration, int, error) {
	if f.single() {
		c := f.cells[0]
		res, wall, err := c.plat.StepRound(c.rng, r, c.goal)
		if err != nil {
			return systems.RoundResult{}, 0, 0, err
		}
		c.rounds++
		return res, wall, c.goal, nil
	}
	wall0 := time.Now()
	start := f.feng.Now()
	cpu0 := f.cpuTotal()
	// Reconfiguration lands first: a push stamped for round r rewires the
	// fabric at the round's start — before the outage kill, so a plan can
	// retire a cell at the very round an outage would have hit another.
	f.applyPlan(r)
	if f.spec.OutageRound == r {
		f.kill(f.cells[f.spec.OutageCell], r)
	}

	// Phase one: every live cell plays its local round concurrently on the
	// worker pool — the K StepRound calls are independent (private engine,
	// private RNG stream, private population; cells share nothing below
	// the cross-cell tier), so each cell's result is bit-identical to the
	// serial sweep's. Contributions land in per-cell slots and are
	// compacted in cell index order, making the cross-cell tier below the
	// round's only barrier; its aggregate arrives one uplink after each
	// local round ends.
	live := make([]*fcell, 0, len(f.cells))
	for _, c := range f.cells {
		if c.dead || c.dying || c.drained || c.goal <= 0 {
			continue
		}
		live = append(live, c)
	}
	slots := make([]roundContribution, len(live))
	errs := make([]error, len(live))
	par.Do(f.cfg.Workers, len(live), func(i int) {
		c := live[i]
		res, _, err := c.plat.StepRound(c.rng, r, c.goal)
		if err != nil {
			errs[i] = err
			return
		}
		c.rounds++
		c.elapsed = c.plat.Eng.Now()
		slots[i] = roundContribution{c: c, res: res, at: start + (res.End - res.Start) + f.hop(), share: c.goal}
	})
	var arr []roundContribution
	for i, c := range live {
		if errs[i] != nil {
			return systems.RoundResult{}, 0, 0, fmt.Errorf("cell %d round %d: %w", c.id, r, errs[i])
		}
		arr = append(arr, slots[i])
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].at != arr[j].at {
			return arr[i].at < arr[j].at
		}
		return arr[i].c.id < arr[j].c.id
	})

	// The fold goal. Healthy rounds wait for every live cell. In the
	// outage round the straggler-cell policy decides: a quorum (Q > 0)
	// masks the failure — the round closes over the live cells alone
	// (provided at least Q of them), and the silent cell's partial round
	// is discarded — while wait-all (Q == 0) blocks until a replacement is
	// restored from the dead cell's last checkpoint and its replayed round
	// delivers the missing aggregate.
	goal := len(arr)
	if f.outagePending {
		if f.spec.Quorum > 0 {
			if goal < f.spec.Quorum {
				return systems.RoundResult{}, 0, 0, fmt.Errorf("cell: round %d has %d live cells, below quorum %d", r, goal, f.spec.Quorum)
			}
		} else {
			goal++ // the checkpoint-restored replacement's replayed round
		}
	}
	if goal <= 0 {
		return systems.RoundResult{}, 0, 0, fmt.Errorf("cell: round %d has no live contributing cells", r)
	}
	accepted := arr
	f.top.Assign(aggcore.RoleTop, goal, "", r)
	f.restored = nil
	for i := range arr {
		a := arr[i]
		f.feng.At(a.at, func() {
			f.beats.Beat(a.c.name)
			f.detail.CrossCellBytes += f.bytes
			f.top.Receive(aggcore.Update{
				Tensor:   a.c.plat.Sys.Global(),
				Weight:   float64(a.res.Updates),
				Size:     f.bytes,
				Round:    r,
				Producer: string(a.c.name),
			})
		})
	}

	// Phase two: the control-plane engine plays the tier — arrivals, eager
	// folds, the outage detection sweeps, a possible checkpoint restore and
	// replay — until the round's global model is broadcast.
	f.roundDone = false
	f.evErr = nil
	const maxSteps = 50_000_000 // fail loudly instead of hanging CI
	steps := 0
	for (!f.roundDone || f.pendingDetect) && f.evErr == nil && f.feng.Step() {
		if steps++; steps > maxSteps {
			return systems.RoundResult{}, 0, 0, fmt.Errorf("cell: round %d tier did not converge after %d events", r, maxSteps)
		}
	}
	if f.evErr != nil {
		return systems.RoundResult{}, 0, 0, f.evErr
	}
	if !f.roundDone {
		return systems.RoundResult{}, 0, 0, fmt.Errorf("cell: round %d starved before the cross-cell fold", r)
	}

	// Install the folded global into every live cell for the next round.
	for _, c := range f.cells {
		if c.alive() && c.plat != nil {
			c.plat.InstallGlobal(f.global.Clone())
		}
	}
	f.detail.CrossCellBytes += uint64(f.liveCount()) * f.bytes

	merged := systems.RoundResult{Round: r, Start: start, End: f.endAt}
	shares := 0
	contribs := accepted
	if f.restored != nil {
		contribs = append(append([]roundContribution(nil), accepted...), *f.restored)
	}
	for i, a := range contribs {
		if i == 0 || a.at < merged.FirstArrival {
			merged.FirstArrival = a.at
		}
		merged.Updates += a.res.Updates
		shares += a.share
	}
	merged.ACT = f.foldAt - merged.FirstArrival
	for _, a := range arr {
		merged.AggsCreated += a.res.AggsCreated
		merged.AggsActive += a.res.AggsActive
		merged.NodesUsed += a.res.NodesUsed
	}
	if f.restored != nil {
		merged.AggsCreated += f.restored.res.AggsCreated
		merged.AggsActive += f.restored.res.AggsActive
		merged.NodesUsed += f.restored.res.NodesUsed
	}
	merged.AggsActive++ // the cross-cell top
	merged.CPUTime = f.cpuTotal() - cpu0
	f.observeRound(r, start, shares)
	return merged, time.Since(wall0), shares, nil
}

// observeRound publishes the fabric's per-round telemetry: the global
// round envelope span, the fold counters, and the live per-cell quota
// shares the watch dashboard renders. Runs serially between rounds — the
// root span log and the share gauges are single-writer here by contract.
func (f *fabric) observeRound(r int, start sim.Duration, shares int) {
	reg := f.cfg.Telemetry
	if reg == nil {
		return
	}
	reg.Counter("fabric/rounds", obs.Det).Inc()
	reg.Counter("fabric/shares_folded", obs.Det).Add(uint64(shares))
	reg.Gauge("fabric/cross_cell_bytes", obs.Det).Set(float64(f.detail.CrossCellBytes))
	reg.Spans().Add(obs.Span{Actor: "fabric", Kind: obs.KindRound, Start: start, End: f.endAt, Round: r})
	for _, c := range f.cells {
		goal := 0
		if c.alive() {
			goal = c.goal
		}
		reg.Gauge(fmt.Sprintf("fabric/cell/%d/share", c.id), obs.Det).Set(float64(goal))
	}
}

// onFold fires when the cross-cell top emits the round's aggregate: apply
// the server optimizer and install the result with one fused ScaleAdd,
// then charge the global evaluation and the broadcast back to the cells.
func (f *fabric) onFold(out aggcore.Update) {
	f.foldAt = f.feng.Now()
	next, err := f.cfg.ServerOpt.Apply(f.global, out.Tensor)
	if err != nil {
		f.evErr = fmt.Errorf("cell: global install: %w", err)
		return
	}
	if next != f.global {
		// The one fused per-round install: t = 0·t + 1·next in a single
		// sweep, keeping the fabric's global backing array stable. The
		// sweep shards across the worker pool when the vector is long
		// enough to pay for it (bit-identical either way).
		if err := f.global.ScaleAddP(0, 1, next, f.cfg.Workers); err != nil {
			f.evErr = fmt.Errorf("cell: global install: %w", err)
			return
		}
	}
	eval := f.cfg.Params.EvalTime(f.bytes)
	f.node.ExecFree("xcell-eval", eval)
	f.feng.At(f.foldAt+eval+f.hop(), func() {
		f.roundDone = true
		f.endAt = f.feng.Now()
	})
}

// kill starts the outage: the cell's beat chain freezes at the round's
// start, and the fabric's monitor wakes exactly when that last beat's
// silence crosses the heartbeat timeout (coordinator.Heartbeats.Deadline)
// to declare the cell dead.
func (f *fabric) kill(c *fcell, r int) {
	c.dying = true
	c.diedRound = r
	f.outagePending = true
	f.pendingDetect = true
	deadline, ok := f.beats.Deadline(c.name)
	if !ok {
		deadline = f.feng.Now() + f.cfg.Params.HeartbeatTimeout
	}
	// Failed() requires the silence to *exceed* the timeout; one tick past
	// the deadline the dying cell — and, with live cells beating every
	// HeartbeatPeriod, only the dying cell — is reported.
	f.feng.At(deadline+1, func() {
		failed := f.beats.Failed()
		if len(failed) != 1 || failed[0] != c.name {
			f.evErr = fmt.Errorf("cell: monitor expected exactly %q silent, got %v", c.name, failed)
			f.pendingDetect = false
			return
		}
		f.onCellDead(c, r)
	})
}

// onCellDead is the detection moment: discard the dead cell's partial
// round and re-route its clients (quorum), or restore a replacement from
// the cell's last durable checkpoint and replay the interrupted round
// (wait-all).
func (f *fabric) onCellDead(c *fcell, r int) {
	now := f.feng.Now()
	f.detail.OutageDetectedAt = now
	f.cfg.Telemetry.Counter("fabric/outages_detected", obs.Det).Inc()
	f.beats.Forget(c.name)
	// The cell's last durable checkpoint must be read before the dead
	// instance is discarded (the store rides the cell's own engine).
	var restoreModel *tensor.Tensor
	if l, ok := c.plat.Sys.(*systems.LIFL); ok {
		if rec, err := l.Ckpt.Latest(); err == nil {
			restoreModel = rec.Model
		}
	}
	if restoreModel == nil {
		// No durable checkpoint yet (or a non-LIFL cell): restore from the
		// fabric's current global, which every cell re-adopts anyway.
		restoreModel = f.global.Clone()
	}
	c.bank()
	c.plat = nil

	if f.spec.Quorum > 0 {
		c.dead = true
		c.dying = false
		// The dead cell's in-flight partial round is discarded (it never
		// reached the tier); its clients re-home onto the survivors.
		c.roundsDiscarded++
		f.detail.CellRoundsDiscarded++
		f.cfg.Telemetry.Counter("fabric/rounds_discarded", obs.Det).Inc()
		f.reroute(c)
		f.pendingDetect = false
		f.outagePending = false
		return
	}

	// Wait-all: fetch the checkpoint across the backbone, cold-start a
	// replacement stack, replay round r on it.
	delay := f.hop() + f.cfg.Params.ColdStartDelay
	f.feng.At(now+delay, func() {
		plat, err := core.NewPlatform(c.cfg)
		if err != nil {
			f.evErr = fmt.Errorf("cell %d restore: %w", c.id, err)
			f.pendingDetect = false
			return
		}
		plat.InstallGlobal(restoreModel)
		c.plat = plat
		c.dying = false
		c.restoredRound = r
		res, _, err := plat.StepRound(c.rng, r, c.goal)
		if err != nil {
			f.evErr = fmt.Errorf("cell %d replay round %d: %w", c.id, r, err)
			f.pendingDetect = false
			return
		}
		c.rounds++
		c.elapsed = plat.Eng.Now()
		at := f.feng.Now() + (res.End - res.Start) + f.hop()
		contrib := roundContribution{c: c, res: res, at: at, share: c.goal}
		f.feng.At(at, func() {
			f.beats.Beat(c.name)
			f.startBeatChain(c)
			f.detail.CrossCellBytes += f.bytes
			f.restored = &contrib
			f.top.Receive(aggcore.Update{
				Tensor:   c.plat.Sys.Global(),
				Weight:   float64(res.Updates),
				Size:     f.bytes,
				Round:    r,
				Producer: string(c.name),
			})
		})
		f.pendingDetect = false
		f.outagePending = false
	})
}

// reroute re-homes the dead cell's clients onto the surviving cells in
// proportion to their resident populations, then re-apportions the
// fabric-wide active quota over the new populations — the next round runs
// at full rate again.
func (f *fabric) reroute(dead *fcell) {
	var weights []float64
	var idx []int
	for _, c := range f.cells {
		if c.alive() {
			weights = append(weights, float64(c.clients))
			idx = append(idx, c.id)
		}
	}
	extra := apportion(dead.clients, weights)
	for i, id := range idx {
		f.cells[id].clients += extra[i]
		weights[i] = float64(f.cells[id].clients)
	}
	f.detail.ReRoutedClients += dead.clients
	f.cfg.Telemetry.Counter("fabric/rerouted_clients", obs.Det).Add(uint64(dead.clients))
	dead.clients = 0
	dead.goal = 0
	goals := apportion(f.quota, weights)
	for i, id := range idx {
		s := f.cells[id]
		s.goal = goals[i]
		// Same cap newFabric applies: a survivor cannot field more jobs per
		// round than its resident population (goals are proportional to the
		// same counts, so this binds only when the whole surviving fabric
		// is overloaded — quota > Σ surviving populations).
		if s.goal > s.pop {
			s.goal = s.pop
		}
	}
}

func (f *fabric) liveCount() int {
	n := 0
	for _, c := range f.cells {
		if c.alive() {
			n++
		}
	}
	return n
}

func (f *fabric) activeAggs() int {
	n := 0
	for _, c := range f.cells {
		if !c.dead && c.plat != nil {
			n += c.plat.Sys.ActiveAggregators()
		}
	}
	if f.single() {
		return n
	}
	return n + 1 // the cross-cell top
}

// mergedArrivals sums the per-cell Fig. 10 arrival series element-wise
// (each cell's series is in its own local minutes; cells run their rounds
// in lockstep, so the merge is minute-aligned to round cadence).
func (f *fabric) mergedArrivals() []float64 {
	if f.single() {
		return f.cells[0].plat.ArrivalSeries()
	}
	var out []float64
	for _, c := range f.cells {
		out = mergeSeries(out, c.arrAccum)
		if c.plat != nil {
			out = mergeSeries(out, c.plat.ArrivalSeries())
		}
	}
	if len(out) == 0 {
		out = []float64{0}
	}
	return out
}

// mergeSeries element-wise adds src into dst, growing dst as needed.
func mergeSeries(dst, src []float64) []float64 {
	if len(src) > len(dst) {
		grown := make([]float64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

func (f *fabric) assembleDetail() *Detail {
	for _, c := range f.cells {
		cr := CellReport{
			Cell:             c.id,
			Clients:          c.clients,
			ActivePerRound:   c.goal,
			RoundsRun:        c.rounds,
			RoundsDiscarded:  c.roundsDiscarded,
			Elapsed:          c.elapsed,
			CPUTime:          c.cpuAccum,
			FailuresDetected: c.failAccum,
			Checkpoints:      c.ckptAccum,
			Dead:             c.dead,
			DiedRound:        c.diedRound,
			RestoredRound:    c.restoredRound,
			Drained:          c.drained,
			DrainedRound:     c.drainedRound,
			JoinedRound:      c.joinedRound,
		}
		if c.plat != nil {
			cr.Elapsed = c.plat.Eng.Now()
			cr.CPUTime += c.plat.Sys.CPUTime()
			cr.FailuresDetected += c.plat.FailuresDetected
			if l, ok := c.plat.Sys.(*systems.LIFL); ok {
				cr.Checkpoints += l.Ckpt.Count()
			}
		}
		f.detail.Cells = append(f.detail.Cells, cr)
	}
	return &f.detail
}

// apportion splits total into len(weights) integer shares proportional to
// the weights — largest-remainder, ties broken by index — so the shares
// always sum exactly to total (zero-weight entries get zero).
func apportion(total int, weights []float64) []int {
	out := make([]int, len(weights))
	if total <= 0 || len(weights) == 0 {
		return out
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(weights))
	given := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		base := int(exact)
		out[i] = base
		given += base
		rems = append(rems, rem{i, exact - float64(base)})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for i := 0; given < total && i < len(rems); i++ {
		// Never bump a zero-weight entry: trailing zero-frac entries exist
		// only when total splits exactly, in which case given == total.
		if weights[rems[i].idx] <= 0 {
			continue
		}
		out[rems[i].idx]++
		given++
	}
	return out
}
