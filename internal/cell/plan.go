package cell

// The elastic control plane: versioned, validated, atomic reconfiguration
// of a running fabric (core.RunConfig.CellPlan).
//
// A plan's steps are grouped by round into config pushes. Before the first
// round the whole schedule is validated by simulating it — push by push,
// interleaved with the configured outage — against the fabric's initial
// state; a plan that fails anywhere is rejected WHOLESALE and the run
// proceeds exactly as if no plan were configured (last-known-good
// semantics; the rejection reason lands in Detail.Plan.Rejected). At a
// push's round the fabric snapshots its state, applies the push through
// the same pure reconfigure function the validator ran, materializes any
// joined cells, and only then commits — an error at any point discards
// the staged state and keeps the snapshot.
//
// Drains are drain-then-delete: the push lands at a round's start, when
// the lockstep barrier guarantees the cell's previous round — including
// its in-flight cross-cell aggregation — has fully folded. The cell's
// accounting and checkpoint count are banked, its clients re-homed across
// the survivors' routing weights by the same largest-remainder apportion
// the outage path uses, and its platform discarded. Joins receive the
// fabric's current global model before their first round, so a joined
// cell starts from the fleet's state, not from initialization.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
)

// PlanOutcome records an elastic plan's fate in the fabric Detail.
type PlanOutcome struct {
	// Version counts config pushes applied (the last applied version).
	Version int
	// Rejected, when non-empty, is the validation error that made the
	// fabric discard the whole plan before the first round (or the rest of
	// it at apply time): the run proceeded on its last-known-good state.
	Rejected string
	// CellsJoined / CellsDrained count topology changes actually applied.
	CellsJoined  int
	CellsDrained int
	// Pushes holds each applied push's dry-run diff, in apply order.
	Pushes []PlanPush
}

// PlanPush is one applied (or dry-run) config push.
type PlanPush struct {
	Round   int
	Version int
	// Diff lists the push's changes, one line per effect.
	Diff []string
}

// planCell is one cell's reconfigurable state: the slice of fabric state
// the pure reconfigure function reads and rewrites.
type planCell struct {
	id      int
	weight  float64 // routing weight (region share; joins bring their own)
	clients int     // routed clients (selection quota source)
	pop     int     // resident platform population — the goal ceiling
	goal    int     // per-round selection share
	live    bool    // false: drained or dead
}

// planState is the fabric state a config push transforms.
type planState struct {
	cells []planCell
	quota int
}

func (st *planState) liveCount() int {
	n := 0
	for _, c := range st.cells {
		if c.live {
			n++
		}
	}
	return n
}

// apportionGoals re-derives every live cell's selection share from the
// fabric-wide quota, proportional to routed clients and capped by the
// resident population — the same arithmetic the outage re-route runs.
func (st *planState) apportionGoals() {
	weights := make([]float64, len(st.cells))
	for i, c := range st.cells {
		if c.live {
			weights[i] = float64(c.clients)
		}
	}
	goals := apportion(st.quota, weights)
	for i := range st.cells {
		c := &st.cells[i]
		c.goal = goals[i]
		if c.goal > c.pop {
			c.goal = c.pop
		}
	}
}

// maskOutage replicates the quorum-masking outage on the plan state: the
// dead cell's clients re-home onto the survivors in proportion to their
// populations, and the quota is re-apportioned (fabric.reroute's math).
func (st *planState) maskOutage(cell int) {
	dead := &st.cells[cell]
	dead.live = false
	var weights []float64
	var idx []int
	for i, c := range st.cells {
		if c.live {
			weights = append(weights, float64(c.clients))
			idx = append(idx, i)
		}
	}
	extra := apportion(dead.clients, weights)
	for i, id := range idx {
		st.cells[id].clients += extra[i]
	}
	dead.clients = 0
	st.apportionGoals()
}

// reconfigure applies one config push to st and returns the new state plus
// its diff — a pure function: the input state is never mutated, so the
// caller's copy is the snapshot a failed push rolls back to. steps must be
// one round's batch in canonical (Normalized) order. quorum is the live-
// cell floor a drain may not cross (max(1, quorum)).
func reconfigure(st planState, steps []core.CellPlanStep, quorum int) (planState, []string, error) {
	out := planState{quota: st.quota, cells: append([]planCell(nil), st.cells...)}
	var diff []string
	var drains []int
	for _, s := range steps {
		switch s.Op {
		case core.CellJoin:
			id := len(out.cells)
			pop := s.Clients
			if pop < 1 {
				pop = 1 // the empty-cell guard newFabric applies
			}
			out.cells = append(out.cells, planCell{id: id, weight: s.Weight, clients: s.Clients, pop: pop, live: true})
			diff = append(diff, fmt.Sprintf("+ cell %d joins: weight %g, %d clients", id, s.Weight, s.Clients))
		case core.CellWeight:
			if s.Cell >= len(out.cells) || !out.cells[s.Cell].live {
				return st, nil, fmt.Errorf("weight change on unknown or retired cell %d", s.Cell)
			}
			c := &out.cells[s.Cell]
			diff = append(diff, fmt.Sprintf("~ cell %d weight %g -> %g", s.Cell, c.weight, s.Weight))
			c.weight = s.Weight
			if s.Clients > 0 {
				c.clients += s.Clients
				diff = append(diff, fmt.Sprintf("~ cell %d absorbs %d flash-crowd arrivals (%d clients)", s.Cell, s.Clients, c.clients))
			}
		case core.CellDrain:
			if s.Cell >= len(out.cells) || !out.cells[s.Cell].live {
				return st, nil, fmt.Errorf("drain of unknown or retired cell %d", s.Cell)
			}
			out.cells[s.Cell].live = false
			drains = append(drains, s.Cell)
		default:
			return st, nil, fmt.Errorf("unknown plan op %q", s.Op)
		}
	}
	floor := 1
	if quorum > floor {
		floor = quorum
	}
	if live := out.liveCount(); live < floor {
		return st, nil, fmt.Errorf("push leaves %d live cells, below the floor %d", live, floor)
	}
	// Drain-then-delete, one cell at a time in canonical order: each
	// drained cell's clients re-home across the surviving routing weights
	// by largest remainder — the removal-stable counterpart of the
	// router's add contract (placement.ElasticRouter pins the per-client
	// version of this invariant).
	for _, id := range drains {
		d := &out.cells[id]
		var weights []float64
		var idx []int
		for i, c := range out.cells {
			if c.live {
				weights = append(weights, c.weight)
				idx = append(idx, i)
			}
		}
		extra := apportion(d.clients, weights)
		for i, target := range idx {
			out.cells[target].clients += extra[i]
		}
		diff = append(diff, fmt.Sprintf("- cell %d drains: %d clients re-homed across %d survivors", id, d.clients, len(idx)))
		d.clients = 0
	}
	out.apportionGoals()
	for i := range out.cells {
		if out.cells[i].goal != goalOf(st, i) {
			diff = append(diff, fmt.Sprintf("~ cell %d share %d -> %d", i, goalOf(st, i), out.cells[i].goal))
		}
	}
	return out, diff, nil
}

// goalOf reads a cell's pre-push share (0 for cells the push created).
func goalOf(st planState, i int) int {
	if i < len(st.cells) {
		return st.cells[i].goal
	}
	return 0
}

// planStart derives the fabric's initial plan state — router counts,
// apportioned shares, quota — without building any platform. newFabric
// builds its cells from this same state, so the validator's simulation
// and the real fabric can never drift.
func planStart(cfg core.RunConfig, spec core.CellSpec) (planState, error) {
	router, err := placement.NewCellRouter(spec.Count, spec.Regions, cfg.Seed)
	if err != nil {
		return planState{}, err
	}
	counts := router.Counts(cfg.Clients)
	weights := make([]float64, spec.Count)
	for k, n := range counts {
		weights[k] = float64(n)
	}
	goals := apportion(cfg.ActivePerRound, weights)
	st := planState{}
	for k := 0; k < spec.Count; k++ {
		if goals[k] > counts[k] {
			goals[k] = counts[k]
		}
		st.quota += goals[k]
		region := 1.0
		if len(spec.Regions) == spec.Count {
			region = spec.Regions[k]
		}
		pop := counts[k]
		if pop < 1 {
			pop = 1
		}
		st.cells = append(st.cells, planCell{id: k, weight: region, clients: counts[k], pop: pop, goal: goals[k], live: true})
	}
	return st, nil
}

// simulatePlan dry-runs the whole normalized schedule against st,
// interleaving the spec's configured outage at its round, and returns
// every push's diff. Any error rejects the plan wholesale.
func simulatePlan(st planState, steps []core.CellPlanStep, spec core.CellSpec) ([]PlanPush, error) {
	outageDone := spec.OutageRound == 0
	outage := func() error {
		if !st.cells[spec.OutageCell].live {
			return fmt.Errorf("round %d outage targets cell %d, already retired by the plan", spec.OutageRound, spec.OutageCell)
		}
		if spec.Quorum > 0 {
			if st.liveCount()-1 < spec.Quorum {
				return fmt.Errorf("round %d outage leaves %d live cells, below quorum %d", spec.OutageRound, st.liveCount()-1, spec.Quorum)
			}
			st.maskOutage(spec.OutageCell)
		}
		// Wait-all restores the cell within the outage round: no state change.
		return nil
	}
	var pushes []PlanPush
	version := 0
	for i := 0; i < len(steps); {
		r := steps[i].Round
		j := i
		for j < len(steps) && steps[j].Round == r {
			j++
		}
		// The outage kill fires after the same round's push is applied, so
		// pushes at earlier rounds see the healthy fabric and pushes at
		// later rounds see the post-outage one.
		if !outageDone && spec.OutageRound < r {
			if err := outage(); err != nil {
				return nil, err
			}
			outageDone = true
		}
		next, diff, err := reconfigure(st, steps[i:j], spec.Quorum)
		if err != nil {
			return nil, fmt.Errorf("round %d push: %w", r, err)
		}
		st = next
		version++
		pushes = append(pushes, PlanPush{Round: r, Version: version, Diff: diff})
		if !outageDone && spec.OutageRound == r {
			if err := outage(); err != nil {
				return nil, err
			}
			outageDone = true
		}
		i = j
	}
	if !outageDone {
		if err := outage(); err != nil {
			return nil, err
		}
	}
	return pushes, nil
}

// validatePlan normalizes and wholesale-validates cfg's plan against its
// cell spec: well-formedness first, then the full schedule simulation.
// Returns the canonical steps (nil for a no-op plan).
func validatePlan(cfg core.RunConfig, spec core.CellSpec) ([]core.CellPlanStep, error) {
	steps := cfg.CellPlan.Normalized()
	if len(steps) == 0 {
		return nil, nil
	}
	if err := cfg.CellPlan.Validate(); err != nil {
		return nil, err
	}
	st, err := planStart(cfg, spec)
	if err != nil {
		return nil, err
	}
	if _, err := simulatePlan(st, steps, spec); err != nil {
		return nil, err
	}
	return steps, nil
}

// PlanDiff validates cfg's plan and returns every push's dry-run diff
// without building a single platform — the `liflsim plan` verb. A config
// without a plan returns no pushes; an invalid plan returns the rejection
// the fabric would record.
func PlanDiff(cfg core.RunConfig) ([]PlanPush, error) {
	if cfg.Cells == nil {
		return nil, fmt.Errorf("cell: config has no Cells spec to reconfigure")
	}
	spec := *cfg.Cells
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Defaulted()
	steps := cfg.CellPlan.Normalized()
	if len(steps) == 0 {
		return nil, nil
	}
	if err := cfg.CellPlan.Validate(); err != nil {
		return nil, err
	}
	st, err := planStart(cfg, spec)
	if err != nil {
		return nil, err
	}
	return simulatePlan(st, steps, spec)
}

// stateOf snapshots the fabric's current reconfigurable state — the
// last-known-good copy a push is validated against and rolls back to.
func (f *fabric) stateOf() planState {
	st := planState{quota: f.quota}
	for _, c := range f.cells {
		st.cells = append(st.cells, planCell{
			id:      c.id,
			weight:  c.weight,
			clients: c.clients,
			pop:     c.pop,
			goal:    c.goal,
			live:    c.alive(),
		})
	}
	return st
}

// rejectPlan drops the remaining plan and records why: the fabric keeps
// running on its last-known-good configuration.
func (f *fabric) rejectPlan(round int, err error) {
	if f.detail.Plan == nil {
		f.detail.Plan = &PlanOutcome{}
	}
	f.detail.Plan.Rejected = fmt.Sprintf("round %d: %v", round, err)
	f.planNext = len(f.plan)
}

// applyPlan applies the config push stamped for round r, if any: validate
// against the live state, materialize joined cells, then commit the swap
// atomically. Any failure keeps the snapshot (nothing is half-applied)
// and rejects the rest of the plan.
func (f *fabric) applyPlan(r int) {
	if f.planNext >= len(f.plan) || f.plan[f.planNext].Round != r {
		return
	}
	first := f.planNext
	for f.planNext < len(f.plan) && f.plan[f.planNext].Round == r {
		f.planNext++
	}
	steps := f.plan[first:f.planNext]
	snap := f.stateOf() // last-known-good: untouched unless we commit
	next, diff, err := reconfigure(snap, steps, f.spec.Quorum)
	if err != nil {
		// Statically validated, so only reachable if the live fabric
		// diverged from the simulated schedule; keep last-known-good.
		f.rejectPlan(r, err)
		return
	}
	// Materialize joined cells before touching any fabric state: a failed
	// construction rolls back by simply not committing.
	var joins []*fcell
	for id := len(f.cells); id < len(next.cells); id++ {
		pc := next.cells[id]
		ccfg := f.cellConfig(id, pc.clients, pc.goal)
		plat, err := core.NewPlatform(ccfg)
		if err != nil {
			f.rejectPlan(r, fmt.Errorf("materializing joined cell %d: %w", id, err))
			return
		}
		// The handoff: a joined cell starts from the fabric's current
		// global model, not from initialization.
		plat.InstallGlobal(f.global.Clone())
		joins = append(joins, &fcell{
			id:          id,
			name:        cellName(id),
			cfg:         ccfg,
			plat:        plat,
			rng:         newCellRNG(ccfg),
			clients:     pc.clients,
			pop:         pc.pop,
			goal:        pc.goal,
			weight:      pc.weight,
			joinedRound: r,
		})
	}
	// Commit: the atomic swap from snapshot to next.
	for _, c := range joins {
		f.cells = append(f.cells, c)
		f.beats.Beat(c.name)
		f.startBeatChain(c)
		f.detail.Plan.CellsJoined++
		f.cfg.Telemetry.Counter("fabric/cells_joined", obs.Det).Inc()
	}
	for _, c := range f.cells {
		pc := next.cells[c.id]
		if c.alive() && !pc.live {
			// Drain-then-delete: the round barrier already folded the
			// cell's last round, so banking and discarding is the whole
			// delete; the fabric's global carries its contribution forward.
			c.drained = true
			c.drainedRound = r
			c.bank()
			c.plat = nil
			f.beats.Forget(c.name)
			f.detail.Plan.CellsDrained++
			f.cfg.Telemetry.Counter("fabric/cells_drained", obs.Det).Inc()
		}
		c.clients, c.goal, c.weight = pc.clients, pc.goal, pc.weight
	}
	f.detail.Plan.Version++
	f.detail.Plan.Pushes = append(f.detail.Plan.Pushes, PlanPush{Round: r, Version: f.detail.Plan.Version, Diff: diff})
	f.cfg.Telemetry.Counter("fabric/plan_pushes_applied", obs.Det).Inc()
}
