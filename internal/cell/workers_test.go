package cell

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// The fabric analogue of core's workers contract: cells step concurrently
// (cfg.Workers bounds the pool), but each cell owns a private engine and
// the cross-cell tier folds contributions in cell-index order — so the
// merged Report and the per-cell Detail must be byte-identical for any
// worker count. This doubles as the -race stress of parallel per-cell
// stepping: with Workers=8 over 4 cells, every StepRound runs on its own
// goroutine each round.
func TestFabricWorkersByteIdentical(t *testing.T) {
	base := baseCfg()
	base.Cells = &core.CellSpec{Count: 4, Regions: []float64{0.4, 0.3, 0.2, 0.1}}

	ref := base
	ref.Workers = 1
	wantRep, wantDet, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(wantRep)
	for _, w := range []int{2, 3, 8} {
		cfg := base
		cfg.Workers = w
		rep, det, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		stripWall(rep)
		if !reflect.DeepEqual(wantRep, rep) {
			t.Fatalf("workers=%d merged Report diverged from workers=1:\nw=1: rounds=%d elapsed=%v cpu=%v\nw=%d: rounds=%d elapsed=%v cpu=%v",
				w, wantRep.RoundsRun, wantRep.Elapsed, wantRep.CPUTotal,
				w, rep.RoundsRun, rep.Elapsed, rep.CPUTotal)
		}
		if !reflect.DeepEqual(wantDet, det) {
			t.Fatalf("workers=%d per-cell Detail diverged from workers=1", w)
		}
	}
}

// Parallel stepping must preserve the failover path too: a cell outage
// detected mid-run re-routes clients identically whether the surviving
// cells step serially or concurrently.
func TestFabricWorkersByteIdenticalUnderOutage(t *testing.T) {
	base := baseCfg()
	base.MaxRounds = 120
	base.Cells = &core.CellSpec{
		Count:       3,
		OutageCell:  1,
		OutageRound: 6,
		Quorum:      2,
	}

	ref := base
	ref.Workers = 1
	wantRep, wantDet, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(wantRep)
	cfg := base
	cfg.Workers = 8
	rep, det, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripWall(rep)
	if !reflect.DeepEqual(wantRep, rep) || !reflect.DeepEqual(wantDet, det) {
		t.Fatal("outage run diverged between workers=1 and workers=8")
	}
}
