package cell

import (
	"testing"

	"repro/internal/core"
)

// The elastic headline (ISSUE acceptance): a flash crowd landing on one
// region mid-run produces a time-to-accuracy cliff — the crowded cell's
// quota share gets capped by its resident population, the lost shares cost
// accuracy credit every round, and the milestones slip — while the same
// crowd absorbed by a scale-out join (fresh cells bringing their own
// capacity) shows no cliff: its milestone crossings land within one round
// of a fleet that was pre-sized for the crowd from round 1.
func TestCellPlanScaleOutAbsorbsFlashCrowd(t *testing.T) {
	const crowdRound = 25
	const crowd = 2880 // 8x the fabric's original population

	base := baseCfg()
	base.MaxRounds = 160
	// A quota high enough that the crowd overloads one region's residents:
	// the flash-crowd cell's apportioned share (~179) caps at its 144
	// residents, and the capped shares are lost credit.
	base.ActivePerRound = 192
	base.Cells = geoSpec()

	flash := base
	flash.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: crowdRound, Op: core.CellWeight, Cell: 0, Weight: 0.4, Clients: crowd},
	}}
	scale := base
	scale.CellPlan = &core.CellPlan{Steps: []core.CellPlanStep{
		{Round: crowdRound, Op: core.CellJoin, Weight: 0.5, Clients: crowd / 2},
		{Round: crowdRound, Op: core.CellJoin, Weight: 0.5, Clients: crowd / 2},
	}}
	// The control: a fleet sized for the crowd from round 1 — the original
	// four regions plus two crowd-sized cells, same active quota.
	presized := baseCfg()
	presized.MaxRounds = 160
	presized.ActivePerRound = 192
	presized.Clients = base.Clients + crowd
	presized.Cells = &core.CellSpec{Count: 6, Regions: []float64{
		0.4 * 360, 0.3 * 360, 0.2 * 360, 0.1 * 360, crowd / 2, crowd / 2,
	}}

	flashRep, flashDet := runPlan(t, flash)
	scaleRep, scaleDet := runPlan(t, scale)
	preRep, _ := runPlan(t, presized)
	for name, rep := range map[string]*core.Report{"flash": flashRep, "scale": scaleRep, "presized": preRep} {
		if !rep.Reached {
			t.Fatalf("%s run did not reach target in %d rounds", name, rep.RoundsRun)
		}
	}
	if flashDet.Plan.Version != 1 || scaleDet.Plan.CellsJoined != 2 {
		t.Fatalf("plans not applied: flash %+v scale %+v", flashDet.Plan, scaleDet.Plan)
	}

	// The acceptance gate: every scale-out milestone crossing lands within
	// one round of the pre-sized fleet's.
	if len(scaleRep.Milestones) != len(preRep.Milestones) {
		t.Fatalf("milestone counts differ: scale %d, presized %d", len(scaleRep.Milestones), len(preRep.Milestones))
	}
	for i, m := range scaleRep.Milestones {
		pre := preRep.Milestones[i]
		if d := m.At.Round - pre.At.Round; d < -1 || d > 1 {
			t.Errorf("milestone %.2f crossed at round %d under scale-out, %d pre-sized (cliff: |Δ| > 1)",
				m.Target, m.At.Round, pre.At.Round)
		}
	}

	// The flash crowd, by contrast, is a real cliff: the capped region
	// bleeds credit every round, so the target milestone slips by many
	// rounds and the time-to-accuracy stretches measurably.
	last := len(flashRep.Milestones) - 1
	if d := flashRep.Milestones[last].At.Round - preRep.Milestones[last].At.Round; d < 5 {
		t.Errorf("flash crowd shows no round cliff: target milestone slipped only %d rounds", d)
	}
	if flashRep.TimeToTarget <= scaleRep.TimeToTarget {
		t.Errorf("flash crowd shows no time cliff: tta %v <= scale-out %v", flashRep.TimeToTarget, scaleRep.TimeToTarget)
	}

	// The overload is visible in the books: the crowded cell's share is
	// pinned at its resident population, so the fabric fields fewer shares
	// than its quota.
	flashShares := 0
	for _, c := range flashDet.Cells {
		flashShares += c.ActivePerRound
	}
	if flashShares >= base.ActivePerRound {
		t.Fatalf("flash crowd lost no shares: %d >= quota %d", flashShares, base.ActivePerRound)
	}
	scaleShares := 0
	for _, c := range scaleDet.Cells {
		scaleShares += c.ActivePerRound
	}
	if scaleShares != base.ActivePerRound {
		t.Fatalf("scale-out lost shares: %d != quota %d", scaleShares, base.ActivePerRound)
	}
}
