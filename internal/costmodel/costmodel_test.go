package costmodel

import (
	"testing"

	"repro/internal/sim"
)

// r152 is the calibration payload (~232 MiB).
const r152 = uint64(60_817_408 * 4)

func TestCyclesRoundTrip(t *testing.T) {
	d := Cycles(2.8e9)
	if d != sim.Second {
		t.Fatalf("2.8G cycles = %v, want 1s at 2.8GHz", d)
	}
	if got := CyclesOf(d); got < 2.79e9 || got > 2.81e9 {
		t.Fatalf("round trip = %v", got)
	}
}

// The calibration targets of Fig. 7(a): LIFL 0.76 s, SF ≈ 3×, SL ≈ 5.8×
// for a ResNet-152 transfer.
func TestFig7LatencyCalibration(t *testing.T) {
	p := Default()
	shm, _ := p.ShmWrite(r152)
	lifl := shm + p.ShmKeyPassLatency
	if lifl < 700*sim.Millisecond || lifl > 820*sim.Millisecond {
		t.Fatalf("LIFL transfer = %v, want ≈0.76s", lifl)
	}
	ser, _ := p.Serialize(r152, 1)
	tx, _ := p.KernelTraversal(r152)
	des, _ := p.Deserialize(r152, 1)
	sf := ser + 2*tx + des
	if r := float64(sf) / float64(lifl); r < 2.6 || r > 3.4 {
		t.Fatalf("SF/LIFL = %.2f, want ≈3", r)
	}
	sc, _ := p.SidecarHop(r152)
	mb, _ := p.BrokerHop(r152)
	sl := sf + 2*sc + mb
	if r := float64(sl) / float64(lifl); r < 5.3 || r > 6.4 {
		t.Fatalf("SL/LIFL = %.2f, want ≈5.8", r)
	}
}

// Fig. 7(b): LIFL CPU ≈ 2.45 Gcycles for ResNet-152.
func TestFig7CPUCalibration(t *testing.T) {
	p := Default()
	_, cpu := p.ShmWrite(r152)
	g := CyclesOf(cpu) / 1e9
	if g < 2.3 || g > 2.6 {
		t.Fatalf("LIFL CPU = %.2f Gcycles, want ≈2.45", g)
	}
}

// §6.1: a cross-node ResNet-152 transfer ≈ 4.2 s on the 10 GbE testbed.
func TestCrossNodeCalibration(t *testing.T) {
	p := Default()
	shm, _ := p.ShmWrite(r152)
	ser, _ := p.Serialize(r152, 1)
	tx, _ := p.KernelTraversal(r152)
	des, _ := p.Deserialize(r152, 1)
	total := shm + ser + tx + p.WireTime(r152) + 2*p.NICLatency + tx + des + shm
	if total < 3500*sim.Millisecond || total > 4700*sim.Millisecond {
		t.Fatalf("cross-node transfer = %v, want ≈4.2s", total)
	}
}

func TestWireTimeMatchesNIC(t *testing.T) {
	p := Default()
	// 10 Gb/s = 1.25 GB/s: 1.25 GB should take one second.
	if got := p.WireTime(1_250_000_000); got < 990*sim.Millisecond || got > 1010*sim.Millisecond {
		t.Fatalf("wire time = %v", got)
	}
}

func TestEvalTimeScalesWithModel(t *testing.T) {
	p := Default()
	small := p.EvalTime(1 << 30)
	big := p.EvalTime(2 << 30)
	if big != 2*small {
		t.Fatalf("eval not linear: %v vs %v", small, big)
	}
}

func TestAggregateOneLinear(t *testing.T) {
	p := Default()
	got := p.AggregateOne(2 * r152)
	want := 2 * p.AggregateOne(r152)
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Microsecond {
		t.Fatalf("aggregation cost not linear in bytes: %v vs %v", got, want)
	}
}

func TestSerializePerTensorOverhead(t *testing.T) {
	p := Default()
	few, _ := p.Serialize(1000, 1)
	many, _ := p.Serialize(1000, 100)
	if many <= few {
		t.Fatal("per-tensor overhead missing")
	}
}

func TestDefaultsSane(t *testing.T) {
	p := Default()
	if p.CoresPerNode != 64 {
		t.Errorf("cores = %d, testbed has 64", p.CoresPerNode)
	}
	if p.MemPerNode != 192<<30 {
		t.Errorf("memory = %d, testbed has 192GB", p.MemPerNode)
	}
	if p.EWMAAlpha != 0.7 {
		t.Errorf("EWMA alpha = %v, paper uses 0.7", p.EWMAAlpha)
	}
	if p.LeafFanIn != 2 {
		t.Errorf("leaf fan-in = %d, paper uses I=2", p.LeafFanIn)
	}
	if p.ReplanPeriod != 2*sim.Minute {
		t.Errorf("replan period = %v, paper uses 2 minutes", p.ReplanPeriod)
	}
	if p.QueueStagesSFMono != 1 || p.QueueStagesLIFL != 1 ||
		p.QueueStagesSFMicro != 2 || p.QueueStagesSLB != 3 {
		t.Errorf("queue stage multipliers wrong: %d/%d/%d/%d",
			p.QueueStagesSFMono, p.QueueStagesLIFL, p.QueueStagesSFMicro, p.QueueStagesSLB)
	}
}
