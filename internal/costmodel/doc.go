// Package costmodel concentrates every calibrated constant of the LIFL
// simulation in one place. Each number is tied to a measurement the paper
// reports; the comment on each field names the figure it is calibrated
// against. Experiments never hard-code latencies — they compose these
// per-component costs, so the relative results (who wins, by what factor)
// emerge from the same structural differences the paper describes:
//
//   - LIFL intra-node:  gateway writes once to shm, aggregators exchange
//     16-byte object keys via SKMSG (≈ free), so per-transfer cost is one
//     shm write.
//   - Serverful (SF):   direct gRPC over the kernel loopback — serialize,
//     copy through the kernel, deserialize.
//   - Serverless (SL):  the SF path plus a container sidecar interception on
//     each side plus a store-and-forward message broker hop.
//
// Calibration targets (Fig. 7(a), ResNet-152 ≈ 232 MB intra-node transfer):
// LIFL 0.76 s, SF ≈ 3× LIFL, SL ≈ 5.8× LIFL. CPU (Fig. 7(b)): LIFL 2.45 G
// cycles, SL ≈ 8× LIFL. Cross-node ResNet-152 transfer ≈ 4.2 s (§6.1).
//
// Layer (DESIGN.md): leaf beside internal/sim — every calibrated
// constant in one place, consumed by all component models.
package costmodel
