package costmodel

import (
	"time"

	"repro/internal/sim"
)

// CPUFreqHz converts cycles to time on the paper's testbed CPUs
// (64-core Intel Cascade Lake @ 2.8 GHz).
const CPUFreqHz = 2.8e9

// Cycles converts a cycle count into CPU time.
func Cycles(c float64) sim.Duration {
	return sim.Duration(c / CPUFreqHz * float64(time.Second))
}

// CyclesOf converts CPU time back into cycles (for Fig. 7(b)-style reports).
func CyclesOf(d sim.Duration) float64 {
	return d.Seconds() * CPUFreqHz
}

// Params holds every tunable of the platform model. Zero value is invalid;
// use Default().
type Params struct {
	// ---- Node hardware (testbed: 64-core @2.8 GHz, 192 GB, 10 GbE) ----

	CoresPerNode    int
	MemPerNode      uint64  // bytes
	NICBandwidth    float64 // bytes/sec, full duplex per direction
	NICLatency      sim.Duration
	GatewayCores    int // cores initially assigned to the per-node gateway
	GatewayCoresMax int // vertical-scaling ceiling (§4.2)

	// ---- Intra-node data plane (per payload byte unless noted) ----

	// ShmWriteNsPerByte: gateway's one-time payload processing into shared
	// memory (protocol processing + tensor→array conversion + copy).
	// Calibrated: 232 MB × 3.12 ns/B ≈ 0.76 s (Fig. 7(a), LIFL bar).
	ShmWriteNsPerByte float64
	// ShmCPUCyclesPerByte: CPU charged for the same write.
	// Calibrated: 232 MB × 10.1 c/B ≈ 2.45 G cycles (Fig. 7(b), LIFL bar).
	ShmCPUCyclesPerByte float64
	// ShmKeyPassLatency: SKMSG delivery of a 16-byte object key between
	// co-located aggregators (zero-copy hand-off, Appendix A).
	ShmKeyPassLatency sim.Duration
	// ShmKeyPassCycles: CPU for the SKMSG redirect (eBPF program run).
	ShmKeyPassCycles float64

	// KernelStackParallelism: how many kernel TCP/IP traversals a node can
	// service concurrently (softirq/ksoftirqd effective parallelism). This
	// is the contention behind Fig. 4: co-located aggregators exchanging
	// updates over the kernel throttle each other even on a 64-core node.
	KernelStackParallelism int

	// KernelNsPerByte: one traversal of the kernel TCP/IP path (copy in,
	// protocol processing, copy out) as used by SF's direct gRPC channel.
	// A loopback transfer costs TX + RX = 2 traversals.
	// Calibrated: with (de)serialization, the loopback path totals
	// 9.5 ns/B → ≈2.31 s for ResNet-152 ≈ 3 × LIFL (Fig. 7(a)).
	KernelNsPerByte float64
	// KernelCPUCyclesPerByte: CPU per traversal.
	// Calibrated so SF ≈ 7.4 G cycles for ResNet-152 (Fig. 7(b)).
	KernelCPUCyclesPerByte float64

	// SerializeNsPerByte / DeserializeNsPerByte: tensor (de)serialization at
	// protocol endpoints (gRPC marshalling); charged on inter-node paths and
	// on every broker/sidecar hop.
	SerializeNsPerByte   float64
	DeserializeNsPerByte float64
	// SerializePerTensorNs: fixed cost per layer tensor (header, reflection).
	SerializePerTensorNs float64

	// SidecarNsPerByte: extra latency of a container-based sidecar
	// intercepting and forwarding one payload (+SC share of Fig. 7(a)).
	SidecarNsPerByte float64
	// SidecarCPUCyclesPerByte: CPU of the same interception.
	SidecarCPUCyclesPerByte float64
	// SidecarIdleCPUFrac: fraction of one core a container sidecar burns
	// while idle (polling, health checks) — the "heavyweight sidecar" tax.
	// The eBPF sidecar's idle cost is exactly zero (§4.3).
	SidecarIdleCPUFrac float64
	// SidecarMemBytes: resident memory of a container sidecar.
	SidecarMemBytes uint64

	// BrokerNsPerByte: store-and-forward through the message broker
	// (+MB share of Fig. 7(a)): enqueue copy + dequeue copy + dispatch.
	BrokerNsPerByte float64
	// BrokerCPUCyclesPerByte: CPU of the broker hop.
	BrokerCPUCyclesPerByte float64
	// BrokerBaseLatency: fixed per-message broker overhead.
	BrokerBaseLatency sim.Duration

	// EBPFMetricsCycles: one eBPF sidecar invocation (metrics collection on
	// a send() event, §4.3). Event-driven: charged only per message.
	EBPFMetricsCycles float64

	// ---- Aggregation & evaluation compute ----

	// AggCyclesPerByte: aggregating one model update into the accumulator
	// (read + multiply-add + write per 4 B parameter).
	AggCyclesPerByte float64
	// EvalSecondsPerGB: evaluating the global model after a round, scaled by
	// model size (stands in for a fixed validation set forward pass).
	EvalSecondsPerGB float64

	// ---- Function runtime (Knative-like sandbox lifecycle) ----

	// ColdStartDelay: creating a new aggregator sandbox (pull is warm; this
	// is container + runtime + lib init). Drives the cascading cold starts
	// of reactive chain scaling (§2.3, §5.3).
	ColdStartDelay sim.Duration
	// ColdStartCycles: CPU consumed by a cold start.
	ColdStartCycles float64
	// WarmStartDelay: re-activating an idle-but-warm instance.
	WarmStartDelay sim.Duration
	// RoleConvertDelay: converting a warm leaf into a middle/top aggregator
	// (§5.3) — no state sync needed, effectively an RPC.
	RoleConvertDelay sim.Duration
	// AggregatorMemBytes: resident memory of one aggregator runtime,
	// excluding model buffers.
	AggregatorMemBytes uint64
	// RuntimeUpkeepCPUFrac: fraction of one core a live aggregator sandbox
	// consumes continuously (interpreter, health probes, watchdogs). This
	// is usage-accounted for serverless systems; serverful always-on
	// deployments cover it inside their reservation.
	RuntimeUpkeepCPUFrac float64
	// KeepAliveIdle: how long an idle warm instance is retained before the
	// platform reclaims it.
	KeepAliveIdle sim.Duration

	// ---- Cross-cell fabric (internal/cell) ----

	// InterCellRTT: round-trip time between cells over the WAN backbone
	// (cells are independent clusters in different localities; the
	// cross-cell tier pays one half-RTT per aggregate uplink and one per
	// global broadcast).
	InterCellRTT sim.Duration
	// InterCellBandwidth: provisioned inter-cell link rate, bytes/sec per
	// direction — an order of magnitude below the intra-cluster NIC rate,
	// which is what makes cell-local aggregation worth the second tier.
	InterCellBandwidth float64

	// ---- Control plane ----

	// EWMAAlpha: smoothing coefficient for queue-length estimates (§5.2,
	// α = 0.7 "yielding the best results").
	EWMAAlpha float64
	// LeafFanIn: I, model updates of clients per leaf aggregator (§5.2,
	// kept small — 2 — to maximize parallelism).
	LeafFanIn int
	// ReplanPeriod: hierarchy re-planning cycle (§6.1: 2-minute cycle).
	ReplanPeriod sim.Duration
	// MetricsScrapePeriod: LIFL agent → metrics server feed period.
	MetricsScrapePeriod sim.Duration
	// HeartbeatPeriod / HeartbeatTimeout: client keep-alive failure
	// detection (§3).
	HeartbeatPeriod  sim.Duration
	HeartbeatTimeout sim.Duration
	// CheckpointPeriodRounds: checkpoint the global model every N rounds
	// (Appendix B); 0 disables.
	CheckpointPeriodRounds int

	// ---- Queuing-stage memory multipliers (Fig. 13 / Appendix F) ----
	// Number of full payload buffers held along the client→aggregator
	// pipeline: SF-mono 1 (in-memory queue), LIFL 1 (shm, in-place),
	// SF-micro 2 (broker + aggregator), SL-B 3 (sidecar + broker + agg).
	QueueStagesSFMono  int
	QueueStagesLIFL    int
	QueueStagesSFMicro int
	QueueStagesSLB     int
}

// Default returns the calibrated parameter set. Every experiment starts from
// this and overrides only what its figure requires.
func Default() Params {
	return Params{
		CoresPerNode:    64,
		MemPerNode:      192 << 30,
		NICBandwidth:    10e9 / 8, // 10 Gb/s
		NICLatency:      100 * sim.Microsecond,
		GatewayCores:    1,
		GatewayCoresMax: 8,

		ShmWriteNsPerByte:   3.12,
		ShmCPUCyclesPerByte: 10.1,
		ShmKeyPassLatency:   60 * sim.Microsecond,
		ShmKeyPassCycles:    25_000,

		KernelStackParallelism: 8,

		KernelNsPerByte:        3.2,
		KernelCPUCyclesPerByte: 10.4,

		SerializeNsPerByte:   1.6,
		DeserializeNsPerByte: 1.5,
		SerializePerTensorNs: 2_000,

		SidecarNsPerByte:        2.15,
		SidecarCPUCyclesPerByte: 12.3,
		SidecarIdleCPUFrac:      0.05,
		SidecarMemBytes:         150 << 20,

		BrokerNsPerByte:        4.7,
		BrokerCPUCyclesPerByte: 25.0,
		BrokerBaseLatency:      1 * sim.Millisecond,

		EBPFMetricsCycles: 6_000,

		AggCyclesPerByte: 2.8,
		EvalSecondsPerGB: 42.0,

		ColdStartDelay:       1000 * sim.Millisecond,
		ColdStartCycles:      1.4e9,
		WarmStartDelay:       45 * sim.Millisecond,
		RoleConvertDelay:     8 * sim.Millisecond,
		AggregatorMemBytes:   350 << 20,
		RuntimeUpkeepCPUFrac: 0.05,
		KeepAliveIdle:        6 * sim.Minute,

		InterCellRTT:       60 * sim.Millisecond, // cross-region backbone
		InterCellBandwidth: 2.5e8,                // 2 Gb/s dedicated inter-cell link

		EWMAAlpha:              0.7,
		LeafFanIn:              2,
		ReplanPeriod:           2 * sim.Minute,
		MetricsScrapePeriod:    2 * sim.Second,
		HeartbeatPeriod:        5 * sim.Second,
		HeartbeatTimeout:       15 * sim.Second,
		CheckpointPeriodRounds: 10,

		QueueStagesSFMono:  1,
		QueueStagesLIFL:    1,
		QueueStagesSFMicro: 2,
		QueueStagesSLB:     3,
	}
}

// ---- Derived per-operation costs ----

// ShmWrite returns (latency, cpu) for the gateway writing a payload of size
// bytes into the shared-memory object store.
func (p Params) ShmWrite(size uint64) (sim.Duration, sim.Duration) {
	lat := sim.Duration(float64(size) * p.ShmWriteNsPerByte)
	cpu := Cycles(float64(size) * p.ShmCPUCyclesPerByte)
	return lat, cpu
}

// KernelTraversal returns (latency, cpu) for one pass through the kernel
// TCP/IP stack (one direction).
func (p Params) KernelTraversal(size uint64) (sim.Duration, sim.Duration) {
	lat := sim.Duration(float64(size) * p.KernelNsPerByte)
	cpu := Cycles(float64(size) * p.KernelCPUCyclesPerByte)
	return lat, cpu
}

// Serialize returns (latency, cpu) for marshalling a payload with nTensors
// layer tensors; cpu is charged equal to latency (CPU-bound work).
func (p Params) Serialize(size uint64, nTensors int) (sim.Duration, sim.Duration) {
	lat := sim.Duration(float64(size)*p.SerializeNsPerByte + float64(nTensors)*p.SerializePerTensorNs)
	return lat, lat
}

// Deserialize returns (latency, cpu) for unmarshalling.
func (p Params) Deserialize(size uint64, nTensors int) (sim.Duration, sim.Duration) {
	lat := sim.Duration(float64(size)*p.DeserializeNsPerByte + float64(nTensors)*p.SerializePerTensorNs)
	return lat, lat
}

// SidecarHop returns (latency, cpu) for a container sidecar intercepting and
// forwarding a payload once.
func (p Params) SidecarHop(size uint64) (sim.Duration, sim.Duration) {
	lat := sim.Duration(float64(size) * p.SidecarNsPerByte)
	cpu := Cycles(float64(size) * p.SidecarCPUCyclesPerByte)
	return lat, cpu
}

// BrokerHop returns (latency, cpu) for a store-and-forward pass through the
// message broker.
func (p Params) BrokerHop(size uint64) (sim.Duration, sim.Duration) {
	lat := p.BrokerBaseLatency + sim.Duration(float64(size)*p.BrokerNsPerByte)
	cpu := Cycles(float64(size) * p.BrokerCPUCyclesPerByte)
	return lat, cpu
}

// AggregateOne returns the CPU time to fold one update of size bytes into an
// accumulator.
func (p Params) AggregateOne(size uint64) sim.Duration {
	return Cycles(float64(size) * p.AggCyclesPerByte)
}

// EvalTime returns the post-round evaluation time for a model of size bytes.
func (p Params) EvalTime(size uint64) sim.Duration {
	gb := float64(size) / (1 << 30)
	return sim.Duration(gb * p.EvalSecondsPerGB * float64(sim.Second))
}

// WireTime returns NIC service time for size bytes at line rate.
func (p Params) WireTime(size uint64) sim.Duration {
	return sim.Duration(float64(size) / p.NICBandwidth * float64(sim.Second))
}
