package coordinator

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// GuidedSelector implements Oort-style guided participant selection (Lai et
// al., OSDI'21) — the client-selection line of work the paper cites as
// complementary to LIFL (§7). Each client's utility combines statistical
// utility (how informative its data is, proxied here by sample count and
// observed loss contribution) with system utility (how fast it returns
// updates), and selection balances exploitation of high-utility clients with
// exploration of unseen ones.
type GuidedSelector struct {
	rng *sim.RNG
	// ExplorationFrac is the slice of each round reserved for clients that
	// have never participated (Oort's exploration).
	ExplorationFrac float64
	// RoundPenalty decays the utility of recently used clients to spread
	// participation.
	RoundPenalty float64

	stats map[ClientID]*clientStats
	round int
}

type clientStats struct {
	statUtil  float64
	sysUtil   float64
	lastUsed  int
	everUsed  bool
	timesUsed int
}

// NewGuidedSelector builds a selector with Oort-like defaults.
func NewGuidedSelector(rng *sim.RNG) *GuidedSelector {
	return &GuidedSelector{
		rng:             rng,
		ExplorationFrac: 0.2,
		RoundPenalty:    0.5,
		stats:           make(map[ClientID]*clientStats),
	}
}

// Observe records a completed participation: samples is the client's c_k,
// latency its round-trip time, loss the (proxy) training loss it reported.
func (g *GuidedSelector) Observe(c ClientID, samples int, latency sim.Duration, loss float64) {
	st := g.stat(c)
	st.everUsed = true
	st.timesUsed++
	st.lastUsed = g.round
	// Oort's statistical utility: |B| · sqrt(sum loss² / |B|) ∝ sqrt(|B|·loss).
	st.statUtil = float64(samples) * math.Sqrt(math.Max(loss, 1e-6))
	if latency > 0 {
		st.sysUtil = 1 / latency.Seconds()
	}
}

func (g *GuidedSelector) stat(c ClientID) *clientStats {
	st, ok := g.stats[c]
	if !ok {
		st = &clientStats{}
		g.stats[c] = st
	}
	return st
}

// utility scores one candidate for the current round.
func (g *GuidedSelector) utility(c ClientID) float64 {
	st := g.stat(c)
	if !st.everUsed {
		return 0 // handled by the exploration slice
	}
	u := st.statUtil * (0.5 + 0.5*math.Min(st.sysUtil, 1))
	// Recency penalty: clients used last round are temporarily demoted.
	age := g.round - st.lastUsed
	if age < 1 {
		age = 0
	}
	decay := 1 - g.RoundPenalty*math.Exp2(-float64(age))
	return u * decay
}

// Select picks n participants: the exploration slice uniformly from
// never-used clients, the rest by utility (exploitation).
func (g *GuidedSelector) Select(available []ClientID, n int) []ClientID {
	g.round++
	if n > len(available) {
		n = len(available)
	}
	var unseen, seen []ClientID
	for _, c := range available {
		if g.stat(c).everUsed {
			seen = append(seen, c)
		} else {
			unseen = append(unseen, c)
		}
	}
	nExplore := int(float64(n)*g.ExplorationFrac + 0.5)
	if nExplore > len(unseen) {
		nExplore = len(unseen)
	}
	out := make([]ClientID, 0, n)
	perm := g.rng.Perm(len(unseen))
	for _, i := range perm[:nExplore] {
		out = append(out, unseen[i])
	}
	// Exploit: highest utility first, deterministic tie-break by ID.
	sort.Slice(seen, func(i, j int) bool {
		ui, uj := g.utility(seen[i]), g.utility(seen[j])
		if ui != uj {
			return ui > uj
		}
		return seen[i] < seen[j]
	})
	for _, c := range seen {
		if len(out) == n {
			break
		}
		out = append(out, c)
	}
	// Backfill from unseen if exploitation ran short.
	for _, i := range perm[nExplore:] {
		if len(out) == n {
			break
		}
		out = append(out, unseen[i])
	}
	for _, c := range out {
		st := g.stat(c)
		st.everUsed = true
		st.lastUsed = g.round
	}
	return out
}

// TimesUsed reports how often a client has participated.
func (g *GuidedSelector) TimesUsed(c ClientID) int { return g.stat(c).timesUsed }
