package coordinator

import (
	"testing"

	"repro/internal/aggcore"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/fedavg"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func pool(n int) []ClientID {
	out := make([]ClientID, n)
	for i := range out {
		out[i] = ClientID(rune('a' + i%26))
	}
	for i := range out {
		out[i] = ClientID(string(out[i]) + string(rune('0'+i/26)))
	}
	return out
}

func TestSelectorOverProvisions(t *testing.T) {
	s := NewSelector(sim.NewRNG(1), 0.25)
	got := s.Select(pool(100), 40)
	if len(got) != 50 { // 40 × 1.25
		t.Fatalf("selected %d, want 50", len(got))
	}
	seen := make(map[ClientID]bool)
	for _, c := range got {
		if seen[c] {
			t.Fatalf("duplicate selection %v", c)
		}
		seen[c] = true
	}
}

func TestSelectorCapsAtAvailability(t *testing.T) {
	s := NewSelector(sim.NewRNG(1), 0.5)
	if got := s.Select(pool(10), 20); len(got) != 10 {
		t.Fatalf("selected %d from pool of 10", len(got))
	}
}

func TestSelectorDeterministicPerSeed(t *testing.T) {
	a := NewSelector(sim.NewRNG(7), 0).Select(pool(50), 10)
	b := NewSelector(sim.NewRNG(7), 0).Select(pool(50), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSelector(sim.NewRNG(8), 0).Select(pool(50), 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical selection (suspicious)")
	}
}

func TestHeartbeatsDetectFailures(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHeartbeats(eng, 15*sim.Second)
	h.Beat("c1")
	h.Beat("c2")
	eng.After(10*sim.Second, func() { h.Beat("c1") }) // c1 stays alive
	eng.After(20*sim.Second, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	failed := h.Failed()
	if len(failed) != 1 || failed[0] != "c2" {
		t.Fatalf("failed = %v", failed)
	}
	h.Forget("c2")
	if len(h.Failed()) != 0 {
		t.Fatal("forget did not clear")
	}
}

func TestRoundACT(t *testing.T) {
	r := Round{Started: 10 * sim.Second, Ended: 45 * sim.Second}
	if r.ACT() != 35*sim.Second {
		t.Fatalf("ACT = %v", r.ACT())
	}
}

func TestReusePickerPrefersIdleCompleted(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.New(eng, sim.NewRNG(1), costmodel.Default(), 1)
	mk := func(goal int) *aggcore.Aggregator {
		a := aggcore.New("a", aggcore.RoleLeaf, c.Nodes[0], fedavg.FedAvg{}, 1, 1)
		a.OnComplete = func(*aggcore.Aggregator, aggcore.Update) {}
		a.Mode = aggcore.Eager
		a.Assign(aggcore.RoleLeaf, goal, "", 1)
		return a
	}
	busy := mk(2) // goal 2, receives only 1 → not idle
	done := mk(1) // completes
	for _, a := range []*aggcore.Aggregator{busy, done} {
		a.Receive(aggcore.Update{Tensor: tensorOf(1), Weight: 1, Size: 100})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	var rp ReusePicker
	if got := rp.PickIdle([]*aggcore.Aggregator{busy, done}); got != done {
		t.Fatalf("picked %v", got)
	}
	if got := rp.PickIdle([]*aggcore.Aggregator{busy}); got != nil {
		t.Fatal("picked a non-idle aggregator")
	}
	if got := rp.PickIdle(nil); got != nil {
		t.Fatal("picked from empty set")
	}
	rp.MarkConversion()
	if rp.Conversions != 1 {
		t.Fatalf("conversions = %d", rp.Conversions)
	}
}

func tensorOf(v float32) *tensor.Tensor {
	return tensor.FromSlice([]float32{v})
}
