// Package coordinator implements the cluster-wide control-plane pieces that
// sit between the FL job designer and the serverless control plane (Fig. 3):
// client selection with over-provisioning, keep-alive failure detection for
// clients (§3), round lifecycle bookkeeping, and the opportunistic
// aggregator-reuse policy of §5.3.
//
// The same heartbeat machinery monitors whole cells in the multi-cell
// fabric (internal/cell): cells beat the fabric's control plane every
// HeartbeatPeriod, and Deadline lets the fabric schedule its detection
// sweeps exactly where a silence could first matter.
//
// Layer (DESIGN.md): component model under internal/systems — the
// control plane: heartbeats, guided role flips (§5.3), cell outage
// detection.
package coordinator
