package coordinator

import (
	"sort"

	"repro/internal/aggcore"
	"repro/internal/sim"
)

// ClientID names an FL client.
type ClientID string

// Selector performs the selector role of §2.2: choosing a diverse set of
// participants each round. Diversity comes from uniform sampling over the
// available population (the paper delegates smarter participant selection —
// Oort etc. — to orthogonal work).
type Selector struct {
	rng *sim.RNG
	// OverProvision is the extra fraction of clients selected beyond the
	// aggregation goal to absorb failures (§3 "enhances resilience by
	// over-provisioning the number of clients").
	OverProvision float64
}

// NewSelector builds a selector with the given over-provisioning fraction.
func NewSelector(rng *sim.RNG, overProvision float64) *Selector {
	return &Selector{rng: rng, OverProvision: overProvision}
}

// Select draws clients for a round with aggregation goal n: n·(1+op)
// uniformly without replacement (capped by availability). The result is
// deterministic for a given RNG state.
func (s *Selector) Select(available []ClientID, goal int) []ClientID {
	want := goal + int(float64(goal)*s.OverProvision+0.5)
	if want > len(available) {
		want = len(available)
	}
	idx := s.rng.Perm(len(available))[:want]
	sort.Ints(idx)
	out := make([]ClientID, want)
	for i, j := range idx {
		out[i] = available[j]
	}
	return out
}

// Heartbeats tracks client keep-alives; a client whose last beat is older
// than the timeout is declared failed and its slot is covered by the
// over-provisioned population.
type Heartbeats struct {
	eng     *sim.Engine
	timeout sim.Duration
	last    map[ClientID]sim.Duration
}

// NewHeartbeats builds a tracker with the given timeout.
func NewHeartbeats(eng *sim.Engine, timeout sim.Duration) *Heartbeats {
	return &Heartbeats{eng: eng, timeout: timeout, last: make(map[ClientID]sim.Duration)}
}

// Beat records a keep-alive from c now.
func (h *Heartbeats) Beat(c ClientID) { h.last[c] = h.eng.Now() }

// Failed returns clients whose beats have expired, sorted.
func (h *Heartbeats) Failed() []ClientID {
	now := h.eng.Now()
	var out []ClientID
	for c, t := range h.last {
		if now-t > h.timeout {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Forget drops a client (round ended or reassigned).
func (h *Heartbeats) Forget(c ClientID) { delete(h.last, c) }

// Deadline returns the instant c will be declared failed absent further
// beats (lastBeat + timeout), and whether c has an outstanding beat at
// all. The cell fabric uses it to schedule its detection sweeps instead of
// polling every period from time zero: cells are few and beat rarely, so
// the control plane wakes exactly when a silence could first matter.
func (h *Heartbeats) Deadline(c ClientID) (sim.Duration, bool) {
	t, ok := h.last[c]
	return t + h.timeout, ok
}

// Pending returns how many clients have an outstanding beat — contacted
// but neither forgotten (delivered their update) nor yet swept by Failed.
func (h *Heartbeats) Pending() int { return len(h.last) }

// Round tracks the lifecycle of one global-model round.
type Round struct {
	Number  int
	Goal    int
	Started sim.Duration
	Ended   sim.Duration
	// Received counts client updates that reached the aggregation service.
	Received int
	// Complete reports the round produced a new global model version.
	Complete bool
}

// ACT returns the aggregation completion time of the round.
func (r *Round) ACT() sim.Duration { return r.Ended - r.Started }

// ReusePicker implements §5.3: prefer converting a warm, idle aggregator
// that has completed its task over cold-starting a new instance for a
// higher level.
type ReusePicker struct {
	// Conversions counts successful reuses (for Fig. 8(c)-style reporting).
	Conversions uint64
}

// PickIdle returns the first aggregator (in slice order) that has completed
// its aggregation task and is idle, or nil. The paper picks "a leaf
// aggregator that has already completed its aggregation task and is idle"
// for middle duty, and "the first middle aggregator that completes its local
// aggregation" for top duty — callers pass the candidate set accordingly.
func (rp *ReusePicker) PickIdle(cands []*aggcore.Aggregator) *aggcore.Aggregator {
	for _, a := range cands {
		if a != nil && a.Idle() {
			return a
		}
	}
	return nil
}

// MarkConversion records a successful role conversion.
func (rp *ReusePicker) MarkConversion() { rp.Conversions++ }
