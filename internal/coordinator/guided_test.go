package coordinator

import (
	"testing"

	"repro/internal/sim"
)

func TestGuidedSelectorExploresUnseenFirst(t *testing.T) {
	g := NewGuidedSelector(sim.NewRNG(1))
	avail := pool(50)
	got := g.Select(avail, 10)
	if len(got) != 10 {
		t.Fatalf("selected %d", len(got))
	}
	// Round 1: everything unseen → all ten are exploration picks.
	for _, c := range got {
		if g.TimesUsed(c) != 0 { // Observe not yet called
			t.Fatalf("client %v has history", c)
		}
	}
}

func TestGuidedSelectorExploitsHighUtility(t *testing.T) {
	g := NewGuidedSelector(sim.NewRNG(1))
	g.ExplorationFrac = 0
	avail := pool(20)
	// Give every client history; make two of them clearly better.
	for i, c := range avail {
		loss := 0.1
		samples := 50
		if i == 3 || i == 7 {
			loss = 5.0
			samples = 800
		}
		g.Observe(c, samples, 10*sim.Second, loss)
	}
	got := g.Select(avail, 2)
	want := map[ClientID]bool{avail[3]: true, avail[7]: true}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("picked %v instead of the high-utility clients", c)
		}
	}
}

func TestGuidedSelectorRecencyPenaltySpreadsLoad(t *testing.T) {
	g := NewGuidedSelector(sim.NewRNG(1))
	g.ExplorationFrac = 0
	avail := pool(10)
	for _, c := range avail {
		g.Observe(c, 100, 10*sim.Second, 1.0)
	}
	// Boost one client modestly; it wins round 1.
	g.Observe(avail[0], 120, 10*sim.Second, 1.0)
	first := g.Select(avail, 1)
	if first[0] != avail[0] {
		t.Fatalf("round 1 picked %v", first[0])
	}
	// Mark the others as observed at the same time; the winner's recency
	// penalty should let someone else through occasionally... with a big
	// enough penalty, round 2 must not pick the same client.
	g.RoundPenalty = 0.95
	second := g.Select(avail, 1)
	if second[0] == avail[0] {
		t.Fatal("recency penalty did not spread participation")
	}
}

func TestGuidedSelectorSystemUtility(t *testing.T) {
	g := NewGuidedSelector(sim.NewRNG(1))
	g.ExplorationFrac = 0
	g.RoundPenalty = 0
	a, b := ClientID("fast"), ClientID("slow")
	// Same statistical utility, very different latencies.
	g.Observe(a, 100, 2*sim.Second, 1.0)
	g.Observe(b, 100, 200*sim.Second, 1.0)
	got := g.Select([]ClientID{a, b}, 1)
	if got[0] != a {
		t.Fatal("system utility ignored")
	}
}

func TestGuidedSelectorBackfills(t *testing.T) {
	g := NewGuidedSelector(sim.NewRNG(1))
	avail := pool(5)
	if got := g.Select(avail, 5); len(got) != 5 {
		t.Fatalf("selected %d of 5", len(got))
	}
	if got := g.Select(avail, 9); len(got) != 5 {
		t.Fatalf("selected %d, only 5 available", len(got))
	}
}
