package flwork

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// ClientClass is the client archetype of §6.2.
type ClientClass int

// Client archetypes.
const (
	// Mobile clients share a physical host 8-ways, hibernate between
	// rounds, and train slowly (ResNet-18 setup).
	Mobile ClientClass = iota
	// Server clients own a machine and are always available (ResNet-152).
	Server
)

// Client is one member of the training population.
type Client struct {
	ID      string
	Class   ClientClass
	Samples int // c_k, the FedAvg weight
	// Speed is a per-client compute multiplier (heterogeneity), ~LogNormal.
	Speed float64
	// LabelSkew in [0,1] parameterizes this client's data direction; used
	// to derive deterministic per-client update perturbations.
	LabelSkew float64
}

// Population is the full client set plus workload parameters.
type Population struct {
	Clients []*Client
	Model   model.Spec
	Class   ClientClass
	rng     *sim.RNG

	// HibernateMax bounds the mobile hibernation interval ([0,60] s).
	HibernateMax sim.Duration
	// BaseTrainTime is the median local-epoch duration on a dedicated host.
	BaseTrainTime sim.Duration
	// ShareFactor divides compute for mobile clients packed 8-per-host.
	ShareFactor float64
}

// Config creates a population.
type Config struct {
	NumClients int
	Model      model.Spec
	Class      ClientClass
	Seed       int64
}

// NewPopulation synthesizes the client set. Sample counts follow the
// power-law FedScale reports for FEMNIST (most clients small, a heavy tail);
// speeds are log-normal around 1.
func NewPopulation(eng *sim.Engine, cfg Config) *Population {
	rng := sim.NewRNG(cfg.Seed)
	p := &Population{
		Model:        cfg.Model,
		Class:        cfg.Class,
		rng:          rng,
		HibernateMax: 60 * sim.Second,
		ShareFactor:  8,
	}
	switch cfg.Class {
	case Mobile:
		// Local epoch (batch 32, lr 0.01) of ResNet-18 on a 1/8 share of a
		// host: tens of seconds.
		p.BaseTrainTime = 26 * sim.Second
	case Server:
		// ResNet-152 on a dedicated server node.
		p.BaseTrainTime = 22 * sim.Second
	}
	for i := 0; i < cfg.NumClients; i++ {
		samples := 30 + int(120*math.Pow(rng.Float64(), -0.45)) // power law tail
		if samples > 2_000 {
			samples = 2_000
		}
		p.Clients = append(p.Clients, &Client{
			ID:        fmt.Sprintf("client-%04d", i),
			Class:     cfg.Class,
			Samples:   samples,
			Speed:     rng.LogNormal(1.0, 0.12),
			LabelSkew: rng.Float64(),
		})
	}
	return p
}

// TrainTime returns how long client c needs for one local training pass.
func (p *Population) TrainTime(c *Client) sim.Duration {
	t := float64(p.BaseTrainTime) / c.Speed
	if c.Class == Mobile {
		// The 8-way host share is already folded into BaseTrainTime for
		// mobiles; add the per-round contention jitter instead.
		t = float64(p.rng.Jitter(sim.Duration(t), 0.12))
	} else {
		t = float64(p.rng.Jitter(sim.Duration(t), 0.08))
	}
	return sim.Duration(t)
}

// Hibernation returns the random unavailability interval before the client
// can join a round (mobile only; servers return 0).
func (p *Population) Hibernation(c *Client) sim.Duration {
	if c.Class != Mobile {
		return 0
	}
	return p.rng.Uniform(p.HibernateMax)
}

// LocalUpdate produces client c's model update for the given round: the
// global model plus a deterministic, client-specific perturbation that
// shrinks as training converges. The returned tensor has the model's
// physical/virtual geometry, and the FedAvg weight is c.Samples.
func (p *Population) LocalUpdate(c *Client, global *tensor.Tensor, round int) *tensor.Tensor {
	u := global.Clone()
	// Perturbation magnitude decays with rounds (local steps shrink as the
	// model converges); direction is client-specific via LabelSkew.
	mag := 0.5 / math.Sqrt(float64(round)+1)
	phase := c.LabelSkew * 2 * math.Pi
	for i := range u.Data {
		// Deterministic pseudo-gradient: smooth in i, client-phase-shifted.
		g := math.Sin(float64(i)*0.01+phase) * mag
		u.Data[i] += float32(g)
	}
	return u
}

// Curve is the accuracy-vs-round learning curve a(r) = Amax·(1 − e^{−r/Tau})
// with small deterministic ripple, calibrated per model.
type Curve struct {
	Amax float64
	Tau  float64
}

// CurveFor returns the calibrated curve for the paper's two workloads:
// ResNet-18 reaches 70% near round 80 (LIFL's 0.9 h at ≈40 s rounds,
// Fig. 9(a)); ResNet-152 reaches 70% near round 152 (1.9 h at ≈45 s rounds,
// Fig. 9(c)).
func CurveFor(m model.Spec) Curve {
	switch m.Name {
	case model.ResNet18.Name:
		return Curve{Amax: 0.78, Tau: 35}
	case model.ResNet34.Name:
		return Curve{Amax: 0.79, Tau: 50}
	default: // ResNet-152
		return Curve{Amax: 0.80, Tau: 73}
	}
}

// At returns accuracy after `round` completed rounds.
func (c Curve) At(round int) float64 {
	if round <= 0 {
		return 0.05 // random-ish initialization accuracy
	}
	a := c.Amax * (1 - math.Exp(-float64(round)/c.Tau))
	// Small deterministic ripple so curves look like measurements, without
	// breaking monotonic crossing detection at the 0.70 threshold.
	a += 0.004 * math.Sin(float64(round)*1.7)
	if a < 0.05 {
		a = 0.05
	}
	return a
}

// RoundsToAccuracy returns the first round at which the curve crosses the
// target, or -1 if unreachable.
func (c Curve) RoundsToAccuracy(target float64) int {
	for r := 1; r <= 100_000; r++ {
		if c.At(r) >= target {
			return r
		}
	}
	return -1
}
