package flwork

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// ClientClass is the client archetype of §6.2.
type ClientClass int

// Client archetypes.
const (
	// Mobile clients share a physical host 8-ways, hibernate between
	// rounds, and train slowly (ResNet-18 setup).
	Mobile ClientClass = iota
	// Server clients own a machine and are always available (ResNet-152).
	Server
)

// Client is one member of the training population — value storage only
// (24 bytes): the archetype lives on the Population (one class per
// population) and the ID string is derived on demand (Population.ClientID),
// so a 10M-client population costs 10M × 24 B of live heap instead of 10M
// pointers, structs and ID strings.
type Client struct {
	Samples int // c_k, the FedAvg weight
	// Speed is a per-client compute multiplier (heterogeneity), ~LogNormal.
	Speed float64
	// LabelSkew in [0,1] parameterizes this client's data direction; used
	// to derive deterministic per-client update perturbations.
	LabelSkew float64
}

// Chunk geometry for the population's client storage: 1<<16 clients
// (1.5 MiB) per chunk. Chunked value slices keep the peak live heap flat —
// no append-doubling over a single 10M-element array, no per-client
// pointer or string allocations for the GC to trace.
const (
	clientChunkShift = 16
	clientChunkSize  = 1 << clientChunkShift
	clientChunkMask  = clientChunkSize - 1
)

// Population is the full client set plus workload parameters.
type Population struct {
	Model model.Spec
	Class ClientClass
	rng   *sim.RNG

	// chunks is the value-backed client storage; see Client and the chunk
	// geometry above. Index i lives at chunks[i>>shift][i&mask].
	chunks [][]Client
	n      int

	// HibernateMax bounds the mobile hibernation interval ([0,60] s).
	HibernateMax sim.Duration
	// BaseTrainTime is the median local-epoch duration on a dedicated host.
	BaseTrainTime sim.Duration
	// ShareFactor divides compute for mobile clients packed 8-per-host.
	ShareFactor float64
}

// Config creates a population.
type Config struct {
	NumClients int
	Model      model.Spec
	Class      ClientClass
	Seed       int64
	// Workers bounds the pool for the synthesis's parallel transform phase
	// (<= 1 = serial). The synthesized population is bit-identical for any
	// value: all RNG draws happen serially in the legacy order, and the
	// parallel phase applies only pure per-client transforms.
	Workers int
}

// NewPopulation synthesizes the client set. Sample counts follow the
// power-law FedScale reports for FEMNIST (most clients small, a heavy tail);
// speeds are log-normal around 1.
//
// Synthesis is two-phase so it parallelizes without touching the draw
// sequence: phase one consumes the RNG serially, client by client, in the
// exact legacy order (samples-uniform, speed-normal, skew-uniform — the
// normal draw's ziggurat consumes a variable number of underlying values,
// so the stream cannot be split); phase two applies the pure per-client
// transforms (math.Pow for the sample power law, math.Exp for the
// log-normal speed) across the worker pool. Same inputs, same operations,
// same per-client order ⇒ bit-identical to the legacy single loop.
func NewPopulation(eng *sim.Engine, cfg Config) *Population {
	rng := sim.NewRNG(cfg.Seed)
	p := &Population{
		Model:        cfg.Model,
		Class:        cfg.Class,
		rng:          rng,
		n:            cfg.NumClients,
		HibernateMax: 60 * sim.Second,
		ShareFactor:  8,
	}
	switch cfg.Class {
	case Mobile:
		// Local epoch (batch 32, lr 0.01) of ResNet-18 on a 1/8 share of a
		// host: tens of seconds.
		p.BaseTrainTime = 26 * sim.Second
	case Server:
		// ResNet-152 on a dedicated server node.
		p.BaseTrainTime = 22 * sim.Second
	}
	if cfg.NumClients <= 0 {
		return p
	}
	nchunks := (cfg.NumClients + clientChunkSize - 1) / clientChunkSize
	p.chunks = make([][]Client, nchunks)
	// Phase one (serial): the RNG draws, stashed raw in the client's own
	// fields so no scratch array scales with the population. The uniform
	// for the sample count parks its IEEE-754 bits in the Samples int
	// (values in [0,1) are non-negative and fit), the raw normal parks in
	// Speed, and the skew uniform is already its final value.
	for ci := range p.chunks {
		lo := ci << clientChunkShift
		size := cfg.NumClients - lo
		if size > clientChunkSize {
			size = clientChunkSize
		}
		chunk := make([]Client, size)
		for i := range chunk {
			chunk[i] = Client{
				Samples:   int(math.Float64bits(rng.Float64())),
				Speed:     rng.NormFloat64(),
				LabelSkew: rng.Float64(),
			}
		}
		p.chunks[ci] = chunk
	}
	// Phase two (parallel): pure transforms, chunk per task.
	par.Do(cfg.Workers, nchunks, func(ci int) {
		chunk := p.chunks[ci]
		for i := range chunk {
			c := &chunk[i]
			u := math.Float64frombits(uint64(c.Samples))
			samples := 30 + int(120*math.Pow(u, -0.45)) // power law tail
			if samples > 2_000 {
				samples = 2_000
			}
			c.Samples = samples
			// Speed = LogNormal(median 1, sigma 0.12) = 1.0·e^(0.12·N).
			c.Speed = 1.0 * math.Exp(0.12*c.Speed)
		}
	})
	return p
}

// Len returns the population size.
func (p *Population) Len() int { return p.n }

// Client returns client i's record. The pointer stays valid for the
// population's lifetime (chunks never reallocate), but records are shared —
// callers must not mutate them.
func (p *Population) Client(i int) *Client {
	return &p.chunks[i>>clientChunkShift][i&clientChunkMask]
}

// ClientID derives client i's wire identity on demand ("client-0042") —
// the legacy per-client ID string, minus 10M resident Sprintf results.
func (p *Population) ClientID(i int) string {
	return fmt.Sprintf("client-%04d", i)
}

// TrainTime returns how long client c needs for one local training pass.
func (p *Population) TrainTime(c *Client) sim.Duration {
	t := float64(p.BaseTrainTime) / c.Speed
	if p.Class == Mobile {
		// The 8-way host share is already folded into BaseTrainTime for
		// mobiles; add the per-round contention jitter instead.
		t = float64(p.rng.Jitter(sim.Duration(t), 0.12))
	} else {
		t = float64(p.rng.Jitter(sim.Duration(t), 0.08))
	}
	return sim.Duration(t)
}

// Hibernation returns the random unavailability interval before the client
// can join a round (mobile only; servers return 0).
func (p *Population) Hibernation(c *Client) sim.Duration {
	if p.Class != Mobile {
		return 0
	}
	return p.rng.Uniform(p.HibernateMax)
}

// LocalUpdate produces client c's model update for the given round: the
// global model plus a deterministic, client-specific perturbation that
// shrinks as training converges. The returned tensor has the model's
// physical/virtual geometry, and the FedAvg weight is c.Samples.
func (p *Population) LocalUpdate(c *Client, global *tensor.Tensor, round int) *tensor.Tensor {
	u := global.Clone()
	p.perturb(u, c, round)
	return u
}

// LocalUpdateInto is LocalUpdate writing into a caller-owned buffer (sized
// to the model's physical length) instead of cloning — the arena-backed
// form core's staged round loop uses so per-round update materialization
// recycles one buffer set instead of allocating per client. Results are
// bit-identical to LocalUpdate.
func (p *Population) LocalUpdateInto(dst *tensor.Tensor, c *Client, global *tensor.Tensor, round int) {
	copy(dst.Data, global.Data)
	dst.VirtualLen = global.VirtualLen
	p.perturb(dst, c, round)
}

// perturb applies the deterministic client/round perturbation in place.
func (p *Population) perturb(u *tensor.Tensor, c *Client, round int) {
	// Perturbation magnitude decays with rounds (local steps shrink as the
	// model converges); direction is client-specific via LabelSkew.
	mag := 0.5 / math.Sqrt(float64(round)+1)
	phase := c.LabelSkew * 2 * math.Pi
	for i := range u.Data {
		// Deterministic pseudo-gradient: smooth in i, client-phase-shifted.
		g := math.Sin(float64(i)*0.01+phase) * mag
		u.Data[i] += float32(g)
	}
}

// Curve is the accuracy-vs-round learning curve a(r) = Amax·(1 − e^{−r/Tau})
// with small deterministic ripple, calibrated per model.
type Curve struct {
	Amax float64
	Tau  float64
}

// CurveFor returns the calibrated curve for the paper's two workloads:
// ResNet-18 reaches 70% near round 80 (LIFL's 0.9 h at ≈40 s rounds,
// Fig. 9(a)); ResNet-152 reaches 70% near round 152 (1.9 h at ≈45 s rounds,
// Fig. 9(c)).
func CurveFor(m model.Spec) Curve {
	switch m.Name {
	case model.ResNet18.Name:
		return Curve{Amax: 0.78, Tau: 35}
	case model.ResNet34.Name:
		return Curve{Amax: 0.79, Tau: 50}
	default: // ResNet-152
		return Curve{Amax: 0.80, Tau: 73}
	}
}

// At returns accuracy after `round` completed rounds.
func (c Curve) At(round int) float64 {
	if round <= 0 {
		return 0.05 // random-ish initialization accuracy
	}
	a := c.Amax * (1 - math.Exp(-float64(round)/c.Tau))
	// Small deterministic ripple so curves look like measurements, without
	// breaking monotonic crossing detection at the 0.70 threshold.
	a += 0.004 * math.Sin(float64(round)*1.7)
	if a < 0.05 {
		a = 0.05
	}
	return a
}

// RoundsToAccuracy returns the first round at which the curve crosses the
// target, or -1 if unreachable.
func (c Curve) RoundsToAccuracy(target float64) int {
	for r := 1; r <= 100_000; r++ {
		if c.At(r) >= target {
			return r
		}
	}
	return -1
}
