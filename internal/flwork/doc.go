// Package flwork generates the FL workloads of §6.2: a FEMNIST-like
// population of 2,800 clients with FedScale-style non-IID data (power-law
// sample counts, Dirichlet label skew), two client archetypes — battery-
// powered mobile devices that hibernate for random intervals in [0,60] s
// (the ResNet-18 setup, producing the bursty arrival pattern of Fig. 10(a))
// and always-on server clients (the ResNet-152 setup, Fig. 10(d)) — plus a
// trainer timing model and an empirical saturating accuracy curve.
//
// Substitution note (see DESIGN.md): training is not executed on real
// FEMNIST images. Client updates are real tensors derived from the global
// model (so FedAvg arithmetic is exact and property-testable), and accuracy
// follows a saturating curve calibrated to published FEMNIST/ResNet
// behaviour. Because every system under test shares the same algorithm and
// population, accuracy-vs-round is system-independent; time-to-accuracy
// differences then come from the system round latency — precisely the
// quantity the paper evaluates.
//
// Layer (DESIGN.md): workload layer under internal/core — client
// population, non-IID workload, accuracy curve shared by every system.
// Populations are stored as chunked value slices (24 B/client, no
// per-client pointers or ID strings — IDs derive on demand) and
// synthesized in two phases: a serial pass makes every RNG draw in the
// legacy order, then a parallel pass (Config.Workers) applies the pure
// per-client transforms — so a 10M-client population builds in well under
// a second, bit-identical for any worker count.
package flwork
