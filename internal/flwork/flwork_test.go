package flwork

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sim"
)

func pop(class ClientClass, n int) *Population {
	eng := sim.NewEngine()
	m := model.ResNet18
	if class == Server {
		m = model.ResNet152
	}
	return NewPopulation(eng, Config{NumClients: n, Model: m, Class: class, Seed: 5})
}

func TestPopulationDeterministic(t *testing.T) {
	a, b := pop(Mobile, 100), pop(Mobile, 100)
	for i := range a.Clients {
		if a.Clients[i].Samples != b.Clients[i].Samples || a.Clients[i].Speed != b.Clients[i].Speed {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSampleCountsHeavyTailed(t *testing.T) {
	p := pop(Mobile, 2800)
	lo, hi := 1<<30, 0
	for _, c := range p.Clients {
		if c.Samples <= 0 {
			t.Fatalf("client %s has %d samples", c.ID, c.Samples)
		}
		if c.Samples < lo {
			lo = c.Samples
		}
		if c.Samples > hi {
			hi = c.Samples
		}
	}
	if hi < 4*lo {
		t.Fatalf("no tail: min %d max %d", lo, hi)
	}
	if hi > 2000 {
		t.Fatalf("tail uncapped: %d", hi)
	}
}

func TestTrainTimesPositiveAndHeterogeneous(t *testing.T) {
	p := pop(Mobile, 200)
	seen := make(map[sim.Duration]bool)
	for _, c := range p.Clients[:50] {
		d := p.TrainTime(c)
		if d <= 0 {
			t.Fatalf("train time %v", d)
		}
		seen[d] = true
	}
	if len(seen) < 25 {
		t.Fatalf("train times too uniform: %d distinct of 50", len(seen))
	}
}

func TestHibernationOnlyForMobiles(t *testing.T) {
	mp := pop(Mobile, 10)
	sp := pop(Server, 10)
	anyPositive := false
	for i := 0; i < 100; i++ {
		if mp.Hibernation(mp.Clients[0]) > 0 {
			anyPositive = true
		}
		if d := sp.Hibernation(sp.Clients[0]); d != 0 {
			t.Fatalf("server client hibernated %v", d)
		}
	}
	if !anyPositive {
		t.Fatal("mobile hibernation never positive")
	}
	// Bounded by [0, 60s] per §6.2.
	for i := 0; i < 1000; i++ {
		if d := mp.Hibernation(mp.Clients[0]); d >= 60*sim.Second {
			t.Fatalf("hibernation %v out of [0,60s)", d)
		}
	}
}

func TestLocalUpdatePerturbationDecays(t *testing.T) {
	p := pop(Mobile, 5)
	g := model.ResNet18.NewTensor()
	early := p.LocalUpdate(p.Clients[0], g, 1)
	late := p.LocalUpdate(p.Clients[0], g, 100)
	if err := early.Sub(g); err != nil {
		t.Fatal(err)
	}
	if err := late.Sub(g); err != nil {
		t.Fatal(err)
	}
	if late.Norm2() >= early.Norm2() {
		t.Fatalf("perturbation did not decay: %v vs %v", late.Norm2(), early.Norm2())
	}
}

func TestLocalUpdateClientSpecific(t *testing.T) {
	p := pop(Mobile, 5)
	g := model.ResNet18.NewTensor()
	a := p.LocalUpdate(p.Clients[0], g, 1)
	b := p.LocalUpdate(p.Clients[1], g, 1)
	d, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("different clients produced identical updates")
	}
}

func TestCurveCalibration(t *testing.T) {
	// The paper's workloads: ResNet-18 hits 70% near round 80 (0.9 h at
	// ≈40 s rounds), ResNet-152 near round 152 (1.9 h at ≈45 s).
	r18 := CurveFor(model.ResNet18).RoundsToAccuracy(0.70)
	if r18 < 70 || r18 > 90 {
		t.Fatalf("ResNet-18 rounds to 70%% = %d, want ≈80", r18)
	}
	r152 := CurveFor(model.ResNet152).RoundsToAccuracy(0.70)
	if r152 < 135 || r152 > 170 {
		t.Fatalf("ResNet-152 rounds to 70%% = %d, want ≈152", r152)
	}
}

func TestCurveSaturatesBelowAmax(t *testing.T) {
	c := CurveFor(model.ResNet34)
	if c.RoundsToAccuracy(c.Amax+0.05) != -1 {
		t.Fatal("curve exceeded its asymptote")
	}
	if c.At(0) > 0.1 {
		t.Fatalf("initial accuracy %v", c.At(0))
	}
}

// Property: accuracy is within (0,1) and the 0.70 crossing is unique-ish
// (once crossed with margin, it stays crossed).
func TestCurveCrossingStable(t *testing.T) {
	f := func(tauRaw uint8) bool {
		c := Curve{Amax: 0.8, Tau: float64(tauRaw%100) + 5}
		crossed := false
		for r := 1; r < 2000; r++ {
			a := c.At(r)
			if a <= 0 || a >= 1 {
				return false
			}
			if a >= 0.75 {
				crossed = true
			}
			if crossed && a < 0.70 {
				return false // fell back below after a clear crossing
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
