package flwork

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sim"
)

func pop(class ClientClass, n int) *Population {
	eng := sim.NewEngine()
	m := model.ResNet18
	if class == Server {
		m = model.ResNet152
	}
	return NewPopulation(eng, Config{NumClients: n, Model: m, Class: class, Seed: 5})
}

func TestPopulationDeterministic(t *testing.T) {
	a, b := pop(Mobile, 100), pop(Mobile, 100)
	for i := 0; i < a.Len(); i++ {
		if a.Client(i).Samples != b.Client(i).Samples || a.Client(i).Speed != b.Client(i).Speed {
			t.Fatal("same seed diverged")
		}
	}
}

// TestPopulationWorkersBitIdentical pins the two-phase synthesis contract:
// the worker count changes only who runs the pure transform phase, never
// the values — the draws themselves stay serial and in legacy order.
func TestPopulationWorkersBitIdentical(t *testing.T) {
	// Enough clients to span several storage chunks.
	n := 3*clientChunkSize + 117
	if testing.Short() {
		n = clientChunkSize + 117
	}
	mk := func(workers int) *Population {
		return NewPopulation(sim.NewEngine(), Config{
			NumClients: n, Model: model.ResNet18, Class: Mobile, Seed: 5, Workers: workers,
		})
	}
	ref := mk(1)
	for _, w := range []int{2, 3, 8} {
		p := mk(w)
		for i := 0; i < n; i++ {
			a, b := ref.Client(i), p.Client(i)
			if a.Samples != b.Samples || a.Speed != b.Speed || a.LabelSkew != b.LabelSkew {
				t.Fatalf("workers=%d: client %d differs: %+v vs %+v", w, i, *a, *b)
			}
		}
	}
}

func TestClientIDFormat(t *testing.T) {
	p := pop(Mobile, 10)
	if got := p.ClientID(7); got != "client-0007" {
		t.Fatalf("ClientID(7) = %q", got)
	}
	if got := p.ClientID(123456); got != "client-123456" {
		t.Fatalf("ClientID(123456) = %q", got)
	}
}

func TestSampleCountsHeavyTailed(t *testing.T) {
	p := pop(Mobile, 2800)
	lo, hi := 1<<30, 0
	for i := 0; i < p.Len(); i++ {
		c := p.Client(i)
		if c.Samples <= 0 {
			t.Fatalf("client %d has %d samples", i, c.Samples)
		}
		if c.Samples < lo {
			lo = c.Samples
		}
		if c.Samples > hi {
			hi = c.Samples
		}
	}
	if hi < 4*lo {
		t.Fatalf("no tail: min %d max %d", lo, hi)
	}
	if hi > 2000 {
		t.Fatalf("tail uncapped: %d", hi)
	}
}

func TestTrainTimesPositiveAndHeterogeneous(t *testing.T) {
	p := pop(Mobile, 200)
	seen := make(map[sim.Duration]bool)
	for i := 0; i < 50; i++ {
		d := p.TrainTime(p.Client(i))
		if d <= 0 {
			t.Fatalf("train time %v", d)
		}
		seen[d] = true
	}
	if len(seen) < 25 {
		t.Fatalf("train times too uniform: %d distinct of 50", len(seen))
	}
}

func TestHibernationOnlyForMobiles(t *testing.T) {
	mp := pop(Mobile, 10)
	sp := pop(Server, 10)
	anyPositive := false
	for i := 0; i < 100; i++ {
		if mp.Hibernation(mp.Client(0)) > 0 {
			anyPositive = true
		}
		if d := sp.Hibernation(sp.Client(0)); d != 0 {
			t.Fatalf("server client hibernated %v", d)
		}
	}
	if !anyPositive {
		t.Fatal("mobile hibernation never positive")
	}
	// Bounded by [0, 60s] per §6.2.
	for i := 0; i < 1000; i++ {
		if d := mp.Hibernation(mp.Client(0)); d >= 60*sim.Second {
			t.Fatalf("hibernation %v out of [0,60s)", d)
		}
	}
}

func TestLocalUpdatePerturbationDecays(t *testing.T) {
	p := pop(Mobile, 5)
	g := model.ResNet18.NewTensor()
	early := p.LocalUpdate(p.Client(0), g, 1)
	late := p.LocalUpdate(p.Client(0), g, 100)
	if err := early.Sub(g); err != nil {
		t.Fatal(err)
	}
	if err := late.Sub(g); err != nil {
		t.Fatal(err)
	}
	if late.Norm2() >= early.Norm2() {
		t.Fatalf("perturbation did not decay: %v vs %v", late.Norm2(), early.Norm2())
	}
}

func TestLocalUpdateClientSpecific(t *testing.T) {
	p := pop(Mobile, 5)
	g := model.ResNet18.NewTensor()
	a := p.LocalUpdate(p.Client(0), g, 1)
	b := p.LocalUpdate(p.Client(1), g, 1)
	d, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("different clients produced identical updates")
	}
}

// TestLocalUpdateIntoMatchesLocalUpdate pins the arena-backed form to the
// allocating one bit for bit.
func TestLocalUpdateIntoMatchesLocalUpdate(t *testing.T) {
	p := pop(Mobile, 5)
	g := model.ResNet18.NewTensor()
	for i := range g.Data {
		g.Data[i] = float32(i%13) * 0.03
	}
	want := p.LocalUpdate(p.Client(2), g, 7)
	got := model.ResNet18.NewTensor()
	got.Fill(99) // stale contents must be fully overwritten
	p.LocalUpdateInto(got, p.Client(2), g, 7)
	if got.VirtualLen != want.VirtualLen {
		t.Fatalf("virtual len %d vs %d", got.VirtualLen, want.VirtualLen)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

func TestCurveCalibration(t *testing.T) {
	// The paper's workloads: ResNet-18 hits 70% near round 80 (0.9 h at
	// ≈40 s rounds), ResNet-152 near round 152 (1.9 h at ≈45 s).
	r18 := CurveFor(model.ResNet18).RoundsToAccuracy(0.70)
	if r18 < 70 || r18 > 90 {
		t.Fatalf("ResNet-18 rounds to 70%% = %d, want ≈80", r18)
	}
	r152 := CurveFor(model.ResNet152).RoundsToAccuracy(0.70)
	if r152 < 135 || r152 > 170 {
		t.Fatalf("ResNet-152 rounds to 70%% = %d, want ≈152", r152)
	}
}

func TestCurveSaturatesBelowAmax(t *testing.T) {
	c := CurveFor(model.ResNet34)
	if c.RoundsToAccuracy(c.Amax+0.05) != -1 {
		t.Fatal("curve exceeded its asymptote")
	}
	if c.At(0) > 0.1 {
		t.Fatalf("initial accuracy %v", c.At(0))
	}
}

// Property: accuracy is within (0,1) and the 0.70 crossing is unique-ish
// (once crossed with margin, it stays crossed).
func TestCurveCrossingStable(t *testing.T) {
	f := func(tauRaw uint8) bool {
		c := Curve{Amax: 0.8, Tau: float64(tauRaw%100) + 5}
		crossed := false
		for r := 1; r < 2000; r++ {
			a := c.At(r)
			if a <= 0 || a >= 1 {
				return false
			}
			if a >= 0.75 {
				crossed = true
			}
			if crossed && a < 0.70 {
				return false // fell back below after a clear crossing
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
