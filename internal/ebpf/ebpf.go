package ebpf

import (
	"errors"
	"fmt"

	"repro/internal/shm"
	"repro/internal/sim"
)

// Common errors.
var (
	ErrNoSocket   = errors.New("ebpf: no socket registered for key")
	ErrNoProgram  = errors.New("ebpf: no SKMSG program attached")
	ErrKeyMissing = errors.New("ebpf: map key missing")
)

// Verdict is an SKMSG program's decision, mirroring SK_PASS / SK_DROP and
// the redirect helper.
type Verdict int

const (
	// VerdictPass delivers the message to the socket's own receiver.
	VerdictPass Verdict = iota
	// VerdictRedirect delivers to another socket chosen from a sockmap.
	VerdictRedirect
	// VerdictDrop discards the message.
	VerdictDrop
)

// Message is the unit passed over an SKMSG channel. In LIFL's intra-node
// path the payload is only the 16-byte shm object key; Size records the
// bytes physically moved through the socket (not the model size).
type Message struct {
	SrcID  string
	DstID  string
	ShmKey shm.Key
	Size   uint64
	Round  int
	// Kind is a free-form tag ("update", "route-update", "convert", ...).
	Kind string
}

// Socket is a registered endpoint. Deliver is invoked (in virtual time by
// the caller's scheduling) when a message reaches the socket.
type Socket struct {
	FD      int
	Owner   string
	Deliver func(Message)
}

// Map is a generic in-kernel key/value table (BPF_MAP_TYPE_HASH).
type Map[K comparable, V any] struct {
	name string
	m    map[K]V
}

// NewMap creates a named map.
func NewMap[K comparable, V any](name string) *Map[K, V] {
	return &Map[K, V]{name: name, m: make(map[K]V)}
}

// UpdateElem inserts or replaces (bpf_map_update_elem).
func (m *Map[K, V]) UpdateElem(k K, v V) { m.m[k] = v }

// LookupElem fetches (bpf_map_lookup_elem).
func (m *Map[K, V]) LookupElem(k K) (V, bool) {
	v, ok := m.m[k]
	return v, ok
}

// DeleteElem removes (bpf_map_delete_elem).
func (m *Map[K, V]) DeleteElem(k K) { delete(m.m, k) }

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return len(m.m) }

// Name returns the map's name.
func (m *Map[K, V]) Name() string { return m.name }

// ForEach iterates entries in unspecified order.
func (m *Map[K, V]) ForEach(fn func(K, V)) {
	for k, v := range m.m {
		fn(k, v)
	}
}

// SockMap is BPF_MAP_TYPE_SOCKMAP: component ID → registered socket
// (Fig. 12: "a1's id → a1's sock fd").
type SockMap struct {
	name   string
	socks  map[string]*Socket
	nextFD int
}

// NewSockMap creates an empty sockmap.
func NewSockMap(name string) *SockMap {
	return &SockMap{name: name, socks: make(map[string]*Socket)}
}

// Register creates a socket owned by id with the given deliver callback and
// installs it under key id. Returns the socket for re-registration under
// other keys (e.g. a remote aggregator's ID mapping to the local gateway's
// socket, as in Fig. 12 node 2).
func (sm *SockMap) Register(id string, deliver func(Message)) *Socket {
	sm.nextFD++
	s := &Socket{FD: sm.nextFD, Owner: id, Deliver: deliver}
	sm.socks[id] = s
	return s
}

// Install maps key → an existing socket (update of the sockmap entry).
func (sm *SockMap) Install(key string, s *Socket) { sm.socks[key] = s }

// Remove deletes the entry for key.
func (sm *SockMap) Remove(key string) { delete(sm.socks, key) }

// Lookup returns the socket registered under key.
func (sm *SockMap) Lookup(key string) (*Socket, bool) {
	s, ok := sm.socks[key]
	return s, ok
}

// Len returns the number of registered entries.
func (sm *SockMap) Len() int { return len(sm.socks) }

// MetricSample is one record in the metrics map, written by the eBPF sidecar
// on every send() event (§4.3) and drained periodically by the LIFL agent.
// Round stamps the training round (or async version) the message belonged
// to, which is what lets RetireRound evict a closed round's samples.
type MetricSample struct {
	Owner     string
	Kind      string
	Size      uint64
	Round     int
	ExecTime  sim.Duration // execution time of the preceding task
	Timestamp sim.Duration
}

// SKMSGProgram models the eBPF program set LIFL attaches at each
// aggregator's socket SKMSG hook. On every send() event it (1) records a
// metric sample into the in-kernel metrics map and (2) redirects the message
// to the destination socket found in the sockmap.
type SKMSGProgram struct {
	sockMap *SockMap
	metrics *Map[uint64, MetricSample]
	eng     *sim.Engine
	seq     uint64

	// Runs counts invocations — by construction the only times the sidecar
	// consumes CPU (event-driven execution).
	Runs uint64
	// Redirects counts successful sockmap redirections.
	Redirects uint64
	// Drops counts messages with no destination socket.
	Drops uint64
}

// NewSKMSGProgram attaches a program over the given sockmap and metrics map.
func NewSKMSGProgram(eng *sim.Engine, sm *SockMap, metrics *Map[uint64, MetricSample]) *SKMSGProgram {
	return &SKMSGProgram{sockMap: sm, metrics: metrics, eng: eng}
}

// Run executes the program for one send() event: records metrics, looks up
// the destination, and returns the verdict plus target socket. The caller
// (data plane) is responsible for charging the CPU cycles and scheduling the
// delivery in virtual time.
func (p *SKMSGProgram) Run(msg Message, execTime sim.Duration) (Verdict, *Socket, error) {
	p.Runs++
	if p.metrics != nil {
		p.seq++
		p.metrics.UpdateElem(p.seq, MetricSample{
			Owner:     msg.SrcID,
			Kind:      msg.Kind,
			Size:      msg.Size,
			Round:     msg.Round,
			ExecTime:  execTime,
			Timestamp: p.eng.Now(),
		})
	}
	dst, ok := p.sockMap.Lookup(msg.DstID)
	if !ok {
		p.Drops++
		return VerdictDrop, nil, fmt.Errorf("%w: %q in sockmap %q", ErrNoSocket, msg.DstID, p.sockMap.name)
	}
	p.Redirects++
	return VerdictRedirect, dst, nil
}

// RetireRound deletes buffered samples stamped with Round <= last and
// returns how many were dropped — the round-closure half of the metrics
// map lifecycle. The control plane retires a round's samples when the
// round's records are evicted; DrainMetrics stays available for the §4.3
// periodic full retrieval.
func (p *SKMSGProgram) RetireRound(last int) int {
	if p.metrics == nil {
		return 0
	}
	var dead []uint64
	p.metrics.ForEach(func(k uint64, v MetricSample) {
		if v.Round <= last {
			dead = append(dead, k)
		}
	})
	for _, k := range dead {
		p.metrics.DeleteElem(k)
	}
	return len(dead)
}

// DrainMetrics removes and returns all buffered samples — the LIFL agent's
// periodic retrieval that feeds the metrics server (§4.3).
func (p *SKMSGProgram) DrainMetrics() []MetricSample {
	if p.metrics == nil {
		return nil
	}
	out := make([]MetricSample, 0, p.metrics.Len())
	keys := make([]uint64, 0, p.metrics.Len())
	p.metrics.ForEach(func(k uint64, v MetricSample) {
		keys = append(keys, k)
		out = append(out, v)
	})
	for _, k := range keys {
		p.metrics.DeleteElem(k)
	}
	return out
}
