package ebpf

import (
	"testing"

	"repro/internal/sim"
)

func TestMapCRUD(t *testing.T) {
	m := NewMap[string, int]("m")
	if _, ok := m.LookupElem("a"); ok {
		t.Fatal("lookup on empty map")
	}
	m.UpdateElem("a", 1)
	m.UpdateElem("a", 2) // replace
	m.UpdateElem("b", 3)
	if v, ok := m.LookupElem("a"); !ok || v != 2 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	m.DeleteElem("a")
	if _, ok := m.LookupElem("a"); ok {
		t.Fatal("delete failed")
	}
	sum := 0
	m.ForEach(func(_ string, v int) { sum += v })
	if sum != 3 {
		t.Fatalf("foreach sum = %d", sum)
	}
}

func TestSockMapRegisterLookupRemove(t *testing.T) {
	sm := NewSockMap("sm")
	got := ""
	s := sm.Register("agg-1", func(m Message) { got = string(m.ShmKey) })
	if s.FD == 0 {
		t.Fatal("socket without fd")
	}
	sock, ok := sm.Lookup("agg-1")
	if !ok || sock != s {
		t.Fatal("lookup failed")
	}
	sock.Deliver(Message{ShmKey: "k1"})
	if got != "k1" {
		t.Fatal("deliver did not reach callback")
	}
	// Fig. 12: a remote aggregator's ID can map to the local gateway socket.
	sm.Install("agg-remote", s)
	if got2, ok := sm.Lookup("agg-remote"); !ok || got2 != s {
		t.Fatal("install alias failed")
	}
	sm.Remove("agg-1")
	if _, ok := sm.Lookup("agg-1"); ok {
		t.Fatal("remove failed")
	}
	if sm.Len() != 1 {
		t.Fatalf("len = %d", sm.Len())
	}
}

func TestSKMSGRedirects(t *testing.T) {
	eng := sim.NewEngine()
	sm := NewSockMap("sm")
	metrics := NewMap[uint64, MetricSample]("metrics")
	prog := NewSKMSGProgram(eng, sm, metrics)
	sm.Register("top", func(Message) {})

	v, sock, err := prog.Run(Message{SrcID: "leaf", DstID: "top", ShmKey: "k", Size: 16, Kind: "update"}, 2*sim.Second)
	if err != nil || v != VerdictRedirect || sock == nil {
		t.Fatalf("run: v=%v sock=%v err=%v", v, sock, err)
	}
	if prog.Runs != 1 || prog.Redirects != 1 || prog.Drops != 0 {
		t.Fatalf("counters: %d/%d/%d", prog.Runs, prog.Redirects, prog.Drops)
	}
	// Metrics recorded in-kernel.
	samples := prog.DrainMetrics()
	if len(samples) != 1 {
		t.Fatalf("samples = %d", len(samples))
	}
	s := samples[0]
	if s.Owner != "leaf" || s.ExecTime != 2*sim.Second || s.Kind != "update" {
		t.Fatalf("sample: %+v", s)
	}
	// Drain empties the map.
	if len(prog.DrainMetrics()) != 0 {
		t.Fatal("drain did not clear")
	}
}

func TestSKMSGDropsUnknownDestination(t *testing.T) {
	eng := sim.NewEngine()
	prog := NewSKMSGProgram(eng, NewSockMap("sm"), NewMap[uint64, MetricSample]("m"))
	v, _, err := prog.Run(Message{DstID: "ghost"}, 0)
	if err == nil || v != VerdictDrop {
		t.Fatalf("expected drop: v=%v err=%v", v, err)
	}
	if prog.Drops != 1 {
		t.Fatalf("drops = %d", prog.Drops)
	}
}

// Event-driven invariant: the program never runs unless a send() event
// occurs — Runs stays zero without traffic.
func TestSKMSGZeroIdleCost(t *testing.T) {
	eng := sim.NewEngine()
	prog := NewSKMSGProgram(eng, NewSockMap("sm"), nil)
	eng.After(sim.Hour, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if prog.Runs != 0 {
		t.Fatal("sidecar ran without an event")
	}
}

func TestSKMSGNilMetricsMap(t *testing.T) {
	eng := sim.NewEngine()
	sm := NewSockMap("sm")
	sm.Register("x", func(Message) {})
	prog := NewSKMSGProgram(eng, sm, nil)
	if _, _, err := prog.Run(Message{DstID: "x"}, 0); err != nil {
		t.Fatal(err)
	}
	if prog.DrainMetrics() != nil {
		t.Fatal("nil metrics map should drain empty")
	}
}
