// Package ebpf simulates the kernel eBPF machinery LIFL relies on (§4.3,
// §4.4, Appendix A): generic BPF maps, the special BPF_MAP_TYPE_SOCKMAP
// holding references to registered sockets, and SKMSG programs attached to
// socket send() hooks. The functional semantics mirror the kernel exactly —
// key-based socket redirection, in-kernel key/value metrics, strictly
// event-driven execution (a program runs only when a send() event fires, so
// idle cost is zero) — while the kernel boundary itself is simulated.
//
// Metric samples are stamped with the training round (or async version)
// of the message that produced them, and SKMSGProgram.RetireRound deletes
// a closed round's samples from the in-kernel map — the map-entry half of
// the round-closure lifecycle (docs/MEMORY.md) that keeps long runs'
// kernel state bounded. Sockmap entries are per logical aggregator name;
// the systems layer removes them when the name's round retires.
//
// Layer (DESIGN.md): component model under internal/systems — the
// SockMap/SkMsg kernel-bypass substrate (§4.3).
package ebpf
