// Package ebpf simulates the kernel eBPF machinery LIFL relies on (§4.3,
// §4.4, Appendix A): generic BPF maps, the special BPF_MAP_TYPE_SOCKMAP
// holding references to registered sockets, and SKMSG programs attached to
// socket send() hooks. The functional semantics mirror the kernel exactly —
// key-based socket redirection, in-kernel key/value metrics, strictly
// event-driven execution (a program runs only when a send() event fires, so
// idle cost is zero) — while the kernel boundary itself is simulated.
//
// Layer (DESIGN.md): component model under internal/systems — the
// SockMap/SkMsg kernel-bypass substrate (§4.3).
package ebpf
