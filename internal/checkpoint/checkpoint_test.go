package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/tensor"
)

func TestSaveAsyncCompletesInBackground(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(eng, 1e9)                // 1 GB/s uplink
	m := tensor.NewVirtual(4, 250_000_000) // 1 GB virtual
	var savedAt sim.Duration
	s.SaveAsync(3, m, func(r Record) { savedAt = r.SavedAt })
	if s.InFlight != 1 {
		t.Fatalf("in-flight = %d", s.InFlight)
	}
	// The request returns immediately; durability comes ~1s later.
	if _, err := s.Latest(); !errors.Is(err, ErrNone) {
		t.Fatal("checkpoint durable before upload finished")
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if savedAt < sim.Second {
		t.Fatalf("durable at %v, upload should take ≈1s", savedAt)
	}
	rec, err := s.Latest()
	if err != nil || rec.Round != 3 {
		t.Fatalf("latest: %+v %v", rec, err)
	}
	if s.InFlight != 0 || s.Completed != 1 || s.Count() != 1 {
		t.Fatalf("accounting: %d/%d/%d", s.InFlight, s.Completed, s.Count())
	}
}

func TestSnapshotIsolatesFromLaterMutation(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(eng, 1e12)
	m := tensor.FromSlice([]float32{1, 2, 3})
	s.SaveAsync(1, m, nil)
	m.Data[0] = 99 // the aggregator moves on; the checkpoint must not see it
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Model.Data[0] != 1 {
		t.Fatal("checkpoint aliased live model")
	}
}

func TestLatestReturnsNewest(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(eng, 1e12)
	for r := 1; r <= 3; r++ {
		s.SaveAsync(r, tensor.New(2), nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Latest()
	if err != nil || rec.Round != 3 {
		t.Fatalf("latest = %+v", rec)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
}

// Restore under load: checkpoints requested while earlier uploads are
// still in flight and the engine is busy with foreground work must (a)
// snapshot their model at request time, (b) become durable in request
// order, and (c) round-trip bit-exact through the wire encoding — the
// guarantees the cell fabric's wait-all restore leans on when it resumes
// a dead cell from Latest() mid-run.
func TestRestoreUnderLoad(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(eng, 1e9)
	// Foreground "training" keeps the engine loaded while uploads drain.
	busy := 0
	var tick func()
	tick = func() {
		if busy++; busy < 50 {
			eng.After(40*sim.Millisecond, tick)
		}
	}
	eng.After(0, tick)
	m := tensor.NewVirtual(8, 100_000_000) // 0.4 GB virtual → 0.4 s upload
	want := make([][]float32, 0, 3)
	for r := 1; r <= 3; r++ {
		for i := range m.Data {
			m.Data[i] = float32(r*10 + i)
		}
		snap := append([]float32(nil), m.Data...)
		want = append(want, snap)
		s.SaveAsync(r*10, m, nil)
		// Overlap: the next request lands before this upload is durable.
		if s.InFlight == 0 {
			t.Fatalf("round %d: upload completed synchronously", r)
		}
	}
	// Mutate the live model after every request: snapshots must not see it.
	m.Fill(-1)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 3 || s.InFlight != 0 {
		t.Fatalf("durable %d, in-flight %d", s.Count(), s.InFlight)
	}
	rec, err := s.Latest()
	if err != nil || rec.Round != 30 {
		t.Fatalf("latest: %+v %v", rec, err)
	}
	for i, v := range rec.Model.Data {
		if v != want[2][i] {
			t.Fatalf("restored model[%d] = %v, want %v (request-time snapshot)", i, v, want[2][i])
		}
	}
	if rec.Model.VirtualLen != m.VirtualLen {
		t.Fatalf("restored geometry %d != %d", rec.Model.VirtualLen, m.VirtualLen)
	}
	if busy < 50 {
		t.Fatalf("foreground load did not run alongside uploads (%d ticks)", busy)
	}
}
