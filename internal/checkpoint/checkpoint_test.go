package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/tensor"
)

func TestSaveAsyncCompletesInBackground(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(eng, 1e9)                // 1 GB/s uplink
	m := tensor.NewVirtual(4, 250_000_000) // 1 GB virtual
	var savedAt sim.Duration
	s.SaveAsync(3, m, func(r Record) { savedAt = r.SavedAt })
	if s.InFlight != 1 {
		t.Fatalf("in-flight = %d", s.InFlight)
	}
	// The request returns immediately; durability comes ~1s later.
	if _, err := s.Latest(); !errors.Is(err, ErrNone) {
		t.Fatal("checkpoint durable before upload finished")
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if savedAt < sim.Second {
		t.Fatalf("durable at %v, upload should take ≈1s", savedAt)
	}
	rec, err := s.Latest()
	if err != nil || rec.Round != 3 {
		t.Fatalf("latest: %+v %v", rec, err)
	}
	if s.InFlight != 0 || s.Completed != 1 || s.Count() != 1 {
		t.Fatalf("accounting: %d/%d/%d", s.InFlight, s.Completed, s.Count())
	}
}

func TestSnapshotIsolatesFromLaterMutation(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(eng, 1e12)
	m := tensor.FromSlice([]float32{1, 2, 3})
	s.SaveAsync(1, m, nil)
	m.Data[0] = 99 // the aggregator moves on; the checkpoint must not see it
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Model.Data[0] != 1 {
		t.Fatal("checkpoint aliased live model")
	}
}

func TestLatestReturnsNewest(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(eng, 1e12)
	for r := 1; r <= 3; r++ {
		s.SaveAsync(r, tensor.New(2), nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Latest()
	if err != nil || rec.Round != 3 {
		t.Fatalf("latest = %+v", rec)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
}
