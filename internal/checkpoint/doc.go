// Package checkpoint implements Appendix B: periodic, asynchronous saving
// of the global model parameters to an external persistent storage service.
// The aggregator submits a checkpoint request to the LIFL agent, which
// performs the upload in the background so checkpoint time never lands on
// the aggregation critical path; on failure, recovery restarts from the
// latest persisted version.
//
// The multi-cell fabric (internal/cell) leans on this path for cell
// failover: every LIFL cell checkpoints periodically, and a wait-all
// restore resumes a dead cell from its store's latest durable record.
// Store.Retire drops superseded records when their rounds leave the
// retention window but always pins the newest snapshot, so restore keeps
// working no matter how far past the window the outage lands.
//
// Layer (DESIGN.md): side quest — Appendix B model checkpoints, written
// asynchronously off the aggregation critical path.
package checkpoint
