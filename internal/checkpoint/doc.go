// Package checkpoint implements Appendix B: periodic, asynchronous saving
// of the global model parameters to an external persistent storage service.
// The aggregator submits a checkpoint request to the LIFL agent, which
// performs the upload in the background so checkpoint time never lands on
// the aggregation critical path; on failure, recovery restarts from the
// latest persisted version.
//
// Layer (DESIGN.md): side quest — Appendix B model checkpoints, written
// asynchronously off the aggregation critical path.
package checkpoint
