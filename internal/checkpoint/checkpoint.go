package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ErrNone is returned by Latest when nothing has been persisted yet.
var ErrNone = errors.New("checkpoint: no checkpoint persisted")

// Record is one persisted model version.
type Record struct {
	Round   int
	Model   *tensor.Tensor
	SavedAt sim.Duration
}

// Store simulates the external persistent storage service: uploads take
// size/bandwidth time and complete asynchronously.
type Store struct {
	eng *sim.Engine
	// Bandwidth is the upload rate to the external service (bytes/sec).
	Bandwidth float64

	link    *sim.Queue
	records []Record

	// Stats.
	Requested uint64
	Completed uint64
	// InFlight counts uploads not yet durable.
	InFlight int
}

// NewStore builds the external store model.
func NewStore(eng *sim.Engine, bandwidth float64) *Store {
	return &Store{
		eng:       eng,
		Bandwidth: bandwidth,
		link:      sim.NewQueue(eng, "checkpoint-link", bandwidth, 5*sim.Millisecond),
	}
}

// SaveAsync snapshots the model immediately — it is serialized into the
// wire format at request time, so later mutations by the aggregator cannot
// leak into the checkpoint — and persists it in the background. The frame
// is decoded back on durability, which validates the stored bytes.
// saved, if non-nil, fires when the record is durable.
func (s *Store) SaveAsync(round int, m *tensor.Tensor, saved func(Record)) {
	s.Requested++
	s.InFlight++
	raw, err := wire.Encode(wire.Update{Round: round, Weight: 1, Producer: "checkpoint", Tensor: m})
	if err != nil {
		panic(fmt.Sprintf("checkpoint: encode: %v", err))
	}
	s.link.Transfer(m.VirtualBytes(), func(_, _ sim.Duration) {
		dec, err := wire.Decode(raw)
		if err != nil {
			panic(fmt.Sprintf("checkpoint: stored frame corrupt: %v", err))
		}
		rec := Record{Round: dec.Round, Model: dec.Tensor, SavedAt: s.eng.Now()}
		s.records = append(s.records, rec)
		s.Completed++
		s.InFlight--
		if saved != nil {
			saved(rec)
		}
	})
}

// Latest returns the most recently *durable* checkpoint.
func (s *Store) Latest() (Record, error) {
	if len(s.records) == 0 {
		return Record{}, ErrNone
	}
	return s.records[len(s.records)-1], nil
}

// Retire drops durable records for rounds <= last, always keeping the
// newest record so Latest (the failover-restore source) survives any
// retention window. Count is cumulative and unaffected — retirement is
// bookkeeping on the store's resident copy, not on its history.
func (s *Store) Retire(last int) {
	if len(s.records) <= 1 {
		return
	}
	keep := s.records[:0]
	for i, r := range s.records {
		if r.Round > last || i == len(s.records)-1 {
			keep = append(keep, r)
		}
	}
	if len(keep) < len(s.records) {
		s.records = append([]Record(nil), keep...)
	}
}

// Count returns the cumulative number of checkpoints made durable over the
// run (identical to len of the resident records before any retirement;
// Retire never decreases it).
func (s *Store) Count() int { return int(s.Completed) }
