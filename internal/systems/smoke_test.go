package systems

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// makeJobs builds n injected client jobs with deterministic updates and
// weights; update k is global+k+1 with weight k+1.
func makeJobs(n int) []ClientJob {
	jobs := make([]ClientJob, n)
	for k := 0; k < n; k++ {
		k := k
		jobs[k] = ClientJob{
			ID:     "c",
			Delay:  sim.Duration(k) * 10 * sim.Millisecond,
			Weight: float64(k + 1),
			MakeUpdate: func(g *tensor.Tensor) *tensor.Tensor {
				u := g.Clone()
				for i := range u.Data {
					u.Data[i] += float32(k + 1)
				}
				return u
			},
			SkipBroadcast: true,
		}
	}
	return jobs
}

// wantAggregate returns the expected FedAvg result for makeJobs(n) updates.
func wantAggregate(g *tensor.Tensor, n int) *tensor.Tensor {
	var num, den float64
	for k := 0; k < n; k++ {
		w := float64(k + 1)
		num += w * float64(k+1)
		den += w
	}
	out := g.Clone()
	for i := range out.Data {
		out.Data[i] += float32(num / den)
	}
	return out
}

func runOneRound(t *testing.T, svc Service, eng *sim.Engine, n int) RoundResult {
	t.Helper()
	var got *RoundResult
	svc.RunRound(1, makeJobs(n), func(r RoundResult) { got = &r })
	if err := eng.Run(2 * sim.Hour); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if got == nil {
		t.Fatalf("%s: round did not complete (pending=%d now=%v)", svc.Name(), eng.Pending(), eng.Now())
	}
	if got.Updates != n {
		t.Fatalf("%s: aggregated %d updates, want %d", svc.Name(), got.Updates, n)
	}
	return *got
}

func checkGlobal(t *testing.T, svc Service, n int, init *tensor.Tensor) {
	t.Helper()
	want := wantAggregate(init, n)
	diff, err := svc.Global().MaxAbsDiff(want)
	if err != nil {
		t.Fatalf("%s: %v", svc.Name(), err)
	}
	if diff > 1e-3 || math.IsNaN(diff) {
		t.Fatalf("%s: global model off by %v from flat FedAvg", svc.Name(), diff)
	}
}

func TestLIFLRoundSmoke(t *testing.T) {
	for name, flags := range map[string]Flags{
		"full": AllFlags(),
		"slh":  {},
		"p1":   {LocalityPlacement: true},
		"p12":  {LocalityPlacement: true, HierarchyPlan: true},
		"p123": {LocalityPlacement: true, HierarchyPlan: true, Reuse: true},
	} {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet18, Flags: flags, Seed: 7})
			init := s.Global().Clone()
			res := runOneRound(t, s, eng, 12)
			checkGlobal(t, s, 12, init)
			if res.ACT <= 0 {
				t.Fatalf("non-positive ACT %v", res.ACT)
			}
		})
	}
}

func TestSFRoundSmoke(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSF(eng, Config{Nodes: 5, Model: model.ResNet18, SFLeaves: 6, Seed: 7})
	init := s.Global().Clone()
	res := runOneRound(t, s, eng, 12)
	checkGlobal(t, s, 12, init)
	if res.AggsCreated != 0 {
		t.Fatalf("SF created %d aggregators; static fleet should create none", res.AggsCreated)
	}
}

func TestSLRoundSmoke(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSL(eng, Config{Nodes: 5, Model: model.ResNet18, Seed: 7})
	init := s.Global().Clone()
	res := runOneRound(t, s, eng, 12)
	checkGlobal(t, s, 12, init)
	if res.AggsCreated == 0 {
		t.Fatalf("SL reactive scaling should cold-start instances")
	}
}

// Multiple sequential rounds must work (warm reuse across rounds).
func TestLIFLMultiRound(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet18, Flags: AllFlags(), Seed: 7})
	for r := 1; r <= 3; r++ {
		var got *RoundResult
		s.RunRound(r, makeJobs(8), func(res RoundResult) { got = &res })
		if err := eng.Run(-1); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if got == nil {
			t.Fatalf("round %d did not complete", r)
		}
	}
	// Warm pool: later rounds should create few or no new sandboxes.
	var created uint64
	for _, m := range s.Mgrs {
		created += m.Created
	}
	if created > 12 {
		t.Fatalf("created %d sandboxes over 3 warm rounds; warm reuse broken", created)
	}
}
