package systems

import (
	"testing"

	"repro/internal/autoscaler"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The per-round TAG (Appendix D) must describe exactly the planned
// hierarchy, validate as a single-rooted tree, and group co-located roles.
func TestRoundTAGDescribesHierarchy(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet152, MC: 20, Seed: 3,
		Flags: Flags{LocalityPlacement: true, HierarchyPlan: true, Eager: true}})
	jobs := makeJobs(60) // 3 nodes × (10 leaves + middle) + top
	for i := range jobs {
		jobs[i].PreQueued = true
	}
	var tag *topology.TAG
	s.RunRound(1, jobs, func(RoundResult) {})
	tag = s.RoundTAG()
	if tag == nil {
		t.Fatal("no TAG for the round")
	}
	if err := tag.Validate(); err != nil {
		t.Fatalf("TAG invalid: %v", err)
	}
	root, err := tag.Root()
	if err != nil || root != "r1-top" {
		t.Fatalf("root = %q, %v", root, err)
	}
	aggs := 0
	for _, v := range tag.Vertices() {
		if v.Role == topology.RoleAggregator {
			aggs++
		}
	}
	// 30 leaves + 3 middles + top.
	if aggs != 34 {
		t.Fatalf("TAG has %d aggregators, want 34", aggs)
	}
	// Placement affinity: each node's group holds its leaves + middle, and
	// the top joins its host node's group (node-0 here).
	groups := tag.Groups()
	sizes := map[int]int{}
	for _, members := range groups {
		sizes[len(members)]++
	}
	if sizes[11] != 2 || sizes[12] != 1 {
		t.Fatalf("want two groups of 11 and one of 12, groups = %v", groups)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

// ForcePlan lets microbenchmarks pin the paper's exact topology: four
// leaves feeding the top directly (Fig. 7(c)).
func TestForcePlanOverridesPlanner(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 1, Model: model.ResNet18, MC: 100, Seed: 3,
		Flags: Flags{LocalityPlacement: true, HierarchyPlan: true, Eager: true}})
	s.ForcePlan = func(node string, updates int) autoscaler.Plan {
		return autoscaler.Plan{Node: node, Updates: updates, Leaves: 4, Middle: false,
			LeafGoals: []int{2, 2, 2, 2}}
	}
	jobs := makeJobs(8)
	for i := range jobs {
		jobs[i].PreQueued = true
	}
	var res RoundResult
	s.RunRound(0, jobs, func(r RoundResult) { res = r })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// 4 leaves + top, no middle.
	if res.AggsActive != 5 {
		t.Fatalf("active = %d, want 5 (4 leaves + top)", res.AggsActive)
	}
	tagRoot, err := s.RoundTAG().Root()
	if err != nil || tagRoot != "r0-top" {
		t.Fatalf("root: %q %v", tagRoot, err)
	}
	if len(s.RoundTAG().Producers("r0-top")) != 4 {
		t.Fatal("leaves must feed the top directly")
	}
}
