package systems

import (
	"testing"

	"repro/internal/ebpf"
	"repro/internal/model"
	"repro/internal/sim"
)

// The round-closure retirement contract, per system: control-plane records
// for closed rounds (sockmap entries, gateway routes, eBPF metric samples,
// broker topics, sidecar bindings, round state) stay resident inside the
// retention window and are gone after RetireRound — and retirement is pure
// bookkeeping: no events scheduled, no CPU charged, no model bits moved.

// runRoundN drives one numbered round to completion (eng.Run(-1), so
// sequential rounds keep advancing the shared clock).
func runRoundN(t *testing.T, svc Service, eng *sim.Engine, round, n int) {
	t.Helper()
	var got *RoundResult
	svc.RunRound(round, makeJobs(n), func(r RoundResult) { got = &r })
	if err := eng.Run(-1); err != nil {
		t.Fatalf("round %d: %v", round, err)
	}
	if got == nil {
		t.Fatalf("%s: round %d did not complete", svc.Name(), round)
	}
}

// sockTotal sums logical-name sockmap entries across the cluster.
func sockTotal(s *LIFL) int {
	n := 0
	for _, nd := range s.Cluster.Nodes {
		n += nd.SockMap.Len()
	}
	return n
}

// routeTotal sums installed inter-node gateway routes.
func routeTotal(s *LIFL) int {
	n := 0
	for _, gw := range s.GWs {
		n += gw.Routes()
	}
	return n
}

func TestLIFLRetireRoundEvictsRecords(t *testing.T) {
	for name, flags := range map[string]Flags{
		"lifl": AllFlags(),
		"slh":  {},
	} {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet18, Flags: flags, Seed: 7})
			for r := 1; r <= 3; r++ {
				runRoundN(t, s, eng, r, 12)
			}
			if len(s.hist) != 3 {
				t.Fatalf("hist holds %d rounds before retirement, want 3", len(s.hist))
			}
			socks0, routes0 := sockTotal(s), routeTotal(s)
			if socks0 == 0 {
				t.Fatal("no sockmap entries after 3 rounds; nothing to evict")
			}

			global := s.Global().Clone()
			pending := eng.Pending()
			cpu := s.CPUTime()

			// Inside the window: rounds 1–2 retired, round 3 retained.
			s.RetireRound(2)
			if len(s.hist) != 1 {
				t.Fatalf("hist holds %d rounds after RetireRound(2), want 1", len(s.hist))
			}
			if _, ok := s.hist[3]; !ok {
				t.Fatal("round 3 evicted while inside the retention window")
			}
			if got := sockTotal(s); got >= socks0 {
				t.Fatalf("sockmap entries did not shrink: %d -> %d", socks0, got)
			}
			if routes0 > 0 {
				if got := routeTotal(s); got >= routes0 {
					t.Fatalf("gateway routes did not shrink: %d -> %d", routes0, got)
				}
			}
			for _, nd := range s.Cluster.Nodes {
				nd.Metrics.ForEach(func(_ uint64, v ebpf.MetricSample) {
					if v.Round <= 2 {
						t.Fatalf("metric sample for retired round %d survived", v.Round)
					}
				})
			}

			// Retirement is bookkeeping: same global bits, no new events,
			// no CPU charged.
			if diff, err := s.Global().MaxAbsDiff(global); err != nil || diff != 0 {
				t.Fatalf("retirement touched the global model: diff %v err %v", diff, err)
			}
			if eng.Pending() != pending {
				t.Fatalf("retirement scheduled events: %d -> %d", pending, eng.Pending())
			}
			if s.CPUTime() != cpu {
				t.Fatalf("retirement charged CPU: %v -> %v", cpu, s.CPUTime())
			}

			// Past the window: everything goes.
			s.RetireRound(3)
			if len(s.hist) != 0 {
				t.Fatalf("hist holds %d rounds after full retirement", len(s.hist))
			}
			if got := sockTotal(s); got != 0 {
				t.Fatalf("%d sockmap entries survived full retirement", got)
			}
			if got := routeTotal(s); got != 0 {
				t.Fatalf("%d gateway routes survived full retirement", got)
			}
			for _, nd := range s.Cluster.Nodes {
				if nd.Metrics.Len() != 0 {
					t.Fatalf("%d metric samples survived full retirement", nd.Metrics.Len())
				}
			}
		})
	}
}

func TestSLRetireRoundEvictsRecords(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSL(eng, Config{Nodes: 5, Model: model.ResNet18, Seed: 7})
	for r := 1; r <= 3; r++ {
		runRoundN(t, s, eng, r, 12)
	}
	if len(s.hist) != 3 {
		t.Fatalf("hist holds %d rounds before retirement, want 3", len(s.hist))
	}
	topics0 := 0
	for _, b := range s.Brokers {
		topics0 += b.Topics()
	}
	if topics0 == 0 {
		t.Fatal("no broker topic records after 3 rounds; nothing to evict")
	}

	s.RetireRound(2)
	if len(s.hist) != 1 {
		t.Fatalf("hist holds %d rounds after RetireRound(2), want 1", len(s.hist))
	}
	if _, ok := s.hist[3]; !ok {
		t.Fatal("round 3 evicted while inside the retention window")
	}
	topics1 := 0
	for _, b := range s.Brokers {
		topics1 += b.Topics()
	}
	if topics1 >= topics0 {
		t.Fatalf("broker topic records did not shrink: %d -> %d", topics0, topics1)
	}

	s.RetireRound(3)
	if len(s.hist) != 0 {
		t.Fatalf("hist holds %d rounds after full retirement", len(s.hist))
	}
	for _, b := range s.Brokers {
		if b.Topics() != 0 {
			t.Fatalf("%d topic records survived full retirement on %s", b.Topics(), b.Node.Name)
		}
	}
	if len(s.aggSidecar) != 0 {
		t.Fatalf("%d sidecar bindings survived full retirement", len(s.aggSidecar))
	}
}

// SF's hierarchy is static — there are no per-round records, and
// RetireRound must be a true no-op.
func TestSFRetireRoundNoop(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSF(eng, Config{Nodes: 5, Model: model.ResNet18, SFLeaves: 6, Seed: 7})
	runOneRound(t, s, eng, 12)
	global := s.Global().Clone()
	pending := eng.Pending()
	s.RetireRound(1)
	if diff, err := s.Global().MaxAbsDiff(global); err != nil || diff != 0 {
		t.Fatalf("SF retirement touched the global model: diff %v err %v", diff, err)
	}
	if eng.Pending() != pending {
		t.Fatalf("SF retirement scheduled events: %d -> %d", pending, eng.Pending())
	}
}

// The async shape retires by folded version: samples stamped at or below
// the retired version leave every node's metrics map, newer ones stay.
func TestAsyncRetireRoundEvictsMetrics(t *testing.T) {
	eng, s := newAsyncRig(t, 2, AsyncParams{BufferK: 1})
	for i := 0; i < 6; i++ {
		dispatchConst(s, i%2, float32(i+1), 1, sim.Duration(i+1)*sim.Second, nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range s.Cluster.Nodes {
		total += n.Metrics.Len()
	}
	if total == 0 {
		t.Fatal("no metric samples after 6 folds; nothing to retire")
	}
	s.RetireRound(3)
	left := 0
	for _, n := range s.Cluster.Nodes {
		n.Metrics.ForEach(func(_ uint64, v ebpf.MetricSample) {
			if v.Round <= 3 {
				t.Fatalf("sample for retired version %d survived", v.Round)
			}
		})
		left += n.Metrics.Len()
	}
	if left == 0 || left >= total {
		t.Fatalf("version retirement off: %d -> %d samples", total, left)
	}
	s.RetireRound(s.Version())
	for _, n := range s.Cluster.Nodes {
		if n.Metrics.Len() != 0 {
			t.Fatalf("%d samples survived full retirement", n.Metrics.Len())
		}
	}
}
