// The serverless baseline SL (Fig. 2(b)), following FedKeeper and AdaFed on
// a Knative-like platform: aggregators are functions with container-based
// sidecars, all chaining is indirect through a per-node message broker,
// load balancing is least-connection, scaling is reactive (cold starts land
// on the critical path and cascade up the hierarchy), and aggregation is
// lazy. This is the "+SC" / "+MB" data plane of Fig. 7 plus the simplistic
// orchestration of §2.3.

package systems

import (
	"fmt"
	"sort"

	"repro/internal/aggcore"
	"repro/internal/autoscaler"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/fedavg"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/runtime"
	"repro/internal/sidecar"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// SL is the serverless baseline system.
type SL struct {
	cfg     Config
	Eng     *sim.Engine
	RNG     *sim.RNG
	Cluster *cluster.Cluster
	Brokers []*broker.Broker
	Mgrs    []*runtime.Manager

	global *tensor.Tensor
	algo   fedavg.Algorithm

	// sidecars attach to sandboxes (one per pod, reused with it), keyed by
	// sandbox ID. aggSidecar resolves the current aggregator's sidecar.
	sidecars   map[string]*sidecar.Container
	aggSidecar map[string]*sidecar.Container // aggregator ID → its pod's sidecar

	rs *slRound
	// hist retains closed rounds' state until RetireRound evicts them.
	hist map[int]*slRound
}

type slAgg struct {
	agg  *aggcore.Aggregator
	node int
	sb   *runtime.Sandbox
}

type slRound struct {
	round    int
	jobs     []ClientJob
	done     func(RoundResult)
	start    sim.Duration
	first    sim.Duration
	hasFirst bool
	injected bool

	assignNode []int
	plans      map[int]autoscaler.Plan
	leafFor    map[int][]string
	leafRR     map[int]int
	topGoal    int

	bind    map[string]*slAgg
	started map[string]bool

	cpu0     sim.Duration
	created0 uint64
	updates  int
	aggDone  sim.Duration
	finished bool
}

// NewSL assembles the baseline on a fresh cluster: one broker per node
// (persistent, stateful) plus the runtime managers.
func NewSL(eng *sim.Engine, cfg Config) *SL {
	cfg = cfg.withDefaults()
	cfg.Params.KeepAliveIdle = cfg.SLKeepAlive
	// Knative-style pods (user container + queue-proxy injection) cold-start
	// far slower than LIFL's lightweight SPRIGHT-style functions, and burn
	// more CPU doing it (§2.3, Fig. 10(b) churn).
	cfg.Params.ColdStartDelay = 4 * cfg.Params.ColdStartDelay
	cfg.Params.ColdStartCycles = 4 * cfg.Params.ColdStartCycles
	cfg.Params.SidecarIdleCPUFrac = 0.12
	rng := sim.NewRNG(cfg.Seed)
	cl := cluster.New(eng, rng, cfg.Params, cfg.Nodes)
	s := &SL{
		cfg:        cfg,
		Eng:        eng,
		RNG:        rng,
		Cluster:    cl,
		global:     newGlobal(cfg.Model),
		algo:       fedavg.FedAvg{Workers: cfg.Workers},
		sidecars:   make(map[string]*sidecar.Container),
		aggSidecar: make(map[string]*sidecar.Container),
		hist:       make(map[int]*slRound),
	}
	for _, n := range cl.Nodes {
		s.Brokers = append(s.Brokers, broker.New(n))
		s.Mgrs = append(s.Mgrs, runtime.NewManager(n))
		// The broker is an always-on stateful component with a resident
		// footprint (Appendix F.1's stateful tax).
		n.AllocMem(256 << 20)
	}
	return s
}

// Name implements Service.
func (s *SL) Name() string { return "SL" }

// Global implements Service.
func (s *SL) Global() *tensor.Tensor { return s.global }

// SetGlobal implements Service (the cross-cell fabric's between-round
// model install).
func (s *SL) SetGlobal(t *tensor.Tensor) { s.global = t }

// CPUTime implements Service: usage-based, including sidecar idle drain,
// broker relays, and cold-start CPU (all attributed on the nodes).
func (s *SL) CPUTime() sim.Duration {
	s.Finalize()
	return s.Cluster.TotalCPUTime()
}

// ActiveAggregators implements Service.
func (s *SL) ActiveAggregators() int {
	n := 0
	for _, m := range s.Mgrs {
		n += m.LiveCount()
	}
	return n
}

// Finalize settles sidecar idle CPU and sandbox runtime upkeep.
func (s *SL) Finalize() {
	for _, sc := range s.sidecars {
		sc.Finalize()
	}
	for _, m := range s.Mgrs {
		m.SettleUpkeep()
	}
}

func (s *SL) createdTotal() uint64 {
	var n uint64
	for _, m := range s.Mgrs {
		n += m.Created
	}
	return n
}

// RunRound implements Service.
func (s *SL) RunRound(round int, jobs []ClientJob, done func(RoundResult)) {
	if s.rs != nil && !s.rs.finished {
		panic("sl: overlapping rounds")
	}
	rs := &slRound{
		round:    round,
		jobs:     jobs,
		done:     done,
		start:    s.Eng.Now(),
		bind:     make(map[string]*slAgg),
		started:  make(map[string]bool),
		plans:    make(map[int]autoscaler.Plan),
		leafFor:  make(map[int][]string),
		leafRR:   make(map[int]int),
		cpu0:     s.CPUTime(),
		created0: s.createdTotal(),
		injected: true,
	}
	for _, j := range jobs {
		if !j.SkipBroadcast {
			rs.injected = false
			break
		}
	}
	s.rs = rs
	s.hist[round] = rs
	for _, m := range s.Mgrs {
		m.ReapIdle()
	}

	// Least-connection load balancing across nodes (WorstFit).
	states := make([]*placement.NodeState, 0, len(s.Cluster.Nodes))
	for _, n := range s.Cluster.Nodes {
		states = append(states, &placement.NodeState{
			Name: n.Name, MC: s.cfg.MC,
			ExecTime: s.cfg.Params.AggregateOne(s.cfg.Model.Bytes()),
		})
	}
	assign, err := placement.WorstFit{}.PlaceIndexed(len(jobs), states)
	if err != nil {
		panic(fmt.Sprintf("sl: placement: %v", err))
	}
	rs.assignNode = expandAssignment(assign, len(jobs))

	// Threshold autoscaler sizes the leaf pool per node from the observed
	// in-flight load; chain levels above scale reactively on first demand.
	th := autoscaler.Threshold{Target: s.cfg.SLTargetConcurrency, Min: 0}
	rs.topGoal = 0
	for node, c := range assign {
		if c == 0 {
			continue
		}
		leaves := th.Desired(c)
		if leaves < 1 {
			leaves = 1
		}
		p := autoscaler.Plan{Node: s.Cluster.Nodes[node].Name, Updates: c, Leaves: leaves, Middle: leaves > 1}
		p.LeafGoals = make([]int, leaves)
		rem := c
		for i := range p.LeafGoals {
			g := (rem + (leaves - i) - 1) / (leaves - i)
			p.LeafGoals[i] = g
			rem -= g
		}
		rs.plans[node] = p
		if p.Middle {
			rs.topGoal++
		} else {
			rs.topGoal += p.Leaves
		}
		for i := 0; i < leaves; i++ {
			rs.leafFor[node] = append(rs.leafFor[node], fmt.Sprintf("slr%d-n%d-leaf%d", round, node, i))
		}
	}
	if rs.topGoal == 0 {
		rs.topGoal = 1
	}

	// Broadcast and uploads. In the serverless architecture every client
	// download also flows through the message broker (Fig. 2(b): the broker
	// mediates all aggregator↔client communication), which serializes model
	// distribution through the broker process.
	topEgress := s.Cluster.Nodes[s.cfg.TopNode].Egress
	topBroker := s.Brokers[s.cfg.TopNode]
	size := s.cfg.Model.Bytes()
	for i, job := range jobs {
		i, job := i, job
		node := rs.assignNode[i]
		arrive := func() {
			s.ingest(rs, node, job, job.MakeUpdate(s.global))
		}
		if job.SkipBroadcast {
			s.Eng.After(job.Delay, arrive)
			continue
		}
		// Two broker passes per download: model store → broker, then
		// broker → client (store-and-forward both ways).
		topBroker.Mediate(size, func() {
			topBroker.Mediate(size, func() {
				topEgress.Transfer(size, func(_, _ sim.Duration) {
					s.Eng.After(job.Delay, arrive)
				})
			})
		})
	}
}

// RetireRound implements Service: evict every control-plane record for
// rounds <= last. The round's broker topics (subscriber closures and queue
// slots) are retired on every node's broker, the name → sidecar bindings
// dropped, and the round state unreferenced. Sidecars themselves live and
// die with their pods (OnReclaim), and sandboxes are never terminated here
// — eviction is bookkeeping, not schedule.
func (s *SL) RetireRound(last int) {
	var rounds []int
	for r, rs := range s.hist {
		if r <= last && rs.finished {
			rounds = append(rounds, r)
		}
	}
	sort.Ints(rounds)
	for _, r := range rounds {
		s.evictRound(s.hist[r])
		delete(s.hist, r)
	}
	s.cfg.Obs.Counter("ctrl/rounds_evicted", obs.Volatile).Add(uint64(len(rounds)))
}

// evictRound retires one closed round's broker topics and bindings.
func (s *SL) evictRound(rs *slRound) {
	names := s.roundNames(rs)
	for _, name := range names {
		for _, b := range s.Brokers {
			b.RetireTopic(name)
		}
		delete(s.aggSidecar, name)
	}
	s.cfg.Obs.Counter("ctrl/topics_retired", obs.Volatile).Add(uint64(len(names)))
}

// roundNames lists a round's logical aggregator names in deterministic
// order: each planned node's leaves then its middle (sorted by node
// index), and the top last.
func (s *SL) roundNames(rs *slRound) []string {
	nodes := make([]int, 0, len(rs.plans))
	for nd := range rs.plans {
		nodes = append(nodes, nd)
	}
	sort.Ints(nodes)
	names := make([]string, 0, 2*len(nodes)+1)
	for _, nd := range nodes {
		names = append(names, rs.leafFor[nd]...)
		if rs.plans[nd].Middle {
			names = append(names, s.middleName(rs.round, nd))
		}
	}
	return append(names, s.topName(rs.round))
}

func (s *SL) middleName(round, node int) string { return fmt.Sprintf("slr%d-n%d-middle", round, node) }
func (s *SL) topName(round int) string          { return fmt.Sprintf("slr%d-top", round) }

func (s *SL) consumerOf(rs *slRound, node int) string {
	if rs.plans[node].Middle {
		return s.middleName(rs.round, node)
	}
	return s.topName(rs.round)
}

// ingest: client upload → node ingress + kernel RX → broker (buffers the
// payload) → destination leaf's topic. The leaf is provisioned reactively
// on first traffic.
func (s *SL) ingest(rs *slRound, node int, j ClientJob, upd *tensor.Tensor) {
	n := s.Cluster.Nodes[node]
	size := upd.VirtualBytes()
	rxLat, rxCPU := n.P.KernelTraversal(size)
	n.Ingress.Transfer(size, func(_, _ sim.Duration) {
		n.KernelExec("sl-ingest", rxLat, rxCPU, func(_, _ sim.Duration) {
			if !rs.hasFirst {
				rs.hasFirst = true
				rs.first = s.Eng.Now()
			}
			rs.updates++
			leaves := rs.leafFor[node]
			name := leaves[rs.leafRR[node]%len(leaves)]
			rs.leafRR[node]++
			s.ensure(rs, node, name)
			s.Brokers[node].Publish(name, size, brokerPayload{
				u: aggcore.Update{Tensor: upd, Weight: j.Weight, Size: size, Round: rs.round, Producer: j.ID},
			})
		})
	})
}

type brokerPayload struct {
	u aggcore.Update
}

// ensure reactively provisions the named aggregator (and its sidecar) on
// the node if not already started, then subscribes it to its broker topic.
func (s *SL) ensure(rs *slRound, node int, name string) {
	if rs.started[name] {
		return
	}
	rs.started[name] = true
	s.cfg.Obs.Counter("ctrl/topics_created", obs.Det).Inc()
	role, goal, dst := s.roleFor(rs, node, name)
	n := s.Cluster.Nodes[node]
	agg := aggcore.New(name, role, n, s.algo, s.cfg.Model.PhysLen(), s.cfg.Model.Params)
	agg.Mode = aggcore.Lazy
	agg.Tracer = s.cfg.Tracer
	agg.TraceName = name
	agg.Assign(role, goal, dst, rs.round)
	agg.Transport = (*slTransport)(s)
	if role == aggcore.RoleTop {
		agg.OnComplete = s.onGlobal
		agg.TraceName = "Top"
	}
	la := &slAgg{agg: agg, node: node}
	sb := s.Mgrs[node].Start(role.String(), func(sb *runtime.Sandbox) {
		rs.bind[name] = la
		// The sidecar lives and dies with the pod: a warm-reused sandbox
		// keeps its sidecar, a fresh one gets a new container.
		sc, ok := s.sidecars[sb.ID]
		if !ok {
			sc = sidecar.NewContainer(n, sb.ID)
			s.sidecars[sb.ID] = sc
		}
		s.aggSidecar[name] = sc
		// Subscribing drains everything the broker buffered while the
		// function cold-started; each delivery passes the sidecar and pays
		// deserialization before reaching the function.
		s.Brokers[node].Subscribe(name, func(m broker.Message) {
			pl := m.Payload.(brokerPayload)
			sc.Intercept(m.Size, func() {
				desLat, desCPU := n.P.Deserialize(m.Size, len(s.cfg.Model.Layers))
				agg.ExecAs("sl-ingest", desLat, desCPU, func(start, end sim.Duration) {
					s.cfg.Tracer.Add(agg.TraceName, trace.KindNetwork, start, end, rs.round)
					agg.Receive(pl.u)
				})
			})
		})
		agg.NotifyReady()
	})
	la.sb = sb
	agg.Sandbox = sb
	sb.Pinned = true // owes this round an output (cleared on Send)
	sb.OnReclaim = func(dead *runtime.Sandbox) {
		s.Brokers[node].Unsubscribe(name)
		if sc, ok := s.sidecars[dead.ID]; ok {
			sc.Stop()
			delete(s.sidecars, dead.ID)
		}
		delete(s.aggSidecar, name)
	}
}

// roleFor resolves a logical name.
func (s *SL) roleFor(rs *slRound, node int, name string) (aggcore.Role, int, string) {
	if name == s.topName(rs.round) {
		return aggcore.RoleTop, rs.topGoal, ""
	}
	for nd, p := range rs.plans {
		if name == s.middleName(rs.round, nd) {
			return aggcore.RoleMiddle, p.Leaves, s.topName(rs.round)
		}
		for i, ln := range rs.leafFor[nd] {
			if ln == name {
				return aggcore.RoleLeaf, p.LeafGoals[i], s.consumerOf(rs, nd)
			}
		}
	}
	panic(fmt.Sprintf("sl: unknown logical name %q", name))
}

// nodeOfName resolves where a logical name runs (middles stay on their
// node, the top lives on the configured top node).
func (s *SL) nodeOfName(rs *slRound, name string) int {
	if name == s.topName(rs.round) {
		return s.cfg.TopNode
	}
	for nd := range rs.plans {
		if name == s.middleName(rs.round, nd) {
			return nd
		}
		for _, ln := range rs.leafFor[nd] {
			if ln == name {
				return nd
			}
		}
	}
	panic(fmt.Sprintf("sl: unknown logical name %q", name))
}

// slTransport chains functions indirectly: source sidecar interception,
// kernel serialize+TX into the broker, store-and-forward, then (possibly a
// NIC crossing and) kernel RX + destination sidecar + deserialize.
type slTransport SL

// SendResult implements aggcore.Transport.
func (t *slTransport) SendResult(src *aggcore.Aggregator, out aggcore.Update, dstID string) {
	s := (*SL)(t)
	rs := s.rs
	srcNode := s.nodeIndexOf(src.Node)
	dstNode := s.nodeOfName(rs, dstID)
	n := src.Node
	nT := len(s.cfg.Model.Layers)
	startT := s.Eng.Now()

	// Outbound: source sidecar intercept, then serialize + kernel TX.
	sc := s.aggSidecar[src.ID]
	if sc == nil {
		panic("sl transport: no sidecar for " + src.ID)
	}
	sc.Intercept(out.Size, func() {
		serLat, serCPU := n.P.Serialize(out.Size, nT)
		txLat, txCPU := n.P.KernelTraversal(out.Size)
		src.ExecAs("sl-transport", serLat, serCPU, func(_, _ sim.Duration) {
			n.KernelExec("sl-transport", txLat, txCPU, func(_, _ sim.Duration) {
				s.cfg.Tracer.Add(src.TraceName, trace.KindNetwork, startT, s.Eng.Now(), out.Round)
				forward := func(onNode int) {
					s.ensure(rs, onNode, dstID)
					s.Brokers[onNode].Publish(dstID, out.Size, brokerPayload{u: out})
				}
				if srcNode == dstNode {
					forward(srcNode)
					return
				}
				// Cross-node: the broker hands off over the NIC to the
				// destination node's broker, paying kernel both sides.
				rxLat, rxCPU := n.P.KernelTraversal(out.Size)
				n.Egress.Transfer(out.Size, func(_, _ sim.Duration) {
					dn := s.Cluster.Nodes[dstNode]
					dn.Ingress.Transfer(out.Size, func(_, _ sim.Duration) {
						dn.KernelExec("sl-transport", rxLat, rxCPU, func(_, _ sim.Duration) {
							forward(dstNode)
						})
					})
				})
			})
		})
	})
}

func (s *SL) nodeIndexOf(n *cluster.Node) int {
	for i, c := range s.Cluster.Nodes {
		if c == n {
			return i
		}
	}
	panic("sl: foreign node")
}

// onGlobal installs and evaluates the new global model.
func (s *SL) onGlobal(top *aggcore.Aggregator, out aggcore.Update) {
	rs := s.rs
	next, err := s.cfg.ServerOpt.Apply(s.global, out.Tensor)
	if err != nil {
		panic(fmt.Sprintf("sl: global update: %v", err))
	}
	s.global = next
	rs.aggDone = s.Eng.Now()
	eval := top.Node.P.EvalTime(s.cfg.Model.Bytes())
	top.ExecAs("aggregator", eval, eval, func(start, end sim.Duration) {
		s.cfg.Tracer.Add(top.TraceName, trace.KindEval, start, end, rs.round)
		rs.finished = true
		now := s.Eng.Now()
		act := rs.aggDone - rs.start
		if !rs.injected && rs.hasFirst {
			act = rs.aggDone - rs.first
		}
		nodes := make(map[int]bool)
		for _, nd := range rs.assignNode {
			nodes[nd] = true
		}
		nodes[s.cfg.TopNode] = true
		if rs.done != nil {
			rs.done(RoundResult{
				Round:        rs.round,
				Start:        rs.start,
				FirstArrival: rs.first,
				End:          now,
				ACT:          act,
				Updates:      rs.updates,
				AggsCreated:  int(s.createdTotal() - rs.created0),
				AggsActive:   len(rs.bind),
				NodesUsed:    len(nodes),
				CPUTime:      s.CPUTime() - rs.cpu0,
			})
		}
	})
}
