// Package systems assembles the complete FL systems the paper evaluates
// against each other (§6): LIFL (with its four orchestration features
// individually switchable for the Fig. 8 ablation), the serverful baseline
// SF (Fig. 2(a), always-on hierarchy, direct gRPC), and the serverless
// baseline SL (Fig. 2(b), Knative-style: container sidecars, message
// broker, threshold autoscaling, least-connection load balancing). SL-H —
// the Fig. 8 baseline with LIFL's data plane but a conventional control
// plane — is the LIFL assembly with every flag off.
//
// All systems implement Service and run the same synchronous FedAvg round
// protocol: broadcast the global model, clients train and upload, the
// hierarchy aggregates, the top aggregator installs the new global model
// and evaluates it.
//
// Rounds also close: Service.RetireRound(last) evicts every control-plane
// record a system holds for rounds <= last — round-named sockmap entries
// and gateway routes (LIFL/SL-H), broker topics and sidecar bindings (SL),
// round-stamped eBPF metric samples, superseded checkpoints, and the
// retained round state itself. SF's static hierarchy names nothing per
// round, so its RetireRound is a no-op. Retirement is bookkeeping, never
// schedule: Reports are byte-identical for any retention window (see
// docs/MEMORY.md for the full lifecycle).
//
// With Config.Obs set (internal/obs, wired from core's RunConfig.
// Telemetry), the control planes count their churn: ctrl/* creation
// counters are deterministic; retirement/eviction counters are Volatile
// (their values depend on the retention window) and appear only in
// wall-opt-in snapshots. Finalize publishes the eBPF data-plane gauges
// (skmsg runs, redirects, drops, sockmap size) and load/* planner
// inputs.
//
// Layer (DESIGN.md): wires the component models into whole systems —
// the only package that knows what LIFL or a baseline is. core drives these
// assemblies; nothing below imports this package.
package systems
