package systems

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// runACT executes one injected round under the given flags and returns the
// result; used by the orchestration-property tests below.
func runACT(t *testing.T, flags Flags, n int, window sim.Duration) RoundResult {
	t.Helper()
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet152, MC: 20, Seed: 3, Flags: flags})
	jobs := makeJobs(n)
	for i := range jobs {
		jobs[i].PreQueued = true
		if n > 1 {
			jobs[i].Delay = window * sim.Duration(i) / sim.Duration(n)
		}
	}
	var res *RoundResult
	s.RunRound(1, jobs, func(r RoundResult) { res = &r })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatalf("round did not complete under %+v", flags)
	}
	return *res
}

// Fig. 8(a) ordering: each added orchestration feature must not hurt, and
// the full stack must beat SL-H clearly at packable load.
func TestOrchestrationFeatureOrdering(t *testing.T) {
	window := 4 * sim.Second
	slh := runACT(t, Flags{}, 20, window)
	p1 := runACT(t, Flags{LocalityPlacement: true}, 20, window)
	p123 := runACT(t, Flags{LocalityPlacement: true, HierarchyPlan: true, Reuse: true}, 20, window)
	full := runACT(t, AllFlags(), 20, window)
	if p1.ACT >= slh.ACT {
		t.Errorf("locality placement did not help: %v vs %v", p1.ACT, slh.ACT)
	}
	if p123.ACT >= p1.ACT {
		t.Errorf("planning+reuse did not help: %v vs %v", p123.ACT, p1.ACT)
	}
	if full.ACT >= p123.ACT {
		t.Errorf("eager did not help: %v vs %v", full.ACT, p123.ACT)
	}
	if ratio := slh.ACT.Seconds() / full.ACT.Seconds(); ratio < 1.5 {
		t.Errorf("full orchestration gain only %.2fx over SL-H", ratio)
	}
}

// Fig. 8(d): locality packing concentrates 20 updates on one node while
// SL-H spreads over all five.
func TestPlacementNodeFootprint(t *testing.T) {
	slh := runACT(t, Flags{}, 20, 0)
	lifl := runACT(t, AllFlags(), 20, 0)
	if slh.NodesUsed != 5 {
		t.Errorf("SL-H used %d nodes, want 5", slh.NodesUsed)
	}
	if lifl.NodesUsed != 1 {
		t.Errorf("LIFL used %d nodes, want 1", lifl.NodesUsed)
	}
}

// Fig. 8(c): reuse reduces instance creations (middles/top are conversions).
func TestReuseReducesCreations(t *testing.T) {
	noReuse := runACT(t, Flags{LocalityPlacement: true, HierarchyPlan: true}, 20, 0)
	reuse := runACT(t, Flags{LocalityPlacement: true, HierarchyPlan: true, Reuse: true}, 20, 0)
	if reuse.AggsCreated >= noReuse.AggsCreated {
		t.Errorf("reuse created %d >= %d", reuse.AggsCreated, noReuse.AggsCreated)
	}
}

// Reuse conversions actually happen and are counted.
func TestReuseConversionsCounted(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet152, MC: 20, Seed: 3, Flags: AllFlags()})
	jobs := makeJobs(20)
	for i := range jobs {
		jobs[i].PreQueued = true
	}
	s.RunRound(1, jobs, func(RoundResult) {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.TotalConversions == 0 {
		t.Fatal("no §5.3 role conversions recorded")
	}
}

// Cross-node relaying happens exactly when the hierarchy spans nodes: with
// 60 packed updates there are three nodes, so two intermediates must relay
// to the top's node.
func TestCrossNodeRelaysMatchTopology(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet152, MC: 20, Seed: 3,
		Flags: Flags{LocalityPlacement: true, HierarchyPlan: true, Eager: true}})
	jobs := makeJobs(60)
	for i := range jobs {
		jobs[i].PreQueued = true
	}
	s.RunRound(1, jobs, func(RoundResult) {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	relays := uint64(0)
	for _, gw := range s.GWs {
		relays += gw.SentRemote
	}
	if relays != 2 {
		t.Fatalf("cross-node relays = %d, want 2 (3 nodes, top local to one)", relays)
	}
}

// The single-node case must not touch the gateways' remote path at all —
// everything rides shared memory.
func TestFullyPackedRoundIsShmOnly(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet152, MC: 20, Seed: 3, Flags: AllFlags()})
	jobs := makeJobs(20)
	for i := range jobs {
		jobs[i].PreQueued = true
	}
	s.RunRound(1, jobs, func(RoundResult) {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, gw := range s.GWs {
		if gw.SentRemote != 0 {
			t.Fatalf("gateway relayed %d updates in a fully packed round", gw.SentRemote)
		}
	}
}

// Shared-memory hygiene: after a round completes, no model-update objects
// remain referenced (the global was copied out).
func TestNoShmLeakAfterRound(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet18, MC: 60, Seed: 3, Flags: AllFlags()})
	for r := 1; r <= 2; r++ {
		s.RunRound(r, makeJobs(12), func(RoundResult) {})
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range s.Cluster.Nodes {
		if n.Shm.Len() != 0 {
			t.Fatalf("%s: %d shm objects leaked", n.Name, n.Shm.Len())
		}
	}
}

// SF's cost accrues with wall time even when idle (always-on reservation).
func TestSFReservationAccruesWhileIdle(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSF(eng, Config{Nodes: 5, Model: model.ResNet18, SFLeaves: 6, Seed: 3})
	before := s.CPUTime()
	eng.After(sim.Hour, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	after := s.CPUTime()
	if after-before < sim.Hour { // ≥1 effective core reserved
		t.Fatalf("idle hour accrued only %v", after-before)
	}
}

// LIFL's usage-based cost must NOT accrue meaningfully while idle (only
// warm-instance upkeep, which keep-alive bounds).
func TestLIFLUsageIdlesCheaply(t *testing.T) {
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet18, MC: 60, Seed: 3, Flags: AllFlags()})
	s.RunRound(1, makeJobs(8), func(RoundResult) {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	before := s.CPUTime()
	eng.After(sim.Hour, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	grew := s.CPUTime() - before
	// Warm instances are reaped after KeepAliveIdle (6 min), so upkeep can
	// accrue for at most that long.
	if grew > 10*sim.Minute {
		t.Fatalf("idle hour grew usage cost by %v", grew)
	}
}

// SL churns: with a short keep-alive and spaced rounds, the second round
// cold-starts again (Fig. 10(b)).
func TestSLColdStartChurnAcrossRounds(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSL(eng, Config{Nodes: 5, Model: model.ResNet18, Seed: 3, SLKeepAlive: 30 * sim.Second})
	var r1, r2 RoundResult
	s.RunRound(1, makeJobs(12), func(r RoundResult) { r1 = r })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Wait past the keep-alive before the next round.
	eng.After(2*sim.Minute, func() {})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	s.RunRound(2, makeJobs(12), func(r RoundResult) { r2 = r })
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if r1.AggsCreated == 0 || r2.AggsCreated == 0 {
		t.Fatalf("expected cold churn in both rounds: %d, %d", r1.AggsCreated, r2.AggsCreated)
	}
}

// The three data planes must agree on the FedAvg result bit-for-bit within
// float tolerance: same updates in, same global model out.
func TestSystemsAgreeOnGlobalModel(t *testing.T) {
	results := map[string][]float32{}
	for _, mk := range []func(*sim.Engine) Service{
		func(e *sim.Engine) Service {
			return NewLIFL(e, Config{Nodes: 3, Model: model.ResNet18, MC: 60, Seed: 3, Flags: AllFlags()})
		},
		func(e *sim.Engine) Service {
			return NewSF(e, Config{Nodes: 3, Model: model.ResNet18, SFLeaves: 4, Seed: 3})
		},
		func(e *sim.Engine) Service {
			return NewSL(e, Config{Nodes: 3, Model: model.ResNet18, Seed: 3})
		},
	} {
		eng := sim.NewEngine()
		s := mk(eng)
		s.RunRound(1, makeJobs(9), func(RoundResult) {})
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		results[s.Name()] = s.Global().Data
	}
	ref := results["LIFL"]
	for name, data := range results {
		for i := range ref {
			d := float64(data[i]) - float64(ref[i])
			if d > 1e-3 || d < -1e-3 {
				t.Fatalf("%s diverges from LIFL at %d: %v vs %v", name, i, data[i], ref[i])
			}
		}
	}
}

// Eager vs lazy (flag ④) ACT comparison under spread arrivals — the §5.4
// claim behind Fig. 8's last step.
func TestEagerBeatsLazyOnSpreadArrivals(t *testing.T) {
	lazy := runACT(t, Flags{LocalityPlacement: true, HierarchyPlan: true, Reuse: true}, 20, 8*sim.Second)
	eager := runACT(t, AllFlags(), 20, 8*sim.Second)
	if eager.ACT >= lazy.ACT {
		t.Fatalf("eager %v not faster than lazy %v", eager.ACT, lazy.ACT)
	}
}

// Determinism: identical configuration + seed ⇒ identical round results.
func TestSystemDeterminism(t *testing.T) {
	run := func() RoundResult {
		eng := sim.NewEngine()
		s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet18, MC: 60, Seed: 11, Flags: AllFlags()})
		var res RoundResult
		s.RunRound(1, makeJobs(16), func(r RoundResult) { res = r })
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic rounds:\n%+v\n%+v", a, b)
	}
}
