package systems

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// tinySpec keeps async system tests fast: 64 real parameters, no
// virtual scaling, one layer.
func tinySpec() model.Spec {
	return model.Spec{Name: "tiny", Params: 64, PhysScale: 1, Layers: []int{64}}
}

func newAsyncRig(t *testing.T, nodes int, prm AsyncParams) (*sim.Engine, *Async) {
	t.Helper()
	eng := sim.NewEngine()
	s := NewAsync(eng, Config{Nodes: nodes, Model: tinySpec(), Seed: 9, Async: prm})
	return eng, s
}

// dispatchConst launches one client producing a constant-valued update.
func dispatchConst(s *Async, node int, val float32, weight float64, delay sim.Duration, done func()) {
	base := s.Version()
	s.Dispatch(AsyncJob{
		ID:          "c",
		Node:        node,
		Delay:       delay,
		Weight:      weight,
		BaseVersion: base,
		MakeUpdate: func() *tensor.Tensor {
			u := s.Global().Clone()
			u.Fill(val)
			return u
		},
		Done: done,
	})
}

// Buffer of 1 is the degenerate FedBuff: every folded update is its own
// version. Versions must bump once per upload, strictly monotonically.
func TestAsyncBufferOfOne(t *testing.T) {
	eng, s := newAsyncRig(t, 1, AsyncParams{BufferK: 1})
	var bumps []AsyncVersion
	s.SetOnVersion(func(v AsyncVersion) { bumps = append(bumps, v) })
	for i := 0; i < 5; i++ {
		dispatchConst(s, 0, float32(i+1), 1, sim.Duration(i+1)*sim.Second, nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 5 || len(bumps) != 5 {
		t.Fatalf("version = %d, bumps = %d, want 5 each", s.Version(), len(bumps))
	}
	for i, v := range bumps {
		if v.Version != i+1 {
			t.Fatalf("bump %d carries version %d", i, v.Version)
		}
		if v.Updates != 1 {
			t.Fatalf("bump %d folded %d updates, want 1", i, v.Updates)
		}
		if v.End < v.Installed {
			t.Fatalf("bump %d: eval ended before install", i)
		}
	}
	if s.Received != 5 || s.Folded != 5 {
		t.Fatalf("received %d folded %d", s.Received, s.Folded)
	}
}

// The ScaleAdd merge: with MixRate 0.5 and K=2, version 1's global must be
// the exact midpoint of the old global and the buffer mean.
func TestAsyncMergeUsesMixRate(t *testing.T) {
	eng, s := newAsyncRig(t, 1, AsyncParams{BufferK: 2, MixRate: 0.5})
	g0 := s.Global().Clone()
	dispatchConst(s, 0, 2, 1, sim.Second, nil)
	dispatchConst(s, 0, 4, 1, sim.Second, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("version = %d", s.Version())
	}
	// Buffer mean is the constant 3 vector; merged = 0.5·g0 + 0.5·3.
	want := g0.Clone()
	mean := g0.Clone()
	mean.Fill(3)
	if err := want.ScaleAdd(0.5, 0.5, mean); err != nil {
		t.Fatal(err)
	}
	d, err := s.Global().MaxAbsDiff(want)
	if err != nil || d != 0 {
		t.Fatalf("merged global off by %v (%v)", d, err)
	}
}

// A max-staleness update is discarded at fold time: it releases its shm
// reference, counts as discarded, and never advances the buffer.
func TestAsyncMaxStalenessDiscards(t *testing.T) {
	eng, s := newAsyncRig(t, 1, AsyncParams{BufferK: 2, MaxStaleness: 1})
	// Two fresh updates advance to version 1.
	dispatchConst(s, 0, 1, 1, sim.Second, nil)
	dispatchConst(s, 0, 1, 1, sim.Second, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("version = %d", s.Version())
	}
	// One update stuck on base version 0: by the time two more fresh pairs
	// advance the model to version 3, its lag (3) exceeds MaxStaleness 1...
	stale := AsyncJob{
		ID: "stale", Node: 0, Delay: 40 * sim.Second, Weight: 1, BaseVersion: 0,
		MakeUpdate: func() *tensor.Tensor {
			u := s.Global().Clone()
			u.Fill(999)
			return u
		},
	}
	s.Dispatch(stale)
	for i := 0; i < 4; i++ {
		dispatchConst(s, 0, 1, 1, sim.Second, nil)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 3 {
		t.Fatalf("version = %d, want 3 (two fresh pairs)", s.Version())
	}
	if s.Discarded() != 1 {
		t.Fatalf("discarded = %d, want 1", s.Discarded())
	}
	// ...and the poisoned 999 values must not have leaked into the model.
	for i, x := range s.Global().Data {
		if x > 10 {
			t.Fatalf("global[%d] = %v: stale update leaked in", i, x)
		}
	}
	// All shm references (folded and discarded alike) must have drained.
	if used := s.Cluster.Nodes[0].Shm.Len(); used != 0 {
		t.Fatalf("shm holds %d objects after idle", used)
	}
}

// Cross-node ingest: updates landing on a non-buffer node relay through
// the inter-node gateway path and still fold; the edge commit frees the
// training slot (Done) before the relay completes.
func TestAsyncCrossNodeRelay(t *testing.T) {
	eng, s := newAsyncRig(t, 3, AsyncParams{BufferK: 3})
	doneAt := make([]sim.Duration, 0, 3)
	for i := 0; i < 3; i++ {
		node := i // nodes 0 (buffer), 1, 2
		dispatchConst(s, node, 1, 1, sim.Second, func() {
			doneAt = append(doneAt, eng.Now())
		})
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("version = %d", s.Version())
	}
	if len(doneAt) != 3 {
		t.Fatalf("%d slots freed", len(doneAt))
	}
	if s.GWs[1].SentRemote != 1 || s.GWs[2].SentRemote != 1 {
		t.Fatalf("remote sends = %d/%d, want 1/1", s.GWs[1].SentRemote, s.GWs[2].SentRemote)
	}
	if s.GWs[0].RelayedIn != 2 {
		t.Fatalf("buffer node relayed in %d, want 2", s.GWs[0].RelayedIn)
	}
	if s.Track.InFlight() != 0 || s.Track.Completed() != 3 {
		t.Fatalf("tracker: %d in flight, %d completed", s.Track.InFlight(), s.Track.Completed())
	}
}

// Staleness accounting: an update dispatched against version 0 but folded
// after bumps must be damped and counted in MeanStaleness.
func TestAsyncStalenessWeighting(t *testing.T) {
	eng, s := newAsyncRig(t, 1, AsyncParams{BufferK: 2, StalenessHalfLife: 1})
	// As soon as version 1 exists, dispatch a fresh client based on it, so
	// version 2's buffer mixes a lag-0 and a lag-1 contribution.
	s.SetOnVersion(func(v AsyncVersion) {
		if v.Version == 1 {
			dispatchConst(s, 0, 0, 1, sim.Second, nil)
		}
	})
	// Laggard trained against version 0, arriving after version 1 exists.
	s.Dispatch(AsyncJob{
		ID: "laggard", Node: 0, Delay: 30 * sim.Second, Weight: 1, BaseVersion: 0,
		MakeUpdate: func() *tensor.Tensor {
			u := s.Global().Clone()
			u.Fill(8)
			return u
		},
	})
	// Two prompt updates make version 1 at lag 0.
	dispatchConst(s, 0, 0, 1, sim.Second, nil)
	dispatchConst(s, 0, 0, 1, sim.Second, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Fatalf("version = %d", s.Version())
	}
	if s.MeanStaleness() == 0 {
		t.Fatal("laggard produced no staleness")
	}
	// Version 2 = mean of {laggard 8 @ half weight, fresh 0}: (8·0.5)/1.5 ≈ 2.67
	// (MixRate 1 adopts the buffer mean).
	got := float64(s.Global().Data[0])
	if got < 2.6 || got > 2.7 {
		t.Fatalf("global = %v, want ≈2.67 (staleness-damped)", got)
	}
}

// Updates arriving during the cold start park in shm-backed pending and
// fold once the sandbox binds — none are lost.
func TestAsyncColdStartParksUpdates(t *testing.T) {
	eng, s := newAsyncRig(t, 1, AsyncParams{BufferK: 2})
	// Zero training delay: uploads race the sandbox cold start.
	dispatchConst(s, 0, 1, 1, 0, nil)
	dispatchConst(s, 0, 3, 1, 0, nil)
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("version = %d; cold-start updates lost", s.Version())
	}
	if s.Folded != 2 {
		t.Fatalf("folded = %d", s.Folded)
	}
}
