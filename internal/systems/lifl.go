// The LIFL system assembly: shared-memory data plane + eBPF sidecars +
// per-node gateways + the orchestration heuristics of §5, with each feature
// individually switchable (Flags) for the Fig. 8 ablation. With all flags
// off this assembly is exactly the paper's SL-H baseline: LIFL's data plane
// under a conventional serverless control plane (least-connection load
// balancing, reactive scaling, lazy aggregation, no reuse).

package systems

import (
	"fmt"
	"sort"

	"repro/internal/aggcore"
	"repro/internal/autoscaler"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/coordinator"
	"repro/internal/costmodel"
	"repro/internal/ebpf"
	"repro/internal/fedavg"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/runtime"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/topology"
	"repro/internal/trace"
)

// LIFL is the full system of Fig. 3.
type LIFL struct {
	cfg     Config
	Eng     *sim.Engine
	RNG     *sim.RNG
	Cluster *cluster.Cluster
	GWs     []*gateway.Gateway
	Mgrs    []*runtime.Manager
	Metrics *metrics.Server

	// ForcePlan, when set, overrides the hierarchy planner per node —
	// used by microbenchmarks that pin the paper's exact topology (e.g.
	// Fig. 7(c): four leaves feeding the top directly).
	ForcePlan func(node string, updates int) autoscaler.Plan

	global *tensor.Tensor
	algo   fedavg.Algorithm
	reuse  coordinator.ReusePicker

	// Ckpt is the external persistent store for Appendix-B model
	// checkpoints, written asynchronously every CheckpointPeriodRounds.
	Ckpt *checkpoint.Store

	rs *liflRound
	// hist retains closed rounds' state until RetireRound evicts them —
	// the control-plane record window that keeps mid-round failover
	// replay and checkpoint-restore working while bounding live heap.
	hist map[int]*liflRound

	// TotalConversions counts §5.3 role conversions across rounds.
	TotalConversions uint64
}

// liflAgg couples an aggregator with its host.
type liflAgg struct {
	agg  *aggcore.Aggregator
	node int
	sb   *runtime.Sandbox
}

// liflRound is the in-flight round state.
type liflRound struct {
	round    int
	jobs     []ClientJob
	done     func(RoundResult)
	start    sim.Duration
	first    sim.Duration
	hasFirst bool
	injected bool // all jobs skip broadcast (ACT measured from round start)

	assignNode []int // job index → node index
	plans      map[int]autoscaler.Plan
	topGoal    int
	topNode    int // resolved top host (may change via reuse binding)
	topBound   bool
	aggDone    sim.Duration // global model installed (ACT endpoint, pre-eval)

	bind    map[string]*liflAgg         // logical name → instance
	pending map[string][]aggcore.Update // queued for unbound/unready names
	tag     *topology.TAG               // Appendix-D description of this round
	leafFor map[int][]string            // node → leaf names (dispatch ring)
	leafRR  map[int]int                 // node → round-robin cursor
	started map[string]bool             // logical names with provisioning begun

	cpu0     sim.Duration
	created0 uint64
	updates  int
	finished bool
}

// NewLIFL assembles the system on a fresh cluster.
func NewLIFL(eng *sim.Engine, cfg Config) *LIFL {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed)
	cl := cluster.New(eng, rng, cfg.Params, cfg.Nodes)
	s := &LIFL{
		cfg:     cfg,
		Eng:     eng,
		RNG:     rng,
		Cluster: cl,
		Metrics: metrics.NewServer(eng),
		global:  newGlobal(cfg.Model),
		algo:    fedavg.FedAvg{Workers: cfg.Workers},
		Ckpt:    checkpoint.NewStore(eng, 1e9), // 1 GB/s uplink to storage
		hist:    make(map[int]*liflRound),
	}
	for _, n := range cl.Nodes {
		s.GWs = append(s.GWs, gateway.New(n))
		s.Mgrs = append(s.Mgrs, runtime.NewManager(n))
	}
	gateway.Connect(s.GWs...)
	return s
}

// Name implements Service.
func (s *LIFL) Name() string {
	if s.cfg.Flags == (Flags{}) {
		return "SL-H"
	}
	return "LIFL"
}

// Global implements Service.
func (s *LIFL) Global() *tensor.Tensor { return s.global }

// SetGlobal implements Service (the cross-cell fabric's between-round
// model install).
func (s *LIFL) SetGlobal(t *tensor.Tensor) { s.global = t }

// CPUTime implements Service (usage-based accounting, including the
// continuous runtime upkeep of live sandboxes).
func (s *LIFL) CPUTime() sim.Duration {
	s.Finalize()
	return s.Cluster.TotalCPUTime()
}

// ActiveAggregators implements Service.
func (s *LIFL) ActiveAggregators() int {
	n := 0
	for _, m := range s.Mgrs {
		n += m.LiveCount()
	}
	return n
}

// Finalize implements Service. Besides settling deferred upkeep it
// publishes the eBPF sidecar load signals: run/redirect/drop totals are
// virtual-time deterministic, while live sockmap occupancy depends on
// how aggressively the caller retired rounds (Volatile).
func (s *LIFL) Finalize() {
	for _, m := range s.Mgrs {
		m.SettleUpkeep()
	}
	if s.cfg.Obs == nil {
		return
	}
	var runs, redirects, drops, entries uint64
	for _, n := range s.Cluster.Nodes {
		runs += n.SKMSG.Runs
		redirects += n.SKMSG.Redirects
		drops += n.SKMSG.Drops
		entries += uint64(n.SockMap.Len())
	}
	s.cfg.Obs.Gauge("ebpf/skmsg_runs", obs.Det).Set(float64(runs))
	s.cfg.Obs.Gauge("ebpf/redirects", obs.Det).Set(float64(redirects))
	s.cfg.Obs.Gauge("ebpf/drops", obs.Det).Set(float64(drops))
	s.cfg.Obs.Gauge("ebpf/sockmap_entries", obs.Volatile).Set(float64(entries))
}

// createdTotal sums cold creations across nodes.
func (s *LIFL) createdTotal() uint64 {
	var n uint64
	for _, m := range s.Mgrs {
		n += m.Created
	}
	return n
}

// mode returns the aggregation timing selected by flag ④.
func (s *LIFL) mode() aggcore.Mode {
	if s.cfg.Flags.Eager {
		return aggcore.Eager
	}
	return aggcore.Lazy
}

// RunRound implements Service.
func (s *LIFL) RunRound(round int, jobs []ClientJob, done func(RoundResult)) {
	if s.rs != nil && !s.rs.finished {
		panic("lifl: overlapping rounds (synchronous FL)")
	}
	rs := &liflRound{
		round:    round,
		jobs:     jobs,
		done:     done,
		start:    s.Eng.Now(),
		topNode:  s.cfg.TopNode,
		bind:     make(map[string]*liflAgg),
		pending:  make(map[string][]aggcore.Update),
		leafFor:  make(map[int][]string),
		leafRR:   make(map[int]int),
		started:  make(map[string]bool),
		plans:    make(map[int]autoscaler.Plan),
		cpu0:     s.CPUTime(),
		created0: s.createdTotal(),
		injected: true,
	}
	for _, j := range jobs {
		if !j.SkipBroadcast {
			rs.injected = false
			break
		}
	}
	s.rs = rs
	s.hist[round] = rs

	// Reap expired warm instances at round boundaries (the agent's cycle).
	for _, m := range s.Mgrs {
		m.ReapIdle()
	}

	s.place(rs)
	s.plan(rs)
	if s.cfg.Flags.HierarchyPlan {
		s.prestart(rs)
	}
	s.launchClients(rs)
}

// place runs the round's load balancing (§5.1): BestFit under flag ①,
// otherwise the least-connection-equivalent WorstFit of SL-H.
func (s *LIFL) place(rs *liflRound) {
	states := make([]*placement.NodeState, 0, len(s.Cluster.Nodes))
	for _, n := range s.Cluster.Nodes {
		states = append(states, &placement.NodeState{
			Name:     n.Name,
			MC:       s.cfg.MC,
			Arrival:  s.Metrics.Meter("arrivals@"+n.Name, sim.Minute).Rate(),
			ExecTime: s.cfg.Params.AggregateOne(s.cfg.Model.Bytes()),
		})
	}
	var policy placement.Policy = placement.WorstFit{}
	if s.cfg.Flags.LocalityPlacement {
		policy = placement.BestFit{}
	}
	assign, err := policy.PlaceIndexed(len(rs.jobs), states)
	if err != nil {
		panic(fmt.Sprintf("lifl: placement: %v", err))
	}
	// Expand counts into per-job node assignment, clustering consecutive
	// jobs on the same node (the mapping is what in-place queuing acts on).
	rs.assignNode = expandAssignment(assign, len(rs.jobs))
}

// expandAssignment flattens a node-indexed placement into per-job node
// indices, clustering consecutive jobs on the same node in node order (the
// same order the name-keyed map produced when walked by sorted node index).
func expandAssignment(a placement.Assignment, jobs int) []int {
	out := make([]int, jobs)
	j := 0
	for idx, c := range a {
		for k := 0; k < c && j < jobs; k++ {
			out[j] = idx
			j++
		}
	}
	return out
}

// plan sizes the per-node hierarchy (§5.2) and the top goal.
func (s *LIFL) plan(rs *liflRound) {
	counts := make(map[int]int)
	for _, n := range rs.assignNode {
		counts[n]++
	}
	fanIn := s.cfg.Params.LeafFanIn
	rs.topGoal = 0
	for node, c := range counts {
		name := s.Cluster.Nodes[node].Name
		var p autoscaler.Plan
		if s.ForcePlan != nil {
			p = s.ForcePlan(name, c)
		} else {
			p = autoscaler.PlanNode(name, c, fanIn)
		}
		rs.plans[node] = p
		if p.Middle {
			rs.topGoal++
		} else {
			rs.topGoal += p.Leaves
		}
		for i := 0; i < p.Leaves; i++ {
			rs.leafFor[node] = append(rs.leafFor[node], s.leafName(rs.round, node, i))
		}
	}
	if rs.topGoal == 0 {
		rs.topGoal = 1
	}
	rs.tag = s.buildTAG(rs)
	if err := rs.tag.Validate(); err != nil {
		panic(fmt.Sprintf("lifl: planner produced an invalid hierarchy: %v", err))
	}
}

// buildTAG materializes the round's Topology Abstraction Graph (Appendix D):
// one vertex per planned aggregator with the node name as the groupBy
// placement-affinity label, and channels along the aggregation tree. The
// routing manager derives sockmap/gateway routes from this description; here
// it also serves as a structural check on the planner.
func (s *LIFL) buildTAG(rs *liflRound) *topology.TAG {
	g := topology.New()
	top := s.topName(rs.round)
	topGroup := s.Cluster.Nodes[rs.topNode].Name
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("lifl: TAG: %v", err))
		}
	}
	must(g.AddVertex(topology.Vertex{Name: top, Role: topology.RoleAggregator, Level: "top", GroupBy: topGroup}))
	for node, p := range rs.plans {
		group := s.Cluster.Nodes[node].Name
		if p.Middle {
			must(g.AddVertex(topology.Vertex{
				Name: s.middleName(rs.round, node), Role: topology.RoleAggregator,
				Level: "middle", GroupBy: group,
			}))
			must(g.AddChannel(topology.Channel{From: s.middleName(rs.round, node), To: top, GroupBy: group}))
		}
		for _, leaf := range rs.leafFor[node] {
			must(g.AddVertex(topology.Vertex{Name: leaf, Role: topology.RoleAggregator, Level: "leaf", GroupBy: group}))
			must(g.AddChannel(topology.Channel{From: leaf, To: s.consumerOf(rs, node), GroupBy: group}))
		}
	}
	return g
}

// RoundTAG exposes the current round's TAG (nil outside a round).
func (s *LIFL) RoundTAG() *topology.TAG {
	if s.rs == nil {
		return nil
	}
	return s.rs.tag
}

// FailAggregator kills the instance behind the logical name mid-round and
// recovers per §3: aggregators are stateless and the updates are immutable
// in shared memory, so a fresh instance starts without state synchronization
// and the agent replays the failed instance's updates into it. Returns the
// number of updates replayed.
func (s *LIFL) FailAggregator(name string) (int, error) {
	rs := s.rs
	if rs == nil || rs.finished {
		return 0, fmt.Errorf("lifl: no round in flight")
	}
	la, ok := rs.bind[name]
	if !ok {
		return 0, fmt.Errorf("lifl: %q not bound", name)
	}
	// Crash the instance: drop its routes and sandbox.
	replay := la.agg.FailoverUpdates()
	node := la.node
	s.Cluster.Nodes[node].SockMap.Remove(name)
	for i, gw := range s.GWs {
		if i != node {
			gw.DropRoute(name)
		}
	}
	s.Mgrs[node].Terminate(la.sb)
	delete(rs.bind, name)
	rs.started[name] = false

	// Stateless restart: re-provision under the same logical name and
	// requeue the in-place updates (they become pending and drain when the
	// replacement binds).
	role, goal, dst := s.roleFor(rs, node, name)
	rs.pending[name] = append(rs.pending[name], replay...)
	s.provision(rs, name, node, role, goal, dst)
	return len(replay), nil
}

// metricsKeep bounds the diagnostic metrics series once rounds start
// retiring: enough history for any rate/window consumer, constant over
// arbitrarily many rounds.
const metricsKeep = 4096

// RetireRound implements Service: evict every control-plane record for
// rounds <= last. For each retired round the logical aggregator names are
// re-derived deterministically from the retained plan (sorted node walk),
// their sockmap entries and gateway routes dropped on every node, leftover
// pending shm references released, and the round state — bind map, TAG,
// plans, aggregator closures — unreferenced. The eBPF metrics maps drop
// the rounds' samples, the checkpoint store retires superseded snapshots,
// and the metrics server's series are bounded. Pure bookkeeping: no
// sandbox terminations, no CPU charges, no events.
func (s *LIFL) RetireRound(last int) {
	var rounds []int
	for r, rs := range s.hist {
		if r <= last && rs.finished {
			rounds = append(rounds, r)
		}
	}
	if len(rounds) == 0 {
		return
	}
	sort.Ints(rounds)
	for _, r := range rounds {
		s.evictRound(s.hist[r])
		delete(s.hist, r)
	}
	samples := 0
	for _, n := range s.Cluster.Nodes {
		samples += n.SKMSG.RetireRound(last)
	}
	s.Ckpt.Retire(last)
	s.Metrics.TrimAll(metricsKeep)
	// Eviction telemetry is Volatile by construction: how much is retired
	// (and when) is a function of the caller's retention window, which the
	// deterministic snapshot must not depend on.
	s.cfg.Obs.Counter("ctrl/rounds_evicted", obs.Volatile).Add(uint64(len(rounds)))
	s.cfg.Obs.Counter("ctrl/ebpf_samples_evicted", obs.Volatile).Add(uint64(samples))
}

// evictRound retires one closed round's registrations and references.
func (s *LIFL) evictRound(rs *liflRound) {
	names := s.roundNames(rs)
	refs := 0
	for _, name := range names {
		for _, n := range s.Cluster.Nodes {
			n.SockMap.Remove(name)
		}
		for _, gw := range s.GWs {
			gw.DropRoute(name)
		}
		for _, u := range rs.pending[name] {
			u.Release()
		}
		refs += len(rs.pending[name])
		delete(rs.pending, name)
	}
	s.cfg.Obs.Counter("ctrl/registrations_retired", obs.Volatile).Add(uint64(len(names)))
	s.cfg.Obs.Counter("ctrl/shm_refs_released", obs.Volatile).Add(uint64(refs))
}

// roundNames lists a round's logical aggregator names in deterministic
// order: each planned node's leaves then its middle (sorted by node
// index), and the top last.
func (s *LIFL) roundNames(rs *liflRound) []string {
	nodes := make([]int, 0, len(rs.plans))
	for nd := range rs.plans {
		nodes = append(nodes, nd)
	}
	sort.Ints(nodes)
	names := make([]string, 0, 2*len(nodes)+1)
	for _, nd := range nodes {
		names = append(names, rs.leafFor[nd]...)
		if rs.plans[nd].Middle {
			names = append(names, s.middleName(rs.round, nd))
		}
	}
	return append(names, s.topName(rs.round))
}

func (s *LIFL) leafName(round, node, i int) string {
	return fmt.Sprintf("r%d-n%d-leaf%d", round, node, i)
}
func (s *LIFL) middleName(round, node int) string {
	return fmt.Sprintf("r%d-n%d-middle", round, node)
}
func (s *LIFL) topName(round int) string { return fmt.Sprintf("r%d-top", round) }

// consumerOf returns the logical destination for a leaf on node.
func (s *LIFL) consumerOf(rs *liflRound, node int) string {
	if rs.plans[node].Middle {
		return s.middleName(rs.round, node)
	}
	return s.topName(rs.round)
}

// prestart provisions the planned hierarchy at round start (flag ②), so
// start-up overlaps with client training and uploads. Middles and the top
// are only pre-started when reuse (③) is off; with reuse they are bound by
// role conversion of completed instances.
func (s *LIFL) prestart(rs *liflRound) {
	for node, p := range rs.plans {
		for i := 0; i < p.Leaves; i++ {
			s.provision(rs, rs.leafFor[node][i], node, aggcore.RoleLeaf, p.LeafGoals[i], s.consumerOf(rs, node))
		}
		if p.Middle && !s.cfg.Flags.Reuse {
			s.provision(rs, s.middleName(rs.round, node), node, aggcore.RoleMiddle, p.Leaves, s.topName(rs.round))
		}
	}
	if !s.cfg.Flags.Reuse {
		s.provision(rs, s.topName(rs.round), rs.topNode, aggcore.RoleTop, rs.topGoal, "")
		rs.topBound = true
	}
}

// provision starts (cold or warm) a sandbox for the logical name and binds
// an aggregator to it when ready. Idempotent per name.
func (s *LIFL) provision(rs *liflRound, name string, node int, role aggcore.Role, goal int, dst string) {
	if rs.started[name] {
		return
	}
	rs.started[name] = true
	n := s.Cluster.Nodes[node]
	mgr := s.Mgrs[node]
	la := &liflAgg{node: node}
	agg := aggcore.New(name, role, n, s.algo, s.cfg.Model.PhysLen(), s.cfg.Model.Params)
	agg.Mode = s.mode()
	agg.Tracer = s.cfg.Tracer
	agg.TraceName = traceNameFor(name, role)
	agg.Assign(role, goal, dst, rs.round)
	agg.Transport = (*liflTransport)(s)
	if role == aggcore.RoleTop {
		agg.OnComplete = s.onGlobal
		rs.topNode = node
	}
	la.agg = agg
	// Deployment kind: with reuse, all LIFL aggregators share one
	// homogenized runtime kind; without it, each level is its own
	// deployment (warm pods cannot cross levels).
	kind := "agg"
	if !s.cfg.Flags.Reuse {
		kind = role.String()
	}
	sb := mgr.Start(kind, func(sb *runtime.Sandbox) {
		// Sandbox ready: bind, register routes, drain anything queued.
		s.bindAgg(rs, name, la)
		agg.NotifyReady()
	})
	la.sb = sb
	agg.Sandbox = sb
	sb.Pinned = true // owes this round an output (cleared on Send)
}

// traceNameFor compresses logical names for timeline rows.
func traceNameFor(name string, role aggcore.Role) string {
	switch role {
	case aggcore.RoleTop:
		return "Top"
	default:
		return name
	}
}

// bindAgg publishes the instance under its logical name: sockmap entry on
// its node, inter-node routes on every gateway, pending queue drain.
func (s *LIFL) bindAgg(rs *liflRound, name string, la *liflAgg) {
	rs.bind[name] = la
	// Registration creation tracks the planned topology, not the retention
	// window — deterministic for a fixed seed.
	s.cfg.Obs.Counter("ctrl/registrations_created", obs.Det).Inc()
	n := s.Cluster.Nodes[la.node]
	n.SockMap.Register(name, func(msg ebpf.Message) {
		s.deliverFromShm(rs, la, msg)
	})
	for i, gw := range s.GWs {
		if i != la.node {
			gw.SetRoute(name, n.Name)
		}
	}
	if la.agg.Role == aggcore.RoleTop {
		rs.topBound = true
		rs.topNode = la.node
	}
	for _, u := range rs.pending[name] {
		la.agg.Receive(u)
	}
	delete(rs.pending, name)
}

// deliverFromShm materializes an shm key into an aggregator Update.
func (s *LIFL) deliverFromShm(rs *liflRound, la *liflAgg, msg ebpf.Message) {
	store := s.Cluster.Nodes[la.node].Shm
	obj, err := store.Get(msg.ShmKey)
	if err != nil {
		panic(fmt.Sprintf("lifl: deliver %s: %v", msg.ShmKey, err))
	}
	la.agg.Receive(aggcore.Update{
		Tensor:   obj.Tensor,
		Weight:   obj.Weight,
		Size:     obj.Size,
		Round:    obj.Round,
		Producer: msg.SrcID,
		Key:      msg.ShmKey,
		Store:    store,
	})
}

// launchClients schedules the round's model distribution and uploads.
func (s *LIFL) launchClients(rs *liflRound) {
	topEgress := s.Cluster.Nodes[rs.topNode].Egress
	size := s.cfg.Model.Bytes()
	for i, j := range rs.jobs {
		i, j := i, j
		node := rs.assignNode[i]
		arrive := func() {
			upd := j.MakeUpdate(s.global)
			s.ingest(rs, node, j, upd)
		}
		if j.SkipBroadcast {
			s.Eng.After(j.Delay, arrive)
			continue
		}
		// Broadcast: the global model leaves the top node once per client;
		// the shared egress NIC staggers the downloads naturally.
		topEgress.Transfer(size, func(_, _ sim.Duration) {
			s.Eng.After(j.Delay, arrive)
		})
	}
}

// ingest pushes one client update into the assigned node's gateway; the
// committed key is dispatched to a leaf (in-place message queuing, §4.2).
func (s *LIFL) ingest(rs *liflRound, node int, j ClientJob, upd *tensor.Tensor) {
	if j.PreQueued {
		// The update is already resident in the node's in-place queue.
		key, err := s.Cluster.Nodes[node].Shm.Put(upd, j.Weight, j.ID, rs.round)
		if err != nil {
			panic(fmt.Sprintf("lifl: prequeued: %v", err))
		}
		if !rs.hasFirst {
			rs.hasFirst = true
			rs.first = s.Eng.Now()
		}
		rs.updates++
		s.dispatch(rs, node, key)
		return
	}
	gw := s.GWs[node]
	gu := gateway.Update{
		Tensor:   upd,
		Weight:   j.Weight,
		Size:     upd.VirtualBytes(),
		NTensors: len(s.cfg.Model.Layers),
		Round:    rs.round,
		Producer: j.ID,
	}
	gw.ReceiveExternal(gu, func(key shm.Key) {
		if !rs.hasFirst {
			rs.hasFirst = true
			rs.first = s.Eng.Now()
		}
		rs.updates++
		s.Metrics.Meter("arrivals", sim.Minute).Mark()
		s.Metrics.Record("arrival", 1)
		s.dispatch(rs, node, key)
	})
}

// dispatch assigns a committed update to a leaf (round-robin over the
// node's planned leaves so eager leaves start as early as possible) and
// performs the SKMSG key pass. Under reactive scaling (② off) the leaf's
// sandbox is provisioned on first demand — the cold start lands on the
// critical path, which is exactly the penalty Fig. 8 charges SL-H and +①.
func (s *LIFL) dispatch(rs *liflRound, node int, key shm.Key) {
	leaves := rs.leafFor[node]
	if len(leaves) == 0 {
		panic(fmt.Sprintf("lifl: no leaves planned on node %d", node))
	}
	name := leaves[rs.leafRR[node]%len(leaves)]
	rs.leafRR[node]++
	if !rs.started[name] {
		p := rs.plans[node]
		idx := indexOf(leaves, name)
		s.provision(rs, name, node, aggcore.RoleLeaf, p.LeafGoals[idx], s.consumerOf(rs, node))
	}
	s.keyPass(rs, node, "gw", name, key)
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

// keyPass sends a 16-byte shm key over the node's SKMSG channel to the
// logical destination, charging the event-driven sidecar cost. Unbound
// destinations queue in pending (the update already sits in shm — this is
// in-place queuing).
func (s *LIFL) keyPass(rs *liflRound, node int, src, dst string, key shm.Key) {
	n := s.Cluster.Nodes[node]
	n.ExecFree("ebpf-sidecar", costmodel.Cycles(n.P.EBPFMetricsCycles))
	msg := ebpf.Message{SrcID: src, DstID: dst, ShmKey: key, Size: 16, Round: rs.round, Kind: "update"}
	verdict, sock, err := n.SKMSG.Run(msg, 0)
	if err != nil || verdict != ebpf.VerdictRedirect {
		// No socket yet (reactive/reuse not bound): park in shm-backed pending.
		store := n.Shm
		obj, gerr := store.Get(key)
		if gerr != nil {
			panic(fmt.Sprintf("lifl: keyPass pending %s: %v", key, gerr))
		}
		rs.pending[dst] = append(rs.pending[dst], aggcore.Update{
			Tensor: obj.Tensor, Weight: obj.Weight, Size: obj.Size,
			Round: obj.Round, Producer: src, Key: key, Store: store,
		})
		s.demand(rs, node, dst)
		return
	}
	s.Eng.After(n.P.ShmKeyPassLatency, func() { sock.Deliver(msg) })
}

// demand reacts to traffic for an unbound logical name: under reactive
// scaling it provisions the instance now; under reuse it converts a warm
// idle instance when one exists (§5.3).
func (s *LIFL) demand(rs *liflRound, node int, name string) {
	if rs.started[name] {
		return
	}
	role, goal, dst := s.roleFor(rs, node, name)
	if s.cfg.Flags.Reuse {
		if s.convert(rs, node, name, role, goal, dst) {
			return
		}
	}
	s.provision(rs, name, node, role, goal, dst)
}

// roleFor resolves a logical name's role, goal and consumer.
func (s *LIFL) roleFor(rs *liflRound, node int, name string) (aggcore.Role, int, string) {
	if name == s.topName(rs.round) {
		return aggcore.RoleTop, rs.topGoal, ""
	}
	for nd, p := range rs.plans {
		if name == s.middleName(rs.round, nd) {
			return aggcore.RoleMiddle, p.Leaves, s.topName(rs.round)
		}
		for i, ln := range rs.leafFor[nd] {
			if ln == name {
				return aggcore.RoleLeaf, p.LeafGoals[i], s.consumerOf(rs, nd)
			}
		}
	}
	panic(fmt.Sprintf("lifl: unknown logical name %q", name))
}

// convert binds name to a warm idle instance on the same node via role
// conversion (§5.3). Returns false when no candidate is idle.
func (s *LIFL) convert(rs *liflRound, node int, name string, role aggcore.Role, goal int, dst string) bool {
	var cands []*aggcore.Aggregator
	for bn, la := range rs.bind {
		if la.node != node || bn == name {
			continue
		}
		cands = append(cands, la.agg)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	pick := s.reuse.PickIdle(cands)
	if pick == nil {
		return false
	}
	rs.started[name] = true
	s.reuse.MarkConversion()
	s.TotalConversions++
	s.cfg.Obs.Counter("ctrl/conversions", obs.Det).Inc()
	// Locate the instance wrapper.
	var la *liflAgg
	for _, cand := range rs.bind {
		if cand.agg == pick {
			la = cand
			break
		}
	}
	pick.ConvertRole(role, goal, dst, rs.round, func() {
		if role == aggcore.RoleTop {
			pick.OnComplete = s.onGlobal
			pick.TraceName = "Top"
		}
		s.bindAgg(rs, name, la)
		pick.NotifyReady()
	})
	return true
}

// liflTransport implements aggcore.Transport over shm + SKMSG + gateways.
type liflTransport LIFL

// SendResult writes the aggregate into shared memory (the one real copy of
// the LIFL intra-node path, Fig. 7(a)) and hands the key to the consumer —
// via SKMSG when co-located, via the gateways otherwise.
func (t *liflTransport) SendResult(src *aggcore.Aggregator, out aggcore.Update, dstID string) {
	s := (*LIFL)(t)
	rs := s.rs
	srcNode := s.nodeIndexOf(src.Node)
	n := src.Node
	shmLat, shmCPU := n.P.ShmWrite(out.Size)
	src.ExecAs("aggregator", shmLat, shmCPU, func(start, end sim.Duration) {
		s.cfg.Tracer.Add(src.TraceName, trace.KindNetwork, start, end, rs.round)
		key, err := n.Shm.Put(out.Tensor, out.Weight, src.ID, out.Round)
		if err != nil {
			panic(fmt.Sprintf("lifl transport: %v", err))
		}
		// Resolve destination placement.
		la, bound := rs.bind[dstID]
		if bound && la.node != srcNode {
			// Cross-node: relay through the gateways (Appendix A).
			dstNodeIdx := la.node
			gw := s.GWs[srcNode]
			if err := gw.SendRemote(src.ID, key, dstID, func(remoteKey shm.Key) {
				s.keyPass(rs, dstNodeIdx, src.ID, dstID, remoteKey)
			}); err != nil {
				panic(fmt.Sprintf("lifl transport: %v", err))
			}
			return
		}
		if !bound && s.topDstRemote(rs, dstID, srcNode) {
			// Destination is the (unbound) top on another node without
			// reuse; should not happen since non-reuse tops pre-bind.
			panic("lifl transport: unbound remote destination " + dstID)
		}
		// Same node (or unbound-yet local name): SKMSG key pass; demand
		// resolution provisions or converts as needed.
		s.keyPass(rs, srcNode, src.ID, dstID, key)
	})
}

// topDstRemote reports whether dst is the top logical name and the top is
// pinned to a different node.
func (s *LIFL) topDstRemote(rs *liflRound, dst string, srcNode int) bool {
	return dst == s.topName(rs.round) && rs.topBound && rs.topNode != srcNode
}

func (s *LIFL) nodeIndexOf(n *cluster.Node) int {
	for i, c := range s.Cluster.Nodes {
		if c == n {
			return i
		}
	}
	panic("lifl: foreign node")
}

// onGlobal fires when the top aggregator emits the round's aggregate:
// install the new global model and run the evaluation task (the "Eval"
// spans of Fig. 4 / Fig. 7(c)).
func (s *LIFL) onGlobal(top *aggcore.Aggregator, out aggcore.Update) {
	rs := s.rs
	next, err := s.cfg.ServerOpt.Apply(s.global, out.Tensor)
	if err != nil {
		panic(fmt.Sprintf("lifl: global update: %v", err))
	}
	s.global = next
	rs.aggDone = s.Eng.Now()
	// Appendix B: checkpoint asynchronously in the background so the
	// upload never lands on the aggregation critical path.
	if period := s.cfg.Params.CheckpointPeriodRounds; period > 0 && rs.round%period == 0 {
		s.Ckpt.SaveAsync(rs.round, s.global, nil)
	}
	eval := top.Node.P.EvalTime(s.cfg.Model.Bytes())
	top.ExecAs("aggregator", eval, eval, func(start, end sim.Duration) {
		s.cfg.Tracer.Add(top.TraceName, trace.KindEval, start, end, rs.round)
		s.finishRound(rs)
	})
}

// finishRound assembles the result and releases round state.
func (s *LIFL) finishRound(rs *liflRound) {
	rs.finished = true
	end := s.Eng.Now()
	// ACT is the aggregation completion time: it ends when the new global
	// model is installed; evaluation runs after and is excluded.
	act := rs.aggDone - rs.start
	if !rs.injected && rs.hasFirst {
		act = rs.aggDone - rs.first
	}
	nodes := make(map[int]bool)
	for _, n := range rs.assignNode {
		nodes[n] = true
	}
	nodes[rs.topNode] = true
	res := RoundResult{
		Round:        rs.round,
		Start:        rs.start,
		FirstArrival: rs.first,
		End:          end,
		ACT:          act,
		Updates:      rs.updates,
		AggsCreated:  int(s.createdTotal() - rs.created0),
		AggsActive:   len(rs.bind),
		NodesUsed:    len(nodes),
		CPUTime:      s.CPUTime() - rs.cpu0,
	}
	s.Metrics.Record("act_seconds", act.Seconds())
	s.Metrics.Record("active_aggs", float64(s.ActiveAggregators()))
	s.cfg.Obs.Gauge("load/act_seconds", obs.Det).Set(act.Seconds())
	s.cfg.Obs.Gauge("load/active_aggs", obs.Det).Set(float64(s.ActiveAggregators()))
	s.cfg.Obs.Gauge("load/arrival_rate_per_min", obs.Det).Set(s.Metrics.Meter("arrivals", sim.Minute).Rate())
	if rs.done != nil {
		rs.done(res)
	}
}
