package systems

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// Failure injection for the §3 resilience claim: kill aggregators mid-round
// and verify the round still completes with the exact FedAvg result.

func failureRig(t *testing.T, flags Flags) (*sim.Engine, *LIFL) {
	t.Helper()
	eng := sim.NewEngine()
	s := NewLIFL(eng, Config{Nodes: 5, Model: model.ResNet18, MC: 60, Seed: 17, Flags: flags})
	return eng, s
}

func TestLeafFailureMidRoundRecovers(t *testing.T) {
	eng, s := failureRig(t, Flags{LocalityPlacement: true, HierarchyPlan: true, Eager: true})
	init := s.Global().Clone()
	jobs := makeJobs(12)
	for i := range jobs {
		jobs[i].PreQueued = true
		jobs[i].Delay = sim.Duration(i) * sim.Second
	}
	var res *RoundResult
	s.RunRound(1, jobs, func(r RoundResult) { res = &r })
	// Kill one leaf after a few updates have been dispatched and partially
	// aggregated.
	eng.At(4*sim.Second, func() {
		name := s.leafName(1, 0, 0)
		replayed, err := s.FailAggregator(name)
		if err != nil {
			t.Errorf("fail injection: %v", err)
		}
		if replayed == 0 {
			t.Error("no updates to replay — failure injected too early to be interesting")
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("round did not complete after leaf failure")
	}
	if res.Updates != 12 {
		t.Fatalf("aggregated %d updates", res.Updates)
	}
	// FedAvg result must be exact despite the crash + replay.
	checkGlobal(t, s, 12, init)
	// Recovery cost: one extra instance creation.
	if res.AggsCreated == 0 {
		t.Fatal("replacement instance not created")
	}
}

func TestMiddleFailureMidRoundRecovers(t *testing.T) {
	eng, s := failureRig(t, Flags{LocalityPlacement: true, HierarchyPlan: true, Eager: true})
	init := s.Global().Clone()
	jobs := makeJobs(12)
	for i := range jobs {
		jobs[i].PreQueued = true
		jobs[i].Delay = sim.Duration(i) * sim.Second
	}
	var res *RoundResult
	s.RunRound(1, jobs, func(r RoundResult) { res = &r })
	// Kill the middle on node 0 once some leaf outputs have reached it.
	eng.At(8*sim.Second, func() {
		if _, err := s.FailAggregator(s.middleName(1, 0)); err != nil {
			t.Errorf("fail injection: %v", err)
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("round did not complete after middle failure")
	}
	checkGlobal(t, s, 12, init)
}

func TestFailUnknownAggregatorErrors(t *testing.T) {
	eng, s := failureRig(t, AllFlags())
	if _, err := s.FailAggregator("ghost"); err == nil {
		t.Fatal("no round in flight must error")
	}
	jobs := makeJobs(4)
	for i := range jobs {
		jobs[i].PreQueued = true
	}
	s.RunRound(1, jobs, func(RoundResult) {})
	if _, err := s.FailAggregator("ghost"); err == nil {
		t.Fatal("unknown name must error")
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

// No shm leaks even through a crash/replay cycle.
func TestFailureDoesNotLeakShm(t *testing.T) {
	eng, s := failureRig(t, Flags{LocalityPlacement: true, HierarchyPlan: true, Eager: true})
	jobs := makeJobs(12)
	for i := range jobs {
		jobs[i].PreQueued = true
		jobs[i].Delay = sim.Duration(i) * sim.Second
	}
	s.RunRound(1, jobs, func(RoundResult) {})
	eng.At(5*sim.Second, func() {
		if _, err := s.FailAggregator(s.leafName(1, 0, 1)); err != nil {
			t.Errorf("fail injection: %v", err)
		}
	})
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Cluster.Nodes {
		if n.Shm.Len() != 0 {
			t.Fatalf("%s leaked %d objects", n.Name, n.Shm.Len())
		}
	}
}
