// The buffered-asynchronous system assembly — the fifth system, beside
// LIFL/SL-H/SF/SL: LIFL's event-driven data plane (per-node gateways,
// shared-memory in-place queuing, SKMSG key passes, sandboxed homogenized
// runtimes) driving FedBuff-style buffered-async aggregation (Fig. 11 /
// Appendix A). There are no rounds and no barriers: the dispatcher keeps a
// fixed concurrency of clients training at all times, every upload is
// ingested by the gateway of its edge node and relayed (cross-node via the
// Appendix A gateway path) to the single buffer aggregator, and whenever K
// updates have been folded the global model advances one version through a
// staleness-weighted fused-ScaleAdd merge (internal/asyncfl policies).
//
// The buffer reuses aggcore's eager pipeline verbatim: Recv enqueues shm
// keys, Agg folds one update at a time on the aggregator's single-threaded
// process, and the goal-met Send is the version bump. Staleness decay hangs
// off aggcore's fold-time Reweigh hook — Update.Round carries the
// producer's base version, so an update queued across a version bump is
// damped against the version current when it is actually folded.

package systems

import (
	"fmt"

	"repro/internal/aggcore"
	"repro/internal/asyncfl"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/ebpf"
	"repro/internal/fedavg"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// asyncBufferID is the buffer aggregator's logical name in sockmaps and
// gateway routing tables.
const asyncBufferID = "async-buffer"

// AsyncParams are the buffered-async knobs of the async system.
type AsyncParams struct {
	// BufferK is the FedBuff buffer size K: updates folded per version bump
	// (default 10).
	BufferK int
	// StalenessHalfLife damps an update trained s versions ago by
	// 2^(−s/HalfLife); 0 disables damping.
	StalenessHalfLife float64
	// MaxStaleness, when > 0, discards updates staler than this many
	// versions outright (they release their shm reference and do not
	// advance the buffer).
	MaxStaleness int
	// MixRate is the server mixing rate η of the version-bump merge
	// next = (1−η)·global + η·bufferMean; 0 defaults to 1 (adopt).
	MixRate float64
}

// withDefaults fills unset knobs.
func (p AsyncParams) withDefaults() AsyncParams {
	if p.BufferK == 0 {
		p.BufferK = 10
	}
	if p.MixRate == 0 {
		p.MixRate = 1
	}
	return p
}

// AsyncJob is one dispatched client contribution — the async analogue of
// ClientJob. The dispatcher snapshots the global model at dispatch time;
// the system charges the model download, waits out training, and ingests
// the upload at the job's edge node.
type AsyncJob struct {
	ID string
	// Node indexes the worker node whose gateway ingests the upload (client
	// locality); updates landing away from the buffer node relay through
	// the inter-node gateway path.
	Node int
	// Delay is local training time, counted from the moment the client has
	// the global model.
	Delay sim.Duration
	// Weight is the FedAvg sample count c_k (before staleness decay).
	Weight float64
	// BaseVersion is the global model version the client trained against.
	BaseVersion int
	// MakeUpdate produces the local update from the dispatch-time snapshot
	// the dispatcher captured.
	MakeUpdate func() *tensor.Tensor
	// Done fires when the upload has been committed at its edge node — the
	// training slot is free again (concurrency-limited dispatch).
	Done func()
}

// AsyncVersion reports one version bump — the async analogue of
// RoundResult.
type AsyncVersion struct {
	Version int
	// FirstFold is when this version's first surviving contribution began
	// folding — the async analogue of a round's FirstArrival, so
	// Installed − FirstFold is the ACT-equivalent aggregation span.
	// Installed is when the merged model replaced the global; End is after
	// the evaluation task that follows every bump.
	FirstFold, Installed, End sim.Duration
	// Updates is how many contributions were folded into this version (the
	// buffer size K) and MeanStaleness their mean version lag at fold time.
	Updates       int
	MeanStaleness float64
	// Discarded counts updates dropped by the staleness cutoff since the
	// previous bump.
	Discarded int
	// CPUTime is the service's cumulative CPU cost at End.
	CPUTime sim.Duration
}

// AsyncService is the buffered-async counterpart of Service: no rounds —
// clients are dispatched continuously and the global model advances a
// version whenever the buffer goal is met.
type AsyncService interface {
	Name() string
	// Global returns the current global model (immutable by convention;
	// each version installs a fresh tensor).
	Global() *tensor.Tensor
	// Version returns the current global model version.
	Version() int
	// Dispatch launches one client: model download, training delay, upload.
	Dispatch(job AsyncJob)
	// SetOnVersion installs the version-bump observer.
	SetOnVersion(fn func(AsyncVersion))
	// MeanStaleness reports the mean fold-time version lag across the run.
	MeanStaleness() float64
	// ActiveAggregators returns live aggregator instances.
	ActiveAggregators() int
	// CPUTime returns cumulative usage-based CPU cost.
	CPUTime() sim.Duration
	// RetireRound evicts control-plane records belonging to folded
	// versions <= last — the async counterpart of Service.RetireRound,
	// called by core's version loop with version − RetainRounds after
	// each fold. Same contract: bookkeeping only, never schedule.
	RetireRound(last int)
	// Finalize settles deferred costs before reading final counters.
	Finalize()
}

// Async is the buffered-async system.
type Async struct {
	cfg     Config
	prm     AsyncParams
	Eng     *sim.Engine
	Cluster *cluster.Cluster
	GWs     []*gateway.Gateway
	Mgr     *runtime.Manager

	global *tensor.Tensor
	buffer *aggcore.Aggregator
	sb     *runtime.Sandbox
	decay  asyncfl.Decay
	merger asyncfl.Merger
	// Track is the per-client version-tracking census: each in-flight
	// dispatch registers its base version and retires at upload commit,
	// yielding the *arrival*-staleness diagnostic (Track.MeanStaleness)
	// and the in-flight count. The staleness used for damping — and for
	// MeanStaleness on this type — is the fold-time lag carried by the shm
	// object's Round stamp, which may be larger (versions advance while an
	// update waits in the buffer queue).
	Track *asyncfl.Tracker

	version   int
	onVersion func(AsyncVersion)
	// pending parks shm-resident updates that arrive before the buffer
	// sandbox is ready (in-place queuing across the cold start).
	pending []aggcore.Update

	// Per-version accumulators, reset at each bump.
	lagSum       uint64
	lagN         int
	discarded0   uint64
	firstFold    sim.Duration
	hasFirstFold bool

	// Stats.
	Received     uint64
	Folded       uint64
	StalenessSum uint64
}

// NewAsync assembles the buffered-async system on a fresh cluster. The
// buffer aggregator lives on cfg.TopNode; every node runs a gateway with a
// route to it.
func NewAsync(eng *sim.Engine, cfg Config) *Async {
	cfg = cfg.withDefaults()
	prm := cfg.Async.withDefaults()
	rng := sim.NewRNG(cfg.Seed)
	cl := cluster.New(eng, rng, cfg.Params, cfg.Nodes)
	s := &Async{
		cfg:     cfg,
		prm:     prm,
		Eng:     eng,
		Cluster: cl,
		global:  newGlobal(cfg.Model),
		decay:   asyncfl.Decay{HalfLife: prm.StalenessHalfLife, MaxStaleness: prm.MaxStaleness},
		merger:  asyncfl.Merger{Mix: prm.MixRate},
		Track:   asyncfl.NewTracker(),
	}
	bufNode := cl.Nodes[cfg.TopNode].Name
	for i, n := range cl.Nodes {
		gw := gateway.New(n)
		if i != cfg.TopNode {
			gw.SetRoute(asyncBufferID, bufNode)
		}
		s.GWs = append(s.GWs, gw)
	}
	gateway.Connect(s.GWs...)
	s.Mgr = runtime.NewManager(cl.Nodes[cfg.TopNode])
	s.startBuffer()
	return s
}

// startBuffer provisions the sandboxed buffer aggregator (cold start on the
// critical path of the first K updates, exactly like a reactive leaf).
func (s *Async) startBuffer() {
	n := s.Cluster.Nodes[s.cfg.TopNode]
	agg := aggcore.New(asyncBufferID, aggcore.RoleTop, n, fedavg.FedAvg{Workers: s.cfg.Workers},
		s.cfg.Model.PhysLen(), s.cfg.Model.Params)
	agg.Mode = aggcore.Eager // the eager pipeline is what makes the buffer fold on arrival
	agg.Tracer = s.cfg.Tracer
	agg.TraceName = "Buf"
	agg.OnComplete = s.onBuffer
	agg.Reweigh = s.reweigh
	agg.Assign(aggcore.RoleTop, s.prm.BufferK, "", 0)
	s.buffer = agg
	sb := s.Mgr.Start("async", func(*runtime.Sandbox) { s.bind() })
	agg.Sandbox = sb
	sb.Pinned = true // always owes the next version an output
	s.sb = sb
}

// bind publishes the ready buffer in the node's sockmap and drains updates
// that queued in shared memory during the cold start.
func (s *Async) bind() {
	n := s.Cluster.Nodes[s.cfg.TopNode]
	n.SockMap.Register(asyncBufferID, func(msg ebpf.Message) { s.deliver(msg) })
	for _, u := range s.pending {
		s.buffer.Receive(u)
	}
	s.pending = nil
	s.buffer.NotifyReady()
}

// Name implements AsyncService.
func (s *Async) Name() string { return "Async" }

// Global implements AsyncService.
func (s *Async) Global() *tensor.Tensor { return s.global }

// Version implements AsyncService.
func (s *Async) Version() int { return s.version }

// SetOnVersion implements AsyncService.
func (s *Async) SetOnVersion(fn func(AsyncVersion)) { s.onVersion = fn }

// ActiveAggregators implements AsyncService.
func (s *Async) ActiveAggregators() int { return s.Mgr.LiveCount() }

// CPUTime implements AsyncService (usage-based accounting, like LIFL).
func (s *Async) CPUTime() sim.Duration {
	s.Finalize()
	return s.Cluster.TotalCPUTime()
}

// RetireRound implements AsyncService: folded versions <= last are
// closed, so the eBPF metric samples stamped with their version numbers
// are deleted from every node's metrics map. The buffer's single sockmap
// entry and its gateway routes are version-independent (installed once at
// startup), so the metrics maps are the async plane's only per-version
// records.
func (s *Async) RetireRound(last int) {
	samples := 0
	for _, n := range s.Cluster.Nodes {
		samples += n.SKMSG.RetireRound(last)
	}
	s.cfg.Obs.Counter("ctrl/ebpf_samples_evicted", obs.Volatile).Add(uint64(samples))
}

// Finalize implements AsyncService: settles upkeep and, like LIFL,
// publishes the eBPF sidecar load signals.
func (s *Async) Finalize() {
	s.Mgr.SettleUpkeep()
	if s.cfg.Obs == nil {
		return
	}
	var runs, redirects, drops, entries uint64
	for _, n := range s.Cluster.Nodes {
		runs += n.SKMSG.Runs
		redirects += n.SKMSG.Redirects
		drops += n.SKMSG.Drops
		entries += uint64(n.SockMap.Len())
	}
	s.cfg.Obs.Gauge("ebpf/skmsg_runs", obs.Det).Set(float64(runs))
	s.cfg.Obs.Gauge("ebpf/redirects", obs.Det).Set(float64(redirects))
	s.cfg.Obs.Gauge("ebpf/drops", obs.Det).Set(float64(drops))
	s.cfg.Obs.Gauge("ebpf/sockmap_entries", obs.Volatile).Set(float64(entries))
}

// Pending returns updates parked or queued but not yet folded.
func (s *Async) Pending() int { return len(s.pending) + s.buffer.Pending() }

// Discarded returns updates dropped by the staleness cutoff.
func (s *Async) Discarded() uint64 { return s.buffer.Discarded }

// MeanStaleness implements AsyncService: mean fold-time version lag.
func (s *Async) MeanStaleness() float64 {
	if s.Folded == 0 {
		return 0
	}
	return float64(s.StalenessSum) / float64(s.Folded)
}

// reweigh is the fold-time staleness policy (aggcore.Reweigh): damp the
// contribution by how many versions behind the current model it trained.
func (s *Async) reweigh(u aggcore.Update) float64 {
	lag := s.version - u.Round
	if lag < 0 {
		lag = 0
	}
	w := u.Weight * s.decay.Weight(lag)
	if w <= 0 {
		return 0
	}
	if !s.hasFirstFold {
		s.hasFirstFold = true
		s.firstFold = s.Eng.Now()
	}
	s.lagSum += uint64(lag)
	s.lagN++
	s.StalenessSum += uint64(lag)
	s.Folded++
	return w
}

// Dispatch implements AsyncService: broadcast the current model to the
// client (buffer-node egress NIC, staggered naturally by sharing), wait out
// training, then ingest the upload at the job's edge node.
func (s *Async) Dispatch(job AsyncJob) {
	if job.Node < 0 || job.Node >= len(s.GWs) {
		panic(fmt.Sprintf("async: dispatch to node %d of %d", job.Node, len(s.GWs)))
	}
	ticket := s.Track.Dispatch(job.BaseVersion)
	size := s.cfg.Model.Bytes()
	s.Cluster.Nodes[s.cfg.TopNode].Egress.Transfer(size, func(_, _ sim.Duration) {
		s.Eng.After(job.Delay, func() { s.upload(job, ticket) })
	})
}

// upload ingests one finished client's update: gateway RX pipeline at the
// edge node (kernel RX, deserialize, shm commit), then the key pass —
// direct when the update landed on the buffer node, via the Appendix A
// inter-node relay otherwise. The training slot frees at the edge commit.
func (s *Async) upload(job AsyncJob, ticket int) {
	upd := job.MakeUpdate()
	gw := s.GWs[job.Node]
	gu := gateway.Update{
		Tensor:   upd,
		Weight:   job.Weight,
		Size:     upd.VirtualBytes(),
		NTensors: len(s.cfg.Model.Layers),
		Round:    job.BaseVersion, // stamped into the shm object; read back by the fold-time reweigh
		Producer: job.ID,
		DstID:    asyncBufferID,
	}
	gw.ReceiveExternal(gu, func(key shm.Key) {
		s.Received++
		if _, err := s.Track.Complete(ticket, s.version); err != nil {
			panic(fmt.Sprintf("async: %v", err))
		}
		if job.Done != nil {
			job.Done() // slot free: the upload is committed at the edge
		}
		if job.Node == s.cfg.TopNode {
			s.keyPass(job.ID, key)
			return
		}
		if err := gw.SendRemote(job.ID, key, asyncBufferID, func(remote shm.Key) {
			s.keyPass(job.ID, remote)
		}); err != nil {
			panic(fmt.Sprintf("async: relay: %v", err))
		}
	})
}

// keyPass hands a buffer-node shm key to the buffer aggregator over the
// SKMSG channel, charging the event-driven sidecar cost; before the
// sandbox is ready the update parks in shm-backed pending.
func (s *Async) keyPass(src string, key shm.Key) {
	n := s.Cluster.Nodes[s.cfg.TopNode]
	n.ExecFree("ebpf-sidecar", costmodel.Cycles(n.P.EBPFMetricsCycles))
	msg := ebpf.Message{SrcID: src, DstID: asyncBufferID, ShmKey: key, Size: 16, Round: s.version, Kind: "update"}
	verdict, sock, err := n.SKMSG.Run(msg, 0)
	if err != nil || verdict != ebpf.VerdictRedirect {
		obj, gerr := n.Shm.Get(key)
		if gerr != nil {
			panic(fmt.Sprintf("async: keyPass pending %s: %v", key, gerr))
		}
		s.pending = append(s.pending, aggcore.Update{
			Tensor: obj.Tensor, Weight: obj.Weight, Size: obj.Size,
			Round: obj.Round, Producer: src, Key: key, Store: n.Shm,
		})
		return
	}
	s.Eng.After(n.P.ShmKeyPassLatency, func() { sock.Deliver(msg) })
}

// deliver materializes a delivered shm key into a buffer Receive.
func (s *Async) deliver(msg ebpf.Message) {
	store := s.Cluster.Nodes[s.cfg.TopNode].Shm
	obj, err := store.Get(msg.ShmKey)
	if err != nil {
		panic(fmt.Sprintf("async: deliver %s: %v", msg.ShmKey, err))
	}
	s.buffer.Receive(aggcore.Update{
		Tensor:   obj.Tensor,
		Weight:   obj.Weight,
		Size:     obj.Size,
		Round:    obj.Round, // base version, consumed by reweigh at fold time
		Producer: msg.SrcID,
		Key:      msg.ShmKey,
		Store:    store,
	})
}

// onBuffer fires when the buffer's goal is met (aggcore Send): merge the
// staleness-weighted buffer mean into the global model with the fused
// ScaleAdd, bump the version, run the evaluation task, then re-arm the
// buffer for the next version and drain anything queued meanwhile.
func (s *Async) onBuffer(top *aggcore.Aggregator, out aggcore.Update) {
	next, err := s.merger.Merge(s.global, out.Tensor)
	if err != nil {
		panic(fmt.Sprintf("async: merge: %v", err))
	}
	s.global = next
	s.version++
	s.cfg.Obs.Counter("ctrl/versions_installed", obs.Det).Inc()
	v := AsyncVersion{
		Version:   s.version,
		FirstFold: s.firstFold,
		Installed: s.Eng.Now(),
		Updates:   top.Done(),
		Discarded: int(s.buffer.Discarded - s.discarded0),
	}
	if s.lagN > 0 {
		v.MeanStaleness = float64(s.lagSum) / float64(s.lagN)
	}
	s.lagSum, s.lagN = 0, 0
	s.hasFirstFold = false
	s.discarded0 = s.buffer.Discarded
	eval := top.Node.P.EvalTime(s.cfg.Model.Bytes())
	top.ExecAs("aggregator", eval, eval, func(start, end sim.Duration) {
		s.cfg.Tracer.Add(top.TraceName, trace.KindEval, start, end, v.Version)
		v.End = s.Eng.Now()
		v.CPUTime = s.CPUTime()
		// Re-arm for the next version; updates that queued during the
		// merge/eval window drain now, damped against the new version.
		top.Assign(aggcore.RoleTop, s.prm.BufferK, "", s.version)
		top.NotifyReady()
		if s.onVersion != nil {
			s.onVersion(v)
		}
	})
}
